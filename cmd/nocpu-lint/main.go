// nocpu-lint is the driver for the nocpu-lint analyzer suite
// (internal/lint). It speaks the `go vet -vettool` protocol, so the
// suite runs as
//
//	go vet -vettool=$(path to nocpu-lint) ./...
//
// and findings come back as ordinary vet diagnostics. The protocol has
// two calls: `nocpu-lint -V=full` prints an identity line the go
// command uses as a cache key, and `nocpu-lint <file>.cfg` analyzes one
// package described by a JSON vet config (file set, import map, and
// export-data locations for every dependency). Dependencies are loaded
// from compiler export data via go/importer, so no code outside the
// standard library is required.
//
// Analysis is restricted to this module's packages: for anything else
// (standard library dependencies vetted for their side of the protocol)
// the driver just writes the expected empty facts file and exits
// cleanly.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"nocpu/internal/lint"
	"nocpu/internal/lint/analysis"
)

// vetConfig is the subset of the go command's vet JSON config the
// driver needs. Unknown fields are ignored by encoding/json.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	flag.Var(versionFlag{}, "V", "print version and exit (the go command probes this)")
	// The go command's second probe: `nocpu-lint -flags` must describe
	// the supported flags as JSON so vet can validate user flags.
	if len(os.Args) > 1 && os.Args[1] == "-flags" {
		printFlagsJSON()
		os.Exit(0)
	}
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: nocpu-lint <vetconfig>.cfg ...  (run via go vet -vettool)")
		os.Exit(1)
	}
	exit := 0
	for _, cfgPath := range flag.Args() {
		found, err := runConfig(cfgPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nocpu-lint: %v\n", err)
			exit = 1
		}
		if found && exit == 0 {
			exit = 2 // the go vet convention for "diagnostics reported"
		}
	}
	os.Exit(exit)
}

// runConfig analyzes one package unit and reports whether diagnostics
// were found.
func runConfig(cfgPath string) (bool, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return false, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return false, fmt.Errorf("%s: %w", cfgPath, err)
	}
	// The go command expects a facts file for every vetted unit. The
	// suite derives no cross-package facts, so an empty one satisfies
	// the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return false, err
		}
	}
	if cfg.VetxOnly || !inModule(cfg.ImportPath) {
		return false, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return false, nil
			}
			return false, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(importPath)
	})

	tconf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return false, nil
		}
		return false, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	diags, err := analysis.Run(lint.Analyzers(), fset, files, pkg, info)
	if err != nil {
		return false, fmt.Errorf("analyzing %s: %w", cfg.ImportPath, err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Rule)
	}
	return len(diags) > 0, nil
}

// inModule reports whether the vetted unit is one of ours. Test
// variants arrive as "path [path.test]" and the synthesized test main
// as "path.test"; the underlying path decides.
func inModule(importPath string) bool {
	path := importPath
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	if strings.HasSuffix(path, ".test") {
		return false
	}
	return path == "nocpu" || strings.HasPrefix(path, "nocpu/")
}

// printFlagsJSON emits the flag inventory in the schema cmd/go expects
// from a vet tool (the same shape x/tools' analysisflags prints).
func printFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		panic(err)
	}
	os.Stdout.Write(data)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// versionFlag implements -V=full the way x/tools' unitchecker does: the
// go command caches vet results keyed on this line, and hashing the
// executable keeps the cache honest across rebuilds of the tool.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		return fmt.Errorf("unsupported flag value: -V=%s", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}
