// nocpu-lint is the driver for the nocpu-lint analyzer suite
// (internal/lint). It speaks the `go vet -vettool` protocol, so the
// suite runs as
//
//	go vet -vettool=$(path to nocpu-lint) ./...
//
// and findings come back as ordinary vet diagnostics. The protocol has
// two calls: `nocpu-lint -V=full` prints an identity line the go
// command uses as a cache key, and `nocpu-lint <file>.cfg` analyzes one
// package described by a JSON vet config (file set, import map, and
// export-data locations for every dependency). Dependencies are loaded
// from compiler export data via go/importer, so no code outside the
// standard library is required.
//
// Analysis is restricted to this module's packages: for anything else
// (standard library dependencies vetted for their side of the protocol)
// the driver just writes the expected empty facts file and exits
// cleanly. Module packages additionally exchange analyzer facts through
// the protocol's .vetx files (PackageVetx in, VetxOutput out), encoded
// as a JSON object keyed by analyzer name — that is how nodeterminism's
// taint summaries cross package boundaries.
//
// A second, vet-independent mode inventories the suppression surface:
//
//	nocpu-lint -allows [dir ...]
//
// walks the given trees (default ".") and prints every //lint:allow
// directive as "file:line: rule: reason", so the full set of sanctioned
// exceptions stays reviewable in one listing.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"nocpu/internal/lint"
	"nocpu/internal/lint/analysis"
)

// vetConfig is the subset of the go command's vet JSON config the
// driver needs. Unknown fields are ignored by encoding/json.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	flag.Var(versionFlag{}, "V", "print version and exit (the go command probes this)")
	allows := flag.Bool("allows", false, "report every //lint:allow directive under the given directories and exit")
	// The go command's second probe: `nocpu-lint -flags` must describe
	// the supported flags as JSON so vet can validate user flags.
	if len(os.Args) > 1 && os.Args[1] == "-flags" {
		printFlagsJSON()
		os.Exit(0)
	}
	flag.Parse()
	if *allows {
		os.Exit(runAllows(flag.Args()))
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: nocpu-lint <vetconfig>.cfg ...  (run via go vet -vettool)")
		os.Exit(1)
	}
	exit := 0
	for _, cfgPath := range flag.Args() {
		found, err := runConfig(cfgPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nocpu-lint: %v\n", err)
			exit = 1
		}
		if found && exit == 0 {
			exit = 2 // the go vet convention for "diagnostics reported"
		}
	}
	os.Exit(exit)
}

// runConfig analyzes one package unit and reports whether diagnostics
// were found.
func runConfig(cfgPath string) (bool, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return false, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return false, fmt.Errorf("%s: %w", cfgPath, err)
	}
	// The go command expects a facts file for every vetted unit.
	// Non-module packages (standard library dependencies) carry none, so
	// an empty one satisfies the protocol; module packages get theirs
	// written after analysis, below.
	if !inModule(cfg.ImportPath) {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				return false, err
			}
		}
		return false, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return false, nil
			}
			return false, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(importPath)
	})

	tconf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return false, nil
		}
		return false, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	facts := &vetxFacts{cfg: &cfg, out: make(map[string]json.RawMessage), deps: make(map[string]map[string]json.RawMessage)}
	diags, err := analysis.RunWithFacts(lint.Analyzers(), fset, files, pkg, info, facts)
	if err != nil {
		return false, fmt.Errorf("analyzing %s: %w", cfg.ImportPath, err)
	}
	if cfg.VetxOutput != "" {
		if err := facts.write(cfg.VetxOutput); err != nil {
			return false, err
		}
	}
	// A VetxOnly unit is analyzed purely for its facts (it is a
	// dependency of the vet target, not a target itself); its own
	// diagnostics are the responsibility of the run that targets it.
	if cfg.VetxOnly {
		return false, nil
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Rule)
	}
	return len(diags) > 0, nil
}

// vetxFacts adapts the vet protocol's .vetx files to the suite's Facts
// interface. A module package's .vetx file is a JSON object mapping
// analyzer name to that analyzer's opaque fact blob; an empty file means
// no facts.
type vetxFacts struct {
	cfg  *vetConfig
	out  map[string]json.RawMessage
	deps map[string]map[string]json.RawMessage // pkg path -> analyzer -> blob
}

func (s *vetxFacts) Get(pkgPath, analyzer string) []byte {
	m, ok := s.deps[pkgPath]
	if !ok {
		m = make(map[string]json.RawMessage)
		file := s.cfg.PackageVetx[pkgPath]
		if file == "" {
			if mapped, ok := s.cfg.ImportMap[pkgPath]; ok {
				file = s.cfg.PackageVetx[mapped]
			}
		}
		if file != "" {
			if data, err := os.ReadFile(file); err == nil && len(data) > 0 {
				_ = json.Unmarshal(data, &m) // a stale or foreign blob means no facts
			}
		}
		s.deps[pkgPath] = m
	}
	return m[analyzer]
}

func (s *vetxFacts) Set(analyzer string, blob []byte) {
	s.out[analyzer] = json.RawMessage(blob)
}

// write persists the collected fact blobs as this unit's .vetx file.
func (s *vetxFacts) write(path string) error {
	if len(s.out) == 0 {
		return os.WriteFile(path, nil, 0o666)
	}
	data, err := json.Marshal(s.out)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}

// runAllows implements `nocpu-lint -allows [dir ...]`: walk the trees,
// parse every non-testdata Go file, and print each //lint:allow
// directive as "file:line: rule: reason". Exit status 1 means the walk
// or a parse failed, not that directives exist — an allow is sanctioned
// by definition; this mode exists to keep the full list reviewable.
func runAllows(roots []string) int {
	if len(roots) == 0 {
		roots = []string{"."}
	}
	fset := token.NewFileSet()
	var files []*ast.File
	exit := 0
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				// testdata trees hold deliberate violations (and allow
				// fixtures) for the analyzer tests; they are not part of
				// the suppression surface of the real tree.
				if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") && name != "." {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return err
			}
			files = append(files, f)
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "nocpu-lint: -allows: %v\n", err)
			exit = 1
		}
	}
	for _, a := range analysis.Inventory(fset, files) {
		fmt.Printf("%s:%d: %s: %s\n", a.File, a.Line, a.Rule, a.Reason)
	}
	return exit
}

// inModule reports whether the vetted unit is one of ours. Test
// variants arrive as "path [path.test]" and the synthesized test main
// as "path.test"; the underlying path decides.
func inModule(importPath string) bool {
	path := importPath
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	if strings.HasSuffix(path, ".test") {
		return false
	}
	return path == "nocpu" || strings.HasPrefix(path, "nocpu/")
}

// printFlagsJSON emits the flag inventory in the schema cmd/go expects
// from a vet tool (the same shape x/tools' analysisflags prints).
func printFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		panic(err)
	}
	os.Stdout.Write(data)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// versionFlag implements -V=full the way x/tools' unitchecker does: the
// go command caches vet results keyed on this line, and hashing the
// executable keeps the cache honest across rebuilds of the tool.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		return fmt.Errorf("unsupported flag value: -V=%s", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}
