package main_test

// End-to-end test of the wire-compatibility gate through the real
// `go vet -vettool` pipeline: a copy of internal/msg in a scratch
// module (same module path, so the lockfile rules apply) must vet
// clean, a seeded breaking schema edit must fail with a diagnostic
// naming the kind and field, and a trailing-field addition must pass
// and survive NOCPU_REGEN_WIRELOCK regeneration.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestSeededWireBreakFailsVet(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool and runs go vet; skipped in -short")
	}
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}

	tool := filepath.Join(t.TempDir(), "nocpu-lint")
	build := exec.Command("go", "build", "-o", tool, "./cmd/nocpu-lint")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vettool: %v\n%s", err, out)
	}

	// A scratch module named nocpu, holding only internal/msg: the
	// package keeps its real import path, so wireproto applies the
	// committed-lockfile rules to it.
	mod := t.TempDir()
	copyFile(t, filepath.Join(repoRoot, "go.mod"), filepath.Join(mod, "go.mod"))
	msgDir := filepath.Join(mod, "internal", "msg")
	copyTree(t, filepath.Join(repoRoot, "internal", "msg"), msgDir)

	vet := func(regen bool) (int, string) {
		cmd := exec.Command("go", "vet", "-vettool="+tool, "./internal/msg")
		cmd.Dir = mod
		cmd.Env = os.Environ()
		if regen {
			cmd.Env = append(cmd.Env, "NOCPU_REGEN_WIRELOCK=1")
		}
		out, err := cmd.CombinedOutput()
		if err == nil {
			return 0, string(out)
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode(), string(out)
		}
		t.Fatalf("go vet: %v\n%s", err, out)
		return -1, ""
	}

	if code, out := vet(false); code != 0 {
		t.Fatalf("pristine copy should vet clean, got exit %d:\n%s", code, out)
	}

	typesPath := filepath.Join(msgDir, "types.go")
	pristine, err := os.ReadFile(typesPath)
	if err != nil {
		t.Fatal(err)
	}

	// Breaking edit: swap CreditUpdate's two encoded fields. The decoder
	// and the lockfile still have the old order.
	const before = "w.u32(m.Window)\n\tw.u32(m.Credits)"
	const after = "w.u32(m.Credits)\n\tw.u32(m.Window)"
	if n := strings.Count(string(pristine), before); n != 1 {
		t.Fatalf("expected exactly one CreditUpdate encode site, found %d", n)
	}
	writeFile(t, typesPath, strings.Replace(string(pristine), before, after, 1))
	code, out := vet(false)
	if code == 0 {
		t.Fatalf("seeded field swap should fail vet:\n%s", out)
	}
	for _, want := range []string{"CreditUpdate", "Credits"} {
		if !strings.Contains(out, want) {
			t.Errorf("breaking-change diagnostic should name %q:\n%s", want, out)
		}
	}

	// Trailing addition: a new optional field after the locked prefix is
	// the sanctioned evolution path — it must pass against the old lock,
	// and regeneration must pin it. Heartbeat is the seed target because
	// it has no trailing optional yet (CreditUpdate's slot is taken by
	// ForInc, and only the last field may be conditional).
	src := string(pristine)
	src = strings.Replace(src,
		"type Heartbeat struct{ Seq uint64 }",
		"type Heartbeat struct {\n\tSeq  uint64\n\tBurst uint32 // optional burst hint (trailing, 0 = absent)\n}", 1)
	src = strings.Replace(src,
		"func (m *Heartbeat) encode(w *writer) { w.u64(m.Seq) }",
		"func (m *Heartbeat) encode(w *writer) {\n\tw.u64(m.Seq)\n\tif m.Burst != 0 {\n\t\tw.u32(m.Burst)\n\t}\n}", 1)
	src = strings.Replace(src,
		"func (m *Heartbeat) decode(r *reader) { m.Seq = r.u64() }",
		"func (m *Heartbeat) decode(r *reader) {\n\tm.Seq = r.u64()\n\tif r.err == nil && r.off < len(r.buf) {\n\t\tm.Burst = r.u32()\n\t}\n}", 1)
	if strings.Count(src, "Burst") != 4 { // struct field + encoder guard/write + decoder read
		t.Fatal("trailing-addition edit did not apply")
	}
	writeFile(t, typesPath, src)
	if code, out := vet(false); code != 0 {
		t.Fatalf("trailing optional addition should pass against the old lock, got exit %d:\n%s", code, out)
	}
	if code, out := vet(true); code != 0 {
		t.Fatalf("lock regeneration should succeed, got exit %d:\n%s", code, out)
	}
	lock, err := os.ReadFile(filepath.Join(msgDir, "wire.lock"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(lock), "opt Burst") {
		t.Fatalf("regenerated lock should pin the new trailing field:\n%s", lock)
	}
	if code, out := vet(false); code != 0 {
		t.Fatalf("tree should vet clean against the regenerated lock, got exit %d:\n%s", code, out)
	}
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, dst, string(data))
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		// Test files pull in the rest of the module; the scratch module
		// holds only the codec package (the fuzz corpus still copies —
		// it lives under testdata, not in a _test.go file).
		if strings.HasSuffix(path, "_test.go") {
			return nil
		}
		copyFile(t, path, filepath.Join(dst, rel))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
