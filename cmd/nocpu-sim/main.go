// nocpu-sim boots an emulated machine, runs the paper's §3 key-value
// store scenario, and prints the full control-plane trace — the emulator
// §2.4 of "The Last CPU" calls for, as a command.
//
// Usage:
//
//	nocpu-sim                     # decentralized machine, short KVS run
//	nocpu-sim -flavor central     # centralized-CPU baseline
//	nocpu-sim -ops 100 -trace=false
package main

import (
	"flag"
	"fmt"
	"log"

	"nocpu/internal/core"
	"nocpu/internal/kvs"
	"nocpu/internal/sim"
)

func main() {
	var (
		flavorFlag = flag.String("flavor", "decentralized", "machine flavor: decentralized | central | mediated")
		ops        = flag.Int("ops", 10, "KVS operations to run")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		showTrace  = flag.Bool("trace", true, "print the bus trace")
	)
	flag.Parse()

	flavor := core.Decentralized
	mediated := false
	switch *flavorFlag {
	case "decentralized":
	case "central":
		flavor = core.Centralized
	case "mediated":
		flavor = core.Centralized
		mediated = true
	default:
		log.Fatalf("unknown flavor %q", *flavorFlag)
	}

	sys := core.MustNew(core.Options{Flavor: flavor, Seed: *seed})
	if err := sys.Boot(); err != nil {
		log.Fatal(err)
	}
	if err := sys.CreateFile("kv.dat", nil); err != nil {
		log.Fatal(err)
	}
	if sys.CPU != nil {
		sys.CPU.RegisterFile("kv.dat", core.FirstSSD)
	}
	store := sys.NewKVS(core.KVSOptions{App: 1, File: "kv.dat", Mediated: mediated})
	if err := sys.WaitReady(store); err != nil {
		log.Fatal(err)
	}

	do := func(req kvs.Request) kvs.Response {
		var resp kvs.Response
		done := false
		sys.NIC().Deliver(1, kvs.EncodeRequest(req), func(b []byte) {
			resp, _ = kvs.DecodeResponse(b)
			done = true
		})
		for !done {
			sys.Eng.RunFor(20 * sim.Microsecond)
		}
		return resp
	}

	for i := 0; i < *ops; i++ {
		key := fmt.Sprintf("key-%03d", i)
		do(kvs.Request{Op: kvs.OpPut, Key: key, Value: []byte(fmt.Sprintf("value-%03d", i))})
	}
	hits := 0
	for i := 0; i < *ops; i++ {
		if r := do(kvs.Request{Op: kvs.OpGet, Key: fmt.Sprintf("key-%03d", i)}); r.Status == kvs.StatusOK {
			hits++
		}
	}
	fmt.Printf("machine: %s (mediated=%v)\n", flavor, mediated)
	fmt.Printf("%d puts, %d/%d gets served; virtual time %v\n", *ops, hits, *ops, sys.Eng.Now())
	st := store.Stats()
	fmt.Printf("store stats: %+v\n", st)
	fmt.Printf("bus stats: %+v\n", sys.Bus.Stats())
	fmt.Printf("fabric stats: %+v\n", sys.Fabric.Stats())

	if *showTrace && sys.Tracer != nil {
		fmt.Println("\n-- control-plane trace --")
		fmt.Print(sys.Tracer.String())
	}
}
