// nocpu-bench regenerates the experiment tables recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	nocpu-bench              # run everything
//	nocpu-bench -e E2,E4     # run a subset
//	nocpu-bench -list        # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nocpu/internal/exp"
)

func main() {
	var (
		which = flag.String("e", "", "comma-separated experiment ids (default: all)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := exp.IDs()
	if *which != "" {
		ids = strings.Split(*which, ",")
	}
	for _, id := range ids {
		res, err := exp.Run(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(res)
	}
}
