package sim

import "math"

// Rand is a small, fast, deterministic PRNG (splitmix64). The simulation
// never touches math/rand global state: every stochastic component owns a
// Rand derived from the run seed, so runs replay exactly.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Fork derives an independent generator from this one. Used to give each
// workload source its own stream so adding a source does not perturb the
// draws seen by others.
func (r *Rand) Fork() *Rand { return &Rand{state: r.Uint64() ^ 0x9e3779b97f4a7c15} }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed duration with the given mean —
// inter-arrival times of a Poisson process.
func (r *Rand) Exp(mean Duration) Duration {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	d := Duration(-math.Log(u) * float64(mean))
	if d < 0 {
		d = 0
	}
	return d
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Zipf draws ranks in [0, n) with P(k) proportional to 1/(k+1)^s, using
// inverse-CDF over a precomputed table. Build one with NewZipf.
type Zipf struct {
	rand *Rand
	cdf  []float64
}

// NewZipf builds a Zipf sampler over n items with exponent s (s=0 is
// uniform, s≈0.99 is the usual YCSB-style skew).
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("sim: Zipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{rand: r, cdf: cdf}
}

// Next returns the next sampled rank.
func (z *Zipf) Next() int {
	u := z.rand.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
