package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.After(30, func() { got = append(got, 3) })
	e.After(10, func() { got = append(got, 1) })
	e.After(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Errorf("Now() = %v, want 30", e.Now())
	}
}

func TestEngineTieBreakBySequence(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events ran out of order: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.After(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired = %v, want [10 15]", fired)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.After(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineNilCallbackPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	e.After(1, nil)
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.After(10, func() { fired = true })
	if !tm.Stop() {
		t.Error("first Stop reported not-pending")
	}
	if tm.Stop() {
		t.Error("second Stop reported pending")
	}
	e.Run()
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine()
	count := 0
	e.After(10, func() { count++ })
	e.After(50, func() { count++ })
	e.RunUntil(20)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if e.Now() != 20 {
		t.Fatalf("Now() = %v, want 20", e.Now())
	}
	e.RunFor(40)
	if count != 2 || e.Now() != 60 {
		t.Fatalf("count=%d now=%v, want 2, 60", count, e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.After(Duration(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 after Stop", count)
	}
}

func TestNegativeAfterClamps(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(-5, func() { fired = true })
	e.Run()
	if !fired || e.Now() != 0 {
		t.Fatalf("negative After mishandled: fired=%v now=%v", fired, e.Now())
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000000s"},
		{-500, "-500ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestServerFIFO(t *testing.T) {
	e := NewEngine()
	s := NewServer(e)
	var done []int
	s.Submit(10, func() { done = append(done, 1) })
	s.Submit(10, func() { done = append(done, 2) })
	e.Run()
	if e.Now() != 20 {
		t.Fatalf("two back-to-back 10ns jobs finished at %v, want 20", e.Now())
	}
	if len(done) != 2 || done[0] != 1 || done[1] != 2 {
		t.Fatalf("completion order %v", done)
	}
}

func TestServerIdleGap(t *testing.T) {
	e := NewEngine()
	s := NewServer(e)
	var finish Time
	s.Submit(10, nil)
	e.After(100, func() {
		finish = s.Submit(10, nil)
	})
	e.Run()
	if finish != 110 {
		t.Fatalf("job after idle gap finished at %v, want 110", finish)
	}
	if s.BusyTotal() != 20 {
		t.Fatalf("BusyTotal = %v, want 20", s.BusyTotal())
	}
}

func TestServerDelay(t *testing.T) {
	e := NewEngine()
	s := NewServer(e)
	s.Submit(40, nil)
	s.Submit(10, nil)
	if d := s.Delay(); d != 50 {
		t.Fatalf("Delay = %v, want 50", d)
	}
}

func TestPoolParallelism(t *testing.T) {
	e := NewEngine()
	p := NewPool(e, 2)
	var finishes []Time
	for i := 0; i < 4; i++ {
		p.Submit(10, func() { finishes = append(finishes, e.Now()) })
	}
	e.Run()
	// 2 servers, 4 jobs of 10ns: completions at 10,10,20,20.
	want := []Time{10, 10, 20, 20}
	for i := range want {
		if finishes[i] != want[i] {
			t.Fatalf("finishes = %v, want %v", finishes, want)
		}
	}
	if p.Jobs() != 4 || p.BusyTotal() != 40 {
		t.Fatalf("jobs=%d busy=%v", p.Jobs(), p.BusyTotal())
	}
}

func TestPoolSingleEqualsServer(t *testing.T) {
	e := NewEngine()
	p := NewPool(e, 1)
	t1 := p.Submit(10, nil)
	t2 := p.Submit(5, nil)
	if t1 != 10 || t2 != 15 {
		t.Fatalf("pool(1) behaves unlike a serial server: %v %v", t1, t2)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestRandForkIndependence(t *testing.T) {
	a := NewRand(42)
	f := a.Fork()
	if a.Uint64() == f.Uint64() {
		t.Error("fork produced identical first draw (suspicious)")
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	check := func(f float64) bool { return f >= 0 && f < 1 }
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); !check(f) {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(7)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(99)
	const mean = 1000 * Nanosecond
	var sum Duration
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	got := float64(sum) / n
	if got < 980 || got > 1020 {
		t.Errorf("Exp mean = %.1f, want ~1000", got)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(5)
	z := NewZipf(r, 1000, 0.99)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[500] {
		t.Errorf("rank 0 (%d) not hotter than rank 500 (%d)", counts[0], counts[500])
	}
	// Rank 0 of a zipf(0.99) over 1000 items draws roughly 13% of traffic.
	if counts[0] < 50000/10 {
		t.Errorf("rank 0 count %d suspiciously low", counts[0])
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := NewRand(5)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	for k, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("uniform zipf rank %d count %d outside [8000,12000]", k, c)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(11)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}
