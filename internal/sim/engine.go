// Package sim provides a deterministic discrete-event simulation engine.
//
// Everything in the emulated CPU-less machine — bus messages, DMA
// transfers, flash operations, network arrivals — executes as events on a
// single virtual clock owned by an Engine. The engine is strictly
// deterministic: events fire in (time, insertion-sequence) order, and all
// randomness is drawn from an explicitly seeded Rand. Two runs with the
// same seed produce byte-identical traces.
//
// The engine is not safe for concurrent use; the whole simulation is
// single-threaded by design (determinism is a correctness requirement for
// the experiment harness, which asserts on exact event orderings).
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String renders a Time as a human-readable duration since start.
func (t Time) String() string { return Duration(t).String() }

// String renders a Duration using the most natural unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.3fus", float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(d)/float64(Second))
	}
}

// Micros returns the duration in (possibly fractional) microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Add returns t+d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// event is a scheduled callback. seq breaks timestamp ties so that events
// scheduled earlier run earlier, which keeps runs reproducible.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	idx  int // heap index
	dead bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the callback was still
// pending (false means it already fired or was already stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.dead {
		return false
	}
	t.ev.dead = true
	t.ev.fn = nil
	return true
}

// Engine owns the virtual clock and the pending-event queue.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	running bool
	// Executed counts events dispatched since creation; useful for
	// detecting runaway simulations in tests.
	Executed uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn at absolute time t. Scheduling in the past panics: it
// indicates a model bug (causality violation), never a recoverable state.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn d nanoseconds from now. Negative d is clamped to 0.
func (e *Engine) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Pending reports how many events are queued (including cancelled ones not
// yet drained).
func (e *Engine) Pending() int { return len(e.events) }

// Step dispatches the next event, advancing the clock to its timestamp.
// It reports false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.Executed++
		ev.fn()
		return true
	}
	return false
}

// Run dispatches events until the queue drains.
func (e *Engine) Run() {
	e.running = true
	for e.running && e.Step() {
	}
	e.running = false
}

// RunUntil dispatches events with timestamps <= t, then sets the clock to
// t (even if no event fired exactly at t).
func (e *Engine) RunUntil(t Time) {
	e.running = true
	for e.running {
		if len(e.events) == 0 {
			break
		}
		// Peek.
		next := e.events[0]
		if next.dead {
			heap.Pop(&e.events)
			continue
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	e.running = false
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Stop halts a Run/RunUntil loop after the current event returns.
func (e *Engine) Stop() { e.running = false }
