package sim

// Server models a serial resource with FIFO queueing: an embedded
// controller, a flash channel, a CPU core. Work submitted while the server
// is busy queues behind the in-flight job; completion callbacks fire in
// submission order. This is the primitive that makes centralized control
// planes saturate realistically in the experiments.
type Server struct {
	eng *Engine
	// busyUntil is the virtual time at which the server drains all
	// currently accepted work.
	busyUntil Time
	// Busy time accumulated, for utilization accounting.
	busyTotal Duration
	jobs      uint64
	// finishes holds the completion times of accepted-but-unfinished
	// jobs, pruned lazily on access. It feeds Pending() — the queue
	// depth overload audits check against bounds — without scheduling
	// any events of its own, so traces are unchanged.
	finishes []Time
}

// NewServer returns an idle server on the given engine.
func NewServer(eng *Engine) *Server { return &Server{eng: eng} }

// Submit enqueues a job with the given service time and schedules done at
// its completion. It returns the completion time.
func (s *Server) Submit(service Duration, done func()) Time {
	if service < 0 {
		service = 0
	}
	start := s.eng.Now()
	if s.busyUntil > start {
		start = s.busyUntil
	}
	finish := start.Add(service)
	s.busyUntil = finish
	s.busyTotal += service
	s.jobs++
	s.prune()
	s.finishes = append(s.finishes, finish)
	if done != nil {
		s.eng.At(finish, done)
	}
	return finish
}

// prune drops completion records for jobs already finished. finishes is
// sorted (FIFO completion order), so the live suffix starts at the first
// entry past now.
func (s *Server) prune() {
	now := s.eng.Now()
	i := 0
	for i < len(s.finishes) && s.finishes[i] <= now {
		i++
	}
	if i > 0 {
		s.finishes = append(s.finishes[:0], s.finishes[i:]...)
	}
}

// Pending reports the number of accepted jobs not yet finished (the one
// in service plus everything queued behind it). This is the queue depth
// the overload audits bound.
func (s *Server) Pending() int {
	s.prune()
	return len(s.finishes)
}

// Delay reports how long a job submitted now would wait before service.
func (s *Server) Delay() Duration {
	if s.busyUntil <= s.eng.Now() {
		return 0
	}
	return s.busyUntil.Sub(s.eng.Now())
}

// BusyTotal returns accumulated service time (for utilization).
func (s *Server) BusyTotal() Duration { return s.busyTotal }

// Jobs returns the number of jobs accepted.
func (s *Server) Jobs() uint64 { return s.jobs }

// Pool models k identical parallel servers with a shared FIFO queue
// (M/x/k): the centralized baseline's multi-core CPU.
type Pool struct {
	eng     *Engine
	free    []Time // next-free time per server
	queue   Duration
	jobs    uint64
	busySum Duration
	// finishes mirrors Server.finishes: completion times of unfinished
	// jobs for Pending(), pruned lazily, scheduling nothing.
	finishes []Time
}

// NewPool returns a pool of k servers. k must be >= 1.
func NewPool(eng *Engine, k int) *Pool {
	if k < 1 {
		panic("sim: pool needs at least one server")
	}
	return &Pool{eng: eng, free: make([]Time, k)}
}

// Submit places a job on the earliest-free server and schedules done at
// completion; returns the completion time.
func (p *Pool) Submit(service Duration, done func()) Time {
	if service < 0 {
		service = 0
	}
	// Pick the server that frees earliest (stable: lowest index wins ties).
	best := 0
	for i, t := range p.free {
		if t < p.free[best] {
			best = i
		}
	}
	start := p.eng.Now()
	if p.free[best] > start {
		start = p.free[best]
	}
	finish := start.Add(service)
	p.free[best] = finish
	p.jobs++
	p.busySum += service
	p.prune()
	// Unlike a Server's, pool completions are not submission-ordered
	// (servers differ in backlog), so insert in sorted position to keep
	// prune a prefix drop.
	at := len(p.finishes)
	for at > 0 && p.finishes[at-1] > finish {
		at--
	}
	p.finishes = append(p.finishes, 0)
	copy(p.finishes[at+1:], p.finishes[at:])
	p.finishes[at] = finish
	if done != nil {
		p.eng.At(finish, done)
	}
	return finish
}

func (p *Pool) prune() {
	now := p.eng.Now()
	i := 0
	for i < len(p.finishes) && p.finishes[i] <= now {
		i++
	}
	if i > 0 {
		p.finishes = append(p.finishes[:0], p.finishes[i:]...)
	}
}

// Pending reports the number of accepted jobs not yet finished across
// all servers in the pool.
func (p *Pool) Pending() int {
	p.prune()
	return len(p.finishes)
}

// Jobs returns the number of jobs accepted.
func (p *Pool) Jobs() uint64 { return p.jobs }

// BusyTotal returns accumulated service time across all servers.
func (p *Pool) BusyTotal() Duration { return p.busySum }
