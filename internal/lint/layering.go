package lint

import (
	"sort"
	"strconv"
	"strings"

	"nocpu/internal/lint/analysis"
)

// Layering machine-enforces the package architecture, in particular the
// paper's §2 decentralization boundary: self-managing devices cooperate
// only through the management-bus vocabulary (msg) and shared
// infrastructure (sim, trace, bus, interconnect, virtio, iommu), and
// never reach into the centralized-baseline kernel (centralos) or the
// experiment harness (exp). The full module DAG below is data: every
// in-module import must appear in its package's allowlist, so adding an
// edge is a reviewed, one-line decision here rather than an accident.
//
// Test files are exempt — tests may wire up whatever harness they need.
var Layering = &analysis.Analyzer{
	Name: "layering",
	Doc:  "enforce the package architecture DAG and the §2 decentralization boundary",
	Run:  runLayering,
}

// layerDAG maps each module package to the in-module imports it is
// allowed. The tiers, bottom-up:
//
//	leaves   msg, sim, physmem            (import nothing in-module)
//	infra    trace, metrics, iommu, faultinject, netsim, chaos,
//	         overload, interconnect, virtio, bus
//	devices  device, smartssd, smartnic, memctrl, accel
//	kernel   centralos                    (baseline; may drive smartssd)
//	apps     kvs, admin
//	wiring   core
//	harness  exp
//	mains    cmd/*, examples/*
//
// Keep allowlists tight: list what a package imports today, not what it
// might want someday. Widening an entry is the reviewed way to add an
// edge.
var layerDAG = map[string][]string{
	"nocpu": {},

	// Leaves.
	"nocpu/internal/msg":     {},
	"nocpu/internal/sim":     {},
	"nocpu/internal/physmem": {},

	// Infrastructure.
	"nocpu/internal/trace":       {"nocpu/internal/sim"},
	"nocpu/internal/metrics":     {"nocpu/internal/sim"},
	"nocpu/internal/iommu":       {"nocpu/internal/physmem"},
	"nocpu/internal/faultinject": {"nocpu/internal/msg", "nocpu/internal/sim"},
	"nocpu/internal/netsim":      {"nocpu/internal/metrics", "nocpu/internal/sim"},
	"nocpu/internal/linearize":   {"nocpu/internal/sim"},
	"nocpu/internal/chaos":       {"nocpu/internal/faultinject", "nocpu/internal/sim"},
	"nocpu/internal/tenant":      {"nocpu/internal/msg", "nocpu/internal/sim"},
	"nocpu/internal/overload": {
		"nocpu/internal/metrics", "nocpu/internal/netsim", "nocpu/internal/sim",
	},
	"nocpu/internal/interconnect": {
		"nocpu/internal/faultinject", "nocpu/internal/iommu", "nocpu/internal/metrics",
		"nocpu/internal/msg", "nocpu/internal/physmem", "nocpu/internal/sim",
	},
	"nocpu/internal/virtio": {
		"nocpu/internal/interconnect", "nocpu/internal/iommu",
		"nocpu/internal/physmem", "nocpu/internal/sim",
	},
	"nocpu/internal/bus": {
		"nocpu/internal/faultinject", "nocpu/internal/iommu", "nocpu/internal/metrics",
		"nocpu/internal/msg", "nocpu/internal/physmem", "nocpu/internal/sim",
		"nocpu/internal/tenant", "nocpu/internal/trace",
	},

	// Self-managing devices (§2): bus/infra only, never centralos/exp.
	"nocpu/internal/device": {
		"nocpu/internal/bus", "nocpu/internal/interconnect", "nocpu/internal/iommu",
		"nocpu/internal/msg", "nocpu/internal/sim", "nocpu/internal/trace",
	},
	"nocpu/internal/smartssd": {
		"nocpu/internal/bus", "nocpu/internal/device", "nocpu/internal/interconnect",
		"nocpu/internal/iommu", "nocpu/internal/msg", "nocpu/internal/sim",
		"nocpu/internal/trace", "nocpu/internal/virtio",
	},
	"nocpu/internal/smartnic": {
		"nocpu/internal/bus", "nocpu/internal/device", "nocpu/internal/interconnect",
		"nocpu/internal/iommu", "nocpu/internal/metrics", "nocpu/internal/msg",
		"nocpu/internal/physmem", "nocpu/internal/sim", "nocpu/internal/smartssd",
		"nocpu/internal/tenant", "nocpu/internal/trace", "nocpu/internal/virtio",
	},
	"nocpu/internal/memctrl": {
		"nocpu/internal/bus", "nocpu/internal/device", "nocpu/internal/interconnect",
		"nocpu/internal/iommu", "nocpu/internal/msg", "nocpu/internal/physmem",
		"nocpu/internal/sim", "nocpu/internal/trace",
	},
	"nocpu/internal/accel": {
		"nocpu/internal/bus", "nocpu/internal/device", "nocpu/internal/interconnect",
		"nocpu/internal/iommu", "nocpu/internal/msg", "nocpu/internal/sim",
		"nocpu/internal/trace", "nocpu/internal/virtio",
	},

	// Centralized baseline kernel: the "traditional stack" the paper
	// argues against. It drives the SSD directly (kernel-mediated I/O)
	// but must not depend on the self-managing runtime.
	"nocpu/internal/centralos": {
		"nocpu/internal/bus", "nocpu/internal/interconnect", "nocpu/internal/iommu",
		"nocpu/internal/metrics", "nocpu/internal/msg", "nocpu/internal/physmem",
		"nocpu/internal/sim", "nocpu/internal/smartssd", "nocpu/internal/trace",
		"nocpu/internal/virtio",
	},

	// Applications ride on the NIC runtime.
	"nocpu/internal/kvs": {
		"nocpu/internal/metrics", "nocpu/internal/msg", "nocpu/internal/sim",
		"nocpu/internal/smartnic", "nocpu/internal/tenant",
	},
	"nocpu/internal/admin": {"nocpu/internal/msg", "nocpu/internal/smartnic"},

	// Machine wiring.
	"nocpu/internal/core": {
		"nocpu/internal/accel", "nocpu/internal/bus", "nocpu/internal/centralos",
		"nocpu/internal/device", "nocpu/internal/faultinject", "nocpu/internal/interconnect",
		"nocpu/internal/iommu", "nocpu/internal/kvs", "nocpu/internal/memctrl",
		"nocpu/internal/msg", "nocpu/internal/physmem", "nocpu/internal/sim",
		"nocpu/internal/smartnic", "nocpu/internal/smartssd", "nocpu/internal/tenant",
		"nocpu/internal/trace",
	},

	// Seeded malicious device (E20): attaches raw to the bus — no chassis,
	// no runtime — and mounts the attack matrix against the isolation
	// mechanisms. Harness-side tooling, same tier as the apps it probes.
	"nocpu/internal/adversary": {
		"nocpu/internal/bus", "nocpu/internal/iommu", "nocpu/internal/kvs",
		"nocpu/internal/msg", "nocpu/internal/physmem", "nocpu/internal/sim",
		"nocpu/internal/smartnic", "nocpu/internal/tenant",
	},

	// Rack-scale fabric: N machines (core) on one engine, joined by a
	// modeled network, running the sharded/replicated KVS (E17).
	"nocpu/internal/fabric": {
		"nocpu/internal/chaos", "nocpu/internal/core", "nocpu/internal/faultinject",
		"nocpu/internal/kvs", "nocpu/internal/msg", "nocpu/internal/sim",
		"nocpu/internal/smartnic", "nocpu/internal/tenant",
	},

	// Fleet reconciliation: level-triggered policy (observe→diff→act)
	// over the fabric's membership/drain mechanisms (E19). Policy rides
	// ABOVE mechanism: reconcile imports fabric, never the reverse.
	"nocpu/internal/reconcile": {
		"nocpu/internal/fabric", "nocpu/internal/msg", "nocpu/internal/sim",
	},

	// Experiment harness.
	"nocpu/internal/exp": {
		"nocpu/internal/adversary", "nocpu/internal/bus", "nocpu/internal/chaos",
		"nocpu/internal/core", "nocpu/internal/fabric", "nocpu/internal/faultinject",
		"nocpu/internal/iommu", "nocpu/internal/kvs", "nocpu/internal/linearize",
		"nocpu/internal/metrics", "nocpu/internal/msg", "nocpu/internal/netsim",
		"nocpu/internal/overload",
		"nocpu/internal/physmem", "nocpu/internal/reconcile", "nocpu/internal/sim",
		"nocpu/internal/smartnic", "nocpu/internal/smartssd", "nocpu/internal/tenant",
		"nocpu/internal/trace",
	},

	// The linter itself (host tooling).
	"nocpu/internal/lint":              {"nocpu/internal/lint/analysis"},
	"nocpu/internal/lint/analysis":     {},
	"nocpu/internal/lint/analysistest": {"nocpu/internal/lint/analysis"},

	// Binaries and examples.
	"nocpu/cmd/nocpu-bench": {"nocpu/internal/exp"},
	"nocpu/cmd/nocpu-sim":   {"nocpu/internal/core", "nocpu/internal/kvs", "nocpu/internal/sim"},
	"nocpu/cmd/nocpu-lint":  {"nocpu/internal/lint", "nocpu/internal/lint/analysis"},
	"nocpu/examples/faulttolerance": {
		"nocpu/internal/core", "nocpu/internal/kvs", "nocpu/internal/sim",
	},
	"nocpu/examples/kvstore": {
		"nocpu/internal/core", "nocpu/internal/kvs", "nocpu/internal/netsim", "nocpu/internal/sim",
	},
	"nocpu/examples/multitenant": {
		"nocpu/internal/core", "nocpu/internal/kvs", "nocpu/internal/msg", "nocpu/internal/sim",
	},
	"nocpu/examples/pipeline": {
		"nocpu/internal/accel", "nocpu/internal/core", "nocpu/internal/msg",
		"nocpu/internal/sim", "nocpu/internal/smartnic",
	},
	"nocpu/examples/quickstart": {
		"nocpu/internal/core", "nocpu/internal/kvs", "nocpu/internal/sim",
	},
}

// deviceTier names the self-managing device packages the §2 boundary
// protects. They get a dedicated diagnostic because this edge is the
// core architectural claim, not a housekeeping rule.
var deviceTier = map[string]bool{
	"nocpu/internal/device":   true,
	"nocpu/internal/smartssd": true,
	"nocpu/internal/smartnic": true,
	"nocpu/internal/memctrl":  true,
	"nocpu/internal/accel":    true,
}

func runLayering(pass *analysis.Pass) error {
	pkgPath := normalizePkgPath(pass.Pkg.Path())
	if strings.HasSuffix(pkgPath, ".test") {
		return nil // synthesized test-main package
	}
	allowed, known := layerDAG[pkgPath]
	allowedSet := make(map[string]bool, len(allowed))
	for _, a := range allowed {
		allowedSet[a] = true
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if !hasPathPrefix(path, "nocpu") {
				continue // stdlib and friends are not layering's business
			}
			switch {
			case pkgPath == "nocpu/internal/msg":
				pass.Reportf(imp.Pos(),
					"import edge nocpu/internal/msg -> %s breaks the leaf rule: msg is the bus vocabulary every tier shares and must import nothing in-module", path)
			case deviceTier[pkgPath] && (hasPathPrefix(path, "nocpu/internal/centralos") || hasPathPrefix(path, "nocpu/internal/exp")):
				pass.Reportf(imp.Pos(),
					"import edge %s -> %s breaks the §2 decentralization boundary: self-managing devices talk only via msg/bus, never to the centralized kernel or the experiment harness", pkgPath, path)
			case !known:
				pass.Reportf(imp.Pos(),
					"package %s is not registered in the architecture DAG; add it to layerDAG in internal/lint/layering.go with the imports it is allowed", pkgPath)
				return nil // one report per unregistered package is enough
			case !allowedSet[path]:
				pass.Reportf(imp.Pos(),
					"import edge %s -> %s is not in the architecture DAG; allowed in-module imports are [%s]. If the edge is intentional, add it to layerDAG in internal/lint/layering.go",
					pkgPath, path, strings.Join(sortedStrings(allowed), " "))
			}
		}
	}
	return nil
}

// normalizePkgPath strips the " [variant]" suffix go vet appends to
// test-augmented package paths.
func normalizePkgPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

func sortedStrings(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}
