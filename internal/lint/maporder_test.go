package lint_test

import (
	"testing"

	"nocpu/internal/lint"
	"nocpu/internal/lint/analysistest"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Maporder, "maporder/a")
}
