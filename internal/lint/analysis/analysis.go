// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic)
// used by the nocpu-lint suite.
//
// The real x/tools module is not vendored and the build environment is
// hermetic (no module proxy), so the suite is built on the standard
// library only: go/ast, go/types and go/token provide everything the
// four nocpu analyzers need. The API mirrors x/tools closely enough that
// migrating to the real framework later is a mechanical change.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the check in diagnostics and in //lint:allow
	// directives. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of what the check enforces and
	// why.
	Doc string
	// Run applies the check to one package and reports findings through
	// pass.Report.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
	// Allowed reports whether a //lint:allow directive for rule covers
	// pos. Report already applies this filter; analyzers that derive
	// facts from sanctioned findings (nodeterminism's taint) query it
	// directly.
	Allowed func(pos token.Pos, rule string) bool
	// DepFacts returns the fact blob a direct or indirect dependency
	// exported for this analyzer, or nil when the dependency exported
	// nothing (or the driver has no facts channel).
	DepFacts func(pkgPath string) []byte
	// ExportFacts records this package's fact blob for importing
	// packages. Nil when the driver has no facts channel.
	ExportFacts func(blob []byte)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Rule is the reporting analyzer's name; filled in by Run.
	Rule string
}

// Facts is the cross-package side channel for analyzers that summarize
// their package for importers (the vet .vetx protocol, or an in-memory
// map in tests). Blobs are opaque to the framework; each analyzer
// defines its own encoding.
type Facts interface {
	// Get returns the blob pkgPath exported for analyzer, or nil.
	Get(pkgPath, analyzer string) []byte
	// Set records this package's blob for analyzer.
	Set(analyzer string, blob []byte)
}

// Run applies every analyzer to the package and returns the surviving
// diagnostics in file/position order. It implements the one suite-wide
// behavior shared by the vettool and the test harness: //lint:allow
// suppression (see Suppressed) and the requirement that every allow
// directive carries a reason.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	return RunWithFacts(analyzers, fset, files, pkg, info, nil)
}

// RunWithFacts is Run with a facts channel for interprocedural
// analyzers; facts may be nil.
func RunWithFacts(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts Facts) ([]Diagnostic, error) {
	allows := collectAllows(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d Diagnostic) {
				d.Rule = a.Name
				if !allows.suppresses(fset.Position(d.Pos), a.Name) {
					out = append(out, d)
				}
			},
			Allowed: func(pos token.Pos, rule string) bool {
				return allows.suppresses(fset.Position(pos), rule)
			},
		}
		if facts != nil {
			name := a.Name
			pass.DepFacts = func(pkgPath string) []byte { return facts.Get(pkgPath, name) }
			pass.ExportFacts = func(blob []byte) { facts.Set(name, blob) }
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	// A directive without a reason is itself a finding: unexplained
	// suppressions are how invariants rot.
	for _, bad := range allows.malformed {
		out = append(out, bad)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}

// allowKey locates one //lint:allow directive.
type allowKey struct {
	file string
	line int
	rule string
}

type allowSet struct {
	keys      map[allowKey]bool
	list      []AllowDirective
	malformed []Diagnostic
}

// AllowDirective is one well-formed //lint:allow occurrence: where it
// sits, which rule it silences, and the mandatory justification.
type AllowDirective struct {
	File   string
	Line   int
	Rule   string
	Reason string
}

// Inventory returns every well-formed //lint:allow directive in the
// files, in source order — the raw material of `nocpu-lint -allows`,
// which keeps the suite's entire suppression surface reviewable in one
// listing. Malformed directives (no reason) are excluded here; they
// surface as findings instead.
func Inventory(fset *token.FileSet, files []*ast.File) []AllowDirective {
	return collectAllows(fset, files).list
}

// suppresses reports whether a directive for rule covers a diagnostic at
// posn: the directive may sit on the flagged line or on the line above.
func (s allowSet) suppresses(posn token.Position, rule string) bool {
	return s.keys[allowKey{posn.Filename, posn.Line, rule}] ||
		s.keys[allowKey{posn.Filename, posn.Line - 1, rule}]
}

// collectAllows scans comments for //lint:allow <rule> <reason...>
// directives. The reason is mandatory; directives without one are
// recorded as malformed findings.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	s := allowSet{keys: make(map[allowKey]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				posn := fset.Position(c.Pos())
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Diagnostic{
						Pos:     c.Pos(),
						Rule:    "allow",
						Message: "lint:allow directive needs a rule name and a reason: //lint:allow <rule> <why this is safe>",
					})
					continue
				}
				s.keys[allowKey{posn.Filename, posn.Line, fields[0]}] = true
				s.list = append(s.list, AllowDirective{
					File:   posn.Filename,
					Line:   posn.Line,
					Rule:   fields[0],
					Reason: strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return s
}
