package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// run type-checks src and applies a trivial analyzer that reports
// "finding" at every call expression, returning the surviving
// diagnostics.
func run(t *testing.T, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	conf := types.Config{Error: func(error) {}}
	info := &types.Info{Uses: make(map[*ast.Ident]types.Object)}
	pkg, _ := conf.Check("a", fset, []*ast.File{f}, info)
	a := &Analyzer{
		Name: "callsite",
		Doc:  "reports every call",
		Run: func(p *Pass) error {
			ast.Inspect(f, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					p.Reportf(c.Pos(), "finding")
				}
				return true
			})
			return nil
		},
	}
	diags, err := Run([]*Analyzer{a}, fset, []*ast.File{f}, pkg, info)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func TestAllowSuppressesSameLine(t *testing.T) {
	diags := run(t, `package a
func g() {}
func h() {
	g() //lint:allow callsite the call is idempotent
}
`)
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", diags)
	}
}

func TestAllowSuppressesLineAbove(t *testing.T) {
	diags := run(t, `package a
func g() {}
func h() {
	//lint:allow callsite the call is idempotent
	g()
}
`)
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", diags)
	}
}

func TestAllowWrongRuleDoesNotSuppress(t *testing.T) {
	diags := run(t, `package a
func g() {}
func h() {
	g() //lint:allow otherrule some reason
}
`)
	if len(diags) != 1 || diags[0].Rule != "callsite" {
		t.Fatalf("want 1 callsite diagnostic, got %v", diags)
	}
}

func TestAllowWithoutReasonIsMalformed(t *testing.T) {
	diags := run(t, `package a
func g() {}
func h() {
	g() //lint:allow callsite
}
`)
	// The reason-less directive must not suppress, and is itself
	// reported.
	var rules []string
	for _, d := range diags {
		rules = append(rules, d.Rule)
	}
	if len(diags) != 2 {
		t.Fatalf("want [allow callsite] diagnostics, got %v (%v)", rules, diags)
	}
	found := map[string]bool{}
	for _, d := range diags {
		found[d.Rule] = true
		if d.Rule == "allow" && !strings.Contains(d.Message, "needs a rule name and a reason") {
			t.Errorf("allow diagnostic has wrong message: %s", d.Message)
		}
	}
	if !found["allow"] || !found["callsite"] {
		t.Fatalf("want one allow and one callsite diagnostic, got %v", rules)
	}
}

func TestDiagnosticsSortedByPosition(t *testing.T) {
	diags := run(t, `package a
func g() {}
func h() {
	g()
	g()
}
`)
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics, got %v", diags)
	}
	fset := token.NewFileSet()
	_ = fset
	if diags[0].Pos >= diags[1].Pos {
		t.Fatalf("diagnostics not sorted: %v", diags)
	}
}

func TestInventoryListsWellFormedDirectives(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "inv.go", `package a
func g() {}
func h() {
	g() //lint:allow callsite the call is idempotent
	//lint:allow otherrule above-the-line form, reason spans words
	g()
	g() //lint:allow
}
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	got := Inventory(fset, []*ast.File{f})
	if len(got) != 2 {
		t.Fatalf("want 2 well-formed directives (the reasonless one is malformed, not inventory), got %v", got)
	}
	if got[0].Rule != "callsite" || got[0].Line != 4 || got[0].Reason != "the call is idempotent" {
		t.Errorf("first directive wrong: %+v", got[0])
	}
	if got[1].Rule != "otherrule" || got[1].Reason != "above-the-line form, reason spans words" {
		t.Errorf("second directive wrong: %+v", got[1])
	}
}
