// Package lint is the nocpu-lint analyzer suite: machine-enforcement of
// the two invariants the whole reproduction stands on.
//
//  1. Determinism. Every run is bit-deterministic: all time comes from
//     the virtual clock (sim.Engine), all randomness from a seeded
//     sim.Rand, and the simulation is single-threaded. The golden-trace
//     and experiment-table tests assert byte-identical output, so a
//     single wall-clock read or unsorted map iteration on an output
//     path is a silent, intermittent test breaker. Enforced by the
//     nodeterminism and maporder analyzers.
//
//  2. Decentralization (§2 of "The Last CPU"). Self-managing devices
//     cooperate only through bus messages; nothing in the device tier
//     may reach into the centralized-baseline kernel (centralos) or the
//     experiment harness. Enforced by the layering analyzer, which
//     encodes the package DAG, and by kindswitch, which keeps every
//     switch over the bus-protocol message kinds exhaustive so a new
//     kind cannot be dropped silently by old dispatch code.
//
//  3. Wire compatibility. The bus protocol is a real wire format that
//     must keep decoding frames from older builds across rolling
//     upgrades (E19's campaigns): encode and decode of every kind must
//     agree on the op sequence, every kind must be registered
//     end-to-end (type, decode dispatcher, fuzz seed), and the schema
//     may evolve only by trailing-field additions against the
//     committed internal/msg/wire.lock. Enforced by the wireproto
//     analyzer, which extracts the schema from the codec bodies by
//     symbolic interpretation.
//
//  4. Overload safety. Every queue a message or request can wait in is
//     either bounded — len() checked against a limit, with a
//     deterministic shed/drop at the limit — or annotated with a reason
//     it cannot grow without bound. Enforced by the boundedqueue
//     analyzer; the overload harness (internal/overload) audits the
//     same property dynamically (its Q1 guarantee).
//
// # Suppressing a finding
//
// The only escape hatch is an explicit, justified directive on the
// flagged line or the line directly above it:
//
//	//lint:allow <rule> <reason>
//
// for example:
//
//	//lint:allow nodeterminism host-side CLI flag parsing, not simulation
//
// The reason is mandatory — a directive without one is itself reported
// — and each directive covers exactly one rule on exactly one line, so
// suppressions stay local, visible in review, and greppable.
//
// The suite runs as a go vet tool: `make lint` builds cmd/nocpu-lint
// and invokes `go vet -vettool=$(BIN)/nocpu-lint ./...`, so findings
// carry standard file:line:column positions and integrate with editors
// and CI like any other vet diagnostic.
package lint

import "nocpu/internal/lint/analysis"

// Analyzers returns the full nocpu-lint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Nodeterminism,
		Maporder,
		Layering,
		Kindswitch,
		Boundedqueue,
		Wireproto,
	}
}

// simScoped reports whether a package is part of the simulated machine
// and therefore subject to the determinism rules. Host-side tooling —
// this linter and its driver — is exempt: it runs on the developer's
// machine, not inside the simulation. (The vettool only feeds module
// packages to the suite, so everything else is in scope by default.)
func simScoped(pkgPath string) bool {
	return !hasPathPrefix(pkgPath, "nocpu/internal/lint") &&
		pkgPath != "nocpu/cmd/nocpu-lint"
}

// hasPathPrefix reports whether path is prefix or is under prefix/.
func hasPathPrefix(path, prefix string) bool {
	return path == prefix ||
		(len(path) > len(prefix) && path[:len(prefix)] == prefix && path[len(prefix)] == '/')
}
