// Package msg is a miniature codec package exercising wireproto's
// registration-completeness checks: every Kind constant needs a message
// type, and the decode dispatcher must construct the right type for
// every kind.
package msg

// Kind discriminates message types on the wire.
type Kind uint16

// Kinds.
const (
	KindInvalid Kind = iota
	KindA
	KindB      // want `kind KindB is not constructed by the decode dispatcher \(newMessage\): inbound frames of this kind are rejected as unknown`
	KindOrphan // want `msg\.Kind constant KindOrphan has no message type: no type's Kind\(\) method returns it`
	KindMis
	kindMax
)

type writer struct{ buf []byte }

func (w *writer) u16(v uint16) {}

type reader struct {
	buf []byte
	off int
}

func (r *reader) u16() uint16 { return 0 }

// A is registered end-to-end.
type A struct{ X uint16 }

func (m *A) Kind() Kind       { return KindA }
func (m *A) encode(w *writer) { w.u16(m.X) }
func (m *A) decode(r *reader) { m.X = r.u16() }

// B has a type but newMessage never constructs it.
type B struct{ Y uint16 }

func (m *B) Kind() Kind       { return KindB }
func (m *B) encode(w *writer) { w.u16(m.Y) }
func (m *B) decode(r *reader) { m.Y = r.u16() }

// Mis is registered, but the dispatcher returns the wrong type for it.
type Mis struct{ Z uint16 }

func (m *Mis) Kind() Kind       { return KindMis }
func (m *Mis) encode(w *writer) { w.u16(m.Z) }
func (m *Mis) decode(r *reader) { m.Z = r.u16() }

// Enc can be sent but never parsed.
type Enc struct{ W uint16 }

func (m *Enc) encode(w *writer) { w.u16(m.W) } // want `Enc has encode but no decode method: frames of this kind can never be parsed by a receiver`

// newMessage is the decode dispatcher.
func newMessage(k Kind) any {
	switch k {
	case KindA:
		return &A{}
	case KindMis: // want `decode dispatcher returns A for KindMis, but A's Kind\(\) is KindA: frames of kind KindMis would be parsed with the wrong layout`
		return &A{}
	}
	return nil
}
