// Package msg is a miniature codec package with a committed wire.lock
// exercising the append-only evolution checks: removed fields, retyped
// fields, renumbered kinds, vanished kinds and reused wire numbers are
// reported; brand-new kinds on fresh numbers are not.
package msg // want `kind KindGone \(5\) is in wire.lock but gone from the tree: removing a wire kind orphans every peer still sending it`

// Kind discriminates message types on the wire.
type Kind uint16

// Kinds. KindC moved off its locked number; KindD and KindE are new,
// but KindE lands on the number the lock assigns to KindGone.
const (
	KindInvalid Kind = 0
	KindA       Kind = 1
	KindB       Kind = 2
	KindC       Kind = 9
	KindD       Kind = 4
	KindE       Kind = 5
)

type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   {}
func (w *writer) u16(v uint16) {}
func (w *writer) u32(v uint32) {}
func (w *writer) u64(v uint64) {}
func (w *writer) str(s string) {}

type reader struct {
	buf []byte
	off int
}

func (r *reader) u8() uint8   { return 0 }
func (r *reader) u16() uint16 { return 0 }
func (r *reader) u32() uint32 { return 0 }
func (r *reader) u64() uint64 { return 0 }
func (r *reader) str() string { return "" }

// A dropped its locked trailing field Y.
type A struct{ X uint16 }

func (m *A) Kind() Kind { return KindA }
func (m *A) encode(w *writer) { // want `wire\.lock: field "u16 Y" removed from KindA: old frames still carry it, so every later field would decode shifted`
	w.u16(m.X)
}
func (m *A) decode(r *reader) { m.X = r.u16() }

// B retyped its locked field P from u32 to str.
type B struct{ P string }

func (m *B) Kind() Kind { return KindB }
func (m *B) encode(w *writer) { // want `wire\.lock: field 0 of KindB changed: wire\.lock has "u32 P", tree has "str P"`
	w.str(m.P)
}
func (m *B) decode(r *reader) { m.P = r.str() }

// C kept its layout but moved to a different wire number.
type C struct{ Q uint8 }

func (m *C) Kind() Kind { return KindC }
func (m *C) encode(w *writer) { // want `wire\.lock: kind KindC renumbered 3 -> 9: the discriminator is wire-visible, so old frames would dispatch to the wrong decoder`
	w.u8(m.Q)
}
func (m *C) decode(r *reader) { m.Q = r.u8() }

// D is a new kind on a fresh number: fine.
type D struct{ Z uint64 }

func (m *D) Kind() Kind       { return KindD }
func (m *D) encode(w *writer) { w.u64(m.Z) }
func (m *D) decode(r *reader) { m.Z = r.u64() }

// E is new but squats on the number the lock gives to KindGone.
type E struct{ V uint32 }

func (m *E) Kind() Kind { return KindE }
func (m *E) encode(w *writer) { // want `wire\.lock: new kind KindE reuses wire number 5, which wire\.lock assigns to KindGone`
	w.u32(m.V)
}
func (m *E) decode(r *reader) { m.V = r.u32() }

// newMessage is the decode dispatcher.
func newMessage(k Kind) any {
	switch k {
	case KindA:
		return &A{}
	case KindB:
		return &B{}
	case KindC:
		return &C{}
	case KindD:
		return &D{}
	case KindE:
		return &E{}
	}
	return nil
}
