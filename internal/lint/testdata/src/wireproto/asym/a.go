// Package msg is a miniature codec package exercising wireproto's
// encode/decode symmetry checks: matched pairs pass, retyped and
// reordered fields are reported, and the trailing-optional idiom is
// accepted on both sides.
package msg

// Kind discriminates message types on the wire.
type Kind uint16

// Kinds.
const (
	KindInvalid Kind = iota
	KindGood
	KindSwap
	KindShort
	KindRetype
	KindOpt
	KindLenient
	KindMisplaced
	kindMax
)

type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   {}
func (w *writer) u16(v uint16) {}
func (w *writer) u32(v uint32) {}
func (w *writer) u64(v uint64) {}
func (w *writer) str(s string) {}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) u8() uint8   { return 0 }
func (r *reader) u16() uint16 { return 0 }
func (r *reader) u32() uint32 { return 0 }
func (r *reader) u64() uint64 { return 0 }
func (r *reader) str() string { return "" }

// Good is fully symmetric: no findings.
type Good struct {
	A uint16
	B string
}

func (m *Good) Kind() Kind { return KindGood }
func (m *Good) encode(w *writer) {
	w.u16(m.A)
	w.str(m.B)
}
func (m *Good) decode(r *reader) {
	m.A = r.u16()
	m.B = r.str()
}

// Swap's decoder reads its two same-typed fields in the wrong order —
// invisible to op kinds, caught by field names.
type Swap struct {
	Credits uint32
	Window  uint32
}

func (m *Swap) Kind() Kind { return KindSwap }
func (m *Swap) encode(w *writer) {
	w.u32(m.Credits)
	w.u32(m.Window)
}
func (m *Swap) decode(r *reader) { // want `encode/decode asymmetry in Swap: op 0: encoder writes field "u32 Credits", decoder stores field "u32 Window" — fields are swapped or reordered`
	m.Window = r.u32()
	m.Credits = r.u32()
}

// Short's decoder stopped reading a field the encoder still writes.
type Short struct {
	A uint16
	B uint16
}

func (m *Short) Kind() Kind { return KindShort }
func (m *Short) encode(w *writer) {
	w.u16(m.A)
	w.u16(m.B)
}
func (m *Short) decode(r *reader) { // want `encode/decode asymmetry in Short: encoder writes 1 extra op\(s\) starting with "u16 B" that the decoder never reads`
	m.A = r.u16()
}

// Retype's decoder reads the fields with the wrong ops.
type Retype struct {
	N uint32
	S string
}

func (m *Retype) Kind() Kind { return KindRetype }
func (m *Retype) encode(w *writer) {
	w.u32(m.N)
	w.str(m.S)
}
func (m *Retype) decode(r *reader) { // want `encode/decode asymmetry in Retype: op 0: encoder writes "u32 N", decoder reads "str S"`
	m.S = r.str()
	m.N = r.u32()
}

// Opt uses the sanctioned evolution idiom on both sides: a trailing
// field written only when set, read only when bytes remain.
type Opt struct {
	A   uint16
	Inc uint32
}

func (m *Opt) Kind() Kind { return KindOpt }
func (m *Opt) encode(w *writer) {
	w.u16(m.A)
	if m.Inc != 0 {
		w.u32(m.Inc)
	}
}
func (m *Opt) decode(r *reader) {
	m.A = r.u16()
	if r.err == nil && r.off < len(r.buf) {
		m.Inc = r.u32()
	}
}

// Lenient's encoder writes its tail unconditionally while the decoder
// guards it — a NEW decoder accepting OLD short frames. Permitted.
type Lenient struct {
	A uint16
	T uint64
}

func (m *Lenient) Kind() Kind { return KindLenient }
func (m *Lenient) encode(w *writer) {
	w.u16(m.A)
	w.u64(m.T)
}
func (m *Lenient) decode(r *reader) {
	m.A = r.u16()
	if r.off < len(r.buf) {
		m.T = r.u64()
	}
}

// Misplaced guards a field that is not last: presence cannot be
// inferred by buffer exhaustion, so every later field shifts.
type Misplaced struct {
	Flag uint8
	X    uint16
}

func (m *Misplaced) Kind() Kind { return KindMisplaced }
func (m *Misplaced) encode(w *writer) { // want `conditional field "opt Flag" of Misplaced is not the trailing field`
	if m.Flag != 0 {
		w.u8(m.Flag)
	}
	w.u16(m.X)
}
func (m *Misplaced) decode(r *reader) { // want `encode/decode asymmetry in Misplaced`
	m.Flag = r.u8()
	m.X = r.u16()
}

// newMessage is the decode dispatcher.
func newMessage(k Kind) any {
	switch k {
	case KindGood:
		return &Good{}
	case KindSwap:
		return &Swap{}
	case KindShort:
		return &Short{}
	case KindRetype:
		return &Retype{}
	case KindOpt:
		return &Opt{}
	case KindLenient:
		return &Lenient{}
	case KindMisplaced:
		return &Misplaced{}
	}
	return nil
}
