// Package a exercises the kindswitch analyzer against the miniature
// msg package.
package a

import "msg"

func dispatch(k msg.Kind) string {
	switch k { // want `switch over msg\.Kind does not cover KindClose, KindData`
	case msg.KindHello:
		return "hello"
	}

	// Exhaustive: every wire kind decided, sentinels not required.
	switch k {
	case msg.KindHello, msg.KindData:
		return "payload"
	case msg.KindClose:
		return "close"
	}

	// A default clause is the unknown-future-kind path, not a decision
	// about KindClose.
	switch k { // want `switch over msg\.Kind does not cover KindClose`
	case msg.KindHello, msg.KindData:
		return "known"
	default:
		return "unknown"
	}
}

func tagless(k msg.Kind) bool {
	// Tagless switches compare booleans; kindswitch leaves them alone.
	switch {
	case k == msg.KindHello:
		return true
	}
	return false
}

func otherEnum(r msg.Role) string {
	// A different enum in the msg package is not the discriminator.
	switch r {
	case msg.RoleNIC:
		return "nic"
	}
	return ""
}

var partialNames = map[msg.Kind]string{ // want `map literal keyed by msg\.Kind has no entry for KindClose`
	msg.KindHello: "hello",
	msg.KindData:  "data",
}

var fullNames = map[msg.Kind]string{
	msg.KindHello: "hello",
	msg.KindData:  "data",
	msg.KindClose: "close",
}

//lint:allow kindswitch legacy dispatcher kept for the migration test
var suppressedNames = map[msg.Kind]string{
	msg.KindHello: "hello",
}
