// Package a exercises the nodeterminism analyzer.
package a

import (
	"crypto/rand" // want `import of crypto/rand is nondeterministic in simulation code`
	mrand "math/rand" // want `import of math/rand is nondeterministic in simulation code`
	"sync" // want `import of sync is nondeterministic in simulation code`
	"time"
)

func wallClock() {
	_ = time.Now()          // want `time\.Now reads the host wall clock; use sim\.Engine\.Now`
	time.Sleep(1)           // want `time\.Sleep reads the host wall clock`
	_ = time.Since(time.Time{}) // want `time\.Since reads the host wall clock`
	_ = time.NewTicker(1)   // want `time\.NewTicker reads the host wall clock`
	_ = time.After(1)       // want `time\.After reads the host wall clock`
}

func allowedTimeNames(d time.Duration) time.Duration {
	// Referring to time's types and constants is fine; only clock reads
	// are banned.
	return d * time.Millisecond
}

func suppressed() {
	_ = time.Now() //lint:allow nodeterminism host-side progress logging in the CLI wrapper
	//lint:allow nodeterminism directive on the line above also suppresses
	_ = time.Now()
	// A directive for a different rule does not suppress this one.
	_ = time.Now() //lint:allow maporder wrong rule // want `time\.Now reads the host wall clock`
}

func concurrency() {
	go wallClock()   // want `goroutine inside the single-threaded event loop`
	select {}        // want `select inside the single-threaded event loop`
	var mu sync.Mutex
	_ = mu
	_ = mrand.Int()
	_ = rand.Reader
}
