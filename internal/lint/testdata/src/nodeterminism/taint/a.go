// Package taint exercises the interprocedural leg of nodeterminism:
// helpers whose sanctioned (allow-suppressed) sources make them
// transitively nondeterministic are flagged at their call sites.
package taint

import "time"

// stamp's wall-clock read is sanctioned for the host-side path, so the
// read itself is quiet — but the sanction does not extend to callers.
func stamp() int64 {
	//lint:allow nodeterminism host-side log timestamp, not simulation state
	return time.Now().UnixNano()
}

// helper is a sanctioned wrapper: its call into stamp is allowed, so
// the taint keeps flowing through it with a longer chain.
func helper() int64 {
	//lint:allow nodeterminism host-side wrapper; simulation code must not call this
	return stamp()
}

func caller() int64 {
	return stamp() // want `call to stamp is transitively nondeterministic: reaches time\.Now via stamp`
}

func top() int64 {
	return helper() // want `call to helper is transitively nondeterministic: reaches time\.Now via helper -> stamp`
}

// spawn's goroutine is sanctioned; callers are still flagged.
func spawn() {
	go func() {}() //lint:allow nodeterminism host-side watchdog thread
}

func callSpawn() {
	spawn() // want `call to spawn is transitively nondeterministic: reaches goroutine spawn via spawn`
}

// direct's source is reported right here, so it does NOT propagate:
// one finding, not a cascade through every caller.
func direct() {
	time.Sleep(1) // want `time\.Sleep reads the host wall clock`
}

func callDirect() {
	direct() // no finding: direct's source is already reported above
}

// ping/pong form a clean call cycle: resolution terminates, no taint.
func ping(n int) int {
	if n == 0 {
		return 0
	}
	return pong(n - 1)
}

func pong(n int) int {
	if n == 0 {
		return 1
	}
	return ping(n - 1)
}

func useCycle() int {
	return ping(3) // no finding
}
