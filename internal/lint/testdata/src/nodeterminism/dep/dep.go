// Package dep is the dependency side of the cross-package taint suite:
// its sanctioned wall-clock readers export taint facts that the
// importing package's analysis consumes.
package dep

import "time"

// WallStamp is host-side; simulation code must not call it.
func WallStamp() int64 {
	//lint:allow nodeterminism host-side CLI timestamp, not simulation state
	return time.Now().UnixNano()
}

// Clock carries the method-key case (funcKey "Clock.Read").
type Clock struct{}

// Read is host-side; simulation code must not call it.
func (c Clock) Read() int64 {
	//lint:allow nodeterminism host-side CLI timestamp, not simulation state
	return time.Now().UnixNano()
}

// Clean is deterministic: importers may call it freely.
func Clean(n int) int { return n + 1 }
