// Package b exercises cross-package taint: dep's exported facts flag
// calls into its sanctioned wall-clock readers here.
package b

import "nodeterminism/dep"

func useDep() int64 {
	return dep.WallStamp() // want `call to WallStamp is transitively nondeterministic: reaches time\.Now via WallStamp`
}

func useMethod() int64 {
	var c dep.Clock
	return c.Read() // want `call to Read is transitively nondeterministic: reaches time\.Now via Read`
}

func fine() int {
	return dep.Clean(1) // no finding
}
