// Package a exercises the boundedqueue analyzer.
package a

type item struct{}

type q struct {
	pending  []item
	stalled  []func()
	waiting  []int
	backlog  []item
	inflight []item
	others   []item
	count    int
}

// unbounded is the overload footgun: the queue grows with every call.
func unbounded(s *q, it item) {
	s.pending = append(s.pending, it) // want `append to queue s\.pending with no len\(s\.pending\) bound check in unbounded`
}

// boundedBefore is the sanctioned shape: check, shed, then append.
func boundedBefore(s *q, it item) {
	if len(s.pending) >= 64 {
		return // shed
	}
	s.pending = append(s.pending, it)
}

// boundedAnywhere: the bound check may live anywhere in the function,
// closures included.
func boundedAnywhere(s *q, fn func()) {
	drop := func() bool { return len(s.stalled) >= 32 }
	if drop() {
		return
	}
	s.stalled = append(s.stalled, fn)
}

// boundInClosureAppliesToAppend: append inside a closure, check outside.
func boundInClosureAppliesToAppend(s *q, it item) {
	if len(s.backlog) >= 8 {
		return
	}
	defer func() {
		s.backlog = append(s.backlog, it)
	}()
}

// wrongQueueChecked: bounding a different queue does not cover this one.
func wrongQueueChecked(s *q, it item) {
	if len(s.pending) >= 64 {
		return
	}
	s.inflight = append(s.inflight, it) // want `append to queue s\.inflight with no len\(s\.inflight\) bound check in wrongQueueChecked`
}

// notAQueueName: field names that don't smell like a queue are ignored.
func notAQueueName(s *q, it item) {
	s.others = append(s.others, it)
}

// localSlice: only struct fields are queues; locals are workspace.
func localSlice(its []item, it item) []item {
	pending := its
	pending = append(pending, it)
	return pending
}

// allowed: intentionally unbounded, justified in place.
func allowed(s *q, n int) {
	//lint:allow boundedqueue producer issues at most 4 at a time
	s.waiting = append(s.waiting, n)
}
