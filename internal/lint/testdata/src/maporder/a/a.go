// Package a exercises the maporder analyzer.
package a

type tracer struct{}

func (tracer) Record(string) {}

var tr tracer

func sink(string) {}

// emitInOrder is the classic golden-hash killer: output in map order.
func emitInOrder(m map[string]int) {
	for k := range m {
		sink(k) // want `call to sink inside range over map m runs in map iteration order`
	}
}

func methodSink(m map[string]int) {
	for k := range m {
		tr.Record(k) // want `call to tr\.Record inside range over map m runs in map iteration order`
	}
}

func nestedInIf(m map[string]int) {
	for k, v := range m {
		if v > 0 {
			sink(k) // want `call to sink inside range over map m runs in map iteration order`
		}
	}
}

func callInCondition(m map[string]int, f func(string) bool) {
	for k := range m {
		if f(k) { // want `call to f inside range over map m runs in map iteration order`
			continue
		}
	}
}

// collectAndSort is the sanctioned pattern: pure accumulation, sort,
// then emit.
func collectAndSort(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		sink(k)
	}
}

func sortStrings([]string) {}

// folds are order-independent accumulation: allowed.
func folds(m map[string]uint64) uint64 {
	var total, biggest uint64
	for _, v := range m {
		total += v
		if v > biggest {
			biggest = v
		}
	}
	return total + biggest
}

// conversionsAreNotCalls: type conversions inside the body are fine.
func conversionsAreNotCalls(m map[string]int) int64 {
	var sum int64
	for _, v := range m {
		sum += int64(v)
	}
	return sum
}

// mutateSameMap: delete/assign on maps is allowed.
func mutateSameMap(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		} else {
			m[k] = v - 1
		}
	}
}

// earlyReturn of call-free values is allowed (set membership).
func earlyReturn(m map[string]int, want int) bool {
	for _, v := range m {
		if v == want {
			return true
		}
	}
	return false
}

func suppressed(m map[string]int) {
	for k := range m {
		sink(k) //lint:allow maporder sink is an order-insensitive set insert
	}
}

func goStmt(m map[string]int) {
	for k := range m {
		go sink(k) // want `starting a goroutine inside range over map m runs in map iteration order`
	}
}

// sliceRangesAreFine: the analyzer only judges maps.
func sliceRangesAreFine(s []string) {
	for _, k := range s {
		sink(k)
	}
}
