// Package msg is a miniature of the real bus vocabulary for the
// kindswitch tests: same package name, same discriminator shape.
package msg

// Kind discriminates message types on the wire.
type Kind uint16

// Kinds. KindInvalid and kindMax are sentinels, not wire kinds.
const (
	KindInvalid Kind = iota
	KindHello
	KindData
	KindClose
	kindMax
)

var _ = kindMax

// Role is a different enum in the same package; kindswitch ignores it.
type Role uint8

// Roles.
const (
	RoleNIC Role = iota + 1
	RoleSSD
)
