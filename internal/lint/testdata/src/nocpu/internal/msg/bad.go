// Package msg exercises the leaf rule: the bus vocabulary must not
// import anything in-module.
package msg

import (
	_ "nocpu/internal/sim" // want `breaks the leaf rule`
	_ "fmt"
)
