// Package newpkg is not registered in the architecture DAG.
package newpkg

import (
	_ "nocpu/internal/msg" // want `package nocpu/internal/newpkg is not registered in the architecture DAG`
)
