// Test files may wire up any harness they need: layering skips them.
package smartnic

import (
	_ "nocpu/internal/centralos"
	_ "nocpu/internal/exp"
)
