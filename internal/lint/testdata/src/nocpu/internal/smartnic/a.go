// Package smartnic exercises the layering analyzer's device-tier rules
// under the real package path.
package smartnic

import (
	_ "nocpu/internal/bus" // in the DAG: devices may talk to the bus
	_ "nocpu/internal/centralos" // want `breaks the §2 decentralization boundary`
	_ "nocpu/internal/exp" // want `breaks the §2 decentralization boundary`
	_ "nocpu/internal/kvs" // want `import edge nocpu/internal/smartnic -> nocpu/internal/kvs is not in the architecture DAG`
	_ "nocpu/internal/msg" // in the DAG
	_ "sort" // stdlib is never layering's business
)
