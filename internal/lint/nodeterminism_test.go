package lint_test

import (
	"testing"

	"nocpu/internal/lint"
	"nocpu/internal/lint/analysistest"
)

func TestNodeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Nodeterminism, "nodeterminism/a")
}
