package lint_test

import (
	"testing"

	"nocpu/internal/lint"
	"nocpu/internal/lint/analysistest"
)

func TestNodeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Nodeterminism, "nodeterminism/a")
}

func TestNodeterminismTaint(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Nodeterminism, "nodeterminism/taint")
}

func TestNodeterminismCrossPackageTaint(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Nodeterminism, "nodeterminism/b")
}
