package lint

import (
	"strings"
	"testing"
)

func sampleSchema() *WireSchema {
	return &WireSchema{Msgs: []MsgSchema{
		{Kind: 2, KindName: "KindB", TypeName: "B", Ops: []Op{
			{Kind: OpU32, Name: "len(Items)"},
			{Kind: OpRep, Name: "Items", Body: []Op{
				{Kind: OpU16, Name: "ID"},
				{Kind: OpStr, Name: "Label"},
			}},
		}},
		{Kind: 1, KindName: "KindA", TypeName: "A", Ops: []Op{
			{Kind: OpU16, Name: "X"},
			{Kind: OpBool},
			{Kind: OpOpt, Name: "Inc", Body: []Op{{Kind: OpU32, Name: "Inc"}}},
		}},
	}}
}

func TestWireLockRoundTrip(t *testing.T) {
	s := sampleSchema()
	text := Format(s)
	parsed, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(Format(s)): %v", err)
	}
	if got := Format(parsed); got != text {
		t.Fatalf("round trip is not a fixed point:\nfirst:\n%s\nsecond:\n%s", text, got)
	}
}

func TestWireLockCanonicalization(t *testing.T) {
	// Format sorts by kind number regardless of input order.
	text := Format(sampleSchema())
	ia, ib := strings.Index(text, "msg 1 KindA"), strings.Index(text, "msg 2 KindB")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("messages not in kind order:\n%s", text)
	}
	// An unnamed op renders as "." and parses back to "".
	if !strings.Contains(text, "\tbool .\n") {
		t.Fatalf("unnamed op not rendered as '.':\n%s", text)
	}
	parsed, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Msgs[0].Ops[1].Name != "" {
		t.Fatalf("'.' should parse to empty name, got %q", parsed.Msgs[0].Ops[1].Name)
	}
	// Comments and blank lines are transparent, so regeneration is
	// idempotent with the preamble in place.
	reparsed, err := Parse("# leading comment\n\n" + text)
	if err != nil {
		t.Fatal(err)
	}
	if Format(reparsed) != text {
		t.Fatal("comments/blank lines changed the parsed schema")
	}
}

func TestWireLockParseErrors(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{"missing header", "msg 1 KindA A\n", "header"},
		{"unknown op", "wire.lock v1\nmsg 1 KindA A\n\tvarint X\n", "unknown op"},
		{"unclosed group", "wire.lock v1\nmsg 1 KindA A\n\trep Items\n", "unclosed group"},
		{"stray end", "wire.lock v1\nmsg 1 KindA A\n\tend\n", "no open group"},
		{"op before msg", "wire.lock v1\nu16 X\n", "before any msg"},
		{"bad kind number", "wire.lock v1\nmsg x KindA A\n", "bad kind number"},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.text); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: got err %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestCompatDiff(t *testing.T) {
	old := sampleSchema()
	violations := func(cur *WireSchema) []string {
		var out []string
		for _, v := range CompatDiff(old, cur) {
			out = append(out, v.KindName+": "+v.Msg)
		}
		return out
	}
	hasViolation := func(vs []string, substr string) bool {
		for _, v := range vs {
			if strings.Contains(v, substr) {
				return true
			}
		}
		return false
	}

	// Identical schema: clean.
	if vs := violations(sampleSchema()); len(vs) != 0 {
		t.Fatalf("identical schema flagged: %v", vs)
	}

	// Trailing addition to an existing message and a new kind: clean.
	cur := sampleSchema()
	cur.Msgs[1].Ops = append(cur.Msgs[1].Ops, Op{Kind: OpU64, Name: "New"})
	cur.Msgs = append(cur.Msgs, MsgSchema{Kind: 3, KindName: "KindC", TypeName: "C",
		Ops: []Op{{Kind: OpU8, Name: "Q"}}})
	if vs := violations(cur); len(vs) != 0 {
		t.Fatalf("append-only evolution flagged: %v", vs)
	}

	// Renaming a field is not a wire change.
	cur = sampleSchema()
	for i := range cur.Msgs {
		if cur.Msgs[i].KindName == "KindA" {
			cur.Msgs[i].Ops[0].Name = "Renamed"
		}
	}
	if vs := violations(cur); len(vs) != 0 {
		t.Fatalf("pure rename flagged: %v", vs)
	}

	// Removed trailing field.
	cur = sampleSchema()
	for i := range cur.Msgs {
		if cur.Msgs[i].KindName == "KindA" {
			cur.Msgs[i].Ops = cur.Msgs[i].Ops[:2]
		}
	}
	if vs := violations(cur); !hasViolation(vs, "removed from KindA") {
		t.Fatalf("removed field not flagged: %v", vs)
	}

	// Retyped locked field.
	cur = sampleSchema()
	for i := range cur.Msgs {
		if cur.Msgs[i].KindName == "KindA" {
			cur.Msgs[i].Ops[0].Kind = OpU32
		}
	}
	if vs := violations(cur); !hasViolation(vs, "field 0 of KindA changed") {
		t.Fatalf("retyped field not flagged: %v", vs)
	}

	// Rep element change is a structural change, not a trailing add.
	cur = sampleSchema()
	for i := range cur.Msgs {
		if cur.Msgs[i].KindName == "KindB" {
			cur.Msgs[i].Ops[1].Body[0].Kind = OpU32
		}
	}
	if vs := violations(cur); !hasViolation(vs, "field 1 of KindB changed") {
		t.Fatalf("rep-body change not flagged: %v", vs)
	}

	// Vanished kind.
	cur = sampleSchema()
	cur.Msgs = cur.Msgs[:1] // drops KindA after sortMsgs? ensure by name
	kept := cur.Msgs[:0]
	for _, m := range sampleSchema().Msgs {
		if m.KindName != "KindA" {
			kept = append(kept, m)
		}
	}
	cur.Msgs = kept
	if vs := violations(cur); !hasViolation(vs, "gone from the tree") {
		t.Fatalf("vanished kind not flagged: %v", vs)
	}

	// Renumbered kind.
	cur = sampleSchema()
	for i := range cur.Msgs {
		if cur.Msgs[i].KindName == "KindA" {
			cur.Msgs[i].Kind = 7
		}
	}
	if vs := violations(cur); !hasViolation(vs, "renumbered 1 -> 7") {
		t.Fatalf("renumbered kind not flagged: %v", vs)
	}

	// New kind reusing a locked number.
	cur = sampleSchema()
	kept = cur.Msgs[:0]
	for _, m := range sampleSchema().Msgs {
		if m.KindName != "KindA" {
			kept = append(kept, m)
		}
	}
	cur.Msgs = append(kept, MsgSchema{Kind: 1, KindName: "KindNew", TypeName: "New",
		Ops: []Op{{Kind: OpU8}}})
	vs := violations(cur)
	if !hasViolation(vs, "reuses wire number 1") {
		t.Fatalf("number reuse not flagged: %v", vs)
	}
}
