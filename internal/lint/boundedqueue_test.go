package lint_test

import (
	"testing"

	"nocpu/internal/lint"
	"nocpu/internal/lint/analysistest"
)

func TestBoundedqueue(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Boundedqueue, "boundedqueue/a")
}
