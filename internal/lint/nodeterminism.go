package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"nocpu/internal/lint/analysis"
)

// Nodeterminism forbids every source of nondeterminism the simulator has
// sanctioned replacements for. Simulation code gets time from the
// virtual clock (sim.Engine.Now / After / At), randomness from a seeded
// sim.Rand, and runs single-threaded inside the event loop — so wall
// clocks, ambient RNGs and concurrency primitives are all bugs waiting
// to break the golden-trace tests, and are reported here instead.
//
// Test files are exempt: host-side test timeouts and t.Parallel are
// about the machine running the tests, not the machine being simulated.
var Nodeterminism = &analysis.Analyzer{
	Name: "nodeterminism",
	Doc:  "forbid wall-clock time, ambient randomness and concurrency in simulation code",
	Run:  runNodeterminism,
}

// bannedImports are packages simulation code must not import at all.
var bannedImports = map[string]string{
	"math/rand":    "use the seeded sim.Rand owned by the component",
	"math/rand/v2": "use the seeded sim.Rand owned by the component",
	"crypto/rand":  "use the seeded sim.Rand owned by the component",
	"sync":         "the event loop is single-threaded by design; schedule events instead",
	"sync/atomic":  "the event loop is single-threaded by design; schedule events instead",
}

// bannedTimeFuncs are the wall-clock entry points of package time. The
// type names (time.Duration in host-facing flag parsing, say) are not
// banned — only calls that read or wait on the host clock.
var bannedTimeFuncs = map[string]string{
	"Now":       "use sim.Engine.Now",
	"Since":     "use sim.Time.Sub on virtual timestamps",
	"Until":     "use sim.Time.Sub on virtual timestamps",
	"Sleep":     "use sim.Engine.After to schedule a continuation",
	"After":     "use sim.Engine.After",
	"AfterFunc": "use sim.Engine.After",
	"Tick":      "use a self-rescheduling sim.Engine.After event",
	"NewTicker": "use a self-rescheduling sim.Engine.After event",
	"NewTimer":  "use sim.Engine.After; the returned sim.Timer can be stopped",
}

func runNodeterminism(pass *analysis.Pass) error {
	if !simScoped(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if why, bad := bannedImports[path]; bad {
				pass.Reportf(imp.Pos(), "import of %s is nondeterministic in simulation code: %s", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "goroutine inside the single-threaded event loop: determinism requires one thread; model concurrency as scheduled events")
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select inside the single-threaded event loop: channel timing is scheduler-dependent; model it as scheduled events")
			case *ast.SelectorExpr:
				if pkg, ok := importedPkg(pass, n.X); ok && pkg == "time" {
					if why, bad := bannedTimeFuncs[n.Sel.Name]; bad {
						pass.Reportf(n.Pos(), "time.%s reads the host wall clock; %s", n.Sel.Name, why)
					}
				}
			}
			return true
		})
	}
	return nil
}

// importedPkg resolves expr to an imported package's path when expr is a
// package qualifier.
func importedPkg(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return "", false
	}
	if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path(), true
	}
	return "", false
}

// isTestFile reports whether the file is a _test.go file.
func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}
