package lint

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"nocpu/internal/lint/analysis"
)

// Nodeterminism forbids every source of nondeterminism the simulator has
// sanctioned replacements for. Simulation code gets time from the
// virtual clock (sim.Engine.Now / After / At), randomness from a seeded
// sim.Rand, and runs single-threaded inside the event loop — so wall
// clocks, ambient RNGs and concurrency primitives are all bugs waiting
// to break the golden-trace tests, and are reported here instead.
//
// The check is interprocedural: beyond flagging direct uses, it
// computes a call-graph taint. A function whose body transitively
// reaches a wall clock, an ambient RNG or a goroutine spawn through any
// chain of intra-module calls is tainted, and a call to it from
// simulation code is flagged at the call site with the chain. Taint
// flows only from sources the direct check does not already report —
// //lint:allow-sanctioned uses and code outside the simulation scope —
// so an allow on a definition ("host-side CLI logging") never quietly
// licenses simulation code to route through it. Summaries cross package
// boundaries via the vet facts channel, so the chain may span packages.
//
// Carve-out: functions defined in internal/sim never propagate taint.
// The engine is the sanctioned abstraction over real time and (with the
// planned parallel-DES backend) real threads; its internals are audited
// by its own tests, and everything above it consumes only the virtual
// clock it exposes.
//
// Test files are exempt: host-side test timeouts and t.Parallel are
// about the machine running the tests, not the machine being simulated.
// nodeterminismName is the analyzer's rule name; a named constant so
// taint helpers can query pass.Allowed without referring to the
// Analyzer var (which would be an initialization cycle through Run).
const nodeterminismName = "nodeterminism"

var Nodeterminism = &analysis.Analyzer{
	Name: nodeterminismName,
	Doc:  "forbid wall-clock time, ambient randomness and concurrency in simulation code, including transitively through helper calls",
	Run:  runNodeterminism,
}

// trustedPkgs never propagate taint to callers: their internals are the
// sanctioned determinism boundary.
var trustedPkgs = map[string]bool{
	"nocpu/internal/sim": true,
}

// bannedImports are packages simulation code must not import at all.
var bannedImports = map[string]string{
	"math/rand":    "use the seeded sim.Rand owned by the component",
	"math/rand/v2": "use the seeded sim.Rand owned by the component",
	"crypto/rand":  "use the seeded sim.Rand owned by the component",
	"sync":         "the event loop is single-threaded by design; schedule events instead",
	"sync/atomic":  "the event loop is single-threaded by design; schedule events instead",
}

// bannedTimeFuncs are the wall-clock entry points of package time. The
// type names (time.Duration in host-facing flag parsing, say) are not
// banned — only calls that read or wait on the host clock.
var bannedTimeFuncs = map[string]string{
	"Now":       "use sim.Engine.Now",
	"Since":     "use sim.Time.Sub on virtual timestamps",
	"Until":     "use sim.Time.Sub on virtual timestamps",
	"Sleep":     "use sim.Engine.After to schedule a continuation",
	"After":     "use sim.Engine.After",
	"AfterFunc": "use sim.Engine.After",
	"Tick":      "use a self-rescheduling sim.Engine.After event",
	"NewTicker": "use a self-rescheduling sim.Engine.After event",
	"NewTimer":  "use sim.Engine.After; the returned sim.Timer can be stopped",
}

// taintFact is one tainted function's exported summary: what it
// ultimately reaches and through which call chain (this function
// first). Serialized as the package's nodeterminism fact blob.
type taintFact struct {
	Root  string   `json:"root"`  // e.g. "time.Now" or "goroutine spawn"
	Chain []string `json:"chain"` // function names from this fn to the source
}

// funcInfo is the per-function analysis state.
type funcInfo struct {
	obj     *types.Func
	decl    *ast.FuncDecl
	inSim   bool // sim-scoped non-test code: direct findings are reported
	sources []taintSource
	calls   []taintCall
	// taint resolution state
	state resolveState
	fact  *taintFact
}

type taintSource struct {
	pos  ast.Node
	desc string // "time.Now", "goroutine spawn", ...
	// silent sources are not reported directly — uses of a banned
	// package are already covered by the import diagnostic — but still
	// seed taint when that diagnostic is suppressed.
	silent bool
	// allowPos is where a //lint:allow sanctions this source: the source
	// itself, or the banned import for silent package uses.
	allowPos token.Pos
}

type taintCall struct {
	expr   *ast.CallExpr
	callee *types.Func
}

type resolveState uint8

const (
	unresolved resolveState = iota
	resolving
	resolved
)

func runNodeterminism(pass *analysis.Pass) error {
	inScope := simScoped(pass.Pkg.Path())
	t := &tainter{pass: pass, funcs: make(map[*types.Func]*funcInfo)}

	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		impPos := make(map[string]token.Pos)
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if why, bad := bannedImports[path]; bad {
				impPos[path] = imp.Pos()
				if inScope {
					pass.Reportf(imp.Pos(), "import of %s is nondeterministic in simulation code: %s", path, why)
				}
			}
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			t.funcs[obj] = &funcInfo{obj: obj, decl: fd, inSim: inScope}
			t.scanBody(t.funcs[obj], impPos)
		}
	}

	// Direct findings first (reported exactly as before); sanctioned or
	// out-of-scope sources become taint roots instead.
	for _, fi := range t.funcs {
		for _, src := range fi.sources {
			if fi.inSim {
				t.reportSource(src)
			}
		}
	}

	// Then the interprocedural pass: flag sim-scoped calls into tainted
	// functions, local or imported.
	t.depFacts = make(map[string]map[string]taintFact)
	for _, fi := range sortedFuncs(t.funcs, pass) {
		if !fi.inSim {
			continue
		}
		for _, call := range fi.calls {
			if fact := t.taintOf(call.callee); fact != nil {
				pass.Reportf(call.expr.Pos(),
					"call to %s is transitively nondeterministic: reaches %s via %s; the source is sanctioned at its definition (//lint:allow or non-simulation code), but this call runs inside the simulation — route it through the sim.Engine abstractions instead",
					call.callee.Name(), fact.Root, strings.Join(fact.Chain, " -> "))
			}
		}
	}

	t.exportFacts()
	return nil
}

type tainter struct {
	pass     *analysis.Pass
	funcs    map[*types.Func]*funcInfo
	depFacts map[string]map[string]taintFact // pkg path -> func key -> fact
}

// scanBody records a function's direct nondeterminism sources and its
// outgoing calls. impPos locates the file's banned imports, so a use of
// such a package is sanctioned by the allow on its import line.
func (t *tainter) scanBody(fi *funcInfo, impPos map[string]token.Pos) {
	pass := t.pass
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			fi.sources = append(fi.sources, taintSource{pos: n, desc: "goroutine spawn", allowPos: n.Pos()})
		case *ast.SelectStmt:
			fi.sources = append(fi.sources, taintSource{pos: n, desc: "select", allowPos: n.Pos()})
		case *ast.SelectorExpr:
			if pkg, ok := importedPkg(pass, n.X); ok {
				if pkg == "time" {
					if _, bad := bannedTimeFuncs[n.Sel.Name]; bad {
						fi.sources = append(fi.sources, taintSource{pos: n, desc: "time." + n.Sel.Name, allowPos: n.Pos()})
					}
				} else if _, bad := bannedImports[pkg]; bad {
					fi.sources = append(fi.sources, taintSource{pos: n, desc: pkg + "." + n.Sel.Name, silent: true, allowPos: impPos[pkg]})
				}
			}
		case *ast.CallExpr:
			var id *ast.Ident
			switch fun := unparen(n.Fun).(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			}
			if id != nil {
				if callee, ok := pass.TypesInfo.Uses[id].(*types.Func); ok {
					fi.calls = append(fi.calls, taintCall{n, callee})
				}
			}
		}
		return true
	})
}

// reportSource emits the classic direct diagnostic for one source.
func (t *tainter) reportSource(src taintSource) {
	switch {
	case src.silent:
		// covered by the import diagnostic
	case src.desc == "goroutine spawn":
		t.pass.Reportf(src.pos.Pos(), "goroutine inside the single-threaded event loop: determinism requires one thread; model concurrency as scheduled events")
	case src.desc == "select":
		t.pass.Reportf(src.pos.Pos(), "select inside the single-threaded event loop: channel timing is scheduler-dependent; model it as scheduled events")
	case strings.HasPrefix(src.desc, "time."):
		name := strings.TrimPrefix(src.desc, "time.")
		t.pass.Reportf(src.pos.Pos(), "time.%s reads the host wall clock; %s", name, bannedTimeFuncs[name])
	}
}

// sourceTaints reports whether a direct source seeds taint: only
// sources the direct check does NOT report do — a reported source
// already fails the build, so propagating it would just cascade noise.
func (t *tainter) sourceTaints(fi *funcInfo, src taintSource) bool {
	if !fi.inSim {
		return true // non-simulation code: never reported, always taints
	}
	return src.allowPos.IsValid() && t.pass.Allowed(src.allowPos, nodeterminismName)
}

// taintOf resolves a callee's taint fact, following local declarations
// recursively and imported ones through the facts channel. Cycles
// resolve as clean on the back edge; a source anywhere in the cycle
// still taints it through the forward edges.
func (t *tainter) taintOf(callee *types.Func) *taintFact {
	if callee.Pkg() == nil {
		return nil // builtin
	}
	if trustedPkgs[callee.Pkg().Path()] {
		return nil // determinism boundary: internal/sim internals are sanctioned
	}
	if callee.Pkg() != t.pass.Pkg {
		return t.importedTaint(callee)
	}
	fi, ok := t.funcs[callee]
	if !ok || fi.state == resolving {
		return nil
	}
	if fi.state == resolved {
		return fi.fact
	}
	fi.state = resolving
	defer func() { fi.state = resolved }()
	for _, src := range fi.sources {
		if t.sourceTaints(fi, src) {
			fi.fact = &taintFact{Root: src.desc, Chain: []string{callee.Name()}}
			return fi.fact
		}
	}
	for _, call := range fi.calls {
		sub := t.taintOf(call.callee)
		if sub == nil {
			continue
		}
		// A call the direct pass reports (sim scope, not allowed) stops
		// propagation: the finding already exists at that call site.
		if fi.inSim && !t.pass.Allowed(call.expr.Pos(), nodeterminismName) {
			continue
		}
		fi.fact = &taintFact{Root: sub.Root, Chain: append([]string{callee.Name()}, sub.Chain...)}
		return fi.fact
	}
	return nil
}

// importedTaint looks a cross-package callee up in its package's
// exported facts.
func (t *tainter) importedTaint(callee *types.Func) *taintFact {
	if t.pass.DepFacts == nil {
		return nil
	}
	path := callee.Pkg().Path()
	facts, ok := t.depFacts[path]
	if !ok {
		facts = make(map[string]taintFact)
		if blob := t.pass.DepFacts(path); blob != nil {
			_ = json.Unmarshal(blob, &facts) // an unreadable blob means no facts
		}
		t.depFacts[path] = facts
	}
	if fact, ok := facts[funcKey(callee)]; ok {
		return &fact
	}
	return nil
}

// exportFacts publishes this package's tainted functions for importers.
func (t *tainter) exportFacts() {
	if t.pass.ExportFacts == nil {
		return
	}
	out := make(map[string]taintFact)
	for obj := range t.funcs {
		if fact := t.taintOf(obj); fact != nil {
			out[funcKey(obj)] = *fact
		}
	}
	if len(out) == 0 {
		return
	}
	blob, err := json.Marshal(out)
	if err == nil {
		t.pass.ExportFacts(blob)
	}
}

// funcKey names a function in fact blobs: "F" or "T.Method".
func funcKey(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// sortedFuncs returns the function infos in source order so diagnostics
// and fact resolution are deterministic.
func sortedFuncs(m map[*types.Func]*funcInfo, pass *analysis.Pass) []*funcInfo {
	out := make([]*funcInfo, 0, len(m))
	for _, fi := range m {
		out = append(out, fi)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].decl.Pos() > out[j].decl.Pos(); j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// importedPkg resolves expr to an imported package's path when expr is a
// package qualifier.
func importedPkg(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return "", false
	}
	if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path(), true
	}
	return "", false
}

// isTestFile reports whether the file is a _test.go file.
func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}
