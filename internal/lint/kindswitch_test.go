package lint_test

import (
	"testing"

	"nocpu/internal/lint"
	"nocpu/internal/lint/analysistest"
)

func TestKindswitch(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Kindswitch, "kindswitch/a")
}
