package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"nocpu/internal/lint/analysis"
)

// Maporder flags `range` over a map whose body has side effects beyond
// pure accumulation. Go randomizes map iteration order per run, so any
// observable action performed inside such a loop — emitting a trace
// line, scheduling a simulation event, sending a message, writing
// output — happens in a different order every run and silently breaks
// the golden-hash determinism tests.
//
// Pure accumulation is allowed without a sort: appending to a slice
// (for a later sort), folding into a scalar (sums, max), writing or
// deleting map entries, and order-independent early returns. Anything
// that calls a non-builtin function is treated as a side effect; the
// sanctioned pattern is to collect the keys, sort them (see
// metrics.Sorted), and loop over the sorted slice.
var Maporder = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag side effects performed in map iteration order",
	Run:  runMaporder,
}

func runMaporder(pass *analysis.Pass) error {
	if !simScoped(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if offender, what := firstSideEffect(pass, rs.Body); offender != nil {
				pass.Reportf(offender.Pos(),
					"%s inside range over map %s runs in map iteration order, which differs between runs; iterate sorted keys instead (see metrics.Sorted), or annotate //lint:allow maporder <reason>",
					what, exprString(pass.Fset, rs.X))
			}
			// The body was fully judged above; don't re-enter nested
			// ranges for a second report on the same offender.
			return false
		})
	}
	return nil
}

// firstSideEffect returns the first statement or expression in the loop
// body whose effect would be observed in iteration order, with a short
// description, or (nil, "") if the body is pure accumulation.
func firstSideEffect(pass *analysis.Pass, stmt ast.Stmt) (ast.Node, string) {
	switch s := stmt.(type) {
	case nil, *ast.EmptyStmt, *ast.BranchStmt:
		return nil, ""
	case *ast.LabeledStmt:
		return firstSideEffect(pass, s.Stmt)
	case *ast.BlockStmt:
		for _, st := range s.List {
			if n, what := firstSideEffect(pass, st); n != nil {
				return n, what
			}
		}
		return nil, ""
	case *ast.AssignStmt:
		return firstCall(pass, append(append([]ast.Expr{}, s.Lhs...), s.Rhs...)...)
	case *ast.IncDecStmt:
		return firstCall(pass, s.X)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return s, "declaration"
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				if n, what := firstCall(pass, vs.Values...); n != nil {
					return n, what
				}
			}
		}
		return nil, ""
	case *ast.IfStmt:
		if n, what := firstSideEffect(pass, s.Init); n != nil {
			return n, what
		}
		if n, what := firstCall(pass, s.Cond); n != nil {
			return n, what
		}
		if n, what := firstSideEffect(pass, s.Body); n != nil {
			return n, what
		}
		return firstSideEffect(pass, s.Else)
	case *ast.SwitchStmt:
		if n, what := firstSideEffect(pass, s.Init); n != nil {
			return n, what
		}
		if s.Tag != nil {
			if n, what := firstCall(pass, s.Tag); n != nil {
				return n, what
			}
		}
		return firstSideEffect(pass, s.Body)
	case *ast.TypeSwitchStmt:
		if n, what := firstSideEffect(pass, s.Init); n != nil {
			return n, what
		}
		return firstSideEffect(pass, s.Body)
	case *ast.CaseClause:
		if n, what := firstCall(pass, s.List...); n != nil {
			return n, what
		}
		for _, st := range s.Body {
			if n, what := firstSideEffect(pass, st); n != nil {
				return n, what
			}
		}
		return nil, ""
	case *ast.ForStmt:
		if n, what := firstSideEffect(pass, s.Init); n != nil {
			return n, what
		}
		if s.Cond != nil {
			if n, what := firstCall(pass, s.Cond); n != nil {
				return n, what
			}
		}
		if n, what := firstSideEffect(pass, s.Post); n != nil {
			return n, what
		}
		return firstSideEffect(pass, s.Body)
	case *ast.RangeStmt:
		if n, what := firstCall(pass, s.X); n != nil {
			return n, what
		}
		return firstSideEffect(pass, s.Body)
	case *ast.ReturnStmt:
		return firstCall(pass, s.Results...)
	case *ast.ExprStmt:
		return firstCall(pass, s.X)
	case *ast.GoStmt:
		return s, "starting a goroutine"
	case *ast.DeferStmt:
		return s, "defer"
	case *ast.SendStmt:
		return s, "channel send"
	default:
		return stmt, "statement"
	}
}

// accumBuiltins are the builtin functions considered pure accumulation.
// Notably absent: panic/print/println (observable output order), close
// and channel operations.
var accumBuiltins = map[string]bool{
	"append": true, "cap": true, "copy": true, "delete": true,
	"len": true, "make": true, "max": true, "min": true, "new": true,
}

// firstCall scans expressions for the first call that is neither a type
// conversion nor an accumulation builtin.
func firstCall(pass *analysis.Pass, exprs ...ast.Expr) (ast.Node, string) {
	var found ast.Node
	var what string
	for _, e := range exprs {
		if e == nil || found != nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
				return true // conversion, not a call
			}
			if id, ok := unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && accumBuiltins[b.Name()] {
					return true // pure accumulation builtin; keep scanning args
				}
			}
			found, what = call, "call to "+exprString(pass.Fset, call.Fun)
			return false
		})
	}
	return found, what
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// exprString renders a (small) expression for a diagnostic.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, e); err != nil {
		return "expression"
	}
	return b.String()
}
