// Package analysistest runs a lint analyzer over a testdata package and
// checks its diagnostics against `// want` expectations, mirroring the
// x/tools harness of the same name on the standard library alone.
//
// Test packages live under <testdata>/src/<importpath>/ and are loaded
// with full parsing and type checking. Imports resolve, in order, to
// another testdata package (loaded recursively, so enum definitions
// like a local `msg` package get real constant info) or to an empty
// stub package. Stubs leave selector uses like time.Now unresolved;
// the resulting type errors are ignored, which is fine because the
// analyzers only need the package-qualifier binding the checker records
// regardless.
//
// Expectations are comments of the form
//
//	code() // want `regexp` `another regexp`
//
// one backquoted regexp per expected diagnostic on that line. Run fails
// the test for any unmatched expectation and any unexpected diagnostic.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"nocpu/internal/lint/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads <dir>/src/<pkgpath>, applies the analyzer, and compares
// diagnostics against the package's want comments.
//
// Testdata packages the target imports are analyzed first (in
// dependency order, diagnostics discarded) with a shared in-memory
// facts store, so interprocedural analyzers see the same cross-package
// summaries here that the vet driver gives them via .vetx files.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	l := newLoader(dir)
	pkg, files, err := l.load(pkgpath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgpath, err)
	}
	facts := &memFacts{m: make(map[string]map[string][]byte)}
	for _, dep := range l.order {
		if dep == pkgpath {
			continue
		}
		facts.cur = dep
		if _, err := analysis.RunWithFacts([]*analysis.Analyzer{a}, l.fset, l.files[dep], l.pkgs[dep], l.info, facts); err != nil {
			t.Fatalf("running %s on dependency %s: %v", a.Name, dep, err)
		}
	}
	facts.cur = pkgpath
	diags, err := analysis.RunWithFacts([]*analysis.Analyzer{a}, l.fset, files, pkg, l.info, facts)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
	}
	checkWants(t, l.fset, files, diags)
}

// memFacts is the in-memory analogue of the vet driver's .vetx channel.
type memFacts struct {
	cur string // package currently being analyzed (Set has no path param)
	m   map[string]map[string][]byte
}

func (f *memFacts) Get(pkgPath, analyzer string) []byte { return f.m[pkgPath][analyzer] }

func (f *memFacts) Set(analyzer string, blob []byte) {
	if f.m[f.cur] == nil {
		f.m[f.cur] = make(map[string][]byte)
	}
	f.m[f.cur][analyzer] = blob
}

type loader struct {
	dir   string
	fset  *token.FileSet
	pkgs  map[string]*types.Package
	files map[string][]*ast.File
	order []string // load completion order: dependencies before dependents
	info  *types.Info
}

func newLoader(dir string) *loader {
	return &loader{
		dir:   dir,
		fset:  token.NewFileSet(),
		pkgs:  make(map[string]*types.Package),
		files: make(map[string][]*ast.File),
		info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
	}
}

// load parses and type-checks one testdata package (memoized).
func (l *loader) load(pkgpath string) (*types.Package, []*ast.File, error) {
	if pkg, ok := l.pkgs[pkgpath]; ok {
		return pkg, l.files[pkgpath], nil
	}
	srcdir := filepath.Join(l.dir, "src", filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(srcdir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(srcdir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no Go files in %s", srcdir)
	}
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			return l.importPkg(path)
		}),
		Error: func(error) {}, // stub imports leave dangling selectors; ignore
	}
	pkg, _ := conf.Check(pkgpath, l.fset, files, l.info)
	l.pkgs[pkgpath] = pkg
	l.files[pkgpath] = files
	// Imports were loaded recursively inside Check, so appending here
	// yields a topological order with dependencies first.
	l.order = append(l.order, pkgpath)
	return pkg, files, nil
}

// importPkg resolves an import to a testdata package or an empty stub.
func (l *loader) importPkg(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if _, err := os.Stat(filepath.Join(l.dir, "src", filepath.FromSlash(path))); err == nil {
		pkg, _, err := l.load(path)
		return pkg, err
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	l.pkgs[path] = pkg
	return pkg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// expectation is one unmatched want regexp.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	raw  string
	used bool
}

var wantRE = regexp.MustCompile("`([^`]*)`")

// checkWants matches diagnostics against want comments, failing the
// test on any mismatch in either direction.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(c.Text[idx:], -1) {
					rx, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", posn.Filename, posn.Line, m[1], err)
					}
					wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, rx: rx, raw: m[1]})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.used && w.file == posn.Filename && w.line == posn.Line && w.rx.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", posn, d.Rule, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}
