package lint_test

import (
	"testing"

	"nocpu/internal/lint"
	"nocpu/internal/lint/analysistest"
)

func TestWireprotoSymmetry(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Wireproto, "wireproto/asym")
}

func TestWireprotoRegistration(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Wireproto, "wireproto/unreg")
}

func TestWireprotoLockDiff(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Wireproto, "wireproto/lockdiff")
}
