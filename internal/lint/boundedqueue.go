package lint

import (
	"go/ast"
	"go/types"
	"regexp"

	"nocpu/internal/lint/analysis"
)

// Boundedqueue flags an append to a queue-named slice field when the
// enclosing function never checks the queue's length against anything.
// An unbounded queue is the overload failure mode: under open-loop load
// it grows without limit, latency follows, and goodput collapses — the
// exact behavior the flow-control and admission mechanisms exist to
// prevent. Every queue an envelope, request, or completion can wait in
// must either be bounded (check len() and shed/drop deterministically on
// overflow) or carry an explicit //lint:allow boundedqueue directive
// saying why unbounded is safe (e.g. the producer is itself bounded).
//
// The check is deliberately shallow: it looks for `x.f = append(x.f,
// ...)` where f's name smells like a queue (queue, stall, backlog,
// pending, waiting, inflight, fifo) and accepts any `len(x.f)`
// comparison in the same function as the bound. A bound enforced in a
// different function from the append needs the directive.
var Boundedqueue = &analysis.Analyzer{
	Name: "boundedqueue",
	Doc:  "flag appends to queue-named slice fields with no bound check",
	Run:  runBoundedqueue,
}

// queueNameRE matches field names that denote a waiting line.
var queueNameRE = regexp.MustCompile(`(?i)queue|stall|backlog|pending|waiting|inflight|fifo`)

func runBoundedqueue(pass *analysis.Pass) error {
	if !simScoped(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkQueueAppends(pass, fd)
		}
	}
	return nil
}

// checkQueueAppends reports every unguarded queue append inside one
// function (closures included — a bound check anywhere in the function,
// including inside a closure, counts for every append in it).
func checkQueueAppends(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Pass 1: collect the selectors whose length the function examines.
	bounded := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "len" {
			return true
		}
		if sel, ok := call.Args[0].(*ast.SelectorExpr); ok {
			bounded[exprString(pass.Fset, sel)] = true
		}
		return true
	})
	// Pass 2: find queue appends not covered by a length check.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			return true
		}
		sel, ok := call.Args[0].(*ast.SelectorExpr)
		if !ok || !queueNameRE.MatchString(sel.Sel.Name) {
			return true
		}
		t := pass.TypesInfo.TypeOf(sel)
		if t == nil {
			return true
		}
		if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
			return true
		}
		if key := exprString(pass.Fset, sel); !bounded[key] {
			pass.Reportf(call.Pos(),
				"append to queue %s with no len(%s) bound check in %s: an unbounded queue collapses under open-loop overload; bound it (shed/drop deterministically at the limit) or annotate //lint:allow boundedqueue <why unbounded is safe>",
				key, key, fd.Name.Name)
		}
		return true
	})
}
