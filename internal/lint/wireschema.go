package lint

// The wire-schema model behind the wireproto analyzer: an ordered
// sequence of primitive codec operations per message kind, a canonical
// text serialization (the committed internal/msg/wire.lock), and the
// append-only compatibility diff between a committed lock and the
// schema extracted from the tree.
//
// The model is deliberately tiny. A message body is a sequence of ops;
// an op is either a scalar codec call (u8/u16/u32/u64/bool/str/bytes),
// a counted repetition (rep — a length prefix followed by that many
// element groups), or a trailing optional group (opt — present only
// when bytes remain, the protocol's one evolution mechanism). Field
// names ride along for diagnostics and lockfile readability but do not
// participate in compatibility: renaming a Go field is not a wire
// change.

import (
	"fmt"
	"sort"
	"strings"
)

// OpKind is one primitive wire operation.
type OpKind string

// Scalar op kinds mirror the writer/reader method vocabulary
// (internal/msg/wire.go). The two structural kinds group sub-ops.
const (
	OpU8    OpKind = "u8"
	OpU16   OpKind = "u16"
	OpU32   OpKind = "u32"
	OpU64   OpKind = "u64"
	OpBool  OpKind = "bool"  // one byte on the wire, kept distinct
	OpStr   OpKind = "str"   // u16 length prefix + bytes
	OpBytes OpKind = "bytes" // u32 length prefix + bytes
	OpRep   OpKind = "rep"   // repetition of Body, count read just before
	OpOpt   OpKind = "opt"   // trailing optional group: decoded only if bytes remain
)

// Op is one operation in a message's wire layout.
type Op struct {
	Kind OpKind
	Name string // source field name when determinable ("" otherwise)
	Body []Op   // rep/opt only
}

// MsgSchema is the extracted wire layout of one message kind.
type MsgSchema struct {
	Kind     uint16 // wire discriminator value
	KindName string // constant name, e.g. KindHello
	TypeName string // Go message type, e.g. Hello
	Ops      []Op
}

// WireSchema is the whole protocol, sorted by kind number.
type WireSchema struct {
	Msgs []MsgSchema
}

// sortMsgs orders messages by wire kind for canonical output.
func (s *WireSchema) sortMsgs() {
	sort.Slice(s.Msgs, func(i, j int) bool { return s.Msgs[i].Kind < s.Msgs[j].Kind })
}

// lockHeader is the first line of every lockfile; Parse refuses
// anything else so a future v2 cannot be mistaken for v1.
const lockHeader = "wire.lock v1"

// lockPreamble explains the file to a human reader; Parse skips
// comment lines, so regeneration always reproduces it.
const lockPreamble = `# Machine-extracted wire-protocol schema (wireproto analyzer).
# One "msg <kind> <KindConst> <GoType>" block per message, listing the
# exact codec op sequence of its encoder. make lint diffs the tree
# against this file and fails on any reorder, retype or removal; only
# trailing-field additions are compatible. After an intentional
# append-only change, regenerate with:
#
#	NOCPU_REGEN_WIRELOCK=1 make lint
#
# and commit the result.`

// Format renders the schema in canonical lockfile form. The output is
// deterministic: messages sorted by kind, tabs for nesting, "." for a
// field with no recoverable name.
func Format(s *WireSchema) string {
	s.sortMsgs()
	var b strings.Builder
	b.WriteString(lockPreamble)
	b.WriteString("\n")
	b.WriteString(lockHeader)
	b.WriteString("\n")
	for _, m := range s.Msgs {
		fmt.Fprintf(&b, "msg %d %s %s\n", m.Kind, m.KindName, m.TypeName)
		formatOps(&b, m.Ops, 1)
	}
	return b.String()
}

func formatOps(b *strings.Builder, ops []Op, depth int) {
	indent := strings.Repeat("\t", depth)
	for _, op := range ops {
		name := op.Name
		if name == "" {
			name = "."
		}
		switch op.Kind {
		case OpRep, OpOpt:
			fmt.Fprintf(b, "%s%s %s\n", indent, op.Kind, name)
			formatOps(b, op.Body, depth+1)
			fmt.Fprintf(b, "%send\n", indent)
		default:
			fmt.Fprintf(b, "%s%s %s\n", indent, op.Kind, name)
		}
	}
}

// Parse reads a lockfile produced by Format. It is forgiving about
// comments and blank lines but strict about structure: unknown ops,
// unbalanced groups or a missing header are errors, because a lockfile
// that cannot be trusted is worse than none.
func Parse(text string) (*WireSchema, error) {
	lines := strings.Split(text, "\n")
	i := 0
	sawHeader := false
	for ; i < len(lines); i++ {
		l := strings.TrimSpace(lines[i])
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		if l != lockHeader {
			return nil, fmt.Errorf("line %d: expected %q header, got %q", i+1, lockHeader, l)
		}
		sawHeader = true
		i++
		break
	}
	if !sawHeader {
		return nil, fmt.Errorf("missing %q header", lockHeader)
	}
	s := &WireSchema{}
	var cur *MsgSchema
	// stack of op lists being filled; stack[0] is the current message's
	// top level, deeper entries are open rep/opt bodies.
	var stack []*[]Op
	for ; i < len(lines); i++ {
		l := strings.TrimSpace(lines[i])
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		fields := strings.Fields(l)
		switch fields[0] {
		case "msg":
			if len(stack) > 1 {
				return nil, fmt.Errorf("line %d: msg inside an open group", i+1)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("line %d: msg wants <kind> <KindConst> <GoType>", i+1)
			}
			var kind uint16
			if _, err := fmt.Sscanf(fields[1], "%d", &kind); err != nil {
				return nil, fmt.Errorf("line %d: bad kind number %q", i+1, fields[1])
			}
			s.Msgs = append(s.Msgs, MsgSchema{Kind: kind, KindName: fields[2], TypeName: fields[3]})
			cur = &s.Msgs[len(s.Msgs)-1]
			stack = []*[]Op{&cur.Ops}
		case "end":
			if len(stack) <= 1 {
				return nil, fmt.Errorf("line %d: end with no open group", i+1)
			}
			stack = stack[:len(stack)-1]
		case string(OpRep), string(OpOpt):
			if cur == nil {
				return nil, fmt.Errorf("line %d: op before any msg", i+1)
			}
			op := Op{Kind: OpKind(fields[0]), Name: opName(fields)}
			top := stack[len(stack)-1]
			*top = append(*top, op)
			stack = append(stack, &(*top)[len(*top)-1].Body)
		case string(OpU8), string(OpU16), string(OpU32), string(OpU64),
			string(OpBool), string(OpStr), string(OpBytes):
			if cur == nil {
				return nil, fmt.Errorf("line %d: op before any msg", i+1)
			}
			top := stack[len(stack)-1]
			*top = append(*top, Op{Kind: OpKind(fields[0]), Name: opName(fields)})
		default:
			return nil, fmt.Errorf("line %d: unknown op %q", i+1, fields[0])
		}
	}
	if len(stack) > 1 {
		return nil, fmt.Errorf("unclosed group at end of file")
	}
	s.sortMsgs()
	return s, nil
}

func opName(fields []string) string {
	if len(fields) < 2 || fields[1] == "." {
		return ""
	}
	return fields[1]
}

// opsCompatEqual reports whether two op sequences describe the same
// wire bytes. Names are ignored (a Go rename is not a wire change);
// structure and op kinds must match exactly, including group bodies.
func opsCompatEqual(a, b []Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || !opsCompatEqual(a[i].Body, b[i].Body) {
			return false
		}
	}
	return true
}

// opLabel names an op for diagnostics: "str Name" or just "str".
func opLabel(op Op) string {
	if op.Name == "" {
		return string(op.Kind)
	}
	return fmt.Sprintf("%s %s", op.Kind, op.Name)
}

// CompatViolation is one append-only-rule violation found by
// CompatDiff, attributed to a kind constant so the analyzer can anchor
// the diagnostic at that kind's encoder.
type CompatViolation struct {
	KindName string
	Msg      string
}

// CompatDiff checks the extracted schema (cur) against the committed
// lock (old) under the append-only evolution rule and returns the
// violations in deterministic (lock) order. Allowed changes: appending
// ops at the tail of an existing message (trailing fields), and adding
// whole new kinds under fresh kind numbers. Everything else — removing
// a kind, renumbering it, and any reorder/retype/removal inside the
// locked op prefix — breaks decoding of old frames and is reported.
func CompatDiff(old, cur *WireSchema) []CompatViolation {
	var out []CompatViolation
	report := func(kind, msg string) { out = append(out, CompatViolation{kind, msg}) }

	curByName := make(map[string]*MsgSchema, len(cur.Msgs))
	curByNum := make(map[uint16]*MsgSchema, len(cur.Msgs))
	for i := range cur.Msgs {
		m := &cur.Msgs[i]
		curByName[m.KindName] = m
		curByNum[m.Kind] = m
	}
	oldNums := make(map[uint16]string, len(old.Msgs))
	for _, m := range old.Msgs {
		oldNums[m.Kind] = m.KindName
	}

	for _, om := range old.Msgs {
		cm, ok := curByName[om.KindName]
		if !ok {
			report(om.KindName, fmt.Sprintf(
				"kind %s (%d) is in wire.lock but gone from the tree: removing a wire kind orphans every peer still sending it", om.KindName, om.Kind))
			continue
		}
		if cm.Kind != om.Kind {
			report(om.KindName, fmt.Sprintf(
				"kind %s renumbered %d -> %d: the discriminator is wire-visible, so old frames would dispatch to the wrong decoder", om.KindName, om.Kind, cm.Kind))
		}
		diffOps(om.KindName, om.Ops, cm.Ops, report)
	}
	// New kinds are welcome, but not on a number the lock already owns
	// under a different name (that is a renumber in disguise).
	for _, cm := range cur.Msgs {
		if _, locked := oldNums[cm.Kind]; locked && oldNums[cm.Kind] != cm.KindName {
			if _, isOld := lockedName(old, cm.KindName); !isOld {
				report(cm.KindName, fmt.Sprintf(
					"new kind %s reuses wire number %d, which wire.lock assigns to %s", cm.KindName, cm.Kind, oldNums[cm.Kind]))
			}
		}
	}
	return out
}

func lockedName(s *WireSchema, name string) (*MsgSchema, bool) {
	for i := range s.Msgs {
		if s.Msgs[i].KindName == name {
			return &s.Msgs[i], true
		}
	}
	return nil, false
}

// diffOps enforces the prefix rule for one message: the locked ops must
// survive unchanged, in order, at the head of the current ops; only
// appended trailing ops are new fields.
func diffOps(kind string, old, cur []Op, report func(kind, msg string)) {
	if len(cur) < len(old) {
		for _, op := range old[len(cur):] {
			report(kind, fmt.Sprintf(
				"field %q removed from %s: old frames still carry it, so every later field would decode shifted", opLabel(op), kind))
		}
		old = old[:len(cur)]
	}
	for i := range old {
		if old[i].Kind != cur[i].Kind || !opsCompatEqual(old[i].Body, cur[i].Body) {
			report(kind, fmt.Sprintf(
				"field %d of %s changed: wire.lock has %q, tree has %q — reordering or retyping a locked field breaks decode of old frames (wire evolution is append-only; only trailing additions are compatible)",
				i, kind, opLabel(old[i]), opLabel(cur[i])))
		}
	}
}
