package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"nocpu/internal/lint/analysis"
)

// Wireproto extracts the bus wire-protocol schema from the msg
// package's encode/decode method bodies by symbolic interpretation and
// enforces three things no reviewer should have to re-derive per PR:
//
//  1. Symmetry — for every message kind, the encoder's op sequence and
//     the decoder's agree field-for-field (a decoder-side trailing
//     optional read of fields the encoder writes unconditionally is
//     permitted: that is how a new decoder accepts old short frames).
//
//  2. Registration completeness — every exported msg.Kind constant has
//     a message type whose Kind() returns it, is constructed by the
//     decode dispatcher (newMessage) under the right type, and has at
//     least one FuzzDecode corpus seed under testdata/fuzz/FuzzDecode.
//
//  3. Append-only evolution — the extracted schema must extend the
//     committed wire.lock only by trailing-field additions and new
//     kinds; any reorder, retype, removal or renumbering of locked
//     fields is reported. Regenerate the lock after an intentional
//     compatible change with NOCPU_REGEN_WIRELOCK=1 (the golden-trace
//     regeneration convention).
//
// The interpreter understands the codec idiom this package is written
// in — straight-line writer/reader calls, a count write followed by a
// loop, error/bomb guards, trailing-optional conditionals, and helpers
// taking a *writer/*reader (inlined, so encodeDevs/decodeDevs frame
// lists correctly) — and reports any body it cannot model rather than
// guessing.
var Wireproto = &analysis.Analyzer{
	Name: "wireproto",
	Doc:  "extract the wire schema from encode/decode bodies; enforce symmetry, kind registration, and append-only evolution against wire.lock",
	Run:  runWireproto,
}

// realMsgPath is the package whose schema is pinned by the committed
// lockfile; only there is a missing wire.lock itself a finding.
const realMsgPath = "nocpu/internal/msg"

// msgType is one collected message implementation.
type msgType struct {
	name       string
	kindConst  *types.Const
	kindPos    token.Pos // position of the Kind() method (for pairing faults)
	encodeDecl *ast.FuncDecl
	decodeDecl *ast.FuncDecl
}

func runWireproto(pass *analysis.Pass) error {
	if pass.Pkg == nil || pass.Pkg.Name() != "msg" || !simScoped(pass.Pkg.Path()) {
		return nil
	}
	x := newWireExtractor(pass)
	msgs := x.collectMsgTypes()
	if len(msgs) == 0 {
		return nil // not a wire-codec package (e.g. the kindswitch stub)
	}

	schema := &WireSchema{}
	encPos := make(map[string]token.Pos) // kind const name -> encoder position
	for _, mt := range msgs {
		encOps := x.encodeStmts(mt.encodeDecl.Body.List)
		decOps := x.decodeStmts(mt.decodeDecl.Body.List)
		x.checkOptPlacement(mt, encOps)
		if detail := symmetryDiff(encOps, decOps); detail != "" {
			pass.Reportf(mt.decodeDecl.Pos(),
				"encode/decode asymmetry in %s: %s — the decoder would misparse every frame the encoder emits", mt.name, detail)
		}
		if mt.kindConst == nil {
			continue // already reported by collectMsgTypes
		}
		kindVal, _ := constant.Uint64Val(mt.kindConst.Val())
		schema.Msgs = append(schema.Msgs, MsgSchema{
			Kind:     uint16(kindVal),
			KindName: mt.kindConst.Name(),
			TypeName: mt.name,
			Ops:      encOps,
		})
		encPos[mt.kindConst.Name()] = mt.encodeDecl.Pos()
	}
	for _, p := range x.problems {
		pass.Reportf(p.pos, "%s", p.msg)
	}

	x.checkRegistration(msgs)
	x.checkLock(schema, encPos)
	return nil
}

// --- collection ---

type problem struct {
	pos token.Pos
	msg string
}

type wireExtractor struct {
	pass *analysis.Pass
	// funcs indexes package-level functions for helper inlining.
	funcs map[types.Object]*ast.FuncDecl
	// bindings maps helper parameters to the caller's argument
	// expression so field names survive inlining.
	bindings map[types.Object]ast.Expr
	// anon marks loop element variables: their names are loop-local and
	// carry no schema meaning.
	anon     map[types.Object]bool
	inlining map[*ast.FuncDecl]bool
	problems []problem
	pkgDir   string
	files    []*ast.File // non-test files only
}

func newWireExtractor(pass *analysis.Pass) *wireExtractor {
	x := &wireExtractor{
		pass:     pass,
		funcs:    make(map[types.Object]*ast.FuncDecl),
		bindings: make(map[types.Object]ast.Expr),
		anon:     make(map[types.Object]bool),
		inlining: make(map[*ast.FuncDecl]bool),
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		x.files = append(x.files, f)
		if x.pkgDir == "" {
			x.pkgDir = filepath.Dir(pass.Fset.Position(f.Pos()).Filename)
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv != nil {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				x.funcs[obj] = fd
			}
		}
	}
	return x
}

// collectMsgTypes finds every type with encode(*writer), decode(*reader)
// and Kind() methods, resolving which kind constant each returns.
func (x *wireExtractor) collectMsgTypes() []*msgType {
	byName := make(map[string]*msgType)
	var order []string
	get := func(recv *ast.FuncDecl) *msgType {
		name := recvTypeName(recv)
		if name == "" {
			return nil
		}
		mt, ok := byName[name]
		if !ok {
			mt = &msgType{name: name}
			byName[name] = mt
			order = append(order, name)
		}
		return mt
	}
	for _, f := range x.files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			switch fd.Name.Name {
			case "encode":
				if mt := get(fd); mt != nil {
					mt.encodeDecl = fd
				}
			case "decode":
				if mt := get(fd); mt != nil {
					mt.decodeDecl = fd
				}
			case "Kind":
				mt := get(fd)
				if mt == nil {
					break
				}
				mt.kindPos = fd.Pos()
				mt.kindConst = x.kindReturn(fd)
			}
		}
	}
	var out []*msgType
	for _, name := range order {
		mt := byName[name]
		switch {
		case mt.encodeDecl == nil && mt.decodeDecl == nil:
			continue // some other type with a Kind() method
		case mt.encodeDecl == nil:
			x.problemf(mt.decodeDecl.Pos(), "%s has decode but no encode method: a kind that can be received but never sent is dead wire vocabulary", mt.name)
			continue
		case mt.decodeDecl == nil:
			x.problemf(mt.encodeDecl.Pos(), "%s has encode but no decode method: frames of this kind can never be parsed by a receiver", mt.name)
			continue
		}
		if mt.kindConst == nil {
			pos := mt.kindPos
			if pos == token.NoPos {
				pos = mt.encodeDecl.Pos()
			}
			x.problemf(pos, "%s has encode/decode but no resolvable Kind() method returning a msg.Kind constant", mt.name)
		}
		out = append(out, mt)
	}
	return out
}

// kindReturn resolves `func (*T) Kind() Kind { return KindX }` to KindX.
func (x *wireExtractor) kindReturn(fd *ast.FuncDecl) *types.Const {
	if len(fd.Body.List) != 1 {
		return nil
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil
	}
	id, ok := unparen(ret.Results[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	c, _ := x.pass.TypesInfo.Uses[id].(*types.Const)
	return c
}

func recvTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) != 1 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func (x *wireExtractor) problemf(pos token.Pos, format string, args ...any) {
	x.problems = append(x.problems, problem{pos, fmt.Sprintf(format, args...)})
}

// --- codec-call classification ---

// codecRole identifies whether a call is a writer op, a reader op, or
// neither, by the receiver's named type in this package.
func (x *wireExtractor) codecCall(call *ast.CallExpr) (role string, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	t := x.pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return "", "", false
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() != x.pass.Pkg {
		return "", "", false
	}
	switch named.Obj().Name() {
	case "writer":
		return "writer", sel.Sel.Name, true
	case "reader":
		return "reader", sel.Sel.Name, true
	}
	return "", "", false
}

// helperDecl resolves a call to a package-level helper that threads a
// *writer or *reader, returning its declaration for inlining.
func (x *wireExtractor) helperDecl(call *ast.CallExpr, role string) (*ast.FuncDecl, bool) {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil, false
	}
	if tv, ok := x.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return nil, false // conversion, not a call
	}
	obj := x.pass.TypesInfo.Uses[id]
	fd, ok := x.funcs[obj]
	if !ok || fd.Body == nil {
		return nil, false
	}
	for _, field := range fd.Type.Params.List {
		t := x.pass.TypesInfo.TypeOf(field.Type)
		if p, isPtr := t.(*types.Pointer); isPtr {
			if named, isNamed := p.Elem().(*types.Named); isNamed &&
				named.Obj().Pkg() == x.pass.Pkg && named.Obj().Name() == role {
				return fd, true
			}
		}
	}
	return nil, false
}

// inlineHelper interprets a helper body with the caller's arguments
// bound to its parameters, so names resolve through the call.
func (x *wireExtractor) inlineHelper(fd *ast.FuncDecl, call *ast.CallExpr, interp func([]ast.Stmt) []Op) []Op {
	if x.inlining[fd] {
		x.problemf(call.Pos(), "recursive codec helper %s cannot be modeled", fd.Name.Name)
		return nil
	}
	x.inlining[fd] = true
	defer delete(x.inlining, fd)
	// Bind each parameter object to the corresponding argument.
	i := 0
	for _, field := range fd.Type.Params.List {
		for _, pname := range field.Names {
			if i < len(call.Args) {
				if obj := x.pass.TypesInfo.Defs[pname]; obj != nil {
					x.bindings[obj] = call.Args[i]
					defer delete(x.bindings, obj)
				}
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return interp(fd.Body.List)
}

// containsCodecCalls reports whether any writer/reader op or codec
// helper call hides inside n — used to refuse statement shapes the
// interpreter does not model instead of silently dropping their ops.
func (x *wireExtractor) containsCodecCalls(n ast.Node, role string) bool {
	found := false
	ast.Inspect(n, func(nn ast.Node) bool {
		if found {
			return false
		}
		if call, ok := nn.(*ast.CallExpr); ok {
			if r, _, ok := x.codecCall(call); ok && r == role {
				found = true
				return false
			}
			if _, ok := x.helperDecl(call, role); ok {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// --- encode interpretation ---

// encodeStmts interprets an encoder body into its op sequence. Ops come
// from writer method calls and inlined helpers; a range/for loop
// becomes a rep group; an if with writer ops becomes a conditional
// (optional) group.
func (x *wireExtractor) encodeStmts(stmts []ast.Stmt) []Op {
	var ops []Op
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			call, ok := unparen(s.X).(*ast.CallExpr)
			if !ok {
				continue
			}
			ops = append(ops, x.encodeCall(call)...)
		case *ast.RangeStmt:
			if s.Value != nil {
				x.markAnon(s.Value)
			}
			body := x.encodeStmts(s.Body.List)
			if len(body) > 0 {
				ops = append(ops, Op{Kind: OpRep, Name: x.nameOf(s.X), Body: body})
			}
		case *ast.ForStmt:
			body := x.encodeStmts(s.Body.List)
			if len(body) > 0 {
				ops = append(ops, Op{Kind: OpRep, Body: body})
			}
		case *ast.IfStmt:
			body := x.encodeStmts(s.Body.List)
			if len(body) > 0 {
				ops = append(ops, Op{Kind: OpOpt, Name: firstName(body), Body: body})
			}
			if s.Else != nil && x.containsCodecCalls(s.Else, "writer") {
				x.problemf(s.Else.Pos(), "else-branch encoding cannot be modeled: wire layout must not fork on runtime state (only a trailing optional field may be conditional)")
			}
		default:
			if x.containsCodecCalls(stmt, "writer") {
				x.problemf(stmt.Pos(), "encode statement shape not modeled by wireproto: keep encoders to straight-line writer calls, counted loops over slices, and one trailing conditional field")
			}
		}
	}
	return ops
}

// markAnon records a range element variable so nameOf treats it as
// unnamed (its identifier is loop-local, not a schema name).
func (x *wireExtractor) markAnon(e ast.Expr) {
	if id, ok := e.(*ast.Ident); ok {
		if obj := x.pass.TypesInfo.Defs[id]; obj != nil {
			x.anon[obj] = true
		}
	}
}

func (x *wireExtractor) encodeCall(call *ast.CallExpr) []Op {
	if role, method, ok := x.codecCall(call); ok {
		if role != "writer" {
			x.problemf(call.Pos(), "reader op inside an encoder body")
			return nil
		}
		var argName string
		if len(call.Args) > 0 {
			argName = x.nameOf(call.Args[0])
		}
		switch method {
		case "u8", "u16", "u32", "u64", "bool":
			return []Op{{Kind: OpKind(method), Name: argName}}
		case "str":
			return []Op{{Kind: OpStr, Name: argName}}
		case "bytes":
			return []Op{{Kind: OpBytes, Name: argName}}
		case "u64s":
			return []Op{
				{Kind: OpU32, Name: lenName(argName)},
				{Kind: OpRep, Name: argName, Body: []Op{{Kind: OpU64}}},
			}
		case "u16s":
			return []Op{
				{Kind: OpU16, Name: lenName(argName)},
				{Kind: OpRep, Name: argName, Body: []Op{{Kind: OpU16}}},
			}
		default:
			x.problemf(call.Pos(), "unknown writer op w.%s: teach wireproto its wire layout before using it", method)
			return nil
		}
	}
	if fd, ok := x.helperDecl(call, "writer"); ok {
		return x.inlineHelper(fd, call, x.encodeStmts)
	}
	if x.containsCodecCalls(call, "writer") {
		x.problemf(call.Pos(), "encode call shape not modeled by wireproto")
	}
	return nil
}

// checkOptPlacement enforces that conditional encoding appears only as
// the final field of a message: anywhere else, presence cannot be
// inferred by the decoder and every later field shifts.
func (x *wireExtractor) checkOptPlacement(mt *msgType, ops []Op) {
	var walk func(ops []Op, topLevel bool)
	walk = func(ops []Op, topLevel bool) {
		for i, op := range ops {
			switch op.Kind {
			case OpOpt:
				if !topLevel || i != len(ops)-1 {
					x.problemf(mt.encodeDecl.Pos(),
						"conditional field %q of %s is not the trailing field: optional fields are detected by buffer exhaustion, so only the last field may be conditional", opLabel(op), mt.name)
				}
				walk(op.Body, false)
			case OpRep:
				walk(op.Body, false)
			}
		}
	}
	walk(ops, true)
}

// --- decode interpretation ---

// decodeStmts interprets a decoder body. Reader ops are gathered from
// expressions in evaluation order; loops become rep groups; an if whose
// condition tests remaining buffer bytes becomes a trailing optional
// group, while guards without reader ops (error/bomb checks) vanish and
// any other if is transparent.
func (x *wireExtractor) decodeStmts(stmts []ast.Stmt) []Op {
	var ops []Op
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				rhsOps := x.decodeExpr(rhs)
				// A single scalar read assigned to a struct field names
				// the op, letting the symmetry check catch same-type
				// field swaps that op kinds alone cannot see.
				if len(rhsOps) == 1 && rhsOps[0].Kind != OpRep && rhsOps[0].Kind != OpOpt &&
					len(s.Lhs) == len(s.Rhs) {
					if sel, ok := unparen(s.Lhs[i]).(*ast.SelectorExpr); ok {
						rhsOps[0].Name = sel.Sel.Name
					}
				}
				ops = append(ops, rhsOps...)
			}
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							ops = append(ops, x.decodeExpr(v)...)
						}
					}
				}
			}
		case *ast.ExprStmt:
			ops = append(ops, x.decodeExpr(s.X)...)
		case *ast.IfStmt:
			if x.containsCodecCalls(s.Cond, "reader") {
				x.problemf(s.Cond.Pos(), "reader op inside an if condition cannot be modeled")
			}
			body := x.decodeStmts(s.Body.List)
			if s.Else != nil && x.containsCodecCalls(s.Else, "reader") {
				x.problemf(s.Else.Pos(), "else-branch decoding cannot be modeled: wire layout must not fork on runtime state")
			}
			if len(body) == 0 {
				continue // error/bomb guard
			}
			if condTestsRemaining(s.Cond) {
				ops = append(ops, Op{Kind: OpOpt, Name: firstName(body), Body: body})
			} else {
				ops = append(ops, body...) // presence guard like `if n > 0`
			}
		case *ast.RangeStmt:
			body := x.decodeStmts(s.Body.List)
			if len(body) > 0 {
				ops = append(ops, Op{Kind: OpRep, Name: x.nameOf(s.X), Body: body})
			}
		case *ast.ForStmt:
			body := x.decodeStmts(s.Body.List)
			if len(body) > 0 {
				ops = append(ops, Op{Kind: OpRep, Body: body})
			}
		case *ast.ReturnStmt:
			// Guard exits carry no ops; a helper's `return out` likewise.
		default:
			if x.containsCodecCalls(stmt, "reader") {
				x.problemf(stmt.Pos(), "decode statement shape not modeled by wireproto: keep decoders to straight-line reader calls, counted loops, guards and one trailing optional")
			}
		}
	}
	return ops
}

// decodeExpr extracts reader ops from one expression in evaluation
// order, inlining *reader helpers.
func (x *wireExtractor) decodeExpr(e ast.Expr) []Op {
	var ops []Op
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch e := e.(type) {
		case nil:
			return
		case *ast.CallExpr:
			if role, method, ok := x.codecCall(e); ok {
				if role != "reader" {
					x.problemf(e.Pos(), "writer op inside a decoder body")
					return
				}
				switch method {
				case "u8", "u16", "u32", "u64", "bool":
					ops = append(ops, Op{Kind: OpKind(method)})
				case "str":
					ops = append(ops, Op{Kind: OpStr})
				case "bytesField":
					ops = append(ops, Op{Kind: OpBytes})
				case "u64list":
					ops = append(ops, Op{Kind: OpU32}, Op{Kind: OpRep, Body: []Op{{Kind: OpU64}}})
				case "u16list":
					ops = append(ops, Op{Kind: OpU16}, Op{Kind: OpRep, Body: []Op{{Kind: OpU16}}})
				default:
					x.problemf(e.Pos(), "unknown reader op r.%s: teach wireproto its wire layout before using it", method)
				}
				return
			}
			if fd, ok := x.helperDecl(e, "reader"); ok {
				ops = append(ops, x.inlineHelper(fd, e, x.decodeStmts)...)
				return
			}
			// Conversion or ordinary call: arguments evaluate in order.
			for _, a := range e.Args {
				walk(a)
			}
		case *ast.ParenExpr:
			walk(e.X)
		case *ast.StarExpr:
			walk(e.X)
		case *ast.UnaryExpr:
			walk(e.X)
		case *ast.BinaryExpr:
			walk(e.X)
			walk(e.Y)
		case *ast.IndexExpr:
			walk(e.X)
			walk(e.Index)
		case *ast.SelectorExpr:
			walk(e.X)
		case *ast.CompositeLit:
			for _, elt := range e.Elts {
				walk(elt)
			}
		case *ast.KeyValueExpr:
			walk(e.Value)
		}
	}
	walk(e)
	return ops
}

// condTestsRemaining reports whether an if condition examines the
// reader's position against its buffer (`r.off < len(r.buf)`), the
// idiom marking a trailing optional read.
func condTestsRemaining(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "off" {
			found = true
			return false
		}
		return true
	})
	return found
}

// --- naming ---

// nameOf recovers a schema field name from an encoder argument:
// selector fields (m.Name -> "Name"), counts (len(m.X) -> "len(X)"),
// conversions unwrapped, helper parameters resolved to the caller's
// argument. Loop-local element variables yield "".
func (x *wireExtractor) nameOf(e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.Ident:
		obj := x.pass.TypesInfo.Uses[e]
		if obj != nil {
			if x.anon[obj] {
				return ""
			}
			if bound, ok := x.bindings[obj]; ok {
				return x.nameOf(bound)
			}
		}
		return e.Name
	case *ast.CallExpr:
		if id, ok := unparen(e.Fun).(*ast.Ident); ok && id.Name == "len" && len(e.Args) == 1 {
			return lenName(x.nameOf(e.Args[0]))
		}
		if tv, ok := x.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return x.nameOf(e.Args[0]) // conversion like uint32(m.App)
		}
	}
	return ""
}

func lenName(inner string) string {
	if inner == "" {
		return ""
	}
	return "len(" + inner + ")"
}

// firstName labels an opt group by its first named member.
func firstName(ops []Op) string {
	for _, op := range ops {
		if op.Name != "" {
			return op.Name
		}
	}
	return ""
}

// --- symmetry ---

// symmetryDiff compares an encoder's op sequence against the decoder's
// and describes the first divergence, or returns "". The one sanctioned
// asymmetry: the decoder may wrap the encoder's trailing fields in an
// optional group (new decoder accepting old short frames).
func symmetryDiff(enc, dec []Op) string {
	for i := 0; ; i++ {
		switch {
		case i == len(enc) && i == len(dec):
			return ""
		case i == len(enc):
			return fmt.Sprintf("decoder reads %d extra op(s) starting with %q that the encoder never writes", len(dec)-i, opLabel(dec[i]))
		case i == len(dec):
			return fmt.Sprintf("encoder writes %d extra op(s) starting with %q that the decoder never reads", len(enc)-i, opLabel(enc[i]))
		}
		e, d := enc[i], dec[i]
		// Trailing leniency: decoder-side opt absorbing the encoder's
		// unconditional tail.
		if d.Kind == OpOpt && e.Kind != OpOpt && i == len(dec)-1 {
			if diff := symmetryDiff(enc[i:], d.Body); diff != "" {
				return fmt.Sprintf("inside decoder's trailing optional group: %s", diff)
			}
			return ""
		}
		if e.Kind != d.Kind {
			return fmt.Sprintf("op %d: encoder writes %q, decoder reads %q", i, opLabel(e), opLabel(d))
		}
		// Field order: when both sides name the field, the names must
		// agree — a swapped pair of same-type reads is still a misparse.
		if e.Name != "" && d.Name != "" && e.Name != d.Name {
			return fmt.Sprintf("op %d: encoder writes field %q, decoder stores field %q — fields are swapped or reordered", i, opLabel(e), opLabel(d))
		}
		if e.Kind == OpRep || e.Kind == OpOpt {
			if diff := symmetryDiff(e.Body, d.Body); diff != "" {
				return fmt.Sprintf("inside %q: %s", opLabel(e), diff)
			}
		}
	}
}

// --- registration completeness ---

// kindConsts returns the exported, non-sentinel constants of this
// package's Kind type in declaration order.
func (x *wireExtractor) kindConsts() []*types.Const {
	var out []*types.Const
	scope := x.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() || strings.Contains(name, "Invalid") {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj().Name() != "Kind" || named.Obj().Pkg() != x.pass.Pkg {
			continue
		}
		out = append(out, c)
	}
	// Scope names are sorted alphabetically; re-sort by wire number so
	// diagnostics come out in protocol order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, _ := constant.Uint64Val(out[j-1].Val())
			b, _ := constant.Uint64Val(out[j].Val())
			if a <= b {
				break
			}
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func (x *wireExtractor) checkRegistration(msgs []*msgType) {
	byKind := make(map[string]*msgType)
	for _, mt := range msgs {
		if mt.kindConst != nil {
			if prev, dup := byKind[mt.kindConst.Name()]; dup {
				x.pass.Reportf(mt.kindPos, "%s and %s both claim kind %s: the decode dispatcher can construct only one of them", prev.name, mt.name, mt.kindConst.Name())
				continue
			}
			byKind[mt.kindConst.Name()] = mt
		}
	}
	consts := x.kindConsts()
	for _, c := range consts {
		if byKind[c.Name()] == nil {
			x.pass.Reportf(c.Pos(), "msg.Kind constant %s has no message type: no type's Kind() method returns it, so frames of this kind can be neither built nor parsed", c.Name())
		}
	}
	x.checkDispatcher(consts, byKind)
	x.checkCorpus(consts)
}

// checkDispatcher verifies newMessage constructs the right type for
// every kind. kindswitch already forces the switch to be exhaustive;
// this adds the pairing check (case KindX must return the type whose
// Kind() is KindX).
func (x *wireExtractor) checkDispatcher(consts []*types.Const, byKind map[string]*msgType) {
	var nm *ast.FuncDecl
	for obj, fd := range x.funcs {
		if obj.Name() == "newMessage" {
			nm = fd
			break
		}
	}
	if nm == nil {
		x.pass.Reportf(x.files[0].Pos(), "wire-codec package has no newMessage decode dispatcher: inbound frames cannot be constructed by kind")
		return
	}
	covered := make(map[string]bool)
	ast.Inspect(nm.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		var kindNames []string
		for _, e := range cc.List {
			if name, ok := x.caseConstName(e); ok {
				kindNames = append(kindNames, name)
				covered[name] = true
			}
		}
		retType := returnedTypeName(cc.Body)
		if retType == "" || len(kindNames) == 0 {
			return true
		}
		for _, kn := range kindNames {
			mt := byKind[kn]
			if mt == nil {
				continue // missing-type finding already reported at the const
			}
			if mt.name != retType {
				x.pass.Reportf(cc.Pos(), "decode dispatcher returns %s for %s, but %s's Kind() is %s: frames of kind %s would be parsed with the wrong layout",
					retType, kn, retType, typeKindName(byTypeName(byKind, retType)), kn)
			}
		}
		return true
	})
	for _, c := range consts {
		if !covered[c.Name()] && byKind[c.Name()] != nil {
			x.pass.Reportf(c.Pos(), "kind %s is not constructed by the decode dispatcher (newMessage): inbound frames of this kind are rejected as unknown", c.Name())
		}
	}
}

func byTypeName(byKind map[string]*msgType, name string) *msgType {
	for _, mt := range byKind {
		if mt.name == name {
			return mt
		}
	}
	return nil
}

func typeKindName(mt *msgType) string {
	if mt == nil || mt.kindConst == nil {
		return "a different kind"
	}
	return mt.kindConst.Name()
}

func (x *wireExtractor) caseConstName(e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	if c, ok := x.pass.TypesInfo.Uses[id].(*types.Const); ok {
		return c.Name(), true
	}
	return "", false
}

// returnedTypeName extracts T from `return &T{}` in a case body.
func returnedTypeName(body []ast.Stmt) string {
	for _, stmt := range body {
		ret, ok := stmt.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			continue
		}
		ue, ok := unparen(ret.Results[0]).(*ast.UnaryExpr)
		if !ok || ue.Op != token.AND {
			continue
		}
		cl, ok := ue.X.(*ast.CompositeLit)
		if !ok {
			continue
		}
		if id, ok := cl.Type.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// corpusEntryRE matches the []byte literal of a `go test fuzz v1`
// corpus entry.
var corpusEntryRE = regexp.MustCompile(`\[\]byte\((".*")\)`)

// checkCorpus requires at least one FuzzDecode seed per kind. Seeds are
// read as wire bytes — the kind lives at header offset 4 — so a renamed
// file still counts and a mislabeled one cannot fake coverage.
func (x *wireExtractor) checkCorpus(consts []*types.Const) {
	dir := filepath.Join(x.pkgDir, "testdata", "fuzz", "FuzzDecode")
	entries, err := os.ReadDir(dir)
	if err != nil {
		if x.pass.Pkg.Path() == realMsgPath {
			x.pass.Reportf(x.files[0].Pos(), "missing FuzzDecode seed corpus at %s: every wire kind needs at least one seed (NOCPU_REGEN_CORPUS=1 go test -run TestRegenerateFuzzCorpus ./internal/msg)", dir)
		}
		return // miniature codec packages (golden suites) carry no corpus
	}
	seeded := make(map[uint16]bool)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		m := corpusEntryRE.FindSubmatch(data)
		if m == nil {
			continue
		}
		raw, err := strconv.Unquote(string(m[1]))
		if err != nil || len(raw) < 6 {
			continue
		}
		seeded[uint16(raw[4])|uint16(raw[5])<<8] = true
	}
	for _, c := range consts {
		v, _ := constant.Uint64Val(c.Val())
		if !seeded[uint16(v)] {
			x.pass.Reportf(c.Pos(), "kind %s has no FuzzDecode corpus seed under testdata/fuzz/FuzzDecode: the fuzzer never starts from a valid frame of this kind (regenerate the corpus and add one)", c.Name())
		}
	}
}

// --- lockfile ---

// checkLock diffs the extracted schema against the committed wire.lock
// (append-only evolution), or rewrites the lock under
// NOCPU_REGEN_WIRELOCK=1.
func (x *wireExtractor) checkLock(schema *WireSchema, encPos map[string]token.Pos) {
	lockPath := filepath.Join(x.pkgDir, "wire.lock")
	if os.Getenv("NOCPU_REGEN_WIRELOCK") != "" && x.pass.Pkg.Path() == realMsgPath {
		if err := os.WriteFile(lockPath, []byte(Format(schema)), 0o644); err != nil {
			x.pass.Reportf(x.files[0].Pos(), "regenerating wire.lock: %v", err)
		}
		return
	}
	data, err := os.ReadFile(lockPath)
	if err != nil {
		if x.pass.Pkg.Path() == realMsgPath {
			x.pass.Reportf(x.files[0].Pos(), "missing %s: the wire schema has no compatibility baseline (generate with NOCPU_REGEN_WIRELOCK=1 make lint and commit it)", lockPath)
		}
		return // miniature codec packages opt in by committing a lock
	}
	lock, err := Parse(string(data))
	if err != nil {
		x.pass.Reportf(x.files[0].Pos(), "unparsable %s: %v (regenerate with NOCPU_REGEN_WIRELOCK=1 make lint)", lockPath, err)
		return
	}
	for _, v := range CompatDiff(lock, schema) {
		pos := encPos[v.KindName]
		if pos == token.NoPos {
			pos = x.files[0].Pos()
		}
		x.pass.Reportf(pos, "wire.lock: %s", v.Msg)
	}
}
