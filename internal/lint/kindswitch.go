package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"nocpu/internal/lint/analysis"
)

// Kindswitch keeps every switch over the bus-protocol discriminator
// (msg.Kind) — and every map literal keyed by it, such as the
// kind-name table — exhaustive. Dispatch over message kinds appears in
// the wire codec, fault-injection filters and provider replay paths;
// when a new kind is added, every one of those sites must make an
// explicit decision, otherwise the new message is silently dropped (or
// misprinted) at runtime. A `default:` clause does not count as
// coverage: it is the unknown-future-kind path, not a decision about a
// kind that is already declared.
//
// Constants that are unexported or contain "Invalid" in their name are
// sentinels, not protocol kinds, and are not required.
var Kindswitch = &analysis.Analyzer{
	Name: "kindswitch",
	Doc:  "require switches and map literals over msg.Kind to cover every declared kind",
	Run:  runKindswitch,
}

func runKindswitch(pass *analysis.Pass) error {
	if !simScoped(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				checkKindSwitch(pass, n)
			case *ast.CompositeLit:
				checkKindMapLit(pass, n)
			}
			return true
		})
	}
	return nil
}

// kindType returns the named type if t is msg.Kind (a named type called
// "Kind" declared in a package named "msg").
func kindType(t types.Type) (*types.Named, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	obj := named.Obj()
	if obj.Name() != "Kind" || obj.Pkg() == nil || obj.Pkg().Name() != "msg" {
		return nil, false
	}
	return named, true
}

// requiredKinds lists the protocol constants of the Kind type, from its
// defining package's scope (which export data preserves for imports).
func requiredKinds(named *types.Named) map[string]bool {
	out := make(map[string]bool)
	scope := named.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if !c.Exported() || strings.Contains(name, "Invalid") {
			continue // sentinel, not a wire kind
		}
		out[name] = true
	}
	return out
}

func checkKindSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	t := pass.TypesInfo.TypeOf(sw.Tag)
	if t == nil {
		return
	}
	named, ok := kindType(t)
	if !ok {
		return
	}
	missing := requiredKinds(named)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if name, ok := constName(pass, e); ok {
				delete(missing, name)
			}
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(),
			"switch over msg.Kind does not cover %s; a kind this dispatch ignores is dropped silently at runtime — handle it explicitly (a default: clause does not count as a decision)",
			nameList(missing))
	}
}

func checkKindMapLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return
	}
	named, ok := kindType(m.Key())
	if !ok {
		return
	}
	missing := requiredKinds(named)
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if name, ok := constName(pass, kv.Key); ok {
			delete(missing, name)
		}
	}
	if len(missing) > 0 {
		pass.Reportf(lit.Pos(),
			"map literal keyed by msg.Kind has no entry for %s; the new kind would fall through to the table's fallback", nameList(missing))
	}
}

// constName resolves a case/key expression to the name of the constant
// it references.
func constName(pass *analysis.Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok {
		return c.Name(), true
	}
	return "", false
}

func nameList(set map[string]bool) string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
