package lint_test

import (
	"testing"

	"nocpu/internal/lint"
	"nocpu/internal/lint/analysistest"
)

func TestLayeringDeviceTier(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Layering, "nocpu/internal/smartnic")
}

func TestLayeringMsgLeaf(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Layering, "nocpu/internal/msg")
}

func TestLayeringUnregistered(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Layering, "nocpu/internal/newpkg")
}
