package bus

import (
	"testing"

	"nocpu/internal/msg"
	"nocpu/internal/sim"
)

// creditCfg returns DefaultConfig with a credit window, leaving the
// watchdog off so tests control every event.
func creditCfg(window int) Config {
	cfg := DefaultConfig
	cfg.CreditWindow = window
	return cfg
}

// autoCredit wires a test device to return bus credits the way a real
// device does (device.go routes CreditUpdate to port.AddCredits).
func autoCredit(d *testDev) {
	d.onMsg = func(env msg.Envelope) {
		if cu, ok := env.Msg.(*msg.CreditUpdate); ok {
			d.port.AddCredits(cu.Credits, cu.ForInc)
		}
	}
}

// A burst past the credit window stalls at the port, then drains as the
// bus replenishes credits — nothing is lost, nothing floods the wire.
func TestCreditExhaustionStallsThenDrains(t *testing.T) {
	h := newHarness(t, creditCfg(2))
	a := h.addDev(1, "a", msg.RoleAccelerator)
	b := h.addDev(2, "b", msg.RoleAccelerator)
	autoCredit(a)
	autoCredit(b)
	h.boot()

	// 10 sends at one instant against a window of 2: at most 2 transmit
	// immediately, the rest wait in the stall queue (bound 4*2 = 8).
	for i := 0; i < 10; i++ {
		a.port.Send(2, &msg.Heartbeat{Seq: uint64(i + 1)})
	}
	h.eng.Run()

	if got := b.countKind(msg.KindHeartbeat); got != 10 {
		t.Fatalf("delivered %d heartbeats, want 10", got)
	}
	st := h.bus.Stats()
	if st.CreditStalls == 0 {
		t.Error("no sends stalled despite burst past the window")
	}
	if st.StallDropped != 0 {
		t.Errorf("StallDropped = %d, want 0 (burst fits the stall bound)", st.StallDropped)
	}
	if st.CreditUpdates == 0 {
		t.Error("bus never replenished credits")
	}
	if g := a.port.StallGauge(); g.Exceeded() {
		t.Errorf("stall gauge exceeded its bound: max %d > %d", g.Max(), g.Bound())
	}
	if c := a.port.Credits(); c < 0 || c > 2 {
		t.Errorf("credits = %d, want within [0, window]", c)
	}
}

// With replenishment ignored, the stall queue fills to its bound and
// further sends are dropped deterministically; returning credits later
// drains the survivors in FIFO order.
func TestStallOverflowDropsDeterministically(t *testing.T) {
	h := newHarness(t, creditCfg(1))
	a := h.addDev(1, "a", msg.RoleAccelerator)
	b := h.addDev(2, "b", msg.RoleAccelerator)
	// No autoCredit: a ignores CreditUpdate, so its lone credit is spent
	// on Hello and never returns.
	h.boot()
	if c := a.port.Credits(); c != 0 {
		t.Fatalf("credits after boot = %d, want 0", c)
	}

	// Stall bound is 4*window = 4: of 6 sends, 4 stall and 2 drop.
	for i := 0; i < 6; i++ {
		a.port.Send(2, &msg.Heartbeat{Seq: uint64(i + 1)})
	}
	h.eng.Run()
	st := h.bus.Stats()
	if st.CreditStalls != 4 || st.StallDropped != 2 {
		t.Fatalf("CreditStalls = %d, StallDropped = %d, want 4 and 2", st.CreditStalls, st.StallDropped)
	}
	if got := b.countKind(msg.KindHeartbeat); got != 0 {
		t.Fatalf("%d heartbeats delivered with zero credits, want 0", got)
	}

	// Return two credits (one at a time — AddCredits saturates at the
	// window): exactly the two oldest stalled sends drain.
	a.port.AddCredits(1, 0)
	h.eng.Run()
	a.port.AddCredits(1, 0)
	h.eng.Run()
	var seqs []uint64
	for _, e := range b.inbox {
		if hb, ok := e.Msg.(*msg.Heartbeat); ok {
			seqs = append(seqs, hb.Seq)
		}
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Errorf("drained seqs = %v, want [1 2] (FIFO)", seqs)
	}
}

// A crash-restart (NewIncarnation) resets flow control: stalled sends
// from the previous life are discarded and the window starts full.
func TestNewIncarnationResetsCredits(t *testing.T) {
	h := newHarness(t, creditCfg(1))
	a := h.addDev(1, "a", msg.RoleAccelerator)
	h.addDev(2, "b", msg.RoleAccelerator)
	h.boot()

	a.port.Send(2, &msg.Heartbeat{Seq: 1}) // stalls: credits spent on Hello
	if g := a.port.StallGauge(); g.Cur() != 1 {
		t.Fatalf("stalled = %d, want 1", g.Cur())
	}
	a.port.NewIncarnation()
	if c := a.port.Credits(); c != 1 {
		t.Errorf("credits after restart = %d, want full window 1", c)
	}
	if g := a.port.StallGauge(); g.Cur() != 0 {
		t.Errorf("stall queue after restart = %d, want 0", g.Cur())
	}
}

// A CreditUpdate fenced to a previous incarnation is refused with a
// typed drop: a captured replenishment replayed after a crash recovery
// must not inflate the new life's window. (Regression: acceptance used
// to trust the sender's port identity alone.)
func TestStaleIncarnationCreditReplayDropped(t *testing.T) {
	h := newHarness(t, creditCfg(2))
	a := h.addDev(1, "a", msg.RoleAccelerator)
	h.addDev(2, "b", msg.RoleAccelerator)
	autoCredit(a)
	h.boot()

	// A "captured" replenishment from incarnation 0's life.
	captured := &msg.CreditUpdate{Window: 2, Credits: 2, ForInc: a.port.Incarnation()}

	// The device crashes and recovers: its port begins incarnation 1.
	a.port.NewIncarnation()
	if c := a.port.Credits(); c != 2 {
		t.Fatalf("credits after restart = %d, want full window", c)
	}
	// Spend the window so a successful replay would be observable.
	a.port.Send(2, &msg.Heartbeat{Seq: 1})
	a.port.Send(2, &msg.Heartbeat{Seq: 2})
	if c := a.port.Credits(); c != 0 {
		t.Fatalf("credits = %d, want 0 before replay", c)
	}

	// Replay the stale replenishment: fenced, typed, counted — and the
	// balance untouched.
	a.port.AddCredits(captured.Credits, captured.ForInc)
	if c := a.port.Credits(); c != 0 {
		t.Errorf("credits = %d after stale replay, want 0 (window inflated!)", c)
	}
	if st := h.bus.Stats(); st.StaleCreditDropped != 1 {
		t.Errorf("StaleCreditDropped = %d, want 1", st.StaleCreditDropped)
	}

	// A correctly fenced update for the current incarnation still lands.
	a.port.AddCredits(1, a.port.Incarnation())
	if c := a.port.Credits(); c != 1 {
		t.Errorf("credits = %d after valid update, want 1", c)
	}
}

// The bus replenishes with ForInc matching the sender's current
// incarnation, so the normal path keeps flowing after a recovery.
func TestReplenishFencedToCurrentIncarnation(t *testing.T) {
	h := newHarness(t, creditCfg(2))
	a := h.addDev(1, "a", msg.RoleAccelerator)
	h.addDev(2, "b", msg.RoleAccelerator)
	autoCredit(a)
	h.boot()

	a.port.NewIncarnation() // recovered device: incarnation 1
	a.inbox = nil           // ignore boot-time (incarnation-0) traffic
	for i := 0; i < 6; i++ {
		a.port.Send(2, &msg.Heartbeat{Seq: uint64(i + 1)})
	}
	h.eng.Run()

	st := h.bus.Stats()
	if st.CreditUpdates == 0 {
		t.Fatal("bus never replenished")
	}
	if st.StaleCreditDropped != 0 {
		t.Errorf("StaleCreditDropped = %d on the healthy path, want 0", st.StaleCreditDropped)
	}
	got := 0
	for _, e := range a.inbox {
		if cu, ok := e.Msg.(*msg.CreditUpdate); ok {
			got++
			if cu.ForInc != 1 {
				t.Errorf("CreditUpdate.ForInc = %d, want current incarnation 1", cu.ForInc)
			}
		}
	}
	if got == 0 {
		t.Fatal("no CreditUpdate reached the device")
	}
}

// The bus ingress bound sheds excess envelopes with a typed overload
// NACK instead of queueing without limit.
func TestIngressBoundShedsWithNack(t *testing.T) {
	cfg := DefaultConfig
	cfg.IngressBound = 2
	cfg.ProcPerMsg = 100 * sim.Microsecond // slow bus: backlog builds
	h := newHarness(t, cfg)
	a := h.addDev(1, "a", msg.RoleAccelerator)
	b := h.addDev(2, "b", msg.RoleAccelerator)
	h.boot()

	// 6 identical sends arrive at the bus at one instant; at most the
	// bound may enter processing, the rest are refused.
	for i := 0; i < 6; i++ {
		a.port.Send(2, &msg.Heartbeat{Seq: uint64(i + 1)})
	}
	h.eng.Run()

	st := h.bus.Stats()
	if st.IngressShed == 0 {
		t.Fatal("no envelopes shed at the ingress bound")
	}
	delivered := b.countKind(msg.KindHeartbeat)
	nacks := 0
	for _, e := range a.inbox {
		if n, ok := e.Msg.(*msg.Nack); ok {
			if n.Code != msg.NackOverload {
				t.Errorf("nack code = %v, want NackOverload", n.Code)
			}
			if n.Of != msg.KindHeartbeat {
				t.Errorf("nack Of = %v, want KindHeartbeat", n.Of)
			}
			nacks++
		}
	}
	if uint64(nacks) != st.IngressShed {
		t.Errorf("sender saw %d overload nacks, bus shed %d", nacks, st.IngressShed)
	}
	if delivered+nacks != 6 {
		t.Errorf("delivered %d + nacked %d != 6 sent: work silently lost", delivered, nacks)
	}
	if g := h.bus.IngressGauge(); g.Exceeded() {
		t.Errorf("ingress gauge exceeded its bound: max %d > %d", g.Max(), g.Bound())
	}
}
