package bus

import (
	"strings"
	"testing"

	"nocpu/internal/iommu"
	"nocpu/internal/msg"
	"nocpu/internal/physmem"
	"nocpu/internal/sim"
	"nocpu/internal/trace"
)

type testDev struct {
	id    msg.DeviceID
	name  string
	mmu   *iommu.IOMMU
	port  *Port
	inbox []msg.Envelope
	// onMsg, when set, runs on each delivery (to script responses).
	onMsg func(env msg.Envelope)
}

type harness struct {
	t    *testing.T
	eng  *sim.Engine
	mem  *physmem.Memory
	bus  *Bus
	tr   *trace.Tracer
	devs map[msg.DeviceID]*testDev
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{
		t:    t,
		eng:  sim.NewEngine(),
		mem:  physmem.MustNew(1024 * physmem.PageSize),
		tr:   trace.New(0),
		devs: make(map[msg.DeviceID]*testDev),
	}
	h.bus = New(h.eng, cfg, h.tr)
	return h
}

func (h *harness) addDev(id msg.DeviceID, name string, role msg.Role) *testDev {
	h.t.Helper()
	d := &testDev{id: id, name: name, mmu: iommu.New(name, h.mem, iommu.DefaultConfig)}
	port, err := h.bus.Attach(id, name, role, d.mmu, func(env msg.Envelope) {
		d.inbox = append(d.inbox, env)
		if d.onMsg != nil {
			d.onMsg(env)
		}
	})
	if err != nil {
		h.t.Fatal(err)
	}
	d.port = port
	h.devs[id] = d
	return d
}

// boot sends Hello from every attached device and runs the engine.
func (h *harness) boot() {
	for _, d := range h.devs {
		d.port.Send(msg.BusID, &msg.Hello{Role: msg.RoleAccelerator, Name: d.name})
	}
	h.eng.Run()
}

func (d *testDev) lastMsg() msg.Message {
	if len(d.inbox) == 0 {
		return nil
	}
	return d.inbox[len(d.inbox)-1].Msg
}

func (d *testDev) countKind(k msg.Kind) int {
	n := 0
	for _, e := range d.inbox {
		if e.Msg.Kind() == k {
			n++
		}
	}
	return n
}

func TestAttachValidation(t *testing.T) {
	h := newHarness(t, DefaultConfig)
	for _, id := range []msg.DeviceID{0, msg.Broadcast, msg.BusID} {
		if _, err := h.bus.Attach(id, "x", msg.RoleAccelerator, nil, func(msg.Envelope) {}); err == nil {
			t.Errorf("reserved id %v accepted", id)
		}
	}
	h.addDev(1, "a", msg.RoleAccelerator)
	if _, err := h.bus.Attach(1, "dup", msg.RoleAccelerator, nil, func(msg.Envelope) {}); err == nil {
		t.Error("duplicate id accepted")
	}
	h.addDev(2, "mc", msg.RoleMemoryController)
	if _, err := h.bus.Attach(3, "mc2", msg.RoleMemoryController, nil, func(msg.Envelope) {}); err == nil {
		t.Error("second memory controller accepted")
	}
}

func TestHelloMakesAlive(t *testing.T) {
	h := newHarness(t, DefaultConfig)
	d := h.addDev(1, "nic", msg.RoleNIC)
	if h.bus.Alive(1) {
		t.Error("alive before hello")
	}
	h.boot()
	if !h.bus.Alive(1) {
		t.Error("not alive after hello")
	}
	if d.countKind(msg.KindHelloAck) != 1 {
		t.Error("no HelloAck")
	}
}

func TestUnicastDelivery(t *testing.T) {
	h := newHarness(t, DefaultConfig)
	a := h.addDev(1, "a", msg.RoleAccelerator)
	b := h.addDev(2, "b", msg.RoleAccelerator)
	h.boot()
	a.port.Send(2, &msg.Heartbeat{Seq: 7})
	h.eng.Run()
	if got, ok := b.lastMsg().(*msg.Heartbeat); !ok || got.Seq != 7 {
		t.Errorf("b received %+v", b.lastMsg())
	}
}

func TestMessagesFromDeadDeviceDropped(t *testing.T) {
	h := newHarness(t, DefaultConfig)
	a := h.addDev(1, "a", msg.RoleAccelerator)
	b := h.addDev(2, "b", msg.RoleAccelerator)
	// b boots, a never says hello.
	b.port.Send(msg.BusID, &msg.Hello{Name: "b"})
	h.eng.Run()
	a.port.Send(2, &msg.Heartbeat{})
	h.eng.Run()
	if b.countKind(msg.KindHeartbeat) != 0 {
		t.Error("message from never-booted device delivered")
	}
	if h.bus.Stats().DeadSenderDropped == 0 {
		t.Error("dead-sender drop not counted")
	}
	if h.bus.Stats().Dropped != 0 {
		t.Error("dead-sender drop leaked into wire-loss counter")
	}
}

func TestDeliveryToDeadDeviceDropped(t *testing.T) {
	h := newHarness(t, DefaultConfig)
	a := h.addDev(1, "a", msg.RoleAccelerator)
	b := h.addDev(2, "b", msg.RoleAccelerator)
	h.boot()
	if err := h.bus.FailDevice(2, "test"); err != nil {
		t.Fatal(err)
	}
	before := len(b.inbox)
	a.port.Send(2, &msg.Heartbeat{})
	h.eng.Run()
	for _, e := range b.inbox[before:] {
		if e.Msg.Kind() == msg.KindHeartbeat {
			t.Error("dead device received heartbeat")
		}
	}
}

func TestBroadcastExcludesSenderAndDead(t *testing.T) {
	h := newHarness(t, DefaultConfig)
	a := h.addDev(1, "a", msg.RoleAccelerator)
	b := h.addDev(2, "b", msg.RoleAccelerator)
	c := h.addDev(3, "c", msg.RoleAccelerator)
	h.boot()
	_ = h.bus.FailDevice(3, "test")
	h.eng.Run()
	a.port.Send(msg.Broadcast, &msg.DiscoverReq{Query: "file:x", Nonce: 1})
	h.eng.Run()
	if a.countKind(msg.KindDiscoverReq) != 0 {
		t.Error("sender received its own broadcast")
	}
	if b.countKind(msg.KindDiscoverReq) != 1 {
		t.Error("alive peer missed broadcast")
	}
	if c.countKind(msg.KindDiscoverReq) != 0 {
		t.Error("dead device received broadcast")
	}
}

// allocRoundTrip drives memctrl-style AllocResp through the bus so the
// requester's IOMMU gets programmed.
func (h *harness) allocRoundTrip(mc, requester *testDev, app msg.AppID, va uint64, nFrames int) []uint64 {
	h.t.Helper()
	frames := make([]uint64, nFrames)
	for i := range frames {
		f, err := h.mem.AllocFrames(1)
		if err != nil {
			h.t.Fatal(err)
		}
		frames[i] = uint64(f)
	}
	mc.port.Send(requester.id, &msg.AllocResp{App: app, OK: true, VA: va, Frames: frames, Perm: uint8(iommu.PermRW)})
	h.eng.Run()
	return frames
}

func TestAllocRespProgramsIOMMU(t *testing.T) {
	h := newHarness(t, DefaultConfig)
	mc := h.addDev(1, "memctrl", msg.RoleMemoryController)
	nic := h.addDev(2, "nic", msg.RoleNIC)
	h.boot()
	frames := h.allocRoundTrip(mc, nic, 5, 0x10000, 3)
	// The requester's IOMMU must now translate the region.
	for i, f := range frames {
		fr, perm, ok := nic.mmu.Lookup(5, iommu.VirtAddr(0x10000+i*physmem.PageSize))
		if !ok || uint64(fr) != f || perm != iommu.PermRW {
			t.Fatalf("page %d not mapped correctly (ok=%v fr=%v)", i, ok, fr)
		}
	}
	if got, ok := h.bus.OwnerOf(5, 0x10000); !ok || got != 2 {
		t.Error("ownership not recorded")
	}
	if nic.countKind(msg.KindAllocResp) != 1 {
		t.Error("AllocResp not forwarded")
	}
	if h.bus.Stats().PagesMapped != 3 {
		t.Errorf("PagesMapped = %d", h.bus.Stats().PagesMapped)
	}
}

func TestForgedAllocRespDropped(t *testing.T) {
	h := newHarness(t, DefaultConfig)
	h.addDev(1, "memctrl", msg.RoleMemoryController)
	evil := h.addDev(2, "evil", msg.RoleAccelerator)
	victim := h.addDev(3, "victim", msg.RoleNIC)
	h.boot()
	f, _ := h.mem.AllocFrames(1)
	evil.port.Send(3, &msg.AllocResp{App: 9, OK: true, VA: 0x5000, Frames: []uint64{uint64(f)}})
	h.eng.Run()
	if victim.countKind(msg.KindAllocResp) != 0 {
		t.Error("forged AllocResp delivered")
	}
	if _, _, ok := victim.mmu.Lookup(9, 0x5000); ok {
		t.Error("forged AllocResp programmed the IOMMU")
	}
}

func TestDoubleAllocConvertedToFailure(t *testing.T) {
	h := newHarness(t, DefaultConfig)
	mc := h.addDev(1, "memctrl", msg.RoleMemoryController)
	nic := h.addDev(2, "nic", msg.RoleNIC)
	h.boot()
	h.allocRoundTrip(mc, nic, 5, 0x10000, 1)
	// Same VA again: bus cannot map twice, requester must see failure.
	h.allocRoundTrip(mc, nic, 5, 0x10000, 1)
	last := nic.lastMsg().(*msg.AllocResp)
	if last.OK {
		t.Error("conflicting alloc reported OK")
	}
}

// grantSetup wires a scripted memory controller that authorizes grants
// for the given app/frames.
func scriptedMemctrl(mc *testDev, authorize bool, frames []uint64) {
	mc.onMsg = func(env msg.Envelope) {
		if ar, ok := env.Msg.(*msg.AuthReq); ok {
			resp := &msg.AuthResp{App: ar.App, OK: authorize, VA: ar.VA, Perm: ar.Perm, Nonce: ar.Nonce}
			if !authorize {
				resp.Reason = "denied by controller"
			} else {
				resp.Frames = frames
			}
			mc.port.Send(msg.BusID, resp)
		}
	}
}

func TestGrantFlowEndToEnd(t *testing.T) {
	h := newHarness(t, DefaultConfig)
	mc := h.addDev(1, "memctrl", msg.RoleMemoryController)
	nic := h.addDev(2, "nic", msg.RoleNIC)
	ssd := h.addDev(3, "ssd", msg.RoleStorage)
	h.boot()
	frames := h.allocRoundTrip(mc, nic, 5, 0x10000, 2)
	scriptedMemctrl(mc, true, frames)

	nic.port.Send(msg.BusID, &msg.GrantReq{App: 5, VA: 0x10000, Bytes: 2 * physmem.PageSize, Target: 3, Perm: uint8(iommu.PermRW)})
	h.eng.Run()

	gr, ok := nic.lastMsg().(*msg.GrantResp)
	if !ok || !gr.OK {
		t.Fatalf("grant response = %+v", nic.lastMsg())
	}
	// The SSD's IOMMU now maps the same physical frames at the same VA.
	for i, f := range frames {
		fr, _, ok := ssd.mmu.Lookup(5, iommu.VirtAddr(0x10000+i*physmem.PageSize))
		if !ok || uint64(fr) != f {
			t.Fatalf("grantee page %d not mapped", i)
		}
	}
	if g := h.bus.GranteesOf(5, 0x10000); len(g) != 1 || g[0] != 3 {
		t.Errorf("grantees = %v", g)
	}
	if h.bus.Stats().GrantsOK != 1 {
		t.Error("grant not counted")
	}
}

func TestGrantDeniedByController(t *testing.T) {
	h := newHarness(t, DefaultConfig)
	mc := h.addDev(1, "memctrl", msg.RoleMemoryController)
	nic := h.addDev(2, "nic", msg.RoleNIC)
	ssd := h.addDev(3, "ssd", msg.RoleStorage)
	h.boot()
	h.allocRoundTrip(mc, nic, 5, 0x10000, 1)
	scriptedMemctrl(mc, false, nil)
	nic.port.Send(msg.BusID, &msg.GrantReq{App: 5, VA: 0x10000, Bytes: physmem.PageSize, Target: 3})
	h.eng.Run()
	gr := nic.lastMsg().(*msg.GrantResp)
	if gr.OK {
		t.Fatal("denied grant reported OK")
	}
	if _, _, ok := ssd.mmu.Lookup(5, 0x10000); ok {
		t.Error("denied grant still mapped")
	}
	if h.bus.Stats().GrantsDenied != 1 {
		t.Error("denial not counted")
	}
}

func TestGrantByNonOwnerRejected(t *testing.T) {
	h := newHarness(t, DefaultConfig)
	mc := h.addDev(1, "memctrl", msg.RoleMemoryController)
	nic := h.addDev(2, "nic", msg.RoleNIC)
	evil := h.addDev(3, "evil", msg.RoleAccelerator)
	h.boot()
	frames := h.allocRoundTrip(mc, nic, 5, 0x10000, 1)
	scriptedMemctrl(mc, true, frames)
	// evil tries to grant nic's region to itself.
	evil.port.Send(msg.BusID, &msg.GrantReq{App: 5, VA: 0x10000, Bytes: physmem.PageSize, Target: 3})
	h.eng.Run()
	gr, ok := evil.lastMsg().(*msg.GrantResp)
	if !ok || gr.OK {
		t.Fatalf("non-owner grant = %+v", evil.lastMsg())
	}
	if !strings.Contains(gr.Reason, "own") {
		t.Errorf("reason = %q", gr.Reason)
	}
}

func TestForgedAuthRespIgnored(t *testing.T) {
	h := newHarness(t, DefaultConfig)
	mc := h.addDev(1, "memctrl", msg.RoleMemoryController)
	nic := h.addDev(2, "nic", msg.RoleNIC)
	evil := h.addDev(3, "evil", msg.RoleAccelerator)
	h.boot()
	frames := h.allocRoundTrip(mc, nic, 5, 0x10000, 1)
	// memctrl stays silent; evil tries to complete the grant itself.
	mc.onMsg = func(env msg.Envelope) {
		if ar, ok := env.Msg.(*msg.AuthReq); ok {
			evil.port.Send(msg.BusID, &msg.AuthResp{App: ar.App, OK: true, VA: ar.VA, Frames: frames, Nonce: ar.Nonce})
		}
	}
	nic.port.Send(msg.BusID, &msg.GrantReq{App: 5, VA: 0x10000, Bytes: physmem.PageSize, Target: 3})
	h.eng.Run()
	if _, _, ok := h.devs[3].mmu.Lookup(5, 0x10000); ok {
		t.Error("forged AuthResp programmed a mapping")
	}
	if h.bus.Stats().GrantsOK != 0 {
		t.Error("forged grant counted as OK")
	}
}

func TestRevokeFlow(t *testing.T) {
	h := newHarness(t, DefaultConfig)
	mc := h.addDev(1, "memctrl", msg.RoleMemoryController)
	nic := h.addDev(2, "nic", msg.RoleNIC)
	ssd := h.addDev(3, "ssd", msg.RoleStorage)
	h.boot()
	frames := h.allocRoundTrip(mc, nic, 5, 0x10000, 2)
	scriptedMemctrl(mc, true, frames)
	nic.port.Send(msg.BusID, &msg.GrantReq{App: 5, VA: 0x10000, Bytes: 2 * physmem.PageSize, Target: 3, Perm: uint8(iommu.PermRW)})
	h.eng.Run()
	nic.port.Send(msg.BusID, &msg.RevokeReq{App: 5, VA: 0x10000, Bytes: 2 * physmem.PageSize, Target: 3})
	h.eng.Run()
	rr, ok := nic.lastMsg().(*msg.RevokeResp)
	if !ok || !rr.OK {
		t.Fatalf("revoke response = %+v", nic.lastMsg())
	}
	if _, _, ok := ssd.mmu.Lookup(5, 0x10000); ok {
		t.Error("revoked mapping survives")
	}
	// Owner's own mapping must survive revoke.
	if _, _, ok := nic.mmu.Lookup(5, 0x10000); !ok {
		t.Error("owner mapping removed by revoke")
	}
	// Second revoke: no such grant.
	nic.port.Send(msg.BusID, &msg.RevokeReq{App: 5, VA: 0x10000, Bytes: 2 * physmem.PageSize, Target: 3})
	h.eng.Run()
	if rr := nic.lastMsg().(*msg.RevokeResp); rr.OK {
		t.Error("double revoke succeeded")
	}
}

func TestFreeUnmapsOwnerAndGrantees(t *testing.T) {
	h := newHarness(t, DefaultConfig)
	mc := h.addDev(1, "memctrl", msg.RoleMemoryController)
	nic := h.addDev(2, "nic", msg.RoleNIC)
	ssd := h.addDev(3, "ssd", msg.RoleStorage)
	h.boot()
	frames := h.allocRoundTrip(mc, nic, 5, 0x10000, 2)
	scriptedMemctrl(mc, true, frames)
	nic.port.Send(msg.BusID, &msg.GrantReq{App: 5, VA: 0x10000, Bytes: 2 * physmem.PageSize, Target: 3, Perm: uint8(iommu.PermRW)})
	h.eng.Run()
	// Controller confirms the free; bus must unmap everywhere.
	mc.port.Send(2, &msg.FreeResp{App: 5, OK: true, VA: 0x10000, Bytes: 2 * physmem.PageSize})
	h.eng.Run()
	if _, _, ok := nic.mmu.Lookup(5, 0x10000); ok {
		t.Error("owner mapping survives free")
	}
	if _, _, ok := ssd.mmu.Lookup(5, 0x10000); ok {
		t.Error("grantee mapping survives free")
	}
	if _, ok := h.bus.OwnerOf(5, 0x10000); ok {
		t.Error("ownership record survives free")
	}
}

func TestWatchdogFailsSilentDevice(t *testing.T) {
	cfg := DefaultConfig
	cfg.WatchdogTimeout = 100 * sim.Microsecond
	h := newHarness(t, cfg)
	a := h.addDev(1, "a", msg.RoleAccelerator)
	b := h.addDev(2, "b", msg.RoleAccelerator)
	// Bounded runs: the watchdog reschedules itself forever, so Run()
	// would never drain.
	a.port.Send(msg.BusID, &msg.Hello{Name: "a"})
	b.port.Send(msg.BusID, &msg.Hello{Name: "b"})
	h.eng.RunFor(10 * sim.Microsecond)
	// a heartbeats periodically; b goes silent.
	var beat func()
	beat = func() {
		a.port.Send(msg.BusID, &msg.Heartbeat{})
		h.eng.After(50*sim.Microsecond, beat)
	}
	beat()
	h.eng.RunUntil(sim.Time(400 * sim.Microsecond))
	if !h.bus.Alive(1) {
		t.Error("heartbeating device was failed")
	}
	if h.bus.Alive(2) {
		t.Error("silent device still alive")
	}
	// a must have been told about b's death.
	if a.countKind(msg.KindDeviceFailed) == 0 {
		t.Error("no DeviceFailed broadcast")
	}
	// b must have received a Reset even though dead.
	if b.countKind(msg.KindReset) == 0 {
		t.Error("no Reset sent to failed device")
	}
}

func TestResetDoneRevives(t *testing.T) {
	h := newHarness(t, DefaultConfig)
	a := h.addDev(1, "a", msg.RoleAccelerator)
	b := h.addDev(2, "b", msg.RoleAccelerator)
	h.boot()
	_ = h.bus.FailDevice(2, "test")
	h.eng.Run()
	if h.bus.Alive(2) {
		t.Fatal("still alive after fail")
	}
	b.port.Send(msg.BusID, &msg.ResetDone{})
	h.eng.Run()
	if !h.bus.Alive(2) {
		t.Fatal("ResetDone did not revive")
	}
	// And traffic flows again.
	a.port.Send(2, &msg.Heartbeat{Seq: 1})
	h.eng.Run()
	if b.countKind(msg.KindHeartbeat) != 1 {
		t.Error("revived device not receiving")
	}
}

func TestFailDeviceErrors(t *testing.T) {
	h := newHarness(t, DefaultConfig)
	h.addDev(1, "a", msg.RoleAccelerator)
	h.boot()
	if err := h.bus.FailDevice(99, "x"); err == nil {
		t.Error("unknown device failed")
	}
	if err := h.bus.FailDevice(1, "x"); err != nil {
		t.Error(err)
	}
	if err := h.bus.FailDevice(1, "x"); err == nil {
		t.Error("double fail accepted")
	}
}

func TestPendingGrantFailedWhenPartyDies(t *testing.T) {
	h := newHarness(t, DefaultConfig)
	mc := h.addDev(1, "memctrl", msg.RoleMemoryController)
	nic := h.addDev(2, "nic", msg.RoleNIC)
	h.addDev(3, "ssd", msg.RoleStorage)
	h.boot()
	frames := h.allocRoundTrip(mc, nic, 5, 0x10000, 1)
	_ = frames
	// The controller never answers the AuthReq (it will be killed).
	mc.onMsg = func(env msg.Envelope) {}
	nic.port.Send(msg.BusID, &msg.GrantReq{App: 5, VA: 0x10000, Bytes: physmem.PageSize, Target: 3})
	h.eng.Run()
	if len(nic.grants()) != 0 {
		t.Fatal("grant answered without authorization")
	}
	// Kill the target: the pending grant must fail back to the requester.
	_ = h.bus.FailDevice(3, "test")
	h.eng.Run()
	gs := nic.grants()
	if len(gs) != 1 || gs[0].OK {
		t.Fatalf("pending grant not failed: %+v", gs)
	}
	if !strings.Contains(gs[0].Reason, "failed during grant") {
		t.Errorf("reason = %q", gs[0].Reason)
	}
}

func (d *testDev) grants() []*msg.GrantResp {
	var out []*msg.GrantResp
	for _, e := range d.inbox {
		if g, ok := e.Msg.(*msg.GrantResp); ok {
			out = append(out, g)
		}
	}
	return out
}

func TestMessageTimingChargesBus(t *testing.T) {
	cfg := Config{HopLatency: 1000, BytesPerNs: 1, ProcPerMsg: 100}
	h := newHarness(t, cfg)
	a := h.addDev(1, "a", msg.RoleAccelerator)
	b := h.addDev(2, "b", msg.RoleAccelerator)
	a.port.Send(msg.BusID, &msg.Hello{Name: "a"})
	b.port.Send(msg.BusID, &msg.Hello{Name: "b"})
	h.eng.Run()
	start := h.eng.Now()
	var deliveredAt sim.Time
	b.onMsg = func(env msg.Envelope) {
		if env.Msg.Kind() == msg.KindHeartbeat {
			deliveredAt = h.eng.Now()
		}
	}
	a.port.Send(2, &msg.Heartbeat{})
	h.eng.Run()
	size := sim.Duration(msg.EncodedSize(&msg.Heartbeat{}))
	want := start.Add(2*(1000+size) + 100)
	if deliveredAt != want {
		t.Errorf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestTraceRecordsSequence(t *testing.T) {
	h := newHarness(t, DefaultConfig)
	a := h.addDev(1, "nic", msg.RoleNIC)
	h.addDev(2, "ssd", msg.RoleStorage)
	h.boot()
	a.port.Send(msg.Broadcast, &msg.DiscoverReq{Query: "file:kv.dat"})
	h.eng.Run()
	found := false
	for _, e := range h.tr.Events() {
		if e.Kind == "discover.req" && e.Src == "nic" && e.Detail == "file:kv.dat" {
			found = true
		}
	}
	if !found {
		t.Errorf("discovery not traced:\n%s", h.tr.String())
	}
}
