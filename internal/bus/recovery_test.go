package bus

import (
	"fmt"
	"strings"
	"testing"

	"nocpu/internal/msg"
	"nocpu/internal/physmem"
)

// TestRejoinFencesOldIncarnation exercises the crash-restart-rejoin
// protocol end to end: a failed device bumps its incarnation, re-enrolls
// with Hello, and every envelope still stamped with its previous life's
// incarnation is fenced (counted as DeadSenderDropped, never delivered,
// never confused with wire loss).
func TestRejoinFencesOldIncarnation(t *testing.T) {
	h := newHarness(t, DefaultConfig)
	a := h.addDev(1, "a", msg.RoleAccelerator)
	b := h.addDev(2, "b", msg.RoleAccelerator)
	h.boot()

	if err := h.bus.FailDevice(2, "chaos"); err != nil {
		t.Fatal(err)
	}
	h.eng.Run()

	// The device reboots into its next life and re-enrolls.
	if inc := b.port.NewIncarnation(); inc != 1 {
		t.Fatalf("incarnation after first crash = %d, want 1", inc)
	}
	b.port.Send(msg.BusID, &msg.Hello{Name: "b", Incarnation: 1})
	h.eng.Run()
	if !h.bus.Alive(2) {
		t.Fatal("device not alive after rejoin Hello")
	}
	if got := h.bus.Stats().Rejoins; got != 1 {
		t.Fatalf("Rejoins = %d, want 1", got)
	}
	rejoined := false
	for _, e := range h.tr.Events() {
		if e.Kind == "device.rejoined" && e.Dst == "b" {
			rejoined = true
			if !strings.Contains(e.Detail, "inc=1") {
				t.Errorf("rejoin trace missing incarnation: %q", e.Detail)
			}
		}
	}
	if !rejoined {
		t.Error("no device.rejoined trace event")
	}

	// A pre-crash message arrives late (it was in flight when the device
	// died). It carries the old incarnation and must be fenced — the dead
	// life may describe state that no longer exists.
	fencedBefore := h.bus.Stats().DeadSenderDropped
	heartbeats := a.countKind(msg.KindHeartbeat)
	h.bus.process(msg.Envelope{Src: 2, Dst: 1, Seq: 99, Inc: 0, Msg: &msg.Heartbeat{Seq: 41}})
	h.eng.Run()
	if got := h.bus.Stats().DeadSenderDropped; got != fencedBefore+1 {
		t.Errorf("DeadSenderDropped = %d, want %d", got, fencedBefore+1)
	}
	if h.bus.Stats().Dropped != 0 {
		t.Error("fenced message leaked into the wire-loss counter")
	}
	if a.countKind(msg.KindHeartbeat) != heartbeats {
		t.Error("old-incarnation message was delivered")
	}

	// The new life's traffic flows normally (dedup window restarted, so
	// low sequence numbers are not swallowed as duplicates).
	b.port.Send(1, &msg.Heartbeat{Seq: 42})
	h.eng.Run()
	if a.countKind(msg.KindHeartbeat) != heartbeats+1 {
		t.Error("new-incarnation message not delivered")
	}
	if got, ok := a.lastMsg().(*msg.Heartbeat); !ok || got.Seq != 42 {
		t.Errorf("a received %+v", a.lastMsg())
	}
}

// grantHarness strands pending grants: the memory controller swallows
// AuthReqs so the bus's pendingGrants table fills up, then the test kills
// a party and inspects the denial stream.
//
// Layout: memctrl(1), nic(2, the requester), ssd(3) and accel(4) as grant
// targets. Three grants are stranded in issue order (nonces 1, 2, 3):
//
//	nonce 1: VA 0x10000 -> ssd
//	nonce 2: VA 0x11000 -> accel
//	nonce 3: VA 0x12000 -> ssd
func newGrantHarness(t *testing.T) (*harness, *testDev, *testDev, *testDev, *testDev) {
	h := newHarness(t, DefaultConfig)
	mc := h.addDev(1, "memctrl", msg.RoleMemoryController)
	nic := h.addDev(2, "nic", msg.RoleNIC)
	ssd := h.addDev(3, "ssd", msg.RoleStorage)
	acc := h.addDev(4, "accel", msg.RoleAccelerator)
	h.boot()
	for _, va := range []uint64{0x10000, 0x11000, 0x12000} {
		h.allocRoundTrip(mc, nic, 5, va, 1)
	}
	mc.onMsg = func(env msg.Envelope) {} // never authorize: grants stay pending
	for i, g := range []struct {
		va     uint64
		target msg.DeviceID
	}{{0x10000, 3}, {0x11000, 4}, {0x12000, 3}} {
		nic.port.Send(msg.BusID, &msg.GrantReq{App: 5, VA: g.va, Bytes: physmem.PageSize, Target: g.target})
		h.eng.Run()
		if want := i + 1; len(h.bus.pendingGrants) != want {
			t.Fatalf("pending grants = %d, want %d", len(h.bus.pendingGrants), want)
		}
	}
	if len(nic.grants()) != 0 {
		t.Fatal("grant answered without authorization")
	}
	return h, mc, nic, ssd, acc
}

// denialTrace renders a device's denial stream as golden-trace lines in
// delivery order.
func denialTrace(d *testDev) []string {
	var out []string
	for _, g := range d.grants() {
		if g.OK {
			continue
		}
		out = append(out, fmt.Sprintf("va=%#x target=%d reason=%q", g.VA, g.Target, g.Reason))
	}
	return out
}

func assertTrace(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("denials:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("denial[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

// TestFailDeviceDeniesPendingGrants asserts the failDevice drain: every
// grant waiting on the dead party fails back to the requester as
// GrantResp{OK: false}, delivered in ascending nonce order (golden
// trace), and unrelated grants stay pending.
func TestFailDeviceDeniesPendingGrants(t *testing.T) {
	t.Run("target dies", func(t *testing.T) {
		h, _, nic, _, _ := newGrantHarness(t)
		if err := h.bus.FailDevice(3, "chaos"); err != nil {
			t.Fatal(err)
		}
		h.eng.Run()
		// Nonces 1 and 3 target the ssd; nonce 2 targets the accel and
		// survives the failure.
		assertTrace(t, denialTrace(nic), []string{
			`va=0x10000 target=3 reason="device failed during grant: ssd"`,
			`va=0x12000 target=3 reason="device failed during grant: ssd"`,
		})
		if len(h.bus.pendingGrants) != 1 {
			t.Errorf("pending grants = %d, want 1 (accel grant untouched)", len(h.bus.pendingGrants))
		}
		if got := h.bus.Stats().GrantsDenied; got != 2 {
			t.Errorf("GrantsDenied = %d, want 2", got)
		}
	})

	t.Run("memctrl dies", func(t *testing.T) {
		h, _, nic, _, _ := newGrantHarness(t)
		if err := h.bus.FailDevice(1, "chaos"); err != nil {
			t.Fatal(err)
		}
		h.eng.Run()
		// The authorizer died: every pending grant drains, nonce order.
		assertTrace(t, denialTrace(nic), []string{
			`va=0x10000 target=3 reason="device failed during grant: memctrl"`,
			`va=0x11000 target=4 reason="device failed during grant: memctrl"`,
			`va=0x12000 target=3 reason="device failed during grant: memctrl"`,
		})
		if len(h.bus.pendingGrants) != 0 {
			t.Errorf("pending grants = %d, want 0", len(h.bus.pendingGrants))
		}
	})

	t.Run("requester dies", func(t *testing.T) {
		h, _, nic, _, acc := newGrantHarness(t)
		denied := h.bus.Stats().GrantsDenied
		if err := h.bus.FailDevice(2, "chaos"); err != nil {
			t.Fatal(err)
		}
		h.eng.Run()
		// The requester is gone: its grants drain without responses (no
		// one to deliver them to) and the denial counter stays put.
		if len(h.bus.pendingGrants) != 0 {
			t.Errorf("pending grants = %d, want 0", len(h.bus.pendingGrants))
		}
		if got := h.bus.Stats().GrantsDenied; got != denied {
			t.Errorf("GrantsDenied = %d, want %d (dead requester gets no reply)", got, denied)
		}
		for _, d := range []*testDev{nic, acc} {
			if n := len(denialTrace(d)); n != 0 {
				t.Errorf("%s received %d denials for a dead requester", d.name, n)
			}
		}
	})

	t.Run("double failure", func(t *testing.T) {
		h, _, nic, _, _ := newGrantHarness(t)
		// First the ssd target dies (drains nonces 1 and 3), then the
		// memory controller (drains nonce 2). The second drain must not
		// re-deny grants the first already settled.
		if err := h.bus.FailDevice(3, "chaos"); err != nil {
			t.Fatal(err)
		}
		h.eng.Run()
		if err := h.bus.FailDevice(1, "chaos"); err != nil {
			t.Fatal(err)
		}
		h.eng.Run()
		assertTrace(t, denialTrace(nic), []string{
			`va=0x10000 target=3 reason="device failed during grant: ssd"`,
			`va=0x12000 target=3 reason="device failed during grant: ssd"`,
			`va=0x11000 target=4 reason="device failed during grant: memctrl"`,
		})
		if len(h.bus.pendingGrants) != 0 {
			t.Errorf("pending grants = %d, want 0", len(h.bus.pendingGrants))
		}
		if got := h.bus.Stats().GrantsDenied; got != 3 {
			t.Errorf("GrantsDenied = %d, want 3", got)
		}
	})
}
