// Package bus implements the system-management bus of "The Last CPU" —
// the specialized control plane that replaces the CPU-resident OS kernel
// (§2.2).
//
// The bus is a privileged message switch. It carries no data and holds no
// policy: it forwards unicast messages, fans out broadcasts (discovery,
// failure notices), records device liveness, and performs the one
// privileged mechanism of the design — programming device IOMMUs — and
// only when instructed by the resource's controller:
//
//   - When it forwards a successful AllocResp from the memory controller
//     to the requesting device, it programs that device's IOMMU with the
//     granted mappings (§3 step 6).
//   - When a device asks to share one of its app's regions with another
//     device (GrantReq), the bus first asks the memory controller for
//     authorization (AuthReq/AuthResp) and only then programs the target
//     IOMMU (§3: "must be first authorized by the memory controller").
//
// Devices never receive references to each other's IOMMUs; the bus holds
// the only handles, which is the paper's security argument made literal.
package bus

import (
	"fmt"
	"sort"

	"nocpu/internal/faultinject"
	"nocpu/internal/iommu"
	"nocpu/internal/metrics"
	"nocpu/internal/msg"
	"nocpu/internal/physmem"
	"nocpu/internal/sim"
	"nocpu/internal/tenant"
	"nocpu/internal/trace"
)

// Config is the bus timing and watchdog model. Per §2.3 the management
// bus "need not" be high-throughput; defaults are deliberately modest and
// experiment E10 sweeps them.
type Config struct {
	// HopLatency is the one-way latency of a message between a device and
	// the bus (and bus to device).
	HopLatency sim.Duration
	// BytesPerNs is bus bandwidth; control messages are small so this
	// rarely matters (0.5 = 500 MB/s).
	BytesPerNs float64
	// ProcPerMsg is the bus's processing cost per message (it must
	// "process messages, so it can update the management tables").
	ProcPerMsg sim.Duration
	// MapPerPage is the cost of programming one IOMMU page-table entry.
	MapPerPage sim.Duration
	// WatchdogTimeout marks a device failed when no heartbeat arrives
	// within it. 0 disables the watchdog.
	WatchdogTimeout sim.Duration
	// CreditWindow enables credit-based flow control when > 0: each
	// attached port may have at most CreditWindow envelopes absorbed by
	// the bus but not yet re-credited; further Sends stall in a bounded
	// port-local FIFO until the bus returns credit (CreditUpdate). 0
	// disables flow control — infinite credits, the pre-overload
	// behavior, byte-identical traces.
	CreditWindow int
	// IngressBound bounds the bus's processing backlog when > 0: an
	// arriving envelope that would push the backlog past the bound is
	// refused with a NackOverload back to its sender instead of queueing
	// without limit. 0 means unbounded.
	IngressBound int
}

// DefaultConfig models a microcontroller-class bus: 1 µs hops, 500 MB/s,
// 500 ns per message of table-update work.
var DefaultConfig = Config{
	HopLatency:      1 * sim.Microsecond,
	BytesPerNs:      0.5,
	ProcPerMsg:      500 * sim.Nanosecond,
	MapPerPage:      150 * sim.Nanosecond,
	WatchdogTimeout: 0,
}

// Stats counts bus activity for the experiments.
type Stats struct {
	Messages   uint64
	Deliveries uint64
	Broadcasts uint64
	// Dropped counts messages lost with no one to tell: unknown senders
	// and deliveries that died in flight. Traffic refused because its
	// sender is marked failed (or is a stale incarnation) is counted in
	// DeadSenderDropped instead, so the experiments can tell wire loss
	// from lifecycle fencing.
	Dropped uint64
	// DeadSenderDropped counts envelopes fenced because the bus considers
	// the sender dead or because they were stamped by a previous
	// incarnation of a since-revived device.
	DeadSenderDropped uint64
	// Nacks counts refusals reported back to the sender (previously these
	// were silent drops; Dropped now covers only cases with no one to
	// tell — unknown or dead senders, or in-flight loss).
	Nacks uint64
	// DupSuppressed counts envelopes discarded by the link-layer
	// duplicate filter (only a faulty fabric produces these).
	DupSuppressed uint64
	PagesMapped   uint64
	PagesUnmapped uint64
	GrantsOK      uint64
	GrantsDenied  uint64
	DevicesFailed uint64
	Resets        uint64
	// Rejoins counts devices that re-enrolled (Hello or ResetDone) after
	// having been marked failed.
	Rejoins uint64
	// CreditUpdates counts window replenishments the bus issued.
	CreditUpdates uint64
	// CreditStalls counts sends that waited in a port's stall queue for
	// credit instead of going straight to the wire.
	CreditStalls uint64
	// StallDropped counts sends discarded because a port's bounded stall
	// queue overflowed (the sender's timeout recovers them).
	StallDropped uint64
	// IngressShed counts envelopes refused at the ingress bound with a
	// NackOverload.
	IngressShed uint64
	// StaleCreditDropped counts CreditUpdates a port refused because they
	// were fenced to a previous incarnation (a replayed replenishment
	// must not inflate the new life's window).
	StaleCreditDropped uint64
	// TenantDenied counts cross-tenant accesses the bus refused (grants,
	// mappings, scoped discovery, stale replays, budget exhaustion) —
	// each with a typed, attributed denial in the tenancy registry.
	TenantDenied uint64
}

// Handler receives messages delivered to a device.
type Handler func(env msg.Envelope)

type attachment struct {
	id      msg.DeviceID
	name    string
	role    msg.Role
	handler Handler
	mmu     *iommu.IOMMU
	alive   bool
	lastHB  sim.Time
	// inc is the highest incarnation stamp seen from this device; lower
	// stamps are fenced as messages from a dead previous life.
	inc uint32
	// failed/failedAt record that (and when) failDevice last marked the
	// device dead, for rejoin accounting and outage measurement.
	failed   bool
	failedAt sim.Time
	// creditsUsed counts envelopes absorbed from this device since the
	// last CreditUpdate; at half a window the bus returns the credit.
	creditsUsed int
	// mmuEngine models the device-side IOMMU command interface: table
	// programming serializes per device but runs in parallel across
	// devices (the bus only dispatches commands).
	mmuEngine *sim.Server
}

// ownerKey identifies an app region for grant auditing.
type ownerKey struct {
	app msg.AppID
	va  uint64
}

// grantRec is one recorded grant (possibly a sub-range of an owned
// region).
type grantRec struct {
	target msg.DeviceID
	pages  int // 4 KiB units
	huge   bool
	runs   int // huge runs when huge
}

// Bus is the system-management bus.
type Bus struct {
	eng  *sim.Engine
	cfg  Config
	tr   *trace.Tracer
	proc *sim.Server
	// egress serializes outgoing deliveries on the shared medium: a
	// broadcast to N devices occupies the bus for N transmission times.
	egress  *sim.Server
	devices map[msg.DeviceID]*attachment
	memctrl msg.DeviceID

	// owners records, from intercepted AllocResps, which device owns each
	// allocated app region (app+base VA -> owning device and page count).
	owners map[ownerKey]ownerInfo
	// grants records which targets were granted each (possibly sub-)
	// region, for revoke and free cleanup.
	grants map[ownerKey][]grantRec
	// pendingGrants correlates AuthReq nonces with the originating
	// GrantReq.
	pendingGrants map[uint32]pendingGrant
	nextNonce     uint32

	// plane is the optional fault injector; nil means pass-through.
	plane *faultinject.Plane
	// dedup filters fabric-injected duplicate envelopes by seq tag.
	dedup msg.DedupWindow
	// busSeq tags bus-originated messages.
	busSeq uint32

	// ingressG tracks the processing backlog against IngressBound for
	// the overload audit's Q1 invariant.
	ingressG *metrics.Gauge

	// tenancy, when set, is the multi-tenant isolation registry: the bus
	// scopes broadcasts to isolation domains, refuses cross-tenant
	// grants and mappings, applies per-tenant credit windows, and
	// records every refusal as a typed, attributed denial. nil (the
	// default) disables all of it — byte-identical legacy behavior.
	tenancy *tenant.Registry

	stats Stats
}

type ownerInfo struct {
	dev   msg.DeviceID
	pages int // 4 KiB units (huge regions store runs*512)
	huge  bool
	// frameSum fingerprints the backing frames so a replayed AllocResp
	// (identical frames: idempotent success) is distinguishable from a
	// conflicting double-alloc (different frames: error).
	frameSum uint64
}

// frameFingerprint hashes a frame list (FNV-1a over the values).
func frameFingerprint(frames []uint64, huge bool) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= 1099511628211
			v >>= 8
		}
	}
	for _, f := range frames {
		mix(f)
	}
	if huge {
		mix(1)
	}
	return h
}

type pendingGrant struct {
	req msg.GrantReq
	src msg.DeviceID
}

// New creates a bus on the engine. tr may be nil.
func New(eng *sim.Engine, cfg Config, tr *trace.Tracer) *Bus {
	if cfg.BytesPerNs <= 0 {
		cfg.BytesPerNs = DefaultConfig.BytesPerNs
	}
	b := &Bus{
		eng:           eng,
		cfg:           cfg,
		tr:            tr,
		proc:          sim.NewServer(eng),
		egress:        sim.NewServer(eng),
		devices:       make(map[msg.DeviceID]*attachment),
		owners:        make(map[ownerKey]ownerInfo),
		grants:        make(map[ownerKey][]grantRec),
		pendingGrants: make(map[uint32]pendingGrant),
	}
	b.ingressG = metrics.NewGauge(cfg.IngressBound)
	if cfg.WatchdogTimeout > 0 {
		b.scheduleWatchdog()
	}
	return b
}

// Stats returns a copy of the counters.
func (b *Bus) Stats() Stats { return b.stats }

// SetFaultPlane installs (or, with nil, removes) the fault injector.
// Every message crossing the bus is judged exactly once: on the
// device→bus hop for device traffic, on the bus→device hop for
// bus-originated traffic.
func (b *Bus) SetFaultPlane(p *faultinject.Plane) { b.plane = p }

// SetTenancy installs (or, with nil, removes) the multi-tenant
// isolation registry. Call before devices attach so per-tenant credit
// windows take effect from the first send.
func (b *Bus) SetTenancy(reg *tenant.Registry) { b.tenancy = reg }

// windowFor is the effective credit window of one device: the tenant's
// declared budget when it has one, the global Config.CreditWindow
// otherwise. A tenant budget can turn flow control on for its devices
// even when the global window is 0.
func (b *Bus) windowFor(id msg.DeviceID) int {
	w := b.cfg.CreditWindow
	if b.tenancy != nil {
		if t := b.tenancy.DeviceTenant(id); t != 0 {
			if bw := b.tenancy.Budget(t).CreditWindow; bw != 0 {
				w = int(bw)
			}
		}
	}
	return w
}

// tenantOf is the isolation domain of a device (0 when tenancy is off
// or the device is unbound).
func (b *Bus) tenantOf(id msg.DeviceID) tenant.ID {
	if b.tenancy == nil {
		return 0
	}
	return b.tenancy.DeviceTenant(id)
}

// recordDenial books one refused cross-tenant access in the registry,
// attributed to the offending tenant (no-op with tenancy off).
func (b *Bus) recordDenial(attacker, victim tenant.ID, class tenant.Class, detail string) {
	if b.tenancy == nil {
		return
	}
	b.stats.TenantDenied++
	b.tenancy.Record(b.eng.Now(), attacker, victim, class, detail)
}

// reportDenial records a refusal and additionally tells the offender
// with a typed DenialReport wire message — the S1 invariant's "never
// silently dropped" clause: the attacker provably observed a refusal.
func (b *Bus) reportDenial(offender *attachment, victim tenant.ID, class tenant.Class, of msg.Kind, detail string) {
	at := b.tenantOf(offender.id)
	b.recordDenial(at, victim, class, detail)
	b.sendFromBus(offender, &msg.DenialReport{
		Tenant: uint16(at), Victim: uint16(victim),
		Class: uint8(class), Of: uint16(of), Detail: detail,
	})
}

// Port is a device's attachment point to the bus.
type Port struct {
	bus     *Bus
	id      msg.DeviceID
	nextSeq uint32
	inc     uint32
	// credits is the remaining send allowance when flow control is on
	// (Config.CreditWindow > 0); the bus returns spent credit with
	// CreditUpdate messages.
	credits int
	// stalled holds sends awaiting credit, FIFO, bounded at 4× the
	// window; overflow drops deterministically (timeouts recover).
	stalled []func()
	stallG  *metrics.Gauge
}

// ID returns the attached device's bus address.
func (p *Port) ID() msg.DeviceID { return p.id }

// Incarnation returns the port's current incarnation (0 until the first
// crash recovery).
func (p *Port) Incarnation() uint32 { return p.inc }

// NewIncarnation begins the device's next life after a crash: outgoing
// envelopes are stamped with the bumped incarnation and the link-layer
// sequence counter restarts (the bus forgets the old dedup window when
// it adopts the new incarnation). Pure port state — no bus traffic.
func (p *Port) NewIncarnation() uint32 {
	p.inc++
	p.nextSeq = 0
	// The old life's stalled sends died with it; the new life starts
	// with a full window (the bus resets its side on rejoin).
	p.stalled = nil
	p.stallG.Set(0)
	p.credits = p.window()
	return p.inc
}

// window is the port's effective credit window (per-tenant budget when
// tenancy declares one, the global config otherwise).
func (p *Port) window() int { return p.bus.windowFor(p.id) }

// Attach connects a device to the bus. The IOMMU handle is how the bus —
// and only the bus — programs the device's translations. A device with
// RoleMemoryController becomes the authorizer for memory operations; at
// most one may attach.
func (b *Bus) Attach(id msg.DeviceID, name string, role msg.Role, mmu *iommu.IOMMU, h Handler) (*Port, error) {
	if id == 0 || id == msg.Broadcast || id == msg.BusID {
		return nil, fmt.Errorf("bus: reserved device id %v", id)
	}
	if _, dup := b.devices[id]; dup {
		return nil, fmt.Errorf("bus: device id %v already attached", id)
	}
	if role == msg.RoleMemoryController {
		if b.memctrl != 0 {
			return nil, fmt.Errorf("bus: second memory controller %v (have %v)", id, b.memctrl)
		}
		b.memctrl = id
	}
	b.devices[id] = &attachment{id: id, name: name, role: role, handler: h, mmu: mmu, mmuEngine: sim.NewServer(b.eng)}
	p := &Port{bus: b, id: id, credits: b.windowFor(id)}
	p.stallG = metrics.NewGauge(p.stallBound())
	return p, nil
}

// nameOf returns a device's name for tracing.
func (b *Bus) nameOf(id msg.DeviceID) string {
	switch id {
	case msg.Broadcast:
		return "broadcast"
	case msg.BusID:
		return "bus"
	}
	if a, ok := b.devices[id]; ok {
		return a.name
	}
	return id.String()
}

// Send submits a message from the port's device. Transport: one hop to
// the bus, FIFO bus processing, then (for unicast/broadcast) one hop to
// each destination. Encoded size determines serialization time. The
// returned value is the envelope's link-layer seq tag, which a NACK for
// this message will echo.
func (p *Port) Send(dst msg.DeviceID, m msg.Message) uint32 {
	b := p.bus
	p.nextSeq++
	env := msg.Envelope{Src: p.id, Dst: dst, Seq: p.nextSeq, Inc: p.inc, Msg: m}
	if p.window() > 0 {
		if p.credits == 0 {
			// Out of credits: stall instead of flooding the wire. The
			// stall queue is itself bounded; past the bound the send is
			// dropped here, deterministically, and the sender's timeout
			// recovers — exactly as for a wire loss.
			if len(p.stalled) >= p.stallBound() {
				b.stats.StallDropped++
				b.recordDenial(b.tenantOf(p.id), 0, tenant.DenyBudget,
					fmt.Sprintf("%s stall queue overflow, %v dropped", b.nameOf(p.id), m.Kind()))
				return env.Seq
			}
			b.stats.CreditStalls++
			p.stalled = append(p.stalled, func() { p.transmit(env) })
			p.stallG.Set(len(p.stalled))
			return env.Seq
		}
		p.credits--
	}
	p.transmit(env)
	return env.Seq
}

// transmit puts a stamped envelope on the device→bus wire.
func (p *Port) transmit(env msg.Envelope) {
	b := p.bus
	size := msg.EncodedSize(env.Msg)
	wire := b.cfg.HopLatency + sim.Duration(float64(size)/b.cfg.BytesPerNs)
	d := b.plane.Filter(faultinject.LayerBus, b.eng.Now(), env.Src, env.Dst, env.Msg.Kind())
	if d.Op == faultinject.Drop {
		return // lost on the wire; the sender's timeout recovers
	}
	if d.Op == faultinject.Delay || d.Op == faultinject.Reorder {
		wire += d.Delay
	}
	submit := func() {
		b.eng.After(wire, func() {
			if bound := b.cfg.IngressBound; bound > 0 && b.proc.Pending() >= bound {
				b.shedIngress(env)
				return
			}
			b.proc.Submit(b.cfg.ProcPerMsg, func() { b.process(env) })
			b.ingressG.Set(b.proc.Pending())
		})
	}
	submit()
	if d.Op == faultinject.Dup {
		submit() // identical envelope, same seq: the dedup window eats it
	}
}

// stallBound is the port stall queue's capacity: four windows' worth of
// backlog, enough to ride out a replenishment round trip at full rate.
func (p *Port) stallBound() int { return 4 * p.window() }

// AddCredits returns n spent credits to the port (the payload of a bus
// CreditUpdate), saturating at the configured window, then drains
// stalled sends in FIFO order — each drained send spends one of the
// fresh credits. forInc is the incarnation the bus fenced the credit
// to: a mismatch means the update was issued for (or replayed from) a
// different life of this port and is refused with a typed drop —
// trusting the sender identity alone would let a captured replenishment
// inflate the window after a crash recovery.
func (p *Port) AddCredits(n, forInc uint32) {
	w := p.window()
	if w <= 0 {
		return
	}
	if forInc != p.inc {
		b := p.bus
		b.stats.StaleCreditDropped++
		b.tr.Record(b.eng.Now(), b.nameOf(p.id), "bus", "credit.stale-dropped",
			fmt.Sprintf("for inc %d, port inc %d", forInc, p.inc))
		b.recordDenial(b.tenantOf(p.id), 0, tenant.DenyStaleCredit,
			fmt.Sprintf("%s replayed credit for incarnation %d, port at %d", b.nameOf(p.id), forInc, p.inc))
		return
	}
	p.credits += int(n)
	if p.credits > w {
		p.credits = w
	}
	for p.credits > 0 && len(p.stalled) > 0 {
		tx := p.stalled[0]
		p.stalled[0] = nil
		p.stalled = p.stalled[1:]
		p.credits--
		tx()
	}
	if len(p.stalled) == 0 {
		p.stalled = nil
	}
	p.stallG.Set(len(p.stalled))
}

// Credits returns the port's current send allowance (testing).
func (p *Port) Credits() int { return p.credits }

// StallGauge exposes the stall-queue depth gauge for the overload audit.
func (p *Port) StallGauge() *metrics.Gauge { return p.stallG }

// shedIngress refuses an envelope at the bus's bounded ingress: the
// sender gets a typed overload NACK (and its flow-control credit back)
// rather than unbounded queueing.
func (b *Bus) shedIngress(env msg.Envelope) {
	b.stats.IngressShed++
	src, ok := b.devices[env.Src]
	if !ok || !src.alive {
		b.stats.Dropped++ // no one to tell
		return
	}
	b.replenish(src)
	b.nack(src, env, msg.NackOverload, "bus ingress queue full")
}

// replenish accounts one absorbed envelope against the sender's credit
// window and returns the spent credit once half a window accumulates.
// The update is fenced to the sender's current incarnation so a
// captured replenishment replayed after a crash recovery is refused by
// the port (ForInc 0 — the never-crashed common case — encodes to the
// legacy wire form).
func (b *Bus) replenish(src *attachment) {
	w := b.windowFor(src.id)
	if w <= 0 {
		return
	}
	src.creditsUsed++
	if src.creditsUsed >= (w+1)/2 {
		n := src.creditsUsed
		src.creditsUsed = 0
		b.stats.CreditUpdates++
		b.sendFromBus(src, &msg.CreditUpdate{Window: uint32(w), Credits: uint32(n), ForInc: src.inc})
	}
}

// IngressGauge exposes the processing-backlog gauge for the overload
// audit.
func (b *Bus) IngressGauge() *metrics.Gauge { return b.ingressG }

// process runs on the bus after the message has been received and the
// processing cost paid.
func (b *Bus) process(env msg.Envelope) {
	b.stats.Messages++
	b.tr.Record(b.eng.Now(), b.nameOf(env.Src), b.nameOf(env.Dst), env.Msg.Kind().String(), summarize(env.Msg))

	src, ok := b.devices[env.Src]
	if !ok {
		// No attachment to address a NACK to: silent drop.
		b.stats.Dropped++
		return
	}

	// Incarnation fencing. A device revived after a crash stamps its
	// envelopes with a bumped incarnation: adopt it on first sight (and
	// forget the dedup window — the new life's sequence counter restarts
	// at 1, which the old window would swallow as stale duplicates).
	// Anything still stamped with an older incarnation was sent by the
	// pre-crash life and may describe state that died with it: fence it.
	if env.Inc > src.inc {
		src.inc = env.Inc
		b.dedup.Forget(env.Src)
	} else if env.Inc < src.inc {
		b.stats.DeadSenderDropped++
		b.recordDenial(b.tenantOf(src.id), 0, tenant.DenyStaleReplay,
			fmt.Sprintf("%s replayed %v stamped by incarnation %d, current %d",
				src.name, env.Msg.Kind(), env.Inc, src.inc))
		return
	}

	// The envelope is absorbed (even if deduplicated below): its
	// flow-control credit flows back to the sender. Fabric-injected
	// duplicates can over-credit by one and wire losses under-credit —
	// the window saturation bounds the former, sender timeouts ride out
	// the latter; the overload experiments run without fault injection.
	// Crediting happens after incarnation adoption so the replenishment
	// is fenced to the life that actually sent the envelope.
	b.replenish(src)

	if b.dedup.Duplicate(env.Src, env.Seq) {
		b.stats.DupSuppressed++
		return
	}

	// Lifecycle messages addressed to the bus.
	if env.Dst == msg.BusID {
		b.handleBusMessage(src, env)
		return
	}

	// A dead device's messages are dropped (it should not be talking),
	// except Hello/ResetDone which revive it, handled above. No NACK: the
	// bus considers the sender unreachable.
	if !src.alive {
		b.stats.DeadSenderDropped++
		return
	}

	if env.Dst == msg.Broadcast {
		b.stats.Broadcasts++
		// Tenancy scopes broadcast fan-out to the sender's isolation
		// domain (plus untenanted infrastructure): a tenant cannot probe
		// another tenant's services by discovery. The scoped-away
		// audience is reported back once, typed, so the abuse is never a
		// silent narrowing.
		var scopedFrom tenant.ID
		for _, a := range b.sortedDevices() {
			if a.id == env.Src || !a.alive {
				continue
			}
			if b.tenancy != nil && !b.tenancy.SameDomain(env.Src, a.id) {
				if scopedFrom == 0 {
					scopedFrom = b.tenantOf(a.id)
				}
				continue
			}
			b.deliver(env, a)
		}
		if scopedFrom != 0 {
			if _, isDiscover := env.Msg.(*msg.DiscoverReq); isDiscover {
				b.reportDenial(src, scopedFrom, tenant.DenyDiscovery, env.Msg.Kind(),
					fmt.Sprintf("%s discovery scoped away from %v", src.name, scopedFrom))
			}
		}
		return
	}

	dst, ok := b.devices[env.Dst]
	if !ok {
		b.nack(src, env, msg.NackUnknownDst, "no such device")
		return
	}
	if !dst.alive {
		b.nack(src, env, msg.NackDeadDst, dst.name+" is failed")
		return
	}

	// Privileged interception: a successful AllocResp from the memory
	// controller causes the bus to program the requester's IOMMU before
	// the response is delivered (§3 step 6). When no memory controller is
	// registered (the centralized baseline), the bus is pure transport
	// and AllocResps pass through untouched.
	if ar, isAlloc := env.Msg.(*msg.AllocResp); isAlloc && b.memctrl != 0 {
		if env.Src != b.memctrl {
			// Only the registered controller may authorize mappings; a
			// forged AllocResp is refused.
			b.nack(src, env, msg.NackUnauthorized, "only the memory controller may send alloc responses")
			return
		}
		if ar.OK && b.tenancy != nil {
			// Cross-tenant mapping: the requesting device must share the
			// app's isolation domain before the bus touches its IOMMU.
			// (The device's own domain check would also refuse — this is
			// defense in depth, and it attributes the denial.)
			if terr := b.tenancy.CheckDevApp(dst.id, ar.App); terr != nil {
				e := terr.(*tenant.Error)
				b.reportDenial(dst, e.Victim, tenant.DenyMapping, env.Msg.Kind(), e.Detail)
				env.Msg = &msg.AllocResp{App: ar.App, OK: false, Reason: "cross-tenant mapping refused", VA: ar.VA}
				b.deliver(env, dst)
				return
			}
		}
		if ar.OK {
			if err := b.programMappings(dst, ar); err != nil {
				// Mapping failed: convert to a failure response so the
				// requester learns the truth.
				env.Msg = &msg.AllocResp{App: ar.App, OK: false, Reason: err.Error(), VA: ar.VA}
				b.deliver(env, dst)
				return
			}
			// The response reaches the requester only after its IOMMU
			// tables are programmed.
			dst.mmuEngine.Submit(sim.Duration(len(ar.Frames))*b.cfg.MapPerPage, func() {
				b.deliver(env, dst)
			})
			return
		}
	}
	if fr, isFree := env.Msg.(*msg.FreeResp); isFree && env.Src == b.memctrl && fr.OK {
		b.unmapEverywhere(dst, fr)
	}

	b.deliver(env, dst)
}

// sortedDevices iterates attachments in id order for determinism.
func (b *Bus) sortedDevices() []*attachment {
	out := make([]*attachment, 0, len(b.devices))
	var max msg.DeviceID
	for id := range b.devices {
		if id > max {
			max = id
		}
	}
	for id := msg.DeviceID(1); id <= max; id++ {
		if a, ok := b.devices[id]; ok {
			out = append(out, a)
		}
	}
	return out
}

// nack reports a refused message back to its (alive, attached) sender.
func (b *Bus) nack(src *attachment, env msg.Envelope, code msg.NackCode, reason string) {
	b.stats.Nacks++
	b.sendFromBus(src, &msg.Nack{Of: env.Msg.Kind(), Seq: env.Seq, Dst: env.Dst, Code: code, Reason: reason})
}

// deliver schedules the final hop to one destination. Transmission time
// occupies the shared medium (so broadcasts serialize per destination);
// propagation overlaps.
func (b *Bus) deliver(env msg.Envelope, dst *attachment) {
	b.stats.Deliveries++
	size := msg.EncodedSize(env.Msg)
	tx := sim.Duration(float64(size) / b.cfg.BytesPerNs)
	b.egress.Submit(tx, func() {
		b.eng.After(b.cfg.HopLatency, func() {
			if !dst.alive {
				// The destination died while the message was in flight.
				// Tell a unicast sender if it can still be told.
				if src, ok := b.devices[env.Src]; ok && src.alive && env.Dst != msg.Broadcast {
					b.nack(src, env, msg.NackDeadDst, dst.name+" failed in flight")
					return
				}
				b.stats.Dropped++
				return
			}
			dst.handler(env)
		})
	})
}

// sendFromBus emits a bus-originated message to one device.
func (b *Bus) sendFromBus(dst *attachment, m msg.Message) {
	b.tr.Record(b.eng.Now(), "bus", dst.name, m.Kind().String(), summarize(m))
	b.stats.Deliveries++
	b.busSeq++
	env := msg.Envelope{Src: msg.BusID, Dst: dst.id, Seq: b.busSeq, Msg: m}
	tx := sim.Duration(float64(msg.EncodedSize(m)) / b.cfg.BytesPerNs)
	d := b.plane.Filter(faultinject.LayerBus, b.eng.Now(), msg.BusID, dst.id, m.Kind())
	if d.Op == faultinject.Drop {
		return
	}
	hop := b.cfg.HopLatency
	if d.Op == faultinject.Delay || d.Op == faultinject.Reorder {
		hop += d.Delay
	}
	final := func() {
		b.eng.After(hop, func() {
			// Reset must reach even dead devices — it is the revival path.
			if !dst.alive {
				if _, isReset := m.(*msg.Reset); !isReset {
					b.stats.Dropped++
					return
				}
			}
			dst.handler(env)
		})
	}
	b.egress.Submit(tx, func() {
		final()
		if d.Op == faultinject.Dup {
			final() // same seq: the receiver's dedup window eats it
		}
	})
}

// handleBusMessage processes messages addressed to the bus itself.
func (b *Bus) handleBusMessage(src *attachment, env msg.Envelope) {
	switch m := env.Msg.(type) {
	case *msg.Hello:
		b.noteRejoin(src)
		src.alive = true
		src.lastHB = b.eng.Now()
		b.sendFromBus(src, &msg.HelloAck{})
	case *msg.ResetDone:
		b.noteRejoin(src)
		src.alive = true
		src.lastHB = b.eng.Now()
	case *msg.Heartbeat:
		if src.alive {
			src.lastHB = b.eng.Now()
		} else {
			// A heartbeat from a device the bus marked failed means the
			// device believes it is healthy — its ResetDone was lost on a
			// faulty fabric. Re-issue the Reset so the lifecycle
			// reconverges instead of leaving a permanent zombie. (A device
			// mid-reset ignores the extra Reset; a genuinely dead device
			// never heartbeats.)
			b.stats.Resets++
			b.sendFromBus(src, &msg.Reset{Reason: "bus: heartbeat from failed device"})
		}
	case *msg.GrantReq:
		b.handleGrant(src, m)
	case *msg.RevokeReq:
		b.handleRevoke(src, m)
	case *msg.AuthResp:
		b.handleAuthResp(src, m)
	case *msg.StateQuery:
		b.sendFromBus(src, b.stateRespFor(src, m.Nonce))
	case *msg.TenantGrant:
		if b.tenancy == nil {
			b.nack(src, env, msg.NackUnknownKind, "tenancy is not enabled on this bus")
			return
		}
		b.tenancy.Apply(m)
	default:
		b.nack(src, env, msg.NackUnknownKind, "bus cannot handle "+env.Msg.Kind().String())
	}
}

// noteRejoin records a re-enrollment (Hello or ResetDone from a device
// the bus had marked failed) for the recovery experiments.
func (b *Bus) noteRejoin(a *attachment) {
	if !a.failed {
		return
	}
	a.failed = false
	// Resynchronize flow control with the revived port's full window.
	a.creditsUsed = 0
	b.stats.Rejoins++
	b.tr.Record(b.eng.Now(), "bus", a.name, "device.rejoined",
		fmt.Sprintf("inc=%d outage=%v", a.inc, b.eng.Now().Sub(a.failedAt)))
}

// stateRespFor answers a revived device's StateQuery from the bus's own
// management tables: every region the device still owns, with the
// grantees currently mapped into it, in (app, va) order.
func (b *Bus) stateRespFor(a *attachment, nonce uint32) *msg.StateResp {
	var keys []ownerKey
	for key, info := range b.owners {
		if info.dev == a.id {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].app != keys[j].app {
			return keys[i].app < keys[j].app
		}
		return keys[i].va < keys[j].va
	})
	resp := &msg.StateResp{Nonce: nonce}
	for _, key := range keys {
		info := b.owners[key]
		reg := msg.OwnedRegion{App: key.app, VA: key.va, Pages: uint32(info.pages), Huge: info.huge}
		for _, rec := range b.grants[key] {
			reg.Grantees = append(reg.Grantees, rec.target)
		}
		resp.Regions = append(resp.Regions, reg)
	}
	return resp
}

// programMappings installs an AllocResp's frames into the requester's
// IOMMU and records ownership.
func (b *Bus) programMappings(dst *attachment, ar *msg.AllocResp) error {
	if dst.mmu == nil {
		return fmt.Errorf("device %s has no IOMMU", dst.name)
	}
	// A retried AllocReq can produce a second OK response for a region
	// whose tables are already programmed (the first response was lost
	// after the controller committed). Re-programming would fail with
	// "already mapped"; recognize the replay — same device, same frames —
	// and succeed idempotently. A response with different frames is a
	// genuine conflict and falls through to the mapping error below.
	if info, ok := b.owners[ownerKey{ar.App, ar.VA}]; ok && info.dev == dst.id &&
		info.frameSum == frameFingerprint(ar.Frames, ar.Huge) {
		return nil
	}
	pasid := iommu.PASID(ar.App)
	if !dst.mmu.HasContext(pasid) {
		if err := dst.mmu.CreateContext(pasid); err != nil {
			return err
		}
	}
	perm := iommu.Perm(ar.Perm)
	if perm == 0 {
		perm = iommu.PermRW
	}
	if ar.Huge {
		for i, f := range ar.Frames {
			va := iommu.VirtAddr(ar.VA + uint64(i)*iommu.HugePageSize)
			if err := dst.mmu.MapHuge(pasid, va, physmem.Frame(f), perm); err != nil {
				for j := 0; j < i; j++ {
					_ = dst.mmu.UnmapHuge(pasid, iommu.VirtAddr(ar.VA+uint64(j)*iommu.HugePageSize))
				}
				return err
			}
		}
		b.stats.PagesMapped += uint64(len(ar.Frames) * iommu.HugeFrames)
		b.owners[ownerKey{ar.App, ar.VA}] = ownerInfo{dev: dst.id, pages: len(ar.Frames) * iommu.HugeFrames, huge: true, frameSum: frameFingerprint(ar.Frames, true)}
		return nil
	}
	for i, f := range ar.Frames {
		va := iommu.VirtAddr(ar.VA + uint64(i)*physmem.PageSize)
		if err := dst.mmu.Map(pasid, va, physmem.Frame(f), perm); err != nil {
			// Roll back partial work so a failed alloc leaves no residue.
			for j := 0; j < i; j++ {
				_ = dst.mmu.Unmap(pasid, iommu.VirtAddr(ar.VA+uint64(j)*physmem.PageSize))
			}
			return err
		}
	}
	b.stats.PagesMapped += uint64(len(ar.Frames))
	b.owners[ownerKey{ar.App, ar.VA}] = ownerInfo{dev: dst.id, pages: len(ar.Frames), frameSum: frameFingerprint(ar.Frames, false)}
	return nil
}

// ownsRange reports whether dev owns an allocated region of app fully
// containing [va, va+bytes).
func (b *Bus) ownsRange(dev msg.DeviceID, app msg.AppID, va, bytes uint64) bool {
	for key, info := range b.owners {
		if key.app != app || info.dev != dev {
			continue
		}
		end := key.va + uint64(info.pages)*physmem.PageSize
		if va >= key.va && va+bytes <= end {
			return true
		}
	}
	return false
}

// unmapEverywhere handles a successful FreeResp: the region disappears
// from the owner and every grantee (including sub-range grants carved
// out of it).
func (b *Bus) unmapEverywhere(owner *attachment, fr *msg.FreeResp) {
	key := ownerKey{fr.App, fr.VA}
	info, ok := b.owners[key]
	if !ok || info.dev != owner.id {
		return
	}
	pasid := iommu.PASID(fr.App)
	regionEnd := fr.VA + uint64(info.pages)*physmem.PageSize
	work := 0
	// Owner's own mappings.
	if owner.mmu != nil {
		work += b.unmapRegion(owner.mmu, pasid, fr.VA, info.pages, info.huge)
	}
	// Any grants whose range falls inside the freed region. The unmap
	// submissions below schedule simulator events, so iterate the grant
	// table in key order, not map order.
	var gkeys []ownerKey
	for gkey := range b.grants {
		if gkey.app != fr.App || gkey.va < fr.VA || gkey.va >= regionEnd {
			continue
		}
		gkeys = append(gkeys, gkey)
	}
	sort.Slice(gkeys, func(i, j int) bool { return gkeys[i].va < gkeys[j].va })
	for _, gkey := range gkeys {
		for _, rec := range b.grants[gkey] {
			a, ok := b.devices[rec.target]
			if !ok || a.mmu == nil {
				continue
			}
			n := b.unmapRegion(a.mmu, pasid, gkey.va, rec.pages, rec.huge)
			a.mmuEngine.Submit(sim.Duration(n)*b.cfg.MapPerPage, nil)
		}
		delete(b.grants, gkey)
	}
	owner.mmuEngine.Submit(sim.Duration(work)*b.cfg.MapPerPage, nil)
	delete(b.owners, key)
}

// unmapRegion removes a region's translations (huge-aware) and returns
// the number of PTEs cleared.
func (b *Bus) unmapRegion(mmu *iommu.IOMMU, pasid iommu.PASID, va uint64, pages int, huge bool) int {
	n := 0
	if huge {
		runs := pages / iommu.HugeFrames
		for i := 0; i < runs; i++ {
			hva := iommu.VirtAddr(va + uint64(i)*iommu.HugePageSize)
			if err := mmu.UnmapHuge(pasid, hva); err == nil {
				b.stats.PagesUnmapped += uint64(iommu.HugeFrames)
				n++
			}
		}
		return n
	}
	for i := 0; i < pages; i++ {
		pva := iommu.VirtAddr(va + uint64(i)*physmem.PageSize)
		if err := mmu.Unmap(pasid, pva); err == nil {
			b.stats.PagesUnmapped++
			n++
		}
	}
	return n
}

// handleGrant begins the authorize-then-map protocol.
func (b *Bus) handleGrant(src *attachment, m *msg.GrantReq) {
	deny := func(reason string) {
		b.stats.GrantsDenied++
		b.sendFromBus(src, &msg.GrantResp{App: m.App, OK: false, Reason: reason, VA: m.VA, Target: m.Target})
	}
	// Cross-tenant grants are refused outright — before any mechanism
	// check, so ownership state leaks nothing across the boundary:
	// neither the target device nor the app may live in a different
	// isolation domain than the requester. Attributed and reported (S1).
	if b.tenancy != nil {
		if !b.tenancy.SameDomain(src.id, m.Target) {
			deny("cross-tenant grant refused")
			b.reportDenial(src, b.tenantOf(m.Target), tenant.DenyGrant, msg.KindGrantReq,
				fmt.Sprintf("%s may not grant app %d to %v in %v", src.name, m.App, m.Target, b.tenantOf(m.Target)))
			return
		}
		if terr := b.tenancy.CheckDevApp(m.Target, m.App); terr != nil {
			e := terr.(*tenant.Error)
			deny("cross-tenant grant refused")
			b.reportDenial(src, e.Victim, tenant.DenyGrant, msg.KindGrantReq, e.Detail)
			return
		}
	}
	// The bus's own sanity checks (mechanism, not policy): requester must
	// own the range, target must exist.
	if !b.ownsRange(src.id, m.App, m.VA, m.Bytes) {
		deny("requester does not own region")
		return
	}
	// A retried GrantReq for a grant already in force succeeds without
	// re-authorizing or re-mapping (the first response was lost).
	for _, r := range b.grants[ownerKey{m.App, m.VA}] {
		if r.target == m.Target {
			b.stats.GrantsOK++
			b.sendFromBus(src, &msg.GrantResp{App: m.App, OK: true, VA: m.VA, Target: m.Target})
			return
		}
	}
	tgt, ok := b.devices[m.Target]
	if !ok || !tgt.alive {
		deny("unknown or dead target device")
		return
	}
	if b.memctrl == 0 {
		deny("no memory controller")
		return
	}
	mc := b.devices[b.memctrl]
	b.nextNonce++
	nonce := b.nextNonce
	b.pendingGrants[nonce] = pendingGrant{req: *m, src: src.id}
	b.sendFromBus(mc, &msg.AuthReq{App: m.App, VA: m.VA, Bytes: m.Bytes, Target: m.Target, Perm: m.Perm, Nonce: nonce})
}

// handleAuthResp completes a pending grant.
func (b *Bus) handleAuthResp(src *attachment, m *msg.AuthResp) {
	if src.id != b.memctrl {
		b.stats.Dropped++ // forged authorization
		return
	}
	pg, ok := b.pendingGrants[m.Nonce]
	if !ok {
		b.stats.Dropped++
		return
	}
	delete(b.pendingGrants, m.Nonce)
	requester := b.devices[pg.src]
	reply := func(ok bool, reason string) {
		if requester == nil {
			return
		}
		if ok {
			b.stats.GrantsOK++
		} else {
			b.stats.GrantsDenied++
		}
		b.sendFromBus(requester, &msg.GrantResp{App: pg.req.App, OK: ok, Reason: reason, VA: pg.req.VA, Target: pg.req.Target})
	}
	if !m.OK {
		reply(false, m.Reason)
		return
	}
	tgt, ok := b.devices[pg.req.Target]
	if !ok || !tgt.alive || tgt.mmu == nil {
		reply(false, "target vanished")
		return
	}
	// Two authorizations for the same grant can race when the requester
	// retried before the first AuthResp returned; the second mapping pass
	// would fail on already-installed PTEs. Treat it as the success it is.
	for _, r := range b.grants[ownerKey{m.App, m.VA}] {
		if r.target == pg.req.Target {
			reply(true, "")
			return
		}
	}
	pasid := iommu.PASID(m.App)
	if !tgt.mmu.HasContext(pasid) {
		if err := tgt.mmu.CreateContext(pasid); err != nil {
			reply(false, err.Error())
			return
		}
	}
	perm := iommu.Perm(m.Perm)
	if perm == 0 {
		perm = iommu.PermRW
	}
	if m.Huge {
		for i, f := range m.Frames {
			va := iommu.VirtAddr(m.VA + uint64(i)*iommu.HugePageSize)
			if err := tgt.mmu.MapHuge(pasid, va, physmem.Frame(f), perm); err != nil {
				for j := 0; j < i; j++ {
					_ = tgt.mmu.UnmapHuge(pasid, iommu.VirtAddr(m.VA+uint64(j)*iommu.HugePageSize))
				}
				reply(false, err.Error())
				return
			}
		}
		b.stats.PagesMapped += uint64(len(m.Frames) * iommu.HugeFrames)
	} else {
		for i, f := range m.Frames {
			va := iommu.VirtAddr(m.VA + uint64(i)*physmem.PageSize)
			if err := tgt.mmu.Map(pasid, va, physmem.Frame(f), perm); err != nil {
				for j := 0; j < i; j++ {
					_ = tgt.mmu.Unmap(pasid, iommu.VirtAddr(m.VA+uint64(j)*physmem.PageSize))
				}
				reply(false, err.Error())
				return
			}
		}
		b.stats.PagesMapped += uint64(len(m.Frames))
	}
	key := ownerKey{m.App, m.VA}
	rec := grantRec{target: pg.req.Target, pages: len(m.Frames)}
	if m.Huge {
		rec.pages = len(m.Frames) * iommu.HugeFrames
		rec.huge = true
		rec.runs = len(m.Frames)
	}
	b.grants[key] = append(b.grants[key], rec)
	// The grant is acknowledged only after the target's tables are
	// programmed.
	tgt.mmuEngine.Submit(sim.Duration(len(m.Frames))*b.cfg.MapPerPage, func() {
		reply(true, "")
	})
}

// handleRevoke removes a previous grant from the target device.
func (b *Bus) handleRevoke(src *attachment, m *msg.RevokeReq) {
	key := ownerKey{m.App, m.VA}
	deny := func(reason string) {
		b.sendFromBus(src, &msg.RevokeResp{App: m.App, OK: false, Reason: reason})
	}
	if !b.ownsRange(src.id, m.App, m.VA, m.Bytes) {
		deny("requester does not own region")
		return
	}
	var rec grantRec
	found := false
	for i, r := range b.grants[key] {
		if r.target == m.Target {
			rec = r
			b.grants[key] = append(b.grants[key][:i], b.grants[key][i+1:]...)
			found = true
			break
		}
	}
	if !found {
		deny("no such grant")
		return
	}
	if len(b.grants[key]) == 0 {
		delete(b.grants, key)
	}
	if tgt, ok := b.devices[m.Target]; ok && tgt.mmu != nil {
		pasid := iommu.PASID(m.App)
		n := b.unmapRegion(tgt.mmu, pasid, m.VA, rec.pages, rec.huge)
		tgt.mmuEngine.Submit(sim.Duration(n)*b.cfg.MapPerPage, nil)
	}
	b.sendFromBus(src, &msg.RevokeResp{App: m.App, OK: true})
}

// scheduleWatchdog arms the periodic liveness scan.
func (b *Bus) scheduleWatchdog() {
	b.eng.After(b.cfg.WatchdogTimeout/2, func() {
		now := b.eng.Now()
		for _, a := range b.sortedDevices() {
			if a.alive && now.Sub(a.lastHB) > b.cfg.WatchdogTimeout {
				b.failDevice(a, "watchdog: missed heartbeats")
			}
		}
		b.scheduleWatchdog()
	})
}

// failDevice marks a device dead, notifies everyone, and attempts a reset
// (§4 "Error Handling").
func (b *Bus) failDevice(a *attachment, reason string) {
	a.alive = false
	a.failed = true
	a.failedAt = b.eng.Now()
	b.stats.DevicesFailed++
	// Fail any grant still waiting on the dead party (requester, target,
	// or the authorizing controller): the requester must not hang. The
	// denials schedule delivery events, so drain in nonce order (nonces
	// are issued sequentially), not map order.
	nonces := make([]uint32, 0, len(b.pendingGrants))
	for nonce := range b.pendingGrants {
		nonces = append(nonces, nonce)
	}
	sort.Slice(nonces, func(i, j int) bool { return nonces[i] < nonces[j] })
	for _, nonce := range nonces {
		pg := b.pendingGrants[nonce]
		if pg.src != a.id && pg.req.Target != a.id && b.memctrl != a.id {
			continue
		}
		delete(b.pendingGrants, nonce)
		if req, ok := b.devices[pg.src]; ok && req.alive {
			b.stats.GrantsDenied++
			b.sendFromBus(req, &msg.GrantResp{
				App: pg.req.App, OK: false,
				Reason: "device failed during grant: " + a.name,
				VA:     pg.req.VA, Target: pg.req.Target,
			})
		}
	}
	b.tr.Record(b.eng.Now(), "bus", "broadcast", "device.failed", a.name+": "+reason)
	for _, other := range b.sortedDevices() {
		if other.id == a.id || !other.alive {
			continue
		}
		b.deliver(msg.Envelope{Src: msg.BusID, Dst: other.id, Msg: &msg.DeviceFailed{Device: a.id}}, other)
	}
	b.stats.Resets++
	b.sendFromBus(a, &msg.Reset{Reason: reason})
}

// Replay injects a captured envelope verbatim — source address,
// sequence tag and incarnation stamp all preserved — through the bus's
// normal ingress path, modeling a malicious endpoint retransmitting a
// frame it sniffed earlier. The bus's defenses (incarnation fencing,
// dedup window, tenancy checks) see exactly what they would see from a
// real replay attack.
func (b *Bus) Replay(env msg.Envelope) {
	size := msg.EncodedSize(env.Msg)
	wire := b.cfg.HopLatency + sim.Duration(float64(size)/b.cfg.BytesPerNs)
	b.eng.After(wire, func() {
		if bound := b.cfg.IngressBound; bound > 0 && b.proc.Pending() >= bound {
			b.shedIngress(env)
			return
		}
		b.proc.Submit(b.cfg.ProcPerMsg, func() { b.process(env) })
		b.ingressG.Set(b.proc.Pending())
	})
}

// FailDevice force-fails a device by id (fault injection in tests and the
// fault-tolerance example).
func (b *Bus) FailDevice(id msg.DeviceID, reason string) error {
	a, ok := b.devices[id]
	if !ok {
		return fmt.Errorf("bus: unknown device %v", id)
	}
	if !a.alive {
		return fmt.Errorf("bus: device %v already dead", id)
	}
	b.failDevice(a, reason)
	return nil
}

// Alive reports whether a device is currently registered alive.
func (b *Bus) Alive(id msg.DeviceID) bool {
	a, ok := b.devices[id]
	return ok && a.alive
}

// OwnerOf reports which device owns the (app, va) region — used by the
// auditing tests.
func (b *Bus) OwnerOf(app msg.AppID, va uint64) (msg.DeviceID, bool) {
	info, ok := b.owners[ownerKey{app, va}]
	return info.dev, ok
}

// GranteesOf lists devices holding grants on the region.
func (b *Bus) GranteesOf(app msg.AppID, va uint64) []msg.DeviceID {
	recs := b.grants[ownerKey{app, va}]
	out := make([]msg.DeviceID, len(recs))
	for i, r := range recs {
		out[i] = r.target
	}
	return out
}

// summarize renders the trace detail for interesting message types.
func summarize(m msg.Message) string {
	switch t := m.(type) {
	case *msg.DiscoverReq:
		return t.Query
	case *msg.DiscoverResp:
		return t.Service
	case *msg.OpenReq:
		return t.Service
	case *msg.OpenResp:
		return fmt.Sprintf("%s shm=%d ok=%v", t.Service, t.SharedBytes, t.OK)
	case *msg.AllocReq:
		return fmt.Sprintf("app=%d va=%#x bytes=%d", t.App, t.VA, t.Bytes)
	case *msg.AllocResp:
		return fmt.Sprintf("app=%d va=%#x frames=%d ok=%v", t.App, t.VA, len(t.Frames), t.OK)
	case *msg.GrantReq:
		return fmt.Sprintf("app=%d va=%#x -> %v", t.App, t.VA, t.Target)
	case *msg.GrantResp:
		return fmt.Sprintf("app=%d va=%#x ok=%v %s", t.App, t.VA, t.OK, t.Reason)
	case *msg.ConnectReq:
		return fmt.Sprintf("%s ring=%#x", t.Service, t.RingVA)
	case *msg.ErrorNotify:
		return fmt.Sprintf("%s: %s", t.Resource, t.Detail)
	case *msg.DeviceFailed:
		return t.Device.String()
	case *msg.Reset:
		return t.Reason
	}
	return ""
}
