package bus

// Bus-level tenancy tests: grant refusal, discovery scoping, TenantGrant
// provisioning and per-tenant credit windows. The attacks an adversary
// device would mount against the bus must each produce a typed,
// attributed refusal — and with tenancy off the bus must behave exactly
// as before (asserted globally by the golden-table tests).

import (
	"testing"

	"nocpu/internal/msg"
	"nocpu/internal/tenant"
)

// tenancyHarness builds a bus with a registry binding device 1 to
// tenant 1 (victim side) and device 2 to tenant 2 (attacker side);
// device 3 stays untenanted infrastructure.
func tenancyHarness(t *testing.T, cfg Config) (*harness, *tenant.Registry) {
	t.Helper()
	h := newHarness(t, cfg)
	reg := tenant.NewRegistry()
	reg.BindDevice(1, 1)
	reg.BindDevice(2, 2)
	reg.BindApp(100, 1)
	reg.BindApp(200, 2)
	h.bus.SetTenancy(reg)
	return h, reg
}

func TestCrossTenantGrantRefused(t *testing.T) {
	h, reg := tenancyHarness(t, DefaultConfig)
	victim := h.addDev(1, "victim", msg.RoleAccelerator)
	attacker := h.addDev(2, "attacker", msg.RoleAccelerator)
	h.addDev(3, "mc", msg.RoleMemoryController)
	h.boot()

	// The attacker asks the bus to map its app into the victim's device.
	attacker.port.Send(msg.BusID, &msg.GrantReq{App: 200, VA: 0x1000, Bytes: 4096, Target: 1})
	h.eng.Run()

	// Typed refusal: GrantResp !OK, plus a DenialReport naming the
	// attacking tenant.
	gr, ok := attacker.lastOfKind(msg.KindGrantResp).(*msg.GrantResp)
	if !ok || gr.OK {
		t.Fatalf("grant resp = %+v, want typed refusal", gr)
	}
	dr, ok := attacker.lastOfKind(msg.KindDenialReport).(*msg.DenialReport)
	if !ok {
		t.Fatal("no DenialReport reached the attacker")
	}
	if dr.Tenant != 2 || dr.Victim != 1 || tenant.Class(dr.Class) != tenant.DenyGrant {
		t.Fatalf("denial report = %+v, want attacker 2 victim 1 class grant", dr)
	}
	// Registry record, attributed to the attacker.
	dens := reg.DenialsBy(2)
	if len(dens) != 1 || dens[0].Class != tenant.DenyGrant || dens[0].Victim != 1 {
		t.Fatalf("registry denials = %+v", dens)
	}
	if len(reg.DenialsBy(1)) != 0 {
		t.Error("victim accrued denials for the attacker's act")
	}
	// The victim never saw any of it.
	if n := victim.countKind(msg.KindGrantResp) + victim.countKind(msg.KindDenialReport); n != 0 {
		t.Errorf("victim received %d grant/denial messages, want 0", n)
	}
}

func TestDiscoveryScopedToDomain(t *testing.T) {
	h, reg := tenancyHarness(t, DefaultConfig)
	victim := h.addDev(1, "victim", msg.RoleAccelerator)
	attacker := h.addDev(2, "attacker", msg.RoleAccelerator)
	shared := h.addDev(3, "shared", msg.RoleStorage)
	h.boot()

	attacker.port.Send(msg.Broadcast, &msg.DiscoverReq{Query: "kvstore"})
	h.eng.Run()

	if n := victim.countKind(msg.KindDiscoverReq); n != 0 {
		t.Errorf("victim saw %d cross-tenant discovery probes, want 0", n)
	}
	if n := shared.countKind(msg.KindDiscoverReq); n != 1 {
		t.Errorf("untenanted device saw %d discoveries, want 1", n)
	}
	dr, ok := attacker.lastOfKind(msg.KindDenialReport).(*msg.DenialReport)
	if !ok {
		t.Fatal("scoped discovery produced no DenialReport (silent narrowing)")
	}
	if dr.Tenant != 2 || tenant.Class(dr.Class) != tenant.DenyDiscovery {
		t.Fatalf("denial report = %+v", dr)
	}
	if len(reg.DenialsBy(2)) != 1 {
		t.Errorf("registry denials by attacker = %d, want 1", len(reg.DenialsBy(2)))
	}

	// Broadcasts within the domain (or from untenanted devices) fan out
	// as before.
	shared.port.Send(msg.Broadcast, &msg.DiscoverReq{Query: "anything"})
	h.eng.Run()
	if n := victim.countKind(msg.KindDiscoverReq); n != 1 {
		t.Errorf("victim saw %d untenanted discoveries, want 1", n)
	}
	if n := attacker.countKind(msg.KindDiscoverReq); n != 1 {
		t.Errorf("attacker saw %d untenanted discoveries, want 1", n)
	}
}

func TestTenantGrantProvisionsOverBus(t *testing.T) {
	h, reg := tenancyHarness(t, DefaultConfig)
	admin := h.addDev(3, "admin", msg.RoleNIC)
	h.boot()

	admin.port.Send(msg.BusID, &msg.TenantGrant{Tenant: 3, Device: 9, App: 0x300, KVSInflight: 4})
	h.eng.Run()

	if got := reg.DeviceTenant(9); got != 3 {
		t.Errorf("device 9 tenant = %v, want t3", got)
	}
	if got := reg.AppTenant(0x300); got != 3 {
		t.Errorf("app 0x300 tenant = %v, want t3", got)
	}
	if b := reg.Budget(3); b.KVSInflight != 4 {
		t.Errorf("budget = %+v", b)
	}
}

func TestTenantGrantWithoutTenancyNacked(t *testing.T) {
	h := newHarness(t, DefaultConfig)
	d := h.addDev(1, "a", msg.RoleAccelerator)
	h.boot()
	d.port.Send(msg.BusID, &msg.TenantGrant{Tenant: 1, Device: 2})
	h.eng.Run()
	n, ok := d.lastOfKind(msg.KindNack).(*msg.Nack)
	if !ok || n.Of != msg.KindTenantGrant {
		t.Fatalf("want typed NACK for TenantGrant on a tenancy-less bus, got %+v", n)
	}
}

// A tenant budget turns flow control on for that tenant's devices even
// when the global window is off, and only the budgeted tenant stalls.
func TestPerTenantCreditWindow(t *testing.T) {
	h, reg := tenancyHarness(t, DefaultConfig) // global CreditWindow 0
	reg.SetBudget(2, tenant.Budget{CreditWindow: 2})
	victim := h.addDev(1, "victim", msg.RoleAccelerator)
	attacker := h.addDev(2, "attacker", msg.RoleAccelerator)
	h.boot()

	// The attacker floods; its 2-credit window stalls everything past
	// the bound and drops the overflow with an attributed denial.
	for i := 0; i < 20; i++ {
		attacker.port.Send(1, &msg.Heartbeat{Seq: uint64(i + 1)})
	}
	st := h.bus.Stats()
	if st.CreditStalls == 0 {
		t.Error("attacker flood never stalled against its tenant window")
	}
	if st.StallDropped == 0 {
		t.Error("attacker flood never exhausted its stall bound")
	}
	budgetDenials := 0
	for _, d := range reg.DenialsBy(2) {
		if d.Class == tenant.DenyBudget {
			budgetDenials++
		}
	}
	if budgetDenials == 0 {
		t.Error("stall-bound drops were not recorded as budget denials")
	}

	// The victim, with no budget and global flow control off, is
	// untouched: every send goes straight to the wire.
	for i := 0; i < 20; i++ {
		victim.port.Send(2, &msg.Heartbeat{Seq: uint64(i + 1)})
	}
	if got := h.bus.Stats().CreditStalls; got != st.CreditStalls {
		t.Errorf("victim sends stalled (%d -> %d): blast radius escaped the attacker", st.CreditStalls, got)
	}
	if len(reg.DenialsBy(1)) != 0 {
		t.Error("victim accrued denials during the attacker's flood")
	}
}

// lastOfKind returns the most recent message of the kind, or nil.
func (d *testDev) lastOfKind(k msg.Kind) msg.Message {
	for i := len(d.inbox) - 1; i >= 0; i-- {
		if d.inbox[i].Msg.Kind() == k {
			return d.inbox[i].Msg
		}
	}
	return nil
}
