package iommu

// Adversarial negative tests: the translations an attacker would need
// must fault to the owning device and never produce a physical address.
// Each case sets up a legitimate mapping landscape and then drives one
// hostile access; the table asserts both the refusal and its typed
// reason, because a wrong reason means the wrong enforcement point
// caught it.

import (
	"errors"
	"fmt"
	"testing"

	"nocpu/internal/physmem"
)

func TestAdversarialTranslations(t *testing.T) {
	cases := []struct {
		name   string
		setup  func(t *testing.T, u *IOMMU, mem *physmem.Memory)
		pasid  PASID
		va     VirtAddr
		access Access
		reason FaultReason
	}{
		{
			// Out-of-domain walk: the attacker's own PASID walks a VA
			// only the victim's PASID maps. Disjoint page-table roots
			// mean the walk finds nothing — not the victim's frame.
			name: "out-of-domain walk",
			setup: func(t *testing.T, u *IOMMU, mem *physmem.Memory) {
				mustCreate(t, u, 1) // victim
				mustCreate(t, u, 2) // attacker
				f := mustAlloc(t, mem, 1)
				if err := u.Map(1, 0x4000, f, PermRW); err != nil {
					t.Fatal(err)
				}
			},
			pasid: 2, va: 0x4000, access: AccessRead,
			reason: FaultNotPresent,
		},
		{
			// Permission-bit mismatch: a read-only grant does not admit
			// writes, even for the PASID that legitimately holds it.
			name: "permission-bit mismatch",
			setup: func(t *testing.T, u *IOMMU, mem *physmem.Memory) {
				mustCreate(t, u, 1)
				f := mustAlloc(t, mem, 1)
				if err := u.Map(1, 0x8000, f, AccessRead); err != nil {
					t.Fatal(err)
				}
			},
			pasid: 1, va: 0x8000, access: AccessWrite,
			reason: FaultPermission,
		},
		{
			// Same mismatch through a warm TLB: the permission check
			// must hold on the hit path too, not only on walks.
			name: "permission-bit mismatch (TLB hit)",
			setup: func(t *testing.T, u *IOMMU, mem *physmem.Memory) {
				mustCreate(t, u, 1)
				f := mustAlloc(t, mem, 1)
				if err := u.Map(1, 0x8000, f, AccessRead); err != nil {
					t.Fatal(err)
				}
				if _, _, err := u.Translate(1, 0x8000, AccessRead); err != nil {
					t.Fatal(err) // warm the TLB with the legitimate read
				}
			},
			pasid: 1, va: 0x8000, access: AccessWrite,
			reason: FaultPermission,
		},
		{
			// Huge-page boundary straddle: a huge mapping ends exactly at
			// the next 2 MiB boundary; the first byte past it must fault,
			// not fall through into whatever frame run follows the huge
			// page's backing store.
			name: "huge-page boundary straddle",
			setup: func(t *testing.T, u *IOMMU, mem *physmem.Memory) {
				mustCreate(t, u, 1)
				f := mustAlloc(t, mem, HugeFrames)
				if err := u.MapHuge(1, VirtAddr(HugePageSize), f, PermRW); err != nil {
					t.Fatal(err)
				}
				// Warm the TLB inside the huge page so the straddling
				// access is tempted by a resident neighbor entry.
				if _, _, err := u.Translate(1, VirtAddr(2*HugePageSize-1), AccessRead); err != nil {
					t.Fatal(err)
				}
			},
			pasid: 1, va: VirtAddr(2 * HugePageSize), access: AccessRead,
			reason: FaultNotPresent,
		},
		{
			// Unknown PASID: an attacker guessing address-space handles.
			name:  "unknown pasid",
			setup: func(t *testing.T, u *IOMMU, mem *physmem.Memory) {},
			pasid: 9, va: 0x1000, access: AccessRead,
			reason: FaultBadPASID,
		},
		{
			// Past the end of the translatable range.
			name: "out-of-range va",
			setup: func(t *testing.T, u *IOMMU, mem *physmem.Memory) {
				mustCreate(t, u, 1)
			},
			pasid: 1, va: MaxVirtAddr, access: AccessRead,
			reason: FaultOutOfRange,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u, mem := newTestIOMMU(t, 4096, DefaultConfig)
			tc.setup(t, u, mem)
			pa, _, err := u.Translate(tc.pasid, tc.va, tc.access)
			if err == nil {
				t.Fatalf("hostile access translated to pa %#x", uint64(pa))
			}
			var fault *Fault
			if !errors.As(err, &fault) {
				t.Fatalf("refusal is not a typed *Fault: %v", err)
			}
			// The fault names the offending access, so the owning device
			// can attribute it.
			if fault.Reason != tc.reason || fault.PASID != tc.pasid || fault.Addr != tc.va {
				t.Fatalf("fault = %+v, want reason %v pasid %d va %#x",
					fault, tc.reason, tc.pasid, uint64(tc.va))
			}
		})
	}
}

// TestDomainCheckRefusesForeignContexts exercises the tenancy hook: a
// domain check installed on the device's IOMMU refuses contexts and
// mappings for PASIDs outside the device's tenant — including mappings
// attempted through a directly held handle, the compromised-kernel path.
func TestDomainCheckRefusesForeignContexts(t *testing.T) {
	u, mem := newTestIOMMU(t, 4096, DefaultConfig)
	mustCreate(t, u, 7) // created before the check: legacy context
	denied := errors.New("cross-tenant")
	u.SetDomainCheck(func(p PASID) error {
		if p >= 100 {
			return fmt.Errorf("pasid %d: %w", p, denied)
		}
		return nil
	})

	if err := u.CreateContext(100); !errors.Is(err, denied) {
		t.Fatalf("foreign CreateContext: %v, want domain denial", err)
	}
	if err := u.CreateContext(8); err != nil {
		t.Fatalf("in-domain CreateContext: %v", err)
	}

	// A compromised kernel holding the handle maps into a pre-existing
	// context: the per-mapping check still refuses.
	u.SetDomainCheck(func(p PASID) error { return fmt.Errorf("pasid %d: %w", p, denied) })
	f := mustAlloc(t, mem, 1)
	if err := u.Map(7, 0x4000, f, PermRW); !errors.Is(err, denied) {
		t.Fatalf("foreign Map: %v, want domain denial", err)
	}
	fh := mustAlloc(t, mem, HugeFrames)
	if err := u.MapHuge(7, VirtAddr(HugePageSize), fh, PermRW); !errors.Is(err, denied) {
		t.Fatalf("foreign MapHuge: %v, want domain denial", err)
	}
	if got := u.Stats().DomainDenials; got != 3 {
		t.Fatalf("DomainDenials = %d, want 3", got)
	}

	// Uninstalling restores the legacy behavior.
	u.SetDomainCheck(nil)
	if err := u.Map(7, 0x4000, f, PermRW); err != nil {
		t.Fatalf("post-uninstall Map: %v", err)
	}
}

func mustCreate(t *testing.T, u *IOMMU, p PASID) {
	t.Helper()
	if err := u.CreateContext(p); err != nil {
		t.Fatal(err)
	}
}

func mustAlloc(t *testing.T, mem *physmem.Memory, n int) physmem.Frame {
	t.Helper()
	f, err := mem.AllocFrames(n)
	if err != nil {
		t.Fatal(err)
	}
	return f
}
