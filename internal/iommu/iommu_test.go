package iommu

import (
	"errors"
	"testing"
	"testing/quick"

	"nocpu/internal/physmem"
)

func newTestIOMMU(t *testing.T, frames uint64, cfg Config) (*IOMMU, *physmem.Memory) {
	t.Helper()
	mem := physmem.MustNew(frames * physmem.PageSize)
	return New("test", mem, cfg), mem
}

func TestCreateDestroyContext(t *testing.T) {
	u, mem := newTestIOMMU(t, 256, DefaultConfig)
	if err := u.CreateContext(0); err == nil {
		t.Error("PASID 0 accepted")
	}
	if err := u.CreateContext(1); err != nil {
		t.Fatal(err)
	}
	if err := u.CreateContext(1); err == nil {
		t.Error("duplicate PASID accepted")
	}
	if !u.HasContext(1) || u.Contexts() != 1 {
		t.Error("context bookkeeping wrong")
	}
	before := mem.AllocatedBytes()
	if before == 0 {
		t.Error("root table not allocated from physmem")
	}
	if err := u.DestroyContext(1); err != nil {
		t.Fatal(err)
	}
	if mem.AllocatedBytes() != 0 {
		t.Errorf("table frames leaked: %d bytes", mem.AllocatedBytes())
	}
	if err := u.DestroyContext(1); err == nil {
		t.Error("double destroy accepted")
	}
}

func TestMapTranslateRoundTrip(t *testing.T) {
	u, mem := newTestIOMMU(t, 256, DefaultConfig)
	if err := u.CreateContext(7); err != nil {
		t.Fatal(err)
	}
	f, _ := mem.AllocFrames(1)
	const va = VirtAddr(0x40000000)
	if err := u.Map(7, va, f, PermRW); err != nil {
		t.Fatal(err)
	}
	pa, reads, err := u.Translate(7, va+123, AccessRead)
	if err != nil {
		t.Fatal(err)
	}
	if pa != physmem.Addr(uint64(f.Addr())+123) {
		t.Errorf("pa = %#x, want frame base + 123", pa)
	}
	if reads != 4 {
		t.Errorf("cold walk performed %d reads, want 4 (4-level)", reads)
	}
	// Second translation of the same page must hit the TLB.
	_, reads, err = u.Translate(7, va+200, AccessWrite)
	if err != nil {
		t.Fatal(err)
	}
	if reads != 0 {
		t.Errorf("TLB hit performed %d walk reads", reads)
	}
	st := u.Stats()
	if st.TLBHits != 1 || st.TLBMisses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTranslateFaults(t *testing.T) {
	u, mem := newTestIOMMU(t, 256, DefaultConfig)
	_ = u.CreateContext(1)
	f, _ := mem.AllocFrames(1)
	_ = u.Map(1, 0, f, AccessRead)

	var fault *Fault
	// Unmapped address.
	_, _, err := u.Translate(1, 0x1000, AccessRead)
	if !errors.As(err, &fault) || fault.Reason != FaultNotPresent {
		t.Errorf("unmapped: %v", err)
	}
	// Permission violation (read-only page, write access).
	_, _, err = u.Translate(1, 0, AccessWrite)
	if !errors.As(err, &fault) || fault.Reason != FaultPermission {
		t.Errorf("perm: %v", err)
	}
	// Unknown PASID.
	_, _, err = u.Translate(9, 0, AccessRead)
	if !errors.As(err, &fault) || fault.Reason != FaultBadPASID {
		t.Errorf("pasid: %v", err)
	}
	// Out of range VA.
	_, _, err = u.Translate(1, MaxVirtAddr, AccessRead)
	if !errors.As(err, &fault) || fault.Reason != FaultOutOfRange {
		t.Errorf("range: %v", err)
	}
	if u.Stats().Faults != 4 {
		t.Errorf("fault count = %d, want 4", u.Stats().Faults)
	}
}

func TestPermissionCheckedOnTLBHit(t *testing.T) {
	u, mem := newTestIOMMU(t, 256, DefaultConfig)
	_ = u.CreateContext(1)
	f, _ := mem.AllocFrames(1)
	_ = u.Map(1, 0, f, AccessRead)
	if _, _, err := u.Translate(1, 0, AccessRead); err != nil {
		t.Fatal(err)
	}
	// Now cached; a write must still fault.
	var fault *Fault
	_, _, err := u.Translate(1, 8, AccessWrite)
	if !errors.As(err, &fault) || fault.Reason != FaultPermission {
		t.Errorf("cached perm: %v", err)
	}
}

func TestUnmapInvalidatesTLB(t *testing.T) {
	u, mem := newTestIOMMU(t, 256, DefaultConfig)
	_ = u.CreateContext(1)
	f, _ := mem.AllocFrames(1)
	_ = u.Map(1, 0x2000, f, PermRW)
	if _, _, err := u.Translate(1, 0x2000, AccessRead); err != nil {
		t.Fatal(err)
	}
	if err := u.Unmap(1, 0x2000); err != nil {
		t.Fatal(err)
	}
	var fault *Fault
	if _, _, err := u.Translate(1, 0x2000, AccessRead); !errors.As(err, &fault) {
		t.Errorf("stale TLB entry served after unmap: %v", err)
	}
}

func TestRemapRejectedUntilUnmap(t *testing.T) {
	u, mem := newTestIOMMU(t, 256, DefaultConfig)
	_ = u.CreateContext(1)
	f1, _ := mem.AllocFrames(1)
	f2, _ := mem.AllocFrames(1)
	if err := u.Map(1, 0x3000, f1, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := u.Map(1, 0x3000, f2, PermRW); err == nil {
		t.Error("silent remap accepted")
	}
	if err := u.Unmap(1, 0x3000); err != nil {
		t.Fatal(err)
	}
	if err := u.Map(1, 0x3000, f2, PermRW); err != nil {
		t.Errorf("remap after unmap failed: %v", err)
	}
}

func TestMapValidation(t *testing.T) {
	u, mem := newTestIOMMU(t, 256, DefaultConfig)
	_ = u.CreateContext(1)
	f, _ := mem.AllocFrames(1)
	if err := u.Map(1, 0x123, f, PermRW); err == nil {
		t.Error("unaligned map accepted")
	}
	if err := u.Map(1, 0, f, 0); err == nil {
		t.Error("empty-permission map accepted")
	}
	if err := u.Map(2, 0, f, PermRW); err == nil {
		t.Error("map on unknown PASID accepted")
	}
	if err := u.Map(1, MaxVirtAddr, f, PermRW); err == nil {
		t.Error("out-of-range map accepted")
	}
	if err := u.Unmap(1, 0x5000); err == nil {
		t.Error("unmap of never-mapped page accepted")
	}
}

func TestPASIDIsolation(t *testing.T) {
	u, mem := newTestIOMMU(t, 512, DefaultConfig)
	_ = u.CreateContext(1)
	_ = u.CreateContext(2)
	f1, _ := mem.AllocFrames(1)
	f2, _ := mem.AllocFrames(1)
	_ = u.Map(1, 0x1000, f1, PermRW)
	_ = u.Map(2, 0x1000, f2, PermRW)
	pa1, _, err := u.Translate(1, 0x1000, AccessRead)
	if err != nil {
		t.Fatal(err)
	}
	pa2, _, err := u.Translate(2, 0x1000, AccessRead)
	if err != nil {
		t.Fatal(err)
	}
	if pa1 == pa2 {
		t.Error("two PASIDs share a translation for the same VA")
	}
	if pa1 != f1.Addr() || pa2 != f2.Addr() {
		t.Error("translations routed to wrong frames")
	}
}

func TestDestroyContextFlushesTLB(t *testing.T) {
	u, mem := newTestIOMMU(t, 512, DefaultConfig)
	_ = u.CreateContext(1)
	f, _ := mem.AllocFrames(1)
	_ = u.Map(1, 0x1000, f, PermRW)
	_, _, _ = u.Translate(1, 0x1000, AccessRead)
	if err := u.DestroyContext(1); err != nil {
		t.Fatal(err)
	}
	// Recreate the PASID: the old cached translation must not leak into
	// the fresh address space.
	_ = u.CreateContext(1)
	var fault *Fault
	if _, _, err := u.Translate(1, 0x1000, AccessRead); !errors.As(err, &fault) {
		t.Errorf("stale translation survived context destroy: %v", err)
	}
}

func TestNoTLBConfigAlwaysWalks(t *testing.T) {
	u, mem := newTestIOMMU(t, 256, Disabled)
	_ = u.CreateContext(1)
	f, _ := mem.AllocFrames(1)
	_ = u.Map(1, 0, f, PermRW)
	for i := 0; i < 3; i++ {
		_, reads, err := u.Translate(1, 0, AccessRead)
		if err != nil {
			t.Fatal(err)
		}
		if reads != 4 {
			t.Fatalf("no-TLB translate did %d reads, want 4", reads)
		}
	}
	if u.Stats().TLBHits != 0 {
		t.Error("disabled TLB recorded hits")
	}
}

func TestTLBEviction(t *testing.T) {
	// 1 set x 1 way: second page evicts the first.
	u, mem := newTestIOMMU(t, 512, Config{TLBSets: 1, TLBWays: 1})
	_ = u.CreateContext(1)
	f1, _ := mem.AllocFrames(1)
	f2, _ := mem.AllocFrames(1)
	_ = u.Map(1, 0x1000, f1, PermRW)
	_ = u.Map(1, 0x2000, f2, PermRW)
	_, _, _ = u.Translate(1, 0x1000, AccessRead) // miss, fill
	_, _, _ = u.Translate(1, 0x2000, AccessRead) // miss, evict
	_, reads, _ := u.Translate(1, 0x1000, AccessRead)
	if reads == 0 {
		t.Error("expected eviction, got TLB hit")
	}
	st := u.Stats()
	if st.TLBMisses != 3 {
		t.Errorf("misses = %d, want 3", st.TLBMisses)
	}
}

func TestFlushTLB(t *testing.T) {
	u, mem := newTestIOMMU(t, 256, DefaultConfig)
	_ = u.CreateContext(1)
	f, _ := mem.AllocFrames(1)
	_ = u.Map(1, 0, f, PermRW)
	_, _, _ = u.Translate(1, 0, AccessRead)
	u.FlushTLB()
	_, reads, _ := u.Translate(1, 0, AccessRead)
	if reads == 0 {
		t.Error("translation hit after FlushTLB")
	}
}

func TestLookupMatchesTranslate(t *testing.T) {
	u, mem := newTestIOMMU(t, 512, DefaultConfig)
	_ = u.CreateContext(3)
	f, _ := mem.AllocFrames(1)
	_ = u.Map(3, 0x7000, f, AccessRead)
	got, perm, ok := u.Lookup(3, 0x7000)
	if !ok || got != f || perm != AccessRead {
		t.Errorf("Lookup = (%v, %v, %v)", got, perm, ok)
	}
	if _, _, ok := u.Lookup(3, 0x8000); ok {
		t.Error("Lookup found unmapped page")
	}
	if _, _, ok := u.Lookup(9, 0x7000); ok {
		t.Error("Lookup found page in unknown PASID")
	}
}

// Property: for random sets of page mappings, every mapped page translates
// to its exact frame and every unmapped probe faults.
func TestTranslationProperty(t *testing.T) {
	f := func(pages []uint16) bool {
		u, mem := newTestIOMMU(t, 2048, DefaultConfig)
		if err := u.CreateContext(1); err != nil {
			return false
		}
		mapped := make(map[VirtAddr]physmem.Frame)
		for _, pg := range pages {
			va := VirtAddr(pg) * physmem.PageSize
			if _, dup := mapped[va]; dup {
				continue
			}
			fr, err := mem.AllocFrames(1)
			if err != nil {
				break
			}
			if err := u.Map(1, va, fr, PermRW); err != nil {
				return false
			}
			mapped[va] = fr
		}
		for va, fr := range mapped {
			pa, _, err := u.Translate(1, va+5, AccessRead)
			if err != nil || pa != physmem.Addr(uint64(fr.Addr())+5) {
				return false
			}
		}
		// Probe a page guaranteed unmapped (beyond the 16-bit page space).
		if _, _, err := u.Translate(1, VirtAddr(1<<30), AccessRead); err == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFaultErrorText(t *testing.T) {
	f := &Fault{PASID: 3, Addr: 0x1000, Access: AccessWrite, Reason: FaultPermission}
	want := "iommu fault: write of va 0x1000 pasid 3: permission"
	if f.Error() != want {
		t.Errorf("Error() = %q, want %q", f.Error(), want)
	}
}
