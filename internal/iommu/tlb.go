package iommu

import "nocpu/internal/physmem"

// tlb is a set-associative translation cache keyed by (PASID, page).
// Replacement is LRU within a set, tracked with a monotonic use counter —
// deterministic, which the experiment harness depends on.
type tlb struct {
	sets    int
	ways    int
	entries []tlbEntry // sets*ways, set-major
	tick    uint64
}

type tlbEntry struct {
	valid bool
	pasid PASID
	page  VirtAddr
	frame physmem.Frame
	perm  Perm
	huge  bool // entry covers HugePageSize, page is huge-aligned
	used  uint64
}

// newTLB builds a TLB; sets <= 0 disables caching entirely (every
// translation walks), which is the E6 "no TLB" ablation point.
func newTLB(sets, ways int) *tlb {
	if sets <= 0 || ways <= 0 {
		return &tlb{}
	}
	// Force sets to a power of two for cheap indexing.
	s := 1
	for s < sets {
		s <<= 1
	}
	return &tlb{sets: s, ways: ways, entries: make([]tlbEntry, s*ways)}
}

func (t *tlb) disabled() bool { return t.sets == 0 }

func (t *tlb) setOf(p PASID, page VirtAddr) int {
	// Multiplicative mixing: huge pages have 9+ zero low bits in their
	// page number, so a plain low-bits index would pile them into a
	// handful of sets.
	h := (uint64(page>>physmem.PageShift) ^ uint64(p)) * 0x9e3779b97f4a7c15
	return int(h>>40) & (t.sets - 1)
}

// lookup probes both granularities: the 4K page and the huge page
// containing the address (hardware TLBs do the same with per-size arrays;
// we share one array and tag entries).
func (t *tlb) lookup(p PASID, page, hugePage VirtAddr) (*tlbEntry, bool) {
	if t.disabled() {
		return nil, false
	}
	if e, ok := t.probe(p, page, false); ok {
		return e, true
	}
	return t.probe(p, hugePage, true)
}

func (t *tlb) probe(p PASID, page VirtAddr, huge bool) (*tlbEntry, bool) {
	base := t.setOf(p, page) * t.ways
	for i := 0; i < t.ways; i++ {
		e := &t.entries[base+i]
		if e.valid && e.pasid == p && e.page == page && e.huge == huge {
			t.tick++
			e.used = t.tick
			return e, true
		}
	}
	return nil, false
}

func (t *tlb) insert(p PASID, page VirtAddr, frame physmem.Frame, perm Perm) {
	t.insertEntry(p, page, frame, perm, false)
}

func (t *tlb) insertHuge(p PASID, page VirtAddr, frame physmem.Frame, perm Perm) {
	t.insertEntry(p, page, frame, perm, true)
}

func (t *tlb) insertEntry(p PASID, page VirtAddr, frame physmem.Frame, perm Perm, huge bool) {
	if t.disabled() {
		return
	}
	base := t.setOf(p, page) * t.ways
	victim := base
	for i := 0; i < t.ways; i++ {
		e := &t.entries[base+i]
		if !e.valid {
			victim = base + i
			break
		}
		if e.used < t.entries[victim].used {
			victim = base + i
		}
	}
	t.tick++
	t.entries[victim] = tlbEntry{valid: true, pasid: p, page: page, frame: frame, perm: perm, huge: huge, used: t.tick}
}

func (t *tlb) invalidate(p PASID, page VirtAddr) {
	if t.disabled() {
		return
	}
	base := t.setOf(p, page) * t.ways
	for i := 0; i < t.ways; i++ {
		e := &t.entries[base+i]
		if e.valid && e.pasid == p && e.page == page && !e.huge {
			e.valid = false
		}
	}
}

func (t *tlb) invalidateHuge(p PASID, page VirtAddr) {
	if t.disabled() {
		return
	}
	base := t.setOf(p, page) * t.ways
	for i := 0; i < t.ways; i++ {
		e := &t.entries[base+i]
		if e.valid && e.pasid == p && e.page == page && e.huge {
			e.valid = false
		}
	}
}

func (t *tlb) flushPASID(p PASID) {
	for i := range t.entries {
		if t.entries[i].pasid == p {
			t.entries[i].valid = false
		}
	}
}

func (t *tlb) flushAll() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
}
