package iommu

import (
	"errors"
	"testing"

	"nocpu/internal/physmem"
)

// hugeRig allocates a memory large enough for huge-page runs.
func hugeRig(t *testing.T) (*IOMMU, *physmem.Memory) {
	t.Helper()
	mem := physmem.MustNew(4 * HugePageSize) // 8 MiB
	return New("huge", mem, DefaultConfig), mem
}

func allocHugeRun(t *testing.T, mem *physmem.Memory) physmem.Frame {
	t.Helper()
	f, err := mem.AllocFrames(HugeFrames)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(f)%uint64(HugeFrames) != 0 {
		t.Fatalf("buddy returned unaligned huge run: frame %d", f)
	}
	return f
}

func TestHugeMapTranslate(t *testing.T) {
	u, mem := hugeRig(t)
	if err := u.CreateContext(1); err != nil {
		t.Fatal(err)
	}
	run := allocHugeRun(t, mem)
	va := VirtAddr(HugePageSize) // 2 MiB, aligned
	if err := u.MapHuge(1, va, run, PermRW); err != nil {
		t.Fatal(err)
	}
	// Translation anywhere in the 2 MiB window works, with a 3-read walk
	// (one level shorter than 4K).
	off := uint64(1234567) % HugePageSize
	pa, reads, err := u.Translate(1, va+VirtAddr(off), AccessRead)
	if err != nil {
		t.Fatal(err)
	}
	if pa != physmem.Addr(uint64(run.Addr())+off) {
		t.Fatalf("pa = %#x", pa)
	}
	if reads != 3 {
		t.Fatalf("huge cold walk did %d reads, want 3", reads)
	}
	// Second access to a DIFFERENT 4K page within the huge page: TLB hit.
	_, reads, err = u.Translate(1, va+VirtAddr(5*physmem.PageSize), AccessWrite)
	if err != nil {
		t.Fatal(err)
	}
	if reads != 0 {
		t.Fatalf("huge TLB missed within its window (%d reads)", reads)
	}
	// Lookup agrees.
	fr, perm, ok := u.Lookup(1, va+VirtAddr(HugePageSize/2))
	if !ok || fr != run || perm != PermRW {
		t.Fatalf("Lookup = %v %v %v", fr, perm, ok)
	}
}

func TestHugeMapValidation(t *testing.T) {
	u, mem := hugeRig(t)
	_ = u.CreateContext(1)
	run := allocHugeRun(t, mem)
	if err := u.MapHuge(1, VirtAddr(4096), run, PermRW); err == nil {
		t.Error("unaligned huge va accepted")
	}
	if err := u.MapHuge(1, 0, run+1, PermRW); err == nil {
		t.Error("unaligned huge frame accepted")
	}
	if err := u.MapHuge(2, 0, run, PermRW); err == nil {
		t.Error("unknown pasid accepted")
	}
	if err := u.MapHuge(1, 0, run, 0); err == nil {
		t.Error("empty perms accepted")
	}
	if err := u.MapHuge(1, 0, run, AccessRead); err != nil {
		t.Fatal(err)
	}
	if err := u.MapHuge(1, 0, run, AccessRead); err == nil {
		t.Error("double huge map accepted")
	}
}

func TestHugeAnd4KConflicts(t *testing.T) {
	u, mem := hugeRig(t)
	_ = u.CreateContext(1)
	run := allocHugeRun(t, mem)
	f4k, _ := mem.AllocFrames(1)

	// 4K mapping inside a range, then huge map over it: refused (a table
	// occupies the level-2 slot).
	if err := u.Map(1, VirtAddr(HugePageSize+4096), f4k, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := u.MapHuge(1, VirtAddr(HugePageSize), run, PermRW); err == nil {
		t.Error("huge map over 4K table accepted")
	}
	// Huge mapping, then 4K map inside it: refused.
	if err := u.MapHuge(1, 0, run, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := u.Map(1, VirtAddr(8*physmem.PageSize), f4k, PermRW); err == nil {
		t.Error("4K map under huge mapping accepted")
	}
}

func TestHugeUnmap(t *testing.T) {
	u, mem := hugeRig(t)
	_ = u.CreateContext(1)
	run := allocHugeRun(t, mem)
	if err := u.MapHuge(1, 0, run, PermRW); err != nil {
		t.Fatal(err)
	}
	if _, _, err := u.Translate(1, 100, AccessRead); err != nil {
		t.Fatal(err)
	}
	if err := u.UnmapHuge(1, 0); err != nil {
		t.Fatal(err)
	}
	var fault *Fault
	if _, _, err := u.Translate(1, 100, AccessRead); !errors.As(err, &fault) {
		t.Fatalf("stale huge TLB after unmap: %v", err)
	}
	if err := u.UnmapHuge(1, 0); err == nil {
		t.Error("double huge unmap accepted")
	}
	// Unmapping a 4K page as huge is refused.
	f4k, _ := mem.AllocFrames(1)
	_ = u.Map(1, VirtAddr(HugePageSize), f4k, PermRW)
	if err := u.UnmapHuge(1, VirtAddr(HugePageSize)); err == nil {
		t.Error("huge unmap of 4K table accepted")
	}
}

func TestHugePermissionFaults(t *testing.T) {
	u, mem := hugeRig(t)
	_ = u.CreateContext(1)
	run := allocHugeRun(t, mem)
	if err := u.MapHuge(1, 0, run, AccessRead); err != nil {
		t.Fatal(err)
	}
	var fault *Fault
	if _, _, err := u.Translate(1, 50, AccessWrite); !errors.As(err, &fault) || fault.Reason != FaultPermission {
		t.Fatalf("write to RO huge page: %v", err)
	}
	// Also on the cached path.
	if _, _, err := u.Translate(1, 60, AccessRead); err != nil {
		t.Fatal(err)
	}
	if _, _, err := u.Translate(1, 70, AccessWrite); !errors.As(err, &fault) || fault.Reason != FaultPermission {
		t.Fatalf("cached write to RO huge page: %v", err)
	}
}

func TestHugeReachVsSmallTLB(t *testing.T) {
	// A tiny TLB thrashes on 4K mappings of a large region but holds a
	// single huge entry comfortably.
	mem := physmem.MustNew(8 * HugePageSize)
	small := Config{TLBSets: 4, TLBWays: 1}

	u4k := New("u4k", mem, small)
	_ = u4k.CreateContext(1)
	for i := 0; i < HugeFrames; i++ {
		f, err := mem.AllocFrames(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := u4k.Map(1, VirtAddr(i*physmem.PageSize), f, PermRW); err != nil {
			t.Fatal(err)
		}
	}
	uh := New("uh", mem, small)
	_ = uh.CreateContext(1)
	run := allocHugeRun(t, mem)
	if err := uh.MapHuge(1, 0, run, PermRW); err != nil {
		t.Fatal(err)
	}

	// Sweep 128 scattered pages twice.
	sweep := func(u *IOMMU) uint64 {
		before := u.Stats().WalkReads
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < 128; i++ {
				va := VirtAddr((i * 7 % HugeFrames) * physmem.PageSize)
				if _, _, err := u.Translate(1, va, AccessRead); err != nil {
					t.Fatal(err)
				}
			}
		}
		return u.Stats().WalkReads - before
	}
	w4k := sweep(u4k)
	wh := sweep(uh)
	if wh >= w4k/10 {
		t.Fatalf("huge reach ineffective: huge walks %d vs 4K walks %d", wh, w4k)
	}
}
