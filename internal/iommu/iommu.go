// Package iommu implements the per-device I/O memory management unit of
// the CPU-less machine.
//
// As §2.2 of "The Last CPU" prescribes, address translation is the
// cornerstone of isolation: every device access to physical memory is
// translated through that device's IOMMU, and the page tables are
// programmed only by the privileged system bus (never by the device
// itself, and never by another device's resource controller directly).
//
// The implementation is deliberately literal: page tables are real 4-level
// radix trees whose entries live in simulated physical memory, so a
// translation miss performs actual table-walk reads, and the walk cost the
// DMA engine charges corresponds to real accesses. A set-associative TLB
// in front of the walker makes the E6 ablation (TLB size/associativity vs
// throughput) meaningful.
package iommu

import (
	"fmt"
	"sort"

	"nocpu/internal/physmem"
)

// PASID identifies a process (application) address space on a device, as
// in PCIe PASID. PASID 0 is reserved/invalid.
type PASID uint32

// Access is the kind of memory access being translated.
type Access uint8

// Access kinds.
const (
	AccessRead Access = 1 << iota
	AccessWrite
)

func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessRead | AccessWrite:
		return "read|write"
	}
	return fmt.Sprintf("access(%d)", uint8(a))
}

// Perm is the permission set attached to a mapping.
type Perm = Access

// PermRW is the common read+write permission.
const PermRW = AccessRead | AccessWrite

// VirtAddr is a device-virtual address within a PASID address space.
type VirtAddr uint64

// Page returns the 4 KiB-aligned base of the address.
func (v VirtAddr) Page() VirtAddr { return v &^ (physmem.PageSize - 1) }

// Virtual address geometry: 4 levels x 9 bits + 12-bit offset = 48 bits.
const (
	levels      = 4
	bitsPerLvl  = 9
	entriesPerT = 1 << bitsPerLvl
	vaBits      = levels*bitsPerLvl + physmem.PageShift
	// MaxVirtAddr is the exclusive upper bound of translatable addresses.
	MaxVirtAddr = VirtAddr(1) << vaBits
)

// PTE bit layout.
const (
	pteValid = 1 << 0
	pteRead  = 1 << 1
	pteWrite = 1 << 2
	pteHuge  = 1 << 3 // level-2 leaf covering HugePageSize
	pteAddrM = ^uint64(physmem.PageSize-1) & ((1 << 52) - 1)
)

// HugePageSize is the large-page granule: one level-2 leaf spans 512 base
// pages (2 MiB), like x86 PMD mappings.
const HugePageSize = uint64(1) << (physmem.PageShift + bitsPerLvl)

// HugeFrames is the number of contiguous base frames backing a huge page.
const HugeFrames = int(HugePageSize / physmem.PageSize)

// HugePage returns the HugePageSize-aligned base of the address.
func (v VirtAddr) HugePage() VirtAddr { return v &^ VirtAddr(HugePageSize-1) }

// FaultReason says why a translation failed.
type FaultReason uint8

// Fault reasons.
const (
	FaultNotPresent FaultReason = iota + 1
	FaultPermission
	FaultBadPASID
	FaultOutOfRange
)

func (r FaultReason) String() string {
	switch r {
	case FaultNotPresent:
		return "not-present"
	case FaultPermission:
		return "permission"
	case FaultBadPASID:
		return "bad-pasid"
	case FaultOutOfRange:
		return "out-of-range"
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// Fault describes a failed translation. Per §4 of the paper, the IOMMU
// delivers faults to its attached device, which must handle them itself.
type Fault struct {
	PASID  PASID
	Addr   VirtAddr
	Access Access
	Reason FaultReason
}

func (f *Fault) Error() string {
	return fmt.Sprintf("iommu fault: %s of va %#x pasid %d: %s", f.Access, uint64(f.Addr), f.PASID, f.Reason)
}

// Stats counts translation activity for the experiment harness.
type Stats struct {
	Translations  uint64
	TLBHits       uint64
	TLBMisses     uint64
	WalkReads     uint64 // physical memory reads performed by table walks
	Faults        uint64
	DomainDenials uint64 // context/mapping attempts refused by the domain check
}

// IOMMU is one device's translation unit.
type IOMMU struct {
	mem  *physmem.Memory
	tlb  *tlb
	ctx  map[PASID]physmem.Addr // PASID -> root table base
	st   Stats
	name string
	// pageTableFrames tracks frames backing the radix trees per PASID so
	// DestroyContext can return them.
	tableFrames map[PASID][]physmem.Frame

	// domainCheck, when set, is consulted before a context is created or
	// extended: the tenancy layer's isolation-domain boundary, enforced
	// at the device. The IOMMU belongs to exactly one device, so even a
	// compromised kernel holding the IOMMU handle cannot program a
	// mapping the device's own domain check refuses. nil means no
	// tenancy (the default): any PASID may be instantiated.
	domainCheck func(PASID) error
}

// Config sets the TLB geometry. The zero value selects DefaultConfig;
// use Disabled (negative sets) for the no-TLB ablation.
type Config struct {
	TLBSets int // number of sets; < 0 disables the TLB, 0 means default
	TLBWays int // associativity
}

// DefaultConfig is a 64-set, 4-way TLB (256 entries), typical of device
// ATCs.
var DefaultConfig = Config{TLBSets: 64, TLBWays: 4}

// Disabled turns the TLB off entirely (every translation walks).
var Disabled = Config{TLBSets: -1}

// New returns an IOMMU backed by mem. name is used in error text.
func New(name string, mem *physmem.Memory, cfg Config) *IOMMU {
	if cfg.TLBSets == 0 && cfg.TLBWays == 0 {
		cfg = DefaultConfig
	}
	return &IOMMU{
		mem:         mem,
		tlb:         newTLB(cfg.TLBSets, cfg.TLBWays),
		ctx:         make(map[PASID]physmem.Addr),
		tableFrames: make(map[PASID][]physmem.Frame),
		name:        name,
	}
}

// Stats returns a copy of the counters.
func (u *IOMMU) Stats() Stats { return u.st }

// SetDomainCheck installs the tenancy domain check. The check sees every
// CreateContext, Map and MapHuge; a non-nil return refuses the operation
// with the check's (typed, attributed) error. Passing nil uninstalls it.
func (u *IOMMU) SetDomainCheck(check func(PASID) error) { u.domainCheck = check }

func (u *IOMMU) checkDomain(p PASID) error {
	if u.domainCheck == nil {
		return nil
	}
	if err := u.domainCheck(p); err != nil {
		u.st.DomainDenials++
		return err
	}
	return nil
}

// Contexts returns the number of live PASID contexts.
func (u *IOMMU) Contexts() int { return len(u.ctx) }

// PASIDs lists the live contexts in ascending order — the enumeration a
// (re)booting kernel needs to reinitialize translation hardware it drives
// by MMIO.
func (u *IOMMU) PASIDs() []PASID {
	out := make([]PASID, 0, len(u.ctx))
	for p := range u.ctx {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasContext reports whether the PASID has an address space.
func (u *IOMMU) HasContext(p PASID) bool {
	_, ok := u.ctx[p]
	return ok
}

// CreateContext allocates a fresh, empty address space for the PASID.
func (u *IOMMU) CreateContext(p PASID) error {
	if p == 0 {
		return fmt.Errorf("iommu %s: PASID 0 is reserved", u.name)
	}
	if _, ok := u.ctx[p]; ok {
		return fmt.Errorf("iommu %s: PASID %d already exists", u.name, p)
	}
	if err := u.checkDomain(p); err != nil {
		return err
	}
	root, err := u.allocTable(p)
	if err != nil {
		return err
	}
	u.ctx[p] = root
	return nil
}

// DestroyContext tears down the PASID's address space, freeing its page
// table frames and flushing its TLB entries.
func (u *IOMMU) DestroyContext(p PASID) error {
	if _, ok := u.ctx[p]; !ok {
		return fmt.Errorf("iommu %s: destroy of unknown PASID %d", u.name, p)
	}
	delete(u.ctx, p)
	for _, f := range u.tableFrames[p] {
		if err := u.mem.FreeFrames(f, 1); err != nil {
			return fmt.Errorf("iommu %s: freeing table frame: %w", u.name, err)
		}
	}
	delete(u.tableFrames, p)
	u.tlb.flushPASID(p)
	return nil
}

func (u *IOMMU) allocTable(p PASID) (physmem.Addr, error) {
	f, err := u.mem.AllocFrames(1)
	if err != nil {
		return 0, fmt.Errorf("iommu %s: allocating page table: %w", u.name, err)
	}
	u.tableFrames[p] = append(u.tableFrames[p], f)
	return f.Addr(), nil
}

func checkVA(va VirtAddr) error {
	if va >= MaxVirtAddr {
		return &Fault{Addr: va, Reason: FaultOutOfRange}
	}
	return nil
}

func idx(va VirtAddr, level int) uint64 {
	shift := physmem.PageShift + bitsPerLvl*(levels-1-level)
	return (uint64(va) >> shift) & (entriesPerT - 1)
}

// Map installs a translation va -> frame with the given permissions. va
// must be page-aligned. Intermediate tables are allocated on demand.
// Remapping an already-present page is rejected: the bus must unmap first,
// which keeps grant auditing simple.
func (u *IOMMU) Map(p PASID, va VirtAddr, frame physmem.Frame, perm Perm) error {
	root, ok := u.ctx[p]
	if !ok {
		return fmt.Errorf("iommu %s: map on unknown PASID %d", u.name, p)
	}
	if err := u.checkDomain(p); err != nil {
		return err
	}
	if va%physmem.PageSize != 0 {
		return fmt.Errorf("iommu %s: map of unaligned va %#x", u.name, uint64(va))
	}
	if err := checkVA(va); err != nil {
		return err
	}
	if perm&PermRW == 0 {
		return fmt.Errorf("iommu %s: map with empty permissions", u.name)
	}
	tbl := root
	for lvl := 0; lvl < levels-1; lvl++ {
		slot := physmem.Addr(uint64(tbl) + idx(va, lvl)*8)
		pte, err := u.mem.ReadU64(slot)
		if err != nil {
			return err
		}
		if pte&pteValid != 0 && pte&pteHuge != 0 {
			return fmt.Errorf("iommu %s: va %#x pasid %d covered by a huge mapping", u.name, uint64(va), p)
		}
		if pte&pteValid == 0 {
			next, err := u.allocTable(p)
			if err != nil {
				return err
			}
			pte = uint64(next)&pteAddrM | pteValid
			if err := u.mem.WriteU64(slot, pte); err != nil {
				return err
			}
		}
		tbl = physmem.Addr(pte & pteAddrM)
	}
	slot := physmem.Addr(uint64(tbl) + idx(va, levels-1)*8)
	pte, err := u.mem.ReadU64(slot)
	if err != nil {
		return err
	}
	if pte&pteValid != 0 {
		return fmt.Errorf("iommu %s: va %#x pasid %d already mapped", u.name, uint64(va), p)
	}
	pte = uint64(frame.Addr())&pteAddrM | pteValid
	if perm&AccessRead != 0 {
		pte |= pteRead
	}
	if perm&AccessWrite != 0 {
		pte |= pteWrite
	}
	return u.mem.WriteU64(slot, pte)
}

// MapHuge installs one HugePageSize translation at a level-2 leaf. va
// must be HugePageSize-aligned and frame must start a naturally aligned
// run of HugeFrames contiguous frames (the buddy allocator's
// power-of-two blocks satisfy this).
func (u *IOMMU) MapHuge(p PASID, va VirtAddr, frame physmem.Frame, perm Perm) error {
	root, ok := u.ctx[p]
	if !ok {
		return fmt.Errorf("iommu %s: map on unknown PASID %d", u.name, p)
	}
	if err := u.checkDomain(p); err != nil {
		return err
	}
	if uint64(va)%HugePageSize != 0 {
		return fmt.Errorf("iommu %s: huge map of unaligned va %#x", u.name, uint64(va))
	}
	if uint64(frame)%uint64(HugeFrames) != 0 {
		return fmt.Errorf("iommu %s: huge map of unaligned frame %d", u.name, frame)
	}
	if err := checkVA(va); err != nil {
		return err
	}
	if perm&PermRW == 0 {
		return fmt.Errorf("iommu %s: map with empty permissions", u.name)
	}
	tbl := root
	for lvl := 0; lvl < levels-2; lvl++ {
		slot := physmem.Addr(uint64(tbl) + idx(va, lvl)*8)
		pte, err := u.mem.ReadU64(slot)
		if err != nil {
			return err
		}
		if pte&pteValid != 0 && pte&pteHuge != 0 {
			return fmt.Errorf("iommu %s: va %#x pasid %d covered by a huge mapping", u.name, uint64(va), p)
		}
		if pte&pteValid == 0 {
			next, err := u.allocTable(p)
			if err != nil {
				return err
			}
			pte = uint64(next)&pteAddrM | pteValid
			if err := u.mem.WriteU64(slot, pte); err != nil {
				return err
			}
		}
		tbl = physmem.Addr(pte & pteAddrM)
	}
	slot := physmem.Addr(uint64(tbl) + idx(va, levels-2)*8)
	pte, err := u.mem.ReadU64(slot)
	if err != nil {
		return err
	}
	if pte&pteValid != 0 {
		// Either an existing huge leaf or a table of 4K mappings.
		return fmt.Errorf("iommu %s: va %#x pasid %d already mapped (huge or 4K table present)", u.name, uint64(va), p)
	}
	pte = uint64(frame.Addr())&pteAddrM | pteValid | pteHuge
	if perm&AccessRead != 0 {
		pte |= pteRead
	}
	if perm&AccessWrite != 0 {
		pte |= pteWrite
	}
	return u.mem.WriteU64(slot, pte)
}

// UnmapHuge removes a huge translation and invalidates its TLB entry.
func (u *IOMMU) UnmapHuge(p PASID, va VirtAddr) error {
	root, ok := u.ctx[p]
	if !ok {
		return fmt.Errorf("iommu %s: unmap on unknown PASID %d", u.name, p)
	}
	if uint64(va)%HugePageSize != 0 {
		return fmt.Errorf("iommu %s: huge unmap of unaligned va %#x", u.name, uint64(va))
	}
	if err := checkVA(va); err != nil {
		return err
	}
	tbl := root
	for lvl := 0; lvl < levels-2; lvl++ {
		pte, err := u.mem.ReadU64(physmem.Addr(uint64(tbl) + idx(va, lvl)*8))
		if err != nil {
			return err
		}
		if pte&pteValid == 0 {
			return fmt.Errorf("iommu %s: huge unmap of unmapped va %#x pasid %d", u.name, uint64(va), p)
		}
		tbl = physmem.Addr(pte & pteAddrM)
	}
	slot := physmem.Addr(uint64(tbl) + idx(va, levels-2)*8)
	pte, err := u.mem.ReadU64(slot)
	if err != nil {
		return err
	}
	if pte&pteValid == 0 || pte&pteHuge == 0 {
		return fmt.Errorf("iommu %s: huge unmap of non-huge va %#x pasid %d", u.name, uint64(va), p)
	}
	if err := u.mem.WriteU64(slot, 0); err != nil {
		return err
	}
	u.tlb.invalidateHuge(p, va.HugePage())
	return nil
}

// Unmap removes the translation for va and invalidates its TLB entry.
func (u *IOMMU) Unmap(p PASID, va VirtAddr) error {
	root, ok := u.ctx[p]
	if !ok {
		return fmt.Errorf("iommu %s: unmap on unknown PASID %d", u.name, p)
	}
	if err := checkVA(va); err != nil {
		return err
	}
	tbl := root
	for lvl := 0; lvl < levels-1; lvl++ {
		slot := physmem.Addr(uint64(tbl) + idx(va, lvl)*8)
		pte, err := u.mem.ReadU64(slot)
		if err != nil {
			return err
		}
		if pte&pteValid == 0 {
			return fmt.Errorf("iommu %s: unmap of unmapped va %#x pasid %d", u.name, uint64(va), p)
		}
		tbl = physmem.Addr(pte & pteAddrM)
	}
	slot := physmem.Addr(uint64(tbl) + idx(va, levels-1)*8)
	pte, err := u.mem.ReadU64(slot)
	if err != nil {
		return err
	}
	if pte&pteValid == 0 {
		return fmt.Errorf("iommu %s: unmap of unmapped va %#x pasid %d", u.name, uint64(va), p)
	}
	if err := u.mem.WriteU64(slot, 0); err != nil {
		return err
	}
	u.tlb.invalidate(p, va.Page())
	return nil
}

// Lookup reports the frame mapped at va without touching the TLB or the
// stats — used by audits and tests, not by the data path.
func (u *IOMMU) Lookup(p PASID, va VirtAddr) (physmem.Frame, Perm, bool) {
	root, ok := u.ctx[p]
	if !ok {
		return 0, 0, false
	}
	if va >= MaxVirtAddr {
		return 0, 0, false
	}
	tbl := root
	for lvl := 0; lvl < levels-1; lvl++ {
		pte, err := u.mem.ReadU64(physmem.Addr(uint64(tbl) + idx(va, lvl)*8))
		if err != nil || pte&pteValid == 0 {
			return 0, 0, false
		}
		if lvl == levels-2 && pte&pteHuge != 0 {
			var perm Perm
			if pte&pteRead != 0 {
				perm |= AccessRead
			}
			if pte&pteWrite != 0 {
				perm |= AccessWrite
			}
			return physmem.FrameOf(physmem.Addr(pte & pteAddrM)), perm, true
		}
		tbl = physmem.Addr(pte & pteAddrM)
	}
	pte, err := u.mem.ReadU64(physmem.Addr(uint64(tbl) + idx(va, levels-1)*8))
	if err != nil || pte&pteValid == 0 {
		return 0, 0, false
	}
	var perm Perm
	if pte&pteRead != 0 {
		perm |= AccessRead
	}
	if pte&pteWrite != 0 {
		perm |= AccessWrite
	}
	return physmem.FrameOf(physmem.Addr(pte & pteAddrM)), perm, true
}

// Translate resolves one access. On success it returns the physical
// address and the number of page-walk memory reads performed (0 on a TLB
// hit). On failure it returns a *Fault.
func (u *IOMMU) Translate(p PASID, va VirtAddr, access Access) (physmem.Addr, int, error) {
	u.st.Translations++
	if err := checkVA(va); err != nil {
		u.st.Faults++
		f := err.(*Fault)
		f.PASID, f.Access = p, access
		return 0, 0, f
	}
	root, ok := u.ctx[p]
	if !ok {
		u.st.Faults++
		return 0, 0, &Fault{PASID: p, Addr: va, Access: access, Reason: FaultBadPASID}
	}
	page := va.Page()
	off := uint64(va) & (physmem.PageSize - 1)
	if e, ok := u.tlb.lookup(p, page, va.HugePage()); ok {
		u.st.TLBHits++
		if e.perm&access != access {
			u.st.Faults++
			return 0, 0, &Fault{PASID: p, Addr: va, Access: access, Reason: FaultPermission}
		}
		if e.huge {
			hoff := uint64(va) & (HugePageSize - 1)
			return physmem.Addr(uint64(e.frame.Addr()) + hoff), 0, nil
		}
		return physmem.Addr(uint64(e.frame.Addr()) + off), 0, nil
	}
	u.st.TLBMisses++
	// Walk.
	tbl := root
	reads := 0
	for lvl := 0; lvl < levels-1; lvl++ {
		pte, err := u.mem.ReadU64(physmem.Addr(uint64(tbl) + idx(va, lvl)*8))
		reads++
		if err != nil {
			return 0, reads, err
		}
		if pte&pteValid == 0 {
			u.st.Faults++
			u.st.WalkReads += uint64(reads)
			return 0, reads, &Fault{PASID: p, Addr: va, Access: access, Reason: FaultNotPresent}
		}
		if lvl == levels-2 && pte&pteHuge != 0 {
			// Huge leaf: translation completes one level early.
			u.st.WalkReads += uint64(reads)
			var perm Perm
			if pte&pteRead != 0 {
				perm |= AccessRead
			}
			if pte&pteWrite != 0 {
				perm |= AccessWrite
			}
			frame := physmem.FrameOf(physmem.Addr(pte & pteAddrM))
			u.tlb.insertHuge(p, va.HugePage(), frame, perm)
			if perm&access != access {
				u.st.Faults++
				return 0, reads, &Fault{PASID: p, Addr: va, Access: access, Reason: FaultPermission}
			}
			hoff := uint64(va) & (HugePageSize - 1)
			return physmem.Addr(uint64(frame.Addr()) + hoff), reads, nil
		}
		tbl = physmem.Addr(pte & pteAddrM)
	}
	pte, err := u.mem.ReadU64(physmem.Addr(uint64(tbl) + idx(va, levels-1)*8))
	reads++
	u.st.WalkReads += uint64(reads)
	if err != nil {
		return 0, reads, err
	}
	if pte&pteValid == 0 {
		u.st.Faults++
		return 0, reads, &Fault{PASID: p, Addr: va, Access: access, Reason: FaultNotPresent}
	}
	var perm Perm
	if pte&pteRead != 0 {
		perm |= AccessRead
	}
	if pte&pteWrite != 0 {
		perm |= AccessWrite
	}
	frame := physmem.FrameOf(physmem.Addr(pte & pteAddrM))
	u.tlb.insert(p, page, frame, perm)
	if perm&access != access {
		u.st.Faults++
		return 0, reads, &Fault{PASID: p, Addr: va, Access: access, Reason: FaultPermission}
	}
	return physmem.Addr(uint64(frame.Addr()) + off), reads, nil
}

// FlushTLB discards all cached translations (e.g. after a device reset).
func (u *IOMMU) FlushTLB() { u.tlb.flushAll() }
