// Package netsim models the external network clients of §3: remote
// machines issuing requests to applications offloaded on the smart NIC.
//
// The generators are deterministic (seeded) and measure end-to-end
// client-observed latency. Two loop disciplines are provided: open loop
// (Poisson arrivals at a fixed offered rate — the standard way to expose
// queueing collapse) and closed loop (N workers, each one request in
// flight — the standard way to measure peak sustainable throughput).
package netsim

import (
	"nocpu/internal/metrics"
	"nocpu/internal/sim"
)

// Target is where generated requests go: the NIC edge (payload in, reply
// callback out).
type Target func(payload []byte, reply func([]byte))

// DefaultWireLatency is the one-way client<->NIC network latency.
const DefaultWireLatency = 2 * sim.Microsecond

// Stats summarizes one workload run.
type Stats struct {
	Sent      uint64
	Completed uint64
	Errors    uint64 // responses the classifier rejected
	Latency   *metrics.Histogram
	// Span is the time from first send to last completion.
	Span sim.Duration
}

// Throughput returns completions per second over the span.
func (s Stats) Throughput() float64 {
	if s.Span <= 0 {
		return 0
	}
	return float64(s.Completed) / (float64(s.Span) / float64(sim.Second))
}

// OpenLoop issues requests with exponential inter-arrival times at Rate
// requests/second for Duration, independent of responses.
type OpenLoop struct {
	Eng  *sim.Engine
	Rand *sim.Rand
	Rate float64
	// Duration is the generation window; the run ends when all in-flight
	// requests drain.
	Duration sim.Duration
	// Gen builds the i-th request payload.
	Gen func(r *sim.Rand, seq uint64) []byte
	// IsError classifies a response (nil = all succeed).
	IsError func(resp []byte) bool
	// WireLatency is the one-way network latency (defaulted).
	WireLatency sim.Duration
	Target      Target

	stats       Stats
	outstanding int
	generating  bool
	started     sim.Time
	lastDone    sim.Time
	onDone      func()
}

// Run starts the generator; done fires when the window has passed and all
// requests completed.
func (o *OpenLoop) Run(done func()) {
	if o.WireLatency == 0 {
		o.WireLatency = DefaultWireLatency
	}
	o.stats.Latency = metrics.NewHistogram()
	o.onDone = done
	o.generating = true
	o.started = o.Eng.Now()
	o.Eng.After(o.Duration, func() {
		o.generating = false
		o.maybeFinish()
	})
	o.scheduleNext()
}

// Stats returns the accumulated statistics (valid after done).
func (o *OpenLoop) Stats() Stats {
	s := o.stats
	s.Span = o.lastDone.Sub(o.started)
	return s
}

func (o *OpenLoop) scheduleNext() {
	if !o.generating {
		return
	}
	mean := sim.Duration(float64(sim.Second) / o.Rate)
	o.Eng.After(o.Rand.Exp(mean), func() {
		if !o.generating {
			return
		}
		o.fire()
		o.scheduleNext()
	})
}

func (o *OpenLoop) fire() {
	seq := o.stats.Sent
	o.stats.Sent++
	o.outstanding++
	payload := o.Gen(o.Rand, seq)
	t0 := o.Eng.Now()
	o.Eng.After(o.WireLatency, func() {
		o.Target(payload, func(resp []byte) {
			o.Eng.After(o.WireLatency, func() {
				o.stats.Completed++
				o.stats.Latency.Observe(o.Eng.Now().Sub(t0))
				if o.IsError != nil && o.IsError(resp) {
					o.stats.Errors++
				}
				o.lastDone = o.Eng.Now()
				o.outstanding--
				o.maybeFinish()
			})
		})
	})
}

func (o *OpenLoop) maybeFinish() {
	if !o.generating && o.outstanding == 0 && o.onDone != nil {
		cb := o.onDone
		o.onDone = nil
		cb()
	}
}

// ClosedLoop runs Workers concurrent clients, each with exactly one
// request in flight, until each has completed PerWorker requests.
type ClosedLoop struct {
	Eng       *sim.Engine
	Rand      *sim.Rand
	Workers   int
	PerWorker int
	Gen       func(r *sim.Rand, seq uint64) []byte
	IsError   func(resp []byte) bool
	// Think is an optional delay between a response and the next request.
	Think       sim.Duration
	WireLatency sim.Duration
	Target      Target

	stats    Stats
	started  sim.Time
	lastDone sim.Time
	active   int
	onDone   func()
	seq      uint64
}

// Run starts all workers; done fires when every worker finishes.
func (c *ClosedLoop) Run(done func()) {
	if c.WireLatency == 0 {
		c.WireLatency = DefaultWireLatency
	}
	c.stats.Latency = metrics.NewHistogram()
	c.onDone = done
	c.started = c.Eng.Now()
	c.active = c.Workers
	for w := 0; w < c.Workers; w++ {
		c.workerStep(0)
	}
}

// Stats returns the accumulated statistics (valid after done).
func (c *ClosedLoop) Stats() Stats {
	s := c.stats
	s.Span = c.lastDone.Sub(c.started)
	return s
}

func (c *ClosedLoop) workerStep(iter int) {
	if iter >= c.PerWorker {
		c.active--
		if c.active == 0 && c.onDone != nil {
			cb := c.onDone
			c.onDone = nil
			cb()
		}
		return
	}
	seq := c.seq
	c.seq++
	c.stats.Sent++
	payload := c.Gen(c.Rand, seq)
	t0 := c.Eng.Now()
	c.Eng.After(c.WireLatency, func() {
		c.Target(payload, func(resp []byte) {
			c.Eng.After(c.WireLatency, func() {
				c.stats.Completed++
				c.stats.Latency.Observe(c.Eng.Now().Sub(t0))
				if c.IsError != nil && c.IsError(resp) {
					c.stats.Errors++
				}
				c.lastDone = c.Eng.Now()
				if c.Think > 0 {
					c.Eng.After(c.Think, func() { c.workerStep(iter + 1) })
				} else {
					c.workerStep(iter + 1)
				}
			})
		})
	})
}
