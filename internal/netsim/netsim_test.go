package netsim

import (
	"testing"

	"nocpu/internal/sim"
)

// fixedServer answers every request after a constant service delay, with
// optional FIFO queueing (concurrency 1).
func fixedServer(eng *sim.Engine, service sim.Duration, serialize bool) Target {
	srv := sim.NewServer(eng)
	return func(payload []byte, reply func([]byte)) {
		if serialize {
			srv.Submit(service, func() { reply(payload) })
			return
		}
		eng.After(service, func() { reply(payload) })
	}
}

func TestClosedLoopCompletesAll(t *testing.T) {
	eng := sim.NewEngine()
	cl := &ClosedLoop{
		Eng: eng, Rand: sim.NewRand(1), Workers: 4, PerWorker: 25,
		Gen:    func(r *sim.Rand, seq uint64) []byte { return []byte{byte(seq)} },
		Target: fixedServer(eng, 10*sim.Microsecond, false),
	}
	finished := false
	cl.Run(func() { finished = true })
	eng.Run()
	st := cl.Stats()
	if !finished || st.Sent != 100 || st.Completed != 100 {
		t.Fatalf("finished=%v sent=%d done=%d", finished, st.Sent, st.Completed)
	}
	// Latency = 2 wire hops + service = 2*2us + 10us.
	if st.Latency.Min() != 14*sim.Microsecond {
		t.Errorf("min latency = %v, want 14us", st.Latency.Min())
	}
}

func TestClosedLoopThroughputMatchesLittle(t *testing.T) {
	// 4 workers, non-serialized 10us service + 4us wire: each worker
	// completes one op per 14us -> ~285k ops/s total.
	eng := sim.NewEngine()
	cl := &ClosedLoop{
		Eng: eng, Rand: sim.NewRand(1), Workers: 4, PerWorker: 1000,
		Gen:    func(r *sim.Rand, seq uint64) []byte { return nil },
		Target: fixedServer(eng, 10*sim.Microsecond, false),
	}
	cl.Run(nil)
	eng.Run()
	st := cl.Stats()
	tput := st.Throughput()
	if tput < 280e3 || tput > 290e3 {
		t.Errorf("throughput = %.0f, want ~285k", tput)
	}
}

func TestClosedLoopThink(t *testing.T) {
	eng := sim.NewEngine()
	cl := &ClosedLoop{
		Eng: eng, Rand: sim.NewRand(1), Workers: 1, PerWorker: 10,
		Think:  100 * sim.Microsecond,
		Gen:    func(r *sim.Rand, seq uint64) []byte { return nil },
		Target: fixedServer(eng, 10*sim.Microsecond, false),
	}
	cl.Run(nil)
	eng.Run()
	// 10 ops: each 14us RTT + 9 think gaps of 100us >= 1.04ms total.
	if eng.Now() < sim.Time(1*sim.Millisecond) {
		t.Errorf("finished at %v, think time not honored", eng.Now())
	}
}

func TestClosedLoopErrorClassifier(t *testing.T) {
	eng := sim.NewEngine()
	n := 0
	cl := &ClosedLoop{
		Eng: eng, Rand: sim.NewRand(1), Workers: 1, PerWorker: 10,
		Gen: func(r *sim.Rand, seq uint64) []byte { return []byte{byte(seq)} },
		IsError: func(resp []byte) bool {
			n++
			return resp[0]%2 == 0
		},
		Target: fixedServer(eng, 1, false),
	}
	cl.Run(nil)
	eng.Run()
	if st := cl.Stats(); st.Errors != 5 {
		t.Errorf("errors = %d, want 5", st.Errors)
	}
}

func TestOpenLoopOfferedRate(t *testing.T) {
	eng := sim.NewEngine()
	ol := &OpenLoop{
		Eng: eng, Rand: sim.NewRand(7), Rate: 100000, Duration: 50 * sim.Millisecond,
		Gen:    func(r *sim.Rand, seq uint64) []byte { return nil },
		Target: fixedServer(eng, 5*sim.Microsecond, false),
	}
	finished := false
	ol.Run(func() { finished = true })
	eng.Run()
	st := ol.Stats()
	if !finished {
		t.Fatal("never finished")
	}
	// ~100k/s over 50ms = ~5000 requests, Poisson noise ~±3 sigma.
	if st.Sent < 4600 || st.Sent > 5400 {
		t.Errorf("sent = %d, want ~5000", st.Sent)
	}
	if st.Completed != st.Sent {
		t.Errorf("completed %d != sent %d", st.Completed, st.Sent)
	}
}

func TestOpenLoopQueueingUnderOverload(t *testing.T) {
	// Serialized 20us server = 50k ops/s capacity; offer 100k. Latency
	// must blow up far beyond the unloaded 24us.
	eng := sim.NewEngine()
	ol := &OpenLoop{
		Eng: eng, Rand: sim.NewRand(7), Rate: 100000, Duration: 20 * sim.Millisecond,
		Gen:    func(r *sim.Rand, seq uint64) []byte { return nil },
		Target: fixedServer(eng, 20*sim.Microsecond, true),
	}
	ol.Run(nil)
	eng.Run()
	st := ol.Stats()
	if st.Latency.P99() < 500*sim.Microsecond {
		t.Errorf("p99 = %v under 2x overload; queueing model broken", st.Latency.P99())
	}
	// Throughput pinned at capacity.
	if tput := st.Throughput(); tput > 60e3 {
		t.Errorf("throughput %.0f exceeds server capacity", tput)
	}
}

func TestOpenLoopDeterminism(t *testing.T) {
	run := func() (uint64, sim.Duration) {
		eng := sim.NewEngine()
		ol := &OpenLoop{
			Eng: eng, Rand: sim.NewRand(42), Rate: 50000, Duration: 10 * sim.Millisecond,
			Gen:    func(r *sim.Rand, seq uint64) []byte { return nil },
			Target: fixedServer(eng, 10*sim.Microsecond, true),
		}
		ol.Run(nil)
		eng.Run()
		return ol.Stats().Sent, ol.Stats().Latency.P99()
	}
	s1, p1 := run()
	s2, p2 := run()
	if s1 != s2 || p1 != p2 {
		t.Errorf("non-deterministic: (%d,%v) vs (%d,%v)", s1, p1, s2, p2)
	}
}

func TestStatsThroughputZeroSpan(t *testing.T) {
	var s Stats
	if s.Throughput() != 0 {
		t.Error("zero-span throughput not 0")
	}
}
