// Package tenant is the multi-tenancy layer of the CPU-less machine:
// a registry binding devices and apps to isolation domains, per-tenant
// budgets layered on the PR-4 overload bounds, and the typed denial
// record every cross-tenant access attempt produces.
//
// The paper's §2.4 claims decentralized per-device control can answer
// the *security* question; this package makes the claim mechanical. A
// tenant's mappings live in disjoint IOMMU page-table roots (each
// device consults the registry before creating or extending a context),
// the bus refuses cross-tenant grants and scopes discovery broadcasts,
// and the KVS derives key ownership from a tenant prefix — so no single
// component, not even a compromised central kernel, can open a
// cross-tenant path without every enforcement point agreeing.
//
// Enforcement is deliberately passive and deterministic: the registry
// holds plain maps (no locks — everything runs on the one simulation
// engine), records every denial with attribution, and never schedules
// events itself.
package tenant

import (
	"fmt"
	"sort"

	"nocpu/internal/msg"
	"nocpu/internal/sim"
)

// ID names a tenant isolation domain. 0 means "untenanted": a device or
// app not bound to any tenant, which pre-tenancy configurations use
// everywhere — untenanted actors see the legacy, unrestricted behavior,
// which is how every knob defaults off.
type ID uint16

func (id ID) String() string {
	if id == 0 {
		return "untenanted"
	}
	return fmt.Sprintf("t%d", uint16(id))
}

// Class discriminates denial records: which enforcement point refused
// the access. The numeric values ride the DenialReport wire message.
type Class uint8

// Denial classes.
const (
	DenyInvalid     Class = iota
	DenyDMA               // IOMMU domain check: walk/map outside the tenant's domain
	DenyMapping           // bus refused programming a cross-tenant mapping
	DenyGrant             // bus refused a cross-tenant GrantReq
	DenyStaleCredit       // port refused a credit replenish fenced to a dead incarnation
	DenyStaleReplay       // bus fenced a stale-incarnation frame
	DenyDiscovery         // bus scoped a discovery broadcast away from another tenant
	DenyKVS               // kvs refused a cross-tenant key access
	DenyBudget            // a per-tenant budget (credits, inflight, rx) was exhausted
)

func (c Class) String() string {
	switch c {
	case DenyDMA:
		return "dma"
	case DenyMapping:
		return "mapping"
	case DenyGrant:
		return "grant"
	case DenyStaleCredit:
		return "stale-credit"
	case DenyStaleReplay:
		return "stale-replay"
	case DenyDiscovery:
		return "discovery"
	case DenyKVS:
		return "kvs"
	case DenyBudget:
		return "budget"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Budget declares a tenant's share of the machine's bounded resources.
// Zero fields inherit the global bound — a tenant without a declared
// budget competes in the shared pool like an untenanted actor.
type Budget struct {
	CreditWindow uint32 // per-tenant bus credit window
	KVSInflight  uint32 // per-tenant KVS admission concurrency
	RxBound      uint32 // per-tenant NIC rx-queue share
}

// Denial is one refused cross-tenant access, attributed to the tenant
// that attempted it. The S1 invariant says every attack produces one of
// these (typed, never a silent drop); the S3 invariant says Tenant is
// always the attacker.
type Denial struct {
	At     sim.Time
	Tenant ID // the attributed offender
	Victim ID // the targeted domain (0: infrastructure, not a tenant)
	Class  Class
	Detail string
}

// Error is the typed refusal handed back to the offender in Go call
// paths (IOMMU domain checks, KVS admission). Wire paths use
// msg.DenialReport instead; both carry the same attribution.
type Error struct {
	Tenant ID
	Victim ID
	Class  Class
	Detail string
}

func (e *Error) Error() string {
	return fmt.Sprintf("tenant: %v denied to %v (victim %v): %s", e.Class, e.Tenant, e.Victim, e.Detail)
}

// Registry is the tenancy control plane: who belongs to which domain,
// what budget each domain declared, and every denial recorded so far.
// One registry serves a whole configuration — in the fabric it is shared
// by all machines, which is deterministic because they share one engine.
type Registry struct {
	devs    map[msg.DeviceID]ID
	apps    map[msg.AppID]ID
	budgets map[ID]Budget

	denials []Denial
}

// NewRegistry returns an empty registry. An empty registry denies
// nothing: every actor is untenanted until bound.
func NewRegistry() *Registry {
	return &Registry{
		devs:    make(map[msg.DeviceID]ID),
		apps:    make(map[msg.AppID]ID),
		budgets: make(map[ID]Budget),
	}
}

// BindDevice places a device in a tenant domain.
func (r *Registry) BindDevice(d msg.DeviceID, t ID) { r.devs[d] = t }

// BindApp places an app (address space / PASID) in a tenant domain.
func (r *Registry) BindApp(a msg.AppID, t ID) { r.apps[a] = t }

// SetBudget declares a tenant's resource budget.
func (r *Registry) SetBudget(t ID, b Budget) { r.budgets[t] = b }

// Apply installs a TenantGrant received on the bus: bindings for the
// named device and/or app, and any declared budgets. Idempotent —
// re-applying the same grant is a no-op, so bus-level retries are safe.
func (r *Registry) Apply(g *msg.TenantGrant) {
	t := ID(g.Tenant)
	if t == 0 {
		return
	}
	if g.Device != 0 {
		r.devs[msg.DeviceID(g.Device)] = t
	}
	if g.App != 0 {
		r.apps[msg.AppID(g.App)] = t
	}
	if g.CreditWindow != 0 || g.KVSInflight != 0 || g.RxBound != 0 {
		b := r.budgets[t]
		if g.CreditWindow != 0 {
			b.CreditWindow = g.CreditWindow
		}
		if g.KVSInflight != 0 {
			b.KVSInflight = g.KVSInflight
		}
		if g.RxBound != 0 {
			b.RxBound = g.RxBound
		}
		r.budgets[t] = b
	}
}

// DeviceTenant returns the domain a device is bound to (0: untenanted).
func (r *Registry) DeviceTenant(d msg.DeviceID) ID { return r.devs[d] }

// AppTenant returns the domain an app is bound to (0: untenanted).
func (r *Registry) AppTenant(a msg.AppID) ID { return r.apps[a] }

// Budget returns the declared budget for a tenant (zero value: inherit
// global bounds).
func (r *Registry) Budget(t ID) Budget { return r.budgets[t] }

// CheckDevApp is the domain check behind every per-device IOMMU: may
// device d instantiate or extend a context for app a? Allowed when
// either side is untenanted (legacy behavior) or both are in the same
// domain; anything else is a typed, attributed denial. This is the
// check that holds even when a compromised central kernel misprograms a
// mapping — the kernel holds the IOMMU handle, but the IOMMU consults
// the registry, not the kernel.
func (r *Registry) CheckDevApp(d msg.DeviceID, a msg.AppID) error {
	dt, at := r.devs[d], r.apps[a]
	if dt == 0 || at == 0 || dt == at {
		return nil
	}
	return &Error{Tenant: dt, Victim: at, Class: DenyDMA,
		Detail: fmt.Sprintf("%v may not map app %d owned by %v", d, a, at)}
}

// DomainCheckFor returns the closure a device installs into its IOMMU
// (via iommu.SetDomainCheck, adapted to the PASID type at the call
// site). AppID doubles as the PASID, so the check is a direct lookup.
func (r *Registry) DomainCheckFor(d msg.DeviceID) func(app msg.AppID) error {
	return func(app msg.AppID) error { return r.CheckDevApp(d, app) }
}

// SameDomain reports whether two devices may see each other's control
// traffic (discovery scoping): true when either is untenanted or both
// share a domain.
func (r *Registry) SameDomain(a, b msg.DeviceID) bool {
	at, bt := r.devs[a], r.devs[b]
	return at == 0 || bt == 0 || at == bt
}

// Record appends an attributed denial. Every enforcement point calls
// this alongside its typed refusal, so the ledger can audit S1/S3 from
// the registry alone.
func (r *Registry) Record(at sim.Time, attacker, victim ID, class Class, detail string) {
	r.denials = append(r.denials, Denial{At: at, Tenant: attacker, Victim: victim, Class: class, Detail: detail})
}

// RecordError records a typed *Error denial (the Go-call-path twin of
// Record).
func (r *Registry) RecordError(at sim.Time, e *Error) {
	r.Record(at, e.Tenant, e.Victim, e.Class, e.Detail)
}

// Denials returns all recorded denials in record order (which is
// deterministic simulation order).
func (r *Registry) Denials() []Denial { return r.denials }

// DenialsBy returns the denials attributed to one tenant.
func (r *Registry) DenialsBy(t ID) []Denial {
	var out []Denial
	for _, d := range r.denials {
		if d.Tenant == t {
			out = append(out, d)
		}
	}
	return out
}

// ClassCounts tallies denials per class, sorted by class, for table
// rendering.
func (r *Registry) ClassCounts() []struct {
	Class Class
	N     int
} {
	m := make(map[Class]int)
	for _, d := range r.denials {
		m[d.Class]++
	}
	classes := make([]Class, 0, len(m))
	for c := range m {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	out := make([]struct {
		Class Class
		N     int
	}, 0, len(classes))
	for _, c := range classes {
		out = append(out, struct {
			Class Class
			N     int
		}{c, m[c]})
	}
	return out
}
