package tenant

import (
	"errors"
	"testing"

	"nocpu/internal/msg"
)

func TestEmptyRegistryDeniesNothing(t *testing.T) {
	r := NewRegistry()
	if err := r.CheckDevApp(3, 100); err != nil {
		t.Fatalf("untenanted check: %v", err)
	}
	if !r.SameDomain(1, 2) {
		t.Fatal("untenanted devices must share the legacy broadcast domain")
	}
	if got := r.DeviceTenant(3); got != 0 {
		t.Fatalf("DeviceTenant = %v, want untenanted", got)
	}
}

func TestDomainCheck(t *testing.T) {
	r := NewRegistry()
	r.BindDevice(3, 1)
	r.BindDevice(4, 2)
	r.BindApp(100, 1)
	r.BindApp(200, 2)

	// Same domain: allowed.
	if err := r.CheckDevApp(3, 100); err != nil {
		t.Fatalf("same-domain check: %v", err)
	}
	// Either side untenanted: allowed (legacy behavior).
	if err := r.CheckDevApp(3, 999); err != nil {
		t.Fatalf("untenanted app check: %v", err)
	}
	if err := r.CheckDevApp(9, 100); err != nil {
		t.Fatalf("untenanted device check: %v", err)
	}
	// Cross-domain: typed, attributed denial.
	err := r.CheckDevApp(3, 200)
	var te *Error
	if !errors.As(err, &te) {
		t.Fatalf("cross-domain check: got %v, want *tenant.Error", err)
	}
	if te.Tenant != 1 || te.Victim != 2 || te.Class != DenyDMA {
		t.Fatalf("denial attribution: %+v", te)
	}

	// The per-device closure is the same check.
	check := r.DomainCheckFor(4)
	if err := check(200); err != nil {
		t.Fatalf("closure same-domain: %v", err)
	}
	if err := check(100); err == nil {
		t.Fatal("closure cross-domain: want denial")
	}

	if r.SameDomain(3, 4) {
		t.Fatal("cross-tenant devices must not share a broadcast domain")
	}
	if !r.SameDomain(3, 9) {
		t.Fatal("untenanted device shares every broadcast domain")
	}
}

func TestApplyGrantIdempotent(t *testing.T) {
	r := NewRegistry()
	g := &msg.TenantGrant{Tenant: 2, Device: 7, App: 0x100, CreditWindow: 16, KVSInflight: 8, RxBound: 4}
	r.Apply(g)
	r.Apply(g) // idempotent
	if r.DeviceTenant(7) != 2 || r.AppTenant(0x100) != 2 {
		t.Fatal("grant bindings not applied")
	}
	b := r.Budget(2)
	if b.CreditWindow != 16 || b.KVSInflight != 8 || b.RxBound != 4 {
		t.Fatalf("budget = %+v", b)
	}

	// Partial grant updates only the named fields.
	r.Apply(&msg.TenantGrant{Tenant: 2, KVSInflight: 12})
	b = r.Budget(2)
	if b.CreditWindow != 16 || b.KVSInflight != 12 {
		t.Fatalf("partial budget update = %+v", b)
	}

	// Tenant 0 is invalid and ignored.
	r.Apply(&msg.TenantGrant{Tenant: 0, Device: 9})
	if r.DeviceTenant(9) != 0 {
		t.Fatal("tenant-0 grant must be ignored")
	}
}

func TestDenialRecordAndClassCounts(t *testing.T) {
	r := NewRegistry()
	r.Record(10, 2, 1, DenyGrant, "grant refused")
	r.Record(20, 2, 1, DenyGrant, "grant refused again")
	r.RecordError(30, &Error{Tenant: 2, Victim: 1, Class: DenyDMA, Detail: "walk refused"})
	if n := len(r.Denials()); n != 3 {
		t.Fatalf("denials = %d, want 3", n)
	}
	if n := len(r.DenialsBy(2)); n != 3 {
		t.Fatalf("denials by attacker = %d, want 3", n)
	}
	if n := len(r.DenialsBy(1)); n != 0 {
		t.Fatalf("denials by victim = %d, want 0", n)
	}
	cc := r.ClassCounts()
	if len(cc) != 2 || cc[0].Class != DenyDMA || cc[0].N != 1 || cc[1].Class != DenyGrant || cc[1].N != 2 {
		t.Fatalf("class counts = %+v", cc)
	}
}

func TestLedgerS1(t *testing.T) {
	l := NewLedger(2, 1)
	l.NoteAttack(DenyDMA, false, true, "refused with fault")
	l.NoteAttack(DenyKVS, true, false, "cross-tenant read went through")
	l.NoteAttack(DenyGrant, false, false, "silently dropped")
	rep := l.Report()
	if rep.Attacks != 3 || rep.S1Viols != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Clean() {
		t.Fatal("run with S1 violations must not be clean")
	}
}

func TestLedgerS3Attribution(t *testing.T) {
	l := NewLedger(2, 1)
	l.AuditAttribution([]Denial{
		{Tenant: 2, Victim: 1, Class: DenyGrant},
		{Tenant: 1, Victim: 2, Class: DenyGrant}, // misattributed to victim
		{Tenant: 3, Victim: 1, Class: DenyKVS},   // bystander
	})
	rep := l.Report()
	if rep.S3Viols != 2 {
		t.Fatalf("S3 violations = %d, want 2", rep.S3Viols)
	}
}

func TestLedgerS3Containment(t *testing.T) {
	l := NewLedger(2, 1)
	l.AuditContainment(5, 0)
	if rep := l.Report(); rep.S3Viols != 0 {
		t.Fatalf("contained run: %+v", rep)
	}
	l2 := NewLedger(2, 1)
	l2.AuditContainment(0, 3)
	if rep := l2.Report(); rep.S3Viols != 2 {
		t.Fatalf("uncontained run: %+v", rep)
	}
}

func TestLedgerS2(t *testing.T) {
	l := NewLedger(2, 1)
	l.AuditGoodput(1000, 900, 100, 150, 0.8, 2.0)
	if rep := l.Report(); rep.S2Viols != 0 {
		t.Fatalf("within-bound run: %+v", rep)
	}
	l2 := NewLedger(2, 1)
	l2.AuditGoodput(1000, 500, 100, 250, 0.8, 2.0)
	if rep := l2.Report(); rep.S2Viols != 2 {
		t.Fatalf("out-of-bound run: %+v", rep)
	}
}
