package tenant

import (
	"fmt"

	"nocpu/internal/sim"
)

// Ledger is the tenancy oracle, in the chaos/overload style: the
// experiment feeds it what the adversary attempted and what the victim
// measured, it reads the registry's denial record, and it judges the
// three security invariants from those observations alone:
//
//	S1  no cross-tenant read or write ever succeeds — every attack is
//	    refused with a typed denial, never silently dropped;
//	S2  a well-behaved tenant's goodput and p99 under active attack stay
//	    within a declared bound of its unattacked baseline (performance
//	    isolation as a security property);
//	S3  containment — every denial is attributed to the attacking
//	    tenant, the victim accrues no denials, and only the attacker's
//	    budget is exhausted.
type Ledger struct {
	Attacker ID
	Victim   ID

	attacks uint64
	s1Viols uint64
	s2Viols uint64
	s3Viols uint64

	violations []string
}

// NewLedger returns a ledger judging an attack run by Attacker against
// Victim.
func NewLedger(attacker, victim ID) *Ledger {
	return &Ledger{Attacker: attacker, Victim: victim}
}

// NoteAttack records the outcome of one attack attempt. succeeded means
// the cross-tenant access went through (always an S1 violation); typed
// means the attacker observed a typed refusal (a denial record, error,
// NACK or DenialReport) rather than silence.
func (l *Ledger) NoteAttack(class Class, succeeded, typed bool, detail string) {
	l.attacks++
	if succeeded {
		l.s1Viols++
		l.note("S1: %v attack succeeded: %s", class, detail)
		return
	}
	if !typed {
		l.s1Viols++
		l.note("S1: %v attack refused silently (no typed denial): %s", class, detail)
	}
}

// AuditAttribution judges S3's attribution half against the registry's
// denial record: every denial accrued during the attack run must name
// the attacker, and none may name the victim as offender.
func (l *Ledger) AuditAttribution(denials []Denial) {
	for _, d := range denials {
		switch d.Tenant {
		case l.Attacker:
			// attributed correctly
		case l.Victim:
			l.s3Viols++
			l.note("S3: denial misattributed to victim %v: %v %s", d.Tenant, d.Class, d.Detail)
		default:
			l.s3Viols++
			l.note("S3: denial attributed to bystander %v: %v %s", d.Tenant, d.Class, d.Detail)
		}
	}
}

// AuditContainment judges S3's budget half: the attack must have
// exhausted the attacker's budget (its pressure was absorbed somewhere
// bounded) while leaving the victim's budget untouched.
func (l *Ledger) AuditContainment(attackerExhaustions, victimExhaustions uint64) {
	if attackerExhaustions == 0 {
		l.s3Viols++
		l.note("S3: attacker budget never exhausted — attack pressure was not contained by a bound")
	}
	if victimExhaustions != 0 {
		l.s3Viols++
		l.note("S3: victim budget exhausted %d times by the attack", victimExhaustions)
	}
}

// AuditGoodput judges S2: under attack the victim must retain at least
// minFrac of its baseline goodput, and its p99 must not exceed
// maxP99Mult times the baseline p99.
func (l *Ledger) AuditGoodput(baseOps, attackedOps float64, baseP99, attackedP99 sim.Duration, minFrac, maxP99Mult float64) {
	if baseOps > 0 && attackedOps < minFrac*baseOps {
		l.s2Viols++
		l.note("S2: victim goodput %.0f under attack < %.2f x baseline %.0f", attackedOps, minFrac, baseOps)
	}
	if baseP99 > 0 && float64(attackedP99) > maxP99Mult*float64(baseP99) {
		l.s2Viols++
		l.note("S2: victim p99 %v under attack > %.1f x baseline %v", attackedP99, maxP99Mult, baseP99)
	}
}

func (l *Ledger) note(format string, args ...any) {
	const maxViolations = 16
	if len(l.violations) < maxViolations {
		l.violations = append(l.violations, fmt.Sprintf(format, args...))
	}
}

// Report is the aggregated verdict of one attack run.
type Report struct {
	Attacks uint64
	S1Viols uint64 // cross-tenant accesses that succeeded or were silently dropped
	S2Viols uint64 // victim goodput/p99 excursions beyond the declared bound
	S3Viols uint64 // misattributed denials or uncontained budget damage

	Violations []string // first few violations, for diagnostics
}

// Report tallies the run.
func (l *Ledger) Report() Report {
	return Report{
		Attacks:    l.attacks,
		S1Viols:    l.s1Viols,
		S2Viols:    l.s2Viols,
		S3Viols:    l.s3Viols,
		Violations: append([]string(nil), l.violations...),
	}
}

// Clean reports whether the run upheld all three invariants.
func (r Report) Clean() bool {
	return r.S1Viols == 0 && r.S2Viols == 0 && r.S3Viols == 0
}
