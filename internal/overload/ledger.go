package overload

import (
	"fmt"

	"nocpu/internal/metrics"
)

// Ledger aggregates one campaign's evidence and renders verdicts on the
// three overload guarantees (Q1–Q3, see the package comment). It is
// passive: experiments register the queues they care about and record
// each step's result; Audit only inspects what was recorded.
type Ledger struct {
	gauges []watchedGauge
	steps  []StepResult
}

type watchedGauge struct {
	name string
	g    *metrics.Gauge
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

// Watch registers a bounded queue's depth gauge for the Q1 audit. Call
// it after the step that exercised the queue (gauges carry watermarks,
// so watching once after the run sees the whole campaign — but a fresh
// machine per step means watching per step; both work).
func (l *Ledger) Watch(name string, g *metrics.Gauge) {
	if g == nil {
		return
	}
	l.gauges = append(l.gauges, watchedGauge{name: name, g: g})
}

// Record appends one step's measured result.
func (l *Ledger) Record(s StepResult) { l.steps = append(l.steps, s) }

// Steps returns the recorded results in record order.
func (l *Ledger) Steps() []StepResult { return l.steps }

// Q2Ratio is the graceful-degradation floor: goodput at the stress
// multiplier must be at least this fraction of goodput at saturation.
const Q2Ratio = 0.8

// Audit returns every guarantee violation found, empty if the campaign
// is clean.
//
//	Q1: every watched gauge's max depth stayed within its bound
//	    (unbounded gauges — bound 0 — are reported as violations too:
//	    watching one means the experiment expected a bound).
//	Q2: goodput at multiplier 2 ≥ Q2Ratio × goodput at multiplier 1,
//	    when both steps were recorded.
//	Q3: every step resolved every sent request (ok+late+shed+error).
func (l *Ledger) Audit() []string {
	var bad []string
	for _, w := range l.gauges {
		switch {
		case w.g.Bound() <= 0:
			bad = append(bad, fmt.Sprintf("Q1: queue %q is watched but has no bound", w.name))
		case w.g.Exceeded():
			bad = append(bad, fmt.Sprintf("Q1: queue %q reached depth %d, bound %d",
				w.name, w.g.Max(), w.g.Bound()))
		}
	}
	var base, stress *StepResult
	for i := range l.steps {
		s := &l.steps[i]
		switch s.Multiplier {
		case 1:
			base = s
		case 2:
			stress = s
		}
	}
	if base != nil && stress != nil {
		if floor := Q2Ratio * base.Goodput; stress.Goodput < floor {
			bad = append(bad, fmt.Sprintf(
				"Q2: goodput collapsed under overload: %.0f/s at 2x < %.0f/s (%.0f%% of %.0f/s at 1x)",
				stress.Goodput, floor, 100*Q2Ratio, base.Goodput))
		}
	}
	for _, s := range l.steps {
		if got := s.Resolved(); got != s.Sent {
			bad = append(bad, fmt.Sprintf(
				"Q3: step %gx lost work silently: sent %d, resolved %d (ok %d late %d shed %d err %d)",
				s.Multiplier, s.Sent, got, s.OK, s.Late, s.Shed, s.Errors))
		}
	}
	return bad
}
