package overload

import (
	"strings"
	"testing"

	"nocpu/internal/metrics"
	"nocpu/internal/netsim"
	"nocpu/internal/sim"
)

func validPlan() Plan {
	return Plan{
		Seed:        7,
		Saturation:  100000,
		Multipliers: []float64{0.25, 0.5, 1, 2, 4},
		Window:      10 * sim.Millisecond,
		Deadline:    sim.Millisecond,
	}
}

func TestCompileDeterministic(t *testing.T) {
	a := validPlan().MustCompile()
	b := validPlan().MustCompile()
	if len(a.Steps) != len(b.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(a.Steps), len(b.Steps))
	}
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			t.Fatalf("step %d differs: %+v vs %+v", i, a.Steps[i], b.Steps[i])
		}
	}
	if a.String() != b.String() {
		t.Fatalf("timetables differ:\n%s\nvs\n%s", a, b)
	}
}

func TestCompileSeedChangesSteps(t *testing.T) {
	p := validPlan()
	a := p.MustCompile()
	p.Seed++
	b := p.MustCompile()
	same := true
	for i := range a.Steps {
		if a.Steps[i].Seed != b.Steps[i].Seed {
			same = false
		}
		// Rates are seed-independent: they come from the plan alone.
		if a.Steps[i].Rate != b.Steps[i].Rate {
			t.Fatalf("step %d rate changed with seed: %v vs %v", i, a.Steps[i].Rate, b.Steps[i].Rate)
		}
	}
	if same {
		t.Fatal("different seeds compiled identical generator seeds")
	}
}

func TestCompileValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Plan)
		want string
	}{
		{"zero saturation", func(p *Plan) { p.Saturation = 0 }, "saturation"},
		{"no multipliers", func(p *Plan) { p.Multipliers = nil }, "no multipliers"},
		{"zero window", func(p *Plan) { p.Window = 0 }, "window"},
		{"negative deadline", func(p *Plan) { p.Deadline = -1 }, "deadline"},
		{"negative multiplier", func(p *Plan) { p.Multipliers = []float64{1, -2} }, "multiplier"},
	}
	for _, c := range cases {
		p := validPlan()
		c.mut(&p)
		_, err := p.Compile()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// echoTarget replies after a fixed service delay (infinite concurrency —
// a pure delay line, no queueing).
func echoTarget(eng *sim.Engine, service sim.Duration) netsim.Target {
	return func(p []byte, reply func([]byte)) {
		eng.After(service, func() { reply([]byte{0}) })
	}
}

func TestRunStepClassifiesOutcomes(t *testing.T) {
	eng := sim.NewEngine()
	p := Plan{
		Seed:        3,
		Saturation:  1e6, // 1 req/us offered at 1x
		Multipliers: []float64{1},
		Window:      sim.Millisecond,
		Deadline:    100 * sim.Microsecond,
	}
	r := p.MustCompile()
	// Service takes 50us: with 2us wire each way the round trip is
	// ~54us, inside the 100us deadline, so everything is OK.
	res := r.RunStep(0, eng, echoTarget(eng, 50*sim.Microsecond),
		func(rd *sim.Rand, seq uint64, deadline uint64) []byte {
			if deadline == 0 {
				t.Fatal("deadline not stamped")
			}
			return []byte{1}
		},
		func(resp []byte) Outcome { return OutcomeOK })
	if res.Sent == 0 {
		t.Fatal("no requests sent")
	}
	if res.OK != res.Sent || res.Late+res.Shed+res.Errors != 0 {
		t.Fatalf("want all OK, got %+v", res)
	}
	if res.Resolved() != res.Sent {
		t.Fatalf("Q3 broken in harness itself: %+v", res)
	}
	if res.Goodput <= 0 {
		t.Fatalf("goodput not computed: %+v", res)
	}
}

func TestRunStepMarksLate(t *testing.T) {
	eng := sim.NewEngine()
	p := Plan{
		Seed:        3,
		Saturation:  100000,
		Multipliers: []float64{1},
		Window:      sim.Millisecond,
		Deadline:    10 * sim.Microsecond, // < service time: all late
	}
	r := p.MustCompile()
	res := r.RunStep(0, eng, echoTarget(eng, 50*sim.Microsecond),
		func(rd *sim.Rand, seq uint64, deadline uint64) []byte { return []byte{1} },
		func(resp []byte) Outcome { return OutcomeOK })
	if res.Late != res.Sent {
		t.Fatalf("want all late, got %+v", res)
	}
	if res.Goodput != 0 {
		t.Fatalf("late work counted as goodput: %+v", res)
	}
}

func TestRunStepDeterministic(t *testing.T) {
	run := func() StepResult {
		eng := sim.NewEngine()
		r := validPlan().MustCompile()
		return r.RunStep(2, eng, echoTarget(eng, 5*sim.Microsecond),
			func(rd *sim.Rand, seq uint64, deadline uint64) []byte { return []byte{1} },
			func(resp []byte) Outcome { return OutcomeOK })
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical plans produced different results:\n%+v\n%+v", a, b)
	}
}

func TestLedgerQ1(t *testing.T) {
	l := NewLedger()
	ok := metrics.NewGauge(4)
	ok.Set(4)
	bad := metrics.NewGauge(4)
	bad.Set(5)
	bad.Set(0)
	unbounded := metrics.NewGauge(0)
	l.Watch("fine", ok)
	l.Watch("blown", bad)
	l.Watch("unbounded", unbounded)
	l.Watch("ignored-nil", nil)
	got := l.Audit()
	if len(got) != 2 {
		t.Fatalf("want 2 violations, got %v", got)
	}
	if !strings.Contains(got[0], "unbounded") && !strings.Contains(got[1], "unbounded") {
		t.Errorf("unbounded watched gauge not reported: %v", got)
	}
	if !strings.Contains(strings.Join(got, "\n"), `"blown" reached depth 5`) {
		t.Errorf("blown bound not reported: %v", got)
	}
}

func TestLedgerQ2(t *testing.T) {
	l := NewLedger()
	l.Record(StepResult{Multiplier: 1, Sent: 10, OK: 10, Goodput: 1000})
	l.Record(StepResult{Multiplier: 2, Sent: 20, OK: 7, Shed: 13, Goodput: 700})
	got := l.Audit()
	if len(got) != 1 || !strings.Contains(got[0], "Q2") {
		t.Fatalf("want one Q2 violation, got %v", got)
	}
	// At exactly the floor it passes.
	l2 := NewLedger()
	l2.Record(StepResult{Multiplier: 1, Sent: 10, OK: 10, Goodput: 1000})
	l2.Record(StepResult{Multiplier: 2, Sent: 20, OK: 8, Shed: 12, Goodput: 800})
	if got := l2.Audit(); len(got) != 0 {
		t.Fatalf("floor goodput flagged: %v", got)
	}
	// Missing 2x step: Q2 not judged.
	l3 := NewLedger()
	l3.Record(StepResult{Multiplier: 1, Sent: 10, OK: 10, Goodput: 1000})
	if got := l3.Audit(); len(got) != 0 {
		t.Fatalf("partial ramp flagged: %v", got)
	}
}

func TestLedgerQ3(t *testing.T) {
	l := NewLedger()
	l.Record(StepResult{Multiplier: 4, Sent: 10, OK: 5, Late: 1, Shed: 3, Errors: 1})
	if got := l.Audit(); len(got) != 0 {
		t.Fatalf("fully resolved step flagged: %v", got)
	}
	l.Record(StepResult{Multiplier: 2, Sent: 10, OK: 5, Shed: 3})
	got := l.Audit()
	if len(got) != 1 || !strings.Contains(got[0], "Q3") {
		t.Fatalf("want one Q3 violation, got %v", got)
	}
}
