// Package overload is the deterministic open-loop load-ramp harness for
// the overload-resilience experiments. A Plan names a machine's measured
// saturation throughput and the statistical shape of a ramp campaign
// (which offered-load multipliers to visit, how long each step generates,
// what per-request deadline clients carry); Compile turns it into a fixed
// step table using nothing but the plan's seed, and RunStep drives one
// step's Poisson arrivals through netsim against a NIC edge, classifying
// every response at client completion time.
//
// The package also carries the Ledger, the oracle for the three overload
// guarantees the experiments assert:
//
//	Q1 — bounded queues: no watched queue's depth watermark ever exceeds
//	     its configured bound (credit stall FIFOs, bus ingress, NIC rx,
//	     DMA windows, the kernel's mediated-I/O backlog).
//	Q2 — graceful degradation: goodput at 2× saturation stays at or above
//	     80% of goodput at saturation — overload sheds load instead of
//	     collapsing into queueing.
//	Q3 — no silent loss: every issued request resolves to exactly one of
//	     ok / late / shed / error; shed work is refused with an explicit
//	     response, never dropped on the floor.
//
// Determinism: Compile draws per-step generator seeds from a private
// sim.Rand seeded only by Plan.Seed, and each step's OpenLoop uses its
// own seed, so the same plan produces the same arrival sequence on every
// run regardless of what else the caller's RNGs have consumed.
package overload

import (
	"fmt"
	"strings"

	"nocpu/internal/netsim"
	"nocpu/internal/sim"
)

// Plan is the declarative description of a load-ramp campaign against
// one machine configuration.
type Plan struct {
	Seed uint64 // RNG seed; the only source of randomness
	// Saturation is the machine's measured peak sustainable throughput
	// (requests/second, typically from a closed-loop calibration run).
	// Step offered rates are Multiplier × Saturation.
	Saturation float64
	// Multipliers are the offered-load points to visit, as fractions of
	// Saturation (e.g. 0.25, 0.5, 1, 2, 4).
	Multipliers []float64
	// Window is each step's generation window; the step ends when all
	// in-flight requests resolve.
	Window sim.Duration
	// Deadline, when nonzero, is the per-request latency budget: each
	// request is stamped with absolute deadline issue-time+Deadline, and
	// an OK response arriving after its deadline counts as late, not
	// goodput.
	Deadline sim.Duration
}

// Step is one compiled ramp point.
type Step struct {
	Multiplier float64
	Rate       float64 // offered requests/second
	Seed       uint64  // private generator seed for this step
}

// Ramp is a compiled, immutable load timetable.
type Ramp struct {
	plan  Plan
	Steps []Step
}

// Compile fixes the campaign into a step table. It validates the plan
// and derives one generator seed per step from the plan seed, so a
// step's arrival process depends only on (Plan.Seed, step index) — runs
// are reproducible even when steps execute against freshly built
// machines.
func (p Plan) Compile() (*Ramp, error) {
	if p.Saturation <= 0 {
		return nil, fmt.Errorf("overload: saturation %v must be positive", p.Saturation)
	}
	if len(p.Multipliers) == 0 {
		return nil, fmt.Errorf("overload: no multipliers")
	}
	if p.Window <= 0 {
		return nil, fmt.Errorf("overload: window %v must be positive", p.Window)
	}
	if p.Deadline < 0 {
		return nil, fmt.Errorf("overload: negative deadline %v", p.Deadline)
	}
	for i, m := range p.Multipliers {
		if m <= 0 {
			return nil, fmt.Errorf("overload: multiplier %d (%v) must be positive", i, m)
		}
	}
	rng := sim.NewRand(p.Seed ^ 0x6f766c64) // "ovld"
	r := &Ramp{plan: p}
	for _, m := range p.Multipliers {
		r.Steps = append(r.Steps, Step{
			Multiplier: m,
			Rate:       m * p.Saturation,
			Seed:       rng.Uint64(),
		})
	}
	return r, nil
}

// MustCompile is Compile for fixed plans in experiments and tests.
func (p Plan) MustCompile() *Ramp {
	r, err := p.Compile()
	if err != nil {
		panic(err)
	}
	return r
}

// Plan returns the compiled plan.
func (r *Ramp) Plan() Plan { return r.plan }

// String renders the step table, one step per line ("0: 0.25x 30000/s").
func (r *Ramp) String() string {
	var b strings.Builder
	for i, s := range r.Steps {
		fmt.Fprintf(&b, "%d: %gx %.0f/s\n", i, s.Multiplier, s.Rate)
	}
	return b.String()
}

// Outcome classifies one response at client completion time.
type Outcome int

// Response outcomes. Every issued request resolves to exactly one.
const (
	// OutcomeOK: served successfully within the deadline (goodput).
	OutcomeOK Outcome = iota
	// OutcomeLate: served successfully but past the deadline — work the
	// machine should have shed (it was already dead to the client).
	OutcomeLate
	// OutcomeShed: explicitly refused under load (admission control,
	// edge shedding). The refusal is the resolution — not silent loss.
	OutcomeShed
	// OutcomeError: any other failure.
	OutcomeError
)

// StepResult is one step's measured outcome.
type StepResult struct {
	Multiplier float64
	Rate       float64 // offered rate
	Sent       uint64
	OK         uint64 // within-deadline successes
	Late       uint64
	Shed       uint64
	Errors     uint64
	Goodput    float64 // OK per second over the step span
	P50        sim.Duration
	P99        sim.Duration
}

// Resolved is the number of requests that got a definite outcome.
func (s StepResult) Resolved() uint64 { return s.OK + s.Late + s.Shed + s.Errors }

// RunStep executes step i of the ramp against target: a Poisson open
// loop at the step's rate for the plan's window, each request stamped
// with its absolute deadline, the engine driven until every request
// resolves. gen builds the i-th payload (deadline is 0 when the plan has
// none); classify maps a response to its outcome (late-ness is applied
// here, after classification, so classify only inspects bytes).
func (r *Ramp) RunStep(i int, eng *sim.Engine, target netsim.Target,
	gen func(rd *sim.Rand, seq uint64, deadline uint64) []byte,
	classify func(resp []byte) Outcome) StepResult {

	step := r.Steps[i]
	res := StepResult{Multiplier: step.Multiplier, Rate: step.Rate}
	wire := netsim.DefaultWireLatency
	ol := &netsim.OpenLoop{
		Eng:         eng,
		Rand:        sim.NewRand(step.Seed),
		Rate:        step.Rate,
		Duration:    r.plan.Window,
		WireLatency: wire,
		Gen: func(rd *sim.Rand, seq uint64) []byte {
			var dl uint64
			if r.plan.Deadline > 0 {
				dl = uint64(eng.Now().Add(r.plan.Deadline))
			}
			return gen(rd, seq, dl)
		},
		Target: func(p []byte, reply func([]byte)) {
			// Requests reach the edge exactly one wire latency after
			// generation, so the stamped deadline is recoverable here
			// without threading state: issue = now - wire.
			var dl sim.Time
			if r.plan.Deadline > 0 {
				dl = eng.Now().Add(r.plan.Deadline - wire)
			}
			target(p, func(resp []byte) {
				// The client observes the response one wire latency
				// from now; late-ness is judged at that instant.
				out := classify(resp)
				if out == OutcomeOK && dl > 0 && eng.Now().Add(wire) > dl {
					out = OutcomeLate
				}
				switch out {
				case OutcomeOK:
					res.OK++
				case OutcomeLate:
					res.Late++
				case OutcomeShed:
					res.Shed++
				default:
					res.Errors++
				}
				reply(resp)
			})
		},
	}
	done := false
	ol.Run(func() { done = true })
	deadline := eng.Now().Add(r.plan.Window + 30*sim.Second)
	for !done && eng.Now() < deadline {
		eng.RunFor(sim.Millisecond)
	}
	if !done {
		panic(fmt.Sprintf("overload: step %d (%gx) did not drain within 30s past its window", i, step.Multiplier))
	}
	st := ol.Stats()
	res.Sent = st.Sent
	if span := st.Span; span > 0 {
		res.Goodput = float64(res.OK) / (float64(span) / float64(sim.Second))
	}
	res.P50 = st.Latency.P50()
	res.P99 = st.Latency.P99()
	return res
}
