package exp

import (
	"encoding/binary"
	"fmt"

	"nocpu/internal/fabric"
	"nocpu/internal/kvs"
	"nocpu/internal/metrics"
	"nocpu/internal/msg"
	"nocpu/internal/reconcile"
	"nocpu/internal/sim"
)

// E19 is the self-healing fleet experiment: a rack under a declarative
// reconciler (internal/reconcile) is subjected to one campaign per cell
// — a machine kill, then a rolling config upgrade v1→v2, then a
// same-frame DOUBLE kill landing mid-upgrade — while a per-op-timeout
// write workload measures the disruption clients actually see. Four
// verdicts per cell:
//
//	C1 — every divergence (kill, spec change) converges within the bound
//	C2 — no acked write lost across any reconcile action (fabric R1/R2)
//	C3 — voluntary disruption never exceeds the maxUnavailable budget
//	R3 — every touched key routable once the dust settles
//
// plus the disruption profile: goodput floor (worst bucket vs peak) and
// put tail latency across the whole campaign. Both control
// architectures run the same campaign; under the head-node flavor the
// head can never rotate ITSELF out of the ring to flash, so it finishes
// the campaign pinned on config v1 — the "upgraded" column and the
// notes call out that asymmetry.

// E19 tuning. The campaign window must cover a full rolling upgrade at
// N=16 (each rotation pays a cordon, a staged transfer, a commit, and a
// 2ms flash of the victim); the converge budget past the workload
// window is generous because the double kill mid-upgrade forces a
// repair before rotations resume. Bucketed goodput uses 4ms buckets so
// a single in-flight op timeout (25ms) is visible as a multi-bucket
// dip, not averaged away.
const (
	e19Spares     = 2
	e19MaxUnavail = 1
	e19Workers    = 4
	e19KeysPer    = 4
	e19Warmup     = 2 * sim.Millisecond
	e19Window     = 120 * sim.Millisecond
	e19Tail       = 10 * sim.Millisecond
	e19Timeout    = 25 * sim.Millisecond
	e19Backoff    = 200 * sim.Microsecond
	e19Bucket     = 4 * sim.Millisecond

	e19KillAt    = 6 * sim.Millisecond
	e19UpgradeAt = 16 * sim.Millisecond
	e19DoubleAt  = 40 * sim.Millisecond

	e19ConvergeBudget = 600 * sim.Millisecond
)

func e19Key(i int) string { return fmt.Sprintf("e19-%05d", i) }

func e19Keys() []string {
	out := make([]string, e19Workers*e19KeysPer)
	for i := range out {
		out[i] = e19Key(i)
	}
	return out
}

// e19Driver is the campaign workload: the e17 per-op-timeout write loop
// extended with a put-latency histogram and bucketed goodput, so the
// table can show the dip reconcile actions cost the client.
type e19Driver struct {
	cl  *fabric.Cluster
	led *fabric.Ledger

	start   sim.Time
	stopAt  sim.Time
	nextVal uint64
	rr      int
	puts    uint64
	tmouts  uint64
	errs    uint64
	done    int

	lat     *metrics.Histogram
	buckets []uint64 // acks per e19Bucket, fixed length — no growth mid-run
}

// ingress round-robins over the machines currently serving (alive, in
// ring, not cordoned); any of them can route any key. Falls back to any
// live machine in the instant between a kill and the repair commit.
func (d *e19Driver) ingress() msg.DeviceID {
	ids := d.cl.ServingIDs()
	if len(ids) == 0 {
		ids = d.cl.LiveIDs()
	}
	d.rr++
	return ids[d.rr%len(ids)]
}

func (d *e19Driver) bucketAck() {
	i := int(d.cl.Eng.Now().Sub(d.start) / e19Bucket)
	if i >= 0 && i < len(d.buckets) {
		d.buckets[i]++
	}
}

func (d *e19Driver) worker(w int) {
	eng := d.cl.Eng
	keyIdx := 0
	var issue func()
	issue = func() {
		if eng.Now() >= d.stopAt {
			d.done++
			return
		}
		key := e19Key(w*e19KeysPer + keyIdx)
		keyIdx = (keyIdx + 1) % e19KeysPer
		d.nextVal++
		val := d.nextVal
		d.led.NoteAttempt(key, val)
		d.puts++
		issued := eng.Now()
		resolved := false
		var tm *sim.Timer
		req := kvs.EncodeRequest(kvs.Request{Op: kvs.OpPut, Key: key, Value: e15Value(val)})
		d.cl.Ingress(d.ingress())(req, func(b []byte) {
			resp, err := kvs.DecodeResponse(b)
			ok := err == nil && resp.Status == kvs.StatusOK
			if ok {
				d.led.NoteAck(key, val)
				d.bucketAck()
			}
			if resolved {
				return
			}
			resolved = true
			if tm != nil {
				tm.Stop()
			}
			if !ok {
				d.errs++
				eng.After(e19Backoff, issue)
				return
			}
			d.lat.Observe(eng.Now().Sub(issued))
			issue()
		})
		tm = eng.After(e19Timeout, func() {
			if resolved {
				return
			}
			resolved = true
			d.tmouts++
			issue()
		})
	}
	issue()
}

// readback sweeps every touched key once the fleet has converged; a key
// with no definitive answer after the retry budget is an R3 violation.
func (d *e19Driver) readback() {
	eng := d.cl.Eng
	for _, key := range d.led.Keys() {
		settled := false
		for attempt := 0; attempt < 40 && !settled; attempt++ {
			var resp kvs.Response
			got := false
			req := kvs.EncodeRequest(kvs.Request{Op: kvs.OpGet, Key: key})
			d.cl.Ingress(d.ingress())(req, func(b []byte) {
				if r, err := kvs.DecodeResponse(b); err == nil {
					resp, got = r, true
				}
			})
			lim := eng.Now().Add(20 * sim.Millisecond)
			for !got && eng.Now() < lim {
				eng.RunFor(100 * sim.Microsecond)
			}
			if got && resp.Status == kvs.StatusOK && len(resp.Value) == 8 {
				d.led.NoteRead(key, binary.LittleEndian.Uint64(resp.Value), true)
				settled = true
			} else if got && resp.Status == kvs.StatusNotFound {
				d.led.NoteRead(key, 0, false)
				settled = true
			} else {
				eng.RunFor(500 * sim.Microsecond)
			}
		}
		if !settled {
			d.led.NoteUnroutable(key)
		}
	}
}

// e19SingleVictim picks the first scripted kill: the highest-ID serving
// machine that is not the head. Any single victim is safe at
// replication factor 2 — the surviving replica covers every key.
func e19SingleVictim(cl *fabric.Cluster) msg.DeviceID {
	head := cl.Machines[0].Router.Head()
	var victim msg.DeviceID
	for _, id := range cl.ServingIDs() {
		if id != head && id > victim {
			victim = id
		}
	}
	return victim
}

// e19Quiesced reports whether no live machine has a staged ring
// transition. The double kill waits for this instant: mid-transfer, a
// key's only copies can sit on its CURRENT owners while the staged
// owners are still syncing, so no pair of machines is provably safe to
// kill together until the transition lands.
func e19Quiesced(cl *fabric.Cluster) bool {
	for _, id := range cl.LiveIDs() {
		if cl.Machine(id).Router.PendingVer() != 0 {
			return false
		}
	}
	return true
}

// e19SafePair picks two serving machines that do not jointly hold the
// only copies of any workload key under the committed ring — the
// honest boundary of a replication-factor-2 fabric: any pair that is
// not a replica pair may die in the SAME event frame without data
// loss. The head is never a victim (SPOF by construction, as in E17).
func e19SafePair(cl *fabric.Cluster, keys []string) (msg.DeviceID, msg.DeviceID) {
	serving := cl.ServingIDs()
	if len(serving) < 4 {
		return 0, 0
	}
	head := cl.Machines[0].Router.Head()
	dead := make(map[msg.DeviceID]bool)
	for _, id := range cl.MachineIDs() {
		if !cl.Alive(id) {
			dead[id] = true
		}
	}
	reps := cl.Cfg.Replicas
	if reps <= 0 {
		reps = DefaultReplicasE19
	}
	ring := fabric.NewRing(cl.Machine(serving[0]).Router.RingMembers(), cl.Cfg.Vnodes)
	replicaPair := make(map[[2]msg.DeviceID]bool)
	soleOwner := make(map[msg.DeviceID]bool)
	for _, k := range keys {
		own := ring.Owners(k, dead, reps)
		switch len(own) {
		case 1:
			soleOwner[own[0]] = true
		case 2:
			p := [2]msg.DeviceID{own[0], own[1]}
			if p[0] > p[1] {
				p[0], p[1] = p[1], p[0]
			}
			replicaPair[p] = true
		}
	}
	for i := 0; i < len(serving); i++ {
		for j := i + 1; j < len(serving); j++ {
			a, b := serving[i], serving[j]
			if a == head || b == head || soleOwner[a] || soleOwner[b] {
				continue
			}
			if !replicaPair[[2]msg.DeviceID{a, b}] {
				return a, b
			}
		}
	}
	return 0, 0
}

// DefaultReplicasE19 mirrors the fabric's replica default for the
// safe-pair scan when the cluster config left it zero.
const DefaultReplicasE19 = 2

// e19Row is one campaign's outcome.
type e19Row struct {
	n      int
	flavor fabric.Flavor
	kills  int

	rep   fabric.Report
	fleet reconcile.Report

	puts   uint64
	tmouts uint64
	errs   uint64

	lat         *metrics.Histogram
	floor, peak uint64

	upgraded  string
	converged bool
	maxEpoch  uint32
}

// e19Campaign runs one cell: boot N machines plus spares, attach the
// reconciler, and fire the scripted campaign under the write workload.
func e19Campaign(n int, flavor fabric.Flavor) e19Row {
	seed := uint64(0xE19)<<8 | uint64(n)
	if flavor == fabric.FlavorHead {
		seed ^= 0x4EAD
	}
	cl := fabric.MustNew(fabric.Config{
		N: n, Spares: e19Spares, Flavor: flavor, Seed: seed, MachineMemory: e17Memory,
	})
	if err := cl.Boot(); err != nil {
		panic(fmt.Sprintf("exp: e19 boot: %v", err))
	}
	fl := reconcile.Attach(cl, reconcile.Config{
		Spec: reconcile.Spec{Size: n, ConfigVersion: 1, MaxUnavailable: e19MaxUnavail},
	})
	eng := cl.Eng
	d := &e19Driver{cl: cl, led: fabric.NewLedger(), lat: metrics.NewHistogram()}
	d.start = eng.Now()
	d.stopAt = d.start.Add(e19Warmup + e19Window + e19Tail)
	d.buckets = make([]uint64, int((e19Warmup+e19Window+e19Tail)/e19Bucket))

	kills := 0
	eng.At(d.start.Add(e19KillAt), func() {
		if v := e19SingleVictim(cl); v != 0 {
			fl.Kill(v)
			kills++
		}
	})
	eng.At(d.start.Add(e19UpgradeAt), func() {
		fl.SetSpec(reconcile.Spec{Size: n, ConfigVersion: 2, MaxUnavailable: e19MaxUnavail})
	})
	// The double kill lands at the first quiescent instant at or after
	// its scheduled time: both victims die in ONE event frame, zero
	// virtual time apart — the concurrent-failure case E15/E17 only
	// approached sequentially.
	var tryDouble func()
	tryDouble = func() {
		if !e19Quiesced(cl) {
			eng.After(2*sim.Millisecond, tryDouble)
			return
		}
		a, b := e19SafePair(cl, e19Keys())
		if a == 0 || b == 0 {
			return
		}
		fl.Kill(a)
		fl.Kill(b)
		kills += 2
	}
	eng.At(d.start.Add(e19DoubleAt), tryDouble)

	for w := 0; w < e19Workers; w++ {
		d.worker(w)
	}
	deadline := eng.Now().Add(30 * sim.Second)
	for d.done != e19Workers && eng.Now() < deadline {
		eng.RunFor(sim.Millisecond)
	}
	if d.done != e19Workers {
		panic("exp: e19 workload did not drain")
	}
	convergeBy := d.start.Add(e19ConvergeBudget)
	for !fl.Converged() && eng.Now() < convergeBy {
		eng.RunFor(sim.Millisecond)
	}
	eng.RunFor(2 * sim.Millisecond) // let the probe close the final windows
	d.readback()

	row := e19Row{
		n: n, flavor: flavor, kills: kills,
		rep: d.led.Report(), fleet: fl.Report(),
		puts: d.puts, tmouts: d.tmouts, errs: d.errs,
		lat: d.lat, converged: fl.Converged(), maxEpoch: cl.MaxEpoch(),
	}
	// Goodput floor/peak over full buckets past the ramp-up bucket.
	for i := 1; i < len(d.buckets); i++ {
		b := d.buckets[i]
		if b > row.peak {
			row.peak = b
		}
		if i == 1 || b < row.floor {
			row.floor = b
		}
	}
	live := cl.LiveIDs()
	up := 0
	for _, id := range live {
		if cl.Machine(id).Router.ConfigVersion() >= 2 {
			up++
		}
	}
	row.upgraded = fmt.Sprintf("%d/%d", up, len(live))
	return row
}

// e19Baseline runs the same workload window with NO reconciler and no
// chaos: the undisturbed goodput/latency reference the campaign rows
// are read against.
func e19Baseline(n int, flavor fabric.Flavor) e19Row {
	seed := uint64(0xE19B)<<8 | uint64(n)
	if flavor == fabric.FlavorHead {
		seed ^= 0x4EAD
	}
	cl := fabric.MustNew(fabric.Config{
		N: n, Flavor: flavor, Seed: seed, MachineMemory: e17Memory,
	})
	if err := cl.Boot(); err != nil {
		panic(fmt.Sprintf("exp: e19 boot: %v", err))
	}
	eng := cl.Eng
	d := &e19Driver{cl: cl, led: fabric.NewLedger(), lat: metrics.NewHistogram()}
	d.start = eng.Now()
	d.stopAt = d.start.Add(e19Warmup + e19Window + e19Tail)
	d.buckets = make([]uint64, int((e19Warmup+e19Window+e19Tail)/e19Bucket))
	for w := 0; w < e19Workers; w++ {
		d.worker(w)
	}
	deadline := eng.Now().Add(30 * sim.Second)
	for d.done != e19Workers && eng.Now() < deadline {
		eng.RunFor(sim.Millisecond)
	}
	if d.done != e19Workers {
		panic("exp: e19 baseline did not drain")
	}
	d.readback()
	row := e19Row{
		n: n, flavor: flavor,
		rep: d.led.Report(), puts: d.puts, tmouts: d.tmouts, errs: d.errs, lat: d.lat,
	}
	for i := 1; i < len(d.buckets); i++ {
		b := d.buckets[i]
		if b > row.peak {
			row.peak = b
		}
		if i == 1 || b < row.floor {
			row.floor = b
		}
	}
	return row
}

func e19Floor(r e19Row) string {
	if r.peak == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%d%%", r.floor*100/r.peak)
}

// E19SelfHealing runs the self-healing fleet tables.
func E19SelfHealing() *Result {
	res := &Result{ID: "E19", Title: "Self-healing fleet: reconciliation, live membership change, concurrent failures"}

	sizes := []int{8, 16}
	flavors := []fabric.Flavor{fabric.FlavorDecentralized, fabric.FlavorHead}

	disrupt := metrics.NewTable(
		fmt.Sprintf("campaign per cell: kill at +%v, rolling upgrade v1→v2 from +%v, same-frame double kill from +%v (%d spares, maxUnavailable=%d, %d writers; baseline rows run the same window undisturbed)",
			e19KillAt, e19UpgradeAt, e19DoubleAt, e19Spares, e19MaxUnavail, e19Workers),
		"machines", "flavor", "campaign", "kills", "puts", "acked", "timeouts",
		"lost acked (R1)", "dup applies (R2)", "unroutable (R3)",
		"goodput floor", "p50 put", "p99 put")
	conv := metrics.NewTable(
		fmt.Sprintf("convergence and reconcile activity (C1 bound %v; C3 audited every %v)",
			reconcile.DefaultBound, reconcile.DefaultProbeEvery),
		"machines", "flavor", "windows", "max window", "C1 viol", "C3 viol",
		"repairs", "swaps", "shrinks", "aborts", "commits", "upgraded", "max epoch")

	for _, n := range sizes {
		for _, flavor := range flavors {
			base := e19Baseline(n, flavor)
			disrupt.AddRow(n, flavor.String(), "baseline", 0, base.puts, base.rep.Acks,
				base.tmouts, base.rep.G1Lost, base.rep.G2Dups, len(base.rep.Unroutable),
				e19Floor(base), base.lat.P50(), base.lat.P99())

			row := e19Campaign(n, flavor)
			disrupt.AddRow(n, flavor.String(), "chaos+upgrade", row.kills, row.puts, row.rep.Acks,
				row.tmouts, row.rep.G1Lost, row.rep.G2Dups, len(row.rep.Unroutable),
				e19Floor(row), row.lat.P50(), row.lat.P99())

			st := row.fleet.Stats
			conv.AddRow(n, flavor.String(), len(row.fleet.Windows), row.fleet.MaxWindow(),
				row.fleet.C1Violations, row.fleet.C3Violations,
				st.Repairs, st.Swaps, st.Shrinks, st.Aborts, st.Commits,
				row.upgraded, row.maxEpoch)
		}
	}
	res.Tables = append(res.Tables, disrupt, conv)

	res.Notes = append(res.Notes,
		"the reconciler is pure policy over the fabric's mechanisms: level-triggered agents re-derive (spec, observed conditions) → action every tick, so lost frames and dead coordinators cost a retry, never correctness",
		"every ring change is one staged two-phase transition (prepare/transfer/commit) riding the consistent-hash ring's minimal-movement property; writes replicate to the UNION of current and staged owners, which is why no campaign loses an acked write (C2 via R1/R2)",
		"the double kill fires in ONE event frame — zero virtual time between deaths — at a quiescent instant, with victims chosen to not be a replica pair: the honest boundary of a replication-factor-2 fabric (killing both copies of a key legitimately loses it, same rule as E17)",
		"C3 (disruption budget): voluntary actions — cordons and shrink-for-upgrade — may never push serving capacity below size − maxUnavailable − involuntary losses; the audit samples every probe tick, including mid-transition instants",
		"under the head-node flavor the head cannot rotate itself out of the ring to flash: it IS the control plane, so it finishes every campaign pinned on config v1 (the 'upgraded' column stays one short) — decentralized actors hand the reconciler role to the next machine and upgrade themselves last",
		"goodput floor is the worst 4ms ack bucket over the campaign as a fraction of the best; the dip tracks op timeouts (25ms) on writes in flight at each kill, not reconcile actions themselves — planned rotations drain cordoned members first",
	)
	return res
}
