package exp

import (
	"reflect"
	"testing"
)

// TestE15Guarantees is the chaos test tier (make chaos): it runs seeded
// crash schedules on every machine architecture and asserts the three
// recovery guarantees the chaos ledger checks — G1 no acked write lost,
// G2 no op applied twice, G3 every crash recovered within the bound —
// plus the rejoin protocol's bookkeeping.
func TestE15Guarantees(t *testing.T) {
	for _, kind := range []machineKind{kindDecentralized, kindCentralDirect, kindCentralMediated} {
		for i, sc := range e15Scheds {
			row := e15Run(kind, sc, 0xE15+uint64(i))
			rep := row.report
			name := kind.label() + "/" + sc.name
			if rep.G1Lost != 0 {
				t.Errorf("%s: %d acked writes lost (G1): %v", name, rep.G1Lost, rep.Violations)
			}
			if rep.G2Dups != 0 {
				t.Errorf("%s: %d duplicate applies (G2): %v", name, rep.G2Dups, rep.Violations)
			}
			if got := len(rep.Recoveries); got != row.crashes {
				t.Errorf("%s: %d/%d crash events recovered (G3)", name, got, row.crashes)
			}
			if max := rep.MaxRecovery(); max > e15G3Bound {
				t.Errorf("%s: max recovery %v exceeds bound %v (G3)", name, max, e15G3Bound)
			}
			if rep.Acks == 0 {
				t.Errorf("%s: workload acked nothing; the run proves nothing", name)
			}
			// Every crash is followed by a rejoin (a double-failure event
			// produces two).
			wantRejoins := uint64(row.crashes + sc.doubles)
			if row.rejoins != wantRejoins {
				t.Errorf("%s: %d rejoins, want %d", name, row.rejoins, wantRejoins)
			}
		}
	}
}

// TestE15Reproducible runs one cell twice and requires bit-identical
// outcomes: same schedule, same counts, same recovery windows.
func TestE15Reproducible(t *testing.T) {
	sc := e15Scheds[3] // mixed + double
	a := e15Run(kindDecentralized, sc, 0xE15+3)
	b := e15Run(kindDecentralized, sc, 0xE15+3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different outcome:\n%+v\nvs\n%+v", a, b)
	}
}
