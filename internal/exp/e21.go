package exp

import (
	"encoding/binary"
	"fmt"

	"nocpu/internal/fabric"
	"nocpu/internal/faultinject"
	"nocpu/internal/kvs"
	"nocpu/internal/linearize"
	"nocpu/internal/metrics"
	"nocpu/internal/msg"
	"nocpu/internal/sim"
)

// E21 is the split-brain safety experiment: a rack with epoch leases
// enabled is subjected to the failure modes crash-stop chaos (E15/E17)
// never models — asymmetric one-way link cuts, group partitions that
// HEAL, flapping links faster than the failure timeout, and fail-slow
// machines — while a mixed put/get workload records every
// invocation/response it observes into a linearize.History. Three
// verdicts per cell, all judged from OUTSIDE the fabric:
//
//	L1    — the client history is linearizable (the only audit that can
//	        prove the absence of split-brain: per-machine assertions
//	        cannot see two sides serving diverging truths)
//	split — a probe samples every key at 250µs: at most ONE machine may
//	        simultaneously hold a valid lease, claim the key, and be
//	        past its takeover fence
//	R1/R3 — no acked write lost; every key routable once the schedule
//	        ends (the fabric ledger, as in E17/E19)
//
// plus the worst no-server window (how long a key had NO machine able
// to serve it — the availability price of lease expiry, which safety
// buys). The head-cut schedule is the contrast row: partitioning one
// ordinary machine away from a decentralized rack costs a bounded
// fail-over window; partitioning the HEAD away costs the whole fleet,
// permanently — but typed (StatusFenced), never as silent divergence.

const (
	e21N       = 8
	e21Workers = 4
	e21Keys    = 8 // shared pool: workers collide on keys, so the
	// history has genuine cross-client concurrency for the checker
	e21Window  = 45 * sim.Millisecond
	e21Timeout = 10 * sim.Millisecond
	e21Backoff = 200 * sim.Microsecond
	e21Probe   = 250 * sim.Microsecond

	e21FaultAt = 5 * sim.Millisecond  // after workload start
	e21HealAt  = 25 * sim.Millisecond // partition schedules heal here
	e21SlowFor = 25 * sim.Millisecond // fail-slow degradation window

	e21FlapUp     = 1 * sim.Millisecond // cut shorter than FailTimeout:
	e21FlapPeriod = 3 * sim.Millisecond // a gray failure, not a death
	e21FlapCycles = 6

	e21SlowFactor = 20
)

func e21Key(i int) string { return fmt.Sprintf("e21-%03d", i) }

// e21Cell is one fault schedule, applied relative to workload start.
type e21Cell struct {
	name  string
	apply func(p *faultinject.Plane, t0 sim.Time)
}

// e21Cells returns the schedule matrix. Machines 7/8 are the victims
// everywhere except the head-cut row, which targets machine 1 — the
// head under FlavorHead, an ordinary machine under the decentralized
// flavor: the same schedule, so the two rows differ only in what the
// architecture makes of losing that one machine.
func e21Cells() []e21Cell {
	rest := []msg.DeviceID{2, 3, 4, 5, 6, 7, 8}
	return []e21Cell{
		{"one-way cut 7→8", func(p *faultinject.Plane, t0 sim.Time) {
			p.PartitionOneWay(7, 8, t0.Add(e21FaultAt), t0.Add(e21HealAt))
		}},
		{"6/2 partition", func(p *faultinject.Plane, t0 sim.Time) {
			p.Partition([]msg.DeviceID{1, 2, 3, 4, 5, 6}, []msg.DeviceID{7, 8},
				t0.Add(e21FaultAt), t0.Add(e21HealAt))
		}},
		{"flapping link", func(p *faultinject.Plane, t0 sim.Time) {
			p.Flap([]msg.DeviceID{7}, []msg.DeviceID{1, 2, 3, 4, 5, 6, 8},
				t0.Add(e21FaultAt), e21FlapUp, e21FlapPeriod, e21FlapCycles)
		}},
		{"fail-slow ×20", func(p *faultinject.Plane, t0 sim.Time) {
			p.SlowMachine(7, e21SlowFactor, t0.Add(e21FaultAt), t0.Add(e21FaultAt+e21SlowFor))
		}},
		{"head cut away", func(p *faultinject.Plane, t0 sim.Time) {
			p.Partition([]msg.DeviceID{1}, rest, t0.Add(e21FaultAt), t0.Add(e21HealAt))
		}},
	}
}

// e21Driver runs the recorded workload: each worker alternates puts
// and gets over the shared key pool, maps every fabric response onto
// the checker's outcome vocabulary, and leaves timed-out operations
// Pending (they may have executed — the checker carries them as
// ambiguous writes).
type e21Driver struct {
	cl   *fabric.Cluster
	led  *fabric.Ledger
	hist *linearize.History

	start   sim.Time
	stopAt  sim.Time
	nextVal uint64
	rr      int
	done    int

	puts, gets uint64
	fenced     uint64 // typed refusals observed by clients
	tmouts     uint64
	maybes     uint64 // ambiguous failures (error/unavailable/garbled)

	// Split-brain probe state.
	keys      []string
	splits    int // samples with >1 unfenced lease-holding primary
	zeroRun   int
	worstZero int // longest consecutive no-server run, in samples
}

func (d *e21Driver) ingress() msg.DeviceID {
	ids := d.cl.ServingIDs()
	if len(ids) == 0 {
		ids = d.cl.LiveIDs()
	}
	d.rr++
	return ids[d.rr%len(ids)]
}

// classify maps a fabric response onto the linearize outcome
// vocabulary. Typed refusals (shed, fenced, denied) contractually did
// not execute; anything ambiguous may have.
func (d *e21Driver) classify(resp kvs.Response, err error, isGet bool) (linearize.Outcome, uint64) {
	if err != nil {
		d.maybes++
		return linearize.Maybe, 0
	}
	switch resp.Status {
	case kvs.StatusOK:
		if isGet {
			if len(resp.Value) != 8 {
				d.maybes++
				return linearize.Maybe, 0
			}
			return linearize.OK, binary.LittleEndian.Uint64(resp.Value)
		}
		return linearize.OK, 0
	case kvs.StatusNotFound:
		return linearize.NotFound, 0
	case kvs.StatusShed, kvs.StatusDenied, kvs.StatusFenced:
		d.fenced++
		return linearize.Fail, 0
	default: // StatusError, StatusUnavailable
		d.maybes++
		return linearize.Maybe, 0
	}
}

func (d *e21Driver) worker(w int) {
	eng := d.cl.Eng
	keyIdx := w * 2 // offset the workers so collisions interleave
	doPut := w%2 == 0
	var issue func()
	issue = func() {
		if eng.Now() >= d.stopAt {
			d.done++
			return
		}
		key := d.keys[keyIdx%len(d.keys)]
		keyIdx++
		isGet := !doPut
		doPut = !doPut

		var req []byte
		var hid int
		if isGet {
			d.gets++
			hid = d.hist.Invoke(linearize.Get, key, 0, eng.Now())
			req = kvs.EncodeRequest(kvs.Request{Op: kvs.OpGet, Key: key})
		} else {
			d.nextVal++
			val := d.nextVal
			d.puts++
			d.led.NoteAttempt(key, val)
			hid = d.hist.Invoke(linearize.Put, key, val, eng.Now())
			req = kvs.EncodeRequest(kvs.Request{Op: kvs.OpPut, Key: key, Value: e15Value(val)})
		}

		val := d.nextVal
		resolved, returned := false, false
		var tm *sim.Timer
		d.cl.Ingress(d.ingress())(req, func(b []byte) {
			resp, err := kvs.DecodeResponse(b)
			// The history records the FIRST response even if it arrives
			// after the client-side timeout fired: the client still
			// observed it, so the checker must account for it.
			if !returned {
				returned = true
				out, ret := d.classify(resp, err, isGet)
				d.hist.Return(hid, out, ret, eng.Now())
				if !isGet && out == linearize.OK {
					d.led.NoteAck(key, val)
				}
			}
			if resolved {
				return
			}
			resolved = true
			if tm != nil {
				tm.Stop()
			}
			if err == nil && (resp.Status == kvs.StatusOK || resp.Status == kvs.StatusNotFound) {
				issue()
				return
			}
			eng.After(e21Backoff, issue)
		})
		tm = eng.After(e21Timeout, func() {
			if resolved {
				return
			}
			resolved = true
			d.tmouts++ // stays Pending in the history: an ambiguous write
			issue()
		})
	}
	issue()
}

// sample is the split-brain probe: for each key, count the machines
// that would serve it RIGHT NOW as primary — valid lease, own-view
// ownership, takeover fence lifted. More than one is split-brain; zero
// is the (bounded) unavailability lease expiry costs.
func (d *e21Driver) sample() {
	zero := false
	for _, key := range d.keys {
		servers := 0
		for _, id := range d.cl.LiveIDs() {
			r := d.cl.Machine(id).Router
			if r.LeaseValid() && r.PrimaryFor(key) && !r.KeyFenced(key) {
				servers++
			}
		}
		if servers > 1 {
			d.splits++
		}
		if servers == 0 {
			zero = true
		}
	}
	if zero {
		d.zeroRun++
		if d.zeroRun > d.worstZero {
			d.worstZero = d.zeroRun
		}
	} else {
		d.zeroRun = 0
	}
}

func (d *e21Driver) armProbe() {
	d.cl.Eng.After(e21Probe, func() {
		if d.cl.Eng.Now() >= d.stopAt {
			return
		}
		d.sample()
		d.armProbe()
	})
}

// readback is the R3 sweep after the schedule ends (e19's, verbatim
// semantics: a key with no definitive answer is unroutable).
func (d *e21Driver) readback() {
	eng := d.cl.Eng
	for _, key := range d.led.Keys() {
		settled := false
		for attempt := 0; attempt < 40 && !settled; attempt++ {
			var resp kvs.Response
			got := false
			req := kvs.EncodeRequest(kvs.Request{Op: kvs.OpGet, Key: key})
			d.cl.Ingress(d.ingress())(req, func(b []byte) {
				if r, err := kvs.DecodeResponse(b); err == nil {
					resp, got = r, true
				}
			})
			lim := eng.Now().Add(20 * sim.Millisecond)
			for !got && eng.Now() < lim {
				eng.RunFor(100 * sim.Microsecond)
			}
			if got && resp.Status == kvs.StatusOK && len(resp.Value) == 8 {
				d.led.NoteRead(key, binary.LittleEndian.Uint64(resp.Value), true)
				settled = true
			} else if got && resp.Status == kvs.StatusNotFound {
				d.led.NoteRead(key, 0, false)
				settled = true
			} else {
				eng.RunFor(500 * sim.Microsecond)
			}
		}
		if !settled {
			d.led.NoteUnroutable(key)
		}
	}
}

// e21Row is one cell's outcome.
type e21Row struct {
	cell   string
	flavor fabric.Flavor

	puts, gets uint64
	acked      uint64
	fenced     uint64
	tmouts     uint64
	maybes     uint64

	lin        linearize.Result
	splits     int
	worstZero  sim.Duration
	rep       fabric.Report
	st        fabric.RouterStats
	maxEpoch  uint32
	leasedEnd int
}

// e21Run executes one cell: N=8 with epoch leases on, the schedule
// applied mid-workload, the probe sampling throughout, the readback
// after.
func e21Run(flavor fabric.Flavor, idx int, cell e21Cell) e21Row {
	seed := uint64(0xE21)<<8 | uint64(idx)
	if flavor == fabric.FlavorHead {
		seed ^= 0x4EAD
	}
	plane := faultinject.New(seed ^ 0xF17)
	cl := fabric.MustNew(fabric.Config{
		N: e21N, Flavor: flavor, Seed: seed, MachineMemory: e17Memory,
		Leases: true, Net: fabric.NetConfig{Plane: plane},
	})
	if err := cl.Boot(); err != nil {
		panic(fmt.Sprintf("exp: e21 boot: %v", err))
	}
	eng := cl.Eng

	d := &e21Driver{cl: cl, led: fabric.NewLedger(), hist: linearize.NewHistory()}
	d.start = eng.Now()
	d.stopAt = d.start.Add(e21Window)
	for i := 0; i < e21Keys; i++ {
		d.keys = append(d.keys, e21Key(i))
	}
	cell.apply(plane, d.start)
	d.armProbe()
	for w := 0; w < e21Workers; w++ {
		d.worker(w)
	}
	deadline := eng.Now().Add(30 * sim.Second)
	for d.done != e21Workers && eng.Now() < deadline {
		eng.RunFor(sim.Millisecond)
	}
	if d.done != e21Workers {
		panic("exp: e21 workload did not drain")
	}
	// Let in-flight frames, fences, and the last lease rounds settle
	// before judging routability.
	eng.RunFor(fabric.DefaultLeaseDuration + fabric.DefaultFailTimeout + 2*sim.Millisecond)
	d.readback()

	leased := 0
	for _, m := range cl.Machines {
		if m.Router.LeaseValid() {
			leased++
		}
	}
	return e21Row{
		cell: cell.name, flavor: flavor,
		puts: d.puts, gets: d.gets, acked: d.led.Report().Acks,
		fenced: d.fenced, tmouts: d.tmouts, maybes: d.maybes,
		lin: linearize.Check(d.hist), splits: d.splits,
		worstZero: sim.Duration(d.worstZero) * e21Probe,
		rep:       d.led.Report(), st: cl.RouterStatsSum(), maxEpoch: cl.MaxEpoch(),
		leasedEnd: leased,
	}
}

func e21L1(r e21Row) string {
	if len(r.lin.Aborted) > 0 {
		return "UNKNOWN"
	}
	if r.lin.OK {
		return "clean"
	}
	return "FAIL:" + r.lin.BadKey
}

// E21SplitBrain runs the split-brain safety tables.
func E21SplitBrain() *Result {
	res := &Result{ID: "E21", Title: "Split-brain safety: asymmetric partitions, gray failures, and the client-history audit"}

	safety := metrics.NewTable(
		fmt.Sprintf("N=%d, epoch leases on (lease %v, renew %v, fail timeout %v); fault at +%v, partitions heal at +%v; %d workers × put/get over %d shared keys; probe every %v",
			e21N, fabric.DefaultLeaseDuration, fabric.DefaultLeaseRenewEvery, fabric.DefaultFailTimeout,
			e21FaultAt, e21HealAt, e21Workers, e21Keys, e21Probe),
		"schedule", "flavor", "puts", "gets", "acked", "fenced", "timeouts", "ambiguous",
		"L1 history", "L1 ops", "split samples", "worst no-server", "lost acked (R1)", "unroutable (R3)")
	detect := metrics.NewTable(
		"failure-detector and lease traffic per cell (suspicions are transport-level, directional; deaths only from inbound silence)",
		"schedule", "flavor", "suspicions", "silence deaths", "view changes",
		"renews", "grants", "revokes", "fenced ops", "lapses", "max epoch", "leased after")

	for idx, cell := range e21Cells() {
		for _, flavor := range []fabric.Flavor{fabric.FlavorDecentralized, fabric.FlavorHead} {
			row := e21Run(flavor, idx, cell)
			safety.AddRow(row.cell, row.flavor.String(), row.puts, row.gets, row.acked,
				row.fenced, row.tmouts, row.maybes,
				e21L1(row), fmt.Sprintf("%d+%d?", row.lin.Required, row.lin.Optional),
				row.splits, row.worstZero, row.rep.G1Lost, len(row.rep.Unroutable))
			detect.AddRow(row.cell, row.flavor.String(), row.st.Suspicions, row.st.SilenceDeaths,
				row.st.ViewChanges, row.st.LeaseRenews, row.st.LeaseGrants, row.st.LeaseRevokes,
				row.st.LeaseFenced, row.st.LeaseLapses, row.maxEpoch, row.leasedEnd)
		}
	}
	res.Tables = append(res.Tables, safety, detect)

	res.Notes = append(res.Notes,
		"L1 is the Wing–Gong linearizability check over the client-observed history, per key (linearizability is compositional): 'clean' means ONE sequential order explains every definitive response — the only audit that can prove the absence of split-brain from outside the fabric",
		"timed-out and error'd writes are carried as AMBIGUOUS operations ('N?' in the ops column): the checker may place their effect at any point after invocation or drop it entirely; typed refusals (shed/fenced/denied) are excluded outright — the refusal contract says they did not execute, and a refused write whose value is later READ is itself an L1 violation",
		"a primary serves only while holding a quorum-countersigned epoch lease (2ms, renewed every 500µs) strictly shorter than the 4ms failure timeout, and a promoted machine fences taken-over keys for lease+timeout before serving: the split-sample probe (>1 unfenced lease-holding primary for a key) stays at zero through every schedule because the two windows cannot overlap",
		"the 'worst no-server' column is the price safety pays: between a partitioned primary's lease lapsing and its successor's takeover fence lifting, a key has NO server — bounded by lease + fail timeout + detection, about 10ms here, versus the permanent split a lease-less fabric risks",
		"transport-level send failures record directional SUSPICION only; death needs inbound silence for a full timeout (halved for suspects). The flapping and fail-slow rows show the payoff: zero deaths, zero view changes, zero repair churn — a gray failure is ridden out, not amplified into a membership storm",
		"dead sets never shrink, so a healed partition does not resurrect the exiled side: its machines stay fenced (typed StatusFenced) and the fleet runs on without them — rejoin is the reconciler's job (E19), not the failure detector's",
		"the head-cut contrast: decentralized, machine 1 is one of eight — a bounded fail-over and life goes on. Under the head flavor the SAME schedule decapitates the control plane: the head (patience-limited, hearing nobody) declares the fleet dead, and on heal its revocations propagate the excommunication everywhere — permanent, fleet-wide, TYPED unavailability (R3 unroutable, never wrong data). Safety holds in both architectures; only the blast radius differs — the paper's §2 argument measured end to end",
	)
	return res
}
