package exp

import (
	"fmt"

	"nocpu/internal/core"
	"nocpu/internal/iommu"
	"nocpu/internal/metrics"
	"nocpu/internal/msg"
	"nocpu/internal/physmem"
	"nocpu/internal/sim"
	"nocpu/internal/smartnic"
)

// pagingApp exercises eager vs demand-backed buffers.
type pagingApp struct {
	id    msg.AppID
	lazy  bool
	bytes uint64
	rt    *smartnic.Runtime
	va    uint64
	ready bool
	err   error
}

func (a *pagingApp) AppID() msg.AppID { return a.id }
func (a *pagingApp) Boot(rt *smartnic.Runtime) {
	a.rt = rt
	if a.lazy {
		a.va = rt.ReserveLazy(core.ControlID, a.bytes, 1)
		a.ready = true
		return
	}
	rt.AllocShared(core.ControlID, a.bytes, func(va uint64, err error) {
		a.va, a.err = va, err
		a.ready = true
	})
}
func (a *pagingApp) ServeNetwork(p []byte, reply func([]byte)) { reply(p) }
func (a *pagingApp) PeerFailed(msg.DeviceID)                   {}

// E12DemandPaging ablates §4's page-fault handling: a 4 MiB application
// buffer backed eagerly at setup vs demand-paged on first touch, under a
// sparse access pattern (10% of pages touched).
func E12DemandPaging() *Result {
	res := &Result{ID: "E12", Title: "Demand paging: eager vs first-touch backing (§4 page faults)"}
	const (
		bufBytes   = 4 << 20
		pages      = bufBytes / physmem.PageSize
		touchCount = pages / 10
	)
	tb := metrics.NewTable("4 MiB app buffer, 10% of pages written once then re-written",
		"strategy", "setup time", "phys bytes live", "first-touch avg", "warm avg")
	for _, lazy := range []bool{false, true} {
		sys := core.MustNew(core.Options{Flavor: core.Decentralized, Seed: 121, NoTrace: true})
		if err := sys.Boot(); err != nil {
			panic(err)
		}
		app := &pagingApp{id: 1, lazy: lazy, bytes: bufBytes}
		setupStart := sys.Eng.Now()
		sys.NIC().AddApp(app)
		for !app.ready {
			sys.Eng.RunFor(10 * sim.Microsecond)
		}
		if app.err != nil {
			panic(app.err)
		}
		setup := sys.Eng.Now().Sub(setupStart)

		port := sys.NIC().Device().DMA()
		rng := sys.Rand.Fork()
		// Deterministic sparse page set.
		perm := rng.Perm(pages)[:touchCount]
		write := func(page int) sim.Duration {
			start := sys.Eng.Now()
			done := false
			va := iommu.VirtAddr(app.va + uint64(page)*physmem.PageSize + 64)
			port.Write(1, va, []byte{0xAB}, func(err error) {
				if err != nil {
					panic(err)
				}
				done = true
			})
			for !done {
				if !sys.Eng.Step() {
					break
				}
			}
			return sys.Eng.Now().Sub(start)
		}
		var coldSum, warmSum sim.Duration
		for _, p := range perm {
			coldSum += write(p)
		}
		for _, p := range perm {
			warmSum += write(p)
		}
		name := "eager (alloc up front)"
		if lazy {
			name = "lazy (demand paged)"
		}
		tb.AddRow(name, setup,
			sys.Memctrl.Stats().BytesLive,
			coldSum/touchCount, warmSum/touchCount)
	}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"lazy backing trades a one-time first-touch fault (bus alloc round trip) for 10x less physical memory and near-zero setup",
		fmt.Sprintf("pages touched: %d of %d", touchCount, pages))
	return res
}
