package exp

import (
	"fmt"

	"nocpu/internal/bus"
	"nocpu/internal/core"
	"nocpu/internal/iommu"
	"nocpu/internal/kvs"
	"nocpu/internal/metrics"
	"nocpu/internal/msg"
	"nocpu/internal/netsim"
	"nocpu/internal/sim"
	"nocpu/internal/smartnic"
	"nocpu/internal/smartssd"
)

// E6IOMMUTLB ablates the device-IOMMU translation cache (§2.2 address
// translation): throughput and walk overhead vs TLB geometry.
func E6IOMMUTLB() *Result {
	res := &Result{ID: "E6", Title: "IOMMU TLB ablation"}
	tb := metrics.NewTable("closed-loop gets vs device TLB geometry",
		"TLB (sets x ways)", "ops/s", "p50", "NIC hit rate", "walk reads/op")
	configs := []struct {
		name string
		cfg  iommu.Config
	}{
		{"disabled", iommu.Disabled},
		{"4 x 2", iommu.Config{TLBSets: 4, TLBWays: 2}},
		{"64 x 4 (default)", iommu.DefaultConfig},
		{"256 x 8", iommu.Config{TLBSets: 256, TLBWays: 8}},
	}
	for _, c := range configs {
		rig := newKVSRig(kindDecentralized, 61, func(o *core.Options) {
			o.NIC.Device.IOMMU = c.cfg
			o.SSD.Device.IOMMU = c.cfg
		}, nil)
		rig.preload(256, 512)
		base := rig.sys.NIC().Device().IOMMU().Stats()
		st := rig.getLoad(16, 300, 256)
		nicStats := rig.sys.NIC().Device().IOMMU().Stats()
		lookups := float64(nicStats.TLBHits - base.TLBHits + nicStats.TLBMisses - base.TLBMisses)
		hitRate := 0.0
		if lookups > 0 {
			hitRate = 100 * float64(nicStats.TLBHits-base.TLBHits) / lookups
		}
		walksPerOp := float64(nicStats.WalkReads-base.WalkReads) / float64(st.Completed)
		tb.AddRow(c.name, fmt.Sprintf("%.0f", st.Throughput()), st.Latency.P50(),
			fmt.Sprintf("%.1f%%", hitRate), fmt.Sprintf("%.1f", walksPerOp))
	}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"ring/index pages are hot, so even a tiny TLB recovers most of the walk overhead")
	return res
}

// discoverProbe measures one broadcast discovery round trip.
type discoverProbe struct {
	id      msg.AppID
	query   string
	latency sim.Duration
	done    bool
	fail    bool
}

func (p *discoverProbe) AppID() msg.AppID { return p.id }
func (p *discoverProbe) Boot(rt *smartnic.Runtime) {
	start := rt.Engine().Now()
	rt.Discover(p.query, func(provider msg.DeviceID, service string, err error) {
		p.latency = rt.Engine().Now().Sub(start)
		p.done = true
		p.fail = err != nil
	})
}
func (p *discoverProbe) ServeNetwork(b []byte, reply func([]byte)) { reply(b) }
func (p *discoverProbe) PeerFailed(msg.DeviceID)                   {}

// E7Discovery scales the broadcast service-discovery protocol (§2.2,
// SSDP-like) with the number of attached devices.
func E7Discovery() *Result {
	res := &Result{ID: "E7", Title: "Broadcast discovery scalability"}
	tb := metrics.NewTable("discovery round trip vs machine size (file on the last SSD)",
		"devices on bus", "discovery latency", "bus messages", "broadcast fanout")
	tiny := smartssd.Config{
		Geometry: smartssd.FlashGeometry{Channels: 1, DiesPerChan: 1, BlocksPerDie: 16, PagesPerBlock: 16, PageSize: 4096},
		FS:       smartssd.FSConfig{MaxFiles: 4},
	}
	for _, ssds := range []int{2, 8, 32, 96} {
		sys := core.MustNew(core.Options{
			Flavor: core.Decentralized, Seed: 71, NoTrace: true,
			SSD: tiny, ExtraSSDs: ssds - 1,
			MemoryBytes: 512 << 20,
		})
		if err := sys.Boot(); err != nil {
			panic(err)
		}
		// The target file lives on the LAST SSD, so every broadcast
		// traverses the full fanout before the answer.
		last := sys.SSDs[len(sys.SSDs)-1]
		created := false
		last.FS().Create("far.dat", func(_ *smartssd.File, err error) {
			if err != nil {
				panic(err)
			}
			created = true
		})
		for !created {
			sys.Eng.RunFor(sim.Millisecond)
		}
		before := sys.Bus.Stats()
		probe := &discoverProbe{id: 1, query: "file:far.dat"}
		sys.NIC().AddApp(probe)
		for !probe.done {
			sys.Eng.RunFor(10 * sim.Microsecond)
		}
		if probe.fail {
			panic("exp: discovery failed")
		}
		after := sys.Bus.Stats()
		tb.AddRow(ssds+2, probe.latency, after.Deliveries-before.Deliveries, ssds+1)
	}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"latency grows with fanout because the bus serializes per-destination delivery; the paper leaves discovery arbitration open (§2.2)")
	return res
}

// E8MemoryOps measures control-plane memory-management throughput:
// alloc+free pairs per second under increasing client concurrency,
// decentralized (memctrl+bus) vs centralized (kernel mmap/munmap).
func E8MemoryOps() *Result {
	res := &Result{ID: "E8", Title: "Memory-management operation throughput"}
	tb := metrics.NewTable("alloc/free pairs (64 KiB regions), 10ms window",
		"machine", "clients", "pairs/s", "errors")
	for _, kind := range []machineKind{kindDecentralized, kindCentralDirect} {
		for _, clients := range []int{1, 4, 16} {
			opts := core.Options{Flavor: kind.flavor(), Seed: 81, NoTrace: true, ExtraNICs: 0}
			sys := core.MustNew(opts)
			if err := sys.Boot(); err != nil {
				panic(err)
			}
			apps := make([]*noisyApp, clients)
			for i := range apps {
				apps[i] = &noisyApp{id: appID(i + 1), bytes: 64 << 10}
				sys.NIC().AddApp(apps[i])
			}
			const window = 10 * sim.Millisecond
			start := sys.Eng.Now()
			sys.Eng.RunFor(window)
			var pairs, errs uint64
			for _, a := range apps {
				a.stop = true
				pairs += a.pairs
				errs += a.errs
			}
			span := sys.Eng.Now().Sub(start)
			tb.AddRow(kind.label(), clients,
				fmt.Sprintf("%.0f", float64(pairs)/(float64(span)/float64(sim.Second))), errs)
		}
	}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"the §3 claim: a control message to bus+controller replaces the mmap syscall; compare scaling as clients grow")
	return res
}

// E9Doorbell ablates notification batching (§2.3 notifications /
// VIRTIO event suppression) on the KVS virtqueue.
func E9Doorbell() *Result {
	res := &Result{ID: "E9", Title: "Doorbell (notification) batching ablation"}
	tb := metrics.NewTable("closed-loop gets, 16 workers",
		"kick batch", "notify batch", "ops/s", "p50", "p99", "doorbells/op")
	for _, c := range []struct{ kick, notify int }{
		{1, 1}, {4, 1}, {1, 4}, {4, 4}, {16, 16},
	} {
		rig2 := buildBatchedRig(c.kick, c.notify)
		rig2.preload(256, 512)
		fabBefore := rig2.sys.Fabric.Stats()
		st := rig2.getLoad(16, 300, 256)
		fabAfter := rig2.sys.Fabric.Stats()
		bells := float64(fabAfter.Doorbells-fabBefore.Doorbells) / float64(st.Completed)
		tb.AddRow(c.kick, c.notify, fmt.Sprintf("%.0f", st.Throughput()),
			st.Latency.P50(), st.Latency.P99(), fmt.Sprintf("%.2f", bells))
	}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"batching trades doorbell traffic against queueing delay; the idle-flush keeps partial batches from stranding")
	return res
}

// buildBatchedRig assembles a decentralized KVS with explicit batching
// knobs on both queue halves.
func buildBatchedRig(kick, notify int) *kvsRig {
	opts := core.Options{Flavor: core.Decentralized, Seed: 91, NoTrace: true}
	opts.SSD.NotifyBatch = notify
	sys := core.MustNew(opts)
	if err := sys.Boot(); err != nil {
		panic(err)
	}
	if err := sys.CreateFile("kv.dat", nil); err != nil {
		panic(err)
	}
	store := kvs.New(kvs.Config{
		App: 1, FileName: "kv.dat", Memctrl: core.ControlID,
		QueueEntries: 128, KickBatch: kick,
	})
	sys.NIC().AddApp(store)
	if err := sys.WaitReady(store); err != nil {
		panic(err)
	}
	return &kvsRig{sys: sys, store: store}
}

// E11ValueCache ablates the NIC-local value cache (the KV-Direct design
// the paper cites as [30]) under a Zipf-skewed get workload: hot values
// served from NIC memory never touch the data plane at all.
func E11ValueCache() *Result {
	res := &Result{ID: "E11", Title: "NIC-side value cache ablation (KV-Direct-style extension)"}
	const keys = 1024
	tb := metrics.NewTable("closed-loop Zipf(0.99) gets over 1024 keys, 16 workers",
		"cache entries", "ops/s", "p50", "p99", "cache hit rate")
	for _, entries := range []int{0, 32, 128, 512} {
		opts := core.Options{Flavor: core.Decentralized, Seed: 111, NoTrace: true}
		sys := core.MustNew(opts)
		if err := sys.Boot(); err != nil {
			panic(err)
		}
		if err := sys.CreateFile("kv.dat", nil); err != nil {
			panic(err)
		}
		store := kvs.New(kvs.Config{
			App: 1, FileName: "kv.dat", Memctrl: core.ControlID,
			QueueEntries: 128, CacheEntries: entries,
		})
		sys.NIC().AddApp(store)
		if err := sys.WaitReady(store); err != nil {
			panic(err)
		}
		rig := &kvsRig{sys: sys, store: store}
		rig.preload(keys, 512)
		zipf := sim.NewZipf(sys.Rand.Fork(), keys, 0.99)
		cl := &netsim.ClosedLoop{
			Eng: sys.Eng, Rand: sys.Rand.Fork(), Workers: 16, PerWorker: 400,
			Gen: func(r *sim.Rand, seq uint64) []byte {
				return kvs.EncodeRequest(kvs.Request{Op: kvs.OpGet, Key: keyName(zipf.Next())})
			},
			IsError: kvsIsError,
			Target:  rig.target(),
		}
		base := store.Stats()
		done := false
		cl.Run(func() { done = true })
		rig.drain(&done)
		st := cl.Stats()
		s := store.Stats()
		hitRate := 0.0
		if gets := s.Gets - base.Gets; gets > 0 {
			hitRate = 100 * float64(s.CacheHits-base.CacheHits) / float64(gets)
		}
		tb.AddRow(entries, fmt.Sprintf("%.0f", st.Throughput()),
			st.Latency.P50(), st.Latency.P99(), fmt.Sprintf("%.1f%%", hitRate))
	}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"an extension beyond the paper: with skewed keys, a small NIC cache absorbs the hot set and lifts throughput past the flash bound")
	return res
}

// E10BusSensitivity sweeps the management bus's hop latency. §2.3: "The
// memory bus must have high throughput and low latency, while the system
// management bus need not." Init latency should track the bus; data-plane
// throughput should not move.
func E10BusSensitivity() *Result {
	res := &Result{ID: "E10", Title: "Management-bus speed sensitivity"}
	tb := metrics.NewTable("bus hop latency sweep (decentralized)",
		"bus hop latency", "app init", "steady-state gets/s", "get p99")
	for _, hop := range []sim.Duration{100 * sim.Nanosecond, 1 * sim.Microsecond, 10 * sim.Microsecond, 100 * sim.Microsecond} {
		tweak := func(o *core.Options) {
			o.Bus = bus.DefaultConfig
			o.Bus.HopLatency = hop
			o.NoTrace = true
		}
		init, _ := measureInit(kindDecentralized, func(o *core.Options) {
			tweak(o)
			o.NoTrace = false // measureInit builds its own tracer needs
		})
		rig := newKVSRig(kindDecentralized, 101, tweak, nil)
		rig.preload(256, 512)
		st := rig.getLoad(16, 300, 256)
		tb.AddRow(hop, init, fmt.Sprintf("%.0f", st.Throughput()), st.Latency.P99())
	}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"a 1000x slower control bus moves app-init latency proportionally but leaves data-plane throughput untouched — the §2.3 separation argument")
	return res
}
