package exp

// Tests for the fault plane's two core contracts (ISSUE 1):
//
//  1. Golden determinism — the Figure-2 initialization trace is
//     byte-identical across runs with the same seed, byte-identical with
//     a disabled fault plane wired in (injection compiled-in but off),
//     and reproducible-but-different once faults are enabled with a
//     given plane seed.
//
//  2. Fault matrix — every fault op on every layer, applied to a full
//     KVS initialization, either converges via the retry layer or fails
//     with a clean typed error before a virtual-time watchdog expires.
//     No case may hang the simulation.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"nocpu/internal/core"
	"nocpu/internal/faultinject"
	"nocpu/internal/kvs"
	"nocpu/internal/sim"
)

// initTraceHash runs one decentralized Figure-2 initialization with
// tracing on and returns a hash over the full event log (timestamps,
// endpoints, kinds, details — any behavioral difference changes it).
func initTraceHash(t *testing.T, tweak func(*core.Options)) string {
	t.Helper()
	dur, sys := measureInit(kindDecentralized, tweak)
	if dur <= 0 {
		t.Fatal("non-positive init latency")
	}
	if sys.Tracer.Len() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	h := sha256.New()
	for _, e := range sys.Tracer.Events() {
		fmt.Fprintln(h, e.String())
	}
	return hex.EncodeToString(h.Sum(nil))
}

func TestGoldenFigure2Trace(t *testing.T) {
	base := initTraceHash(t, nil)
	if again := initTraceHash(t, nil); again != base {
		t.Errorf("same-seed reruns differ: %s vs %s", base, again)
	}

	// A plane with no rules must be a pass-through: it draws no
	// randomness and schedules nothing, so the trace stays bit-identical
	// to a run without injection.
	disabled := initTraceHash(t, func(o *core.Options) {
		o.FaultPlane = faultinject.New(99)
	})
	if disabled != base {
		t.Errorf("disabled fault plane perturbed the trace: %s vs %s", disabled, base)
	}

	// Enabled faults: same plane seed reproduces the exact same faulty
	// trace; a different plane seed makes different drop decisions and
	// therefore a different trace. Both still converge (retry layer).
	faulty := func(seed uint64) string {
		return initTraceHash(t, func(o *core.Options) {
			o.FaultPlane = faultinject.New(seed).
				Add(faultinject.Rule{Layer: faultinject.LayerBus, Op: faultinject.Drop, Prob: 0.25})
		})
	}
	a1, a2, b := faulty(7), faulty(7), faulty(8)
	if a1 != a2 {
		t.Errorf("same fault seed not reproducible: %s vs %s", a1, a2)
	}
	if a1 == base {
		t.Error("25%% bus drop left the trace unchanged (plane not wired in?)")
	}
	if b == a1 {
		t.Error("different fault seeds produced identical faulty traces")
	}
}

// matrixOutcome is one fault-matrix trial's result.
type matrixOutcome struct {
	ready bool
	err   error
	span  sim.Duration
}

// matrixInit runs one decentralized KVS initialization under the given
// plane (heartbeats/watchdog on, so crash cases can be detected and the
// device reset). schedule, if non-nil, installs time-triggered faults
// after boot. The virtual watchdog bound is 500ms — far beyond the retry
// budget (~70ms) — after which the case counts as hung.
func matrixInit(t *testing.T, plane *faultinject.Plane, schedule func(sys *core.System, start sim.Time)) matrixOutcome {
	t.Helper()
	sys := core.MustNew(core.Options{
		Flavor: core.Decentralized, Seed: 17, NoTrace: true,
		FaultPlane: plane, Watchdog: 500 * sim.Microsecond,
	})
	if err := sys.Boot(); err != nil {
		t.Fatalf("boot: %v", err)
	}
	if err := sys.CreateFile("kv.dat", nil); err != nil {
		t.Fatalf("create: %v", err)
	}
	store := kvs.New(kvs.Config{App: 1, FileName: "kv.dat", QueueEntries: 64, Memctrl: core.ControlID})
	out := matrixOutcome{}
	done := false
	store.OnReady = func(err error) {
		if done {
			return
		}
		done, out.ready, out.err = true, err == nil, err
	}
	start := sys.Eng.Now()
	if schedule != nil {
		schedule(sys, start)
	}
	sys.NIC().AddApp(store)
	deadline := start.Add(500 * sim.Millisecond)
	for !done && sys.Eng.Now() < deadline {
		sys.Eng.RunFor(50 * sim.Microsecond)
	}
	out.span = sys.Eng.Now().Sub(start)
	if !done {
		t.Fatalf("hung: init neither completed nor failed within %v of virtual time", 500*sim.Millisecond)
	}
	return out
}

func TestFaultMatrix(t *testing.T) {
	type tc struct {
		name     string
		rule     faultinject.Rule
		crashAt  sim.Duration // kill the SSD this long after app load (0 = no crash)
		mustPass bool         // true: only success is acceptable
	}
	cases := []tc{
		{name: "drop/bus", mustPass: true,
			rule: faultinject.Rule{Layer: faultinject.LayerBus, Op: faultinject.Drop, Prob: 0.25}},
		{name: "delay/bus", mustPass: true,
			rule: faultinject.Rule{Layer: faultinject.LayerBus, Op: faultinject.Delay, Prob: 0.5, Delay: 200 * sim.Microsecond}},
		{name: "dup/bus", mustPass: true,
			rule: faultinject.Rule{Layer: faultinject.LayerBus, Op: faultinject.Dup, Prob: 0.5}},
		{name: "reorder/bus", mustPass: true,
			rule: faultinject.Rule{Layer: faultinject.LayerBus, Op: faultinject.Reorder, Prob: 0.3, Delay: 300 * sim.Microsecond}},
		{name: "drop/link",
			rule: faultinject.Rule{Layer: faultinject.LayerLink, Op: faultinject.Drop, Prob: 0.05}},
		{name: "delay/link", mustPass: true,
			rule: faultinject.Rule{Layer: faultinject.LayerLink, Op: faultinject.Delay, Prob: 0.5, Delay: 50 * sim.Microsecond}},
		{name: "dup/link", mustPass: true,
			rule: faultinject.Rule{Layer: faultinject.LayerLink, Op: faultinject.Dup, Prob: 0.25}},
		{name: "reorder/link", mustPass: true,
			rule: faultinject.Rule{Layer: faultinject.LayerLink, Op: faultinject.Reorder, Prob: 0.3, Delay: 100 * sim.Microsecond}},
		// Crash-restart: the SSD dies mid-sequence; heartbeats stop, the
		// bus watchdog resets it, and the open/connect retries either land
		// on the rebooted device or exhaust their budget with a typed
		// error. Two crash points cover the bus-visible control phase and
		// the link-heavy recovery/connect phase.
		{name: "crash-restart/control-phase", crashAt: 20 * sim.Microsecond},
		{name: "crash-restart/data-phase", crashAt: 60 * sim.Microsecond},
	}
	for i, c := range cases {
		c := c
		i := i
		t.Run(c.name, func(t *testing.T) {
			plane := faultinject.New(0xFA0 + uint64(i))
			var schedule func(sys *core.System, start sim.Time)
			if c.crashAt > 0 {
				schedule = func(sys *core.System, start sim.Time) {
					plane.CrashAt(sys.Eng, start.Add(c.crashAt), func() { sys.SSD().Kill() })
				}
			} else {
				plane.Add(c.rule)
			}
			out := matrixInit(t, plane, schedule)
			switch {
			case out.ready:
				t.Logf("converged in %v (plane: %+v)", out.span, plane.Stats())
			case out.err != nil:
				if c.mustPass {
					t.Fatalf("expected convergence via retry, got failure: %v", out.err)
				}
				t.Logf("failed typed in %v: %v", out.span, out.err)
			}
		})
	}
}
