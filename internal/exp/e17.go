package exp

import (
	"encoding/binary"
	"fmt"

	"nocpu/internal/fabric"
	"nocpu/internal/kvs"
	"nocpu/internal/metrics"
	"nocpu/internal/msg"
	"nocpu/internal/netsim"
	"nocpu/internal/sim"
)

// E17 is the rack-scale experiment: N complete CPU-less machines on one
// deterministic event loop, joined by a modeled datacenter network,
// running a sharded primary/backup-replicated KVS. Two questions:
//
//  1. Scaling — how do throughput and tail latency grow with N when
//     every smart NIC routes for itself (decentralized) versus when a
//     centralos head node relays every cross-machine request? Under
//     uniform and Zipf-skewed key popularity.
//  2. Resilience — when whole machines are killed mid-workload, does
//     the fabric uphold R1 (no acked write lost), R2 (no duplicate
//     apply) and R3 (all keys routable after recovery), and how wide
//     is the outage window under each control architecture?

// E17 tuning. Workload size and concurrency scale with N (fixed
// per-machine offered work) so the table measures scaling, not
// saturation of a fixed load. The measured phase is a get workload with
// the NIC value cache enabled (write-through replication keeps it
// coherent), so throughput is bound by NICs and the fabric — the layer
// the two control architectures differ in — rather than by flash
// latency, which is identical for both. Replicated writes are measured
// by the preload and stressed by the chaos table. The chaos client op
// timeout must exceed the fabric's in-system write lifetime (ingress
// forwarding gives up after the router's 10ms OpTimeout) so per-key
// order is preserved across driver retries.
const (
	e17ValSize     = 64
	e17KeysPerMach = 64
	e17OpsPerMach  = 256
	e17WorkersPer  = 8
	e17MaxWorkers  = 512
	e17ZipfTheta   = 0.99
	e17Memory      = 4 << 20
	e17Cache       = 512

	e17ChaosN        = 8
	e17ChaosWorkers  = 4
	e17ChaosKeysPer  = 4
	e17ChaosWarmup   = 2 * sim.Millisecond
	e17ChaosWindow   = 30 * sim.Millisecond
	e17ChaosTail     = 10 * sim.Millisecond
	e17ChaosTimeout  = 25 * sim.Millisecond
	e17ChaosBackoff  = 200 * sim.Microsecond
	e17ChaosSettle   = 20 * sim.Millisecond
	e17RecoveryBound = 25 * sim.Millisecond
)

func e17Key(i int) string { return fmt.Sprintf("e17-%05d", i) }

// e17Cluster assembles and boots one rack. cache > 0 enables the shard
// stores' NIC value cache (scaling cells only; the chaos cells keep the
// full flash write path in the loop).
func e17Cluster(n int, flavor fabric.Flavor, seed uint64, cache int) *fabric.Cluster {
	cl := fabric.MustNew(fabric.Config{
		N: n, Flavor: flavor, Seed: seed, MachineMemory: e17Memory, CacheEntries: cache,
	})
	if err := cl.Boot(); err != nil {
		panic(fmt.Sprintf("exp: e17 boot: %v", err))
	}
	return cl
}

// e17Target spreads client requests round-robin over the live machines'
// NIC ingresses (deterministic: LiveIDs is sorted, one cursor step per
// request).
func e17Target(cl *fabric.Cluster) netsim.Target {
	rr := 0
	return func(p []byte, reply func([]byte)) {
		live := cl.LiveIDs()
		rr++
		cl.Ingress(live[rr%len(live)])(p, reply)
	}
}

// e17Drain advances the shared engine until done.
func e17Drain(cl *fabric.Cluster, done *bool) {
	deadline := cl.Eng.Now().Add(30 * sim.Second)
	for !*done && cl.Eng.Now() < deadline {
		cl.Eng.RunFor(sim.Millisecond)
	}
	if !*done {
		panic("exp: e17 workload did not drain")
	}
}

// e17Scale runs one scaling cell: a replicated put preload, then a
// closed-loop get workload over uniform or Zipf keys.
func e17Scale(n int, flavor fabric.Flavor, zipf bool) (netsim.Stats, fabric.RouterStats) {
	seed := uint64(0xE17) + uint64(n)<<4
	if zipf {
		seed ^= 0x217F
	}
	cl := e17Cluster(n, flavor, seed, e17Cache)
	nKeys := e17KeysPerMach * n

	pre := &netsim.ClosedLoop{
		Eng: cl.Eng, Rand: sim.NewRand(seed ^ 1), Workers: 8, PerWorker: (nKeys + 7) / 8,
		Gen: func(rd *sim.Rand, seq uint64) []byte {
			return kvs.EncodeRequest(kvs.Request{
				Op: kvs.OpPut, Key: e17Key(int(seq) % nKeys), Value: make([]byte, e17ValSize),
			})
		},
		Target: e17Target(cl),
	}
	done := false
	pre.Run(func() { done = true })
	e17Drain(cl, &done)

	preStats := cl.RouterStatsSum()
	workers := e17WorkersPer * n
	if workers > e17MaxWorkers {
		workers = e17MaxWorkers
	}
	z := sim.NewZipf(sim.NewRand(seed^2), nKeys, e17ZipfTheta)
	load := &netsim.ClosedLoop{
		Eng: cl.Eng, Rand: sim.NewRand(seed ^ 3), Workers: workers,
		PerWorker: e17OpsPerMach * n / workers,
		Gen: func(rd *sim.Rand, seq uint64) []byte {
			k := rd.Intn(nKeys)
			if zipf {
				k = z.Next()
			}
			return kvs.EncodeRequest(kvs.Request{Op: kvs.OpGet, Key: e17Key(k)})
		},
		IsError: kvsIsError,
		Target:  e17Target(cl),
	}
	done = false
	load.Run(func() { done = true })
	e17Drain(cl, &done)

	// Report the measured phase only: subtract the preload's counters.
	st := cl.RouterStatsSum()
	st.Local -= preStats.Local
	st.Remote -= preStats.Remote
	st.HeadRelayed -= preStats.HeadRelayed
	st.Applies -= preStats.Applies
	return load.Stats(), st
}

// e17ChaosRow is one machine-kill campaign's outcome.
type e17ChaosRow struct {
	rep      fabric.Report
	stats    fabric.RouterStats
	puts     uint64
	tmouts   uint64
	errs     uint64
	kills    int
	maxEpoch uint32
}

// e17ChaosDriver is the per-op-timeout workload for the kill campaigns
// (netsim's closed loop cannot drive a crashing fabric — an op lost in
// a machine kill would stall its worker forever).
type e17ChaosDriver struct {
	cl  *fabric.Cluster
	led *fabric.Ledger

	stopAt  sim.Time
	nextVal uint64
	rr      int
	puts    uint64
	tmouts  uint64
	errs    uint64
	done    int

	pending   []sim.Time
	recovered []sim.Duration
}

func (d *e17ChaosDriver) ingress() msg.DeviceID {
	live := d.cl.LiveIDs()
	d.rr++
	return live[d.rr%len(live)]
}

func (d *e17ChaosDriver) noteProgress() {
	if len(d.pending) == 0 {
		return
	}
	now := d.cl.Eng.Now()
	for _, at := range d.pending {
		d.recovered = append(d.recovered, now.Sub(at))
	}
	d.pending = d.pending[:0]
}

func (d *e17ChaosDriver) worker(w int) {
	eng := d.cl.Eng
	keyIdx := 0
	var issue func()
	issue = func() {
		if eng.Now() >= d.stopAt {
			d.done++
			return
		}
		key := e17Key(w*e17ChaosKeysPer + keyIdx)
		keyIdx = (keyIdx + 1) % e17ChaosKeysPer
		d.nextVal++
		val := d.nextVal
		d.led.NoteAttempt(key, val)
		d.puts++
		resolved := false
		var tm *sim.Timer
		req := kvs.EncodeRequest(kvs.Request{Op: kvs.OpPut, Key: key, Value: e15Value(val)})
		d.cl.Ingress(d.ingress())(req, func(b []byte) {
			resp, err := kvs.DecodeResponse(b)
			ok := err == nil && resp.Status == kvs.StatusOK
			if ok {
				d.led.NoteAck(key, val)
				d.noteProgress()
			}
			if resolved {
				return
			}
			resolved = true
			if tm != nil {
				tm.Stop()
			}
			if !ok {
				d.errs++
				eng.After(e17ChaosBackoff, issue)
				return
			}
			issue()
		})
		tm = eng.After(e17ChaosTimeout, func() {
			if resolved {
				return
			}
			resolved = true
			d.tmouts++
			issue()
		})
	}
	issue()
}

// readback sweeps every touched key; a key with no definitive answer
// after the retry budget is unroutable (R3 violation).
func (d *e17ChaosDriver) readback() {
	eng := d.cl.Eng
	for _, key := range d.led.Keys() {
		settled := false
		for attempt := 0; attempt < 40 && !settled; attempt++ {
			var resp kvs.Response
			got := false
			req := kvs.EncodeRequest(kvs.Request{Op: kvs.OpGet, Key: key})
			d.cl.Ingress(d.ingress())(req, func(b []byte) {
				if r, err := kvs.DecodeResponse(b); err == nil {
					resp, got = r, true
				}
			})
			lim := eng.Now().Add(20 * sim.Millisecond)
			for !got && eng.Now() < lim {
				eng.RunFor(100 * sim.Microsecond)
			}
			if got && resp.Status == kvs.StatusOK && len(resp.Value) == 8 {
				d.led.NoteRead(key, binary.LittleEndian.Uint64(resp.Value), true)
				settled = true
			} else if got && resp.Status == kvs.StatusNotFound {
				d.led.NoteRead(key, 0, false)
				settled = true
			} else {
				eng.RunFor(500 * sim.Microsecond)
			}
		}
		if !settled {
			d.led.NoteUnroutable(key)
		}
	}
}

// e17Chaos runs one machine-kill campaign: a write workload over an
// 8-machine rack while victims are killed at scripted instants.
// Sequential kills only — at replication factor 2, simultaneously
// killing a replica pair legitimately loses data; the fabric's claim is
// surviving any sequence of single-machine failures with a resync gap.
// Under the head-node flavor the head (machine 1) is never a victim:
// it is a single point of failure by construction, which is the point
// of the comparison.
func e17Chaos(flavor fabric.Flavor, victims []msg.DeviceID, seed uint64) e17ChaosRow {
	cl := e17Cluster(e17ChaosN, flavor, seed, 0)
	eng := cl.Eng
	d := &e17ChaosDriver{cl: cl, led: fabric.NewLedger()}
	d.stopAt = eng.Now().Add(e17ChaosWarmup + e17ChaosWindow + e17ChaosTail)

	// Spread kills across the window, 10ms apart (>> one failover+resync).
	first := eng.Now().Add(e17ChaosWarmup + 5*sim.Millisecond)
	for i, v := range victims {
		at := first.Add(sim.Duration(i) * 10 * sim.Millisecond)
		v := v
		eng.At(at, func() {
			cl.Kill(v)
			//lint:allow boundedqueue a handful of scripted kills, drained on every ack
			d.pending = append(d.pending, at)
		})
	}
	for w := 0; w < e17ChaosWorkers; w++ {
		d.worker(w)
	}
	deadline := eng.Now().Add(30 * sim.Second)
	for d.done != e17ChaosWorkers && eng.Now() < deadline {
		eng.RunFor(sim.Millisecond)
	}
	if d.done != e17ChaosWorkers {
		panic("exp: e17 chaos workload did not drain")
	}
	eng.RunFor(e17ChaosSettle)
	d.readback()

	rep := d.led.Report()
	rep.Recoveries = d.recovered
	return e17ChaosRow{
		rep: rep, stats: cl.RouterStatsSum(), puts: d.puts, tmouts: d.tmouts,
		errs: d.errs, kills: len(victims), maxEpoch: cl.MaxEpoch(),
	}
}

// e17Flavors pairs each fabric flavor with its chaos victim list.
var e17Flavors = []struct {
	flavor  fabric.Flavor
	victims []msg.DeviceID
}{
	{fabric.FlavorDecentralized, []msg.DeviceID{3, 6}},
	{fabric.FlavorHead, []msg.DeviceID{3, 6}}, // head (1) never killed: SPOF by design
}

// E17Fabric runs the rack-scale scaling and chaos tables.
func E17Fabric() *Result {
	res := &Result{ID: "E17", Title: "Rack-scale fabric: sharded replicated KVS across N machines"}

	scale := metrics.NewTable(
		fmt.Sprintf("closed-loop get workload after a replicated preload (%d ops, %d keys and %d workers per machine, NIC value cache on, Zipf θ=%.2f)",
			e17OpsPerMach, e17KeysPerMach, e17WorkersPer, e17ZipfTheta),
		"machines", "flavor", "dist", "ops", "errors", "throughput (op/s)",
		"p50", "p99", "remote", "head relayed")
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		for _, fl := range []fabric.Flavor{fabric.FlavorDecentralized, fabric.FlavorHead} {
			for _, zipf := range []bool{false, true} {
				dist := "uniform"
				if zipf {
					dist = "zipf"
				}
				st, rt := e17Scale(n, fl, zipf)
				total := rt.Local + rt.Remote
				remote := "0%"
				if total > 0 {
					remote = fmt.Sprintf("%d%%", rt.Remote*100/total)
				}
				scale.AddRow(n, fl.String(), dist, st.Completed, st.Errors,
					fmt.Sprintf("%.0f", st.Throughput()),
					st.Latency.P50(), st.Latency.P99(), remote, rt.HeadRelayed)
			}
		}
	}
	res.Tables = append(res.Tables, scale)

	chaos := metrics.NewTable(
		fmt.Sprintf("machine-kill chaos on an %d-machine rack (%d workers, sequential kills 10ms apart)",
			e17ChaosN, e17ChaosWorkers),
		"flavor", "kills", "puts", "acked", "timeouts", "lost acked (R1)",
		"dup applies (R2)", "unroutable (R3)", "recovered", "max recovery",
		"max epoch", "resyncs")
	for i, fc := range e17Flavors {
		row := e17Chaos(fc.flavor, fc.victims, 0xE17C+uint64(i))
		recovered := fmt.Sprintf("%d/%d", len(row.rep.Recoveries), row.kills)
		chaos.AddRow(fc.flavor.String(), row.kills, row.puts, row.rep.Acks, row.tmouts,
			row.rep.G1Lost, row.rep.G2Dups, len(row.rep.Unroutable), recovered,
			row.rep.MaxRecovery(), row.maxEpoch, row.stats.Resyncs)
	}
	res.Tables = append(res.Tables, chaos)

	res.Notes = append(res.Notes,
		"every machine is a complete emulated system (bus, NIC, SSD, memory controller) sharing ONE deterministic event loop; the fabric models per-link latency plus per-byte serialization, and peer frames contend with client traffic in each NIC's rx queue",
		"decentralized: every smart NIC owns a consistent-hash ring and routes/replicates for itself; head-node: a centralos machine relays all cross-machine requests and is the membership authority — its rx queue is the scaling bottleneck the throughput and relayed columns expose",
		"the measured phase is a get workload with the NIC value cache enabled (write-through replicated puts keep it coherent), so the bottleneck under test is the fabric and control architecture, not flash latency; replicated writes are exercised by the preload and the chaos table",
		"R1/R2 are judged by the fabric ledger from client-visible evidence only (unique per-key increasing values); R3 is the read-back sweep finding every touched key routable after failover",
		"sequential kills only: at replication factor 2, killing a replica pair inside one resync window legitimately loses data — the fabric's guarantee is surviving any sequence of single-machine failures",
		"the head node is never a chaos victim: it is a single point of failure by construction, which is the architectural contrast under test")
	return res
}
