package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"nocpu/internal/fabric"
)

// TestE17ChaosClean is the fabric tier's hard gate: every machine-kill
// campaign must uphold R1 (no acked write lost), R2 (no duplicate
// apply) and R3 (every touched key routable after recovery), with every
// outage window bounded. Runs under -race via `make fabric`.
func TestE17ChaosClean(t *testing.T) {
	for i, fc := range e17Flavors {
		fc := fc
		seed := 0xE17C + uint64(i)
		t.Run(fc.flavor.String(), func(t *testing.T) {
			t.Parallel()
			row := e17Chaos(fc.flavor, fc.victims, seed)
			if row.rep.G1Lost != 0 {
				t.Errorf("R1 violated: %d acked writes lost: %v", row.rep.G1Lost, row.rep.Violations)
			}
			if row.rep.G2Dups != 0 {
				t.Errorf("R2 violated: %d duplicate applies: %v", row.rep.G2Dups, row.rep.Violations)
			}
			if len(row.rep.Unroutable) != 0 {
				t.Errorf("R3 violated: unroutable keys: %v", row.rep.Unroutable)
			}
			if !row.rep.CleanFabric(e17RecoveryBound) {
				t.Errorf("recovery exceeded %v: %v", e17RecoveryBound, row.rep.Recoveries)
			}
			if len(row.rep.Recoveries) < row.kills {
				t.Errorf("only %d/%d kills saw service restored", len(row.rep.Recoveries), row.kills)
			}
			if row.rep.Acks == 0 {
				t.Error("campaign acked nothing")
			}
			if row.maxEpoch != 2 {
				t.Errorf("max epoch %d after 2 kills, want 2", row.maxEpoch)
			}
		})
	}
}

// TestE17ScaleDeterministic: one scaling cell, run twice, must agree to
// the byte (same seed → same table; the full-grid check is the tables
// diff in CI).
func TestE17ScaleDeterministic(t *testing.T) {
	runCell := func() string {
		st, rt := e17Scale(4, fabric.FlavorHead, true)
		return fmt.Sprintf("%d %d %v %v %d %d %d",
			st.Completed, st.Errors, st.Latency.P50(), st.Latency.P99(),
			rt.Local, rt.Remote, rt.HeadRelayed)
	}
	a, b := runCell(), runCell()
	if a != b {
		t.Errorf("identical E17 cells diverged:\n  a: %s\n  b: %s", a, b)
	}
}

// TestE17ScalingSeparates pins the experiment's headline at test scale:
// the decentralized fabric must outscale the head-node relay once the
// rack is big enough for the head's rx queue to saturate.
func TestE17ScalingSeparates(t *testing.T) {
	dec, _ := e17Scale(8, fabric.FlavorDecentralized, false)
	head, _ := e17Scale(8, fabric.FlavorHead, false)
	if dec.Throughput() < 1.5*head.Throughput() {
		t.Errorf("decentralized (%.0f op/s) does not outscale head-node (%.0f op/s) at N=8",
			dec.Throughput(), head.Throughput())
	}
}

// TestE17BenchSnapshot writes BENCH_e17.json — a simulator-speed
// snapshot (wall-clock events/sec while running one rack-scale cell) —
// when NOCPU_BENCH_SNAPSHOT=1. Tracked per PR so engine performance
// becomes a trajectory (ROADMAP item 2), not a hard gate.
func TestE17BenchSnapshot(t *testing.T) {
	if os.Getenv("NOCPU_BENCH_SNAPSHOT") == "" {
		t.Skip("set NOCPU_BENCH_SNAPSHOT=1 to write BENCH_e17.json")
	}
	start := time.Now()
	st, _ := e17Scale(16, fabric.FlavorDecentralized, false)
	wall := time.Since(start)
	virt := st.Span
	doc := fmt.Sprintf(`{
  "experiment": "E17",
  "cell": {"machines": 16, "flavor": "decentralized", "dist": "uniform"},
  "ops": %d,
  "virtual_span_ns": %d,
  "wall_seconds": %.3f,
  "ops_per_wall_second": %.0f
}
`, st.Completed, int64(virt), wall.Seconds(), float64(st.Completed)/wall.Seconds())
	if err := os.WriteFile("../../BENCH_e17.json", []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_e17.json: %d ops in %.3fs wall", st.Completed, wall.Seconds())
}

// e17BenchGuardTolerance is the regression threshold: the guard fails
// when the measured simulator speed drops more than 30% below the
// committed BENCH_e17.json snapshot.
const e17BenchGuardTolerance = 0.30

// TestE17BenchGuard re-runs the snapshot cell and fails on a >30%
// simulator-speed regression against the committed BENCH_e17.json.
// Wall-clock measurement is machine-dependent, so the guard is gated
// behind NOCPU_BENCH_GUARD=1 (`make benchguard`, run by CI) and takes
// the best of three runs to shave scheduler noise.
func TestE17BenchGuard(t *testing.T) {
	if os.Getenv("NOCPU_BENCH_GUARD") == "" {
		t.Skip("set NOCPU_BENCH_GUARD=1 to compare against BENCH_e17.json")
	}
	raw, err := os.ReadFile("../../BENCH_e17.json")
	if err != nil {
		t.Fatalf("no committed snapshot to guard against: %v", err)
	}
	var snap struct {
		OpsPerWallSecond float64 `json:"ops_per_wall_second"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("BENCH_e17.json: %v", err)
	}
	if snap.OpsPerWallSecond <= 0 {
		t.Fatalf("BENCH_e17.json has no ops_per_wall_second baseline")
	}
	best := 0.0
	for run := 0; run < 3; run++ {
		start := time.Now()
		st, _ := e17Scale(16, fabric.FlavorDecentralized, false)
		if speed := float64(st.Completed) / time.Since(start).Seconds(); speed > best {
			best = speed
		}
	}
	floor := snap.OpsPerWallSecond * (1 - e17BenchGuardTolerance)
	if best < floor {
		t.Errorf("simulator speed regressed: best of 3 runs %.0f op/s < %.0f (baseline %.0f − %d%%); if the slowdown is intentional, regenerate the snapshot with NOCPU_BENCH_SNAPSHOT=1",
			best, floor, snap.OpsPerWallSecond, int(e17BenchGuardTolerance*100))
	} else {
		t.Logf("bench guard: %.0f op/s vs baseline %.0f (floor %.0f)", best, snap.OpsPerWallSecond, floor)
	}
}
