package exp

import (
	"fmt"

	"nocpu/internal/core"
	"nocpu/internal/kvs"
	"nocpu/internal/metrics"
	"nocpu/internal/overload"
	"nocpu/internal/sim"
)

// E16 is the goodput-collapse experiment: seeded open-loop load ramps
// from a quarter of saturation to 4× saturation, on all three machine
// flavors, with every overload defense armed — bus credit windows and
// ingress bounds, DMA windows, the NIC's bounded rx queue, the store's
// deadline + inflight admission control, and (centralized flavors) the
// kernel's mediated-I/O backlog bound. The overload ledger audits the
// three guarantees per machine:
//
//	Q1 — no watched queue ever exceeds its bound,
//	Q2 — goodput at 2× saturation ≥ 80% of goodput at saturation,
//	Q3 — every issued request resolves (ok/late/shed/error); shed work
//	     is refused with an explicit StatusShed, never silently lost.
//
// The paper's performance-isolation claim shows up as the gap between
// the flavors' degradation curves: how much goodput each retains at 4×,
// and where each starts shedding.

// E16 tuning. The deadline is the client's end-to-end latency budget;
// it sits an order of magnitude above the unloaded round trip so it only
// binds under queueing. Bounds are sized so the inflight cap (the
// store's admission valve) is the first defense to engage: queueing
// delay at the cap stays well inside the deadline, so admitted work is
// rarely late and goodput tracks capacity instead of collapsing.
const (
	e16Keys          = 256
	e16ValSize       = 64
	e16Window        = 20 * sim.Millisecond
	e16Deadline      = sim.Millisecond
	e16Seed          = 0xE16
	e16CreditWindow  = 32
	e16IngressBound  = 64
	e16DMAWindow     = 256
	e16RxBound       = 128
	e16InflightBound = 32
	e16IOBacklog     = 64
	e16CalWorkers    = 32
	e16CalPerWorker  = 200
)

// e16Multipliers are the offered-load points, as fractions of measured
// saturation. 1 and 2 must both be present: the ledger's Q2 audit
// compares them.
var e16Multipliers = []float64{0.25, 0.5, 1, 2, 4}

// e16Rig builds a machine with every overload defense armed and the
// keyspace preloaded.
func e16Rig(kind machineKind, seed uint64) *kvsRig {
	rig := newKVSRig(kind, seed, func(o *core.Options) {
		o.Bus.CreditWindow = e16CreditWindow
		o.Bus.IngressBound = e16IngressBound
		o.Costs.DMAWindow = e16DMAWindow
		o.NIC.RxQueueBound = e16RxBound
		if kind != kindDecentralized {
			o.CPU.IOBacklogBound = e16IOBacklog
		}
	}, func(ko *core.KVSOptions) {
		ko.InflightBound = e16InflightBound
	})
	rig.preload(e16Keys, e16ValSize)
	return rig
}

// e16Classify maps a KVS response to its overload outcome. NotFound is a
// served answer (the workload only reads preloaded keys, so it should
// not occur); lateness is judged by the harness, not here.
func e16Classify(resp []byte) overload.Outcome {
	r, err := kvs.DecodeResponse(resp)
	if err != nil {
		return overload.OutcomeError
	}
	switch r.Status {
	case kvs.StatusOK, kvs.StatusNotFound:
		return overload.OutcomeOK
	case kvs.StatusShed:
		return overload.OutcomeShed
	default:
		return overload.OutcomeError
	}
}

// e16Campaign calibrates one flavor's saturation with a closed loop,
// then runs the compiled ramp, one fresh machine per step so no queue
// state leaks between load points. Exercised with race detection by the
// overload test tier (make overload).
func e16Campaign(kind machineKind) (sat float64, led *overload.Ledger) {
	cal := e16Rig(kind, e16Seed)
	sat = cal.getLoad(e16CalWorkers, e16CalPerWorker, e16Keys).Throughput()

	ramp := overload.Plan{
		Seed:        e16Seed ^ uint64(kind)<<8,
		Saturation:  sat,
		Multipliers: e16Multipliers,
		Window:      e16Window,
		Deadline:    e16Deadline,
	}.MustCompile()

	led = overload.NewLedger()
	for i := range ramp.Steps {
		rig := e16Rig(kind, e16Seed+uint64(kind)*101+uint64(i)*7)
		gen := func(rd *sim.Rand, seq uint64, deadline uint64) []byte {
			return kvs.EncodeRequest(kvs.Request{
				Op: kvs.OpGet, Key: keyName(rd.Intn(e16Keys)), Deadline: deadline,
			})
		}
		res := ramp.RunStep(i, rig.sys.Eng, rig.target(), gen, e16Classify)
		led.Record(res)
		// Q1 evidence: every bounded queue this step could have filled.
		tag := func(q string) string {
			return fmt.Sprintf("%s %gx %s", kind.label(), res.Multiplier, q)
		}
		led.Watch(tag("store-inflight"), rig.store.InflightGauge())
		led.Watch(tag("nic-rx"), rig.sys.NIC().RxGauge())
		led.Watch(tag("bus-ingress"), rig.sys.Bus.IngressGauge())
		if rig.sys.CPU != nil {
			led.Watch(tag("kernel-io-backlog"), rig.sys.CPU.IOGauge())
		}
	}
	return sat, led
}

// E16Overload runs the goodput-collapse campaign on all three flavors.
func E16Overload() *Result {
	res := &Result{ID: "E16", Title: "Overload resilience: goodput under open-loop load ramps"}
	tb := metrics.NewTable(
		fmt.Sprintf("open-loop get ramp (%v window, %v deadline, inflight bound %d)",
			e16Window, e16Deadline, e16InflightBound),
		"machine", "load", "offered/s", "sent", "goodput/s", "ok", "late", "shed", "errors", "p50", "p99")
	type verdict struct {
		kind  machineKind
		sat   float64
		led   *overload.Ledger
		retd  float64 // goodput at 4x as a fraction of goodput at 1x
		shed4 float64 // shed fraction at 4x
	}
	var verdicts []verdict
	for _, kind := range []machineKind{kindDecentralized, kindCentralDirect, kindCentralMediated} {
		sat, led := e16Campaign(kind)
		v := verdict{kind: kind, sat: sat, led: led}
		var base float64
		for _, s := range led.Steps() {
			tb.AddRow(kind.label(), fmt.Sprintf("%gx", s.Multiplier),
				fmt.Sprintf("%.0f", s.Rate), s.Sent, fmt.Sprintf("%.0f", s.Goodput),
				s.OK, s.Late, s.Shed, s.Errors, s.P50, s.P99)
			if s.Multiplier == 1 {
				base = s.Goodput
			}
			if s.Multiplier == 4 {
				if base > 0 {
					v.retd = s.Goodput / base
				}
				if s.Sent > 0 {
					v.shed4 = float64(s.Shed) / float64(s.Sent)
				}
			}
		}
		verdicts = append(verdicts, v)
	}
	res.Tables = append(res.Tables, tb)
	for _, v := range verdicts {
		audit := v.led.Audit()
		status := "Q1 Q2 Q3 pass"
		if len(audit) > 0 {
			status = fmt.Sprintf("AUDIT FAILED: %v", audit)
		}
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: saturation %.0f req/s; goodput at 4x retains %.0f%% of 1x while shedding %.0f%% of offered load; %s",
			v.kind.label(), v.sat, 100*v.retd, 100*v.shed4, status))
	}
	res.Notes = append(res.Notes,
		"goodput counts only within-deadline successes; late completions are work the machine wasted on requests already dead to the client",
		"every overload defense is armed: bus credit windows + ingress bound, DMA windows, NIC bounded rx, store deadline + inflight admission, kernel mediated-I/O backlog bound (centralized)",
		"each load point runs on a fresh machine so queue state cannot leak between steps; arrivals are Poisson with per-step seeds fixed by the plan")
	return res
}
