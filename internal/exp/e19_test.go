package exp

import (
	"fmt"
	"testing"

	"nocpu/internal/fabric"
)

// TestE19CampaignClean is the reconcile tier's hard gate: the full
// campaign — kill, rolling upgrade, same-frame double kill — must
// uphold C1 (convergence within bound), C2 (no acked write lost, via
// fabric R1/R2), C3 (disruption budget) and R3 (all keys routable) on
// both control architectures. Runs under -race via `make reconcile`.
func TestE19CampaignClean(t *testing.T) {
	for _, flavor := range []fabric.Flavor{fabric.FlavorDecentralized, fabric.FlavorHead} {
		flavor := flavor
		t.Run(flavor.String(), func(t *testing.T) {
			t.Parallel()
			row := e19Campaign(8, flavor)
			if row.kills != 3 {
				t.Fatalf("campaign scripted %d kills, want 3 (1 single + same-frame double)", row.kills)
			}
			if !row.converged {
				t.Error("fleet did not converge within the campaign budget")
			}
			if !row.fleet.Clean() {
				t.Errorf("fleet ledger not clean: C1=%d C3=%d open=%d (worst shortfall %d)",
					row.fleet.C1Violations, row.fleet.C3Violations,
					row.fleet.OpenWindows, row.fleet.WorstShortfall)
			}
			if row.rep.G1Lost != 0 {
				t.Errorf("R1 violated: %d acked writes lost: %v", row.rep.G1Lost, row.rep.Violations)
			}
			if row.rep.G2Dups != 0 {
				t.Errorf("R2 violated: %d duplicate applies: %v", row.rep.G2Dups, row.rep.Violations)
			}
			if len(row.rep.Unroutable) != 0 {
				t.Errorf("R3 violated: unroutable keys: %v", row.rep.Unroutable)
			}
			if row.rep.Acks == 0 {
				t.Error("campaign acked nothing")
			}
			if row.fleet.Stats.Repairs == 0 {
				t.Error("no repair transitions despite 3 kills")
			}
			if row.fleet.Stats.Swaps+row.fleet.Stats.Shrinks == 0 {
				t.Error("no upgrade rotations despite a config bump")
			}
			// The head can never flash itself; everyone else must be on v2.
			wantUp := "7/7"
			if flavor == fabric.FlavorHead {
				wantUp = "6/7"
			}
			if row.upgraded != wantUp {
				t.Errorf("upgraded %s, want %s", row.upgraded, wantUp)
			}
		})
	}
}

// TestE19Reproducible: one full campaign cell, run twice, must agree to
// the byte — the reconciler adds no nondeterminism on top of the
// fabric's golden-trace guarantee.
func TestE19Reproducible(t *testing.T) {
	runCell := func() string {
		row := e19Campaign(8, fabric.FlavorDecentralized)
		return fmt.Sprintf("%d %d %d %d %d %v %v %v %d %d %+v",
			row.puts, row.rep.Acks, row.tmouts, row.errs, row.kills,
			row.fleet.MaxWindow(), row.lat.P50(), row.lat.P99(),
			row.floor, row.peak, row.fleet.Stats)
	}
	a, b := runCell(), runCell()
	if a != b {
		t.Errorf("identical E19 cells diverged:\n  a: %s\n  b: %s", a, b)
	}
}

// TestE19BaselineUndisturbed pins the reference row: with no reconciler
// attached and no chaos, the same workload sees no timeouts and a flat
// goodput profile.
func TestE19BaselineUndisturbed(t *testing.T) {
	row := e19Baseline(8, fabric.FlavorDecentralized)
	if row.tmouts != 0 || row.rep.G1Lost != 0 || len(row.rep.Unroutable) != 0 {
		t.Errorf("undisturbed baseline saw disruption: timeouts=%d lost=%d unroutable=%d",
			row.tmouts, row.rep.G1Lost, len(row.rep.Unroutable))
	}
	if row.peak == 0 || row.floor*100/row.peak < 50 {
		t.Errorf("baseline goodput not flat: floor %d of peak %d", row.floor, row.peak)
	}
}
