package exp

import (
	"fmt"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// E1–E17 are contiguous; E18 is unassigned, E19 is the self-healing
	// fleet experiment, E20 the adversarial-tenancy matrix and E21 the
	// split-brain safety matrix.
	want := make([]string, 0, 20)
	for i := 1; i <= 17; i++ {
		want = append(want, fmt.Sprintf("E%d", i))
	}
	want = append(want, "E19", "E20", "E21")
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("expected %d experiments, have %v", len(want), ids)
	}
	for i, id := range ids {
		if id != want[i] {
			t.Errorf("ids[%d] = %s, want %s", i, id, want[i])
		}
	}
	if _, err := Run("E99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestAllExperimentsSmoke runs every registered experiment end to end and
// asserts each emits at least one non-empty table. The whole suite costs a
// few wall-clock seconds (virtual time is simulated), so no gating.
func TestAllExperimentsSmoke(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			res, err := Run(id)
			if err != nil {
				t.Fatal(err)
			}
			if res.ID != id {
				t.Errorf("result ID = %q, want %q", res.ID, id)
			}
			if len(res.Tables) == 0 {
				t.Fatal("experiment emitted no tables")
			}
			for ti, tb := range res.Tables {
				if len(tb.Rows) == 0 {
					t.Errorf("table %d (%q) has no rows", ti, tb.Title)
				}
			}
			if !strings.Contains(res.String(), "### "+id) {
				t.Error("rendered output missing experiment header")
			}
		})
	}
}

// TestE1Smoke runs the cheapest experiment end to end and sanity-checks
// the structure of its result (the full suite runs via cmd/nocpu-bench).
func TestE1Smoke(t *testing.T) {
	res, err := Run("E1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Fatalf("tables = %d", len(res.Tables))
	}
	seq := res.Tables[0]
	if len(seq.Rows) != len(figure2Steps) {
		t.Fatalf("figure-2 rows = %d, want %d", len(seq.Rows), len(figure2Steps))
	}
	out := res.String()
	for _, want := range []string{"discover.req", "connect.resp", "decentralized"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestE1Deterministic: identical runs produce identical tables.
func TestE1Deterministic(t *testing.T) {
	a, _ := Run("E1")
	b, _ := Run("E1")
	if a.String() != b.String() {
		t.Error("E1 output differs across runs")
	}
}

func TestMeasureInitOrdering(t *testing.T) {
	// Decentralized single-app init must beat the centralized baselines
	// (fewer privileged transitions); this is E1's headline assertion.
	dec, _ := measureInit(kindDecentralized, nil)
	dir, _ := measureInit(kindCentralDirect, nil)
	med, _ := measureInit(kindCentralMediated, nil)
	if dec <= 0 || dir <= 0 || med <= 0 {
		t.Fatal("non-positive init latency")
	}
	if dec >= dir {
		t.Errorf("decentralized init (%v) not faster than centralized (%v)", dec, dir)
	}
	_ = med
}

func TestE7SmallSmoke(t *testing.T) {
	res, err := Run("E7")
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Tables[0]
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Latency must be monotone non-decreasing with fanout.
	if tb.Rows[0][1] > tb.Rows[3][1] && len(tb.Rows[0][1]) >= len(tb.Rows[3][1]) {
		t.Errorf("discovery latency shrank with fanout: %v vs %v", tb.Rows[0][1], tb.Rows[3][1])
	}
}
