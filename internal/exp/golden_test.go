package exp

import (
	"os"
	"path/filepath"
	"testing"
)

// goldenIDs are the experiments pinned byte-for-byte. They are the
// ones that together cover every timing-sensitive layer new features
// get threaded through: E1 (bus control-plane init, all flavors), E2
// (NIC/virtqueue/SSD data plane under load), E9 (doorbell batching —
// virtqueue event timing), E10 (bus speed sensitivity — wire and
// processing latency), E15 (crash-restart-rejoin chaos schedules), E16
// (overload ramps), E17 (rack-scale fabric scaling and kill chaos,
// run with NO reconciler attached — pinning it proves the E19
// reconcile layer is byte-invisible until Attach is called) and E20
// (the adversarial-tenancy matrix — pinning it proves both that the
// attack runs are reproducible per seed AND, together with the other
// goldens all running tenancy-off, that the tenancy hooks compiled
// into bus/NIC/KVS/IOMMU are byte-invisible until a registry is
// configured) and E21 (the split-brain matrix — the only golden that
// runs with epoch leases ON, pinning the lease/fence/detector timing
// itself; the leases-OFF goldens E17/E19 prove the lease hooks are
// byte-invisible until Config.Leases is set). Any accidental event,
// cost, or ordering change from a feature that should be gated off
// shifts at least one of these tables.
var goldenIDs = []string{"E1", "E2", "E9", "E10", "E15", "E16", "E17", "E20", "E21"}

// TestTablesGolden asserts the pinned experiment tables are byte-
// identical to the recorded goldens. The overload defenses (credit flow
// control, bounded queues, admission control) are compiled into every
// layer these experiments exercise but default off — zero config must
// mean zero behavior change.
//
// Regenerate after an intentional timing change with:
//
//	NOCPU_REGEN_GOLDEN=1 go test -run TestTablesGolden ./internal/exp
func TestTablesGolden(t *testing.T) {
	regen := os.Getenv("NOCPU_REGEN_GOLDEN") != ""
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			res, err := Run(id)
			if err != nil {
				t.Fatal(err)
			}
			got := res.String()
			path := filepath.Join("testdata", "golden", id+".golden")
			if regen {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with NOCPU_REGEN_GOLDEN=1): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s table drifted from golden.\nIf the timing change is intentional, regenerate with NOCPU_REGEN_GOLDEN=1.\ngot:\n%s\nwant:\n%s", id, got, want)
			}
		})
	}
}
