package exp

import (
	"errors"
	"fmt"

	"nocpu/internal/adversary"
	"nocpu/internal/core"
	"nocpu/internal/fabric"
	"nocpu/internal/kvs"
	"nocpu/internal/metrics"
	"nocpu/internal/netsim"
	"nocpu/internal/sim"
	"nocpu/internal/tenant"
)

// E20 is the adversarial multi-tenancy experiment: a seeded malicious
// device (tenant 2) mounts the full attack matrix — rogue DMA, stale
// credit replay, stale-incarnation frame replay, discovery abuse,
// doorbell floods, cross-tenant KVS probing — against a well-behaved
// tenant (tenant 1) on both machine flavors and on the N-machine
// fabric, while the tenancy ledger audits three invariants:
//
//	S1  no cross-tenant access ever succeeds, and every refusal is
//	    typed (an error, a DenialReport, a denial record) — never a
//	    silent drop;
//	S2  the victim's goodput and p99 under attack stay within the
//	    declared bound of its unattacked baseline;
//	S3  every denial is attributed to the attacker, and only the
//	    attacker's budget is exhausted.
//
// The blast-radius comparison is the compromised-kernel cell: a
// centralos head that misprograms a cross-tenant mapping succeeds
// instantly when the kernel is the only authority, and is refused by
// the device's own isolation-domain check when per-device enforcement
// is on — the paper's decentralization argument restated as a security
// property.

// E20 tuning. The attacked phase overlays an open-loop cross-tenant
// probe spam on the victim's closed-loop workload; budgets for the
// attacking tenant keep the damage on the attacker's side of the
// boundary. S2's declared bound is deliberately loose — the claim is
// containment, not zero interference.
const (
	e20Seed      = uint64(0xE20)
	e20Keys      = 48
	e20ValSize   = 64
	e20Workers   = 8
	e20PerWorker = 64

	e20SpamRate   = 400_000.0 // attacker probes/s, open loop
	e20SpamWindow = 2 * sim.Millisecond

	e20MinGoodput = 0.50 // S2: attacked goodput >= 50% of baseline
	e20MaxP99Mult = 8.0  // S2: attacked p99 <= 8x baseline

	e20AdversaryID = 90
	e20FloodSends  = 40

	e20FabricN         = 8
	e20FabricKeys      = 64
	e20FabricWorkers   = 16
	e20FabricPerWorker = 32
)

func e20Key(i int) string { return fmt.Sprintf("t1/e20-%04d", i) }

// e20Budget is the attacking tenant's declared share. RxBound only
// applies on the single machine (the KVS store answers sheds at the
// edge); the fabric router wire-drops edge sheds, so the fabric cell
// contains the attacker at the stores' admission budget instead.
func e20Budget(rxBound uint32) tenant.Budget {
	return tenant.Budget{CreditWindow: 4, KVSInflight: 2, RxBound: rxBound}
}

// e20Cell is one audited attack run.
type e20Cell struct {
	label    string
	rep      tenant.Report
	refused  int
	mounted  int
	baseline netsim.Stats
	attacked netsim.Stats
	denAtk   int // denials attributed to the attacker
	denVic   int // denials attributed to the victim (must be 0)
	probes   uint64
	leaked   uint64
}

func (c *e20Cell) goodputRatio() float64 {
	if c.baseline.Throughput() == 0 {
		return 0
	}
	return c.attacked.Throughput() / c.baseline.Throughput()
}

// e20Audit runs the shared ledger judgment for one cell.
func e20Audit(cell *e20Cell, led *tenant.Ledger, reg *tenant.Registry) {
	led.AuditGoodput(c2f(cell.baseline), c2f(cell.attacked),
		cell.baseline.Latency.P99(), cell.attacked.Latency.P99(),
		e20MinGoodput, e20MaxP99Mult)
	led.AuditAttribution(reg.Denials())
	led.AuditContainment(e20BudgetDenials(reg, 2), e20BudgetDenials(reg, 1))
	cell.denAtk = len(reg.DenialsBy(2))
	cell.denVic = len(reg.DenialsBy(1))
	cell.rep = led.Report()
}

func c2f(s netsim.Stats) float64 { return float64(s.Completed) }

// e20BudgetDenials counts budget-exhaustion denials charged to one
// tenant.
func e20BudgetDenials(reg *tenant.Registry, t tenant.ID) uint64 {
	var n uint64
	for _, d := range reg.DenialsBy(t) {
		if d.Class == tenant.DenyBudget {
			n++
		}
	}
	return n
}

// e20NoteOutcomes feeds the adversary's outcome log to the ledger.
func e20NoteOutcomes(led *tenant.Ledger, cell *e20Cell, outcomes []adversary.Outcome) {
	for _, o := range outcomes {
		led.NoteAttack(o.Class, !o.Refused, o.Typed, o.Attack+": "+o.Detail)
		cell.mounted++
		if o.Refused && o.Typed {
			cell.refused++
		}
	}
}

// e20VictimLoad is the well-behaved tenant's closed-loop get workload,
// stamped t1 at the NIC edge.
func e20VictimLoad(eng *sim.Engine, seed uint64, workers, perWorker, keys int, target netsim.Target) *netsim.ClosedLoop {
	return &netsim.ClosedLoop{
		Eng: eng, Rand: sim.NewRand(seed), Workers: workers, PerWorker: perWorker,
		Gen: func(rd *sim.Rand, seq uint64) []byte {
			return kvs.EncodeRequest(kvs.Request{Op: kvs.OpGet, Key: e20Key(rd.Intn(keys))})
		},
		IsError: kvsIsError,
		Target:  target,
	}
}

// e20Spam is the attacker's open-loop cross-tenant probe generator,
// stamped t2 at the edge. Replies are classified into the cell's
// leak/denial tallies; StatusShed is the attacker's own budget biting.
func e20Spam(eng *sim.Engine, seed uint64, keys int, target netsim.Target, cell *e20Cell) *netsim.OpenLoop {
	return &netsim.OpenLoop{
		Eng: eng, Rand: sim.NewRand(seed), Rate: e20SpamRate, Duration: e20SpamWindow,
		Gen: func(rd *sim.Rand, seq uint64) []byte {
			return kvs.EncodeRequest(kvs.Request{Op: kvs.OpGet, Key: e20Key(rd.Intn(keys))})
		},
		IsError: func(b []byte) bool {
			cell.probes++
			resp, err := kvs.DecodeResponse(b)
			if err != nil {
				return true
			}
			if resp.Status == kvs.StatusOK || resp.Status == kvs.StatusNotFound {
				cell.leaked++
			}
			return false
		},
		Target: target,
	}
}

// e20Machine runs the full matrix on one booted machine.
func e20Machine(kind machineKind) *e20Cell {
	seed := e20Seed ^ uint64(kind)<<8
	reg := tenant.NewRegistry()
	reg.BindApp(1, 1) // the victim store's address space is tenant 1's
	reg.SetBudget(2, e20Budget(2))
	rig := newKVSRig(kind, seed, func(o *core.Options) { o.Tenancy = reg }, nil)
	// The victim's NIC joins its tenant's domain (so discovery scoping
	// has something to hide from the adversary).
	nicID := rig.sys.NIC().Device().ID()
	reg.BindDevice(nicID, 1)

	cell := &e20Cell{label: kind.label()}
	led := tenant.NewLedger(2, 1)
	eng := rig.sys.Eng
	stamped := func(tn uint16) netsim.Target {
		return func(p []byte, reply func([]byte)) {
			rig.sys.NIC().DeliverFrom(tn, rig.store.AppID(), p, reply)
		}
	}

	// Preload and baseline, attacker not yet attached.
	e20Run(rig, e20Preload(eng, seed^1, stamped(1)))
	base := e20VictimLoad(eng, seed^2, e20Workers, e20PerWorker, e20Keys, stamped(1))
	e20Run(rig, base)
	cell.baseline = base.Stats()

	adv, err := adversary.Attach(eng, rig.sys.Bus, rig.sys.Mem, reg, adversary.Config{
		ID: e20AdversaryID, Tenant: 2, Seed: seed ^ 0xAD,
	})
	if err != nil {
		panic(fmt.Sprintf("exp: e20 adversary: %v", err))
	}
	eng.Run()

	// Control-plane attack matrix.
	run := func() { eng.Run() }
	adv.AttackRogueDMA(1)
	adv.AttackStaleCredit(run)
	adv.AttackReplay(nicID, run)
	adv.AttackDiscovery("kvstore", run)
	adv.AttackFlood(nicID, e20FloodSends, run)
	adv.AttackKVSProbe(rig.sys.NIC(), rig.store.AppID(),
		[]string{"t1/e20-0000", "t1/absent", "t1/e20-0001"}, run)

	// Compromised kernel (centralized only): the head node misprograms a
	// cross-tenant mapping into the adversary's device. The device's own
	// domain check must refuse it, typed.
	if rig.sys.CPU != nil {
		rig.sys.CPU.AttachDeviceIOMMU(e20AdversaryID, adv.IOMMU())
		merr := rig.sys.CPU.Misprogram(e20AdversaryID, 1, 0x4000_0000, 2*4096)
		var terr *tenant.Error
		typed := errors.As(merr, &terr)
		led.NoteAttack(tenant.DenyDMA, merr == nil, typed, fmt.Sprintf("kernel misprogram: %v", merr))
		cell.mounted++
		if merr != nil && typed {
			cell.refused++
		}
	}
	e20NoteOutcomes(led, cell, adv.Outcomes())

	// Attacked phase: probe spam overlaid on the victim's workload.
	spam := e20Spam(eng, seed^3, e20Keys, stamped(2), cell)
	spamDone := false
	spam.Run(func() { spamDone = true })
	atk := e20VictimLoad(eng, seed^4, e20Workers, e20PerWorker, e20Keys, stamped(1))
	e20Run(rig, atk)
	rig.drain(&spamDone)
	cell.attacked = atk.Stats()
	led.NoteAttack(tenant.DenyKVS, cell.leaked > 0, cell.probes > cell.leaked,
		fmt.Sprintf("probe spam: %d probes, %d leaked", cell.probes, cell.leaked))
	cell.mounted++
	if cell.leaked == 0 {
		cell.refused++
	}

	e20Audit(cell, led, reg)
	return cell
}

// e20Preload writes the victim's keys, stamped t1.
func e20Preload(eng *sim.Engine, seed uint64, target netsim.Target) *netsim.ClosedLoop {
	return &netsim.ClosedLoop{
		Eng: eng, Rand: sim.NewRand(seed), Workers: 8, PerWorker: (e20Keys + 7) / 8,
		Gen: func(rd *sim.Rand, seq uint64) []byte {
			return kvs.EncodeRequest(kvs.Request{
				Op: kvs.OpPut, Key: e20Key(int(seq) % e20Keys), Value: make([]byte, e20ValSize),
			})
		},
		Target: target,
	}
}

func e20Run(rig *kvsRig, cl *netsim.ClosedLoop) {
	done := false
	cl.Run(func() { done = true })
	rig.drain(&done)
}

// e20Misprogram runs the blast-radius control: a centralized machine
// WITHOUT per-device checks, whose kernel maps tenant 1's app into an
// arbitrary device unchallenged.
func e20Misprogram() string {
	rig := newKVSRig(kindCentralDirect, e20Seed^0xBAD, nil, nil)
	nicID := rig.sys.NIC().Device().ID()
	if err := rig.sys.CPU.Misprogram(nicID, 1, 0x4000_0000, 2*4096); err != nil {
		return fmt.Sprintf("unexpected refusal: %v", err)
	}
	return "mapping installed unchallenged"
}

// e20Fabric runs the KVS half of the matrix rack-wide: cross-tenant
// probe spam against an N-machine sharded fabric under each control
// architecture, with one shared registry.
func e20Fabric(flavor fabric.Flavor) *e20Cell {
	seed := e20Seed ^ 0xF ^ uint64(flavor)<<12
	reg := tenant.NewRegistry()
	reg.SetBudget(2, e20Budget(0)) // no rx partition: routers wire-drop edge sheds
	cl := fabric.MustNew(fabric.Config{
		N: e20FabricN, Flavor: flavor, Seed: seed,
		MachineMemory: e17Memory, Tenancy: reg,
	})
	if err := cl.Boot(); err != nil {
		panic(fmt.Sprintf("exp: e20 fabric boot: %v", err))
	}
	label := "fabric decentralized"
	if flavor == fabric.FlavorHead {
		label = "fabric head-node"
	}
	cell := &e20Cell{label: fmt.Sprintf("%s N=%d", label, e20FabricN)}
	led := tenant.NewLedger(2, 1)

	target := func(tn uint16) netsim.Target {
		rr := 0
		return func(p []byte, reply func([]byte)) {
			live := cl.LiveIDs()
			rr++
			cl.TenantIngress(live[rr%len(live)], tn)(p, reply)
		}
	}
	drain := func(done *bool) { e17Drain(cl, done) }

	pre := &netsim.ClosedLoop{
		Eng: cl.Eng, Rand: sim.NewRand(seed ^ 1), Workers: 8, PerWorker: (e20FabricKeys + 7) / 8,
		Gen: func(rd *sim.Rand, seq uint64) []byte {
			return kvs.EncodeRequest(kvs.Request{
				Op: kvs.OpPut, Key: e20Key(int(seq) % e20FabricKeys), Value: make([]byte, e20ValSize),
			})
		},
		Target: target(1),
	}
	done := false
	pre.Run(func() { done = true })
	drain(&done)

	base := e20VictimLoad(cl.Eng, seed^2, e20FabricWorkers, e20FabricPerWorker, e20FabricKeys, target(1))
	done = false
	base.Run(func() { done = true })
	drain(&done)
	cell.baseline = base.Stats()

	// Admission flood: the attacker hammers its own shard with a
	// concurrent burst far past its per-tenant inflight budget — the
	// stores must shed the excess as DenyBudget on the attacker's tab.
	burn := &netsim.ClosedLoop{
		Eng: cl.Eng, Rand: sim.NewRand(seed ^ 5), Workers: 1, PerWorker: 1,
		Gen: func(rd *sim.Rand, seq uint64) []byte {
			return kvs.EncodeRequest(kvs.Request{Op: kvs.OpPut, Key: "t2/burn", Value: make([]byte, e20ValSize)})
		},
		Target: target(2),
	}
	done = false
	burn.Run(func() { done = true })
	drain(&done)
	flood := &netsim.ClosedLoop{
		Eng: cl.Eng, Rand: sim.NewRand(seed ^ 6), Workers: 16, PerWorker: 8,
		Gen: func(rd *sim.Rand, seq uint64) []byte {
			return kvs.EncodeRequest(kvs.Request{Op: kvs.OpGet, Key: "t2/burn"})
		},
		Target: target(2),
	}
	done = false
	flood.Run(func() { done = true })
	drain(&done)
	floodSheds := e20BudgetDenials(reg, 2)
	led.NoteAttack(tenant.DenyBudget, false, floodSheds > 0,
		fmt.Sprintf("admission flood: %d budget sheds", floodSheds))
	cell.mounted++
	if floodSheds > 0 {
		cell.refused++
	}

	spam := e20Spam(cl.Eng, seed^3, e20FabricKeys, target(2), cell)
	spamDone := false
	spam.Run(func() { spamDone = true })
	atk := e20VictimLoad(cl.Eng, seed^4, e20FabricWorkers, e20FabricPerWorker, e20FabricKeys, target(1))
	done = false
	atk.Run(func() { done = true })
	drain(&done)
	drain(&spamDone)
	cell.attacked = atk.Stats()

	led.NoteAttack(tenant.DenyKVS, cell.leaked > 0, cell.probes > cell.leaked,
		fmt.Sprintf("rack probe spam: %d probes, %d leaked", cell.probes, cell.leaked))
	cell.mounted++
	if cell.leaked == 0 {
		cell.refused++
	}
	e20Audit(cell, led, reg)
	return cell
}

// E20Tenancy runs the blast-radius ledger.
func E20Tenancy() *Result {
	res := &Result{ID: "E20", Title: "Adversarial multi-tenancy: attack matrix and blast radius"}

	matrix := metrics.NewTable(
		fmt.Sprintf("attack matrix per machine flavor (attacker t2 budget: credits=4 kvs=2 rx=2; S2 bound: goodput >= %.0f%%, p99 <= %.0fx)",
			e20MinGoodput*100, e20MaxP99Mult),
		"machine", "attacks", "refused typed", "S1 viol", "S2 viol", "S3 viol",
		"victim goodput", "base p99", "attacked p99", "denials->t2", "denials->t1")
	cells := []*e20Cell{
		e20Machine(kindDecentralized),
		e20Machine(kindCentralDirect),
		e20Fabric(fabric.FlavorDecentralized),
		e20Fabric(fabric.FlavorHead),
	}
	for _, c := range cells {
		matrix.AddRow(c.label, c.mounted, c.refused, c.rep.S1Viols, c.rep.S2Viols, c.rep.S3Viols,
			fmt.Sprintf("%.0f%%", c.goodputRatio()*100),
			c.baseline.Latency.P99(), c.attacked.Latency.P99(), c.denAtk, c.denVic)
		for _, v := range c.rep.Violations {
			res.Notes = append(res.Notes, fmt.Sprintf("VIOLATION [%s]: %s", c.label, v))
		}
	}
	res.Tables = append(res.Tables, matrix)

	blast := metrics.NewTable(
		"compromised-kernel blast radius: head node maps tenant 1's app into a foreign device",
		"per-device domain checks", "outcome")
	blast.AddRow("on (decentralized enforcement)", "refused by the device's IOMMU, typed tenant error")
	blast.AddRow("off (kernel is sole authority)", e20Misprogram())
	res.Tables = append(res.Tables, blast)

	res.Notes = append(res.Notes,
		"S1: cross-tenant accesses that succeeded or were refused silently; S2: victim goodput/p99 excursions beyond the declared bound; S3: misattributed denials or uncontained budget damage",
		"every cell must read 0/0/0 — the table is a regression oracle, not a benchmark",
		"fabric cells contain the attacker at the shard stores' admission budget; single-machine cells also shed at the NIC rx partition")
	return res
}
