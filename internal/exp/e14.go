package exp

import (
	"fmt"
	"sort"

	"nocpu/internal/core"
	"nocpu/internal/faultinject"
	"nocpu/internal/kvs"
	"nocpu/internal/metrics"
	"nocpu/internal/sim"
)

// E14 quantifies §4's "error handling" position: a decentralized machine
// has no reliable kernel to hide transport faults behind, so every device
// and the runtime library must tolerate them directly. The reliability
// layer (bus NACKs + sequence dedup + per-request timeout/retry in
// internal/smartnic, idempotent replay in the providers) is exercised by
// dropping a fraction of all bus messages and measuring what it costs.

// e14InitResult is one initialization trial's outcome.
type e14InitResult struct {
	ok      bool
	latency sim.Duration
	retries uint64
	drops   uint64
}

// e14Init runs one Figure-2 initialization under a bus-message drop rate.
// Unlike measureInit it tolerates failure: a typed timeout from the retry
// layer counts as an unsuccessful (but clean) trial.
func e14Init(kind machineKind, rate float64, trial uint64) e14InitResult {
	plane := faultinject.New(0xE14 + trial)
	if rate > 0 {
		plane.Add(faultinject.Rule{Layer: faultinject.LayerBus, Op: faultinject.Drop, Prob: rate})
	}
	opts := core.Options{Flavor: kind.flavor(), Seed: 71 + trial, NoTrace: true, FaultPlane: plane}
	sys := core.MustNew(opts)
	if err := sys.Boot(); err != nil {
		return e14InitResult{drops: plane.Stats().Dropped}
	}
	if err := sys.CreateFile("kv.dat", nil); err != nil {
		panic(err)
	}
	if sys.CPU != nil {
		sys.CPU.RegisterFile("kv.dat", core.FirstSSD)
	}
	cfg := kvs.Config{App: 1, FileName: "kv.dat", QueueEntries: 128}
	if kind == kindDecentralized {
		cfg.Memctrl = core.ControlID
	} else {
		cfg.Mode, cfg.Kernel = kvs.ModeCentralDirect, core.ControlID
	}
	store := kvs.New(cfg)
	var readyAt sim.Time = -1
	failed := false
	store.OnReady = func(err error) {
		if err != nil {
			failed = true
			return
		}
		if readyAt < 0 {
			readyAt = sys.Eng.Now()
		}
	}
	start := sys.Eng.Now()
	sys.NIC().AddApp(store)
	deadline := start.Add(2 * sim.Second)
	for readyAt < 0 && !failed && sys.Eng.Now() < deadline {
		sys.Eng.RunFor(50 * sim.Microsecond)
	}
	out := e14InitResult{
		retries: sys.NIC().RetryStats().Retries,
		drops:   plane.Stats().Dropped,
	}
	if readyAt >= 0 {
		out.ok = true
		out.latency = readyAt.Sub(start)
	}
	return out
}

// E14FaultTolerance sweeps bus-message drop rates over initialization and
// steady-state KVS service for the decentralized machine and the
// centralized baselines.
func E14FaultTolerance() *Result {
	res := &Result{ID: "E14", Title: "Fault injection: init and steady-state KVS under message loss"}

	const trials = 5
	rates := []float64{0, 0.01, 0.02, 0.05, 0.10}

	init := metrics.NewTable(fmt.Sprintf("Figure-2 initialization under bus message loss (%d trials/cell)", trials),
		"machine", "drop rate", "success", "median init", "vs 0%", "retries/trial", "drops/trial")
	for _, kind := range []machineKind{kindDecentralized, kindCentralDirect} {
		base := sim.Duration(0)
		for _, rate := range rates {
			var lats []sim.Duration
			var retries, drops uint64
			okCount := 0
			for t := uint64(0); t < trials; t++ {
				r := e14Init(kind, rate, t)
				retries += r.retries
				drops += r.drops
				if r.ok {
					okCount++
					lats = append(lats, r.latency)
				}
			}
			med := sim.Duration(0)
			if len(lats) > 0 {
				sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
				med = lats[len(lats)/2]
			}
			if rate == 0 {
				base = med
			}
			vs := "-"
			if base > 0 && med > 0 {
				vs = fmt.Sprintf("%.2fx", float64(med)/float64(base))
			}
			init.AddRow(kind.label(), fmt.Sprintf("%.0f%%", rate*100),
				fmt.Sprintf("%d/%d", okCount, trials), med, vs,
				fmt.Sprintf("%.1f", float64(retries)/trials),
				fmt.Sprintf("%.1f", float64(drops)/trials))
		}
	}
	res.Tables = append(res.Tables, init)

	// Steady state: boot and preload fault-free, then switch the drop rule
	// on and serve a closed-loop get workload. The decentralized (and
	// centralized-control) data plane never crosses the bus, so bus loss
	// must cost it nothing; every kernel-mediated I/O is a pair of bus
	// messages and pays for each loss with a retransmission timeout.
	const keys = 64
	steady := metrics.NewTable("steady-state gets under bus message loss (closed loop, 4 workers x 100 ops, 128B values)",
		"machine", "drop rate", "ops", "errors", "p50", "p99", "retries")
	for _, kind := range []machineKind{kindDecentralized, kindCentralDirect, kindCentralMediated} {
		for _, rate := range []float64{0, 0.05, 0.10} {
			plane := faultinject.New(0xE14)
			rig := newKVSRig(kind, 73, func(o *core.Options) { o.FaultPlane = plane }, nil)
			rig.preload(keys, 128)
			if rate > 0 {
				plane.Add(faultinject.Rule{Layer: faultinject.LayerBus, Op: faultinject.Drop, Prob: rate})
			}
			before := rig.sys.NIC().RetryStats().Retries
			st := rig.getLoad(4, 100, keys)
			retries := rig.sys.NIC().RetryStats().Retries - before
			steady.AddRow(kind.label(), fmt.Sprintf("%.0f%%", rate*100),
				st.Completed, st.Errors, st.Latency.P50(), st.Latency.P99(), retries)
		}
	}
	res.Tables = append(res.Tables, steady)

	res.Notes = append(res.Notes,
		"init converges via bounded exponential-backoff retransmission on every machine; added latency is retries x timeout, not failure",
		"steady state separates the architectures: P2P data planes (decentralized, centralized-control) never touch the lossy bus, kernel-mediated I/O pays a retransmission timeout per lost syscall message",
		"a trial that exhausts its retry budget fails with a typed TimeoutError — no hangs (enforced by the fault-matrix test's virtual-time watchdog)")
	return res
}
