package exp

import (
	"testing"

	"nocpu/internal/fabric"
)

// TestE20MatrixClean is the tenancy tier's hard gate: every cell of the
// attack matrix — both machine flavors and both fabric control
// architectures — must uphold S1 (no cross-tenant access, every
// refusal typed), S2 (victim goodput/p99 within the declared bound)
// and S3 (attribution and budget containment) with zero violations.
func TestE20MatrixClean(t *testing.T) {
	cells := map[string]func() *e20Cell{
		"decentralized": func() *e20Cell { return e20Machine(kindDecentralized) },
		"centralized":   func() *e20Cell { return e20Machine(kindCentralDirect) },
		"fabric-decent": func() *e20Cell { return e20Fabric(fabric.FlavorDecentralized) },
		"fabric-head":   func() *e20Cell { return e20Fabric(fabric.FlavorHead) },
	}
	for name, build := range cells {
		build := build
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			c := build()
			if c.mounted == 0 {
				t.Fatal("no attacks mounted")
			}
			if c.refused != c.mounted {
				t.Errorf("refused typed %d of %d attacks", c.refused, c.mounted)
			}
			if !c.rep.Clean() {
				t.Errorf("ledger not clean: S1=%d S2=%d S3=%d: %v",
					c.rep.S1Viols, c.rep.S2Viols, c.rep.S3Viols, c.rep.Violations)
			}
			if c.leaked != 0 {
				t.Errorf("probe spam leaked %d of %d cross-tenant reads", c.leaked, c.probes)
			}
			if c.probes == 0 {
				t.Error("probe spam never fired")
			}
			if c.denVic != 0 {
				t.Errorf("victim charged with %d denials", c.denVic)
			}
			if c.denAtk == 0 {
				t.Error("no denials attributed to the attacker")
			}
		})
	}
}

// TestE20CompromisedKernel pins the blast-radius contrast: without
// per-device domain checks the kernel's misprogrammed mapping lands
// unchallenged.
func TestE20CompromisedKernel(t *testing.T) {
	if got := e20Misprogram(); got != "mapping installed unchallenged" {
		t.Errorf("unenforced misprogram: %s", got)
	}
}

// TestE20Deterministic: one cell, same seed, twice — identical audited
// numbers (the table is golden-pinned on top of this).
func TestE20Deterministic(t *testing.T) {
	a, b := e20Machine(kindDecentralized), e20Machine(kindDecentralized)
	if a.probes != b.probes || a.denAtk != b.denAtk || a.mounted != b.mounted ||
		a.baseline.Completed != b.baseline.Completed ||
		a.attacked.Latency.P99() != b.attacked.Latency.P99() {
		t.Errorf("same-seed cells diverged:\n%+v\n%+v", a, b)
	}
}
