package exp

import (
	"fmt"

	"nocpu/internal/core"
	"nocpu/internal/kvs"
	"nocpu/internal/metrics"
	"nocpu/internal/msg"
	"nocpu/internal/netsim"
	"nocpu/internal/sim"
	"nocpu/internal/smartnic"
	"nocpu/internal/trace"
)

// measureInit boots a machine of the given kind and returns the time from
// application load to KVS readiness (the Figure-2 sequence end to end,
// including index recovery of an empty file).
func measureInit(kind machineKind, tweak func(*core.Options)) (sim.Duration, *core.System) {
	opts := core.Options{Flavor: kind.flavor(), Seed: 11}
	if tweak != nil {
		tweak(&opts)
	}
	sys := core.MustNew(opts)
	if err := sys.Boot(); err != nil {
		panic(err)
	}
	if err := sys.CreateFile("kv.dat", nil); err != nil {
		panic(err)
	}
	if sys.CPU != nil {
		sys.CPU.RegisterFile("kv.dat", core.FirstSSD)
	}
	var readyAt sim.Time = -1
	cfg := kvs.Config{App: 1, FileName: "kv.dat", QueueEntries: 128}
	switch kind {
	case kindCentralDirect:
		cfg.Mode, cfg.Kernel = kvs.ModeCentralDirect, core.ControlID
	case kindCentralMediated:
		cfg.Mode, cfg.Kernel = kvs.ModeCentralMediated, core.ControlID
	default:
		cfg.Memctrl = core.ControlID
	}
	store := kvs.New(cfg)
	store.OnReady = func(err error) {
		if err == nil && readyAt < 0 {
			readyAt = sys.Eng.Now()
		}
	}
	start := sys.Eng.Now()
	sys.NIC().AddApp(store)
	deadline := start.Add(sim.Second)
	for readyAt < 0 && sys.Eng.Now() < deadline {
		sys.Eng.RunFor(10 * sim.Microsecond)
	}
	if readyAt < 0 {
		panic("exp: init never completed")
	}
	return readyAt.Sub(start), sys
}

// figure2Steps maps trace kinds to the paper's Figure-2 step numbers.
var figure2Steps = []struct {
	kind string
	step string
}{
	{"discover.req", "1 NIC->bus broadcast: who owns the file?"},
	{"discover.resp", "2 SSD: I offer a service for that file"},
	{"open.req", "3 NIC->SSD: open (authorization token)"},
	{"open.resp", "4 SSD->NIC: connection details + shm size"},
	{"alloc.req", "5 NIC->memctrl: allocate shared memory"},
	{"alloc.resp", "6 bus programs NIC IOMMU, forwards response"},
	{"grant.req", "7a NIC->bus: grant region to SSD"},
	{"auth.req", "7a bus->memctrl: authorized?"},
	{"auth.resp", "7a memctrl->bus: yes, frames attached"},
	{"grant.resp", "7a bus programmed SSD IOMMU"},
	{"connect.req", "7b NIC programs VIRTIO queue in SSD"},
	{"connect.resp", "7b SSD: queue live"},
}

// E1InitSequence reproduces Figure 2: the exact message sequence of KVS
// initialization on the CPU-less machine, its per-step latency, and the
// total against the centralized baselines.
func E1InitSequence() *Result {
	res := &Result{ID: "E1", Title: "Figure-2 initialization sequence and latency"}

	_, sys := measureInit(kindDecentralized, nil)
	seq := metrics.NewTable("Figure-2 message sequence (decentralized)",
		"paper step", "message", "at", "delta")
	var events []trace.Event
	for _, want := range figure2Steps {
		for _, e := range sys.Tracer.Events() {
			if e.Kind == want.kind {
				events = append(events, e)
				break
			}
		}
	}
	prev := sim.Time(-1)
	for i, e := range events {
		delta := sim.Duration(0)
		if prev >= 0 {
			delta = e.At.Sub(prev)
		}
		prev = e.At
		seq.AddRow(figure2Steps[i].step, e.Kind, e.At, delta)
	}
	res.Tables = append(res.Tables, seq)

	cmp := metrics.NewTable("application-initialization latency by machine",
		"machine", "init latency", "vs paper")
	base := sim.Duration(0)
	for _, kind := range []machineKind{kindDecentralized, kindCentralDirect, kindCentralMediated} {
		d, _ := measureInit(kind, nil)
		if kind == kindDecentralized {
			base = d
		}
		cmp.AddRow(kind.label(), d, fmt.Sprintf("%.2fx", float64(d)/float64(base)))
	}
	res.Tables = append(res.Tables, cmp)
	res.Notes = append(res.Notes,
		"single-app init is control-message-bound on every machine; the decentralized win appears under concurrency (E3) and isolation (E4)")
	return res
}

// E2Dataplane sweeps offered load on the KVS get path for the three
// machines. The paper's claim: once offloaded, the data plane needs no
// CPU — so P2P (decentralized or centralized-control) must match, and
// the kernel-mediated stack must saturate earlier with higher latency.
func E2Dataplane() *Result {
	res := &Result{ID: "E2", Title: "KVS data plane: throughput/latency vs offered load"}
	const keys = 256
	rates := []float64{10e3, 25e3, 50e3, 100e3, 150e3}
	tb := metrics.NewTable("open-loop gets (512B values), 30ms windows",
		"machine", "offered/s", "achieved/s", "p50", "p99", "errors")
	for _, kind := range []machineKind{kindDecentralized, kindCentralDirect, kindCentralMediated} {
		for _, rate := range rates {
			rig := newKVSRig(kind, 21, nil, nil)
			rig.preload(keys, 512)
			ol := &netsim.OpenLoop{
				Eng: rig.sys.Eng, Rand: rig.sys.Rand.Fork(),
				Rate: rate, Duration: 30 * sim.Millisecond,
				Gen: func(r *sim.Rand, seq uint64) []byte {
					return kvs.EncodeRequest(kvs.Request{Op: kvs.OpGet, Key: keyName(r.Intn(keys))})
				},
				IsError: kvsIsError,
				Target:  rig.target(),
			}
			done := false
			ol.Run(func() { done = true })
			rig.drain(&done)
			st := ol.Stats()
			tb.AddRow(kind.label(), fmt.Sprintf("%.0f", rate),
				fmt.Sprintf("%.0f", st.Throughput()), st.Latency.P50(), st.Latency.P99(), st.Errors)
		}
	}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"P2P rows (decentralized and centralized-control) should match: the CPU is not on the data path",
		"the kernel-mediated stack pays syscall+interrupt+copy per op and its tail inflates first")
	return res
}

// E3SetupScalability launches N applications concurrently and measures
// the makespan until all are serving — the §1 claim that decentralized
// control scales.
func E3SetupScalability() *Result {
	res := &Result{ID: "E3", Title: "Concurrent application-setup scalability"}
	tb := metrics.NewTable("N simultaneous KVS app initializations (one NIC, one SSD)",
		"machine", "apps", "makespan", "avg/app")
	for _, kind := range []machineKind{kindDecentralized, kindCentralDirect} {
		for _, n := range []int{1, 4, 16, 64} {
			opts := core.Options{Flavor: kind.flavor(), Seed: 31, NoTrace: true}
			sys := core.MustNew(opts)
			if err := sys.Boot(); err != nil {
				panic(err)
			}
			if err := sys.CreateFile("kv.dat", nil); err != nil {
				panic(err)
			}
			if sys.CPU != nil {
				sys.CPU.RegisterFile("kv.dat", core.FirstSSD)
			}
			ready := 0
			stores := make([]*kvs.Store, n)
			for i := 0; i < n; i++ {
				cfg := kvs.Config{App: appID(i + 1), FileName: "kv.dat", QueueEntries: 32}
				if kind == kindDecentralized {
					cfg.Memctrl = core.ControlID
				} else {
					cfg.Mode, cfg.Kernel = kvs.ModeCentralDirect, core.ControlID
				}
				stores[i] = kvs.New(cfg)
				stores[i].OnReady = func(err error) {
					if err == nil {
						ready++
					}
				}
			}
			start := sys.Eng.Now()
			for _, st := range stores {
				sys.NIC().AddApp(st)
			}
			deadline := start.Add(10 * sim.Second)
			for ready < n && sys.Eng.Now() < deadline {
				sys.Eng.RunFor(50 * sim.Microsecond)
			}
			if ready < n {
				panic(fmt.Sprintf("exp: only %d/%d apps ready", ready, n))
			}
			makespan := sys.Eng.Now().Sub(start)
			tb.AddRow(kind.label(), n, makespan, makespan/sim.Duration(n))
		}
	}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"decentralized setup pipelines across bus, memctrl and per-device IOMMU engines; the kernel serializes on its core pool")
	return res
}

// noisyApp hammers the control plane with alloc/free pairs — the noisy
// neighbor of E4 and the load generator of E8.
type noisyApp struct {
	id    msg.AppID
	bytes uint64
	rt    *smartnic.Runtime
	stop  bool
	pairs uint64
	errs  uint64
}

func (a *noisyApp) AppID() msg.AppID { return a.id }
func (a *noisyApp) Boot(rt *smartnic.Runtime) {
	a.rt = rt
	a.loop()
}
func (a *noisyApp) ServeNetwork(p []byte, reply func([]byte)) { reply(p) }
func (a *noisyApp) PeerFailed(msg.DeviceID)                   {}

func (a *noisyApp) loop() {
	if a.stop {
		return
	}
	a.rt.AllocShared(core.ControlID, a.bytes, func(va uint64, err error) {
		if err != nil {
			a.errs++
			return
		}
		a.rt.Free(core.ControlID, va, a.bytes, func(err error) {
			if err != nil {
				a.errs++
				return
			}
			a.pairs++
			a.loop()
		})
	})
}

// E4Isolation measures a victim KVS's tail latency while co-located
// tenants hammer the control plane — the §1 claim that decentralized
// control "can improve performance isolation".
func E4Isolation() *Result {
	res := &Result{ID: "E4", Title: "Performance isolation under control-plane noise"}
	tb := metrics.NewTable("victim get p99 with N noisy control-plane tenants (256 KiB alloc/free loops)",
		"machine", "noisy tenants", "victim p50", "victim p99", "noise ops/s")

	for _, kind := range []machineKind{kindDecentralized, kindCentralMediated} {
		for _, tenants := range []int{0, 4, 16} {
			rig := newKVSRig(kind, 41, func(o *core.Options) { o.ExtraNICs = 1 }, nil)
			rig.preload(128, 512)
			noisy := make([]*noisyApp, tenants)
			for i := range noisy {
				noisy[i] = &noisyApp{id: appID(100 + i), bytes: 256 << 10}
				rig.sys.NICs[1].AddApp(noisy[i])
			}
			st := rig.getLoad(8, 400, 128)
			var pairs uint64
			for _, a := range noisy {
				a.stop = true
				pairs += a.pairs
			}
			rate := 0.0
			if st.Span > 0 {
				rate = float64(2*pairs) / (float64(st.Span) / float64(sim.Second))
			}
			tb.AddRow(kind.label(), tenants, st.Latency.P50(), st.Latency.P99(), fmt.Sprintf("%.0f", rate))
		}
	}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"decentralized: the noise lands on bus+memctrl, which are not on the victim's data path",
		"kernel-mediated: the victim's every get crosses the same CPU the noise is saturating")
	return res
}

// E5FaultRecovery kills the SSD mid-run and decomposes the recovery
// timeline (§4 error handling), as a function of log size.
func E5FaultRecovery() *Result {
	res := &Result{ID: "E5", Title: "Device failure detection and recovery"}
	tb := metrics.NewTable("SSD hard failure: watchdog detection -> reset -> remount -> index rebuild",
		"log records", "snapshot", "detect", "reset+remount", "reconnect+scan", "total outage")
	for _, cse := range []struct {
		records  int
		snapshot bool
	}{
		{100, false}, {1000, false}, {4000, false}, {4000, true},
	} {
		records := cse.records
		sys := core.MustNew(core.Options{
			Flavor: core.Decentralized, Seed: 51,
			Watchdog: 500 * sim.Microsecond,
		})
		if err := sys.Boot(); err != nil {
			panic(err)
		}
		if err := sys.CreateFile("kv.dat", nil); err != nil {
			panic(err)
		}
		cfg := kvs.Config{App: 1, FileName: "kv.dat", Memctrl: core.ControlID, QueueEntries: 128}
		if cse.snapshot {
			cfg.SnapshotFile = "kv.snap"
		}
		store := kvs.New(cfg)
		ready := false
		store.OnReady = func(err error) {
			if err == nil {
				ready = true
			}
		}
		sys.NIC().AddApp(store)
		for !ready {
			sys.Eng.RunFor(100 * sim.Microsecond)
		}
		// Load the log.
		cl := &netsim.ClosedLoop{
			Eng: sys.Eng, Rand: sys.Rand.Fork(), Workers: 8, PerWorker: records / 8,
			Gen: func(r *sim.Rand, seq uint64) []byte {
				return kvs.EncodeRequest(kvs.Request{Op: kvs.OpPut, Key: keyName(int(seq)), Value: make([]byte, 256)})
			},
			Target: func(p []byte, reply func([]byte)) { sys.NIC().Deliver(1, p, reply) },
		}
		done := false
		cl.Run(func() { done = true })
		for !done {
			sys.Eng.RunFor(sim.Millisecond)
		}
		if cse.snapshot {
			snapped := false
			store.Snapshot(func(err error) {
				if err != nil {
					panic(err)
				}
				snapped = true
			})
			for !snapped {
				sys.Eng.RunFor(sim.Millisecond)
			}
		}

		killedAt := sys.Eng.Now()
		sys.SSD().Kill()
		var detectAt, remountAt, readyAt sim.Time
		deadline := killedAt.Add(5 * sim.Second)
		for readyAt == 0 && sys.Eng.Now() < deadline {
			sys.Eng.RunFor(10 * sim.Microsecond)
			if detectAt == 0 && !sys.Bus.Alive(core.FirstSSD) {
				detectAt = sys.Eng.Now()
			}
			if remountAt == 0 && detectAt != 0 && sys.SSD().Ready() {
				remountAt = sys.Eng.Now()
			}
			if remountAt != 0 && store.Ready() {
				readyAt = sys.Eng.Now()
			}
		}
		if readyAt == 0 {
			panic("exp: recovery incomplete")
		}
		snapLabel := "no"
		if cse.snapshot {
			snapLabel = "yes"
		}
		tb.AddRow(records, snapLabel,
			detectAt.Sub(killedAt),
			remountAt.Sub(detectAt),
			readyAt.Sub(remountAt),
			readyAt.Sub(killedAt))
	}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"detection is bounded by the watchdog timeout (500us here); scan time grows linearly with the log",
		"data durability: every record written before the failure is served after recovery (asserted in kvs tests)")
	return res
}
