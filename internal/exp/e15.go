package exp

import (
	"encoding/binary"
	"fmt"

	"nocpu/internal/chaos"
	"nocpu/internal/core"
	"nocpu/internal/faultinject"
	"nocpu/internal/kvs"
	"nocpu/internal/metrics"
	"nocpu/internal/sim"
)

// E15 is the crash-restart-rejoin experiment (§4 "error handling"): a
// seeded chaos schedule kills the NIC, the SSD and the control-plane
// device (memory controller or CPU kernel) — including one coordinated
// double-failure — in the middle of a KVS write workload, on both
// machine architectures. The chaos ledger asserts the three recovery
// guarantees (G1 no acked write lost, G2 no op applied twice, G3 every
// crash recovered within a bounded virtual-time window), and the bus
// incarnation counters show the rejoin protocol fencing the old life's
// messages.

// E15 tuning. The client-side op timeout must exceed the worst-case
// in-system lifetime of a write (the mediated retrier exhausts its
// budget in under 100ms of virtual time): a worker only reuses a key
// after the previous write to it is either resolved or provably dead,
// which is what makes the ledger's per-key value ordering sound.
const (
	e15Workers   = 4
	e15KeysPer   = 8
	e15Warmup    = 5 * sim.Millisecond
	e15Window    = 45 * sim.Millisecond
	e15MinGap    = 8 * sim.Millisecond
	e15Tail      = 10 * sim.Millisecond // workload continues past the window
	e15OpTimeout = 200 * sim.Millisecond
	e15ProbeGap  = 100 * sim.Microsecond
	// e15ErrBackoff paces a worker that got an error reply (store mid-
	// recovery answers Unavailable instantly; hammering it just inflates
	// the attempt count).
	e15ErrBackoff = 200 * sim.Microsecond
	// e15G3Bound is the recovery-window bound asserted by the chaos tier
	// tests: watchdog detection + reset + remount + reconnect + log scan,
	// with slack for back-to-back failures, is well under this.
	e15G3Bound = 50 * sim.Millisecond
)

// e15Sched names one crash campaign shape.
type e15Sched struct {
	name    string
	targets []string // of "nic", "ssd", "ctl"
	crashes int
	doubles int
}

var e15Scheds = []e15Sched{
	{"ssd x3", []string{"ssd"}, 3, 0},
	{"nic x3", []string{"nic"}, 3, 0},
	{"ctl x3", []string{"ctl"}, 3, 0},
	{"mixed + double", []string{"nic", "ssd", "ctl"}, 4, 1},
}

// e15Targets resolves target names to crash actions on a booted machine.
// "ctl" is the control-plane device: the memory controller on the
// decentralized machine, the CPU kernel on the centralized ones.
func e15Targets(kind machineKind, sys *core.System, names []string) []chaos.Target {
	out := make([]chaos.Target, len(names))
	for i, name := range names {
		t := chaos.Target{Name: name}
		switch name {
		case "nic":
			t.Crash = sys.NIC().Device().Kill
		case "ssd":
			t.Crash = sys.SSD().Kill
		case "ctl":
			if kind == kindDecentralized {
				t.Name = "memctrl"
				t.Crash = sys.Memctrl.Device().Kill
			} else {
				t.Name = "kernel"
				t.Crash = sys.CPU.Kill
			}
		default:
			panic("exp: unknown chaos target " + name)
		}
		out[i] = t
	}
	return out
}

func e15Value(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// e15Driver is the per-op-timeout write workload plus the recovery
// prober. netsim's closed loop cannot drive a crashing machine — an op
// lost in a crash would stall it forever — so every op here carries its
// own virtual-time timeout and the worker moves on.
type e15Driver struct {
	rig *kvsRig
	led *chaos.Ledger

	stopAt  sim.Time
	nextVal uint64
	puts    uint64
	acks    uint64
	tmouts  uint64
	errs    uint64
	done    int

	pending   []sim.Time // crash instants not yet followed by a success
	recovered []sim.Duration
}

// noteProgress marks service restored: any acknowledged operation closes
// every crash window still open.
func (d *e15Driver) noteProgress() {
	if len(d.pending) == 0 {
		return
	}
	now := d.rig.sys.Eng.Now()
	for _, at := range d.pending {
		d.recovered = append(d.recovered, now.Sub(at))
	}
	d.pending = d.pending[:0]
}

// worker runs one closed loop over its own key partition (no two workers
// share a key, so per-key write order equals issue order).
func (d *e15Driver) worker(w int) {
	eng := d.rig.sys.Eng
	keyIdx := 0
	var issue func()
	issue = func() {
		if eng.Now() >= d.stopAt {
			d.done++
			return
		}
		key := keyName(w*e15KeysPer + keyIdx)
		keyIdx = (keyIdx + 1) % e15KeysPer
		d.nextVal++
		val := d.nextVal
		d.led.NoteAttempt(key, val)
		d.puts++
		resolved := false
		var tm *sim.Timer
		req := kvs.EncodeRequest(kvs.Request{Op: kvs.OpPut, Key: key, Value: e15Value(val)})
		d.rig.sys.NIC().Deliver(d.rig.store.AppID(), req, func(b []byte) {
			resp, err := kvs.DecodeResponse(b)
			ok := err == nil && resp.Status == kvs.StatusOK
			if ok {
				// Count the ack even if it raced the timeout: the client
				// was told the write succeeded, so G1 must cover it.
				d.led.NoteAck(key, val)
				d.acks++
				d.noteProgress()
			}
			if resolved {
				return
			}
			resolved = true
			if tm != nil {
				tm.Stop()
			}
			if !ok {
				d.errs++
				eng.After(e15ErrBackoff, issue)
				return
			}
			issue()
		})
		tm = eng.After(e15OpTimeout, func() {
			if resolved {
				return
			}
			resolved = true
			d.tmouts++
			issue()
		})
	}
	issue()
}

// probe polls a warm key with short gets while a crash window is open,
// so recovery is timed by first service restoration rather than by the
// write workers' long op timeouts.
func (d *e15Driver) probe() {
	eng := d.rig.sys.Eng
	var tick func()
	tick = func() {
		if eng.Now() >= d.stopAt && len(d.pending) == 0 {
			return
		}
		if len(d.pending) > 0 {
			req := kvs.EncodeRequest(kvs.Request{Op: kvs.OpGet, Key: keyName(0)})
			d.rig.sys.NIC().Deliver(d.rig.store.AppID(), req, func(b []byte) {
				if resp, err := kvs.DecodeResponse(b); err == nil && resp.Status == kvs.StatusOK {
					d.noteProgress()
				}
			})
		}
		eng.After(e15ProbeGap, tick)
	}
	tick()
}

// readback sweeps every key the workload touched, retrying transient
// unavailability, and feeds the results to the ledger's G1/G2 checks.
func (d *e15Driver) readback() {
	eng := d.rig.sys.Eng
	keys := d.led.Keys()
	done := false
	i := 0
	var next func()
	next = func() {
		if i == len(keys) {
			done = true
			return
		}
		key := keys[i]
		resolved := false
		var tm *sim.Timer
		retry := func() {
			if resolved {
				return
			}
			resolved = true
			eng.After(500*sim.Microsecond, next)
		}
		req := kvs.EncodeRequest(kvs.Request{Op: kvs.OpGet, Key: key})
		d.rig.sys.NIC().Deliver(d.rig.store.AppID(), req, func(b []byte) {
			resp, err := kvs.DecodeResponse(b)
			if err != nil || resp.Status == kvs.StatusError || resp.Status == kvs.StatusUnavailable {
				retry() // store mid-recovery; ask again
				return
			}
			if resolved {
				return
			}
			resolved = true
			if tm != nil {
				tm.Stop()
			}
			if resp.Status == kvs.StatusNotFound {
				d.led.NoteRead(key, 0, false)
			} else if v := resp.Value; len(v) == 8 {
				d.led.NoteRead(key, binary.LittleEndian.Uint64(v), true)
				d.noteProgress()
			} else {
				// Corrupt value: report it as a never-issued read.
				d.led.NoteRead(key, ^uint64(0), true)
			}
			i++
			next()
		})
		tm = eng.After(2*sim.Millisecond, retry)
	}
	next()
	d.rig.drain(&done)
}

// e15Row is one (machine, schedule) cell's outcome.
type e15Row struct {
	report  chaos.Report
	crashes int
	puts    uint64
	tmouts  uint64
	errs    uint64
	rejoins uint64
	fenced  uint64
}

// e15Run executes one chaos campaign on a fresh machine. Exercised with
// race detection by the chaos test tier (make chaos).
func e15Run(kind machineKind, sc e15Sched, seed uint64) e15Row {
	const watchdog = 500 * sim.Microsecond
	rig := newKVSRig(kind, seed, func(o *core.Options) {
		o.Watchdog = watchdog
		if kind != kindDecentralized {
			// The kernel joins the lifecycle protocol: it heartbeats like
			// any device and reboots (with a cold, flushed kernel state)
			// when the bus resets it.
			o.CPU.HeartbeatEvery = watchdog / 4
			o.CPU.ResetDelay = 150 * sim.Microsecond
		}
	}, nil)
	eng := rig.sys.Eng

	plan := chaos.Plan{
		Seed:    seed,
		Start:   eng.Now().Add(e15Warmup),
		Window:  e15Window,
		Crashes: sc.crashes,
		MinGap:  e15MinGap,
		Doubles: sc.doubles,
		Targets: e15Targets(kind, rig.sys, sc.targets),
	}
	sched := plan.MustCompile()

	d := &e15Driver{rig: rig, led: chaos.NewLedger()}
	d.stopAt = plan.Start.Add(e15Window + e15Tail)
	plane := faultinject.New(seed)
	//lint:allow boundedqueue at most Plan.Crashes events ever arm, and noteProgress drains on every ack
	sched.Arm(eng, plane, func(ev chaos.Event) { d.pending = append(d.pending, ev.At) })
	for w := 0; w < e15Workers; w++ {
		d.worker(w)
	}
	d.probe()
	allDone := false
	check := func() bool { return d.done == e15Workers }
	for !allDone {
		deadline := eng.Now().Add(30 * sim.Second)
		for !check() && eng.Now() < deadline {
			eng.RunFor(sim.Millisecond)
		}
		if !check() {
			panic("exp: e15 workload did not drain (an op neither acked nor timed out)")
		}
		allDone = true
	}
	d.readback()

	rep := d.led.Report()
	rep.Recoveries = d.recovered
	bs := rig.sys.Bus.Stats()
	return e15Row{
		report:  rep,
		crashes: sc.crashes,
		puts:    d.puts,
		tmouts:  d.tmouts,
		errs:    d.errs,
		rejoins: bs.Rejoins,
		fenced:  bs.DeadSenderDropped,
	}
}

// E15CrashRecovery runs the chaos campaigns over both control planes.
func E15CrashRecovery() *Result {
	res := &Result{ID: "E15", Title: "Crash-restart-rejoin: chaos schedules over both control planes"}
	tb := metrics.NewTable(
		fmt.Sprintf("seeded crash schedules mid-KVS-write-workload (%d workers x %d keys, %v window)",
			e15Workers, e15Workers*e15KeysPer, e15Window),
		"machine", "schedule", "crashes", "puts", "acked", "timeouts", "lost acked (G1)",
		"dup applies (G2)", "recovered", "max recovery", "rejoins", "fenced msgs")
	for _, kind := range []machineKind{kindDecentralized, kindCentralDirect, kindCentralMediated} {
		for i, sc := range e15Scheds {
			row := e15Run(kind, sc, 0xE15+uint64(i))
			recovered := fmt.Sprintf("%d/%d", len(row.report.Recoveries), row.crashes)
			tb.AddRow(kind.label(), sc.name, row.crashes, row.puts, row.report.Acks,
				row.tmouts, row.report.G1Lost, row.report.G2Dups, recovered,
				row.report.MaxRecovery(), row.rejoins, row.fenced)
		}
	}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"G1/G2 are asserted by the chaos ledger: every write's value is unique per (key, attempt), so a lost acked write or a resurrected stale write is visible in the final read-back sweep",
		"recovery is timed from the crash instant to the next acknowledged operation (a short-timeout get prober runs while any crash window is open)",
		"control-plane crashes separate the architectures: the decentralized data plane never notices a dead memory controller, while the kernel-mediated column pays a full outage per kernel reboot",
		"fenced msgs counts old-incarnation traffic the bus dropped after a crashed device rejoined with a bumped incarnation (DeadSenderDropped)")
	return res
}
