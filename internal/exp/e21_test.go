package exp

import (
	"fmt"
	"testing"

	"nocpu/internal/fabric"
	"nocpu/internal/sim"
)

// TestE21AllCellsSafe is the partition tier's hard gate: every
// schedule × flavor cell must be linearizable (L1 over the client
// history), split-free (the probe never sees two unfenced lease-holding
// primaries for one key), and lossless (R1/R2). Unavailability is the
// only permitted symptom — bounded for every cell except the head-cut/
// head-node contrast row, where a permanent TYPED outage (R3
// unroutable) is the measured point. Runs under -race via
// `make partition`.
func TestE21AllCellsSafe(t *testing.T) {
	for idx, cell := range e21Cells() {
		for _, flavor := range []fabric.Flavor{fabric.FlavorDecentralized, fabric.FlavorHead} {
			idx, cell, flavor := idx, cell, flavor
			t.Run(fmt.Sprintf("%s/%s", cell.name, flavor), func(t *testing.T) {
				t.Parallel()
				row := e21Run(flavor, idx, cell)
				if !row.lin.OK {
					t.Errorf("L1 violated: history for key %q not linearizable", row.lin.BadKey)
				}
				if len(row.lin.Aborted) != 0 {
					t.Errorf("L1 checker aborted (budget) on keys %v — verdict unknown", row.lin.Aborted)
				}
				if row.splits != 0 {
					t.Errorf("split brain: %d samples saw >1 unfenced lease-holding primary", row.splits)
				}
				if row.rep.G1Lost != 0 {
					t.Errorf("R1 violated: %d acked writes lost: %v", row.rep.G1Lost, row.rep.Violations)
				}
				if row.rep.G2Dups != 0 {
					t.Errorf("R2 violated: %d duplicate applies: %v", row.rep.G2Dups, row.rep.Violations)
				}
				if row.acked == 0 {
					t.Error("cell acked nothing — the workload never ran")
				}

				headCollapse := cell.name == "head cut away" && flavor == fabric.FlavorHead
				if headCollapse {
					// The contrast row: decapitating the centralized control
					// plane excommunicates the whole fleet. The outage must
					// be typed (unroutable, zero lease holders), never wrong
					// data — the safety assertions above already ran.
					if len(row.rep.Unroutable) == 0 {
						t.Error("head collapse left keys routable — the contrast row lost its point")
					}
					if row.leasedEnd != 0 {
						t.Errorf("%d machines still hold leases after the head excommunicated the fleet", row.leasedEnd)
					}
					return
				}
				if len(row.rep.Unroutable) != 0 {
					t.Errorf("R3 violated: unroutable keys: %v", row.rep.Unroutable)
				}
				// Safety's price is bounded: detection + lease + fence.
				if max := 20 * sim.Millisecond; row.worstZero > max {
					t.Errorf("no-server window %v exceeds the %v bound", row.worstZero, max)
				}
				// Gray failures must be ridden out, not amplified into
				// membership churn.
				if cell.name == "flapping link" || cell.name == "fail-slow ×20" {
					if row.st.SilenceDeaths != 0 || row.st.ViewChanges != 0 || row.st.Suspicions != 0 {
						t.Errorf("gray failure amplified: suspicions=%d deaths=%d view changes=%d",
							row.st.Suspicions, row.st.SilenceDeaths, row.st.ViewChanges)
					}
				}
			})
		}
	}
}

// TestE21Reproducible: one cell, run twice, must agree field-for-field
// — the partition schedules, the probe, and the linearizability checker
// add no nondeterminism on top of the fabric's golden-trace guarantee.
func TestE21Reproducible(t *testing.T) {
	cells := e21Cells()
	runCell := func() string {
		row := e21Run(fabric.FlavorDecentralized, 2, cells[2]) // flapping link
		return fmt.Sprintf("%d %d %d %d %d %d %v %v %d %d %v %d %+v",
			row.puts, row.gets, row.acked, row.fenced, row.tmouts, row.maybes,
			row.lin.OK, row.worstZero, row.splits, row.rep.G1Lost,
			row.rep.Unroutable, row.leasedEnd, row.st)
	}
	a, b := runCell(), runCell()
	if a != b {
		t.Errorf("identical E21 cells diverged:\n  a: %s\n  b: %s", a, b)
	}
}
