package exp

import (
	"reflect"
	"testing"
)

// TestE16Guarantees is the overload test tier (make overload): it runs
// the seeded load ramp on every machine architecture and asserts the
// three guarantees the overload ledger audits — Q1 no watched queue
// exceeds its bound, Q2 goodput at 2× saturation holds ≥ 80% of goodput
// at saturation, Q3 every issued request resolves explicitly.
func TestE16Guarantees(t *testing.T) {
	for _, kind := range []machineKind{kindDecentralized, kindCentralDirect, kindCentralMediated} {
		sat, led := e16Campaign(kind)
		name := kind.label()
		if sat <= 0 {
			t.Fatalf("%s: calibration measured non-positive saturation %f", name, sat)
		}
		for _, v := range led.Audit() {
			t.Errorf("%s: %s", name, v)
		}
		for _, s := range led.Steps() {
			if s.Sent == 0 {
				t.Errorf("%s %gx: sent nothing; the step proves nothing", name, s.Multiplier)
			}
			if s.Multiplier >= 2 && s.Shed == 0 {
				t.Errorf("%s %gx: overloaded step shed nothing — admission control never engaged", name, s.Multiplier)
			}
		}
	}
}

// TestE16Reproducible runs one flavor's campaign twice and requires
// bit-identical step results: same counts, same percentiles.
func TestE16Reproducible(t *testing.T) {
	satA, ledA := e16Campaign(kindDecentralized)
	satB, ledB := e16Campaign(kindDecentralized)
	if satA != satB {
		t.Fatalf("same seed, different saturation: %f vs %f", satA, satB)
	}
	if !reflect.DeepEqual(ledA.Steps(), ledB.Steps()) {
		t.Fatalf("same seed, different steps:\n%+v\nvs\n%+v", ledA.Steps(), ledB.Steps())
	}
}
