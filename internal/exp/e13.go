package exp

import (
	"fmt"

	"nocpu/internal/core"
	"nocpu/internal/iommu"
	"nocpu/internal/metrics"
	"nocpu/internal/msg"
	"nocpu/internal/physmem"
	"nocpu/internal/sim"
	"nocpu/internal/smartnic"
)

// hugeApp allocates one large shared region, 4K- or huge-mapped.
type hugeApp struct {
	id    msg.AppID
	huge  bool
	bytes uint64
	va    uint64
	ready bool
	err   error
}

func (a *hugeApp) AppID() msg.AppID { return a.id }
func (a *hugeApp) Boot(rt *smartnic.Runtime) {
	done := func(va uint64, err error) {
		a.va, a.err, a.ready = va, err, true
	}
	if a.huge {
		rt.AllocSharedHuge(core.ControlID, a.bytes, done)
		return
	}
	rt.AllocShared(core.ControlID, a.bytes, done)
}
func (a *hugeApp) ServeNetwork(p []byte, reply func([]byte)) { reply(p) }
func (a *hugeApp) PeerFailed(msg.DeviceID)                   {}

// E13HugePages ablates the IOMMU mapping granule: a 64 MiB region mapped
// with 4 KiB vs 2 MiB pages — table-programming cost at setup and
// TLB reach under a scattered DMA sweep.
func E13HugePages() *Result {
	res := &Result{ID: "E13", Title: "IOMMU huge pages: setup cost and TLB reach"}
	const regionBytes = 64 << 20
	tb := metrics.NewTable("64 MiB shared region, then 4096 scattered 64B DMA reads (default 256-entry TLB)",
		"granule", "alloc+map latency", "PTEs", "TLB hit rate", "walk reads/DMA", "sweep avg latency")
	for _, huge := range []bool{false, true} {
		sys := core.MustNew(core.Options{
			Flavor: core.Decentralized, Seed: 131, NoTrace: true,
			MemoryBytes: 256 << 20,
		})
		if err := sys.Boot(); err != nil {
			panic(err)
		}
		app := &hugeApp{id: 1, huge: huge, bytes: regionBytes}
		start := sys.Eng.Now()
		sys.NIC().AddApp(app)
		for !app.ready {
			if !sys.Eng.Step() {
				break
			}
		}
		if app.err != nil {
			panic(app.err)
		}
		setup := sys.Eng.Now().Sub(start)
		ptes := regionBytes / physmem.PageSize
		if huge {
			ptes = regionBytes / int(iommu.HugePageSize)
		}

		// Scattered DMA sweep.
		port := sys.NIC().Device().DMA()
		rng := sys.Rand.Fork()
		mmu := sys.NIC().Device().IOMMU()
		base := mmu.Stats()
		sweepStart := sys.Eng.Now()
		const n = 4096
		for i := 0; i < n; i++ {
			off := uint64(rng.Intn(regionBytes-64)) &^ 63
			done := false
			port.Read(1, iommu.VirtAddr(app.va+off), 64, func(_ []byte, err error) {
				if err != nil {
					panic(err)
				}
				done = true
			})
			for !done && sys.Eng.Step() {
			}
		}
		sweep := sys.Eng.Now().Sub(sweepStart)
		st := mmu.Stats()
		lookups := float64(st.TLBHits - base.TLBHits + st.TLBMisses - base.TLBMisses)
		hitRate := 100 * float64(st.TLBHits-base.TLBHits) / lookups
		walks := float64(st.WalkReads-base.WalkReads) / n

		label := "4 KiB"
		if huge {
			label = "2 MiB (huge)"
		}
		tb.AddRow(label, setup, ptes,
			fmt.Sprintf("%.1f%%", hitRate),
			fmt.Sprintf("%.2f", walks),
			sweep/sim.Duration(n))
	}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"huge pages cut bus table-programming 512x at setup and fit the whole region in 32 TLB entries; 4K mappings thrash the 256-entry TLB",
		"the memory controller hands out contiguous naturally-aligned runs (buddy allocator), the bus installs level-2 leaves")
	return res
}
