// Package exp is the experiment harness: one function per experiment
// (E1–E10 in DESIGN.md), each regenerating the tables recorded in
// EXPERIMENTS.md.
//
// "The Last CPU" is a position paper with no quantitative evaluation, so
// these experiments quantify its qualitative claims against the
// centralized-CPU baseline (see DESIGN.md for the claim → experiment
// mapping). Every experiment is deterministic: fixed seeds, virtual time.
package exp

import (
	"fmt"

	"nocpu/internal/core"
	"nocpu/internal/kvs"
	"nocpu/internal/metrics"
	"nocpu/internal/msg"
	"nocpu/internal/netsim"
	"nocpu/internal/sim"
)

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*metrics.Table
	Notes  []string
}

// String renders the result for the terminal (and EXPERIMENTS.md).
func (r *Result) String() string {
	out := fmt.Sprintf("### %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		out += t.String() + "\n"
	}
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

type entry struct {
	id    string
	title string
	run   func() *Result
}

var registry = []entry{
	{"E1", "Figure-2 initialization sequence and latency", E1InitSequence},
	{"E2", "KVS data plane: throughput/latency vs offered load", E2Dataplane},
	{"E3", "Concurrent application-setup scalability", E3SetupScalability},
	{"E4", "Performance isolation under control-plane noise", E4Isolation},
	{"E5", "Device failure detection and recovery", E5FaultRecovery},
	{"E6", "IOMMU TLB ablation", E6IOMMUTLB},
	{"E7", "Broadcast discovery scalability", E7Discovery},
	{"E8", "Memory-management operation throughput", E8MemoryOps},
	{"E9", "Doorbell (notification) batching ablation", E9Doorbell},
	{"E10", "Management-bus speed sensitivity", E10BusSensitivity},
	{"E11", "NIC-side value cache ablation (KV-Direct-style extension)", E11ValueCache},
	{"E12", "Demand paging: eager vs first-touch backing (§4 page faults)", E12DemandPaging},
	{"E13", "IOMMU huge pages: setup cost and TLB reach", E13HugePages},
	{"E14", "Fault injection: init and steady-state KVS under message loss", E14FaultTolerance},
	{"E15", "Crash-restart-rejoin: chaos schedules over both control planes", E15CrashRecovery},
	{"E16", "Overload resilience: goodput under open-loop load ramps", E16Overload},
	{"E17", "Rack-scale fabric: sharded replicated KVS across N machines", E17Fabric},
	{"E19", "Self-healing fleet: reconciliation, live membership change, concurrent failures", E19SelfHealing},
	{"E20", "Adversarial multi-tenancy: attack matrix and blast radius", E20Tenancy},
	{"E21", "Split-brain safety: asymmetric partitions, gray failures, and the client-history audit", E21SplitBrain},
}

// IDs lists all experiment identifiers in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Run executes one experiment by id.
func Run(id string) (*Result, error) {
	for _, e := range registry {
		if e.id == id {
			return e.run(), nil
		}
	}
	return nil, fmt.Errorf("exp: unknown experiment %q (have %v)", id, IDs())
}

// RunAll executes every experiment in order.
func RunAll() []*Result {
	out := make([]*Result, len(registry))
	for i, e := range registry {
		out[i] = e.run()
	}
	return out
}

// --- shared scenario plumbing ---

// machineKind names the three machine configurations under comparison.
type machineKind int

const (
	kindDecentralized machineKind = iota
	kindCentralDirect
	kindCentralMediated
)

func (k machineKind) label() string {
	switch k {
	case kindDecentralized:
		return "decentralized (paper)"
	case kindCentralDirect:
		return "centralized ctl, P2P data"
	default:
		return "kernel-mediated data"
	}
}

func (k machineKind) flavor() core.Flavor {
	if k == kindDecentralized {
		return core.Decentralized
	}
	return core.Centralized
}

// kvsRig is a booted machine with one ready KVS store.
type kvsRig struct {
	sys   *core.System
	store *kvs.Store
}

// newKVSRig assembles, boots and readies a KVS machine. opts customizes
// the system options after defaults are applied.
func newKVSRig(kind machineKind, seed uint64, tweak func(*core.Options), kvsTweak func(*core.KVSOptions)) *kvsRig {
	opts := core.Options{Flavor: kind.flavor(), Seed: seed, NoTrace: true}
	if tweak != nil {
		tweak(&opts)
	}
	sys := core.MustNew(opts)
	if err := sys.Boot(); err != nil {
		panic(fmt.Sprintf("exp: boot: %v", err))
	}
	if err := sys.CreateFile("kv.dat", nil); err != nil {
		panic(fmt.Sprintf("exp: create: %v", err))
	}
	if sys.CPU != nil {
		sys.CPU.RegisterFile("kv.dat", core.FirstSSD)
	}
	ko := core.KVSOptions{App: 1, File: "kv.dat", QueueEntries: 128, Mediated: kind == kindCentralMediated}
	if kvsTweak != nil {
		kvsTweak(&ko)
	}
	store := sys.NewKVS(ko)
	if err := sys.WaitReady(store); err != nil {
		panic(fmt.Sprintf("exp: ready: %v", err))
	}
	return &kvsRig{sys: sys, store: store}
}

// preload inserts n keys of valSize bytes via a closed loop.
func (r *kvsRig) preload(n, valSize int) {
	cl := &netsim.ClosedLoop{
		Eng: r.sys.Eng, Rand: r.sys.Rand.Fork(), Workers: 8, PerWorker: (n + 7) / 8,
		Gen: func(rd *sim.Rand, seq uint64) []byte {
			return kvs.EncodeRequest(kvs.Request{
				Op: kvs.OpPut, Key: keyName(int(seq) % n), Value: make([]byte, valSize),
			})
		},
		Target: r.target(),
	}
	done := false
	cl.Run(func() { done = true })
	r.drain(&done)
}

func keyName(i int) string { return fmt.Sprintf("key-%05d", i) }

// target returns the NIC network edge for app 1.
func (r *kvsRig) target() netsim.Target {
	return func(p []byte, reply func([]byte)) { r.sys.NIC().Deliver(r.store.AppID(), p, reply) }
}

// drain advances virtual time until *done (or panics after a very long
// virtual interval — an experiment bug).
func (r *kvsRig) drain(done *bool) {
	deadline := r.sys.Eng.Now().Add(30 * sim.Second)
	for !*done && r.sys.Eng.Now() < deadline {
		r.sys.Eng.RunFor(sim.Millisecond)
	}
	if !*done {
		panic("exp: scenario did not complete within 30s of virtual time")
	}
}

// getLoad runs a closed-loop uniform-get workload and returns its stats.
func (r *kvsRig) getLoad(workers, perWorker, keys int) netsim.Stats {
	cl := &netsim.ClosedLoop{
		Eng: r.sys.Eng, Rand: r.sys.Rand.Fork(), Workers: workers, PerWorker: perWorker,
		Gen: func(rd *sim.Rand, seq uint64) []byte {
			return kvs.EncodeRequest(kvs.Request{Op: kvs.OpGet, Key: keyName(rd.Intn(keys))})
		},
		IsError: kvsIsError,
		Target:  r.target(),
	}
	done := false
	cl.Run(func() { done = true })
	r.drain(&done)
	return cl.Stats()
}

func kvsIsError(b []byte) bool {
	resp, err := kvs.DecodeResponse(b)
	return err != nil || resp.Status != kvs.StatusOK
}

// appID is a convenience for msg.AppID construction in loops.
func appID(i int) msg.AppID { return msg.AppID(i) }
