package virtio

import (
	"fmt"
	"sort"

	"nocpu/internal/interconnect"
	"nocpu/internal/iommu"
	"nocpu/internal/sim"
)

// DriverStats counts driver-side queue activity.
type DriverStats struct {
	Submitted uint64
	Completed uint64
	Kicks     uint64
	Errors    uint64
}

// Driver is the requester half of a virtqueue. It allocates descriptor
// pairs (request cell + response cell), publishes them on the available
// ring, and reaps completions from the used ring. All ring and buffer
// accesses are DMAs through the owning device's port.
//
// Not safe for use from multiple goroutines; the simulation is
// single-threaded by design.
type Driver struct {
	port  *interconnect.Port
	pasid iommu.PASID
	lay   Layout

	// reqBell is the endpoint's doorbell (rung after publishing).
	reqBell interconnect.DoorbellAddr
	// RespBell is this driver's own doorbell address; the endpoint rings
	// it after publishing used entries. Registered by NewDriver.
	RespBell interconnect.DoorbellAddr

	// freePairs holds head indices of free descriptor pairs (head even,
	// tail = head+1).
	freePairs []uint16
	availIdx  uint16 // next avail index to publish
	usedSeen  uint16 // next used index to reap

	pending map[uint16]func([]byte, error) // head -> completion

	// KickBatch publishes a doorbell only every N submissions (E9
	// ablation). Flush() forces one.
	KickBatch int
	// FlushAfter bounds how long a submission can sit unannounced when
	// KickBatch > 1 (a partial batch is flushed by timer). Defaults to
	// 10us when batching is enabled.
	FlushAfter sim.Duration
	unkicked   int
	flushTimer *sim.Timer

	// OnError receives transport-level failures (DMA faults after a
	// revoke, corrupt rings). After it fires the queue is dead.
	OnError func(error)
	dead    bool
	reaping bool

	stats DriverStats
}

// NewDriver builds the requester half over an established layout and
// registers the response doorbell.
func NewDriver(port *interconnect.Port, pasid iommu.PASID, lay Layout, reqBell interconnect.DoorbellAddr) (*Driver, error) {
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	d := &Driver{
		port:      port,
		pasid:     pasid,
		lay:       lay,
		reqBell:   reqBell,
		pending:   make(map[uint16]func([]byte, error)),
		KickBatch: 1,
	}
	for i := uint16(0); i < lay.Entries; i += 2 {
		d.freePairs = append(d.freePairs, i)
	}
	d.RespBell = port.Fabric().AllocDoorbell(func(uint64) { d.reap() })
	return d, nil
}

// Stats returns a copy of the counters.
func (d *Driver) Stats() DriverStats { return d.stats }

// SetRequestBell binds the endpoint's request doorbell after connection
// setup (the provider advertises it in its ConnectResp).
func (d *Driver) SetRequestBell(addr uint64) {
	d.reqBell = interconnect.DoorbellAddr(addr)
}

// Capacity returns how many requests can be in flight at once.
func (d *Driver) Capacity() int { return int(d.lay.Entries) / 2 }

// CellSize returns the buffer cell size (per-request payload bound).
func (d *Driver) CellSize() int { return d.lay.CellSize }

// InFlight returns the number of outstanding requests.
func (d *Driver) InFlight() int { return len(d.pending) }

// fail kills the queue and fails every outstanding request.
func (d *Driver) fail(err error) {
	if d.dead {
		return
	}
	d.dead = true
	d.stats.Errors++
	heads := make([]uint16, 0, len(d.pending))
	for head := range d.pending {
		heads = append(heads, head)
	}
	sort.Slice(heads, func(i, j int) bool { return heads[i] < heads[j] })
	for _, head := range heads {
		cb := d.pending[head]
		delete(d.pending, head)
		cb(nil, fmt.Errorf("virtio: queue failed: %w", err))
	}
	if d.OnError != nil {
		d.OnError(err)
	}
}

// Dead reports whether the queue has failed.
func (d *Driver) Dead() bool { return d.dead }

// Abort kills the queue from the driver side, failing every outstanding
// request — used when the owner learns out-of-band (a DeviceFailed
// broadcast) that the peer is gone and replies will never arrive.
func (d *Driver) Abort(err error) { d.fail(err) }

// Quiesce kills the queue without running any completion callback — for
// the case where the driver's *owner* crashed: the pending continuations
// belong to the dead incarnation and must never fire. The response
// doorbell is unregistered so the fabric slot is reclaimed.
func (d *Driver) Quiesce() {
	if d.dead {
		return
	}
	d.dead = true
	d.pending = make(map[uint16]func([]byte, error))
	if d.flushTimer != nil {
		d.flushTimer.Stop()
		d.flushTimer = nil
	}
	d.port.Fabric().UnregisterDoorbell(d.RespBell)
}

// Submit posts one request. The response buffer is the pair's second
// cell; done receives the endpoint's response bytes. Submit returns an
// error synchronously when the request cannot be posted (queue full,
// oversized request, dead queue) — nothing is in flight in that case.
func (d *Driver) Submit(req []byte, done func(resp []byte, err error)) error {
	if d.dead {
		return fmt.Errorf("virtio: submit on dead queue")
	}
	if len(req) > d.lay.CellSize {
		return fmt.Errorf("virtio: request of %d bytes exceeds cell size %d", len(req), d.lay.CellSize)
	}
	if len(d.freePairs) == 0 {
		return fmt.Errorf("virtio: queue full (%d in flight)", len(d.pending))
	}
	head := d.freePairs[len(d.freePairs)-1]
	d.freePairs = d.freePairs[:len(d.freePairs)-1]
	tail := head + 1
	d.pending[head] = done
	d.stats.Submitted++

	slot := d.availIdx % d.lay.Entries
	idx := d.availIdx + 1
	d.availIdx = idx

	// The port serializes DMAs FIFO, so the avail-index store is
	// guaranteed to land after the payload, descriptors and ring slot —
	// the VIRTIO publication ordering contract.
	d.port.Write(d.pasid, d.lay.cellVA(head), req, func(err error) {
		if err != nil {
			d.fail(err)
		}
	})
	descs := append(
		encodeDesc(desc{Addr: uint64(d.lay.cellVA(head)), Len: uint32(len(req)), Flags: flagNext, Next: tail}),
		encodeDesc(desc{Addr: uint64(d.lay.cellVA(tail)), Len: uint32(d.lay.CellSize), Flags: flagWrite})...)
	d.port.Write(d.pasid, d.lay.descVA(head), descs, func(err error) {
		if err != nil {
			d.fail(err)
		}
	})
	var slotBytes [2]byte
	slotBytes[0], slotBytes[1] = byte(head), byte(head>>8)
	d.port.Write(d.pasid, d.lay.availRingVA(slot), slotBytes[:], func(err error) {
		if err != nil {
			d.fail(err)
		}
	})
	d.port.WriteU16(d.pasid, d.lay.availIdxVA(), idx, func(err error) {
		if err != nil {
			d.fail(err)
			return
		}
		d.unkicked++
		if d.KickBatch <= 1 || d.unkicked >= d.KickBatch {
			d.Flush()
			return
		}
		// Partial batch: arm the flush timer so requests cannot strand.
		if d.flushTimer == nil {
			after := d.FlushAfter
			if after <= 0 {
				after = 10 * sim.Microsecond
			}
			d.flushTimer = d.port.Fabric().Engine().After(after, func() {
				d.flushTimer = nil
				d.Flush()
			})
		}
	})
	return nil
}

// Flush rings the endpoint's doorbell if there are unannounced requests.
func (d *Driver) Flush() {
	if d.dead || d.unkicked == 0 {
		return
	}
	d.unkicked = 0
	if d.flushTimer != nil {
		d.flushTimer.Stop()
		d.flushTimer = nil
	}
	d.stats.Kicks++
	d.port.Fabric().Ring(d.reqBell, uint64(d.availIdx))
}

// reap drains the used ring. One reap loop runs at a time.
func (d *Driver) reap() {
	if d.reaping || d.dead {
		return
	}
	d.reaping = true
	d.reapStep()
}

func (d *Driver) reapStep() {
	d.port.ReadU16(d.pasid, d.lay.usedIdxVA(), func(idx uint16, err error) {
		if err != nil {
			d.reaping = false
			d.fail(err)
			return
		}
		if idx == d.usedSeen {
			d.reaping = false
			return
		}
		d.consumeUsed(idx)
	})
}

// consumeUsed processes used entries up to idx, one at a time, then
// re-reads the index.
func (d *Driver) consumeUsed(idx uint16) {
	if d.usedSeen == idx {
		d.reapStep()
		return
	}
	slot := d.usedSeen % d.lay.Entries
	d.port.Read(d.pasid, d.lay.usedRingVA(slot), 8, func(b []byte, err error) {
		if err != nil {
			d.reaping = false
			d.fail(err)
			return
		}
		id, respLen := decodeUsedElem(b)
		head := uint16(id)
		cb, ok := d.pending[head]
		if !ok || head%2 != 0 || respLen > uint32(d.lay.CellSize) {
			d.reaping = false
			d.fail(fmt.Errorf("virtio: corrupt used entry id=%d len=%d", id, respLen))
			return
		}
		d.usedSeen++
		finish := func(resp []byte) {
			delete(d.pending, head)
			d.freePairs = append(d.freePairs, head)
			d.stats.Completed++
			cb(resp, nil)
			d.consumeUsed(idx)
		}
		if respLen == 0 {
			finish(nil)
			return
		}
		d.port.Read(d.pasid, d.lay.cellVA(head+1), int(respLen), func(resp []byte, err error) {
			if err != nil {
				d.reaping = false
				d.fail(err)
				return
			}
			finish(resp)
		})
	})
}
