package virtio

import (
	"bytes"
	"testing"

	"nocpu/internal/interconnect"
	"nocpu/internal/iommu"
	"nocpu/internal/physmem"
	"nocpu/internal/sim"
)

const testPASID = iommu.PASID(7)

type qworld struct {
	eng    *sim.Engine
	mem    *physmem.Memory
	fab    *interconnect.Fabric
	drvMMU *iommu.IOMMU
	epMMU  *iommu.IOMMU
	drvPrt *interconnect.Port
	epPrt  *interconnect.Port
	lay    Layout
}

// newQWorld maps a shared region into both devices' IOMMUs (standing in
// for the alloc+grant flow the bus performs in the full system).
func newQWorld(t *testing.T, entries uint16, cellSize int) *qworld {
	t.Helper()
	w := &qworld{
		eng: sim.NewEngine(),
		mem: physmem.MustNew(4096 * physmem.PageSize),
	}
	w.fab = interconnect.NewFabric(w.eng, w.mem, interconnect.DefaultCosts)
	w.drvMMU = iommu.New("drv", w.mem, iommu.DefaultConfig)
	w.epMMU = iommu.New("ep", w.mem, iommu.DefaultConfig)
	w.drvPrt = w.fab.NewPort("drv", w.drvMMU)
	w.epPrt = w.fab.NewPort("ep", w.epMMU)

	base := iommu.VirtAddr(0x100000)
	w.lay = NewLayout(base, entries, cellSize)
	total := int(uint64(w.lay.DataVA)-uint64(base)) + w.lay.DataBytes()
	pages := (total + physmem.PageSize - 1) / physmem.PageSize

	for _, mmu := range []*iommu.IOMMU{w.drvMMU, w.epMMU} {
		if err := mmu.CreateContext(testPASID); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < pages; i++ {
		f, err := w.mem.AllocFrames(1)
		if err != nil {
			t.Fatal(err)
		}
		va := base + iommu.VirtAddr(i*physmem.PageSize)
		for _, mmu := range []*iommu.IOMMU{w.drvMMU, w.epMMU} {
			if err := mmu.Map(testPASID, va, f, iommu.PermRW); err != nil {
				t.Fatal(err)
			}
		}
	}
	return w
}

// echoPair builds a connected driver/endpoint where the endpoint reverses
// the request bytes.
func (w *qworld) echoPair(t *testing.T) (*Driver, *Endpoint) {
	t.Helper()
	ep, err := NewEndpoint(w.epPrt, testPASID, w.lay, 0, func(req []byte, done func([]byte)) {
		out := make([]byte, len(req))
		for i, b := range req {
			out[len(req)-1-i] = b
		}
		done(out)
	})
	if err != nil {
		t.Fatal(err)
	}
	drv, err := NewDriver(w.drvPrt, testPASID, w.lay, ep.ReqBell)
	if err != nil {
		t.Fatal(err)
	}
	ep.respBell = drv.RespBell
	return drv, ep
}

func TestLayoutValidation(t *testing.T) {
	if err := (Layout{Base: 0, Entries: 3, CellSize: 64}).Validate(); err == nil {
		t.Error("non-power-of-two entries accepted")
	}
	if err := (Layout{Base: 0, Entries: 4, CellSize: 0}).Validate(); err == nil {
		t.Error("zero cell accepted")
	}
	if err := (Layout{Base: 1, Entries: 4, CellSize: 64}).Validate(); err == nil {
		t.Error("unaligned base accepted")
	}
	lay := NewLayout(0x1000, 8, 128)
	if err := lay.Validate(); err != nil {
		t.Error(err)
	}
	if lay.DataVA%physmem.PageSize != 0 {
		t.Error("data region not page aligned")
	}
	if RingBytes(8) != 8*16+align4(4+16)+align4(4+64) {
		t.Errorf("RingBytes(8) = %d", RingBytes(8))
	}
}

func TestSingleRoundTrip(t *testing.T) {
	w := newQWorld(t, 16, 256)
	drv, ep := w.echoPair(t)
	var got []byte
	if err := drv.Submit([]byte("abcdef"), func(resp []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		got = resp
	}); err != nil {
		t.Fatal(err)
	}
	w.eng.Run()
	if !bytes.Equal(got, []byte("fedcba")) {
		t.Fatalf("resp = %q", got)
	}
	if drv.Stats().Completed != 1 || ep.Stats().Processed != 1 {
		t.Errorf("stats drv=%+v ep=%+v", drv.Stats(), ep.Stats())
	}
	if drv.InFlight() != 0 {
		t.Error("pending not drained")
	}
}

func TestManyConcurrentRequests(t *testing.T) {
	w := newQWorld(t, 64, 256)
	drv, _ := w.echoPair(t)
	const n = 200
	completed := 0
	var submit func(i int)
	submit = func(i int) {
		payload := []byte{byte(i), byte(i >> 8), byte(i * 3)}
		err := drv.Submit(payload, func(resp []byte, err error) {
			if err != nil {
				t.Errorf("req %d: %v", i, err)
				return
			}
			if resp[0] != byte(i*3) {
				t.Errorf("req %d: wrong payload", i)
			}
			completed++
		})
		if err != nil {
			// Queue full: retry after a little while.
			w.eng.After(10*sim.Microsecond, func() { submit(i) })
		}
	}
	for i := 0; i < n; i++ {
		submit(i)
	}
	w.eng.Run()
	if completed != n {
		t.Fatalf("completed %d of %d", completed, n)
	}
	if drv.InFlight() != 0 || len(drv.freePairs) != drv.Capacity() {
		t.Error("descriptor leak")
	}
}

func TestQueueFullSynchronousError(t *testing.T) {
	w := newQWorld(t, 4, 128) // capacity 2
	drv, _ := w.echoPair(t)
	ok := 0
	for i := 0; i < 3; i++ {
		if err := drv.Submit([]byte{1}, func([]byte, error) {}); err == nil {
			ok++
		}
	}
	if ok != 2 {
		t.Fatalf("accepted %d, want 2 (capacity)", ok)
	}
	w.eng.Run()
	// After completion, capacity is back.
	if err := drv.Submit([]byte{1}, func([]byte, error) {}); err != nil {
		t.Errorf("post-drain submit failed: %v", err)
	}
}

func TestOversizedRequestRejected(t *testing.T) {
	w := newQWorld(t, 8, 64)
	drv, _ := w.echoPair(t)
	if err := drv.Submit(make([]byte, 65), func([]byte, error) {}); err == nil {
		t.Error("oversized request accepted")
	}
}

func TestResponseTruncatedToCell(t *testing.T) {
	w := newQWorld(t, 8, 64)
	ep, err := NewEndpoint(w.epPrt, testPASID, w.lay, 0, func(req []byte, done func([]byte)) {
		done(make([]byte, 500)) // larger than the 64-byte cell
	})
	if err != nil {
		t.Fatal(err)
	}
	drv, err := NewDriver(w.drvPrt, testPASID, w.lay, ep.ReqBell)
	if err != nil {
		t.Fatal(err)
	}
	ep.respBell = drv.RespBell
	var got []byte
	_ = drv.Submit([]byte{1}, func(resp []byte, err error) { got = resp })
	w.eng.Run()
	if len(got) != 64 {
		t.Errorf("resp len = %d, want 64 (truncated)", len(got))
	}
}

func TestAsyncHandler(t *testing.T) {
	w := newQWorld(t, 16, 128)
	ep, err := NewEndpoint(w.epPrt, testPASID, w.lay, 0, func(req []byte, done func([]byte)) {
		// Simulate a 100us flash read before answering.
		w.eng.After(100*sim.Microsecond, func() { done([]byte{0xAA}) })
	})
	if err != nil {
		t.Fatal(err)
	}
	drv, err := NewDriver(w.drvPrt, testPASID, w.lay, ep.ReqBell)
	if err != nil {
		t.Fatal(err)
	}
	ep.respBell = drv.RespBell
	var doneAt sim.Time
	_ = drv.Submit([]byte{1}, func(resp []byte, err error) { doneAt = w.eng.Now() })
	w.eng.Run()
	if doneAt < sim.Time(100*sim.Microsecond) {
		t.Errorf("completed at %v, before handler delay", doneAt)
	}
}

func TestHandlerPipelining(t *testing.T) {
	// With async handlers, multiple requests must overlap: total time for
	// 8 requests with 100us handlers must be far less than 800us.
	w := newQWorld(t, 32, 128)
	ep, err := NewEndpoint(w.epPrt, testPASID, w.lay, 0, func(req []byte, done func([]byte)) {
		w.eng.After(100*sim.Microsecond, func() { done(req) })
	})
	if err != nil {
		t.Fatal(err)
	}
	drv, err := NewDriver(w.drvPrt, testPASID, w.lay, ep.ReqBell)
	if err != nil {
		t.Fatal(err)
	}
	ep.respBell = drv.RespBell
	done := 0
	for i := 0; i < 8; i++ {
		_ = drv.Submit([]byte{byte(i)}, func([]byte, error) { done++ })
	}
	w.eng.Run()
	if done != 8 {
		t.Fatalf("done = %d", done)
	}
	if w.eng.Now() > sim.Time(300*sim.Microsecond) {
		t.Errorf("8 overlapping 100us requests took %v — no pipelining", w.eng.Now())
	}
}

func TestMaxInflightBounds(t *testing.T) {
	w := newQWorld(t, 64, 128)
	peak := 0
	cur := 0
	ep, err := NewEndpoint(w.epPrt, testPASID, w.lay, 0, func(req []byte, done func([]byte)) {
		cur++
		if cur > peak {
			peak = cur
		}
		w.eng.After(50*sim.Microsecond, func() { cur--; done(req) })
	})
	if err != nil {
		t.Fatal(err)
	}
	ep.MaxInflight = 4
	drv, err := NewDriver(w.drvPrt, testPASID, w.lay, ep.ReqBell)
	if err != nil {
		t.Fatal(err)
	}
	ep.respBell = drv.RespBell
	done := 0
	for i := 0; i < 20; i++ {
		_ = drv.Submit([]byte{byte(i)}, func([]byte, error) { done++ })
	}
	w.eng.Run()
	if done != 20 {
		t.Fatalf("done = %d", done)
	}
	if peak > 4 {
		t.Errorf("peak inflight %d exceeds MaxInflight 4", peak)
	}
}

func TestKickBatching(t *testing.T) {
	w := newQWorld(t, 32, 128)
	drv, ep := w.echoPair(t)
	drv.KickBatch = 4
	drv.FlushAfter = 500 * sim.Microsecond
	done := 0
	for i := 0; i < 3; i++ {
		_ = drv.Submit([]byte{1}, func([]byte, error) { done++ })
	}
	// Before the batch fills or the flush timer fires: silence.
	w.eng.RunFor(100 * sim.Microsecond)
	if done != 0 {
		t.Fatalf("endpoint processed %d before batch full/flush", done)
	}
	if ep.Stats().Processed != 0 {
		t.Error("endpoint woke without doorbell")
	}
	drv.Flush()
	w.eng.Run()
	if done != 3 {
		t.Fatalf("after flush done = %d", done)
	}
	if drv.Stats().Kicks != 1 {
		t.Errorf("kicks = %d, want 1", drv.Stats().Kicks)
	}
}

func TestKickBatchFlushTimerPreventsStranding(t *testing.T) {
	w := newQWorld(t, 32, 128)
	drv, _ := w.echoPair(t)
	drv.KickBatch = 8
	done := 0
	// Two requests: the batch never fills, so only the timer saves them.
	_ = drv.Submit([]byte{1}, func([]byte, error) { done++ })
	_ = drv.Submit([]byte{2}, func([]byte, error) { done++ })
	w.eng.Run()
	if done != 2 {
		t.Fatalf("flush timer did not deliver partial batch: done=%d", done)
	}
	if drv.Stats().Kicks != 1 {
		t.Errorf("kicks = %d, want 1 (single timer flush)", drv.Stats().Kicks)
	}
}

func TestNotifyBatching(t *testing.T) {
	w := newQWorld(t, 32, 128)
	drv, ep := w.echoPair(t)
	ep.NotifyBatch = 8
	done := 0
	for i := 0; i < 5; i++ {
		_ = drv.Submit([]byte{byte(i)}, func([]byte, error) { done++ })
	}
	w.eng.Run()
	// Fewer than 8 completions, but the idle flush must deliver them all.
	if done != 5 {
		t.Fatalf("done = %d, want 5 (idle flush)", done)
	}
	if ep.Stats().Notifies >= 5 {
		t.Errorf("notifies = %d, batching ineffective", ep.Stats().Notifies)
	}
}

func TestEndpointFaultAfterRevoke(t *testing.T) {
	w := newQWorld(t, 8, 128)
	drv, ep := w.echoPair(t)
	var epErr error
	ep.OnError = func(err error) { epErr = err }
	// Revoke the endpoint's view of the whole region (as the bus would on
	// a revoke): its next DMA faults.
	base := iommu.VirtAddr(0x100000)
	total := int(uint64(w.lay.DataVA)-uint64(base)) + w.lay.DataBytes()
	for i := 0; i < (total+physmem.PageSize-1)/physmem.PageSize; i++ {
		if err := w.epMMU.Unmap(testPASID, base+iommu.VirtAddr(i*physmem.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	_ = drv.Submit([]byte{1}, func(resp []byte, err error) {})
	w.eng.Run()
	if epErr == nil || !ep.Dead() {
		t.Error("endpoint survived revoked mapping")
	}
}

func TestDriverDeadFailsPending(t *testing.T) {
	w := newQWorld(t, 8, 128)
	// Endpoint that never answers, so requests stay pending.
	ep, err := NewEndpoint(w.epPrt, testPASID, w.lay, 0, func(req []byte, done func([]byte)) {})
	if err != nil {
		t.Fatal(err)
	}
	drv, err := NewDriver(w.drvPrt, testPASID, w.lay, ep.ReqBell)
	if err != nil {
		t.Fatal(err)
	}
	ep.respBell = drv.RespBell
	var cbErr error
	_ = drv.Submit([]byte{1}, func(resp []byte, err error) { cbErr = err })
	w.eng.Run()
	drv.fail(errSelfTest)
	if cbErr == nil {
		t.Error("pending request not failed")
	}
	if err := drv.Submit([]byte{1}, func([]byte, error) {}); err == nil {
		t.Error("dead queue accepted submit")
	}
}

var errSelfTest = bytes.ErrTooLarge

func TestDeterministicCompletionOrder(t *testing.T) {
	run := func() []byte {
		w := newQWorld(t, 32, 128)
		drv, _ := w.echoPair(t)
		var order []byte
		for i := 0; i < 10; i++ {
			i := i
			_ = drv.Submit([]byte{byte(i)}, func(resp []byte, err error) {
				order = append(order, byte(i))
			})
		}
		w.eng.Run()
		return order
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("non-deterministic completion: %v vs %v", a, b)
	}
	if len(a) != 10 {
		t.Fatalf("completed %d", len(a))
	}
}
