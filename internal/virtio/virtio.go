// Package virtio implements VIRTIO-style split virtqueues over the
// machine's shared memory, reached exclusively through DMA.
//
// §2.1 of "The Last CPU" proposes VIRTIO as "an ideal interface for
// exposing resources from self-managing devices": unidirectional queues
// of memory descriptors that any modest device can drive. This package
// provides both halves:
//
//   - Driver: the requester side (e.g. the smart NIC's KVS app). It owns
//     descriptor allocation, posts request/response descriptor chains to
//     the available ring, and reaps the used ring.
//   - Endpoint: the provider side (e.g. the smart SSD's file service).
//     It pops available descriptors, hands request payloads to a handler,
//     and returns responses through the used ring.
//
// The ring and buffer memory live in the *application's* shared virtual
// address space: every access below is a DMA translated by the issuing
// device's IOMMU, so a revoked grant breaks the queue exactly as it would
// on hardware. Layout follows the VIRTIO 1.1 split-ring format
// (descriptor table, available ring, used ring), with each request a
// two-descriptor chain: a device-readable request cell and a
// device-writable response cell.
//
// Doorbells replace interrupts (§2.3 "Notifications"): the driver rings
// the endpoint's request doorbell after publishing available entries; the
// endpoint rings the driver's response doorbell after publishing used
// entries. Both sides support notification batching (the E9 ablation).
package virtio

import (
	"encoding/binary"
	"fmt"

	"nocpu/internal/iommu"
	"nocpu/internal/physmem"
)

// Descriptor flags, as in VIRTIO 1.1.
const (
	flagNext  = 1 // descriptor continues via Next
	flagWrite = 2 // device writes this buffer (response)
)

const descSize = 16

// Layout describes where a queue's structures live within the app's
// shared virtual address space.
type Layout struct {
	Base     iommu.VirtAddr // descriptor table base
	Entries  uint16         // ring size, power of two
	DataVA   iommu.VirtAddr // buffer-cell region base
	CellSize int            // bytes per buffer cell
}

// RingBytes returns the size of the ring area (descriptor table +
// available ring + used ring) for n entries.
func RingBytes(n uint16) int {
	desc := descSize * int(n)
	avail := 4 + 2*int(n)
	used := 4 + 8*int(n)
	return desc + align4(avail) + align4(used)
}

// DataBytes returns the size of the buffer-cell region.
func (l Layout) DataBytes() int { return int(l.Entries) * l.CellSize }

// TotalBytes returns the whole shared-memory footprint of the queue when
// the data region directly follows the ring area.
func (l Layout) TotalBytes() int { return RingBytes(l.Entries) + l.DataBytes() }

func align4(n int) int { return (n + 3) &^ 3 }

// Validate checks structural invariants.
func (l Layout) Validate() error {
	if l.Entries == 0 || l.Entries&(l.Entries-1) != 0 {
		return fmt.Errorf("virtio: entries %d not a power of two", l.Entries)
	}
	if l.CellSize <= 0 {
		return fmt.Errorf("virtio: cell size %d", l.CellSize)
	}
	if uint64(l.Base)%8 != 0 || uint64(l.DataVA)%8 != 0 {
		return fmt.Errorf("virtio: unaligned layout")
	}
	return nil
}

// SharedBytes returns the shared-memory footprint a provider quotes in
// OpenResp for a queue of the given geometry (rings + page-aligned data
// region).
func SharedBytes(entries uint16, cellSize int) uint64 {
	l := NewLayout(0, entries, cellSize)
	return uint64(l.DataVA) + uint64(l.DataBytes())
}

// NewLayout computes the standard layout: rings at base, data region
// immediately after (page aligned).
func NewLayout(base iommu.VirtAddr, entries uint16, cellSize int) Layout {
	ring := RingBytes(entries)
	dataVA := iommu.VirtAddr((uint64(base) + uint64(ring) + physmem.PageSize - 1) &^ (physmem.PageSize - 1))
	return Layout{Base: base, Entries: entries, DataVA: dataVA, CellSize: cellSize}
}

// Offsets within the ring area.
func (l Layout) descVA(i uint16) iommu.VirtAddr {
	return l.Base + iommu.VirtAddr(int(i)*descSize)
}
func (l Layout) availBase() iommu.VirtAddr {
	return l.Base + iommu.VirtAddr(descSize*int(l.Entries))
}
func (l Layout) availIdxVA() iommu.VirtAddr { return l.availBase() + 2 }
func (l Layout) availRingVA(slot uint16) iommu.VirtAddr {
	return l.availBase() + 4 + iommu.VirtAddr(2*int(slot))
}
func (l Layout) usedBase() iommu.VirtAddr {
	return l.availBase() + iommu.VirtAddr(align4(4+2*int(l.Entries)))
}
func (l Layout) usedIdxVA() iommu.VirtAddr { return l.usedBase() + 2 }
func (l Layout) usedRingVA(slot uint16) iommu.VirtAddr {
	return l.usedBase() + 4 + iommu.VirtAddr(8*int(slot))
}
func (l Layout) cellVA(i uint16) iommu.VirtAddr {
	return l.DataVA + iommu.VirtAddr(int(i)*l.CellSize)
}

// desc is the in-memory descriptor format.
type desc struct {
	Addr  uint64
	Len   uint32
	Flags uint16
	Next  uint16
}

func encodeDesc(d desc) []byte {
	b := make([]byte, descSize)
	binary.LittleEndian.PutUint64(b[0:], d.Addr)
	binary.LittleEndian.PutUint32(b[8:], d.Len)
	binary.LittleEndian.PutUint16(b[12:], d.Flags)
	binary.LittleEndian.PutUint16(b[14:], d.Next)
	return b
}

func decodeDesc(b []byte) desc {
	return desc{
		Addr:  binary.LittleEndian.Uint64(b[0:]),
		Len:   binary.LittleEndian.Uint32(b[8:]),
		Flags: binary.LittleEndian.Uint16(b[12:]),
		Next:  binary.LittleEndian.Uint16(b[14:]),
	}
}

func encodeUsedElem(id uint32, n uint32) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint32(b[0:], id)
	binary.LittleEndian.PutUint32(b[4:], n)
	return b
}

func decodeUsedElem(b []byte) (id uint32, n uint32) {
	return binary.LittleEndian.Uint32(b[0:]), binary.LittleEndian.Uint32(b[4:])
}
