package virtio

import (
	"fmt"

	"nocpu/internal/interconnect"
	"nocpu/internal/iommu"
)

// Handler processes one request. done may be called immediately or later
// (e.g. after a flash read completes); resp is copied into the request's
// response cell and truncated to the cell size.
type Handler func(req []byte, done func(resp []byte))

// EndpointStats counts endpoint-side queue activity.
type EndpointStats struct {
	Processed uint64
	Notifies  uint64
	Errors    uint64
}

// Endpoint is the provider half of a virtqueue. Its request doorbell is
// allocated at construction (advertise ReqBell to the driver); the
// driver's response doorbell arrives in the ConnectReq.
type Endpoint struct {
	port  *interconnect.Port
	pasid iommu.PASID
	lay   Layout

	// ReqBell is this endpoint's own doorbell; the driver rings it after
	// publishing available entries.
	ReqBell interconnect.DoorbellAddr
	// respBell is the driver's doorbell, rung after publishing used
	// entries.
	respBell interconnect.DoorbellAddr

	handler Handler

	availSeen uint16
	usedIdx   uint16

	// MaxInflight bounds concurrently processed requests (the device's
	// internal parallelism).
	MaxInflight int
	inflight    int

	// NotifyBatch rings the driver's doorbell only every N completions;
	// completions are always flushed when the queue goes idle (E9).
	NotifyBatch int
	unnotified  int

	// OnError receives transport-level failures; the queue is dead after.
	OnError func(error)
	dead    bool
	polling bool

	stats EndpointStats
}

// NewEndpoint builds the provider half. The layout and respBell arrive
// from the driver's ConnectReq.
func NewEndpoint(port *interconnect.Port, pasid iommu.PASID, lay Layout, respBell interconnect.DoorbellAddr, h Handler) (*Endpoint, error) {
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	if h == nil {
		return nil, fmt.Errorf("virtio: nil handler")
	}
	e := &Endpoint{
		port:        port,
		pasid:       pasid,
		lay:         lay,
		respBell:    respBell,
		handler:     h,
		MaxInflight: 64,
		NotifyBatch: 1,
	}
	e.ReqBell = port.Fabric().AllocDoorbell(func(uint64) { e.Kick() })
	return e, nil
}

// Stats returns a copy of the counters.
func (e *Endpoint) Stats() EndpointStats { return e.stats }

// Dead reports whether the queue has failed.
func (e *Endpoint) Dead() bool { return e.dead }

func (e *Endpoint) fail(err error) {
	if e.dead {
		return
	}
	e.dead = true
	e.stats.Errors++
	if e.OnError != nil {
		e.OnError(err)
	}
}

// Kick starts (or resumes) the poll loop. It is the doorbell handler and
// is also called internally when capacity frees up.
func (e *Endpoint) Kick() {
	if e.polling || e.dead {
		return
	}
	e.polling = true
	e.pollStep()
}

func (e *Endpoint) pollStep() {
	if e.dead {
		e.polling = false
		return
	}
	if e.inflight >= e.MaxInflight {
		// Resume when a completion frees a slot.
		e.polling = false
		return
	}
	e.port.ReadU16(e.pasid, e.lay.availIdxVA(), func(idx uint16, err error) {
		if err != nil {
			e.polling = false
			e.fail(err)
			return
		}
		if idx == e.availSeen {
			// Idle: flush any batched notifications so the driver is
			// never left waiting on a partial batch.
			e.polling = false
			e.flushNotify()
			return
		}
		e.processSlot()
	})
}

// processSlot consumes one available entry, dispatches the handler
// without waiting for it, and continues the loop.
func (e *Endpoint) processSlot() {
	slot := e.availSeen % e.lay.Entries
	e.availSeen++
	e.port.ReadU16(e.pasid, e.lay.availRingVA(slot), func(head uint16, err error) {
		if err != nil {
			e.polling = false
			e.fail(err)
			return
		}
		if head >= e.lay.Entries {
			e.polling = false
			e.fail(fmt.Errorf("virtio: avail entry %d out of range", head))
			return
		}
		// Read the two-descriptor chain in one DMA (pairs are adjacent).
		e.port.Read(e.pasid, e.lay.descVA(head), 2*descSize, func(b []byte, err error) {
			if err != nil {
				e.polling = false
				e.fail(err)
				return
			}
			dreq := decodeDesc(b[:descSize])
			dresp := decodeDesc(b[descSize:])
			if dreq.Flags&flagNext == 0 || dresp.Flags&flagWrite == 0 || int(dreq.Len) > e.lay.CellSize {
				e.polling = false
				e.fail(fmt.Errorf("virtio: corrupt descriptor chain at %d", head))
				return
			}
			e.port.Read(e.pasid, iommu.VirtAddr(dreq.Addr), int(dreq.Len), func(req []byte, err error) {
				if err != nil {
					e.polling = false
					e.fail(err)
					return
				}
				e.inflight++
				dispatched := false
				e.handler(req, func(resp []byte) {
					if dispatched {
						panic("virtio: handler completed twice")
					}
					dispatched = true
					e.complete(head, dresp, resp)
				})
				// Keep draining while the handler runs.
				e.pollStep()
			})
		})
	})
}

// complete writes the response and publishes the used entry.
func (e *Endpoint) complete(head uint16, dresp desc, resp []byte) {
	if e.dead {
		return
	}
	if len(resp) > int(dresp.Len) {
		resp = resp[:dresp.Len]
	}
	publish := func() {
		slot := e.usedIdx % e.lay.Entries
		idx := e.usedIdx + 1
		e.usedIdx = idx
		e.port.Write(e.pasid, e.lay.usedRingVA(slot), encodeUsedElem(uint32(head), uint32(len(resp))), func(err error) {
			if err != nil {
				e.fail(err)
			}
		})
		e.port.WriteU16(e.pasid, e.lay.usedIdxVA(), idx, func(err error) {
			if err != nil {
				e.fail(err)
				return
			}
			e.stats.Processed++
			e.inflight--
			e.unnotified++
			if e.NotifyBatch <= 1 || e.unnotified >= e.NotifyBatch {
				e.flushNotify()
			}
			// Capacity freed: resume the poll loop if it parked.
			e.Kick()
		})
	}
	if len(resp) == 0 {
		publish()
		return
	}
	e.port.Write(e.pasid, iommu.VirtAddr(dresp.Addr), resp, func(err error) {
		if err != nil {
			e.fail(err)
			return
		}
		publish()
	})
}

// flushNotify rings the driver's doorbell for any unannounced
// completions.
func (e *Endpoint) flushNotify() {
	if e.unnotified == 0 || e.dead {
		return
	}
	e.unnotified = 0
	e.stats.Notifies++
	e.port.Fabric().Ring(e.respBell, uint64(e.usedIdx))
}
