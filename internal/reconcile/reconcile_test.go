package reconcile_test

import (
	"fmt"
	"testing"

	"nocpu/internal/fabric"
	"nocpu/internal/kvs"
	"nocpu/internal/msg"
	"nocpu/internal/reconcile"
	"nocpu/internal/sim"
)

func bootFleet(t *testing.T, fc fabric.Config, rc reconcile.Config) (*fabric.Cluster, *reconcile.Fleet) {
	t.Helper()
	cl, err := fabric.New(fc)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := cl.Boot(); err != nil {
		t.Fatalf("Boot: %v", err)
	}
	return cl, reconcile.Attach(cl, rc)
}

// runUntil steps the engine until pred holds (fatal after limit).
func runUntil(t *testing.T, cl *fabric.Cluster, limit sim.Duration, what string, pred func() bool) {
	t.Helper()
	deadline := cl.Eng.Now().Add(limit)
	for !pred() && cl.Eng.Now() < deadline {
		cl.Eng.RunFor(200 * sim.Microsecond)
	}
	if !pred() {
		t.Fatalf("%s: not reached within %v", what, limit)
	}
}

// put writes key=val through a live ingress, retrying transient
// failures until the fabric acks.
func put(t *testing.T, cl *fabric.Cluster, key string, val []byte) {
	t.Helper()
	req := kvs.EncodeRequest(kvs.Request{Op: kvs.OpPut, Key: key, Value: val})
	deadline := cl.Eng.Now().Add(2 * sim.Second)
	for cl.Eng.Now() < deadline {
		ids := cl.ServingIDs()
		if len(ids) == 0 {
			ids = cl.LiveIDs()
		}
		done, ok := false, false
		cl.Ingress(ids[0])(req, func(b []byte) {
			if r, err := kvs.DecodeResponse(b); err == nil && r.Status == kvs.StatusOK {
				ok = true
			}
			done = true
		})
		for !done && cl.Eng.Now() < deadline {
			cl.Eng.RunFor(100 * sim.Microsecond)
		}
		if ok {
			return
		}
		cl.Eng.RunFor(500 * sim.Microsecond)
	}
	t.Fatalf("put %q never acked", key)
}

// get reads a key through a live ingress, retrying until definitive.
func get(t *testing.T, cl *fabric.Cluster, key string) ([]byte, bool) {
	t.Helper()
	req := kvs.EncodeRequest(kvs.Request{Op: kvs.OpGet, Key: key})
	deadline := cl.Eng.Now().Add(2 * sim.Second)
	for cl.Eng.Now() < deadline {
		ids := cl.ServingIDs()
		if len(ids) == 0 {
			ids = cl.LiveIDs()
		}
		var resp kvs.Response
		done, ok := false, false
		cl.Ingress(ids[0])(req, func(b []byte) {
			if r, err := kvs.DecodeResponse(b); err == nil {
				resp, ok = r, true
			}
			done = true
		})
		for !done && cl.Eng.Now() < deadline {
			cl.Eng.RunFor(100 * sim.Microsecond)
		}
		if ok && resp.Status == kvs.StatusOK {
			return resp.Value, true
		}
		if ok && resp.Status == kvs.StatusNotFound {
			return nil, false
		}
		cl.Eng.RunFor(500 * sim.Microsecond)
	}
	t.Fatalf("get %q never resolved", key)
	return nil, false
}

func ringOf(cl *fabric.Cluster) []msg.DeviceID {
	return cl.Machine(cl.LiveIDs()[0]).Router.RingMembers()
}

// TestReplaceDeadMachine: a killed ring member is reconciled away and
// a spare promoted in its place, within the bound and the budget.
func TestReplaceDeadMachine(t *testing.T) {
	cl, fl := bootFleet(t,
		fabric.Config{N: 4, Spares: 1, Seed: 0xE19A},
		reconcile.Config{Spec: reconcile.Spec{Size: 4, MaxUnavailable: 1}},
	)
	for i := 0; i < 12; i++ {
		put(t, cl, fmt.Sprintf("rk-%03d", i), []byte{byte(i)})
	}
	fl.Kill(3)
	runUntil(t, cl, 100*sim.Millisecond, "converge after kill", fl.Converged)
	cl.Eng.RunFor(2 * sim.Millisecond) // let the probe close the window

	want := []msg.DeviceID{1, 2, 4, 5}
	if got := ringOf(cl); len(got) != 4 || got[0] != 1 || got[3] != 5 {
		t.Fatalf("ring after repair = %v, want %v", got, want)
	}
	rep := fl.Report()
	if !rep.Clean() {
		t.Fatalf("ledger not clean: %+v", rep)
	}
	if rep.Stats.Repairs == 0 || rep.Stats.Commits == 0 {
		t.Fatalf("no repair transition recorded: %+v", rep.Stats)
	}
	for i := 0; i < 12; i++ {
		v, ok := get(t, cl, fmt.Sprintf("rk-%03d", i))
		if !ok || len(v) != 1 || v[0] != byte(i) {
			t.Fatalf("key rk-%03d lost across reconcile (got %v ok=%v)", i, v, ok)
		}
	}
}

// TestRollingUpgradeWithSpares: raising the config version rolls every
// machine — including, eventually, the acting machine itself — through
// an out-of-ring flash, one swap at a time, within the budget.
func TestRollingUpgradeWithSpares(t *testing.T) {
	cl, fl := bootFleet(t,
		fabric.Config{N: 4, Spares: 1, Seed: 0xE19B},
		reconcile.Config{Spec: reconcile.Spec{Size: 4, MaxUnavailable: 1}},
	)
	for i := 0; i < 8; i++ {
		put(t, cl, fmt.Sprintf("uk-%03d", i), []byte{0xAA, byte(i)})
	}
	fl.SetSpec(reconcile.Spec{Size: 4, ConfigVersion: 2, MaxUnavailable: 1})
	runUntil(t, cl, 300*sim.Millisecond, "converge after upgrade", fl.Converged)
	cl.Eng.RunFor(2 * sim.Millisecond)

	for _, id := range cl.LiveIDs() {
		if v := cl.Machine(id).Router.ConfigVersion(); v != 2 {
			t.Errorf("machine %d still at config v%d after rolling upgrade", id, v)
		}
	}
	rep := fl.Report()
	if !rep.Clean() {
		t.Fatalf("ledger not clean: %+v", rep)
	}
	if rep.Stats.Swaps == 0 {
		t.Errorf("no swap rotations recorded: %+v", rep.Stats)
	}
	if got := len(ringOf(cl)); got != 4 {
		t.Errorf("ring size %d after upgrade, want 4", got)
	}
	for i := 0; i < 8; i++ {
		v, ok := get(t, cl, fmt.Sprintf("uk-%03d", i))
		if !ok || len(v) != 2 || v[1] != byte(i) {
			t.Fatalf("key uk-%03d lost across rolling upgrade", i)
		}
	}
}

// TestRollingUpgradeNoSpares: with an empty spare pool the rotation
// must shrink the ring by one inside the budget, flash the victim, and
// re-admit it — repeatedly, until the whole fleet is upgraded.
func TestRollingUpgradeNoSpares(t *testing.T) {
	cl, fl := bootFleet(t,
		fabric.Config{N: 4, Seed: 0xE19C},
		reconcile.Config{Spec: reconcile.Spec{Size: 4, MaxUnavailable: 1}},
	)
	fl.SetSpec(reconcile.Spec{Size: 4, ConfigVersion: 2, MaxUnavailable: 1})
	runUntil(t, cl, 300*sim.Millisecond, "converge after spare-less upgrade", fl.Converged)
	cl.Eng.RunFor(2 * sim.Millisecond)

	for _, id := range cl.LiveIDs() {
		if v := cl.Machine(id).Router.ConfigVersion(); v != 2 {
			t.Errorf("machine %d still at config v%d", id, v)
		}
	}
	rep := fl.Report()
	if !rep.Clean() {
		t.Fatalf("ledger not clean: %+v", rep)
	}
	if rep.Stats.Shrinks == 0 {
		t.Errorf("spare-less upgrade never shrank the ring: %+v", rep.Stats)
	}
	if got := len(ringOf(cl)); got != 4 {
		t.Errorf("ring size %d after upgrade, want 4", got)
	}
}

// TestZeroBudgetBlocksUpgrade: MaxUnavailable 0 leaves no budget to
// drain into, so the reconciler must keep serving on the stale config
// rather than disrupt — the divergence stays open by design.
func TestZeroBudgetBlocksUpgrade(t *testing.T) {
	cl, fl := bootFleet(t,
		fabric.Config{N: 4, Seed: 0xE19D},
		reconcile.Config{Spec: reconcile.Spec{Size: 4}},
	)
	fl.SetSpec(reconcile.Spec{Size: 4, ConfigVersion: 2})
	cl.Eng.RunFor(50 * sim.Millisecond)

	rep := fl.Report()
	if rep.Stats.Cordons != 0 || rep.Stats.Transitions != 0 {
		t.Errorf("zero budget but reconciler disrupted: %+v", rep.Stats)
	}
	if rep.C3Violations != 0 {
		t.Errorf("C3 violated %d times with no voluntary action", rep.C3Violations)
	}
	if len(cl.ServingIDs()) != 4 {
		t.Errorf("serving capacity dipped: %v", cl.ServingIDs())
	}
	if fl.Converged() {
		t.Error("converged despite an impossible upgrade — predicate too lax")
	}
}

// TestConcurrentDoubleFailure: two ring members die in the same sim
// frame; the reconciler absorbs both with the spare pool.
func TestConcurrentDoubleFailure(t *testing.T) {
	cl, fl := bootFleet(t,
		fabric.Config{N: 4, Spares: 2, Seed: 0xE19E},
		reconcile.Config{Spec: reconcile.Spec{Size: 4, MaxUnavailable: 1}},
	)
	cl.Eng.At(cl.Eng.Now().Add(2*sim.Millisecond), func() {
		fl.Kill(2)
		fl.Kill(3)
	})
	cl.Eng.RunFor(3 * sim.Millisecond) // past the kill frame
	runUntil(t, cl, 150*sim.Millisecond, "converge after double kill", fl.Converged)
	cl.Eng.RunFor(2 * sim.Millisecond)

	want := []msg.DeviceID{1, 4, 5, 6}
	got := ringOf(cl)
	if len(got) != len(want) {
		t.Fatalf("ring after double repair = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ring after double repair = %v, want %v", got, want)
		}
	}
	if rep := fl.Report(); !rep.Clean() {
		t.Fatalf("ledger not clean: %+v", rep)
	}
}

// TestActorDeathMidTransition: killing the acting machine while its
// rolling upgrade is in flight hands the role to the next machine,
// which aborts the orphaned transition and finishes the job.
func TestActorDeathMidTransition(t *testing.T) {
	cl, fl := bootFleet(t,
		fabric.Config{N: 4, Spares: 2, Seed: 0xE19F},
		reconcile.Config{Spec: reconcile.Spec{Size: 4, MaxUnavailable: 1}},
	)
	fl.SetSpec(reconcile.Spec{Size: 4, ConfigVersion: 2, MaxUnavailable: 1})
	// Give the actor time to flash a spare and stage the first
	// rotation, then kill it mid-campaign.
	cl.Eng.At(cl.Eng.Now().Add(6*sim.Millisecond), func() { fl.Kill(1) })
	runUntil(t, cl, 400*sim.Millisecond, "converge after actor death", fl.Converged)
	cl.Eng.RunFor(2 * sim.Millisecond)

	for _, id := range cl.LiveIDs() {
		if v := cl.Machine(id).Router.ConfigVersion(); v != 2 {
			t.Errorf("machine %d still at config v%d after takeover", id, v)
		}
	}
	if memberOf := ringOf(cl); len(memberOf) != 4 {
		t.Errorf("ring size %d, want 4", len(memberOf))
	}
	if rep := fl.Report(); !rep.Clean() {
		t.Fatalf("ledger not clean after actor takeover: %+v", rep)
	}
}

// TestHeadFlavor: under the head-node baseline the head reconciles
// worker deaths and worker upgrades, but can never rotate ITSELF out
// of the ring — it stays pinned on its boot config, the structural
// asymmetry E19 reports.
func TestHeadFlavor(t *testing.T) {
	cl, fl := bootFleet(t,
		fabric.Config{N: 4, Spares: 1, Seed: 0xE19 ^ 0xEAD, Flavor: fabric.FlavorHead},
		reconcile.Config{Spec: reconcile.Spec{Size: 4, MaxUnavailable: 1}},
	)
	fl.Kill(3)
	runUntil(t, cl, 100*sim.Millisecond, "head repairs worker death", fl.Converged)

	fl.SetSpec(reconcile.Spec{Size: 4, ConfigVersion: 2, MaxUnavailable: 1})
	runUntil(t, cl, 300*sim.Millisecond, "head-driven rolling upgrade", fl.Converged)
	cl.Eng.RunFor(2 * sim.Millisecond)

	if v := cl.Machine(1).Router.ConfigVersion(); v != 1 {
		t.Errorf("head upgraded itself to v%d — should be structurally impossible", v)
	}
	for _, id := range cl.LiveIDs() {
		if id == 1 {
			continue
		}
		if v := cl.Machine(id).Router.ConfigVersion(); v != 2 {
			t.Errorf("worker %d still at config v%d", id, v)
		}
	}
	if rep := fl.Report(); !rep.Clean() {
		t.Fatalf("ledger not clean: %+v", rep)
	}
}

// TestDeterminism: the full reconcile pipeline — kill, repair, rolling
// upgrade — is byte-identical across runs at a fixed seed.
func TestDeterminism(t *testing.T) {
	run := func() string {
		cl, fl := bootFleet(t,
			fabric.Config{N: 4, Spares: 1, Seed: 0xDE7E, Trace: true},
			reconcile.Config{Spec: reconcile.Spec{Size: 4, MaxUnavailable: 1}},
		)
		for i := 0; i < 6; i++ {
			put(t, cl, fmt.Sprintf("dk-%02d", i), []byte{byte(i)})
		}
		fl.Kill(2)
		fl.SetSpec(reconcile.Spec{Size: 4, ConfigVersion: 2, MaxUnavailable: 1})
		cl.Eng.RunFor(120 * sim.Millisecond)
		return cl.TraceHash()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("reconcile run not deterministic:\n  %s\n  %s", a, b)
	}
}
