// Package reconcile is the fleet's self-healing policy layer: a
// level-triggered reconciler (machine-controller style) that drives the
// fabric's OBSERVED state toward a declared Spec — replace dead ring
// members from a spare pool, keep the ring at the declared size, and
// roll config upgrades through the fleet under a maxUnavailable
// disruption budget. The fabric supplies the mechanism (staged ring
// transitions, drain orders, condition reports); this package supplies
// only the control loop, so the layering mirrors the paper's §2 split:
// devices self-manage, policy observes and nudges.
//
// The loop is level-triggered, never edge-triggered: every agent tick
// re-derives the full desired action from (spec, own view, latest
// condition reports) and re-issues it. Lost frames, killed
// coordinators, and concurrent failures therefore cost retries, not
// correctness — the same divergence is simply observed again next tick.
//
// One machine acts at a time. Under FlavorHead the head node is the
// reconciler (and, by construction, can never rotate ITSELF out of the
// ring for an upgrade — the centralized baseline cannot self-upgrade,
// which E19 surfaces as a finding). Under FlavorDecentralized the actor
// is the lowest live in-ring machine per its own view; when it dies or
// rotates itself out, the role falls to the next machine with no
// handoff protocol, because the loop re-derives everything from
// observed state.
//
// Invariants, audited by the Fleet's engine-driven probe (E19):
//
//	C1 — convergence: every divergence (a kill, a spec change) closes
//	     within the configured bound: live machines agree on one ring,
//	     its members are alive, the ring is at the declared size, and
//	     every live machine runs the declared config version.
//	C2 — no acked write lost across reconcile actions: delegated to the
//	     fabric Ledger (R1/R2/R3); reconciliation rides the same staged-
//	     ring/union-replication mechanism the ledger already audits.
//	C3 — disruption budget: voluntary disruption (cordons, shrink-for-
//	     upgrade) never pushes serving capacity below
//	     Size − MaxUnavailable − involuntary, sampled at probe ticks.
package reconcile

import (
	"nocpu/internal/fabric"
	"nocpu/internal/msg"
	"nocpu/internal/sim"
)

// Control-loop tuning defaults.
const (
	// DefaultReconcileEvery is the agent tick: condition reports flow and
	// the actor re-derives its next action at this cadence.
	DefaultReconcileEvery = 1 * sim.Millisecond
	// DefaultProbeEvery is the fleet ledger's sampling cadence for C1
	// convergence windows and the C3 budget audit.
	DefaultProbeEvery = 500 * sim.Microsecond
	// DefaultBound is the C1 convergence bound: generous enough for a
	// full rolling upgrade at N=16 (each rotation pays a transfer, a
	// commit, and an upgrade flash), tight enough to catch a wedged
	// transition.
	DefaultBound = 400 * sim.Millisecond

	// maxWindows bounds the divergence-window log (later windows are
	// counted, not stored).
	maxWindows = 512
)

// Spec is the declared fleet state the reconciler converges on.
type Spec struct {
	// Ver orders specs; SetSpec bumps it automatically when the caller
	// leaves it zero. Agents adopt only newer versions, so stale gossip
	// can never roll the fleet backward.
	Ver uint64
	// Size is the declared ring membership count.
	Size int
	// ConfigVersion is the config/firmware version every machine must
	// run. Raising it triggers a rolling upgrade.
	ConfigVersion uint32
	// MaxUnavailable caps VOLUNTARY disruption: the reconciler may
	// cordon or shrink-for-upgrade only while the count of disrupted
	// ring slots stays within this budget. 0 forbids rolling upgrades
	// entirely (there is no budget to drain into).
	MaxUnavailable int
}

// Config assembles a Fleet.
type Config struct {
	// Spec is the initial declared state (Ver defaults to 1).
	Spec Spec
	// ReconcileEvery / ProbeEvery / Bound default to the constants above.
	ReconcileEvery sim.Duration
	ProbeEvery     sim.Duration
	Bound          sim.Duration
}

// Stats aggregates every agent's reconcile activity.
type Stats struct {
	Ticks         uint64 // agent ticks executed
	Gossips       uint64 // SpecGossip frames sent by actors
	Transitions   uint64 // ring transitions proposed (prepare broadcast)
	Commits       uint64 // transitions committed
	Aborts        uint64 // transitions aborted (deaths, orphan cleanup)
	Repairs       uint64 // transitions proposed to replace dead / fix size
	Swaps         uint64 // upgrade rotations done as stale-out/upgraded-in
	Shrinks       uint64 // upgrade rotations done as budgeted shrink
	UpgradeOrders uint64 // Drain(upgrade) orders issued
	Cordons       uint64 // Drain(cordon) orders issued
}

// Report is the fleet ledger's verdict.
type Report struct {
	// Windows holds closed divergence windows (kill/spec-change →
	// converged), in close order; WindowsLost counts overflow beyond
	// maxWindows.
	Windows     []sim.Duration
	WindowsLost int
	// OpenWindows counts divergences still unconverged at Report time.
	OpenWindows int
	// C1Violations counts windows (closed or still open) exceeding the
	// bound; C3Violations counts probe samples where serving capacity
	// fell below the budget floor, with WorstShortfall the deepest dip.
	C1Violations   int
	C3Violations   int
	WorstShortfall int
	Probes         uint64
	SpecVer        uint64
	Stats          Stats
}

// Clean reports whether the run upheld C1 and C3 and left no
// divergence open. C2 is the fabric Ledger's verdict, judged by the
// workload harness alongside this one.
func (r Report) Clean() bool {
	return r.C1Violations == 0 && r.C3Violations == 0 && r.OpenWindows == 0
}

// MaxWindow returns the longest divergence window seen (0 when none).
func (r Report) MaxWindow() sim.Duration {
	var max sim.Duration
	for _, w := range r.Windows {
		if w > max {
			max = w
		}
	}
	return max
}

// Fleet attaches one reconcile agent per machine to a booted cluster
// and audits convergence from the outside. The Fleet itself is a test
// oracle plus the operator's spec store; all reconciliation decisions
// happen inside the per-machine agents.
type Fleet struct {
	cl  *fabric.Cluster
	cfg Config

	agents []*Agent
	spec   Spec

	killed []msg.DeviceID

	open        []sim.Time // divergence windows awaiting convergence
	windows     []sim.Duration
	windowsLost int

	probes         uint64
	c3Violations   int
	worstShortfall int
}

// Attach wires a reconcile agent onto every machine of a BOOTED
// cluster, arms the agent ticks and the audit probe, and hands every
// agent the initial spec (modeling the operator's durable spec store,
// which every machine can read at boot; later changes still propagate
// via SpecGossip so late observers converge).
func Attach(cl *fabric.Cluster, cfg Config) *Fleet {
	if cfg.ReconcileEvery == 0 {
		cfg.ReconcileEvery = DefaultReconcileEvery
	}
	if cfg.ProbeEvery == 0 {
		cfg.ProbeEvery = DefaultProbeEvery
	}
	if cfg.Bound == 0 {
		cfg.Bound = DefaultBound
	}
	if cfg.Spec.Ver == 0 {
		cfg.Spec.Ver = 1
	}
	if cfg.Spec.Size == 0 {
		cfg.Spec.Size = cl.Cfg.N
	}
	if cfg.Spec.ConfigVersion == 0 {
		cfg.Spec.ConfigVersion = 1
	}
	f := &Fleet{cl: cl, cfg: cfg, spec: cfg.Spec}
	for _, m := range cl.Machines {
		a := newAgent(f, m.Router)
		a.spec = f.spec
		m.Router.AttachControl(a)
		f.agents = append(f.agents, a)
		a.arm()
	}
	f.armProbe()
	return f
}

// Spec returns the current declared state.
func (f *Fleet) Spec() Spec { return f.spec }

// SetSpec declares a new desired state and opens a divergence window.
// A zero Ver is auto-bumped past the current spec. The spec reaches
// every live agent immediately (the operator writes the spec store);
// actors keep gossiping it so any machine that was unreachable at
// write time still converges.
func (f *Fleet) SetSpec(s Spec) {
	if s.Ver <= f.spec.Ver {
		s.Ver = f.spec.Ver + 1
	}
	f.spec = s
	for _, a := range f.agents {
		if !a.r.Halted() {
			a.adoptSpec(s)
		}
	}
	f.openWindow()
}

// Kill crash-stops a machine through the cluster and opens a
// divergence window for the fleet to close.
func (f *Fleet) Kill(id msg.DeviceID) {
	f.cl.Kill(id)
	f.killed = append(f.killed, id)
	f.openWindow()
}

func (f *Fleet) openWindow() {
	if len(f.open) < maxWindows {
		f.open = append(f.open, f.cl.Eng.Now())
	} else {
		f.windowsLost++
	}
}

// Converged reports whether the observed fleet matches the declared
// spec: all live machines agree on one committed ring, its members are
// alive and uncordoned, the ring is at the declared size (capped by
// how many machines remain), no transition is staged, no machine is
// mid-flash, and every live machine runs the declared config version.
// Under FlavorHead the head's own config version is exempt: the
// centralized reconciler cannot rotate itself out of the ring to
// flash, so it pins its version forever — E19's head-flavor finding.
func (f *Fleet) Converged() bool {
	live := f.cl.LiveIDs()
	if len(live) == 0 {
		return false
	}
	first := f.cl.Machine(live[0]).Router
	ver, members := first.RingVer(), first.RingMembers()
	for _, id := range live {
		r := f.cl.Machine(id).Router
		if r.PendingVer() != 0 || r.Upgrading() {
			return false
		}
		if r.RingVer() != ver || !sameMembers(r.RingMembers(), members) {
			return false
		}
		if f.cl.Cfg.Flavor == fabric.FlavorHead && id == r.Head() {
			continue
		}
		if r.ConfigVersion() != f.spec.ConfigVersion {
			return false
		}
	}
	for _, id := range members {
		if !f.cl.Alive(id) || f.cl.Machine(id).Router.Cordoned() {
			return false
		}
	}
	want := f.spec.Size
	if want > len(live) {
		want = len(live)
	}
	return len(members) == want
}

// armProbe runs the audit loop: close divergence windows on
// convergence, and sample the C3 budget. The probe is an outside
// observer — it never feeds back into the agents.
func (f *Fleet) armProbe() {
	f.cl.Eng.After(f.cfg.ProbeEvery, func() {
		f.probes++
		f.sampleBudget()
		if len(f.open) > 0 && f.Converged() {
			now := f.cl.Eng.Now()
			for _, at := range f.open {
				if len(f.windows) < maxWindows {
					f.windows = append(f.windows, now.Sub(at))
				} else {
					f.windowsLost++
				}
			}
			f.open = f.open[:0]
		}
		f.armProbe()
	})
}

// sampleBudget audits C3: serving capacity must never fall below
// Size − MaxUnavailable − involuntary − residual. The involuntary
// allowance is the ring's shortfall against what the surviving fleet
// could provide, capped by the number of kills (so a voluntary
// shrink-for-upgrade cannot masquerade as failure damage); residual is
// capacity the fleet no longer possesses at all (spare pool
// exhausted). Everything past those allowances must fit inside the
// declared MaxUnavailable budget — that is C3.
func (f *Fleet) sampleBudget() {
	live := f.cl.LiveIDs()
	if len(live) == 0 {
		return
	}
	// Judge the capacity gap against the LEAST-converged live view: a
	// commit propagates machine by machine, and until the last machine
	// adopts the new ring the fleet genuinely serves at the old ring's
	// capacity. Sampling only the coordinator's (already-committed)
	// view would misread that propagation skew as a budget overrun.
	ringAlive := -1
	for _, id := range live {
		alive := 0
		for _, m := range f.cl.Machine(id).Router.RingMembers() {
			if f.cl.Alive(m) {
				alive++
			}
		}
		if ringAlive < 0 || alive < ringAlive {
			ringAlive = alive
		}
	}
	want := f.spec.Size
	if want > len(live) {
		want = len(live)
	}
	involuntary := want - ringAlive
	if involuntary > len(f.killed) {
		involuntary = len(f.killed)
	}
	if involuntary < 0 {
		involuntary = 0
	}
	residual := f.spec.Size - len(live)
	if residual < 0 {
		residual = 0
	}
	floor := f.spec.Size - f.spec.MaxUnavailable - involuntary - residual
	if avail := len(f.cl.ServingIDs()); avail < floor {
		f.c3Violations++
		if floor-avail > f.worstShortfall {
			f.worstShortfall = floor - avail
		}
	}
}

// Report tallies the run.
func (f *Fleet) Report() Report {
	rep := Report{
		Windows:        append([]sim.Duration(nil), f.windows...),
		WindowsLost:    f.windowsLost,
		OpenWindows:    len(f.open),
		C3Violations:   f.c3Violations,
		WorstShortfall: f.worstShortfall,
		Probes:         f.probes,
		SpecVer:        f.spec.Ver,
	}
	for _, w := range rep.Windows {
		if w > f.cfg.Bound {
			rep.C1Violations++
		}
	}
	now := f.cl.Eng.Now()
	for _, at := range f.open {
		if now.Sub(at) > f.cfg.Bound {
			rep.C1Violations++
		}
	}
	for _, a := range f.agents {
		s := a.stats
		rep.Stats.Ticks += s.Ticks
		rep.Stats.Gossips += s.Gossips
		rep.Stats.Transitions += s.Transitions
		rep.Stats.Commits += s.Commits
		rep.Stats.Aborts += s.Aborts
		rep.Stats.Repairs += s.Repairs
		rep.Stats.Swaps += s.Swaps
		rep.Stats.Shrinks += s.Shrinks
		rep.Stats.UpgradeOrders += s.UpgradeOrders
		rep.Stats.Cordons += s.Cordons
	}
	return rep
}

func sameMembers(a, b []msg.DeviceID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func memberOf(ms []msg.DeviceID, id msg.DeviceID) bool {
	for _, m := range ms {
		if m == id {
			return true
		}
	}
	return false
}
