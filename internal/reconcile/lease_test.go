package reconcile_test

// False-suspicion regressions: the reconciler must not treat gray
// failures (fail-slow machines, flapping links) as deaths, and a
// partitioned actor must be fenced by its lapsed lease rather than
// fighting the majority over the ring. Every test here runs with
// Config.Leases set; leases off, LeaseValid is identically true and
// the E19 goldens pin that path.

import (
	"testing"

	"nocpu/internal/fabric"
	"nocpu/internal/faultinject"
	"nocpu/internal/msg"
	"nocpu/internal/reconcile"
	"nocpu/internal/sim"
)

// A machine running 20x slow is degraded, not dead: the reconciler
// must not auto-replace it while its lease stays live. A false repair
// here would be the classic gray-failure outage — evicting a slow
// machine and paying a data migration for a condition that heals.
func TestFailSlowMachineNotReplaced(t *testing.T) {
	plane := faultinject.New(81)
	plane.SlowMachine(3, 20, sim.Time(8*sim.Millisecond), sim.Time(40*sim.Millisecond))

	cl, fl := bootFleet(t,
		fabric.Config{N: 4, Spares: 1, Seed: 0xE21A, Leases: true, Net: fabric.NetConfig{Plane: plane}},
		reconcile.Config{Spec: reconcile.Spec{Size: 4, MaxUnavailable: 1}},
	)
	cl.Eng.RunUntil(sim.Time(45 * sim.Millisecond))

	rep := fl.Report()
	if rep.Stats.Repairs != 0 {
		t.Fatalf("reconciler repaired a fail-slow machine %d times", rep.Stats.Repairs)
	}
	if rep.C3Violations != 0 {
		t.Fatalf("fail-slow consumed the C3 budget: %d violations", rep.C3Violations)
	}
	if st := cl.RouterStatsSum(); st.ViewChanges != 0 {
		t.Fatalf("fail-slow machine triggered %d view changes", st.ViewChanges)
	}
	if !cl.Machine(3).Router.LeaseValid() {
		t.Fatal("slow machine lost its lease")
	}
	ring := cl.Machine(1).Router.RingMembers()
	for _, id := range []msg.DeviceID{1, 2, 3, 4} {
		found := false
		for _, m := range ring {
			if m == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("machine %d evicted from ring %v by slowness", id, ring)
		}
	}
}

// A link that flaps up and down faster than the failure timeout is a
// gray failure, not a sequence of deaths: no machine may be declared
// dead, no repair proposed, and — the satellite's point — none of the
// C3 disruption budget burned on it.
func TestFlappingLinkDoesNotBurnBudget(t *testing.T) {
	plane := faultinject.New(82)
	// 1ms cut / 2ms healed, 8 cycles: each silence window is far below
	// the 4ms failure patience and each cut below the 2ms lease.
	plane.Flap([]msg.DeviceID{1}, []msg.DeviceID{2, 3, 4, 5},
		sim.Time(9*sim.Millisecond), 1*sim.Millisecond, 3*sim.Millisecond, 8)

	cl, fl := bootFleet(t,
		fabric.Config{N: 4, Spares: 1, Seed: 0xE21B, Leases: true, Net: fabric.NetConfig{Plane: plane}},
		reconcile.Config{Spec: reconcile.Spec{Size: 4, MaxUnavailable: 1}},
	)
	cl.Eng.RunUntil(sim.Time(40 * sim.Millisecond))

	rep := fl.Report()
	if rep.Stats.Repairs != 0 {
		t.Fatalf("flapping link drove %d repairs", rep.Stats.Repairs)
	}
	if rep.C3Violations != 0 {
		t.Fatalf("flapping consumed the C3 budget: %d violations", rep.C3Violations)
	}
	st := cl.RouterStatsSum()
	if st.ViewChanges != 0 || st.SilenceDeaths != 0 {
		t.Fatalf("flapping was judged as death: viewChanges=%d silenceDeaths=%d",
			st.ViewChanges, st.SilenceDeaths)
	}
	for _, m := range cl.Machines {
		if m.Router.InRing() && !m.Router.LeaseValid() {
			t.Fatalf("machine %d lost its lease to a flapping link", m.ID)
		}
	}
}

// A hard partition that exiles the acting machine: the majority must
// replace it (to them, exile is death), and the exile — still the
// lowest in-ring machine by its own stale view, with everyone else in
// its dead set — must NOT commit a rump ring of itself. Its lapsed
// lease is the only thing standing between this test and split-brain
// membership.
func TestPartitionedActorIsFenced(t *testing.T) {
	plane := faultinject.New(83)
	plane.Partition([]msg.DeviceID{1}, []msg.DeviceID{2, 3, 4, 5},
		sim.Time(10*sim.Millisecond), 0)

	cl, fl := bootFleet(t,
		fabric.Config{N: 4, Spares: 1, Seed: 0xE21C, Leases: true, Net: fabric.NetConfig{Plane: plane}},
		reconcile.Config{Spec: reconcile.Spec{Size: 4, MaxUnavailable: 1}},
	)

	// Majority side: m2 takes over as actor once silence declares m1
	// dead, and repairs the ring with the spare.
	runUntil(t, cl, 60*sim.Millisecond, "majority repairs the exiled actor", func() bool {
		ring := cl.Machine(2).Router.RingMembers()
		return len(ring) == 4 && ring[0] == 2 && ring[3] == 5
	})
	cl.Eng.RunFor(10 * sim.Millisecond) // give the exile every chance to misbehave

	r1 := cl.Machine(1).Router
	if r1.LeaseValid() {
		t.Fatal("exiled actor still holds a lease without a quorum")
	}
	// The fenced exile proposed nothing: no transition staged, and its
	// ring view is frozen at the last pre-partition commit — it has NOT
	// committed itself a rump ring despite believing everyone else dead.
	if r1.PendingVer() != 0 {
		t.Fatalf("fenced actor staged transition ver=%d", r1.PendingVer())
	}
	ring1 := r1.RingMembers()
	if len(ring1) != 4 || ring1[0] != 1 {
		t.Fatalf("exiled actor rewrote its own ring: %v", ring1)
	}
	rep := fl.Report()
	if rep.Stats.Repairs == 0 {
		t.Fatal("majority never repaired the exiled machine away")
	}
	if rep.C3Violations != 0 {
		t.Fatalf("C3 violated %d times during the repair", rep.C3Violations)
	}
}
