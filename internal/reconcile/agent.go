package reconcile

import (
	"sort"

	"nocpu/internal/fabric"
	"nocpu/internal/msg"
)

// condState is the actor's last word from one machine.
type condState struct {
	ok  bool
	rep msg.CondReport
}

// Agent is one machine's reconcile loop. Every machine runs one; most
// ticks it only reports its conditions to the acting machine. The
// actor — the head under FlavorHead, the lowest live in-ring machine
// per its own view otherwise — re-derives the next action from
// observed state each tick and re-issues it (level-triggered: lost
// frames and dead coordinators cost a tick, not the fleet).
//
// The actor applies one rule per tick, in priority order:
//
//  1. abort orphaned transitions a dead actor left staged;
//  2. drive its own staged transition (abort on any death, re-send the
//     prepare until every live machine reports transfer-done, commit);
//  3. repair membership — replace dead ring members and fill the ring
//     to the declared size from Ready spares (upgraded spares first;
//     stale ones only when deaths opened the hole);
//  4. upgrade — flash out-of-ring machines to the declared config
//     version (free: they serve nothing), uncordon freshly-upgraded
//     ring members, and rotate ONE stale ring member out within the
//     MaxUnavailable budget: swap in an upgraded spare when one is
//     Ready, else shrink the ring by one and let the flashed victim
//     rejoin through rule 3.
//
// Exactly one ring transition is in flight at a time, so the ring's
// minimal-movement property bounds every step's data motion.
type Agent struct {
	fl *Fleet
	r  *fabric.Router

	spec  Spec
	conds []condState // indexed by machine ID − 1

	nextVer uint32

	// Staged-transition coordination (actor only): waitIDs are the
	// machines whose transfer-done the prepare awaits.
	pendingVer     uint32
	pendingMembers []msg.DeviceID
	waitIDs        []msg.DeviceID
	reported       []bool

	stats Stats
}

func newAgent(fl *Fleet, r *fabric.Router) *Agent {
	return &Agent{fl: fl, r: r, conds: make([]condState, len(fl.cl.Machines))}
}

// Stats returns a copy of this agent's counters.
func (a *Agent) Stats() Stats { return a.stats }

func (a *Agent) adoptSpec(s Spec) {
	if s.Ver > a.spec.Ver {
		a.spec = s
	}
}

// arm schedules the next tick. A halted machine's agent simply never
// rearms — crash-stop silences policy and mechanism together.
func (a *Agent) arm() {
	a.fl.cl.Eng.After(a.fl.cfg.ReconcileEvery, func() { a.tick() })
}

func (a *Agent) tick() {
	if a.r.Halted() {
		return
	}
	a.stats.Ticks++
	if actor := a.actorID(); actor != a.r.ID() {
		a.clearPending() // a role we no longer hold; orphan cleanup is the new actor's
		a.report(actor)
	} else {
		a.act()
	}
	a.arm()
}

// report sends this machine's conditions to the actor, folding in the
// level-triggered transfer-done signal so a staged transition survives
// a lost push frame.
func (a *Agent) report(actor msg.DeviceID) {
	rep := a.r.Conditions()
	if a.r.TransferDone() {
		rep.TransferVer = a.r.PendingVer()
	}
	a.r.SendControl(actor, rep)
}

// actorID picks the acting machine under this agent's own view: the
// head when one is configured, else the lowest live in-ring machine.
// No handoff protocol exists or is needed — when the actor dies, the
// next tick of the next machine in line re-derives everything from
// observed state.
func (a *Agent) actorID() msg.DeviceID {
	if h := a.r.Head(); h != 0 {
		return h
	}
	dead := a.deadSet()
	for _, id := range a.r.RingMembers() {
		if !dead[id] {
			return id
		}
	}
	return a.r.ID()
}

func (a *Agent) deadSet() map[msg.DeviceID]bool {
	ids := a.r.DeadIDs()
	out := make(map[msg.DeviceID]bool, len(ids))
	for _, id := range ids {
		out[id] = true
	}
	return out
}

// act is one actor tick. With epoch leases enabled, the actor role is
// fenced exactly like a primary: a machine that believes it is the
// lowest live in-ring member but cannot hold a quorum-countersigned
// lease (it is on the wrong side of a partition) must not drive
// membership change — otherwise an asymmetric cut elects two actors
// and they fight over the ring. Leases off, LeaseValid is always true.
func (a *Agent) act() {
	if !a.r.LeaseValid() {
		return
	}
	dead := a.deadSet()
	a.gossipSpec(dead)
	if a.pendingVer != 0 {
		a.drivePending(dead)
		return
	}
	if a.abortOrphans(dead) {
		return
	}
	if a.repair(dead) {
		return
	}
	a.upgradeStep(dead)
}

// gossipSpec pushes the declared spec to every machine the view holds
// live. Versioned and idempotent, so re-gossip every tick is the
// simple way to cover machines that missed earlier waves.
func (a *Agent) gossipSpec(dead map[msg.DeviceID]bool) {
	g := &msg.SpecGossip{
		SpecVer:        a.spec.Ver,
		Size:           uint16(a.spec.Size),
		ConfigVersion:  a.spec.ConfigVersion,
		MaxUnavailable: uint8(a.spec.MaxUnavailable),
	}
	for _, id := range a.fl.cl.MachineIDs() {
		if id == a.r.ID() || dead[id] {
			continue
		}
		a.stats.Gossips++
		a.r.SendControl(id, g)
	}
}

// abortOrphans clears transitions a dead actor left staged: any live
// machine reporting a PendingVer above the committed ring version that
// this actor does not own gets that version aborted fleet-wide. The
// RingVer guard keeps stale reports (a PendingVer our own commit
// already resolved) from triggering spurious aborts.
func (a *Agent) abortOrphans(dead map[msg.DeviceID]bool) bool {
	var aborted []uint32
	for i := range a.conds {
		id := msg.DeviceID(i + 1)
		c := a.conds[i]
		if !c.ok || dead[id] || c.rep.PendingVer <= a.r.RingVer() {
			continue
		}
		ver := c.rep.PendingVer
		seen := false
		for _, v := range aborted {
			if v == ver {
				seen = true
				break
			}
		}
		if seen {
			continue
		}
		aborted = append(aborted, ver)
		if ver >= a.nextVer {
			a.nextVer = ver + 1
		}
		a.stats.Aborts++
		a.r.ProposeRing(ver, msg.RingAbort, nil)
	}
	return len(aborted) > 0
}

// drivePending advances the actor's staged transition. Deaths abort
// it (the level-triggered loop re-proposes once failover settles —
// union replication made every acked write durable either way);
// otherwise the prepare is re-broadcast until every live machine
// reported transfer-done, then the commit goes out.
func (a *Agent) drivePending(dead map[msg.DeviceID]bool) {
	if a.r.TransferDone() && a.r.PendingVer() == a.pendingVer {
		a.markReported(a.r.ID())
	}
	for _, id := range a.waitIDs {
		if dead[id] {
			a.stats.Aborts++
			a.r.ProposeRing(a.pendingVer, msg.RingAbort, nil)
			a.clearPending()
			return
		}
	}
	for i := range a.waitIDs {
		if !a.reported[i] {
			// Prepares are idempotent at machines that already staged this
			// version; a machine that missed the first wave stages now.
			a.r.ProposeRing(a.pendingVer, msg.RingPrepare, a.pendingMembers)
			return
		}
	}
	a.stats.Commits++
	a.r.ProposeRing(a.pendingVer, msg.RingCommit, a.pendingMembers)
	a.clearPending()
}

func (a *Agent) clearPending() {
	a.pendingVer = 0
	a.pendingMembers = nil
	a.waitIDs = nil
	a.reported = nil
}

// propose stages one ring transition: pick a version above everything
// observed, record who must report transfer-done (every machine the
// view holds live — leavers drain, joiners wipe, bystanders ack
// trivially), and broadcast the prepare. Local agent state is set
// BEFORE ProposeRing because the local prepare can complete (and
// report) synchronously inside it.
func (a *Agent) propose(members []msg.DeviceID, dead map[msg.DeviceID]bool) {
	ver := a.r.RingVer() + 1
	for i := range a.conds {
		if c := a.conds[i]; c.ok {
			if c.rep.RingVer >= ver {
				ver = c.rep.RingVer + 1
			}
			if c.rep.PendingVer >= ver {
				ver = c.rep.PendingVer + 1
			}
		}
	}
	if a.nextVer > ver {
		ver = a.nextVer
	}
	a.nextVer = ver + 1

	var wait []msg.DeviceID
	for _, id := range a.fl.cl.MachineIDs() {
		if !dead[id] {
			wait = append(wait, id)
		}
	}
	a.pendingVer = ver
	a.pendingMembers = append([]msg.DeviceID(nil), members...)
	a.waitIDs = wait
	a.reported = make([]bool, len(wait))
	a.stats.Transitions++
	a.r.ProposeRing(ver, msg.RingPrepare, members)
}

// repair drives the ring back to the declared membership: dead members
// out, Ready spares in, size honored. Stale spares fill only holes
// that deaths opened — a voluntary shrink (rule 4's upgrade path) must
// wait for an UPGRADED spare, or the rotation would churn forever.
func (a *Agent) repair(dead map[msg.DeviceID]bool) bool {
	cur := a.r.RingMembers()
	liveCur := make([]msg.DeviceID, 0, len(cur))
	for _, id := range cur {
		if !dead[id] {
			liveCur = append(liveCur, id)
		}
	}
	deadInRing := len(cur) - len(liveCur)
	deficit := a.spec.Size - len(liveCur)
	if deadInRing == 0 && deficit == 0 {
		return false
	}
	if deficit < 0 {
		// Oversize (the spec shrank): drop the highest members; they
		// keep serving until the commit and then become spares.
		target := liveCur[:a.spec.Size]
		a.stats.Repairs++
		a.propose(target, dead)
		return true
	}
	var spares []msg.DeviceID
	for _, id := range a.fl.cl.MachineIDs() {
		if !dead[id] && !memberOf(cur, id) {
			spares = append(spares, id)
		}
	}
	add := a.pickSpares(spares, deficit, deadInRing > 0)
	if deficit > 0 && len(add) == 0 && len(spares) > 0 {
		// Spares exist but none is eligible yet (booting or mid-flash):
		// wait a tick instead of committing an under-provisioned ring.
		return false
	}
	target := append(append([]msg.DeviceID(nil), liveCur...), add...)
	sortIDs(target)
	if len(target) == 0 || sameMembers(target, cur) {
		return false
	}
	a.stats.Repairs++
	a.propose(target, dead)
	return true
}

// pickSpares selects up to n join candidates, lowest ID first:
// upgraded Ready spares always qualify; stale Ready spares only when
// staleOK (a death opened the hole — availability beats version
// purity, and the rotation rule will cycle them later).
func (a *Agent) pickSpares(spares []msg.DeviceID, n int, staleOK bool) []msg.DeviceID {
	var out []msg.DeviceID
	for pass := 0; pass < 2 && len(out) < n; pass++ {
		if pass == 1 && !staleOK {
			break
		}
		for _, id := range spares {
			if len(out) >= n {
				break
			}
			if memberOf(out, id) {
				continue
			}
			c, ok := a.condOf(id)
			if !ok || !c.Ready {
				continue
			}
			upgraded := c.ConfigVersion >= a.spec.ConfigVersion
			if (pass == 0) == upgraded {
				out = append(out, id)
			}
		}
	}
	return out
}

// upgradeStep runs rule 4 on a healthy ring: flash spares, uncordon
// finished members, and rotate one stale member within the budget.
func (a *Agent) upgradeStep(dead map[msg.DeviceID]bool) {
	cur := a.r.RingMembers()
	for _, id := range cur {
		if dead[id] {
			return // repair is waiting on a spare; don't rotate on top
		}
	}

	// Uncordon ring members that are done upgrading: a swapped-back
	// victim rejoins cordoned and is released here.
	for _, id := range cur {
		c, ok := a.condOf(id)
		if ok && c.Cordoned && c.ConfigVersion >= a.spec.ConfigVersion {
			a.r.SendControl(id, &msg.Drain{Mode: msg.DrainUncordon})
		}
	}

	// Flash stale out-of-ring machines — free, they serve no shard.
	anyFlashing := false
	for _, id := range a.fl.cl.MachineIDs() {
		if dead[id] || memberOf(cur, id) {
			continue
		}
		c, ok := a.condOf(id)
		if !ok {
			continue
		}
		if c.Upgrading {
			anyFlashing = true
		}
		if c.ConfigVersion < a.spec.ConfigVersion && !c.Upgrading {
			a.stats.UpgradeOrders++
			anyFlashing = true
			a.r.SendControl(id, &msg.Drain{
				Mode: msg.DrainUpgrade, ConfigVersion: a.spec.ConfigVersion,
			})
		}
	}

	// Rotate one stale ring member. The head can never rotate itself
	// out (it IS the control plane), so under FlavorHead it stays on
	// its boot config forever — the asymmetry E19 reports.
	var stale []msg.DeviceID
	for _, id := range cur {
		if a.r.Head() != 0 && id == a.r.Head() {
			continue
		}
		c, ok := a.condOf(id)
		if ok && c.ConfigVersion < a.spec.ConfigVersion {
			stale = append(stale, id)
		}
	}
	if len(stale) == 0 {
		return
	}
	// Prefer a victim whose cordon is already paid for; else go
	// highest-ID first so the decentralized actor rotates itself last.
	victim := stale[len(stale)-1]
	for _, id := range stale {
		if c, ok := a.condOf(id); ok && c.Cordoned {
			victim = id
			break
		}
	}
	// Voluntary disruption already on the books (cordoned members other
	// than the victim, plus any shrink deficit) must leave budget room.
	// The deficit is judged against what the surviving fleet can still
	// provide: capacity lost with dead machines (spares exhausted) is
	// involuntary and must not eat the rotation budget forever.
	aliveTotal := 0
	for _, id := range a.fl.cl.MachineIDs() {
		if !dead[id] {
			aliveTotal++
		}
	}
	achievable := a.spec.Size
	if aliveTotal < achievable {
		achievable = aliveTotal
	}
	voluntary := achievable - len(cur)
	if voluntary < 0 {
		voluntary = 0
	}
	for _, id := range cur {
		if id == victim {
			continue
		}
		if c, ok := a.condOf(id); ok && c.Cordoned {
			voluntary++
		}
	}
	if voluntary >= a.spec.MaxUnavailable {
		return
	}
	var upSpare msg.DeviceID
	for _, id := range a.fl.cl.MachineIDs() {
		if dead[id] || memberOf(cur, id) {
			continue
		}
		c, ok := a.condOf(id)
		if ok && c.Ready && c.ConfigVersion >= a.spec.ConfigVersion {
			upSpare = id
			break
		}
	}
	target := make([]msg.DeviceID, 0, len(cur))
	for _, id := range cur {
		if id != victim {
			target = append(target, id)
		}
	}
	switch {
	case upSpare != 0:
		target = append(target, upSpare)
		sortIDs(target)
		a.stats.Swaps++
	case anyFlashing:
		return // an upgraded spare is seconds away; swapping beats shrinking
	case len(target) == 0:
		return
	default:
		a.stats.Shrinks++
	}
	if c, ok := a.condOf(victim); !ok || !c.Cordoned {
		a.stats.Cordons++
		a.r.SendControl(victim, &msg.Drain{Mode: msg.DrainCordon})
	}
	a.propose(target, dead)
}

// condOf returns the latest conditions known for a machine. The
// actor's own state is read straight off its router — it never mails
// itself a report.
func (a *Agent) condOf(id msg.DeviceID) (msg.CondReport, bool) {
	if id == a.r.ID() {
		return msg.CondReport{
			Ready:         !a.r.Halted() && !a.r.Upgrading(),
			Cordoned:      a.r.Cordoned(),
			Upgrading:     a.r.Upgrading(),
			ConfigVersion: a.r.ConfigVersion(),
			RingVer:       a.r.RingVer(),
			PendingVer:    a.r.PendingVer(),
		}, true
	}
	i := int(id) - 1
	if i < 0 || i >= len(a.conds) || !a.conds[i].ok {
		return msg.CondReport{}, false
	}
	return a.conds[i].rep, true
}

func (a *Agent) markReported(id msg.DeviceID) {
	for i, w := range a.waitIDs {
		if w == id {
			a.reported[i] = true
			return
		}
	}
}

// OnControl implements fabric.ControlAgent: spec gossip updates this
// machine's spec, condition reports feed the actor's world view and
// the transfer-done tally.
func (a *Agent) OnControl(src msg.DeviceID, m msg.Message) {
	if a.r.Halted() {
		return
	}
	switch rep := m.(type) {
	case *msg.SpecGossip:
		a.adoptSpec(Spec{
			Ver:            rep.SpecVer,
			Size:           int(rep.Size),
			ConfigVersion:  rep.ConfigVersion,
			MaxUnavailable: int(rep.MaxUnavailable),
		})
	case *msg.CondReport:
		i := int(src) - 1
		if i >= 0 && i < len(a.conds) && (!a.conds[i].ok || rep.Seq > a.conds[i].rep.Seq) {
			a.conds[i] = condState{ok: true, rep: *rep}
		}
		if a.pendingVer != 0 && rep.TransferVer == a.pendingVer {
			a.markReported(src)
		}
	}
}

func sortIDs(ids []msg.DeviceID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
