package smartnic

import (
	"bytes"
	"strings"
	"testing"

	"nocpu/internal/bus"
	"nocpu/internal/device"
	"nocpu/internal/interconnect"
	"nocpu/internal/memctrl"
	"nocpu/internal/msg"
	"nocpu/internal/physmem"
	"nocpu/internal/sim"
	"nocpu/internal/smartssd"
	"nocpu/internal/trace"
)

// machine is a full CPU-less testbed: bus + memctrl + SSD + NIC.
type machine struct {
	eng      *sim.Engine
	tr       *trace.Tracer
	bus      *bus.Bus
	fab      *interconnect.Fabric
	mc       *memctrl.Controller
	ssd      *smartssd.SSD
	nic      *NIC
	watchdog sim.Duration
}

const (
	mcID  = msg.DeviceID(1)
	ssdID = msg.DeviceID(2)
	nicID = msg.DeviceID(3)
)

func newMachine(t *testing.T) *machine {
	t.Helper()
	return buildMachine(t, 0)
}

// buildMachine assembles the memctrl+SSD+NIC testbed; a non-zero
// watchdog enables heartbeats at watchdog/4.
func buildMachine(t *testing.T, watchdog sim.Duration) *machine {
	t.Helper()
	m := &machine{eng: sim.NewEngine(), tr: trace.New(0)}
	mem := physmem.MustNew(16 * 1024 * physmem.PageSize) // 64 MiB
	m.fab = interconnect.NewFabric(m.eng, mem, interconnect.DefaultCosts)
	busCfg := bus.DefaultConfig
	busCfg.WatchdogTimeout = watchdog
	m.bus = bus.New(m.eng, busCfg, m.tr)
	hb := sim.Duration(0)
	if watchdog > 0 {
		hb = watchdog / 4
	}
	m.watchdog = watchdog

	mc, err := memctrl.New(m.eng, m.bus, m.fab, m.tr, memctrl.Config{
		Device: device.Config{ID: mcID, Name: "memctrl", HeartbeatEvery: hb},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.mc = mc

	ssd, err := smartssd.New(m.eng, m.bus, m.fab, m.tr, smartssd.Config{
		Device: device.Config{ID: ssdID, Name: "ssd", SelfTest: 5 * sim.Microsecond,
			ResetDelay: 100 * sim.Microsecond, HeartbeatEvery: hb},
		Tokens: map[string]uint64{"secret.dat": 0xCAFE},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.ssd = ssd

	nic, err := New(m.eng, m.bus, m.fab, m.tr, Config{
		Device: device.Config{ID: nicID, Name: "nic", SelfTest: 5 * sim.Microsecond,
			ResetDelay: 100 * sim.Microsecond, HeartbeatEvery: hb},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.nic = nic

	mc.Start()
	ssd.Start()
	nic.Start()
	m.run()
	if !ssd.Ready() {
		t.Fatal("ssd not ready after boot")
	}
	return m
}

// run advances the simulation: to quiescence without a watchdog, by a
// bounded window with one (heartbeats never drain).
func (m *machine) run() {
	if m.watchdog == 0 {
		m.eng.Run()
		return
	}
	m.eng.RunFor(20 * sim.Millisecond)
}

// createFile pre-populates the SSD volume.
func (m *machine) createFile(t *testing.T, name string, contents []byte) {
	t.Helper()
	var done bool
	m.ssd.FS().Create(name, func(f *smartssd.File, err error) {
		if err != nil {
			t.Fatal(err)
		}
		if len(contents) == 0 {
			done = true
			return
		}
		f.WriteAt(0, contents, func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			done = true
		})
	})
	m.run()
	if !done {
		t.Fatal("file setup did not complete")
	}
}

// testApp is a minimal NIC application for the tests.
type testApp struct {
	id     msg.AppID
	onBoot func(rt *Runtime)
	failed []msg.DeviceID
}

func (a *testApp) AppID() msg.AppID { return a.id }
func (a *testApp) Boot(rt *Runtime) {
	if a.onBoot != nil {
		a.onBoot(rt)
	}
}
func (a *testApp) ServeNetwork(p []byte, reply func([]byte)) { reply(p) }
func (a *testApp) PeerFailed(d msg.DeviceID)                 { a.failed = append(a.failed, d) }

func TestFigure2OpenFileSequence(t *testing.T) {
	m := newMachine(t)
	m.createFile(t, "kv.dat", []byte("the last cpu's data"))

	var fc *FileClient
	var openErr error
	app := &testApp{id: 42, onBoot: func(rt *Runtime) {
		rt.OpenFile(mcID, "kv.dat", 0, 32, func(c *FileClient, err error) { fc, openErr = c, err })
	}}
	m.nic.AddApp(app)
	m.eng.Run()
	if openErr != nil {
		t.Fatalf("open: %v\ntrace:\n%s", openErr, m.tr.String())
	}
	if fc == nil {
		t.Fatal("no file client")
	}

	// The trace must contain the Figure-2 message kinds in order.
	wantSeq := []string{"discover.req", "discover.resp", "open.req", "open.resp",
		"alloc.req", "alloc.resp", "grant.req", "auth.req", "auth.resp", "grant.resp",
		"connect.req", "connect.resp"}
	kinds := m.tr.Kinds()
	i := 0
	for _, k := range kinds {
		if i < len(wantSeq) && k == wantSeq[i] {
			i++
		}
	}
	if i != len(wantSeq) {
		t.Fatalf("figure-2 sequence incomplete: matched %d of %v\ntrace:\n%s", i, wantSeq, m.tr.String())
	}

	// Data-plane round trip: read the file through the virtqueue.
	var got []byte
	fc.Read(0, 19, func(b []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		got = b
	})
	m.eng.Run()
	if !bytes.Equal(got, []byte("the last cpu's data")) {
		t.Fatalf("read = %q", got)
	}
}

func TestFileWriteAppendStat(t *testing.T) {
	m := newMachine(t)
	m.createFile(t, "kv.dat", nil)
	var fc *FileClient
	app := &testApp{id: 7, onBoot: func(rt *Runtime) {
		rt.OpenFile(mcID, "kv.dat", 0, 32, func(c *FileClient, err error) {
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			fc = c
		})
	}}
	m.nic.AddApp(app)
	m.eng.Run()
	if fc == nil {
		t.Fatal("no client")
	}

	var size uint64
	fc.Append([]byte("record-1|"), func(s uint64, err error) {
		if err != nil {
			t.Error(err)
		}
		fc.Append([]byte("record-2|"), func(s uint64, err error) {
			size = s
			fc.Write(0, []byte("RECORD"), func(err error) {
				if err != nil {
					t.Error(err)
				}
			})
		})
	})
	m.eng.Run()
	if size != 18 {
		t.Fatalf("size after appends = %d", size)
	}
	var got []byte
	fc.Read(0, 18, func(b []byte, err error) { got = b })
	m.eng.Run()
	if string(got) != "RECORD-1|record-2|" {
		t.Fatalf("contents = %q", got)
	}
	var statSize uint64
	fc.Stat(func(s uint64, err error) { statSize = s })
	m.eng.Run()
	if statSize != 18 {
		t.Errorf("stat = %d", statSize)
	}
}

func TestOpenUnknownFileFails(t *testing.T) {
	m := newMachine(t)
	var openErr error
	app := &testApp{id: 7, onBoot: func(rt *Runtime) {
		rt.DiscoverTimeout = 500 * sim.Microsecond
		rt.OpenFile(mcID, "ghost.dat", 0, 32, func(c *FileClient, err error) { openErr = err })
	}}
	m.nic.AddApp(app)
	m.eng.Run()
	if openErr == nil || !strings.Contains(openErr.Error(), "timed out") {
		t.Fatalf("err = %v (no provider should answer)", openErr)
	}
}

func TestOpenWithWrongTokenRefused(t *testing.T) {
	m := newMachine(t)
	m.createFile(t, "secret.dat", []byte("classified"))
	var openErr error
	app := &testApp{id: 7, onBoot: func(rt *Runtime) {
		rt.OpenFile(mcID, "secret.dat", 0xBAD, 32, func(c *FileClient, err error) { openErr = err })
	}}
	m.nic.AddApp(app)
	m.eng.Run()
	if openErr == nil || !strings.Contains(openErr.Error(), "authentication") {
		t.Fatalf("err = %v", openErr)
	}
	// Correct token succeeds.
	var fc *FileClient
	app2 := &testApp{id: 8, onBoot: func(rt *Runtime) {
		rt.OpenFile(mcID, "secret.dat", 0xCAFE, 32, func(c *FileClient, err error) { fc = c })
	}}
	m.nic.AddApp(app2)
	m.eng.Run()
	if fc == nil {
		t.Fatal("authorized open failed")
	}
}

func TestNetworkDeliveryPath(t *testing.T) {
	m := newMachine(t)
	app := &testApp{id: 7}
	m.nic.AddApp(app)
	m.eng.Run()
	var resp []byte
	var at sim.Time
	start := m.eng.Now()
	m.nic.Deliver(7, []byte("ping"), func(b []byte) { resp = b; at = m.eng.Now() })
	m.eng.Run()
	if !bytes.Equal(resp, []byte("ping")) {
		t.Fatalf("resp = %q", resp)
	}
	if want := start.Add(DefaultRxCost + DefaultTxCost); at != want {
		t.Errorf("latency: at %v want %v", at, want)
	}
	// Unknown app: silently dropped.
	m.nic.Deliver(99, []byte("x"), func([]byte) { t.Error("reply for unknown app") })
	m.eng.Run()
}

func TestPeerFailureNotification(t *testing.T) {
	busCfg := bus.DefaultConfig
	m := newMachine(t)
	_ = busCfg
	app := &testApp{id: 7}
	m.nic.AddApp(app)
	m.eng.Run()
	if err := m.bus.FailDevice(ssdID, "injected"); err != nil {
		t.Fatal(err)
	}
	m.eng.Run()
	if len(app.failed) != 1 || app.failed[0] != ssdID {
		t.Fatalf("app saw failures %v", app.failed)
	}
}

func TestTwoAppsIsolatedAddressSpaces(t *testing.T) {
	m := newMachine(t)
	m.createFile(t, "a.dat", []byte("AAAA"))
	m.createFile(t, "b.dat", []byte("BBBB"))
	var fcA, fcB *FileClient
	m.nic.AddApp(&testApp{id: 1, onBoot: func(rt *Runtime) {
		rt.OpenFile(mcID, "a.dat", 0, 16, func(c *FileClient, err error) { fcA = c })
	}})
	m.nic.AddApp(&testApp{id: 2, onBoot: func(rt *Runtime) {
		rt.OpenFile(mcID, "b.dat", 0, 16, func(c *FileClient, err error) { fcB = c })
	}})
	m.eng.Run()
	if fcA == nil || fcB == nil {
		t.Fatal("opens failed")
	}
	var gotA, gotB []byte
	fcA.Read(0, 4, func(b []byte, err error) { gotA = b })
	fcB.Read(0, 4, func(b []byte, err error) { gotB = b })
	m.eng.Run()
	if string(gotA) != "AAAA" || string(gotB) != "BBBB" {
		t.Fatalf("cross-talk: a=%q b=%q", gotA, gotB)
	}
	// The two apps' mappings live in different PASIDs of the same NIC
	// IOMMU; each app's region is invisible to the other.
	if m.nic.Device().IOMMU().Contexts() != 2 {
		t.Errorf("contexts = %d", m.nic.Device().IOMMU().Contexts())
	}
}

func TestCloseTearsDownConnection(t *testing.T) {
	m := newMachine(t)
	m.createFile(t, "kv.dat", []byte("x"))
	var conn *Connection
	m.nic.AddApp(&testApp{id: 3, onBoot: func(rt *Runtime) {
		rt.OpenService(mcID, "file:kv.dat", 0, 16, func(c *Connection, err error) {
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			conn = c
		})
	}})
	m.eng.Run()
	if conn == nil {
		t.Fatal("no connection")
	}
	closed := false
	conn.Close(func(err error) {
		if err != nil {
			t.Error(err)
		}
		closed = true
	})
	m.eng.Run()
	if !closed {
		t.Fatal("close did not complete")
	}
}

func TestConnectByOtherDeviceRefused(t *testing.T) {
	// A second NIC tries to attach to a connection opened by the first:
	// the SSD must refuse (per-instance isolation, §2.1).
	m := newMachine(t)
	m.createFile(t, "kv.dat", []byte("x"))
	nic2, err := New(m.eng, m.bus, m.fab, m.tr, Config{
		Device: device.Config{ID: 9, Name: "nic2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	nic2.Start()

	var connID uint32
	m.nic.AddApp(&testApp{id: 3, onBoot: func(rt *Runtime) {
		// Run only open (not the full sequence) so we can hijack.
		rt.Discover("file:kv.dat", func(provider msg.DeviceID, service string, err error) {
			m.nic.pendingOpen[openKey{3, service}] = func(or *msg.OpenResp) { connID = or.ConnID }
			m.nic.dev.Send(provider, &msg.OpenReq{Service: service, App: 3})
		})
	}})
	m.eng.Run()
	if connID == 0 {
		t.Fatal("open failed")
	}
	var refused *msg.ConnectResp
	nic2.pendingConnect[connID] = func(cr *msg.ConnectResp) { refused = cr }
	nic2.dev.Send(ssdID, &msg.ConnectReq{Service: "file:kv.dat", ConnID: connID, App: 3,
		RingVA: 0x1000_0000, RingEntries: 16, DataVA: 0x1001_0000, DataBytes: 16 * 4096})
	m.eng.Run()
	if refused == nil || refused.OK {
		t.Fatalf("hijacked connect = %+v", refused)
	}
}
