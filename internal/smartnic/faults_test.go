package smartnic

import (
	"bytes"
	"strings"
	"testing"

	"nocpu/internal/msg"
	"nocpu/internal/sim"
	"nocpu/internal/smartssd"
)

// Loader-service coverage (§2.1: devices that store applications
// internally must expose a loader; §4: loads are authenticated).

func TestLoaderUploadsImage(t *testing.T) {
	m := newMachine(t)
	image := bytes.Repeat([]byte{0xEE}, 10000)
	var resp *msg.LoadResp
	app := &testApp{id: 1}
	m.nic.AddApp(app)
	m.nic.Device().Handle(msg.KindLoadResp, func(e msg.Envelope) {
		resp = e.Msg.(*msg.LoadResp)
	})
	m.eng.Run()
	m.nic.Device().Send(ssdID, &msg.LoadReq{Image: "kvs.bin", Data: image})
	m.eng.Run()
	if resp == nil || !resp.OK {
		t.Fatalf("load = %+v", resp)
	}
	// The image is a file on the volume now.
	f, ok := m.ssd.FS().Lookup("kvs.bin")
	if !ok || f.Size() != uint64(len(image)) {
		t.Fatalf("image not stored (ok=%v)", ok)
	}
	// Re-upload replaces contents.
	resp = nil
	m.nic.Device().Send(ssdID, &msg.LoadReq{Image: "kvs.bin", Data: []byte("v2")})
	m.eng.Run()
	if resp == nil || !resp.OK {
		t.Fatalf("reload = %+v", resp)
	}
	f, _ = m.ssd.FS().Lookup("kvs.bin")
	if f.Size() != 2 {
		t.Fatalf("reload size = %d", f.Size())
	}
}

func TestLoaderAuthentication(t *testing.T) {
	// Machine with a loader token configured.
	m := newMachineWithSSD(t, smartssd.Config{LoaderToken: 0x5ec7e7})
	var resp *msg.LoadResp
	m.nic.Device().Handle(msg.KindLoadResp, func(e msg.Envelope) {
		resp = e.Msg.(*msg.LoadResp)
	})
	m.nic.Device().Send(9, &msg.LoadReq{Image: "evil.bin", Token: 0xBAD, Data: []byte{1}})
	m.eng.Run()
	if resp == nil || resp.OK || !strings.Contains(resp.Reason, "authentication") {
		t.Fatalf("unauthenticated load = %+v", resp)
	}
	if _, ok := m.ssd.FS().Lookup("evil.bin"); ok {
		t.Fatal("unauthenticated image stored")
	}
	resp = nil
	m.nic.Device().Send(9, &msg.LoadReq{Image: "good.bin", Token: 0x5ec7e7, Data: []byte{1}})
	m.eng.Run()
	if resp == nil || !resp.OK {
		t.Fatalf("authenticated load = %+v", resp)
	}
}

// newMachineWithSSD builds the standard machine but with a custom SSD
// config (the smartnic_test machine fixture hard-codes one).
func newMachineWithSSD(t *testing.T, ssdCfg smartssd.Config) *machine {
	t.Helper()
	m := newMachine(t)
	// Replace the SSD by attaching a second one with the custom config.
	ssdCfg.Device.ID = 9
	ssdCfg.Device.Name = "ssd9"
	ssd2, err := smartssd.New(m.eng, m.bus, m.fab, m.tr, ssdCfg)
	if err != nil {
		t.Fatal(err)
	}
	ssd2.Start()
	m.eng.Run()
	// Route the fixture's helpers at the new SSD.
	m.ssd = ssd2
	return m
}

func TestBrokenFlashSurfacesIOErrors(t *testing.T) {
	m := newMachine(t)
	m.createFile(t, "kv.dat", []byte("some data on flash"))
	var fc *FileClient
	m.nic.AddApp(&testApp{id: 1, onBoot: func(rt *Runtime) {
		rt.OpenFile(mcID, "kv.dat", 0, 32, func(c *FileClient, err error) {
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			fc = c
		})
	}})
	m.eng.Run()
	if fc == nil {
		t.Fatal("no client")
	}
	// Break the NAND: reads must come back as IO errors, not hangs.
	m.ssd.BreakFlash()
	var gotErr error
	fc.Read(0, 10, func(b []byte, err error) { gotErr = err })
	m.eng.Run()
	if gotErr == nil {
		t.Fatal("read from broken flash succeeded")
	}
	// Repair: service resumes on the same connection.
	m.ssd.RepairFlash()
	var got []byte
	fc.Read(0, 4, func(b []byte, err error) { got = b; gotErr = err })
	m.eng.Run()
	if gotErr != nil || !bytes.Equal(got, []byte("some")) {
		t.Fatalf("post-repair read: %q, %v", got, gotErr)
	}
}

func TestErrorNotifyOnRevokedQueue(t *testing.T) {
	// Revoke the SSD's grant mid-connection: its next DMA faults, and per
	// §4 it must send ErrorNotify to the consumer and drop the context.
	m := newMachine(t)
	m.createFile(t, "kv.dat", []byte("payload"))
	var conn *Connection
	var notified *msg.ErrorNotify
	m.nic.AddApp(&testApp{id: 1, onBoot: func(rt *Runtime) {
		rt.OnResourceError = func(e *msg.ErrorNotify) { notified = e }
		rt.OpenService(mcID, "file:kv.dat", 0, 16, func(c *Connection, err error) {
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			conn = c
		})
	}})
	m.eng.Run()
	if conn == nil {
		t.Fatal("no connection")
	}
	// Revoke the whole shared region from the SSD.
	m.nic.Device().Send(msg.BusID, &msg.RevokeReq{App: 1, VA: conn.VA, Bytes: conn.Bytes, Target: ssdID})
	m.eng.Run()
	// Drive a request: the SSD-side DMA faults.
	_ = conn.Queue.Submit([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}, func(b []byte, err error) {})
	m.eng.Run()
	if notified == nil {
		t.Fatal("no ErrorNotify after revocation fault")
	}
	if notified.Resource != "file:kv.dat" {
		t.Errorf("resource = %q", notified.Resource)
	}
}

func TestNICFailureRebootsApps(t *testing.T) {
	// Kill the NIC: watchdog resets it; the chassis re-runs OnAlive,
	// which re-boots every app, which re-runs the Figure-2 sequence.
	m2 := buildMachine(t, 500*sim.Microsecond)
	m2.createFile(t, "kv.dat", []byte("x"))
	boots := 0
	var lastErr error
	m2.nic.AddApp(&testApp{id: 1, onBoot: func(rt *Runtime) {
		boots++
		rt.OpenFile(mcID, "kv.dat", 0, 16, func(c *FileClient, err error) { lastErr = err })
	}})
	m2.eng.RunFor(5 * sim.Millisecond)
	if boots != 1 || lastErr != nil {
		t.Fatalf("first boot: boots=%d err=%v", boots, lastErr)
	}
	m2.nic.Device().Kill()
	m2.eng.RunFor(20 * sim.Millisecond)
	if boots < 2 {
		t.Fatalf("app not rebooted after NIC recovery (boots=%d)", boots)
	}
	if lastErr != nil {
		t.Fatalf("reboot open failed: %v", lastErr)
	}
}
