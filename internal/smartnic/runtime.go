package smartnic

import (
	"fmt"

	"nocpu/internal/iommu"
	"nocpu/internal/msg"
	"nocpu/internal/physmem"
	"nocpu/internal/sim"
	"nocpu/internal/virtio"
)

// Runtime is the per-application system-bus library (§4
// "Programmability"). It exposes discovery, shared-memory allocation,
// grants and service connections; OpenService composes them into the full
// Figure-2 initialization sequence.
type Runtime struct {
	nic *NIC
	app msg.AppID

	// nextVA is the app's trivial virtual-address-space allocator: the
	// address space is huge and regions are rarely freed, so a bump
	// allocator suffices.
	nextVA uint64

	// OnResourceError receives §4 error notifications from providers.
	OnResourceError func(*msg.ErrorNotify)

	// DiscoverTimeout bounds how long one discovery attempt waits for an
	// answer (retransmissions back off from here per Retry).
	DiscoverTimeout sim.Duration

	// Retry bounds timeouts and retransmission for every control request
	// (retry.go).
	Retry RetryPolicy

	// Demand-paging state (see demand.go).
	lazy          []lazyRegion
	lazyMemctrl   msg.DeviceID
	lazyAllocs    int
	pendingFaults map[uint64][]func(error)

	// conns tracks the app's open connections so a crash reset can quiesce
	// their virtqueues (recovery.go).
	conns []*Connection
}

// vaBase is where each app's bump allocator starts; low VAs stay unused to
// catch bugs.
const vaBase = 0x1000_0000

func newRuntime(n *NIC, app msg.AppID) *Runtime {
	return &Runtime{
		nic:             n,
		app:             app,
		nextVA:          vaBase,
		DiscoverTimeout: 10 * sim.Millisecond,
		Retry:           DefaultRetryPolicy,
		pendingFaults:   make(map[uint64][]func(error)),
	}
}

// App returns the application id.
func (rt *Runtime) App() msg.AppID { return rt.app }

// Engine returns the simulation engine (apps schedule timers with it).
func (rt *Runtime) Engine() *sim.Engine { return rt.nic.dev.Engine() }

// NIC returns the hosting device.
func (rt *Runtime) NIC() *NIC { return rt.nic }

// reserveVA carves a page-aligned region out of the app's address space.
func (rt *Runtime) reserveVA(bytes uint64) uint64 {
	va := rt.nextVA
	pages := (bytes + physmem.PageSize - 1) / physmem.PageSize
	rt.nextVA += (pages + 1) * physmem.PageSize // guard page between regions
	return va
}

// Discover broadcasts a service query (§3 step 1) and waits for the first
// provider (§3 step 2), retransmitting the same nonce on timeout so late
// answers to any attempt count.
func (rt *Runtime) Discover(query string, cb func(provider msg.DeviceID, service string, err error)) {
	n := rt.nic
	n.nextNonce++
	nonce := n.nextNonce
	r := n.newRetrier(rt.Retry.withBase(rt.DiscoverTimeout), fmt.Sprintf("discovery of %q", query), msg.Broadcast, func() uint32 {
		return n.dev.Send(msg.Broadcast, &msg.DiscoverReq{Query: query, Nonce: nonce})
	})
	r.onFail = func(err error) {
		delete(n.pendingDiscover, nonce)
		cb(0, "", err)
	}
	n.pendingDiscover[nonce] = func(src msg.DeviceID, m *msg.DiscoverResp) {
		r.stop()
		cb(src, m.Service, nil)
	}
	r.start()
}

// AllocShared asks the memory controller for shared memory mapped into
// this app's address space (§3 step 5); the bus programs this NIC's IOMMU
// before the response arrives (§3 step 6).
func (rt *Runtime) AllocShared(memctrl msg.DeviceID, bytes uint64, cb func(va uint64, err error)) {
	n := rt.nic
	n.lastMemctrl = memctrl
	va := rt.reserveVA(bytes)
	k := allocKey{rt.app, va}
	r := n.newRetrier(rt.Retry, fmt.Sprintf("alloc of %d bytes", bytes), memctrl, func() uint32 {
		return n.dev.Send(memctrl, &msg.AllocReq{App: rt.app, VA: va, Bytes: bytes, Perm: uint8(iommu.PermRW)})
	})
	r.onFail = func(err error) {
		delete(n.pendingAlloc, k)
		cb(0, err)
	}
	n.pendingAlloc[k] = func(m *msg.AllocResp) {
		r.stop()
		if !m.OK {
			cb(0, fmt.Errorf("smartnic: alloc failed: %s", m.Reason))
			return
		}
		cb(va, nil)
	}
	r.start()
}

// AllocSharedHuge is AllocShared with 2 MiB mappings: the controller
// hands out contiguous runs and the bus installs one PTE per 2 MiB,
// cutting table-programming cost ~512x and extending TLB reach (E13).
func (rt *Runtime) AllocSharedHuge(memctrl msg.DeviceID, bytes uint64, cb func(va uint64, err error)) {
	n := rt.nic
	n.lastMemctrl = memctrl
	// Round the reservation so the next region stays huge-aligned.
	runs := (bytes + iommu.HugePageSize - 1) / iommu.HugePageSize
	va := rt.nextVA
	if rem := va % iommu.HugePageSize; rem != 0 {
		va += iommu.HugePageSize - rem
	}
	rt.nextVA = va + (runs+1)*iommu.HugePageSize
	k := allocKey{rt.app, va}
	r := n.newRetrier(rt.Retry, fmt.Sprintf("huge alloc of %d bytes", bytes), memctrl, func() uint32 {
		return n.dev.Send(memctrl, &msg.AllocReq{App: rt.app, VA: va, Bytes: bytes, Perm: uint8(iommu.PermRW), Huge: true})
	})
	r.onFail = func(err error) {
		delete(n.pendingAlloc, k)
		cb(0, err)
	}
	n.pendingAlloc[k] = func(m *msg.AllocResp) {
		r.stop()
		if !m.OK {
			cb(0, fmt.Errorf("smartnic: huge alloc failed: %s", m.Reason))
			return
		}
		cb(va, nil)
	}
	r.start()
}

// Free returns a shared region to the controller.
func (rt *Runtime) Free(memctrl msg.DeviceID, va, bytes uint64, cb func(error)) {
	n := rt.nic
	k := allocKey{rt.app, va}
	r := n.newRetrier(rt.Retry, fmt.Sprintf("free of va %#x", va), memctrl, func() uint32 {
		return n.dev.Send(memctrl, &msg.FreeReq{App: rt.app, VA: va, Bytes: bytes})
	})
	r.onFail = func(err error) {
		delete(n.pendingFree, k)
		cb(err)
	}
	n.pendingFree[k] = func(m *msg.FreeResp) {
		r.stop()
		if !m.OK {
			cb(fmt.Errorf("smartnic: free failed: %s", m.Reason))
			return
		}
		cb(nil)
	}
	r.start()
}

// Grant asks the bus to extend one of this app's regions to another
// device (§3 step 7, first half).
func (rt *Runtime) Grant(va, bytes uint64, target msg.DeviceID, cb func(error)) {
	n := rt.nic
	k := grantKey{rt.app, va, target}
	r := n.newRetrier(rt.Retry, fmt.Sprintf("grant of va %#x to dev%d", va, target), msg.BusID, func() uint32 {
		return n.dev.Send(msg.BusID, &msg.GrantReq{App: rt.app, VA: va, Bytes: bytes, Target: target, Perm: uint8(iommu.PermRW)})
	})
	r.onFail = func(err error) {
		delete(n.pendingGrant, k)
		cb(err)
	}
	n.pendingGrant[k] = func(m *msg.GrantResp) {
		r.stop()
		if !m.OK {
			cb(fmt.Errorf("smartnic: grant to %v denied: %s", target, m.Reason))
			return
		}
		cb(nil)
	}
	r.start()
}

// Connection is an established service connection with its virtqueue.
type Connection struct {
	rt       *Runtime
	Provider msg.DeviceID
	Service  string
	ConnID   uint32
	VA       uint64 // shared region base
	Bytes    uint64
	Queue    *virtio.Driver
}

// OpenService runs the complete Figure-2 sequence:
//
//  1. broadcast discovery of the query
//  2. provider responds
//  3. OpenReq with the authorization token
//  4. OpenResp with connection id + shared memory size
//  5. AllocReq to the memory controller
//  6. bus programs this device's IOMMU, AllocResp arrives
//  7. GrantReq extends the region to the provider; ConnectReq programs
//     the provider's virtqueue endpoint
//
// cb receives a live Connection whose Queue is ready for requests.
func (rt *Runtime) OpenService(memctrl msg.DeviceID, query string, token uint64, entries uint16, cb func(*Connection, error)) {
	n := rt.nic
	fail := func(stage string, err error) {
		cb(nil, fmt.Errorf("smartnic: open %q: %s: %w", query, stage, err))
	}
	// Step 1-2: discovery.
	rt.Discover(query, func(provider msg.DeviceID, service string, err error) {
		if err != nil {
			fail("discover", err)
			return
		}
		// Step 3-4: open.
		ok := openKey{rt.app, service}
		ro := n.newRetrier(rt.Retry, fmt.Sprintf("open of %q", service), provider, func() uint32 {
			return n.dev.Send(provider, &msg.OpenReq{Service: service, App: rt.app, Token: token})
		})
		ro.onFail = func(err error) {
			delete(n.pendingOpen, ok)
			fail("open", err)
		}
		n.pendingOpen[ok] = func(or *msg.OpenResp) {
			ro.stop()
			if !or.OK {
				fail("open", fmt.Errorf("%s", or.Reason))
				return
			}
			// The provider quotes shared memory for a default ring; scale
			// for the ring size we actually want.
			cell := int(or.SharedBytes) // provider's quote for 128 entries
			_ = cell
			cellSize := cellSizeFromQuote(or.SharedBytes, 128)
			lay := virtio.NewLayout(0, entries, cellSize)
			shared := uint64(lay.DataVA) + uint64(lay.DataBytes())
			// Step 5-6: allocate shared memory (bus maps our IOMMU).
			rt.AllocShared(memctrl, shared, func(va uint64, err error) {
				if err != nil {
					fail("alloc", err)
					return
				}
				// Step 7a: grant the region to the provider.
				rt.Grant(va, shared, provider, func(err error) {
					if err != nil {
						fail("grant", err)
						return
					}
					// Build our driver half first so the ConnectReq can
					// carry the response doorbell.
					layout := virtio.NewLayout(iommu.VirtAddr(va), entries, cellSize)
					drv, derr := virtio.NewDriver(n.dev.DMA(), iommu.PASID(rt.app), layout, 0)
					if derr != nil {
						fail("driver", derr)
						return
					}
					// Step 7b: program the provider's queue.
					rc := n.newRetrier(rt.Retry, fmt.Sprintf("connect of %q conn %d", service, or.ConnID), provider, func() uint32 {
						return n.dev.Send(provider, &msg.ConnectReq{
							Service:      service,
							ConnID:       or.ConnID,
							App:          rt.app,
							RingVA:       uint64(layout.Base),
							RingEntries:  entries,
							DataVA:       uint64(layout.DataVA),
							DataBytes:    uint64(layout.DataBytes()),
							RespDoorbell: uint64(drv.RespBell),
						})
					})
					rc.onFail = func(err error) {
						delete(n.pendingConnect, or.ConnID)
						fail("connect", err)
					}
					n.pendingConnect[or.ConnID] = func(cr *msg.ConnectResp) {
						rc.stop()
						if !cr.OK {
							fail("connect", fmt.Errorf("%s", cr.Reason))
							return
						}
						var bell uint64
						if _, err := fmt.Sscanf(cr.Reason, "reqbell=%d", &bell); err != nil {
							fail("connect", fmt.Errorf("no request doorbell in response"))
							return
						}
						drv.SetRequestBell(bell)
						conn := &Connection{
							rt:       rt,
							Provider: provider,
							Service:  service,
							ConnID:   or.ConnID,
							VA:       va,
							Bytes:    shared,
							Queue:    drv,
						}
						rt.conns = append(rt.conns, conn)
						cb(conn, nil)
					}
					rc.start()
				})
			})
		}
		ro.start()
	})
}

// cellSizeFromQuote inverts virtio.SharedBytes for the provider's default
// 128-entry quote to recover its cell size.
func cellSizeFromQuote(quote uint64, entries uint16) int {
	ring := uint64((virtio.RingBytes(entries) + physmem.PageSize - 1) &^ (physmem.PageSize - 1))
	if quote <= ring {
		return physmem.PageSize
	}
	return int((quote - ring) / uint64(entries))
}

// Close tears down the connection (service side and local doorbell).
func (c *Connection) Close(cb func(error)) {
	n := c.rt.nic
	r := n.newRetrier(c.rt.Retry, fmt.Sprintf("close of conn %d", c.ConnID), c.Provider, func() uint32 {
		return n.dev.Send(c.Provider, &msg.CloseReq{Service: c.Service, ConnID: c.ConnID, App: c.rt.app})
	})
	r.onFail = func(err error) {
		delete(n.pendingClose, c.ConnID)
		// The provider is unreachable; release the local half regardless.
		n.dev.Fabric().UnregisterDoorbell(c.Queue.RespBell)
		c.rt.forgetConn(c)
		cb(err)
	}
	n.pendingClose[c.ConnID] = func(m *msg.CloseResp) {
		r.stop()
		n.dev.Fabric().UnregisterDoorbell(c.Queue.RespBell)
		c.rt.forgetConn(c)
		if !m.OK {
			cb(fmt.Errorf("smartnic: close refused"))
			return
		}
		cb(nil)
	}
	r.start()
}

// forgetConn drops a closed connection from the crash-teardown list.
func (rt *Runtime) forgetConn(c *Connection) {
	for i, x := range rt.conns {
		if x == c {
			rt.conns = append(rt.conns[:i], rt.conns[i+1:]...)
			return
		}
	}
}
