package smartnic

import (
	"fmt"

	"nocpu/internal/iommu"
	"nocpu/internal/msg"
	"nocpu/internal/physmem"
	"nocpu/internal/sim"
	"nocpu/internal/virtio"
)

// Runtime is the per-application system-bus library (§4
// "Programmability"). It exposes discovery, shared-memory allocation,
// grants and service connections; OpenService composes them into the full
// Figure-2 initialization sequence.
type Runtime struct {
	nic *NIC
	app msg.AppID

	// nextVA is the app's trivial virtual-address-space allocator: the
	// address space is huge and regions are rarely freed, so a bump
	// allocator suffices.
	nextVA uint64

	// OnResourceError receives §4 error notifications from providers.
	OnResourceError func(*msg.ErrorNotify)

	// DiscoverTimeout bounds how long a discovery waits for an answer.
	DiscoverTimeout sim.Duration

	// Demand-paging state (see demand.go).
	lazy          []lazyRegion
	lazyMemctrl   msg.DeviceID
	lazyAllocs    int
	pendingFaults map[uint64][]func(error)
}

func newRuntime(n *NIC, app msg.AppID) *Runtime {
	return &Runtime{
		nic:             n,
		app:             app,
		nextVA:          0x1000_0000, // leave low VAs unused to catch bugs
		DiscoverTimeout: 10 * sim.Millisecond,
		pendingFaults:   make(map[uint64][]func(error)),
	}
}

// App returns the application id.
func (rt *Runtime) App() msg.AppID { return rt.app }

// Engine returns the simulation engine (apps schedule timers with it).
func (rt *Runtime) Engine() *sim.Engine { return rt.nic.dev.Engine() }

// NIC returns the hosting device.
func (rt *Runtime) NIC() *NIC { return rt.nic }

// reserveVA carves a page-aligned region out of the app's address space.
func (rt *Runtime) reserveVA(bytes uint64) uint64 {
	va := rt.nextVA
	pages := (bytes + physmem.PageSize - 1) / physmem.PageSize
	rt.nextVA += (pages + 1) * physmem.PageSize // guard page between regions
	return va
}

// Discover broadcasts a service query (§3 step 1) and waits for the first
// provider (§3 step 2) or the timeout.
func (rt *Runtime) Discover(query string, cb func(provider msg.DeviceID, service string, err error)) {
	n := rt.nic
	n.nextNonce++
	nonce := n.nextNonce
	timer := n.dev.Engine().After(rt.DiscoverTimeout, func() {
		if _, still := n.pendingDiscover[nonce]; still {
			delete(n.pendingDiscover, nonce)
			cb(0, "", fmt.Errorf("smartnic: discovery of %q timed out", query))
		}
	})
	n.pendingDiscover[nonce] = func(src msg.DeviceID, m *msg.DiscoverResp) {
		timer.Stop()
		cb(src, m.Service, nil)
	}
	n.dev.Send(msg.Broadcast, &msg.DiscoverReq{Query: query, Nonce: nonce})
}

// AllocShared asks the memory controller for shared memory mapped into
// this app's address space (§3 step 5); the bus programs this NIC's IOMMU
// before the response arrives (§3 step 6).
func (rt *Runtime) AllocShared(memctrl msg.DeviceID, bytes uint64, cb func(va uint64, err error)) {
	n := rt.nic
	va := rt.reserveVA(bytes)
	n.pendingAlloc[allocKey{rt.app, va}] = func(m *msg.AllocResp) {
		if !m.OK {
			cb(0, fmt.Errorf("smartnic: alloc failed: %s", m.Reason))
			return
		}
		cb(va, nil)
	}
	n.dev.Send(memctrl, &msg.AllocReq{App: rt.app, VA: va, Bytes: bytes, Perm: uint8(iommu.PermRW)})
}

// AllocSharedHuge is AllocShared with 2 MiB mappings: the controller
// hands out contiguous runs and the bus installs one PTE per 2 MiB,
// cutting table-programming cost ~512x and extending TLB reach (E13).
func (rt *Runtime) AllocSharedHuge(memctrl msg.DeviceID, bytes uint64, cb func(va uint64, err error)) {
	n := rt.nic
	// Round the reservation so the next region stays huge-aligned.
	runs := (bytes + iommu.HugePageSize - 1) / iommu.HugePageSize
	va := rt.nextVA
	if rem := va % iommu.HugePageSize; rem != 0 {
		va += iommu.HugePageSize - rem
	}
	rt.nextVA = va + (runs+1)*iommu.HugePageSize
	n.pendingAlloc[allocKey{rt.app, va}] = func(m *msg.AllocResp) {
		if !m.OK {
			cb(0, fmt.Errorf("smartnic: huge alloc failed: %s", m.Reason))
			return
		}
		cb(va, nil)
	}
	n.dev.Send(memctrl, &msg.AllocReq{App: rt.app, VA: va, Bytes: bytes, Perm: uint8(iommu.PermRW), Huge: true})
}

// Free returns a shared region to the controller.
func (rt *Runtime) Free(memctrl msg.DeviceID, va, bytes uint64, cb func(error)) {
	n := rt.nic
	n.pendingFree[allocKey{rt.app, va}] = func(m *msg.FreeResp) {
		if !m.OK {
			cb(fmt.Errorf("smartnic: free failed: %s", m.Reason))
			return
		}
		cb(nil)
	}
	n.dev.Send(memctrl, &msg.FreeReq{App: rt.app, VA: va, Bytes: bytes})
}

// Grant asks the bus to extend one of this app's regions to another
// device (§3 step 7, first half).
func (rt *Runtime) Grant(va, bytes uint64, target msg.DeviceID, cb func(error)) {
	n := rt.nic
	n.pendingGrant[grantKey{rt.app, va, target}] = func(m *msg.GrantResp) {
		if !m.OK {
			cb(fmt.Errorf("smartnic: grant to %v denied: %s", target, m.Reason))
			return
		}
		cb(nil)
	}
	n.dev.Send(msg.BusID, &msg.GrantReq{App: rt.app, VA: va, Bytes: bytes, Target: target, Perm: uint8(iommu.PermRW)})
}

// Connection is an established service connection with its virtqueue.
type Connection struct {
	rt       *Runtime
	Provider msg.DeviceID
	Service  string
	ConnID   uint32
	VA       uint64 // shared region base
	Bytes    uint64
	Queue    *virtio.Driver
}

// OpenService runs the complete Figure-2 sequence:
//
//  1. broadcast discovery of the query
//  2. provider responds
//  3. OpenReq with the authorization token
//  4. OpenResp with connection id + shared memory size
//  5. AllocReq to the memory controller
//  6. bus programs this device's IOMMU, AllocResp arrives
//  7. GrantReq extends the region to the provider; ConnectReq programs
//     the provider's virtqueue endpoint
//
// cb receives a live Connection whose Queue is ready for requests.
func (rt *Runtime) OpenService(memctrl msg.DeviceID, query string, token uint64, entries uint16, cb func(*Connection, error)) {
	n := rt.nic
	fail := func(stage string, err error) {
		cb(nil, fmt.Errorf("smartnic: open %q: %s: %w", query, stage, err))
	}
	// Step 1-2: discovery.
	rt.Discover(query, func(provider msg.DeviceID, service string, err error) {
		if err != nil {
			fail("discover", err)
			return
		}
		// Step 3-4: open.
		n.pendingOpen[openKey{rt.app, service}] = func(or *msg.OpenResp) {
			if !or.OK {
				fail("open", fmt.Errorf("%s", or.Reason))
				return
			}
			// The provider quotes shared memory for a default ring; scale
			// for the ring size we actually want.
			cell := int(or.SharedBytes) // provider's quote for 128 entries
			_ = cell
			cellSize := cellSizeFromQuote(or.SharedBytes, 128)
			lay := virtio.NewLayout(0, entries, cellSize)
			shared := uint64(lay.DataVA) + uint64(lay.DataBytes())
			// Step 5-6: allocate shared memory (bus maps our IOMMU).
			rt.AllocShared(memctrl, shared, func(va uint64, err error) {
				if err != nil {
					fail("alloc", err)
					return
				}
				// Step 7a: grant the region to the provider.
				rt.Grant(va, shared, provider, func(err error) {
					if err != nil {
						fail("grant", err)
						return
					}
					// Build our driver half first so the ConnectReq can
					// carry the response doorbell.
					layout := virtio.NewLayout(iommu.VirtAddr(va), entries, cellSize)
					drv, derr := virtio.NewDriver(n.dev.DMA(), iommu.PASID(rt.app), layout, 0)
					if derr != nil {
						fail("driver", derr)
						return
					}
					// Step 7b: program the provider's queue.
					n.pendingConnect[or.ConnID] = func(cr *msg.ConnectResp) {
						if !cr.OK {
							fail("connect", fmt.Errorf("%s", cr.Reason))
							return
						}
						var bell uint64
						if _, err := fmt.Sscanf(cr.Reason, "reqbell=%d", &bell); err != nil {
							fail("connect", fmt.Errorf("no request doorbell in response"))
							return
						}
						drv.SetRequestBell(bell)
						cb(&Connection{
							rt:       rt,
							Provider: provider,
							Service:  service,
							ConnID:   or.ConnID,
							VA:       va,
							Bytes:    shared,
							Queue:    drv,
						}, nil)
					}
					n.dev.Send(provider, &msg.ConnectReq{
						Service:      service,
						ConnID:       or.ConnID,
						App:          rt.app,
						RingVA:       uint64(layout.Base),
						RingEntries:  entries,
						DataVA:       uint64(layout.DataVA),
						DataBytes:    uint64(layout.DataBytes()),
						RespDoorbell: uint64(drv.RespBell),
					})
				})
			})
		}
		n.dev.Send(provider, &msg.OpenReq{Service: service, App: rt.app, Token: token})
	})
}

// cellSizeFromQuote inverts virtio.SharedBytes for the provider's default
// 128-entry quote to recover its cell size.
func cellSizeFromQuote(quote uint64, entries uint16) int {
	ring := uint64((virtio.RingBytes(entries) + physmem.PageSize - 1) &^ (physmem.PageSize - 1))
	if quote <= ring {
		return physmem.PageSize
	}
	return int((quote - ring) / uint64(entries))
}

// Close tears down the connection (service side and local doorbell).
func (c *Connection) Close(cb func(error)) {
	n := c.rt.nic
	n.pendingClose[c.ConnID] = func(m *msg.CloseResp) {
		n.dev.Fabric().UnregisterDoorbell(c.Queue.RespBell)
		if !m.OK {
			cb(fmt.Errorf("smartnic: close refused"))
			return
		}
		cb(nil)
	}
	n.dev.Send(c.Provider, &msg.CloseReq{Service: c.Service, ConnID: c.ConnID, App: c.rt.app})
}
