package smartnic

import (
	"errors"
	"strings"
	"testing"

	"nocpu/internal/faultinject"
	"nocpu/internal/msg"
	"nocpu/internal/sim"
)

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{Timeout: 3 * sim.Millisecond, MaxTimeout: 24 * sim.Millisecond, MaxRetries: 5}
	want := []sim.Duration{3, 6, 12, 24, 24, 24}
	for i, w := range want {
		if got := p.timeoutFor(i); got != w*sim.Millisecond {
			t.Errorf("timeoutFor(%d) = %v, want %v", i, got, w*sim.Millisecond)
		}
	}
	alt := p.withBase(sim.Millisecond)
	if got := alt.timeoutFor(0); got != sim.Millisecond {
		t.Errorf("withBase timeoutFor(0) = %v", got)
	}
	if alt.MaxRetries != p.MaxRetries {
		t.Errorf("withBase changed MaxRetries")
	}
}

// alloc issues one AllocShared and advances until its callback fires.
func (m *machine) alloc(t *testing.T, rt *Runtime, bytes uint64) (uint64, error) {
	t.Helper()
	var va uint64
	var rerr error
	done := false
	rt.AllocShared(mcID, bytes, func(v uint64, err error) { va, rerr, done = v, err, true })
	deadline := m.eng.Now().Add(sim.Second)
	for !done && m.eng.Now() < deadline {
		m.eng.RunFor(100 * sim.Microsecond)
	}
	if !done {
		t.Fatal("alloc callback never fired (retry layer hung)")
	}
	return va, rerr
}

// bootApp loads a test app and returns its runtime.
func (m *machine) bootApp(t *testing.T, id msg.AppID) *Runtime {
	t.Helper()
	var rt *Runtime
	app := &testApp{id: id, onBoot: func(r *Runtime) { rt = r }}
	m.nic.AddApp(app)
	m.run()
	if rt == nil {
		t.Fatal("app did not boot")
	}
	return rt
}

// TestRetryThroughMessageLoss drops the first AllocReq on the bus; the
// request must still succeed via the timeout retransmission, invisibly to
// the caller except for added latency.
func TestRetryThroughMessageLoss(t *testing.T) {
	m := newMachine(t)
	plane := faultinject.New(1)
	m.bus.SetFaultPlane(plane)
	rt := m.bootApp(t, 1)

	plane.Add(faultinject.Rule{
		Layer: faultinject.LayerBus, Kind: msg.KindAllocReq, Op: faultinject.Drop, Count: 1,
	})
	va, err := m.alloc(t, rt, 64<<10)
	if err != nil {
		t.Fatalf("alloc failed despite retry layer: %v", err)
	}
	if va == 0 {
		t.Fatal("zero VA")
	}
	st := m.nic.RetryStats()
	if st.Retries == 0 {
		t.Error("no retry recorded for a dropped request")
	}
	if st.Exhausted != 0 {
		t.Errorf("exhausted = %d, want 0", st.Exhausted)
	}
	if got := plane.Stats().Dropped; got != 1 {
		t.Errorf("plane dropped %d messages, want 1", got)
	}
}

// TestRetryDroppedResponseIsIdempotent drops the first AllocResp instead:
// the controller has already allocated, so the retransmitted request must
// be answered by idempotent replay — same VA, no double allocation.
func TestRetryDroppedResponseIsIdempotent(t *testing.T) {
	m := newMachine(t)
	plane := faultinject.New(2)
	m.bus.SetFaultPlane(plane)
	rt := m.bootApp(t, 1)

	plane.Add(faultinject.Rule{
		Layer: faultinject.LayerBus, Kind: msg.KindAllocResp, Op: faultinject.Drop, Count: 1,
	})
	va, err := m.alloc(t, rt, 64<<10)
	if err != nil {
		t.Fatalf("alloc failed: %v", err)
	}
	// A second, genuine allocation must get a fresh region (the replay
	// cache must not leak into new requests).
	va2, err := m.alloc(t, rt, 64<<10)
	if err != nil {
		t.Fatalf("second alloc failed: %v", err)
	}
	if va2 == va {
		t.Errorf("second alloc returned the same VA %#x (replayed stale response)", va)
	}
	if st := m.mc.Stats(); st.Allocs != 2 {
		t.Errorf("controller performed %d allocs, want 2 (dup request must replay, not re-allocate)", st.Allocs)
	}
}

// TestRetryBudgetExhaustionTyped blackholes every AllocReq: the caller
// must get a typed TimeoutError after MaxRetries+1 attempts, within the
// deterministic backoff bound, and never hang.
func TestRetryBudgetExhaustionTyped(t *testing.T) {
	m := newMachine(t)
	plane := faultinject.New(3)
	m.bus.SetFaultPlane(plane)
	rt := m.bootApp(t, 1)

	plane.Add(faultinject.Rule{
		Layer: faultinject.LayerBus, Kind: msg.KindAllocReq, Op: faultinject.Drop,
	})
	start := m.eng.Now()
	_, err := m.alloc(t, rt, 64<<10)
	if err == nil {
		t.Fatal("alloc succeeded with every request dropped")
	}
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("error %T %q is not a TimeoutError", err, err)
	}
	if te.Attempts != rt.Retry.MaxRetries+1 {
		t.Errorf("attempts = %d, want %d", te.Attempts, rt.Retry.MaxRetries+1)
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Errorf("error text %q missing 'timed out'", err)
	}
	// Bound: sum of the capped exponential schedule, plus scheduling slop.
	var bound sim.Duration
	for i := 0; i <= rt.Retry.MaxRetries; i++ {
		bound += rt.Retry.timeoutFor(i)
	}
	if elapsed := m.eng.Now().Sub(start); elapsed > bound+sim.Millisecond {
		t.Errorf("failure took %v, beyond backoff bound %v", elapsed, bound)
	}
	if st := m.nic.RetryStats(); st.Exhausted != 1 {
		t.Errorf("exhausted = %d, want 1", st.Exhausted)
	}
}

// TestNackFastRetry sends an alloc to a device ID that does not exist:
// the bus NACKs (unknown destination) instead of silently dropping, and
// the retrier's NACK fast path resends ahead of the full timeout,
// ultimately failing typed with the NACK reason attached — and much
// sooner than blind timeouts would.
func TestNackFastRetry(t *testing.T) {
	m := newMachine(t)
	rt := m.bootApp(t, 1)

	start := m.eng.Now()
	_, oerr := func() (uint64, error) {
		var va uint64
		var rerr error
		done := false
		rt.AllocShared(msg.DeviceID(99), 64<<10, func(v uint64, err error) { va, rerr, done = v, err, true })
		deadline := m.eng.Now().Add(sim.Second)
		for !done && m.eng.Now() < deadline {
			m.eng.RunFor(100 * sim.Microsecond)
		}
		if !done {
			t.Fatal("alloc callback never fired")
		}
		return va, rerr
	}()
	if oerr == nil {
		t.Fatal("alloc to nonexistent device succeeded")
	}
	var te *TimeoutError
	if !errors.As(oerr, &te) {
		t.Fatalf("error %T %q is not a TimeoutError", oerr, oerr)
	}
	if te.LastNack == "" || !strings.Contains(oerr.Error(), "nack") {
		t.Errorf("error %q does not carry the NACK reason", oerr)
	}
	st := m.nic.RetryStats()
	if st.NackFast == 0 {
		t.Error("NACK fast-path retries not recorded")
	}
	if st.NackFast != st.Retries {
		t.Errorf("retries = %d, nack-fast = %d: unknown-destination retries should all be NACK-driven", st.Retries, st.NackFast)
	}
	// NACK-driven failure must beat the blind-timeout schedule.
	var blind sim.Duration
	for i := 0; i <= rt.Retry.MaxRetries; i++ {
		blind += rt.Retry.timeoutFor(i)
	}
	if elapsed := m.eng.Now().Sub(start); elapsed >= blind {
		t.Errorf("NACK path took %v, not faster than blind timeouts (%v)", elapsed, blind)
	}
}
