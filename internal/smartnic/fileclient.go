package smartnic

import (
	"fmt"

	"nocpu/internal/msg"
	"nocpu/internal/smartssd"
)

// FileClient wraps a service Connection with the smart SSD's file
// protocol, giving NIC applications typed file I/O over the virtqueue.
type FileClient struct {
	Conn *Connection
}

// OpenFile runs the Figure-2 sequence for "file:<name>" and wraps the
// resulting connection in a FileClient.
func (rt *Runtime) OpenFile(memctrl msg.DeviceID, name string, token uint64, entries uint16, cb func(*FileClient, error)) {
	rt.openFileQuery(memctrl, "file:"+name, token, entries, cb)
}

// OpenFileCreate is OpenFile but creates the file on the storage device
// if it does not exist ("file+create:<name>" — used for app-private
// files like index snapshots).
func (rt *Runtime) OpenFileCreate(memctrl msg.DeviceID, name string, token uint64, entries uint16, cb func(*FileClient, error)) {
	rt.openFileQuery(memctrl, "file+create:"+name, token, entries, cb)
}

func (rt *Runtime) openFileQuery(memctrl msg.DeviceID, query string, token uint64, entries uint16, cb func(*FileClient, error)) {
	rt.OpenService(memctrl, query, token, entries, func(c *Connection, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		cb(&FileClient{Conn: c}, nil)
	})
}

// maxIO returns the largest read/write payload that fits one cell.
func (fc *FileClient) maxIO() int {
	cell := fc.Conn.Queue.CellSize()
	if n := cell - smartssd.RespHeaderBytes; n < cell-smartssd.ReqHeaderBytes {
		return n
	}
	return cell - smartssd.ReqHeaderBytes
}

// MaxIO exposes the per-request payload bound.
func (fc *FileClient) MaxIO() int { return fc.maxIO() }

func (fc *FileClient) roundTrip(req smartssd.FileReq, cb func(smartssd.FileResp, error)) {
	err := fc.Conn.Queue.Submit(smartssd.EncodeFileReq(req), func(respBytes []byte, err error) {
		if err != nil {
			cb(smartssd.FileResp{}, err)
			return
		}
		resp, derr := smartssd.DecodeFileResp(respBytes)
		if derr != nil {
			cb(smartssd.FileResp{}, derr)
			return
		}
		if resp.Status != smartssd.StatusOK {
			cb(resp, fmt.Errorf("smartnic: file op %v failed with status %d", req.Op, resp.Status))
			return
		}
		cb(resp, nil)
	})
	if err != nil {
		cb(smartssd.FileResp{}, err)
	}
}

// Read fetches n bytes at off (n bounded by MaxIO).
func (fc *FileClient) Read(off uint64, n int, cb func([]byte, error)) {
	if n > fc.maxIO() {
		cb(nil, fmt.Errorf("smartnic: read of %d exceeds per-request max %d", n, fc.maxIO()))
		return
	}
	fc.roundTrip(smartssd.FileReq{Op: smartssd.OpRead, Off: off, Len: uint32(n)}, func(r smartssd.FileResp, err error) {
		cb(r.Data, err)
	})
}

// Write stores data at off.
func (fc *FileClient) Write(off uint64, data []byte, cb func(error)) {
	if len(data) > fc.maxIO() {
		cb(fmt.Errorf("smartnic: write of %d exceeds per-request max %d", len(data), fc.maxIO()))
		return
	}
	fc.roundTrip(smartssd.FileReq{Op: smartssd.OpWrite, Off: off, Data: data}, func(r smartssd.FileResp, err error) {
		cb(err)
	})
}

// Append adds data at EOF; cb receives the resulting file size.
func (fc *FileClient) Append(data []byte, cb func(newSize uint64, err error)) {
	if len(data) > fc.maxIO() {
		cb(0, fmt.Errorf("smartnic: append of %d exceeds per-request max %d", len(data), fc.maxIO()))
		return
	}
	fc.roundTrip(smartssd.FileReq{Op: smartssd.OpAppend, Data: data}, func(r smartssd.FileResp, err error) {
		cb(r.Size, err)
	})
}

// Stat reports the file size.
func (fc *FileClient) Stat(cb func(size uint64, err error)) {
	fc.roundTrip(smartssd.FileReq{Op: smartssd.OpStat}, func(r smartssd.FileResp, err error) {
		cb(r.Size, err)
	})
}

// Truncate empties the file.
func (fc *FileClient) Truncate(cb func(error)) {
	fc.roundTrip(smartssd.FileReq{Op: smartssd.OpTruncate}, func(r smartssd.FileResp, err error) {
		cb(err)
	})
}

// Rename renames the connection's file, replacing any existing file of
// that name (used for compaction's atomic switch-over).
func (fc *FileClient) Rename(newName string, cb func(error)) {
	fc.roundTrip(smartssd.FileReq{Op: smartssd.OpRename, Data: []byte(newName)}, func(r smartssd.FileResp, err error) {
		cb(err)
	})
}
