package smartnic

import (
	"fmt"
	"sort"

	"nocpu/internal/msg"
	"nocpu/internal/physmem"
)

// This file is the NIC's crash-recovery path (§4 "Error handling": "In the
// case of a fatal error, all the applications that have been allocated the
// resource are notified, and the device is reset"). A bus Reset tears the
// whole device down to power-on state: every continuation, timer and
// virtqueue belonging to the dying incarnation is discarded here, and
// rejoin() reconciles surviving management state with the bus before the
// applications boot again.

// onReset discards the dying incarnation's volatile state. Nothing here
// may send messages or schedule events: a resetting device is silent until
// its ResetDone, and the abort must not perturb the event schedule beyond
// the crash itself.
func (n *NIC) onReset() {
	// Abort every in-flight reliable request silently. The completion
	// callbacks belong to the incarnation that just died and must never
	// run; timers are stopped (schedule-neutral) so no stale timeout fires
	// into the next life.
	seqs := make([]uint32, 0, len(n.inflight))
	for seq := range n.inflight {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		r := n.inflight[seq]
		r.done = true
		if r.timer != nil {
			r.timer.Stop()
		}
		delete(n.inflight, seq)
	}
	// Drop the dead continuations outright. Responses to the old life that
	// are still in flight (the bus fences most of them by incarnation, but
	// a provider may answer an old request with its own current
	// incarnation) find no pending entry and vanish.
	n.pendingDiscover = make(map[uint32]func(msg.DeviceID, *msg.DiscoverResp))
	n.pendingOpen = make(map[openKey]func(*msg.OpenResp))
	n.pendingAlloc = make(map[allocKey]func(*msg.AllocResp))
	n.pendingFree = make(map[allocKey]func(*msg.FreeResp))
	n.pendingGrant = make(map[grantKey]func(*msg.GrantResp))
	n.pendingConnect = make(map[uint32]func(*msg.ConnectResp))
	n.pendingClose = make(map[uint32]func(*msg.CloseResp))
	n.pendingIO = make(map[ioKey]func(*msg.FileIOResp))
	n.pendingState = make(map[uint32]func(*msg.StateResp))
	// Quiesce every app's virtqueues (doorbells unregistered, no callbacks
	// fire) and reset the per-app runtimes to their newRuntime state.
	for _, id := range n.sortedAppIDs() {
		rt := n.rts[id]
		for _, c := range rt.conns {
			c.Queue.Quiesce()
		}
		rt.reset()
	}
}

// reset returns the runtime to its power-on state. The VA allocator
// restarts at its base: rejoin() frees the old incarnation's surviving
// regions before any app boots, so the addresses are genuinely free again.
func (rt *Runtime) reset() {
	rt.conns = nil
	rt.nextVA = vaBase
	rt.lazy = nil
	rt.lazyMemctrl = 0
	rt.lazyAllocs = 0
	rt.pendingFaults = make(map[uint64][]func(error))
}

// bootApps starts every hosted application in id order.
func (n *NIC) bootApps() {
	for _, id := range n.sortedAppIDs() {
		n.apps[id].Boot(n.rts[id])
	}
}

// rejoin runs after a recovery (Incarnation > 0): before any application
// boots, ask the bus which regions the previous incarnation still owns
// (StateQuery/StateResp) and free them through the memory controller. The
// bus's FreeResp interception unmaps the owner and every grantee, so the
// reclaim also revokes grants the dead life extended to providers. Without
// this the restarted VA allocator would collide with the old regions at
// the controller ("overlaps existing region") and the frames would leak.
func (n *NIC) rejoin() {
	n.nextNonce++
	nonce := n.nextNonce
	r := n.newRetrier(DefaultRetryPolicy, "rejoin state query", msg.BusID, func() uint32 {
		return n.dev.Send(msg.BusID, &msg.StateQuery{Nonce: nonce})
	})
	r.onFail = func(error) {
		delete(n.pendingState, nonce)
		// The bus answered Hello but not StateQuery — boot anyway and let
		// per-app allocation failures surface through the normal error path.
		n.bootApps()
	}
	n.pendingState[nonce] = func(m *msg.StateResp) {
		r.stop()
		n.reclaim(m.Regions, 0)
	}
	r.start()
}

// reclaim frees the i-th surviving region, then the next; the StateResp
// lists regions in (app, va) order so the sequence is deterministic. Apps
// boot once the sweep completes. Regions can only exist if a controller
// allocated them, so lastMemctrl is set whenever there is work to do; if
// it somehow is not, booting and letting allocs fail beats stalling.
func (n *NIC) reclaim(regions []msg.OwnedRegion, i int) {
	if n.lastMemctrl == 0 {
		i = len(regions)
	}
	if i >= len(regions) {
		n.bootApps()
		return
	}
	reg := regions[i]
	// owners record extents in 4 KiB pages for both flavors, matching the
	// controller's rounded byte count exactly.
	bytes := uint64(reg.Pages) * physmem.PageSize
	k := allocKey{reg.App, reg.VA}
	r := n.newRetrier(DefaultRetryPolicy, fmt.Sprintf("rejoin free of va %#x", reg.VA), n.lastMemctrl, func() uint32 {
		return n.dev.Send(n.lastMemctrl, &msg.FreeReq{App: reg.App, VA: reg.VA, Bytes: bytes})
	})
	next := func() { n.reclaim(regions, i+1) }
	r.onFail = func(error) {
		delete(n.pendingFree, k)
		next()
	}
	n.pendingFree[k] = func(*msg.FreeResp) {
		r.stop()
		next()
	}
	r.start()
}

// onStateResp routes a bus state answer to the rejoin in progress.
func (n *NIC) onStateResp(env msg.Envelope) {
	m := env.Msg.(*msg.StateResp)
	if cb, ok := n.pendingState[m.Nonce]; ok {
		delete(n.pendingState, m.Nonce)
		cb(m)
	}
}
