// Package smartnic implements the smart NIC of §3: the programmable
// device that hosts offloaded applications (the KVS), exposes them to the
// network, and consumes services from other devices (the smart SSD's
// file service) through the system bus and shared-memory virtqueues.
//
// The package also provides the Runtime — §4's "library that encapsulates
// the functionality of the system bus, and provide[s] functions for
// service discovery, resource allocation, etc." — which executes the
// paper's Figure-2 initialization sequence on behalf of an application.
package smartnic

import (
	"fmt"
	"sort"

	"nocpu/internal/bus"
	"nocpu/internal/device"
	"nocpu/internal/interconnect"
	"nocpu/internal/metrics"
	"nocpu/internal/msg"
	"nocpu/internal/sim"
	"nocpu/internal/tenant"
	"nocpu/internal/trace"
)

// App is an application offloaded to the NIC. The NIC calls Boot once the
// device is alive; the app uses the Runtime for everything.
type App interface {
	// AppID is the application's identity == its PASID (§2.2).
	AppID() msg.AppID
	// Boot starts the app; it typically runs the Figure-2 sequence.
	Boot(rt *Runtime)
	// ServeNetwork handles one network request; reply sends the response
	// back to the client.
	ServeNetwork(payload []byte, reply func([]byte))
	// PeerFailed tells the app a device it may depend on died (§4).
	PeerFailed(dev msg.DeviceID)
}

// Shedder is an optional App extension for overload. When the NIC's rx
// queue is at its bound it asks the app for a cheap shed response and
// replies with that instead of enqueueing the request, so clients learn
// they were refused rather than timing out. Apps that do not implement
// Shedder get wire-drop semantics instead (the packet vanishes).
type Shedder interface {
	// ShedResponse returns the protocol-level "refused under load"
	// reply for one shed request.
	ShedResponse() []byte
}

// TenantApp is an optional App extension for multi-tenancy. Requests
// that enter through DeliverFrom carry an edge-authenticated tenant;
// apps that implement TenantApp receive that stamp and must treat it as
// authoritative over anything the payload claims. Apps without it get
// plain ServeNetwork (the stamp is dropped at the edge).
type TenantApp interface {
	// ServeTenantNetwork handles one network request from tenant tn
	// (0 = untenanted).
	ServeTenantNetwork(tn uint16, payload []byte, reply func([]byte))
}

// Config assembles a NIC.
type Config struct {
	Device device.Config
	// RxCost/TxCost model packet processing per network request/response.
	RxCost sim.Duration
	TxCost sim.Duration
	// RxQueueBound caps the rx pipeline's backlog (requests admitted but
	// not yet through rx processing). At the bound, Deliver sheds: the
	// request is answered with the app's Shedder response (or dropped if
	// the app has none) without consuming rx service time. 0 = unbounded,
	// the pre-flow-control behavior.
	RxQueueBound int
	// Tenancy partitions the rx pipeline per tenant: a tenant whose
	// registry Budget.RxBound is nonzero may hold at most that many rx
	// slots, so its flood sheds at the edge before it can crowd anyone
	// else out of RxQueueBound. nil = off, the legacy behavior.
	Tenancy *tenant.Registry
}

// DefaultRxCost and DefaultTxCost model a programmable pipeline.
const (
	DefaultRxCost = 600 * sim.Nanosecond
	DefaultTxCost = 300 * sim.Nanosecond
)

// NIC is the smart NIC device.
type NIC struct {
	dev *device.Device
	cfg Config

	apps map[msg.AppID]App
	rts  map[msg.AppID]*Runtime
	rx   *sim.Server
	tx   *sim.Server

	// pending continuations for control-plane responses, keyed by each
	// message's natural correlator.
	pendingDiscover map[uint32]func(msg.DeviceID, *msg.DiscoverResp)
	pendingOpen     map[openKey]func(*msg.OpenResp)
	pendingAlloc    map[allocKey]func(*msg.AllocResp)
	pendingFree     map[allocKey]func(*msg.FreeResp)
	pendingGrant    map[grantKey]func(*msg.GrantResp)
	pendingConnect  map[uint32]func(*msg.ConnectResp)
	pendingClose    map[uint32]func(*msg.CloseResp)
	pendingIO       map[ioKey]func(*msg.FileIOResp)
	pendingState    map[uint32]func(*msg.StateResp)
	nextNonce       uint32
	faultHandlerSet bool

	// lastMemctrl remembers the controller the apps allocate through so
	// rejoin() can free the previous incarnation's surviving regions.
	lastMemctrl msg.DeviceID

	// inflight maps each reliable request's last link-layer seq to its
	// retrier so bus NACKs trigger fast retransmission (retry.go).
	inflight   map[uint32]*retrier
	retryStats RetryStats

	// NetRequests counts network requests served.
	NetRequests uint64
	// RxShed counts requests refused at the rx bound (replied via the
	// app's Shedder response or, absent one, dropped on the wire).
	// TenantRxShed counts the subset refused against a per-tenant rx
	// partition rather than the shared bound.
	RxShed       uint64
	TenantRxShed uint64

	// rxTenant counts rx slots held per tenant against each tenant's
	// registry Budget.RxBound.
	rxTenant map[uint16]int

	// rxG tracks rx backlog depth against RxQueueBound for the overload
	// harness's Q1 audit.
	rxG *metrics.Gauge
}

type openKey struct {
	app     msg.AppID
	service string
}
type allocKey struct {
	app msg.AppID
	va  uint64
}
type grantKey struct {
	app    msg.AppID
	va     uint64
	target msg.DeviceID
}

// New builds the NIC and attaches it.
func New(eng *sim.Engine, b *bus.Bus, fab *interconnect.Fabric, tr *trace.Tracer, cfg Config) (*NIC, error) {
	if cfg.RxCost == 0 {
		cfg.RxCost = DefaultRxCost
	}
	if cfg.TxCost == 0 {
		cfg.TxCost = DefaultTxCost
	}
	cfg.Device.Role = msg.RoleNIC
	d, err := device.New(eng, b, fab, tr, cfg.Device)
	if err != nil {
		return nil, err
	}
	n := &NIC{
		dev:             d,
		cfg:             cfg,
		apps:            make(map[msg.AppID]App),
		rts:             make(map[msg.AppID]*Runtime),
		rx:              sim.NewServer(eng),
		tx:              sim.NewServer(eng),
		pendingDiscover: make(map[uint32]func(msg.DeviceID, *msg.DiscoverResp)),
		pendingOpen:     make(map[openKey]func(*msg.OpenResp)),
		pendingAlloc:    make(map[allocKey]func(*msg.AllocResp)),
		pendingFree:     make(map[allocKey]func(*msg.FreeResp)),
		pendingGrant:    make(map[grantKey]func(*msg.GrantResp)),
		pendingConnect:  make(map[uint32]func(*msg.ConnectResp)),
		pendingClose:    make(map[uint32]func(*msg.CloseResp)),
		pendingIO:       make(map[ioKey]func(*msg.FileIOResp)),
		pendingState:    make(map[uint32]func(*msg.StateResp)),
		inflight:        make(map[uint32]*retrier),
		rxTenant:        make(map[uint16]int),
		rxG:             metrics.NewGauge(cfg.RxQueueBound),
	}
	d.Handle(msg.KindDiscoverResp, n.onDiscoverResp)
	d.Handle(msg.KindOpenResp, n.onOpenResp)
	d.Handle(msg.KindAllocResp, n.onAllocResp)
	d.Handle(msg.KindFreeResp, n.onFreeResp)
	d.Handle(msg.KindGrantResp, n.onGrantResp)
	d.Handle(msg.KindConnectResp, n.onConnectResp)
	d.Handle(msg.KindCloseResp, n.onCloseResp)
	d.Handle(msg.KindFileIOResp, n.onFileIOResp)
	d.Handle(msg.KindErrorNotify, n.onErrorNotify)
	d.Handle(msg.KindNack, n.onNack)
	d.Handle(msg.KindStateResp, n.onStateResp)
	d.OnAlive = n.onAlive
	d.OnReset = n.onReset
	d.OnPeerFailed = n.onPeerFailed
	return n, nil
}

// Device exposes the chassis.
func (n *NIC) Device() *device.Device { return n.dev }

// RetryStats reports reliability-layer counters.
func (n *NIC) RetryStats() RetryStats { return n.retryStats }

// RxGauge exposes rx backlog depth vs RxQueueBound (overload Q1 audit).
func (n *NIC) RxGauge() *metrics.Gauge { return n.rxG }

// Start powers the NIC on.
func (n *NIC) Start() { n.dev.Start() }

// AddApp loads an application image onto the NIC (before or after Start;
// apps added while alive boot immediately).
func (n *NIC) AddApp(a App) *Runtime {
	if _, dup := n.apps[a.AppID()]; dup {
		panic(fmt.Sprintf("smartnic %s: duplicate app %d", n.dev.Name(), a.AppID()))
	}
	rt := newRuntime(n, a.AppID())
	n.apps[a.AppID()] = a
	n.rts[a.AppID()] = rt
	if n.dev.State() == device.StateAlive {
		a.Boot(rt)
	}
	return rt
}

func (n *NIC) onAlive() {
	if n.dev.Incarnation() > 0 {
		// Coming back from a crash: reconcile with the bus before the apps
		// boot (recovery.go).
		n.rejoin()
		return
	}
	n.bootApps()
}

func (n *NIC) onPeerFailed(dev msg.DeviceID) {
	for _, id := range n.sortedAppIDs() {
		n.apps[id].PeerFailed(dev)
	}
}

// sortedAppIDs iterates apps in id order: Boot and PeerFailed schedule
// simulator events, so delivery order must not depend on map iteration.
func (n *NIC) sortedAppIDs() []msg.AppID {
	ids := make([]msg.AppID, 0, len(n.apps))
	for id := range n.apps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Deliver injects a network request addressed to an app (called by the
// netsim workload generators — this is the NIC's MAC/PHY edge). reply is
// invoked with the response after tx processing.
func (n *NIC) Deliver(app msg.AppID, payload []byte, reply func([]byte)) {
	n.deliver(0, false, app, payload, reply)
}

// DeliverFrom injects a network request whose origin the edge has
// authenticated as tenant tn (think: the port or VLAN it arrived on).
// The stamp is passed to TenantApp apps — overriding any claim inside
// the payload — and the request is charged against the tenant's rx
// partition before the shared RxQueueBound.
func (n *NIC) DeliverFrom(tn uint16, app msg.AppID, payload []byte, reply func([]byte)) {
	n.deliver(tn, true, app, payload, reply)
}

func (n *NIC) deliver(tn uint16, stamped bool, app msg.AppID, payload []byte, reply func([]byte)) {
	a, ok := n.apps[app]
	if !ok || n.dev.State() != device.StateAlive {
		// No such app or dead NIC: the packet vanishes, as on a real wire.
		return
	}
	shed := func(tenantShed bool) {
		// Shed at the edge. A Shedder app still answers (through tx, so
		// the refusal costs what any response costs); others see a wire
		// drop, as on a real NIC whose ring overflows. Either way the
		// request never consumes rx service.
		n.RxShed++
		if tenantShed {
			n.TenantRxShed++
		}
		if s, ok := a.(Shedder); ok {
			resp := s.ShedResponse()
			n.tx.Submit(n.cfg.TxCost, func() { reply(resp) })
		}
	}
	// Per-tenant rx partition first: a tenant at its own bound sheds
	// regardless of shared headroom, and is attributed in the registry.
	if reg := n.cfg.Tenancy; reg != nil && tn != 0 {
		if b := reg.Budget(tenant.ID(tn)); b.RxBound > 0 && n.rxTenant[tn] >= int(b.RxBound) {
			reg.Record(n.dev.Engine().Now(), tenant.ID(tn), 0, tenant.DenyBudget,
				fmt.Sprintf("t%d over rx partition %d", tn, b.RxBound))
			shed(true)
			return
		}
	}
	if bound := n.cfg.RxQueueBound; bound > 0 && n.rx.Pending() >= bound {
		// Rx pipeline is full: shed at the shared bound.
		shed(false)
		return
	}
	n.rxTenant[tn]++
	n.rx.Submit(n.cfg.RxCost, func() {
		n.rxTenant[tn]--
		n.NetRequests++
		serve := a.ServeNetwork
		if ta, isTA := a.(TenantApp); isTA && stamped {
			serve = func(p []byte, r func([]byte)) { ta.ServeTenantNetwork(tn, p, r) }
		}
		serve(payload, func(resp []byte) {
			n.tx.Submit(n.cfg.TxCost, func() { reply(resp) })
		})
	})
	n.rxG.Set(n.rx.Pending())
}

// Control-plane response routing.

func (n *NIC) onDiscoverResp(env msg.Envelope) {
	m := env.Msg.(*msg.DiscoverResp)
	if cb, ok := n.pendingDiscover[m.Nonce]; ok {
		// First responder wins; later responses for the same nonce are
		// dropped (the paper leaves multi-provider arbitration open).
		delete(n.pendingDiscover, m.Nonce)
		cb(env.Src, m)
	}
}

func (n *NIC) onOpenResp(env msg.Envelope) {
	m := env.Msg.(*msg.OpenResp)
	k := openKey{m.App, m.Service}
	if cb, ok := n.pendingOpen[k]; ok {
		delete(n.pendingOpen, k)
		cb(m)
	}
}

func (n *NIC) onAllocResp(env msg.Envelope) {
	m := env.Msg.(*msg.AllocResp)
	k := allocKey{m.App, m.VA}
	if cb, ok := n.pendingAlloc[k]; ok {
		delete(n.pendingAlloc, k)
		cb(m)
	}
}

func (n *NIC) onFreeResp(env msg.Envelope) {
	m := env.Msg.(*msg.FreeResp)
	k := allocKey{m.App, m.VA}
	if cb, ok := n.pendingFree[k]; ok {
		delete(n.pendingFree, k)
		cb(m)
	}
}

func (n *NIC) onGrantResp(env msg.Envelope) {
	m := env.Msg.(*msg.GrantResp)
	k := grantKey{m.App, m.VA, m.Target}
	if cb, ok := n.pendingGrant[k]; ok {
		delete(n.pendingGrant, k)
		cb(m)
	}
}

func (n *NIC) onConnectResp(env msg.Envelope) {
	m := env.Msg.(*msg.ConnectResp)
	if cb, ok := n.pendingConnect[m.ConnID]; ok {
		delete(n.pendingConnect, m.ConnID)
		cb(m)
	}
}

func (n *NIC) onCloseResp(env msg.Envelope) {
	m := env.Msg.(*msg.CloseResp)
	if cb, ok := n.pendingClose[m.ConnID]; ok {
		delete(n.pendingClose, m.ConnID)
		cb(m)
	}
}

func (n *NIC) onFileIOResp(env msg.Envelope) {
	m := env.Msg.(*msg.FileIOResp)
	k := ioKey{m.App, m.Handle, m.Seq}
	if cb, ok := n.pendingIO[k]; ok {
		delete(n.pendingIO, k)
		cb(m)
	}
}

func (n *NIC) onErrorNotify(env msg.Envelope) {
	m := env.Msg.(*msg.ErrorNotify)
	if rt, ok := n.rts[m.App]; ok && rt.OnResourceError != nil {
		rt.OnResourceError(m)
	}
}
