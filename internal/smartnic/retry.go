package smartnic

import (
	"fmt"

	"nocpu/internal/msg"
	"nocpu/internal/sim"
)

// This file is the runtime's reliability layer (§4 "Error handling"): the
// system bus may drop, delay, duplicate or NACK control messages, so every
// Figure-2 request carries a per-request timeout with bounded exponential
// backoff and an idempotent retransmission. Providers tolerate replays
// (memctrl re-sends recorded allocations, the SSD re-quotes an unconnected
// instance, the bus re-acks grants), so a retransmission is always safe.
//
// Determinism: each attempt arms one timer that the response callback
// stops. In a fault-free run no retry timer ever fires, and stopped timers
// leave the event schedule bit-identical, so the layer is free when
// injection is disabled.

// RetryPolicy bounds one request's retransmission budget.
type RetryPolicy struct {
	// Timeout is the first attempt's response timeout; it doubles per
	// retry up to MaxTimeout.
	Timeout    sim.Duration
	MaxTimeout sim.Duration
	// MaxRetries is the retransmission budget after the first send.
	MaxRetries int
}

// DefaultRetryPolicy suits the emulated bus: a control round trip is tens
// of microseconds, so 3ms only fires when a message was actually lost.
var DefaultRetryPolicy = RetryPolicy{
	Timeout:    3 * sim.Millisecond,
	MaxTimeout: 24 * sim.Millisecond,
	MaxRetries: 5,
}

// timeoutFor is the response timeout for 0-based attempt i.
func (p RetryPolicy) timeoutFor(attempt int) sim.Duration {
	d := p.Timeout << uint(attempt)
	if p.MaxTimeout > 0 && d > p.MaxTimeout {
		d = p.MaxTimeout
	}
	return d
}

// withBase returns the policy with its initial timeout replaced.
func (p RetryPolicy) withBase(base sim.Duration) RetryPolicy {
	if base > 0 {
		p.Timeout = base
	}
	return p
}

// TimeoutError is the typed failure after the retry budget is spent.
type TimeoutError struct {
	Op       string
	Dst      msg.DeviceID
	Attempts int
	Elapsed  sim.Duration
	LastNack string // bus refusal accompanying the final attempt, if any
}

func (e *TimeoutError) Error() string {
	s := fmt.Sprintf("smartnic: %s timed out after %d attempts (%v)", e.Op, e.Attempts, e.Elapsed)
	if e.LastNack != "" {
		s += " (last nack: " + e.LastNack + ")"
	}
	return s
}

// RetryStats counts reliability-layer activity (reported by E14).
type RetryStats struct {
	Requests  uint64 // reliable requests issued
	Retries   uint64 // retransmissions (timeout- or NACK-triggered)
	NackFast  uint64 // of those, NACK-triggered fast retransmissions
	Exhausted uint64 // requests that failed after the full budget
}

// retrier drives one reliable request: send, wait, retransmit, give up.
type retrier struct {
	n    *NIC
	pol  RetryPolicy
	op   string
	dst  msg.DeviceID
	send func() uint32 // transmit one attempt; returns the port seq
	// onFail must unregister the pending-response callback, then surface
	// the error to the caller.
	onFail func(error)

	timer    *sim.Timer
	attempts int
	started  sim.Time
	seq      uint32 // last attempt's link-layer seq, for NACK correlation
	lastNack string
	done     bool
}

func (n *NIC) newRetrier(pol RetryPolicy, op string, dst msg.DeviceID, send func() uint32) *retrier {
	return &retrier{n: n, pol: pol, op: op, dst: dst, send: send}
}

func (r *retrier) start() {
	r.started = r.n.dev.Engine().Now()
	r.n.retryStats.Requests++
	r.attempt()
}

func (r *retrier) attempt() {
	if r.seq != 0 {
		delete(r.n.inflight, r.seq)
	}
	r.seq = r.send()
	r.n.inflight[r.seq] = r
	wait := r.pol.timeoutFor(r.attempts)
	r.attempts++
	r.timer = r.n.dev.Engine().After(wait, r.onTimeout)
}

func (r *retrier) onTimeout() {
	if r.done {
		return
	}
	if r.attempts > r.pol.MaxRetries {
		r.fail()
		return
	}
	r.n.retryStats.Retries++
	r.attempt()
}

// nacked is the fast path: the bus told us the attempt was refused, so
// retransmit after a short delay instead of waiting out the full timeout
// (the NACK reason — e.g. a dead destination — may clear after a reset).
func (r *retrier) nacked(m *msg.Nack) {
	if r.done {
		return
	}
	r.lastNack = fmt.Sprintf("%v: %s", m.Code, m.Reason)
	if r.timer != nil {
		r.timer.Stop()
	}
	if r.attempts > r.pol.MaxRetries {
		r.fail()
		return
	}
	delay := r.pol.Timeout / 4
	if delay <= 0 {
		delay = sim.Millisecond
	}
	r.n.retryStats.Retries++
	r.n.retryStats.NackFast++
	r.timer = r.n.dev.Engine().After(delay, func() {
		if r.done {
			return
		}
		r.attempt()
	})
}

// stop ends the request successfully (a response arrived).
func (r *retrier) stop() {
	if r.done {
		return
	}
	r.done = true
	if r.timer != nil {
		r.timer.Stop()
	}
	delete(r.n.inflight, r.seq)
}

func (r *retrier) fail() {
	r.done = true
	delete(r.n.inflight, r.seq)
	r.n.retryStats.Exhausted++
	r.onFail(&TimeoutError{
		Op:       r.op,
		Dst:      r.dst,
		Attempts: r.attempts,
		Elapsed:  sim.Duration(r.n.dev.Engine().Now() - r.started),
		LastNack: r.lastNack,
	})
}

// onNack routes a bus refusal to the request it answers.
func (n *NIC) onNack(env msg.Envelope) {
	m := env.Msg.(*msg.Nack)
	if r, ok := n.inflight[m.Seq]; ok {
		r.nacked(m)
	}
}
