package smartnic

import (
	"testing"

	"nocpu/internal/tenant"
)

// tenantEcho is a TenantApp that records the authenticated tenant of
// every request it serves.
type tenantEcho struct {
	testApp
	seen []uint16
}

func (a *tenantEcho) ServeTenantNetwork(tn uint16, p []byte, reply func([]byte)) {
	a.seen = append(a.seen, tn)
	reply(p)
}

// DeliverFrom hands the edge-authenticated tenant to TenantApp apps;
// plain Deliver keeps the legacy unstamped path.
func TestDeliverFromStampsTenant(t *testing.T) {
	m := newMachine(t)
	app := &tenantEcho{testApp: testApp{id: 7}}
	m.nic.AddApp(app)
	m.eng.Run()

	replies := 0
	m.nic.DeliverFrom(3, 7, []byte("a"), func([]byte) { replies++ })
	m.nic.DeliverFrom(0, 7, []byte("b"), func([]byte) { replies++ })
	m.nic.Deliver(7, []byte("c"), func([]byte) { replies++ })
	m.eng.Run()

	if replies != 3 {
		t.Fatalf("replies = %d, want 3", replies)
	}
	// Deliver (unstamped) must not reach ServeTenantNetwork.
	if len(app.seen) != 2 || app.seen[0] != 3 || app.seen[1] != 0 {
		t.Errorf("stamped tenants = %v, want [3 0]", app.seen)
	}
}

// A tenant at its rx partition sheds at the edge — attributed in the
// registry — while other tenants' traffic is untouched. Blast radius
// stays with the flooder even when the shared bound has headroom.
func TestPerTenantRxPartition(t *testing.T) {
	m := newMachine(t)
	reg := tenant.NewRegistry()
	reg.SetBudget(2, tenant.Budget{RxBound: 1})
	m.nic.cfg.Tenancy = reg
	app := &tenantEcho{testApp: testApp{id: 7}}
	m.nic.AddApp(app)
	m.eng.Run()

	// 5 simultaneous frames from tenant 2 against an rx partition of 1:
	// one holds the slot, four shed (wire-drop: the app is no Shedder).
	replies := 0
	for i := 0; i < 5; i++ {
		m.nic.DeliverFrom(2, 7, []byte("flood"), func([]byte) { replies++ })
	}
	// Tenant 1 has no partition: all of its frames pass.
	for i := 0; i < 5; i++ {
		m.nic.DeliverFrom(1, 7, []byte("fine"), func([]byte) { replies++ })
	}
	m.eng.Run()

	if m.nic.TenantRxShed != 4 {
		t.Errorf("TenantRxShed = %d, want 4", m.nic.TenantRxShed)
	}
	if replies != 6 {
		t.Errorf("replies = %d, want 6 (1 flood + 5 fine)", replies)
	}
	dens := reg.DenialsBy(2)
	if len(dens) != 4 {
		t.Fatalf("registry denials by t2 = %d, want 4", len(dens))
	}
	for _, d := range dens {
		if d.Class != tenant.DenyBudget {
			t.Errorf("denial %+v, want class budget", d)
		}
	}
	if len(reg.DenialsBy(1)) != 0 {
		t.Error("well-behaved tenant accrued denials")
	}
}
