package smartnic

import (
	"bytes"
	"testing"

	"nocpu/internal/iommu"
	"nocpu/internal/msg"
	"nocpu/internal/physmem"
)

// demandApp reserves a lazy region at boot and exposes its runtime.
type demandApp struct {
	id    msg.AppID
	bytes uint64
	chunk int
	rt    *Runtime
	va    uint64
}

func (a *demandApp) AppID() msg.AppID { return a.id }
func (a *demandApp) Boot(rt *Runtime) {
	a.rt = rt
	a.va = rt.ReserveLazy(mcID, a.bytes, a.chunk)
}
func (a *demandApp) ServeNetwork(p []byte, reply func([]byte)) { reply(p) }
func (a *demandApp) PeerFailed(msg.DeviceID)                   {}

func TestDemandPagingFirstTouch(t *testing.T) {
	m := newMachine(t)
	app := &demandApp{id: 1, bytes: 16 * physmem.PageSize, chunk: 1}
	m.nic.AddApp(app)
	m.eng.Run()
	if app.va == 0 {
		t.Fatal("no lazy region")
	}
	// No physical memory consumed yet.
	if live := m.mc.Stats().BytesLive; live != 0 {
		t.Fatalf("lazy reserve allocated %d bytes", live)
	}

	// First DMA write faults, demand-allocates, retries, succeeds.
	port := m.nic.Device().DMA()
	payload := []byte("demand paged!")
	var werr error
	done := false
	port.Write(1, iommu.VirtAddr(app.va+5000), payload, func(err error) { werr, done = err, true })
	m.eng.Run()
	if !done || werr != nil {
		t.Fatalf("first-touch write: done=%v err=%v", done, werr)
	}
	if app.rt.LazyChunksAllocated() != 1 {
		t.Fatalf("chunks allocated = %d", app.rt.LazyChunksAllocated())
	}
	// Exactly one page is live.
	if live := m.mc.Stats().BytesLive; live != physmem.PageSize {
		t.Fatalf("live bytes = %d, want one page", live)
	}
	// Read back through the same address space.
	var got []byte
	port.Read(1, iommu.VirtAddr(app.va+5000), len(payload), func(b []byte, err error) { got = b })
	m.eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatalf("read back %q", got)
	}
	// Second touch of the same page: no new allocation.
	port.Write(1, iommu.VirtAddr(app.va+5100), []byte{1}, func(error) {})
	m.eng.Run()
	if app.rt.LazyChunksAllocated() != 1 {
		t.Fatal("re-touch allocated again")
	}
}

func TestDemandPagingChunkGranularity(t *testing.T) {
	m := newMachine(t)
	app := &demandApp{id: 1, bytes: 64 * physmem.PageSize, chunk: 4}
	m.nic.AddApp(app)
	m.eng.Run()
	port := m.nic.Device().DMA()
	// Touch one byte: a 4-page chunk materializes.
	port.Write(1, iommu.VirtAddr(app.va), []byte{1}, func(err error) {
		if err != nil {
			t.Errorf("write: %v", err)
		}
	})
	m.eng.Run()
	if live := m.mc.Stats().BytesLive; live != 4*physmem.PageSize {
		t.Fatalf("live = %d, want 4 pages", live)
	}
	// A write inside the same chunk (page 3) needs no fault; page 4 does.
	port.Write(1, iommu.VirtAddr(app.va+3*physmem.PageSize), []byte{2}, func(error) {})
	m.eng.Run()
	if app.rt.LazyChunksAllocated() != 1 {
		t.Fatal("same-chunk touch refaulted")
	}
	port.Write(1, iommu.VirtAddr(app.va+4*physmem.PageSize), []byte{3}, func(error) {})
	m.eng.Run()
	if app.rt.LazyChunksAllocated() != 2 {
		t.Fatalf("chunks = %d, want 2", app.rt.LazyChunksAllocated())
	}
}

func TestDemandPagingCrossChunkDMA(t *testing.T) {
	// One DMA spanning two unbacked chunks: the port faults, the handler
	// allocates the first chunk, the retry faults on the second, and so
	// on until the whole range is backed.
	m := newMachine(t)
	app := &demandApp{id: 1, bytes: 16 * physmem.PageSize, chunk: 1}
	m.nic.AddApp(app)
	m.eng.Run()
	port := m.nic.Device().DMA()
	payload := make([]byte, 3*physmem.PageSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	var werr error
	done := false
	port.Write(1, iommu.VirtAddr(app.va+100), payload, func(err error) { werr, done = err, true })
	m.eng.Run()
	if !done || werr != nil {
		t.Fatalf("cross-chunk write: done=%v err=%v", done, werr)
	}
	if app.rt.LazyChunksAllocated() != 4 { // pages 0..3 touched (offset 100 + 3 pages)
		t.Fatalf("chunks = %d, want 4", app.rt.LazyChunksAllocated())
	}
	var got []byte
	port.Read(1, iommu.VirtAddr(app.va+100), len(payload), func(b []byte, err error) { got = b })
	m.eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("cross-chunk data corrupt")
	}
}

func TestDemandPagingConcurrentFaultsCoalesce(t *testing.T) {
	m := newMachine(t)
	app := &demandApp{id: 1, bytes: 8 * physmem.PageSize, chunk: 1}
	m.nic.AddApp(app)
	m.eng.Run()
	port := m.nic.Device().DMA()
	done := 0
	for i := 0; i < 6; i++ {
		off := uint64(100 * (i + 1))
		port.Write(1, iommu.VirtAddr(app.va+off), []byte{byte(i)}, func(err error) {
			if err != nil {
				t.Errorf("concurrent write: %v", err)
			}
			done++
		})
	}
	m.eng.Run()
	if done != 6 {
		t.Fatalf("done = %d", done)
	}
	// All six writes hit the same page: exactly one demand allocation.
	if app.rt.LazyChunksAllocated() != 1 {
		t.Fatalf("chunks = %d, want 1 (coalesced)", app.rt.LazyChunksAllocated())
	}
}

func TestFaultOutsideLazyRegionStillFails(t *testing.T) {
	m := newMachine(t)
	app := &demandApp{id: 1, bytes: 4 * physmem.PageSize, chunk: 1}
	m.nic.AddApp(app)
	m.eng.Run()
	port := m.nic.Device().DMA()
	var werr error
	// Far outside the lazy region (and any mapping).
	port.Write(1, iommu.VirtAddr(0x7000_0000), []byte{1}, func(err error) { werr = err })
	m.eng.Run()
	if werr == nil {
		t.Fatal("out-of-region fault was silently resolved")
	}
	var fault *iommu.Fault
	if !errorsAs(werr, &fault) {
		t.Fatalf("err = %v", werr)
	}
}

// errorsAs avoids importing errors for one call in this file.
func errorsAs(err error, target **iommu.Fault) bool {
	for err != nil {
		if f, ok := err.(*iommu.Fault); ok {
			*target = f
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestPermissionFaultNotDemandPaged(t *testing.T) {
	// A permission fault (not not-present) must never reach the demand
	// handler: revoke-style errors stay errors.
	m := newMachine(t)
	m.createFile(t, "kv.dat", []byte("x"))
	app := &demandApp{id: 1, bytes: 4 * physmem.PageSize, chunk: 1}
	m.nic.AddApp(app)
	m.eng.Run()
	// Map a read-only page by hand via the bus-equivalent direct map.
	mem := m.fab.Memory()
	f, _ := mem.AllocFrames(1)
	mmu := m.nic.Device().IOMMU()
	if !mmu.HasContext(1) {
		if err := mmu.CreateContext(1); err != nil {
			t.Fatal(err)
		}
	}
	if err := mmu.Map(1, 0x6000_0000, f, iommu.AccessRead); err != nil {
		t.Fatal(err)
	}
	var werr error
	m.nic.Device().DMA().Write(1, 0x6000_0000, []byte{1}, func(err error) { werr = err })
	m.eng.Run()
	var fault *iommu.Fault
	if !errorsAs(werr, &fault) || fault.Reason != iommu.FaultPermission {
		t.Fatalf("err = %v", werr)
	}
}
