package smartnic

import (
	"fmt"

	"nocpu/internal/iommu"
	"nocpu/internal/msg"
	"nocpu/internal/smartssd"
	"nocpu/internal/virtio"
)

// This file is the centralized-baseline counterpart of runtime.go: the
// same application-facing API, but every control operation is a syscall
// to the CPU kernel (centralos) instead of bus discovery + controller
// authorization. It exists so experiments can run the identical KVS
// application on both machines and compare.

// FileAPI abstracts a file connection so applications are agnostic to
// whether the data path is peer-to-peer (FileClient) or kernel-mediated
// (mediatedFile).
type FileAPI interface {
	Read(off uint64, n int, cb func([]byte, error))
	Write(off uint64, data []byte, cb func(error))
	Append(data []byte, cb func(newSize uint64, err error))
	Stat(cb func(size uint64, err error))
	Truncate(cb func(error))
	MaxIO() int
	// Provider is the device serving the file (for failure tracking).
	Provider() msg.DeviceID
	// Fail aborts the connection, erroring out all in-flight requests —
	// called when the owner learns the provider died.
	Fail(err error)
}

// Fail implements FileAPI for the mediated client: the kernel died, the
// handle it issued is gone, and every subsequent syscall on it must fail
// fast so the owner reopens through the rebooted kernel. In-flight
// retriers drain on their own — the revived kernel answers an unknown
// handle with StatusBadRequest.
func (m *mediatedFile) Fail(err error) { m.dead = true }

// Provider implements FileAPI for the peer-to-peer client.
func (fc *FileClient) Provider() msg.DeviceID { return fc.Conn.Provider }

// Fail implements FileAPI: abort the virtqueue, failing pending requests.
func (fc *FileClient) Fail(err error) { fc.Conn.Queue.Abort(err) }

// OpenFileCentralDirect performs an Omni-X-style open: the kernel
// handles discovery (its registry), memory allocation and IOMMU
// programming, but the resulting virtqueue is app-to-SSD — the data
// plane stays peer-to-peer.
func (rt *Runtime) OpenFileCentralDirect(kernel msg.DeviceID, name string, token uint64, entries uint16, cb func(FileAPI, error)) {
	n := rt.nic
	service := "file:" + name
	fail := func(stage string, err error) {
		cb(nil, fmt.Errorf("smartnic: central open %q: %s: %w", name, stage, err))
	}
	ok := openKey{rt.app, service}
	ro := n.newRetrier(rt.Retry, fmt.Sprintf("central open of %q", service), kernel, func() uint32 {
		return n.dev.Send(kernel, &msg.OpenReq{Service: service, App: rt.app, Token: token})
	})
	ro.onFail = func(err error) {
		delete(n.pendingOpen, ok)
		fail("open", err)
	}
	n.pendingOpen[ok] = func(or *msg.OpenResp) {
		ro.stop()
		if !or.OK {
			fail("open", fmt.Errorf("%s", or.Reason))
			return
		}
		cellSize := cellSizeFromQuote(or.SharedBytes, entries)
		layout := virtio.NewLayout(iommu.VirtAddr(or.Base), entries, cellSize)
		drv, derr := virtio.NewDriver(n.dev.DMA(), iommu.PASID(rt.app), layout, 0)
		if derr != nil {
			fail("driver", derr)
			return
		}
		rc := n.newRetrier(rt.Retry, fmt.Sprintf("central connect of conn %d", or.ConnID), kernel, func() uint32 {
			return n.dev.Send(kernel, &msg.ConnectReq{
				Service:      service,
				ConnID:       or.ConnID,
				App:          rt.app,
				RingVA:       uint64(layout.Base),
				RingEntries:  entries,
				DataVA:       uint64(layout.DataVA),
				DataBytes:    uint64(layout.DataBytes()),
				RespDoorbell: uint64(drv.RespBell),
			})
		})
		rc.onFail = func(err error) {
			delete(n.pendingConnect, or.ConnID)
			fail("connect", err)
		}
		n.pendingConnect[or.ConnID] = func(cr *msg.ConnectResp) {
			rc.stop()
			if !cr.OK {
				fail("connect", fmt.Errorf("%s", cr.Reason))
				return
			}
			var bell uint64
			if _, err := fmt.Sscanf(cr.Reason, "reqbell=%d", &bell); err != nil {
				fail("connect", fmt.Errorf("no request doorbell"))
				return
			}
			drv.SetRequestBell(bell)
			cb(&FileClient{Conn: &Connection{
				rt: rt, Provider: kernel, Service: service,
				ConnID: or.ConnID, VA: or.Base, Bytes: or.SharedBytes, Queue: drv,
			}}, nil)
		}
		// The connect syscall also goes through the kernel.
		rc.start()
	}
	ro.start()
}

// OpenFileMediated performs a traditional-stack open: the kernel owns the
// device queue, and every subsequent I/O is a FileIOReq syscall with the
// kernel copying data between the app and its page cache.
func (rt *Runtime) OpenFileMediated(kernel msg.DeviceID, name string, token uint64, cb func(FileAPI, error)) {
	n := rt.nic
	service := "mediated:" + name
	ok := openKey{rt.app, service}
	r := n.newRetrier(rt.Retry, fmt.Sprintf("mediated open of %q", service), kernel, func() uint32 {
		return n.dev.Send(kernel, &msg.OpenReq{Service: service, App: rt.app, Token: token})
	})
	r.onFail = func(err error) {
		delete(n.pendingOpen, ok)
		cb(nil, err)
	}
	n.pendingOpen[ok] = func(or *msg.OpenResp) {
		r.stop()
		if !or.OK {
			cb(nil, fmt.Errorf("smartnic: mediated open %q: %s", name, or.Reason))
			return
		}
		cb(&mediatedFile{rt: rt, kernel: kernel, handle: or.ConnID, maxIO: int(or.SharedBytes)}, nil)
	}
	r.start()
}

// ioKey correlates mediated I/O completions.
type ioKey struct {
	app    msg.AppID
	handle uint32
	seq    uint32
}

// mediatedFile is the syscall-based FileAPI.
type mediatedFile struct {
	rt     *Runtime
	kernel msg.DeviceID
	handle uint32
	maxIO  int
	seq    uint32
	dead   bool
}

func (m *mediatedFile) Provider() msg.DeviceID { return m.kernel }
func (m *mediatedFile) MaxIO() int             { return m.maxIO }

func (m *mediatedFile) call(op smartssd.FileOp, off uint64, n uint32, data []byte, cb func(*msg.FileIOResp, error)) {
	if m.dead {
		cb(nil, fmt.Errorf("smartnic: mediated handle %d is dead", m.handle))
		return
	}
	nic := m.rt.nic
	m.seq++
	seq := m.seq
	k := ioKey{m.rt.app, m.handle, seq}
	// Safe to retransmit: the kernel deduplicates FileIOReq by (handle,
	// seq) and replays the recorded response, so a lost FileIOResp does
	// not re-apply a write.
	r := nic.newRetrier(m.rt.Retry, fmt.Sprintf("mediated %v (seq %d)", op, seq), m.kernel, func() uint32 {
		return nic.dev.Send(m.kernel, &msg.FileIOReq{
			App: m.rt.app, Handle: m.handle, Seq: seq,
			Op: uint8(op), Off: off, Len: n, Data: data,
		})
	})
	r.onFail = func(err error) {
		delete(nic.pendingIO, k)
		cb(nil, err)
	}
	nic.pendingIO[k] = func(resp *msg.FileIOResp) {
		r.stop()
		if smartssd.Status(resp.Status) != smartssd.StatusOK {
			cb(nil, fmt.Errorf("smartnic: mediated %v failed with status %d", op, resp.Status))
			return
		}
		cb(resp, nil)
	}
	r.start()
}

func (m *mediatedFile) Read(off uint64, n int, cb func([]byte, error)) {
	m.call(smartssd.OpRead, off, uint32(n), nil, func(r *msg.FileIOResp, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		cb(r.Data, nil)
	})
}

func (m *mediatedFile) Write(off uint64, data []byte, cb func(error)) {
	m.call(smartssd.OpWrite, off, 0, data, func(r *msg.FileIOResp, err error) { cb(err) })
}

func (m *mediatedFile) Append(data []byte, cb func(uint64, error)) {
	m.call(smartssd.OpAppend, 0, 0, data, func(r *msg.FileIOResp, err error) {
		if err != nil {
			cb(0, err)
			return
		}
		cb(r.Size, nil)
	})
}

func (m *mediatedFile) Stat(cb func(uint64, error)) {
	m.call(smartssd.OpStat, 0, 0, nil, func(r *msg.FileIOResp, err error) {
		if err != nil {
			cb(0, err)
			return
		}
		cb(r.Size, nil)
	})
}

func (m *mediatedFile) Truncate(cb func(error)) {
	m.call(smartssd.OpTruncate, 0, 0, nil, func(r *msg.FileIOResp, err error) { cb(err) })
}
