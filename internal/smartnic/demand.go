package smartnic

import (
	"fmt"

	"nocpu/internal/iommu"
	"nocpu/internal/msg"
	"nocpu/internal/physmem"
)

// Demand paging (§4 "Error Handling"): "Page faults are caused when the
// translation hardware (MMU or IOMMU) fails to find a mapping ... In a
// system with no CPU, the IOMMU would deliver any faults to its attached
// device. Each device would be responsible to handle its own faults."
//
// The NIC implements exactly that: an application reserves a lazy region
// (virtual address space only), and the first DMA touching each chunk
// faults; the NIC's fault handler resolves it by requesting the chunk
// from the memory controller (the ordinary §3 alloc flow — the bus
// programs the IOMMU) and retrying the DMA. Untouched chunks never
// consume physical memory.

// lazyRegion is a reserved-but-unbacked span of an app's address space.
type lazyRegion struct {
	base  uint64
	bytes uint64
	chunk uint64 // allocation granule in bytes (multiple of page size)
}

// ReserveLazy reserves bytes of address space backed on demand: no
// physical memory is allocated until a DMA touches each chunk.
// chunkPages sets the demand-allocation granule (0 = one page).
func (rt *Runtime) ReserveLazy(memctrl msg.DeviceID, bytes uint64, chunkPages int) uint64 {
	if chunkPages <= 0 {
		chunkPages = 1
	}
	va := rt.reserveVA(bytes)
	rt.lazy = append(rt.lazy, lazyRegion{
		base:  va,
		bytes: bytes,
		chunk: uint64(chunkPages) * physmem.PageSize,
	})
	rt.lazyMemctrl = memctrl
	rt.nic.ensureFaultHandler()
	return va
}

// LazyChunksAllocated reports how many demand allocations this app has
// performed (test/experiment observability).
func (rt *Runtime) LazyChunksAllocated() int { return rt.lazyAllocs }

// resolveFault handles a not-present fault for this app. Exactly one of
// retry/fail is eventually called.
func (rt *Runtime) resolveFault(f *iommu.Fault, retry func(), fail func(error)) {
	addr := uint64(f.Addr)
	var reg *lazyRegion
	for i := range rt.lazy {
		r := &rt.lazy[i]
		if addr >= r.base && addr < r.base+r.bytes {
			reg = r
			break
		}
	}
	if reg == nil {
		fail(f)
		return
	}
	// Chunk-align within the region and clamp to its end.
	off := (addr - reg.base) / reg.chunk * reg.chunk
	va := reg.base + off
	n := reg.chunk
	if off+n > reg.bytes {
		n = reg.bytes - off
	}
	outcome := func(err error) {
		if err != nil {
			fail(fmt.Errorf("smartnic: demand alloc at %#x: %w", va, err))
			return
		}
		retry()
	}
	// Coalesce concurrent faults on the same chunk: one alloc, everyone
	// retries when it lands.
	if waiters, inflight := rt.pendingFaults[va]; inflight {
		rt.pendingFaults[va] = append(waiters, outcome)
		return
	}
	rt.pendingFaults[va] = []func(error){outcome}
	rt.allocAt(rt.lazyMemctrl, va, n, func(err error) {
		waiters := rt.pendingFaults[va]
		delete(rt.pendingFaults, va)
		if err == nil {
			rt.lazyAllocs++
		}
		for _, w := range waiters {
			w(err)
		}
	})
}

// allocAt requests backing for an exact VA (the demand-paging path;
// AllocShared picks its own VA for eager allocations).
func (rt *Runtime) allocAt(memctrl msg.DeviceID, va, bytes uint64, cb func(error)) {
	n := rt.nic
	n.pendingAlloc[allocKey{rt.app, va}] = func(m *msg.AllocResp) {
		if !m.OK {
			cb(fmt.Errorf("alloc denied: %s", m.Reason))
			return
		}
		cb(nil)
	}
	n.dev.Send(memctrl, &msg.AllocReq{App: rt.app, VA: va, Bytes: bytes, Perm: uint8(iommu.PermRW)})
}

// ensureFaultHandler installs the NIC's demand-paging fault handler once.
func (n *NIC) ensureFaultHandler() {
	if n.faultHandlerSet {
		return
	}
	n.faultHandlerSet = true
	n.dev.DMA().SetFaultHandler(func(f *iommu.Fault, retry func(), fail func(error)) {
		if rt, ok := n.rts[msg.AppID(f.PASID)]; ok {
			rt.resolveFault(f, retry, fail)
			return
		}
		fail(f)
	})
}
