package faultinject

import (
	"testing"

	"nocpu/internal/msg"
	"nocpu/internal/sim"
)

func TestNilAndEmptyPlanesPass(t *testing.T) {
	var nilPlane *Plane
	if d := nilPlane.Filter(LayerBus, 0, 1, 2, msg.KindOpenReq); d.Op != Pass {
		t.Fatalf("nil plane intervened: %+v", d)
	}
	if nilPlane.Enabled() {
		t.Fatal("nil plane claims enabled")
	}
	if s := nilPlane.Stats(); s != (Stats{}) {
		t.Fatalf("nil plane has stats: %+v", s)
	}
	empty := New(1)
	if empty.Enabled() {
		t.Fatal("rule-less plane claims enabled")
	}
	if d := empty.Filter(LayerBus, 0, 1, 2, msg.KindOpenReq); d.Op != Pass {
		t.Fatalf("rule-less plane intervened: %+v", d)
	}
	if s := empty.Stats(); s.Inspected != 0 {
		t.Fatal("disabled plane counted traffic")
	}
}

func TestRuleFilters(t *testing.T) {
	mk := func(r Rule) *Plane { return New(1).Add(r) }
	cases := []struct {
		name string
		p    *Plane
		l    Layer
		now  sim.Time
		src  msg.DeviceID
		dst  msg.DeviceID
		kind msg.Kind
		want Op
	}{
		{"any matches", mk(Rule{Op: Drop}), LayerBus, 0, 1, 2, msg.KindOpenReq, Drop},
		{"layer mismatch", mk(Rule{Layer: LayerLink, Op: Drop}), LayerBus, 0, 1, 2, msg.KindOpenReq, Pass},
		{"layer match", mk(Rule{Layer: LayerLink, Op: Drop}), LayerLink, 0, 1, 2, msg.KindInvalid, Drop},
		{"src mismatch", mk(Rule{Src: 7, Op: Drop}), LayerBus, 0, 1, 2, msg.KindOpenReq, Pass},
		{"dst match", mk(Rule{Dst: 2, Op: Delay}), LayerBus, 0, 1, 2, msg.KindOpenReq, Delay},
		{"kind mismatch", mk(Rule{Kind: msg.KindAllocReq, Op: Drop}), LayerBus, 0, 1, 2, msg.KindOpenReq, Pass},
		{"kind ignored on link", mk(Rule{Layer: LayerLink, Kind: msg.KindAllocReq, Op: Drop}), LayerLink, 0, 1, 2, msg.KindInvalid, Drop},
		{"before window", mk(Rule{After: 100, Op: Drop}), LayerBus, 50, 1, 2, msg.KindOpenReq, Pass},
		{"inside window", mk(Rule{After: 100, Until: 200, Op: Drop}), LayerBus, 150, 1, 2, msg.KindOpenReq, Drop},
		{"after window", mk(Rule{After: 100, Until: 200, Op: Drop}), LayerBus, 200, 1, 2, msg.KindOpenReq, Pass},
	}
	for _, c := range cases {
		if d := c.p.Filter(c.l, c.now, c.src, c.dst, c.kind); d.Op != c.want {
			t.Errorf("%s: got %v want %v", c.name, d.Op, c.want)
		}
	}
}

func TestCountBudget(t *testing.T) {
	p := New(1).Add(Rule{Op: Drop, Count: 2})
	got := 0
	for i := 0; i < 5; i++ {
		if p.Filter(LayerBus, 0, 1, 2, msg.KindOpenReq).Op == Drop {
			got++
		}
	}
	if got != 2 {
		t.Fatalf("Count=2 rule applied %d times", got)
	}
	if s := p.Stats(); s.Dropped != 2 || s.Inspected != 5 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestFirstMatchWinsAndConsumes(t *testing.T) {
	// A probabilistic first rule that passes must NOT fall through to the
	// second rule: rule order alone decides who judges a message.
	p := New(1).
		Add(Rule{Op: Drop, Prob: 0.5}).
		Add(Rule{Op: Delay, Delay: 5})
	delays := 0
	for i := 0; i < 200; i++ {
		if p.Filter(LayerBus, 0, 1, 2, msg.KindOpenReq).Op == Delay {
			delays++
		}
	}
	if delays != 0 {
		t.Fatalf("probabilistic miss fell through to later rule %d times", delays)
	}
}

func TestProbabilisticRateIsSeededAndPlausible(t *testing.T) {
	run := func(seed uint64) int {
		p := New(seed).Add(Rule{Op: Drop, Prob: 0.3})
		n := 0
		for i := 0; i < 1000; i++ {
			if p.Filter(LayerBus, 0, 1, 2, msg.KindOpenReq).Op == Drop {
				n++
			}
		}
		return n
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
	if a < 200 || a > 400 {
		t.Fatalf("30%% rule dropped %d/1000", a)
	}
	if c := run(8); c == a {
		t.Fatalf("different seeds agreed exactly (%d) — suspicious", c)
	}
}

func TestDelayCarriesDuration(t *testing.T) {
	p := New(1).Add(Rule{Op: Reorder, Delay: 42})
	d := p.Filter(LayerBus, 0, 1, 2, msg.KindOpenReq)
	if d.Op != Reorder || d.Delay != 42 {
		t.Fatalf("decision %+v", d)
	}
}

func TestSlowCarriesFactor(t *testing.T) {
	p := New(1).Add(Rule{Op: Slow, Factor: 20})
	d := p.Filter(LayerLink, 0, 1, 2, msg.KindInvalid)
	if d.Op != Slow || d.Factor != 20 {
		t.Fatalf("decision %+v", d)
	}
	if s := p.Stats(); s.Slowed != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestPartitionOneWayIsAsymmetric(t *testing.T) {
	p := New(1).PartitionOneWay(1, 2, 100, 200)
	if d := p.Filter(LayerLink, 150, 1, 2, msg.KindInvalid); d.Op != Drop {
		t.Fatalf("cut direction passed: %+v", d)
	}
	if d := p.Filter(LayerLink, 150, 2, 1, msg.KindInvalid); d.Op != Pass {
		t.Fatalf("reverse direction intervened: %+v", d)
	}
	if d := p.Filter(LayerLink, 250, 1, 2, msg.KindInvalid); d.Op != Pass {
		t.Fatalf("cut outlived its window: %+v", d)
	}
}

func TestPartitionGroupsCutBothWaysButNotWithin(t *testing.T) {
	a, b := []msg.DeviceID{1, 2}, []msg.DeviceID{3, 4}
	p := New(1).Partition(a, b, 0, 0)
	for _, s := range a {
		for _, d := range b {
			if dec := p.Filter(LayerLink, 10, s, d, msg.KindInvalid); dec.Op != Drop {
				t.Fatalf("%d->%d crossed the partition", s, d)
			}
			if dec := p.Filter(LayerLink, 10, d, s, msg.KindInvalid); dec.Op != Drop {
				t.Fatalf("%d->%d crossed the partition", d, s)
			}
		}
	}
	if dec := p.Filter(LayerLink, 10, 1, 2, msg.KindInvalid); dec.Op != Pass {
		t.Fatalf("intra-group traffic was cut: %+v", dec)
	}
	if dec := p.Filter(LayerLink, 10, 3, 4, msg.KindInvalid); dec.Op != Pass {
		t.Fatalf("intra-group traffic was cut: %+v", dec)
	}
}

func TestFlapAlternatesUpAndHealed(t *testing.T) {
	a, b := []msg.DeviceID{1}, []msg.DeviceID{2}
	p := New(1).Flap(a, b, 1000, 300, 1000, 3)
	cases := []struct {
		now  sim.Time
		want Op
	}{
		{500, Pass},  // before start
		{1100, Drop}, // cycle 0 up
		{1600, Pass}, // cycle 0 healed
		{2100, Drop}, // cycle 1 up
		{2600, Pass}, // cycle 1 healed
		{3299, Drop}, // cycle 2 up (last tick of the window)
		{3300, Pass}, // cycle 2 healed
		{4100, Pass}, // after the last cycle
	}
	for _, c := range cases {
		if d := p.Filter(LayerLink, c.now, 1, 2, msg.KindInvalid); d.Op != c.want {
			t.Errorf("t=%d: got %v want %v", c.now, d.Op, c.want)
		}
	}
}

func TestSlowMachineCoversBothDirections(t *testing.T) {
	p := New(1).SlowMachine(3, 40, 0, 0)
	if d := p.Filter(LayerLink, 10, 3, 1, msg.KindInvalid); d.Op != Slow || d.Factor != 40 {
		t.Fatalf("outbound: %+v", d)
	}
	if d := p.Filter(LayerLink, 10, 1, 3, msg.KindInvalid); d.Op != Slow || d.Factor != 40 {
		t.Fatalf("inbound: %+v", d)
	}
	if d := p.Filter(LayerLink, 10, 1, 2, msg.KindInvalid); d.Op != Pass {
		t.Fatalf("unrelated link slowed: %+v", d)
	}
}

func TestCrashAtFiresAtVirtualTime(t *testing.T) {
	eng := sim.NewEngine()
	p := New(1)
	var fired sim.Time
	p.CrashAt(eng, 1000, func() { fired = eng.Now() })
	eng.Run()
	if fired != 1000 {
		t.Fatalf("crash action fired at %d", fired)
	}
}
