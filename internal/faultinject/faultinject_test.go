package faultinject

import (
	"testing"

	"nocpu/internal/msg"
	"nocpu/internal/sim"
)

func TestNilAndEmptyPlanesPass(t *testing.T) {
	var nilPlane *Plane
	if d := nilPlane.Filter(LayerBus, 0, 1, 2, msg.KindOpenReq); d.Op != Pass {
		t.Fatalf("nil plane intervened: %+v", d)
	}
	if nilPlane.Enabled() {
		t.Fatal("nil plane claims enabled")
	}
	if s := nilPlane.Stats(); s != (Stats{}) {
		t.Fatalf("nil plane has stats: %+v", s)
	}
	empty := New(1)
	if empty.Enabled() {
		t.Fatal("rule-less plane claims enabled")
	}
	if d := empty.Filter(LayerBus, 0, 1, 2, msg.KindOpenReq); d.Op != Pass {
		t.Fatalf("rule-less plane intervened: %+v", d)
	}
	if s := empty.Stats(); s.Inspected != 0 {
		t.Fatal("disabled plane counted traffic")
	}
}

func TestRuleFilters(t *testing.T) {
	mk := func(r Rule) *Plane { return New(1).Add(r) }
	cases := []struct {
		name string
		p    *Plane
		l    Layer
		now  sim.Time
		src  msg.DeviceID
		dst  msg.DeviceID
		kind msg.Kind
		want Op
	}{
		{"any matches", mk(Rule{Op: Drop}), LayerBus, 0, 1, 2, msg.KindOpenReq, Drop},
		{"layer mismatch", mk(Rule{Layer: LayerLink, Op: Drop}), LayerBus, 0, 1, 2, msg.KindOpenReq, Pass},
		{"layer match", mk(Rule{Layer: LayerLink, Op: Drop}), LayerLink, 0, 1, 2, msg.KindInvalid, Drop},
		{"src mismatch", mk(Rule{Src: 7, Op: Drop}), LayerBus, 0, 1, 2, msg.KindOpenReq, Pass},
		{"dst match", mk(Rule{Dst: 2, Op: Delay}), LayerBus, 0, 1, 2, msg.KindOpenReq, Delay},
		{"kind mismatch", mk(Rule{Kind: msg.KindAllocReq, Op: Drop}), LayerBus, 0, 1, 2, msg.KindOpenReq, Pass},
		{"kind ignored on link", mk(Rule{Layer: LayerLink, Kind: msg.KindAllocReq, Op: Drop}), LayerLink, 0, 1, 2, msg.KindInvalid, Drop},
		{"before window", mk(Rule{After: 100, Op: Drop}), LayerBus, 50, 1, 2, msg.KindOpenReq, Pass},
		{"inside window", mk(Rule{After: 100, Until: 200, Op: Drop}), LayerBus, 150, 1, 2, msg.KindOpenReq, Drop},
		{"after window", mk(Rule{After: 100, Until: 200, Op: Drop}), LayerBus, 200, 1, 2, msg.KindOpenReq, Pass},
	}
	for _, c := range cases {
		if d := c.p.Filter(c.l, c.now, c.src, c.dst, c.kind); d.Op != c.want {
			t.Errorf("%s: got %v want %v", c.name, d.Op, c.want)
		}
	}
}

func TestCountBudget(t *testing.T) {
	p := New(1).Add(Rule{Op: Drop, Count: 2})
	got := 0
	for i := 0; i < 5; i++ {
		if p.Filter(LayerBus, 0, 1, 2, msg.KindOpenReq).Op == Drop {
			got++
		}
	}
	if got != 2 {
		t.Fatalf("Count=2 rule applied %d times", got)
	}
	if s := p.Stats(); s.Dropped != 2 || s.Inspected != 5 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestFirstMatchWinsAndConsumes(t *testing.T) {
	// A probabilistic first rule that passes must NOT fall through to the
	// second rule: rule order alone decides who judges a message.
	p := New(1).
		Add(Rule{Op: Drop, Prob: 0.5}).
		Add(Rule{Op: Delay, Delay: 5})
	delays := 0
	for i := 0; i < 200; i++ {
		if p.Filter(LayerBus, 0, 1, 2, msg.KindOpenReq).Op == Delay {
			delays++
		}
	}
	if delays != 0 {
		t.Fatalf("probabilistic miss fell through to later rule %d times", delays)
	}
}

func TestProbabilisticRateIsSeededAndPlausible(t *testing.T) {
	run := func(seed uint64) int {
		p := New(seed).Add(Rule{Op: Drop, Prob: 0.3})
		n := 0
		for i := 0; i < 1000; i++ {
			if p.Filter(LayerBus, 0, 1, 2, msg.KindOpenReq).Op == Drop {
				n++
			}
		}
		return n
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
	if a < 200 || a > 400 {
		t.Fatalf("30%% rule dropped %d/1000", a)
	}
	if c := run(8); c == a {
		t.Fatalf("different seeds agreed exactly (%d) — suspicious", c)
	}
}

func TestDelayCarriesDuration(t *testing.T) {
	p := New(1).Add(Rule{Op: Reorder, Delay: 42})
	d := p.Filter(LayerBus, 0, 1, 2, msg.KindOpenReq)
	if d.Op != Reorder || d.Delay != 42 {
		t.Fatalf("decision %+v", d)
	}
}

func TestCrashAtFiresAtVirtualTime(t *testing.T) {
	eng := sim.NewEngine()
	p := New(1)
	var fired sim.Time
	p.CrashAt(eng, 1000, func() { fired = eng.Now() })
	eng.Run()
	if fired != 1000 {
		t.Fatalf("crash action fired at %d", fired)
	}
}
