// Package faultinject is the emulator's deterministic fault plane (§4
// "Error handling", §2.4 "viability" questions). It sits between a
// sender and the wire — on the system-management bus and on the
// interconnect — and decides, from its own seeded RNG and an ordered
// rule schedule, whether each message passes, is dropped, delayed,
// duplicated, or reordered. Device stalls are expressed as time-windowed
// drop/delay rules; crashes and restarts reuse the existing lifecycle
// hooks (bus.FailDevice, Device.Kill) scheduled at virtual times via
// CrashAt.
//
// Determinism: the plane owns a private sim.Rand forked from nothing but
// its seed, so two runs with the same seed, schedule and workload make
// identical decisions. A nil *Plane (or one with no rules) is a
// pass-through that draws no randomness and schedules no events, so a
// disabled plane leaves the simulation bit-identical to a build without
// it.
package faultinject

import (
	"nocpu/internal/msg"
	"nocpu/internal/sim"
)

// Layer names the hop a rule applies to.
type Layer uint8

// Layers.
const (
	LayerAny  Layer = iota // matches every hop
	LayerBus               // system-management bus messages
	LayerLink              // interconnect: doorbells and DMA transfers
)

func (l Layer) String() string {
	switch l {
	case LayerAny:
		return "any"
	case LayerBus:
		return "bus"
	case LayerLink:
		return "link"
	}
	return "layer?"
}

// Op is what happens to a matched message.
type Op uint8

// Ops. Pass is the zero value so an unmatched Decision means "deliver
// normally".
const (
	Pass    Op = iota
	Drop       // silently lose the message
	Delay      // deliver after an extra Delay
	Dup        // deliver twice (identical envelope, same seq tag)
	Reorder    // defer past later traffic (implemented as a longer delay)
	Slow       // multiply the hop's base latency by Factor (fail-slow, not fail-stop)
)

func (o Op) String() string {
	switch o {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Dup:
		return "dup"
	case Reorder:
		return "reorder"
	case Slow:
		return "slow"
	}
	return "op?"
}

// Rule matches a subset of traffic and applies Op to it. Zero-valued
// filter fields match anything. First matching rule wins; a rule whose
// probability coin comes up tails consumes the match (the message
// passes) rather than falling through, so rule order alone fixes which
// rule judges a message.
type Rule struct {
	Layer Layer        // hop filter (LayerAny = both)
	Kind  msg.Kind     // bus message kind filter (KindInvalid = any; ignored on LayerLink)
	Src   msg.DeviceID // sender filter (0 = any)
	Dst   msg.DeviceID // destination filter (0 = any)

	Op     Op
	Prob   float64      // apply probability; 0 means 1.0 (always)
	Delay  sim.Duration // extra latency for Delay/Reorder
	Factor float64      // latency multiplier for Slow (values <= 1 mean pass)

	After sim.Time // rule active from this virtual time
	Until sim.Time // inactive at/after this time (0 = forever)
	Count int      // max applications (0 = unlimited)

	applied int
}

func (r *Rule) matches(l Layer, now sim.Time, src, dst msg.DeviceID, kind msg.Kind) bool {
	if r.Layer != LayerAny && r.Layer != l {
		return false
	}
	if now < r.After || (r.Until != 0 && now >= r.Until) {
		return false
	}
	if r.Count != 0 && r.applied >= r.Count {
		return false
	}
	if r.Src != 0 && r.Src != src {
		return false
	}
	if r.Dst != 0 && r.Dst != dst {
		return false
	}
	if r.Kind != msg.KindInvalid && l != LayerLink && r.Kind != kind {
		return false
	}
	return true
}

// Decision is the plane's verdict on one message.
type Decision struct {
	Op     Op
	Delay  sim.Duration // extra latency when Op is Delay or Reorder
	Factor float64      // latency multiplier when Op is Slow
}

// Stats counts the plane's interventions.
type Stats struct {
	Inspected uint64
	Dropped   uint64
	Delayed   uint64
	Duped     uint64
	Reordered uint64
	Slowed    uint64
}

// Plane is a configured fault injector. The zero value and nil are both
// disabled pass-throughs.
type Plane struct {
	rng   *sim.Rand
	rules []*Rule
	stats Stats
}

// New returns a plane with a private RNG derived only from seed.
func New(seed uint64) *Plane {
	return &Plane{rng: sim.NewRand(seed ^ 0x66617578)} // "faux"
}

// Add appends a rule to the schedule and returns the plane for chaining.
func (p *Plane) Add(r Rule) *Plane {
	p.rules = append(p.rules, &r)
	return p
}

// Enabled reports whether the plane can ever intervene.
func (p *Plane) Enabled() bool { return p != nil && len(p.rules) > 0 }

// Stats returns a copy of the intervention counters.
func (p *Plane) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	return p.stats
}

// Filter judges one message about to cross a hop. Nil and rule-less
// planes return Pass without touching any randomness.
func (p *Plane) Filter(l Layer, now sim.Time, src, dst msg.DeviceID, kind msg.Kind) Decision {
	if !p.Enabled() {
		return Decision{}
	}
	p.stats.Inspected++
	for _, r := range p.rules {
		if !r.matches(l, now, src, dst, kind) {
			continue
		}
		if r.Prob != 0 && r.Prob < 1 && p.rng.Float64() >= r.Prob {
			return Decision{} // coin says pass; match is consumed
		}
		r.applied++
		switch r.Op {
		case Drop:
			p.stats.Dropped++
		case Delay:
			p.stats.Delayed++
		case Dup:
			p.stats.Duped++
		case Reorder:
			p.stats.Reordered++
		case Slow:
			p.stats.Slowed++
		}
		return Decision{Op: r.Op, Delay: r.Delay, Factor: r.Factor}
	}
	return Decision{}
}

// CrashAt schedules a crash/restart action (bus.FailDevice, Device.Kill,
// a revive closure, ...) at virtual time at. It exists so fault
// schedules that mix message faults and device lifecycle faults live in
// one place; the action itself uses the simulation's ordinary hooks.
func (p *Plane) CrashAt(eng *sim.Engine, at sim.Time, action func()) {
	eng.At(at, action)
}

// PartitionOneWay drops every interconnect frame from src to dst inside
// [after, until) while the reverse direction keeps flowing — the
// asymmetric cut that makes failure detectors lie: dst stops hearing
// src, but src still hears dst.
func (p *Plane) PartitionOneWay(src, dst msg.DeviceID, after, until sim.Time) *Plane {
	return p.Add(Rule{Layer: LayerLink, Src: src, Dst: dst, Op: Drop, After: after, Until: until})
}

// Partition cuts every link between group a and group b, both
// directions, inside [after, until). Traffic within each group still
// flows, so each side keeps a coherent (and mutually contradictory)
// view of the world.
func (p *Plane) Partition(a, b []msg.DeviceID, after, until sim.Time) *Plane {
	for _, s := range a {
		for _, d := range b {
			p.PartitionOneWay(s, d, after, until)
			p.PartitionOneWay(d, s, after, until)
		}
	}
	return p
}

// Flap installs cycles repetitions of the a|b partition starting at
// start: each period begins with the cut up for the first up of the
// period and healed for the remainder. Flapping shorter than the
// failure-detection timeout exercises the gray zone where links die
// and recover faster than any view can converge.
func (p *Plane) Flap(a, b []msg.DeviceID, start sim.Time, up, period sim.Duration, cycles int) *Plane {
	for i := 0; i < cycles; i++ {
		at := start.Add(sim.Duration(i) * period)
		p.Partition(a, b, at, at.Add(up))
	}
	return p
}

// SlowMachine multiplies the latency of every interconnect frame into
// or out of machine id by factor inside [after, until): the machine is
// alive and answers everything, just 10–100x late — the gray failure
// that a binary alive/dead detector misclassifies in both directions.
func (p *Plane) SlowMachine(id msg.DeviceID, factor float64, after, until sim.Time) *Plane {
	p.Add(Rule{Layer: LayerLink, Src: id, Op: Slow, Factor: factor, After: after, Until: until})
	return p.Add(Rule{Layer: LayerLink, Dst: id, Op: Slow, Factor: factor, After: after, Until: until})
}
