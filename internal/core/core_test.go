package core

import (
	"testing"

	"nocpu/internal/kvs"
	"nocpu/internal/msg"
	"nocpu/internal/sim"
	"nocpu/internal/smartnic"
	"nocpu/internal/smartssd"
)

func bootSystem(t *testing.T, opts Options) *System {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	return s
}

func kvsOp(t *testing.T, s *System, store *kvs.Store, req kvs.Request) kvs.Response {
	t.Helper()
	var resp kvs.Response
	got := false
	s.NIC().Deliver(store.AppID(), kvs.EncodeRequest(req), func(b []byte) {
		r, err := kvs.DecodeResponse(b)
		if err != nil {
			t.Fatal(err)
		}
		resp, got = r, true
	})
	deadline := s.Eng.Now().Add(sim.Second)
	for !got && s.Eng.Now() < deadline {
		s.Eng.RunFor(50 * sim.Microsecond)
	}
	if !got {
		t.Fatal("op did not complete")
	}
	return resp
}

func TestDecentralizedEndToEnd(t *testing.T) {
	s := bootSystem(t, Options{Flavor: Decentralized})
	if s.Memctrl == nil || s.CPU != nil {
		t.Fatal("wrong component set for decentralized flavor")
	}
	if err := s.CreateFile("kv.dat", nil); err != nil {
		t.Fatal(err)
	}
	store := s.NewKVS(KVSOptions{App: 1, File: "kv.dat"})
	if err := s.WaitReady(store); err != nil {
		t.Fatal(err)
	}
	if r := kvsOp(t, s, store, kvs.Request{Op: kvs.OpPut, Key: "k", Value: []byte("v")}); r.Status != kvs.StatusOK {
		t.Fatalf("put: %+v", r)
	}
	if r := kvsOp(t, s, store, kvs.Request{Op: kvs.OpGet, Key: "k"}); string(r.Value) != "v" {
		t.Fatalf("get: %+v", r)
	}
}

func TestCentralizedEndToEnd(t *testing.T) {
	s := bootSystem(t, Options{Flavor: Centralized})
	if s.CPU == nil || s.Memctrl != nil {
		t.Fatal("wrong component set for centralized flavor")
	}
	if err := s.CreateFile("kv.dat", nil); err != nil {
		t.Fatal(err)
	}
	s.CPU.RegisterFile("kv.dat", FirstSSD)
	for _, mediated := range []bool{false, true} {
		app := KVSOptions{App: 1, File: "kv.dat", Mediated: mediated}
		if mediated {
			app.App = 2
		}
		store := s.NewKVS(app)
		if err := s.WaitReady(store); err != nil {
			t.Fatalf("mediated=%v: %v", mediated, err)
		}
		key := "k-direct"
		if mediated {
			key = "k-mediated"
		}
		if r := kvsOp(t, s, store, kvs.Request{Op: kvs.OpPut, Key: key, Value: []byte("x")}); r.Status != kvs.StatusOK {
			t.Fatalf("mediated=%v put: %+v", mediated, r)
		}
		if r := kvsOp(t, s, store, kvs.Request{Op: kvs.OpGet, Key: key}); string(r.Value) != "x" {
			t.Fatalf("mediated=%v get: %+v", mediated, r)
		}
	}
}

func TestWatchdogRecoveryViaCore(t *testing.T) {
	s := bootSystem(t, Options{Flavor: Decentralized, Watchdog: 400 * sim.Microsecond})
	if err := s.CreateFile("kv.dat", nil); err != nil {
		t.Fatal(err)
	}
	store := s.NewKVS(KVSOptions{App: 1, File: "kv.dat"})
	if err := s.WaitReady(store); err != nil {
		t.Fatal(err)
	}
	kvsOp(t, s, store, kvs.Request{Op: kvs.OpPut, Key: "durable", Value: []byte("yes")})
	s.SSD().Kill()
	s.Settle(50 * sim.Millisecond)
	if !store.Ready() {
		t.Fatal("store not recovered")
	}
	if r := kvsOp(t, s, store, kvs.Request{Op: kvs.OpGet, Key: "durable"}); string(r.Value) != "yes" {
		t.Fatalf("post-recovery get: %+v", r)
	}
}

func TestMultipleDevices(t *testing.T) {
	s := bootSystem(t, Options{Flavor: Decentralized, ExtraSSDs: 2, ExtraNICs: 1})
	if len(s.SSDs) != 3 || len(s.NICs) != 2 {
		t.Fatalf("devices: %d ssds, %d nics", len(s.SSDs), len(s.NICs))
	}
	// File on the third SSD is discoverable from the second NIC.
	var done bool
	s.SSDs[2].FS().Create("far.dat", func(f *smartssd.File, err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	s.Eng.Run()
	if !done {
		t.Fatal("create incomplete")
	}
	store := kvs.New(kvs.Config{App: 9, FileName: "far.dat", Memctrl: ControlID})
	s.NICs[1].AddApp(store)
	if err := s.WaitReady(store); err != nil {
		t.Fatal(err)
	}
}

func TestBootFailsWithTinyMemory(t *testing.T) {
	// A machine whose memory cannot hold even the page tables must fail
	// to boot cleanly rather than hang.
	s, err := New(Options{Flavor: Decentralized, MemoryBytes: 4 * 4096})
	if err != nil {
		return // construction failure is also acceptable
	}
	_ = s.Boot() // must return (either error or ok), not hang
}

func TestAccelViaCore(t *testing.T) {
	s := bootSystem(t, Options{Flavor: Decentralized, WithAccel: true})
	if s.Accel == nil {
		t.Fatal("no accelerator")
	}
	// The accelerator answers discovery like any self-managing device.
	type probe struct {
		done, fail bool
	}
	p := &probe{}
	app := &probeApp{onDone: func(fail bool) { p.done, p.fail = true, fail }}
	s.NIC().AddApp(app)
	deadline := s.Eng.Now().Add(sim.Second)
	for !p.done && s.Eng.Now() < deadline {
		s.Eng.RunFor(50 * sim.Microsecond)
	}
	if !p.done || p.fail {
		t.Fatalf("discovery of xform:crc32 failed (done=%v)", p.done)
	}
}

// probeApp discovers the accelerator's crc32 service.
type probeApp struct {
	onDone func(fail bool)
}

func (a *probeApp) AppID() msg.AppID { return 42 }
func (a *probeApp) Boot(rt *smartnic.Runtime) {
	rt.Discover("xform:crc32", func(_ msg.DeviceID, _ string, err error) {
		a.onDone(err != nil)
	})
}
func (a *probeApp) ServeNetwork(p []byte, reply func([]byte)) { reply(p) }
func (a *probeApp) PeerFailed(msg.DeviceID)                   {}

func TestDeterministicRuns(t *testing.T) {
	run := func() sim.Time {
		s := bootSystem(t, Options{Flavor: Decentralized, Seed: 42})
		if err := s.CreateFile("kv.dat", nil); err != nil {
			t.Fatal(err)
		}
		store := s.NewKVS(KVSOptions{App: 1, File: "kv.dat"})
		if err := s.WaitReady(store); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			kvsOp(t, s, store, kvs.Request{Op: kvs.OpPut, Key: "k", Value: []byte{byte(i)}})
		}
		return s.Eng.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different end times: %v vs %v", a, b)
	}
}
