package core

import (
	"testing"

	"nocpu/internal/device"
)

// TestEveryDeviceInstallsRecoveryHooks asserts that every package which
// constructs a device.Device wires a non-nil OnReset handler. A device
// without one silently keeps its pre-crash soft state across a bus Reset,
// which breaks the rejoin protocol's contract (the new incarnation must
// start from StateQuery/StateResp reconciliation, not stale memory) —
// exactly the class of bug the E15 chaos harness exists to catch.
func TestEveryDeviceInstallsRecoveryHooks(t *testing.T) {
	for _, flavor := range []Flavor{Decentralized, Centralized} {
		flavor := flavor
		name := map[Flavor]string{Decentralized: "decentralized", Centralized: "centralized"}[flavor]
		t.Run(name, func(t *testing.T) {
			sys := MustNew(Options{
				Flavor:    flavor,
				Seed:      1,
				NoTrace:   true,
				ExtraSSDs: 1,
				ExtraNICs: 1,
				WithAccel: true,
			})
			if err := sys.Boot(); err != nil {
				t.Fatal(err)
			}

			devs := map[string]*device.Device{}
			for i, ssd := range sys.SSDs {
				devs[ssd.Device().Name()] = ssd.Device()
				_ = i
			}
			for _, nic := range sys.NICs {
				devs[nic.Device().Name()] = nic.Device()
			}
			if sys.Accel != nil {
				devs[sys.Accel.Device().Name()] = sys.Accel.Device()
			}
			if sys.Memctrl != nil {
				devs[sys.Memctrl.Device().Name()] = sys.Memctrl.Device()
			}

			// Every device-constructing package must be represented, so a
			// new device type cannot dodge this test unnoticed.
			wantAtLeast := 5 // 2 SSDs + 2 NICs + accel
			if flavor == Decentralized {
				wantAtLeast++ // + memctrl
			}
			if len(devs) < wantAtLeast {
				t.Fatalf("only %d devices under test, want >= %d: %v", len(devs), wantAtLeast, keys(devs))
			}

			// OnAlive is optional (the device lifecycle itself re-sends
			// Hello with the configured services); OnReset is not.
			for name, d := range devs {
				if d.OnReset == nil {
					t.Errorf("%s: OnReset is nil — device cannot recover from a crash", name)
				}
			}
		})
	}
}

func keys(m map[string]*device.Device) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
