// Package core assembles complete emulated machines — the CPU-less
// system of "The Last CPU" and its centralized-CPU baseline — from the
// substrate packages, and is the library's primary entry point.
//
// A Decentralized system contains: physical memory, the data-plane
// fabric, the system-management bus, a memory-controller device, one or
// more smart SSDs and smart NICs. A Centralized system swaps the memory
// controller for a CPU running a kernel (centralos) and demotes the bus
// to pure transport.
//
// Typical use:
//
//	sys, _ := core.New(core.Options{Flavor: core.Decentralized})
//	sys.Boot()
//	sys.CreateFile("kv.dat", nil)
//	store := sys.NewKVS(core.KVSOptions{App: 1, File: "kv.dat"})
//	sys.WaitReady(store)
//	... drive load with netsim, inspect stats ...
package core

import (
	"errors"
	"fmt"

	"nocpu/internal/accel"
	"nocpu/internal/bus"
	"nocpu/internal/centralos"
	"nocpu/internal/device"
	"nocpu/internal/faultinject"
	"nocpu/internal/interconnect"
	"nocpu/internal/iommu"
	"nocpu/internal/kvs"
	"nocpu/internal/memctrl"
	"nocpu/internal/msg"
	"nocpu/internal/physmem"
	"nocpu/internal/sim"
	"nocpu/internal/smartnic"
	"nocpu/internal/smartssd"
	"nocpu/internal/tenant"
	"nocpu/internal/trace"
)

// Flavor selects the machine architecture.
type Flavor uint8

// Machine flavors.
const (
	// Decentralized is the paper's CPU-less machine.
	Decentralized Flavor = iota
	// Centralized is the baseline with a CPU-resident kernel control
	// plane.
	Centralized
)

func (f Flavor) String() string {
	if f == Centralized {
		return "centralized"
	}
	return "decentralized"
}

// Well-known device addresses.
const (
	ControlID = msg.DeviceID(1) // memory controller or CPU
	FirstSSD  = msg.DeviceID(2)
)

// Options configures a System. Zero values give a sensible one-SSD,
// one-NIC machine.
type Options struct {
	Flavor Flavor
	Seed   uint64
	// MemoryBytes sizes physical memory (default 128 MiB).
	MemoryBytes uint64
	// Bus is the control-plane timing (DefaultConfig if zero).
	Bus bus.Config
	// Costs is the data-plane timing (DefaultCosts if zero).
	Costs interconnect.Costs
	// CPU configures the centralized kernel (Centralized only).
	CPU centralos.Config
	// SSD configures the (first) smart SSD.
	SSD smartssd.Config
	// NIC configures the (first) smart NIC.
	NIC smartnic.Config
	// Watchdog enables the bus watchdog and device heartbeats at
	// watchdog/4.
	Watchdog sim.Duration
	// TraceLimit caps the tracer (0 = unlimited).
	TraceLimit int
	// NoTrace disables tracing entirely (benchmarks).
	NoTrace bool
	// ExtraSSDs and ExtraNICs add more devices at construction.
	ExtraSSDs int
	ExtraNICs int
	// WithAccel adds a compute accelerator device ("accel").
	WithAccel bool
	// Accel configures it.
	Accel accel.Config
	// FaultPlane, when non-nil, injects faults on the bus and the
	// interconnect (E14). Nil leaves the machine bit-identical to a build
	// without injection.
	FaultPlane *faultinject.Plane
	// Engine, when non-nil, is the event loop the machine runs on instead
	// of a private one. The rack-scale fabric (internal/fabric) uses this
	// to co-schedule N machines on one deterministic clock; nil (the
	// default) keeps the single-machine behavior bit-identical.
	Engine *sim.Engine
	// Tenancy, when non-nil, enables per-tenant isolation everywhere at
	// once: the bus scopes discovery and grants to domains, every
	// device's IOMMU refuses contexts/mappings for foreign apps (even
	// when a compromised kernel programs them), the NICs partition rx
	// per tenant, and KVS stores enforce key ownership and admission
	// budgets. Nil (the default) keeps the machine bit-identical to a
	// tenancy-free build.
	Tenancy *tenant.Registry
}

// System is an assembled machine.
type System struct {
	Opts   Options
	Eng    *sim.Engine
	Rand   *sim.Rand
	Tracer *trace.Tracer
	Mem    *physmem.Memory
	Fabric *interconnect.Fabric
	Bus    *bus.Bus

	Memctrl *memctrl.Controller // Decentralized only
	CPU     *centralos.CPU      // Centralized only
	SSDs    []*smartssd.SSD
	NICs    []*smartnic.NIC
	Accel   *accel.Accel // optional (Options.WithAccel)

	nextID msg.DeviceID
}

// SSD returns the first SSD.
func (s *System) SSD() *smartssd.SSD { return s.SSDs[0] }

// NIC returns the first NIC.
func (s *System) NIC() *smartnic.NIC { return s.NICs[0] }

// New builds (but does not boot) a machine.
func New(opts Options) (*System, error) {
	if opts.MemoryBytes == 0 {
		opts.MemoryBytes = 128 << 20
	}
	if opts.Bus.HopLatency == 0 {
		// Timing defaults; feature knobs (watchdog, flow control) survive.
		wd, cw, ib := opts.Bus.WatchdogTimeout, opts.Bus.CreditWindow, opts.Bus.IngressBound
		opts.Bus = bus.DefaultConfig
		opts.Bus.WatchdogTimeout = wd
		opts.Bus.CreditWindow = cw
		opts.Bus.IngressBound = ib
	}
	if opts.Watchdog > 0 {
		opts.Bus.WatchdogTimeout = opts.Watchdog
	}
	if opts.Costs.LinkLatency == 0 {
		dw := opts.Costs.DMAWindow
		opts.Costs = interconnect.DefaultCosts
		opts.Costs.DMAWindow = dw
	}
	eng := opts.Engine
	if eng == nil {
		eng = sim.NewEngine()
	}
	s := &System{
		Opts: opts,
		Eng:  eng,
		Rand: sim.NewRand(opts.Seed ^ 0x6e6f637075), // "nocpu"
	}
	if !opts.NoTrace {
		s.Tracer = trace.New(opts.TraceLimit)
	}
	var err error
	s.Mem, err = physmem.New(opts.MemoryBytes)
	if err != nil {
		return nil, err
	}
	s.Fabric = interconnect.NewFabric(s.Eng, s.Mem, opts.Costs)
	s.Bus = bus.New(s.Eng, opts.Bus, s.Tracer)
	if opts.Tenancy != nil {
		// Before any device attaches, so per-tenant credit windows apply
		// from the first send.
		s.Bus.SetTenancy(opts.Tenancy)
	}
	if opts.FaultPlane != nil {
		s.Bus.SetFaultPlane(opts.FaultPlane)
		s.Fabric.SetFaultPlane(opts.FaultPlane)
	}
	s.nextID = ControlID

	hb := sim.Duration(0)
	if opts.Watchdog > 0 {
		hb = opts.Watchdog / 4
	}

	switch opts.Flavor {
	case Decentralized:
		mcCfg := memctrl.Config{Device: device.Config{
			ID: s.claimID(), Name: "memctrl", HeartbeatEvery: hb,
			SelfTest:   1 * sim.Microsecond,
			ResetDelay: 100 * sim.Microsecond,
		}}
		s.Memctrl, err = memctrl.New(s.Eng, s.Bus, s.Fabric, s.Tracer, mcCfg)
		if err != nil {
			return nil, err
		}
		s.applyTenancy(mcCfg.Device.ID, s.Memctrl.Device().IOMMU())
	case Centralized:
		cpuCfg := opts.CPU
		cpuCfg.ID = s.claimID()
		if cpuCfg.Name == "" {
			cpuCfg.Name = "cpu"
		}
		s.CPU, err = centralos.New(s.Eng, s.Bus, s.Fabric, s.Tracer, cpuCfg)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown flavor %d", opts.Flavor)
	}

	for i := 0; i <= opts.ExtraSSDs; i++ {
		name := "ssd"
		if i > 0 {
			name = fmt.Sprintf("ssd%d", i)
		}
		if _, err := s.AddSSD(name, opts.SSD); err != nil {
			return nil, err
		}
	}
	for i := 0; i <= opts.ExtraNICs; i++ {
		name := "nic"
		if i > 0 {
			name = fmt.Sprintf("nic%d", i)
		}
		if _, err := s.AddNIC(name, opts.NIC); err != nil {
			return nil, err
		}
	}
	if opts.WithAccel {
		acfg := opts.Accel
		acfg.Device.ID = s.claimID()
		if acfg.Device.Name == "" {
			acfg.Device.Name = "accel"
		}
		if acfg.Device.HeartbeatEvery == 0 {
			acfg.Device.HeartbeatEvery = s.heartbeat()
		}
		if acfg.Device.SelfTest == 0 {
			acfg.Device.SelfTest = 5 * sim.Microsecond
		}
		if acfg.Device.ResetDelay == 0 {
			acfg.Device.ResetDelay = 100 * sim.Microsecond
		}
		a, err := accel.New(s.Eng, s.Bus, s.Fabric, s.Tracer, acfg)
		if err != nil {
			return nil, err
		}
		if s.CPU != nil {
			s.CPU.AttachDeviceIOMMU(acfg.Device.ID, a.Device().IOMMU())
		}
		s.applyTenancy(acfg.Device.ID, a.Device().IOMMU())
		s.Accel = a
	}
	return s, nil
}

// applyTenancy installs the per-device isolation-domain check on a
// device's translation unit: the device itself refuses contexts and
// mappings for apps outside its tenant, whoever asks — including the
// head node. This is the decentralized half of the E20 argument.
func (s *System) applyTenancy(id msg.DeviceID, mmu *iommu.IOMMU) {
	if s.Opts.Tenancy == nil {
		return
	}
	reg := s.Opts.Tenancy
	check := reg.DomainCheckFor(id)
	mmu.SetDomainCheck(func(p iommu.PASID) error {
		err := check(msg.AppID(p))
		var terr *tenant.Error
		if errors.As(err, &terr) {
			reg.RecordError(s.Eng.Now(), terr)
		}
		return err
	})
}

// MustNew is New for static configuration.
func MustNew(opts Options) *System {
	s, err := New(opts)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *System) claimID() msg.DeviceID {
	id := s.nextID
	s.nextID++
	return id
}

func (s *System) heartbeat() sim.Duration {
	if s.Opts.Watchdog > 0 {
		return s.Opts.Watchdog / 4
	}
	return 0
}

// AddSSD attaches another smart SSD (before Boot).
func (s *System) AddSSD(name string, cfg smartssd.Config) (*smartssd.SSD, error) {
	cfg.Device.ID = s.claimID()
	cfg.Device.Name = name
	if cfg.Device.HeartbeatEvery == 0 {
		cfg.Device.HeartbeatEvery = s.heartbeat()
	}
	if cfg.Device.SelfTest == 0 {
		cfg.Device.SelfTest = 5 * sim.Microsecond
	}
	if cfg.Device.ResetDelay == 0 {
		cfg.Device.ResetDelay = 200 * sim.Microsecond
	}
	ssd, err := smartssd.New(s.Eng, s.Bus, s.Fabric, s.Tracer, cfg)
	if err != nil {
		return nil, err
	}
	if s.CPU != nil {
		s.CPU.AttachDeviceIOMMU(cfg.Device.ID, ssd.Device().IOMMU())
	}
	s.applyTenancy(cfg.Device.ID, ssd.Device().IOMMU())
	s.SSDs = append(s.SSDs, ssd)
	return ssd, nil
}

// AddNIC attaches another smart NIC (before Boot).
func (s *System) AddNIC(name string, cfg smartnic.Config) (*smartnic.NIC, error) {
	cfg.Device.ID = s.claimID()
	cfg.Device.Name = name
	if cfg.Device.HeartbeatEvery == 0 {
		cfg.Device.HeartbeatEvery = s.heartbeat()
	}
	if cfg.Device.SelfTest == 0 {
		cfg.Device.SelfTest = 5 * sim.Microsecond
	}
	if cfg.Device.ResetDelay == 0 {
		cfg.Device.ResetDelay = 100 * sim.Microsecond
	}
	cfg.Tenancy = s.Opts.Tenancy
	nic, err := smartnic.New(s.Eng, s.Bus, s.Fabric, s.Tracer, cfg)
	if err != nil {
		return nil, err
	}
	if s.CPU != nil {
		s.CPU.AttachDeviceIOMMU(cfg.Device.ID, nic.Device().IOMMU())
	}
	s.applyTenancy(cfg.Device.ID, nic.Device().IOMMU())
	s.NICs = append(s.NICs, nic)
	return nic, nil
}

// Boot powers every device on and runs the simulation until all SSD
// volumes are mounted.
func (s *System) Boot() error {
	if s.Memctrl != nil {
		s.Memctrl.Start()
	}
	if s.CPU != nil {
		s.CPU.Start()
	}
	if s.Accel != nil {
		s.Accel.Start()
	}
	for _, d := range s.SSDs {
		d.Start()
	}
	for _, n := range s.NICs {
		n.Start()
	}
	deadline := s.Eng.Now().Add(sim.Second)
	for s.Eng.Now() < deadline {
		ready := true
		for _, d := range s.SSDs {
			if !d.Ready() {
				ready = false
			}
		}
		if ready {
			return nil
		}
		s.advance(100 * sim.Microsecond)
	}
	return fmt.Errorf("core: boot timed out; SSD volume never became ready")
}

// advance progresses virtual time even when recurring events (heartbeats)
// keep the queue non-empty.
func (s *System) advance(d sim.Duration) {
	s.Eng.RunFor(d)
}

// Settle runs the simulation until it quiesces, or — when heartbeats/
// watchdogs keep the queue alive forever — for the given bound.
func (s *System) Settle(bound sim.Duration) {
	if s.Opts.Watchdog == 0 {
		s.Eng.Run()
		return
	}
	s.Eng.RunFor(bound)
}

// CreateFile synchronously creates and fills a file on the first SSD
// (pre-Boot setup for workloads).
func (s *System) CreateFile(name string, contents []byte) error {
	var ferr error
	done := false
	s.SSD().FS().Create(name, func(f *smartssd.File, err error) {
		if err != nil {
			ferr, done = err, true
			return
		}
		if len(contents) == 0 {
			done = true
			return
		}
		f.WriteAt(0, contents, func(err error) { ferr, done = err, true })
	})
	deadline := s.Eng.Now().Add(sim.Second)
	for !done && s.Eng.Now() < deadline {
		s.advance(100 * sim.Microsecond)
	}
	if !done {
		return fmt.Errorf("core: CreateFile(%q) did not complete", name)
	}
	return ferr
}

// KVSOptions configures a KVS instance on a System.
type KVSOptions struct {
	App  msg.AppID
	File string
	// Token authenticates the file open.
	Token uint64
	// Mediated selects the kernel-mediated data path (Centralized only).
	Mediated bool
	// QueueEntries sizes the virtqueue (default 64).
	QueueEntries uint16
	// NIC selects which NIC hosts the app (default the first).
	NIC int
	// InflightBound caps the store's admitted-but-unreplied requests
	// (kvs.Config.InflightBound; 0 = unbounded).
	InflightBound int
	// CacheEntries enables the NIC-local value cache (E11; 0 = off).
	CacheEntries int
}

// NewKVS builds a KVS store wired for this system's flavor and loads it
// onto the NIC. Wait for readiness with WaitReady.
func (s *System) NewKVS(o KVSOptions) *kvs.Store {
	cfg := kvs.Config{
		App:           o.App,
		FileName:      o.File,
		Token:         o.Token,
		QueueEntries:  o.QueueEntries,
		InflightBound: o.InflightBound,
		CacheEntries:  o.CacheEntries,
		Tenancy:       s.Opts.Tenancy,
	}
	switch {
	case s.CPU != nil && o.Mediated:
		cfg.Mode = kvs.ModeCentralMediated
		cfg.Kernel = ControlID
	case s.CPU != nil:
		cfg.Mode = kvs.ModeCentralDirect
		cfg.Kernel = ControlID
	default:
		cfg.Mode = kvs.ModeDecentralized
		cfg.Memctrl = ControlID
	}
	store := kvs.New(cfg)
	s.NICs[o.NIC].AddApp(store)
	return store
}

// WaitReady advances the simulation until the store is serving.
func (s *System) WaitReady(store *kvs.Store) error {
	deadline := s.Eng.Now().Add(sim.Second)
	for !store.Ready() && s.Eng.Now() < deadline {
		s.advance(100 * sim.Microsecond)
	}
	if !store.Ready() {
		return fmt.Errorf("core: KVS app %d never became ready", store.AppID())
	}
	return nil
}
