package msg

import (
	"errors"
	"math"
)

// writer accumulates a little-endian encoding.
type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = append(w.buf, byte(v), byte(v>>8)) }
func (w *writer) u32(v uint32) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (w *writer) u64(v uint64) {
	w.u32(uint32(v))
	w.u32(uint32(v >> 32))
}
func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *writer) str(s string) {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	w.u16(uint16(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}
func (w *writer) u64s(v []uint64) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.u64(x)
	}
}
func (w *writer) u16s(v []uint16) {
	w.u16(uint16(len(v)))
	for _, x := range v {
		w.u16(x)
	}
}

var errShort = errors.New("truncated message")

// reader decodes; the first error sticks and subsequent reads return
// zeros, so decoders can be written without per-field error checks.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = errShort
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0]) | uint16(b[1])<<8
}
func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func (r *reader) u64() uint64 {
	lo := uint64(r.u32())
	hi := uint64(r.u32())
	return lo | hi<<32
}
func (r *reader) bool() bool { return r.u8() != 0 }
func (r *reader) str() string {
	n := int(r.u16())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}
func (r *reader) bytesField() []byte {
	n := int(r.u32())
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}
func (r *reader) u16list() []uint16 {
	n := int(r.u16())
	if r.err != nil {
		return nil
	}
	// Sanity bound: each element needs 2 bytes.
	if n < 0 || r.off+2*n > len(r.buf) {
		r.err = errShort
		return nil
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = r.u16()
	}
	return out
}
func (r *reader) u64list() []uint64 {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	// Sanity bound: each element needs 8 bytes.
	if n < 0 || r.off+8*n > len(r.buf) {
		r.err = errShort
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.u64()
	}
	return out
}
