package msg

// This file defines every message body. Encoders and decoders must list
// fields in identical order; the round-trip tests in msg_test.go cover
// each type, and Decode rejects trailing bytes, so drift fails loudly.

// Hello announces a device after it passes self-test (§2.2 "System
// Initialization"). Services lists what it exposes, but the bus does not
// index them: discovery stays broadcast-based (no global state).
//
// Incarnation is the device's boot count: 0 on first power-on, bumped
// by every crash recovery. It is a trailing optional field — encoded
// only when nonzero — so a first-boot Hello is byte-identical to the
// pre-incarnation wire form and old encodings still decode (with
// Incarnation 0).
type Hello struct {
	Role        Role
	Name        string
	Services    []string
	Incarnation uint32
}

func (*Hello) Kind() Kind { return KindHello }
func (m *Hello) encode(w *writer) {
	w.u8(uint8(m.Role))
	w.str(m.Name)
	w.u16(uint16(len(m.Services)))
	for _, s := range m.Services {
		w.str(s)
	}
	if m.Incarnation != 0 {
		w.u32(m.Incarnation)
	}
}
func (m *Hello) decode(r *reader) {
	m.Role = Role(r.u8())
	m.Name = r.str()
	n := int(r.u16())
	if r.err != nil || n > len(r.buf) {
		r.err = errShort
		return
	}
	if n > 0 {
		m.Services = make([]string, n)
		for i := range m.Services {
			m.Services[i] = r.str()
		}
	}
	if r.err == nil && r.off < len(r.buf) {
		m.Incarnation = r.u32()
	}
}

// HelloAck confirms registration.
type HelloAck struct{}

func (*HelloAck) Kind() Kind     { return KindHelloAck }
func (*HelloAck) encode(*writer) {}
func (*HelloAck) decode(*reader) {}

// Heartbeat is the watchdog keep-alive.
type Heartbeat struct{ Seq uint64 }

func (*Heartbeat) Kind() Kind         { return KindHeartbeat }
func (m *Heartbeat) encode(w *writer) { w.u64(m.Seq) }
func (m *Heartbeat) decode(r *reader) { m.Seq = r.u64() }

// Reset orders a device to restart (§4: "The bus can also send a reset
// signal to the failed device in an attempt to restart it").
type Reset struct{ Reason string }

func (*Reset) Kind() Kind         { return KindReset }
func (m *Reset) encode(w *writer) { w.str(m.Reason) }
func (m *Reset) decode(r *reader) { m.Reason = r.str() }

// ResetDone reports a device back up after Reset.
type ResetDone struct{}

func (*ResetDone) Kind() Kind     { return KindResetDone }
func (*ResetDone) encode(*writer) {}
func (*ResetDone) decode(*reader) {}

// DiscoverReq asks, by broadcast, which device provides a service
// (§3 step 1: "a broadcast message (containing the file name)").
// Query is a service selector such as "file:kv.dat" or "loader".
type DiscoverReq struct {
	Query string
	Nonce uint32 // correlates responses with requests
}

func (*DiscoverReq) Kind() Kind { return KindDiscoverReq }
func (m *DiscoverReq) encode(w *writer) {
	w.str(m.Query)
	w.u32(m.Nonce)
}
func (m *DiscoverReq) decode(r *reader) {
	m.Query = r.str()
	m.Nonce = r.u32()
}

// DiscoverResp is a provider's answer (§3 step 2).
type DiscoverResp struct {
	Query   string
	Nonce   uint32
	Service string // concrete service name to open
}

func (*DiscoverResp) Kind() Kind { return KindDiscoverResp }
func (m *DiscoverResp) encode(w *writer) {
	w.str(m.Query)
	w.u32(m.Nonce)
	w.str(m.Service)
}
func (m *DiscoverResp) decode(r *reader) {
	m.Query = r.str()
	m.Nonce = r.u32()
	m.Service = r.str()
}

// OpenReq opens a service instance (§3 step 3, "including an
// authorization token").
type OpenReq struct {
	Service string
	App     AppID
	Token   uint64
}

func (*OpenReq) Kind() Kind { return KindOpenReq }
func (m *OpenReq) encode(w *writer) {
	w.str(m.Service)
	w.u32(uint32(m.App))
	w.u64(m.Token)
}
func (m *OpenReq) decode(r *reader) {
	m.Service = r.str()
	m.App = AppID(r.u32())
	m.Token = r.u64()
}

// OpenResp returns "the connection details and the amount of shared
// memory required" (§3 step 4).
type OpenResp struct {
	Service     string
	App         AppID
	OK          bool
	Reason      string
	ConnID      uint32
	SharedBytes uint64 // shared memory the connection requires
	// Base is used only by the centralized baseline: the kernel reports
	// where it mapped the shared region in the app's address space
	// (decentralized opens leave it 0 — the app allocates its own VA).
	Base uint64
}

func (*OpenResp) Kind() Kind { return KindOpenResp }
func (m *OpenResp) encode(w *writer) {
	w.str(m.Service)
	w.u32(uint32(m.App))
	w.bool(m.OK)
	w.str(m.Reason)
	w.u32(m.ConnID)
	w.u64(m.SharedBytes)
	w.u64(m.Base)
}
func (m *OpenResp) decode(r *reader) {
	m.Service = r.str()
	m.App = AppID(r.u32())
	m.OK = r.bool()
	m.Reason = r.str()
	m.ConnID = r.u32()
	m.SharedBytes = r.u64()
	m.Base = r.u64()
}

// ConnectReq programs the provider's end of the connection: where in the
// app's shared virtual address space the virtqueue and data region live,
// and which doorbells to use (§3 step 7: "programming the VIRTIO queues
// in the SSD using virtual addresses").
type ConnectReq struct {
	Service      string
	ConnID       uint32
	App          AppID
	RingVA       uint64 // virtqueue base (descriptor table + rings)
	RingEntries  uint16
	DataVA       uint64 // data buffer region base
	DataBytes    uint64
	ReqDoorbell  uint64 // requester rings this after posting avail entries
	RespDoorbell uint64 // provider rings this after posting used entries
}

func (*ConnectReq) Kind() Kind { return KindConnectReq }
func (m *ConnectReq) encode(w *writer) {
	w.str(m.Service)
	w.u32(m.ConnID)
	w.u32(uint32(m.App))
	w.u64(m.RingVA)
	w.u16(m.RingEntries)
	w.u64(m.DataVA)
	w.u64(m.DataBytes)
	w.u64(m.ReqDoorbell)
	w.u64(m.RespDoorbell)
}
func (m *ConnectReq) decode(r *reader) {
	m.Service = r.str()
	m.ConnID = r.u32()
	m.App = AppID(r.u32())
	m.RingVA = r.u64()
	m.RingEntries = r.u16()
	m.DataVA = r.u64()
	m.DataBytes = r.u64()
	m.ReqDoorbell = r.u64()
	m.RespDoorbell = r.u64()
}

// ConnectResp acknowledges ConnectReq.
type ConnectResp struct {
	ConnID uint32
	OK     bool
	Reason string
}

func (*ConnectResp) Kind() Kind { return KindConnectResp }
func (m *ConnectResp) encode(w *writer) {
	w.u32(m.ConnID)
	w.bool(m.OK)
	w.str(m.Reason)
}
func (m *ConnectResp) decode(r *reader) {
	m.ConnID = r.u32()
	m.OK = r.bool()
	m.Reason = r.str()
}

// CloseReq tears down a service connection.
type CloseReq struct {
	Service string
	ConnID  uint32
	App     AppID
}

func (*CloseReq) Kind() Kind { return KindCloseReq }
func (m *CloseReq) encode(w *writer) {
	w.str(m.Service)
	w.u32(m.ConnID)
	w.u32(uint32(m.App))
}
func (m *CloseReq) decode(r *reader) {
	m.Service = r.str()
	m.ConnID = r.u32()
	m.App = AppID(r.u32())
}

// CloseResp acknowledges CloseReq.
type CloseResp struct {
	ConnID uint32
	OK     bool
}

func (*CloseResp) Kind() Kind { return KindCloseResp }
func (m *CloseResp) encode(w *writer) {
	w.u32(m.ConnID)
	w.bool(m.OK)
}
func (m *CloseResp) decode(r *reader) {
	m.ConnID = r.u32()
	m.OK = r.bool()
}

// AllocReq asks the memory controller for Bytes of physical memory mapped
// at VA in the app's address space (§3 step 5).
type AllocReq struct {
	App   AppID
	VA    uint64
	Bytes uint64
	Perm  uint8 // iommu.Perm bits
	// Huge requests 2 MiB mappings: the controller allocates contiguous
	// naturally aligned runs and the bus installs huge PTEs.
	Huge bool
}

func (*AllocReq) Kind() Kind { return KindAllocReq }
func (m *AllocReq) encode(w *writer) {
	w.u32(uint32(m.App))
	w.u64(m.VA)
	w.u64(m.Bytes)
	w.u8(m.Perm)
	w.bool(m.Huge)
}
func (m *AllocReq) decode(r *reader) {
	m.App = AppID(r.u32())
	m.VA = r.u64()
	m.Bytes = r.u64()
	m.Perm = r.u8()
	m.Huge = r.bool()
}

// AllocResp is the memory controller's answer. The bus intercepts it in
// flight and programs the requester's IOMMU (§3 step 6: "Upon seeing the
// response from the memory, the system bus programs the IOMMU belonging
// to the NIC"). Frames lists the allocated physical frames, page by page.
type AllocResp struct {
	App    AppID
	OK     bool
	Reason string
	VA     uint64
	Frames []uint64
	Perm   uint8
	// Huge marks Frames as bases of contiguous 2 MiB runs rather than
	// individual 4 KiB frames.
	Huge bool
}

func (*AllocResp) Kind() Kind { return KindAllocResp }
func (m *AllocResp) encode(w *writer) {
	w.u32(uint32(m.App))
	w.bool(m.OK)
	w.str(m.Reason)
	w.u64(m.VA)
	w.u64s(m.Frames)
	w.u8(m.Perm)
	w.bool(m.Huge)
}
func (m *AllocResp) decode(r *reader) {
	m.App = AppID(r.u32())
	m.OK = r.bool()
	m.Reason = r.str()
	m.VA = r.u64()
	m.Frames = r.u64list()
	m.Perm = r.u8()
	m.Huge = r.bool()
}

// FreeReq returns memory to the controller.
type FreeReq struct {
	App   AppID
	VA    uint64
	Bytes uint64
}

func (*FreeReq) Kind() Kind { return KindFreeReq }
func (m *FreeReq) encode(w *writer) {
	w.u32(uint32(m.App))
	w.u64(m.VA)
	w.u64(m.Bytes)
}
func (m *FreeReq) decode(r *reader) {
	m.App = AppID(r.u32())
	m.VA = r.u64()
	m.Bytes = r.u64()
}

// FreeResp confirms a free; the bus unmaps the range from the requester's
// IOMMU (and any grantees) when it sees an OK response.
type FreeResp struct {
	App    AppID
	OK     bool
	Reason string
	VA     uint64
	Bytes  uint64
}

func (*FreeResp) Kind() Kind { return KindFreeResp }
func (m *FreeResp) encode(w *writer) {
	w.u32(uint32(m.App))
	w.bool(m.OK)
	w.str(m.Reason)
	w.u64(m.VA)
	w.u64(m.Bytes)
}
func (m *FreeResp) decode(r *reader) {
	m.App = AppID(r.u32())
	m.OK = r.bool()
	m.Reason = r.str()
	m.VA = r.u64()
	m.Bytes = r.u64()
}

// GrantReq asks the bus to extend one of the requester's app mappings to
// another device (§3 step 7 first half: "grant access to the shared
// memory to the SSD"). The bus must obtain memory-controller
// authorization before programming anything (§3: "must be first
// authorized by the memory controller").
type GrantReq struct {
	App    AppID
	VA     uint64
	Bytes  uint64
	Target DeviceID
	Perm   uint8
}

func (*GrantReq) Kind() Kind { return KindGrantReq }
func (m *GrantReq) encode(w *writer) {
	w.u32(uint32(m.App))
	w.u64(m.VA)
	w.u64(m.Bytes)
	w.u16(uint16(m.Target))
	w.u8(m.Perm)
}
func (m *GrantReq) decode(r *reader) {
	m.App = AppID(r.u32())
	m.VA = r.u64()
	m.Bytes = r.u64()
	m.Target = DeviceID(r.u16())
	m.Perm = r.u8()
}

// GrantResp reports the outcome of a GrantReq.
type GrantResp struct {
	App    AppID
	OK     bool
	Reason string
	VA     uint64
	Target DeviceID
}

func (*GrantResp) Kind() Kind { return KindGrantResp }
func (m *GrantResp) encode(w *writer) {
	w.u32(uint32(m.App))
	w.bool(m.OK)
	w.str(m.Reason)
	w.u64(m.VA)
	w.u16(uint16(m.Target))
}
func (m *GrantResp) decode(r *reader) {
	m.App = AppID(r.u32())
	m.OK = r.bool()
	m.Reason = r.str()
	m.VA = r.u64()
	m.Target = DeviceID(r.u16())
}

// AuthReq is the bus's authorization query to the memory controller.
type AuthReq struct {
	App    AppID
	VA     uint64
	Bytes  uint64
	Target DeviceID
	Perm   uint8
	Nonce  uint32
}

func (*AuthReq) Kind() Kind { return KindAuthReq }
func (m *AuthReq) encode(w *writer) {
	w.u32(uint32(m.App))
	w.u64(m.VA)
	w.u64(m.Bytes)
	w.u16(uint16(m.Target))
	w.u8(m.Perm)
	w.u32(m.Nonce)
}
func (m *AuthReq) decode(r *reader) {
	m.App = AppID(r.u32())
	m.VA = r.u64()
	m.Bytes = r.u64()
	m.Target = DeviceID(r.u16())
	m.Perm = r.u8()
	m.Nonce = r.u32()
}

// AuthResp carries the controller's verdict and, when authorized, the
// physical frames backing [VA, VA+Bytes) so the bus can program the
// target IOMMU.
type AuthResp struct {
	App    AppID
	OK     bool
	Reason string
	VA     uint64
	Frames []uint64
	Perm   uint8
	Nonce  uint32
	// Huge marks Frames as 2 MiB run bases (see AllocResp).
	Huge bool
}

func (*AuthResp) Kind() Kind { return KindAuthResp }
func (m *AuthResp) encode(w *writer) {
	w.u32(uint32(m.App))
	w.bool(m.OK)
	w.str(m.Reason)
	w.u64(m.VA)
	w.u64s(m.Frames)
	w.u8(m.Perm)
	w.u32(m.Nonce)
	w.bool(m.Huge)
}
func (m *AuthResp) decode(r *reader) {
	m.App = AppID(r.u32())
	m.OK = r.bool()
	m.Reason = r.str()
	m.VA = r.u64()
	m.Frames = r.u64list()
	m.Perm = r.u8()
	m.Nonce = r.u32()
	m.Huge = r.bool()
}

// RevokeReq removes a previously granted mapping from Target.
type RevokeReq struct {
	App    AppID
	VA     uint64
	Bytes  uint64
	Target DeviceID
}

func (*RevokeReq) Kind() Kind { return KindRevokeReq }
func (m *RevokeReq) encode(w *writer) {
	w.u32(uint32(m.App))
	w.u64(m.VA)
	w.u64(m.Bytes)
	w.u16(uint16(m.Target))
}
func (m *RevokeReq) decode(r *reader) {
	m.App = AppID(r.u32())
	m.VA = r.u64()
	m.Bytes = r.u64()
	m.Target = DeviceID(r.u16())
}

// RevokeResp reports the outcome of a RevokeReq.
type RevokeResp struct {
	App    AppID
	OK     bool
	Reason string
}

func (*RevokeResp) Kind() Kind { return KindRevokeResp }
func (m *RevokeResp) encode(w *writer) {
	w.u32(uint32(m.App))
	w.bool(m.OK)
	w.str(m.Reason)
}
func (m *RevokeResp) decode(r *reader) {
	m.App = AppID(r.u32())
	m.OK = r.bool()
	m.Reason = r.str()
}

// LoadReq uploads a new application image via a device's loader service
// (§2.1). Token carries the §4 authentication credential.
type LoadReq struct {
	Image string
	Token uint64
	Data  []byte
}

func (*LoadReq) Kind() Kind { return KindLoadReq }
func (m *LoadReq) encode(w *writer) {
	w.str(m.Image)
	w.u64(m.Token)
	w.bytes(m.Data)
}
func (m *LoadReq) decode(r *reader) {
	m.Image = r.str()
	m.Token = r.u64()
	m.Data = r.bytesField()
}

// LoadResp reports the outcome of a LoadReq.
type LoadResp struct {
	Image  string
	OK     bool
	Reason string
}

func (*LoadResp) Kind() Kind { return KindLoadResp }
func (m *LoadResp) encode(w *writer) {
	w.str(m.Image)
	w.bool(m.OK)
	w.str(m.Reason)
}
func (m *LoadResp) decode(r *reader) {
	m.Image = r.str()
	m.OK = r.bool()
	m.Reason = r.str()
}

// FileIOReq is a kernel-mediated file operation (centralized baseline
// only): the app traps to the kernel, which performs the device I/O.
type FileIOReq struct {
	App    AppID
	Handle uint32 // kernel file handle from the mediated open
	Seq    uint32 // correlates responses
	Op     uint8  // smartssd.FileOp
	Off    uint64
	Len    uint32
	Data   []byte
}

func (*FileIOReq) Kind() Kind { return KindFileIOReq }
func (m *FileIOReq) encode(w *writer) {
	w.u32(uint32(m.App))
	w.u32(m.Handle)
	w.u32(m.Seq)
	w.u8(m.Op)
	w.u64(m.Off)
	w.u32(m.Len)
	w.bytes(m.Data)
}
func (m *FileIOReq) decode(r *reader) {
	m.App = AppID(r.u32())
	m.Handle = r.u32()
	m.Seq = r.u32()
	m.Op = r.u8()
	m.Off = r.u64()
	m.Len = r.u32()
	m.Data = r.bytesField()
}

// FileIOResp is the kernel's completion for a FileIOReq.
type FileIOResp struct {
	App    AppID
	Handle uint32
	Seq    uint32
	Status uint8 // smartssd.Status
	Size   uint64
	Data   []byte
}

func (*FileIOResp) Kind() Kind { return KindFileIOResp }
func (m *FileIOResp) encode(w *writer) {
	w.u32(uint32(m.App))
	w.u32(m.Handle)
	w.u32(m.Seq)
	w.u8(m.Status)
	w.u64(m.Size)
	w.bytes(m.Data)
}
func (m *FileIOResp) decode(r *reader) {
	m.App = AppID(r.u32())
	m.Handle = r.u32()
	m.Seq = r.u32()
	m.Status = r.u8()
	m.Size = r.u64()
	m.Data = r.bytesField()
}

// ErrorNotify tells a consumer that a resource it uses suffered a fatal
// error and is being reset (§4: "It must send a message to any consumer
// using that resource and then reset the resource").
type ErrorNotify struct {
	App      AppID
	Resource string
	Code     uint32
	Detail   string
}

func (*ErrorNotify) Kind() Kind { return KindErrorNotify }
func (m *ErrorNotify) encode(w *writer) {
	w.u32(uint32(m.App))
	w.str(m.Resource)
	w.u32(m.Code)
	w.str(m.Detail)
}
func (m *ErrorNotify) decode(r *reader) {
	m.App = AppID(r.u32())
	m.Resource = r.str()
	m.Code = r.u32()
	m.Detail = r.str()
}

// DeviceFailed is the bus's broadcast when a device dies (§4: "the
// resource bus must send messages to all other devices in the system that
// may be using a resource of the failed device").
type DeviceFailed struct{ Device DeviceID }

func (*DeviceFailed) Kind() Kind         { return KindDeviceFailed }
func (m *DeviceFailed) encode(w *writer) { w.u16(uint16(m.Device)) }
func (m *DeviceFailed) decode(r *reader) { m.Device = DeviceID(r.u16()) }

// NackCode classifies why the bus refused to deliver a message.
type NackCode uint8

// Nack codes.
const (
	NackUnknownDst   NackCode = iota + 1 // destination never attached
	NackDeadDst                          // destination marked failed
	NackUnauthorized                     // message violated a bus policy check
	NackUnknownKind                      // bus-addressed message it cannot handle
	NackOverload                         // receiver shed the message under load
)

// Nack tells a sender its message was not delivered (replacing the bus's
// previous silent drop, per §4's requirement that errors be reported to
// the parties involved). Of/Seq identify the refused envelope so the
// sender can correlate it with an in-flight request and retry early
// instead of waiting for its timeout.
type Nack struct {
	Of     Kind     // kind of the refused message
	Seq    uint32   // link-layer tag of the refused envelope
	Dst    DeviceID // where it was headed
	Code   NackCode
	Reason string
}

func (*Nack) Kind() Kind { return KindNack }
func (m *Nack) encode(w *writer) {
	w.u16(uint16(m.Of))
	w.u32(m.Seq)
	w.u16(uint16(m.Dst))
	w.u8(uint8(m.Code))
	w.str(m.Reason)
}
func (m *Nack) decode(r *reader) {
	m.Of = Kind(r.u16())
	m.Seq = r.u32()
	m.Dst = DeviceID(r.u16())
	m.Code = NackCode(r.u8())
	m.Reason = r.str()
}

// StateQuery asks the bus which of the querying device's resources
// survived its crash (§4 recovery). The bus alone keeps the management
// tables (ownerships, grants), so a revived device reconciles against
// the bus rather than polling every peer.
type StateQuery struct{ Nonce uint32 }

func (*StateQuery) Kind() Kind         { return KindStateQuery }
func (m *StateQuery) encode(w *writer) { w.u32(m.Nonce) }
func (m *StateQuery) decode(r *reader) { m.Nonce = r.u32() }

// OwnedRegion is one surviving allocation reported in a StateResp: an
// app region the queried device still owns, with the devices currently
// holding grants on it.
type OwnedRegion struct {
	App      AppID
	VA       uint64
	Pages    uint32 // 4 KiB units
	Huge     bool
	Grantees []DeviceID
}

// StateResp is the bus's answer to a StateQuery, listing the surviving
// regions in (app, va) order.
type StateResp struct {
	Nonce   uint32
	Regions []OwnedRegion
}

func (*StateResp) Kind() Kind { return KindStateResp }
func (m *StateResp) encode(w *writer) {
	w.u32(m.Nonce)
	w.u16(uint16(len(m.Regions)))
	for _, reg := range m.Regions {
		w.u32(uint32(reg.App))
		w.u64(reg.VA)
		w.u32(reg.Pages)
		w.bool(reg.Huge)
		w.u16(uint16(len(reg.Grantees)))
		for _, g := range reg.Grantees {
			w.u16(uint16(g))
		}
	}
}
func (m *StateResp) decode(r *reader) {
	m.Nonce = r.u32()
	n := int(r.u16())
	if r.err != nil || n > len(r.buf) {
		r.err = errShort // claimed count exceeds remaining bytes: bomb
		return
	}
	if n > 0 {
		m.Regions = make([]OwnedRegion, n)
		for i := range m.Regions {
			reg := &m.Regions[i]
			reg.App = AppID(r.u32())
			reg.VA = r.u64()
			reg.Pages = r.u32()
			reg.Huge = r.bool()
			g := int(r.u16())
			if r.err != nil || g > len(r.buf) {
				r.err = errShort
				return
			}
			if g > 0 {
				reg.Grantees = make([]DeviceID, g)
				for j := range reg.Grantees {
					reg.Grantees[j] = DeviceID(r.u16())
				}
			}
		}
	}
}

// CreditUpdate replenishes a sender's per-link credit window. The bus
// issues one after absorbing roughly half a window of the device's
// traffic; the port adds Credits to its balance and drains any stalled
// sends. Window echoes the configured window size so a freshly reset
// device can resynchronize its balance instead of accumulating stale
// credit.
// ForInc fences the replenishment to one life of the port: the bus
// stamps the recipient incarnation it is crediting, and a port drops an
// update stamped for a different incarnation with a typed refusal
// (StaleCreditDropped). Without the fence, a captured CreditUpdate from
// a previous incarnation replayed after the device's reset would
// silently inflate the new life's window beyond what the bus granted.
// Trailing optional, encoded only when nonzero, so never-crashed ports
// (incarnation 0) keep the legacy wire form byte-identical.
type CreditUpdate struct {
	Window  uint32 // configured window size (0 = flow control off)
	Credits uint32 // credits being returned
	ForInc  uint32 // recipient incarnation this credit was issued for
}

func (*CreditUpdate) Kind() Kind { return KindCreditUpdate }
func (m *CreditUpdate) encode(w *writer) {
	w.u32(m.Window)
	w.u32(m.Credits)
	if m.ForInc != 0 {
		w.u32(m.ForInc)
	}
}
func (m *CreditUpdate) decode(r *reader) {
	m.Window = r.u32()
	m.Credits = r.u32()
	if r.err == nil && r.off < len(r.buf) {
		m.ForInc = r.u32()
	}
}

// --- Rack-scale fabric messages (internal/fabric) ---
//
// Envelope Src/Dst carry machine addresses on the datacenter fabric
// here, not device addresses on a bus; the framing, codec and dedup
// machinery are shared.

// encodeDevs/decodeDevs frame a short machine list (dead-set gossip).
// The decoder inherits u16list's bomb guard: a claimed count larger
// than the remaining payload is refused without allocating.
func encodeDevs(w *writer, ds []DeviceID) {
	w.u16(uint16(len(ds)))
	for _, d := range ds {
		w.u16(uint16(d))
	}
}

func decodeDevs(r *reader) []DeviceID {
	raw := r.u16list()
	if raw == nil {
		return nil
	}
	out := make([]DeviceID, len(raw))
	for i, v := range raw {
		out[i] = DeviceID(v)
	}
	return out
}

// Fabric response codes (FabricResp.Code).
const (
	FabricServed      uint8 = iota // Payload holds the store's response
	FabricWrongOwner               // responder does not own the key in its view
	FabricUnavailable              // responder's store is not serving
)

// FabricReq is a client request routed across the fabric to the
// machine owning the key's shard. Origin is the machine holding the
// client connection (the responder answers it directly even when the
// request arrived via the head node), ReqID is origin-scoped, and
// Payload is the client's kvs request, forwarded verbatim.
type FabricReq struct {
	Origin  DeviceID
	ReqID   uint64
	Hops    uint8 // forwarding hops so far (loop guard)
	Payload []byte
}

func (*FabricReq) Kind() Kind { return KindFabricReq }
func (m *FabricReq) encode(w *writer) {
	w.u16(uint16(m.Origin))
	w.u64(m.ReqID)
	w.u8(m.Hops)
	w.bytes(m.Payload)
}
func (m *FabricReq) decode(r *reader) {
	m.Origin = DeviceID(r.u16())
	m.ReqID = r.u64()
	m.Hops = r.u8()
	m.Payload = r.bytesField()
}

// FabricResp answers a FabricReq. Dead piggybacks the responder's dead
// set so membership views converge with data traffic (anti-entropy
// gossip); a WrongOwner code tells the origin its ring view is stale
// and the Dead list is how it catches up before re-routing.
type FabricResp struct {
	ReqID   uint64
	Code    uint8
	Dead    []DeviceID
	Payload []byte
}

func (*FabricResp) Kind() Kind { return KindFabricResp }
func (m *FabricResp) encode(w *writer) {
	w.u64(m.ReqID)
	w.u8(m.Code)
	encodeDevs(w, m.Dead)
	w.bytes(m.Payload)
}
func (m *FabricResp) decode(r *reader) {
	m.ReqID = r.u64()
	m.Code = r.u8()
	m.Dead = decodeDevs(r)
	m.Payload = r.bytesField()
}

// Replicate carries one write from a key's primary to its backup.
// Seq is primary-assigned and strictly increasing per key; Epoch is the
// sender's membership epoch when the write was issued. The backup
// applies the record only if (Epoch, Seq) exceeds its per-key
// watermark, which is what makes duplicate delivery and post-failover
// stragglers harmless (R2). Sync marks a re-replication sweep record
// (restoring redundancy after a membership change) rather than a
// client write.
type Replicate struct {
	Epoch uint32
	Seq   uint64
	Del   bool
	Sync  bool
	Key   string
	Value []byte
}

func (*Replicate) Kind() Kind { return KindReplicate }
func (m *Replicate) encode(w *writer) {
	w.u32(m.Epoch)
	w.u64(m.Seq)
	w.bool(m.Del)
	w.bool(m.Sync)
	w.str(m.Key)
	w.bytes(m.Value)
}
func (m *Replicate) decode(r *reader) {
	m.Epoch = r.u32()
	m.Seq = r.u64()
	m.Del = r.bool()
	m.Sync = r.bool()
	m.Key = r.str()
	m.Value = r.bytesField()
}

// ReplicateAck confirms a Replicate is durable at the backup. The
// primary acknowledges the client only after this arrives (R1: a
// whole-machine kill of either replica loses no acked write). Epoch
// and Dead gossip the responder's membership view back, so a primary
// replicating to a machine with a newer view catches up immediately.
type ReplicateAck struct {
	Seq   uint64
	OK    bool
	Epoch uint32
	Dead  []DeviceID
}

func (*ReplicateAck) Kind() Kind { return KindReplicateAck }
func (m *ReplicateAck) encode(w *writer) {
	w.u64(m.Seq)
	w.bool(m.OK)
	w.u32(m.Epoch)
	encodeDevs(w, m.Dead)
}
func (m *ReplicateAck) decode(r *reader) {
	m.Seq = r.u64()
	m.OK = r.bool()
	m.Epoch = r.u32()
	m.Dead = decodeDevs(r)
}

// RingUpdate is the head node's membership broadcast (head-node flavor
// only): the authoritative epoch and dead set every machine must adopt.
// The decentralized flavor has no such authority — views converge by
// the gossip fields on data-path responses instead.
type RingUpdate struct {
	Epoch uint32
	Dead  []DeviceID
}

func (*RingUpdate) Kind() Kind { return KindRingUpdate }
func (m *RingUpdate) encode(w *writer) {
	w.u32(m.Epoch)
	encodeDevs(w, m.Dead)
}
func (m *RingUpdate) decode(r *reader) {
	m.Epoch = r.u32()
	m.Dead = decodeDevs(r)
}

// --- Fleet reconciliation messages (internal/reconcile) ---
//
// Like the fabric kinds above, these ride the Envelope framing with
// machine addresses. They are the management-bus vocabulary of the
// fleet reconciler: desired state gossips between per-NIC reconcilers,
// machines report status conditions, and planned membership change is
// a prepare/commit protocol over ring configurations.

// RingConfig phases (RingConfig.Phase).
const (
	RingPrepare uint8 = iota + 1 // stage the new membership; start key transfer
	RingCommit                   // every transfer done: atomically adopt the ring
	RingAbort                    // a participant died mid-transition; drop the staging
)

// Drain modes (Drain.Mode).
const (
	DrainCordon   uint8 = iota + 1 // stop accepting new client ingress
	DrainUncordon                  // resume client ingress
	DrainUpgrade                   // flash ConfigVersion and report back when done
)

// SpecGossip carries the declared fleet spec between reconcilers. The
// decentralized flavor gossips it peer-to-peer so every machine knows
// the goal state and any live machine can act on it; the head-node
// flavor hands it to the head alone. SpecVer orders revisions: a
// receiver adopts a spec only if SpecVer exceeds what it holds.
type SpecGossip struct {
	SpecVer        uint64
	Size           uint16 // desired in-ring machine count
	ConfigVersion  uint32 // desired config/firmware version on every member
	MaxUnavailable uint8  // disruption budget for voluntary actions
}

func (*SpecGossip) Kind() Kind { return KindSpecGossip }
func (m *SpecGossip) encode(w *writer) {
	w.u64(m.SpecVer)
	w.u16(m.Size)
	w.u32(m.ConfigVersion)
	w.u8(m.MaxUnavailable)
}
func (m *SpecGossip) decode(r *reader) {
	m.SpecVer = r.u64()
	m.Size = r.u16()
	m.ConfigVersion = r.u32()
	m.MaxUnavailable = r.u8()
}

// CondReport is one machine's status-condition report (machine-
// controller style): readiness, cordon/upgrade state, the config and
// ring versions it runs, and — when TransferVer is nonzero — the
// completion notice for a staged ring transition's key transfer.
type CondReport struct {
	Seq           uint64
	Ready         bool
	Cordoned      bool
	Upgrading     bool
	ConfigVersion uint32
	RingVer       uint32
	PendingVer    uint32 // staged-but-uncommitted ring version (0: none)
	TransferVer   uint32 // nonzero: transfer for this staged ring version is done
	Keys          uint32 // local shard size (status detail)
}

func (*CondReport) Kind() Kind { return KindCondReport }
func (m *CondReport) encode(w *writer) {
	w.u64(m.Seq)
	w.bool(m.Ready)
	w.bool(m.Cordoned)
	w.bool(m.Upgrading)
	w.u32(m.ConfigVersion)
	w.u32(m.RingVer)
	w.u32(m.PendingVer)
	w.u32(m.TransferVer)
	w.u32(m.Keys)
}
func (m *CondReport) decode(r *reader) {
	m.Seq = r.u64()
	m.Ready = r.bool()
	m.Cordoned = r.bool()
	m.Upgrading = r.bool()
	m.ConfigVersion = r.u32()
	m.RingVer = r.u32()
	m.PendingVer = r.u32()
	m.TransferVer = r.u32()
	m.Keys = r.u32()
}

// Drain is the reconciler's order to one machine: cordon (stop taking
// client traffic), uncordon, or upgrade to ConfigVersion (legal only
// while the machine is out of the ring, so flashing never races
// serving). An unknown mode is ignored by the receiver.
type Drain struct {
	Mode          uint8
	ConfigVersion uint32
}

func (*Drain) Kind() Kind { return KindDrain }
func (m *Drain) encode(w *writer) {
	w.u8(m.Mode)
	w.u32(m.ConfigVersion)
}
func (m *Drain) decode(r *reader) {
	m.Mode = r.u8()
	m.ConfigVersion = r.u32()
}

// RingConfig is the membership-change protocol frame. Prepare stages
// Members as ring version Ver and starts the key transfer (each current
// primary re-replicates the keys whose owner set changes); Commit
// atomically adopts the staged ring; Abort drops it. Ver is strictly
// increasing per cluster, and a router ignores any phase for a version
// at or below the one it already runs, which makes every phase
// idempotent under duplication.
type RingConfig struct {
	Ver     uint32
	Phase   uint8
	Members []DeviceID
}

func (*RingConfig) Kind() Kind { return KindRingConfig }
func (m *RingConfig) encode(w *writer) {
	w.u32(m.Ver)
	w.u8(m.Phase)
	encodeDevs(w, m.Members)
}
func (m *RingConfig) decode(r *reader) {
	m.Ver = r.u32()
	m.Phase = r.u8()
	m.Members = decodeDevs(r)
}

// --- Multi-tenancy messages (internal/tenant) ---

// TenantGrant binds a device and/or an app to a tenant isolation
// domain, optionally declaring the tenant's budgets. It is the
// provisioning message of the tenancy layer: the bus applies it to its
// attached registry, after which the per-device domain checks, the
// per-tenant credit window, and the KVS admission budget all enforce
// the binding. A zero Device or App field leaves that binding untouched
// (a grant may bind only one of the two).
type TenantGrant struct {
	Tenant       uint16 // tenant domain (0 is invalid)
	Device       uint16 // device to bind (0: none)
	App          uint32 // app/PASID to bind (0: none)
	CreditWindow uint32 // per-tenant bus credit window (0: inherit global)
	KVSInflight  uint32 // per-tenant KVS admission budget (0: inherit global)
	RxBound      uint32 // per-tenant NIC rx-queue share (0: inherit global)
}

func (*TenantGrant) Kind() Kind { return KindTenantGrant }
func (m *TenantGrant) encode(w *writer) {
	w.u16(m.Tenant)
	w.u16(m.Device)
	w.u32(m.App)
	w.u32(m.CreditWindow)
	w.u32(m.KVSInflight)
	w.u32(m.RxBound)
}
func (m *TenantGrant) decode(r *reader) {
	m.Tenant = r.u16()
	m.Device = r.u16()
	m.App = r.u32()
	m.CreditWindow = r.u32()
	m.KVSInflight = r.u32()
	m.RxBound = r.u32()
}

// DenialReport is the typed refusal of a cross-tenant access: the
// tenancy invariant S1 demands that no attack is ever silently dropped,
// so the enforcement point (bus, IOMMU front-end, KVS admission) both
// records the denial in the registry and reports it to the offender.
// Tenant is the attributed attacker, Victim the domain it targeted
// (0 when the target was infrastructure rather than a tenant), Of the
// refused message kind (KindInvalid for DMA-level denials).
type DenialReport struct {
	Tenant uint16 // attacking tenant (attribution, S3)
	Victim uint16 // targeted tenant (0: infrastructure)
	Class  uint8  // tenant.Denial class (see internal/tenant)
	Of     uint16 // refused msg.Kind, as a raw discriminator
	Detail string
}

func (*DenialReport) Kind() Kind { return KindDenialReport }
func (m *DenialReport) encode(w *writer) {
	w.u16(m.Tenant)
	w.u16(m.Victim)
	w.u8(m.Class)
	w.u16(m.Of)
	w.str(m.Detail)
}
func (m *DenialReport) decode(r *reader) {
	m.Tenant = r.u16()
	m.Victim = r.u16()
	m.Class = r.u8()
	m.Of = r.u16()
	m.Detail = r.str()
}

// LeaseRenew asks every current ring member to countersign the sender's
// machine lease for one round. Seq identifies the round (strictly
// increasing per holder; stale grants are discarded by Seq); Until is
// the virtual-clock expiry the holder will assume once a quorum
// countersigns.
type LeaseRenew struct {
	Seq   uint64
	Until uint64 // sim.Time, as raw nanoseconds
}

func (*LeaseRenew) Kind() Kind { return KindLeaseRenew }
func (m *LeaseRenew) encode(w *writer) {
	w.u64(m.Seq)
	w.u64(m.Until)
}
func (m *LeaseRenew) decode(r *reader) {
	m.Seq = r.u64()
	m.Until = r.u64()
}

// LeaseGrant countersigns one renewal round. Until echoes the renew's
// expiry: the grantor promises not to treat the holder as replaceable
// before that virtual time unless its own view declares the holder dead
// first (in which case it stops granting — dead sets never shrink).
type LeaseGrant struct {
	Seq   uint64
	Until uint64 // sim.Time, as raw nanoseconds
}

func (*LeaseGrant) Kind() Kind { return KindLeaseGrant }
func (m *LeaseGrant) encode(w *writer) {
	w.u64(m.Seq)
	w.u64(m.Until)
}
func (m *LeaseGrant) decode(r *reader) {
	m.Seq = r.u64()
	m.Until = r.u64()
}

// LeaseRevoke is the typed refusal of a renewal round: the grantor's
// membership view already holds the would-be holder dead, so it will
// never countersign again. Dead carries the refuser's dead set — the
// fenced machine learns why it lost its lease (and converges toward
// the majority view) instead of renewing into silence forever.
type LeaseRevoke struct {
	Seq  uint64
	Dead []DeviceID
}

func (*LeaseRevoke) Kind() Kind { return KindLeaseRevoke }
func (m *LeaseRevoke) encode(w *writer) {
	w.u64(m.Seq)
	encodeDevs(w, m.Dead)
}
func (m *LeaseRevoke) decode(r *reader) {
	m.Seq = r.u64()
	m.Dead = decodeDevs(r)
}

// newMessage returns a zero value of the message type for kind, or nil
// for an unknown kind.
func newMessage(k Kind) Message {
	switch k {
	case KindHello:
		return &Hello{}
	case KindHelloAck:
		return &HelloAck{}
	case KindHeartbeat:
		return &Heartbeat{}
	case KindReset:
		return &Reset{}
	case KindResetDone:
		return &ResetDone{}
	case KindDiscoverReq:
		return &DiscoverReq{}
	case KindDiscoverResp:
		return &DiscoverResp{}
	case KindOpenReq:
		return &OpenReq{}
	case KindOpenResp:
		return &OpenResp{}
	case KindConnectReq:
		return &ConnectReq{}
	case KindConnectResp:
		return &ConnectResp{}
	case KindCloseReq:
		return &CloseReq{}
	case KindCloseResp:
		return &CloseResp{}
	case KindAllocReq:
		return &AllocReq{}
	case KindAllocResp:
		return &AllocResp{}
	case KindFreeReq:
		return &FreeReq{}
	case KindFreeResp:
		return &FreeResp{}
	case KindGrantReq:
		return &GrantReq{}
	case KindGrantResp:
		return &GrantResp{}
	case KindAuthReq:
		return &AuthReq{}
	case KindAuthResp:
		return &AuthResp{}
	case KindRevokeReq:
		return &RevokeReq{}
	case KindRevokeResp:
		return &RevokeResp{}
	case KindLoadReq:
		return &LoadReq{}
	case KindLoadResp:
		return &LoadResp{}
	case KindFileIOReq:
		return &FileIOReq{}
	case KindFileIOResp:
		return &FileIOResp{}
	case KindErrorNotify:
		return &ErrorNotify{}
	case KindDeviceFailed:
		return &DeviceFailed{}
	case KindNack:
		return &Nack{}
	case KindStateQuery:
		return &StateQuery{}
	case KindStateResp:
		return &StateResp{}
	case KindCreditUpdate:
		return &CreditUpdate{}
	case KindFabricReq:
		return &FabricReq{}
	case KindFabricResp:
		return &FabricResp{}
	case KindReplicate:
		return &Replicate{}
	case KindReplicateAck:
		return &ReplicateAck{}
	case KindRingUpdate:
		return &RingUpdate{}
	case KindSpecGossip:
		return &SpecGossip{}
	case KindCondReport:
		return &CondReport{}
	case KindDrain:
		return &Drain{}
	case KindRingConfig:
		return &RingConfig{}
	case KindTenantGrant:
		return &TenantGrant{}
	case KindDenialReport:
		return &DenialReport{}
	case KindLeaseRenew:
		return &LeaseRenew{}
	case KindLeaseGrant:
		return &LeaseGrant{}
	case KindLeaseRevoke:
		return &LeaseRevoke{}
	}
	return nil
}
