package msg

// DedupWindow suppresses duplicate envelopes by their link-layer
// sequence tag. Each sender stamps outgoing envelopes from a private
// monotonic counter; a receiver keeps one window per peer and discards
// any tag it has already seen. Because a faulty fabric replays the
// identical envelope (same tag) while a genuine retransmission is a new
// send (fresh tag), the filter removes injected duplicates without ever
// eating a retry.
//
// The window is a 64-bit bitmap trailing the highest tag seen, so severe
// reordering beyond 64 messages in flight counts as a duplicate; control
// traffic never gets near that depth, and a wrongly suppressed request
// is recovered by the sender's timeout/retry anyway.
type DedupWindow struct {
	peers map[DeviceID]*seqWindow
}

type seqWindow struct {
	max  uint32 // highest tag seen
	bits uint64 // bit i set => tag max-i seen
}

// Duplicate reports whether (src, seq) was already seen, recording it if
// not. Tag 0 means the envelope is untagged and is never suppressed.
func (d *DedupWindow) Duplicate(src DeviceID, seq uint32) bool {
	if seq == 0 {
		return false
	}
	if d.peers == nil {
		d.peers = make(map[DeviceID]*seqWindow)
	}
	w := d.peers[src]
	if w == nil {
		d.peers[src] = &seqWindow{max: seq, bits: 1}
		return false
	}
	switch {
	case seq > w.max:
		shift := uint64(seq - w.max)
		if shift >= 64 {
			w.bits = 0
		} else {
			w.bits <<= shift
		}
		w.bits |= 1
		w.max = seq
		return false
	case w.max-seq >= 64:
		return true // fell off the window: treat as stale duplicate
	default:
		bit := uint64(1) << (w.max - seq)
		if w.bits&bit != 0 {
			return true
		}
		w.bits |= bit
		return false
	}
}

// Forget drops the window for src (e.g. after the peer resets and its
// counter restarts).
func (d *DedupWindow) Forget(src DeviceID) {
	delete(d.peers, src)
}
