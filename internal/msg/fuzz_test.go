package msg

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the wire decoder. Two properties:
//
//  1. Decode never panics and never over-allocates (the u64list bomb
//     guard) — any input either yields an envelope or an error.
//  2. Anything that decodes re-encodes to an envelope that decodes to
//     the same value (decode→encode→decode fixpoint). Byte-identity is
//     deliberately NOT required: the codec may canonicalize (e.g. a
//     truncated-then-padded string length), but the value must be
//     stable.
//
// The seed corpus in testdata/fuzz/FuzzDecode covers every message kind
// including Nack and the sequence-tagged header.
func FuzzDecode(f *testing.F) {
	for _, m := range allMessages() {
		f.Add(Envelope{Src: 1, Dst: 2, Seq: 9, Msg: m}.Encode())
	}
	// Adversarial seeds: empty, short header, bad kind, length bomb.
	f.Add([]byte{})
	f.Add([]byte{1, 0, 2, 0})
	f.Add([]byte{1, 0, 2, 0, 0xEE, 0xEE, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 32))
	// New wire forms: a rejoin Hello carrying its trailing incarnation
	// field, and a state-reconciliation answer with grantee lists.
	f.Add(Envelope{Src: 1, Dst: BusID, Seq: 2, Inc: 1,
		Msg: &Hello{Role: RoleNIC, Name: "nic0", Incarnation: 1}}.Encode())
	f.Add(Envelope{Src: BusID, Dst: 1, Seq: 3,
		Msg: &StateResp{Nonce: 1, Regions: []OwnedRegion{{App: 1, VA: 0x1000, Pages: 1, Grantees: []DeviceID{2}}}}}.Encode())

	f.Fuzz(func(t *testing.T, b []byte) {
		env, err := Decode(b)
		if err != nil {
			return
		}
		again, err2 := Decode(env.Encode())
		if err2 != nil {
			t.Fatalf("re-decode of valid envelope failed: %v", err2)
		}
		if again.Src != env.Src || again.Dst != env.Dst || again.Seq != env.Seq || again.Inc != env.Inc {
			t.Fatalf("header not stable: %+v vs %+v", again, env)
		}
		if !reflect.DeepEqual(again.Msg, env.Msg) {
			t.Fatalf("message not stable:\n got %+v\nwant %+v", again.Msg, env.Msg)
		}
	})
}
