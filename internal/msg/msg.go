// Package msg defines the system-management-bus protocol of the CPU-less
// machine: device and application identifiers, the message vocabulary of
// §2.2/§3 of "The Last CPU", and a compact binary wire encoding.
//
// The protocol carries only control traffic — discovery, service open,
// memory allocation/grant, lifecycle and error notifications. Data moves
// over the interconnect (DMA + virtqueues), never over the bus.
//
// Messages are encoded to bytes on send: the bus charges transfer time by
// encoded size, and the codec is round-trip tested, so the protocol is a
// real wire format rather than passed Go pointers.
package msg

import "fmt"

// DeviceID addresses a device on the system bus. 0 is invalid.
type DeviceID uint16

// Broadcast addresses every alive device (discovery, failure notices).
const Broadcast DeviceID = 0xFFFF

// BusID is the well-known address of the system bus itself.
const BusID DeviceID = 0xFFFE

func (d DeviceID) String() string {
	switch d {
	case Broadcast:
		return "broadcast"
	case BusID:
		return "bus"
	default:
		return fmt.Sprintf("dev%d", uint16(d))
	}
}

// AppID identifies an application. Per §2.2, "what uniquely identifies
// [an application] is its virtual address space": AppID doubles as the
// PASID under which the app's address space is instantiated in each
// participating device's IOMMU. 0 is invalid.
type AppID uint32

// Role describes what a device is, which the bus needs for its few
// policy-free authorization checks (only the registered memory controller
// may authorize mappings).
type Role uint8

// Device roles.
const (
	RoleAccelerator Role = iota + 1
	RoleMemoryController
	RoleStorage
	RoleNIC
)

func (r Role) String() string {
	switch r {
	case RoleAccelerator:
		return "accelerator"
	case RoleMemoryController:
		return "memctrl"
	case RoleStorage:
		return "storage"
	case RoleNIC:
		return "nic"
	}
	return fmt.Sprintf("role(%d)", uint8(r))
}

// Kind discriminates message types on the wire.
type Kind uint16

// Message kinds. The groups mirror the paper: lifecycle (§2.2 "System
// Initialization"), discovery (SSDP-like), service sessions (§3 steps
// 1-4, 7), memory management (§3 steps 5-6), and error handling (§4).
const (
	KindInvalid Kind = iota

	// Lifecycle.
	KindHello     // device → bus: self-test passed, record me alive
	KindHelloAck  // bus → device
	KindHeartbeat // device → bus: watchdog keep-alive
	KindReset     // bus → device: attempt restart after failure
	KindResetDone // device → bus: back up after reset

	// Discovery.
	KindDiscoverReq  // device → broadcast: who provides this service?
	KindDiscoverResp // provider → requester

	// Service sessions.
	KindOpenReq     // requester → provider: open service instance (+token)
	KindOpenResp    // provider → requester: connection details + shm size
	KindConnectReq  // requester → provider: virtqueue layout in shared VA
	KindConnectResp // provider → requester
	KindCloseReq    // requester → provider
	KindCloseResp   // provider → requester

	// Memory management.
	KindAllocReq  // device → memctrl: allocate shared memory for app at VA
	KindAllocResp // memctrl → device; bus intercepts and programs IOMMU
	KindFreeReq   // device → memctrl
	KindFreeResp  // memctrl → device; bus unmaps
	KindGrantReq  // device → bus: grant my app mapping to another device
	KindGrantResp // bus → device
	KindAuthReq   // bus → memctrl: is this grant authorized?
	KindAuthResp  // memctrl → bus
	KindRevokeReq // device → bus: revoke a previous grant
	KindRevokeResp

	// Loader service (§2.1: devices storing applications internally must
	// expose a loader).
	KindLoadReq
	KindLoadResp

	// Kernel-mediated file I/O (used only by the centralized-CPU
	// baseline: the app's data path is a syscall to the kernel, which
	// performs the device I/O on its behalf — the "traditional stack"
	// the paper argues against).
	KindFileIOReq
	KindFileIOResp

	// Errors (§4).
	KindErrorNotify  // device → consumers: resource suffered a fatal error
	KindDeviceFailed // bus → broadcast: a device died
	KindNack         // bus → sender: your message could not be delivered

	// Crash recovery (§4). A device revived by a bus Reset asks the bus
	// which of its resources survived the outage; the bus answers from
	// its management tables (ownerships and grants are bus state, so no
	// other device needs to be consulted).
	KindStateQuery // revived device → bus: which of my regions survived?
	KindStateResp  // bus → device: surviving regions and their grantees

	// Flow control. The bus replenishes a sender's per-link credit
	// window after absorbing its traffic; a sender out of credits stalls
	// deterministically instead of queueing unboundedly (overload
	// resilience — the performance-isolation half of the paper's §2
	// claim made mechanical).
	KindCreditUpdate // bus → device: window replenishment

	// Rack-scale fabric (internal/fabric). N machines joined by a modeled
	// datacenter network run a sharded, replicated KVS; these kinds carry
	// the cross-machine traffic. They reuse the bus Envelope framing —
	// Src/Dst are machine addresses on the fabric rather than device
	// addresses on a bus — so the codec, fuzz corpus and dedup window all
	// apply unchanged.
	KindFabricReq    // ingress router → shard owner: routed client request
	KindFabricResp   // shard owner → ingress router: routed response
	KindReplicate    // primary → backup: apply one write
	KindReplicateAck // backup → primary: write is durable at the replica
	KindRingUpdate   // head node → all machines: membership epoch + dead set

	// Fleet reconciliation (internal/reconcile). The management-plane
	// vocabulary of the level-triggered fleet reconciler: declared specs
	// gossip between machines, machines report status conditions, and
	// planned membership change runs as a prepare/commit protocol over
	// staged ring configurations. Like the fabric kinds, Src/Dst are
	// machine addresses.
	KindSpecGossip // reconciler → machines: declared fleet spec (versioned)
	KindCondReport // machine → reconciler: status conditions + transfer done
	KindDrain      // reconciler → machine: cordon / uncordon / upgrade order
	KindRingConfig // coordinator → machines: staged membership (prepare/commit/abort)

	// Multi-tenancy (internal/tenant). TenantGrant binds a device or app
	// to a tenant isolation domain (with optional per-tenant budgets);
	// DenialReport is the typed, attributed refusal every cross-tenant
	// attack receives — the S1 invariant ("never silently dropped") made
	// a wire message so the attacker provably observed a refusal.
	KindTenantGrant  // provisioner → bus: bind device/app to a tenant domain
	KindDenialReport // bus/device → offender: typed cross-tenant refusal

	// Epoch leases (internal/fabric). A machine may serve as primary (or
	// act as the reconcile actor) only while holding a virtual-clock
	// lease countersigned by a quorum of the ring membership. Renew asks
	// every member to countersign one round; Grant is the countersign;
	// Revoke is the typed refusal a member sends when its view already
	// holds the would-be holder dead — carrying that dead set, so a
	// fenced machine learns why it was fenced instead of timing out in
	// the dark. Src/Dst are machine addresses.
	KindLeaseRenew  // holder → ring members: countersign my lease for this round
	KindLeaseGrant  // member → holder: countersigned until the stated virtual time
	KindLeaseRevoke // member → holder: refused — my view holds you dead

	kindMax
)

var kindNames = map[Kind]string{
	KindHello: "hello", KindHelloAck: "hello.ack", KindHeartbeat: "heartbeat",
	KindReset: "reset", KindResetDone: "reset.done",
	KindDiscoverReq: "discover.req", KindDiscoverResp: "discover.resp",
	KindOpenReq: "open.req", KindOpenResp: "open.resp",
	KindConnectReq: "connect.req", KindConnectResp: "connect.resp",
	KindCloseReq: "close.req", KindCloseResp: "close.resp",
	KindAllocReq: "alloc.req", KindAllocResp: "alloc.resp",
	KindFreeReq: "free.req", KindFreeResp: "free.resp",
	KindGrantReq: "grant.req", KindGrantResp: "grant.resp",
	KindAuthReq: "auth.req", KindAuthResp: "auth.resp",
	KindRevokeReq: "revoke.req", KindRevokeResp: "revoke.resp",
	KindLoadReq: "load.req", KindLoadResp: "load.resp",
	KindFileIOReq: "fileio.req", KindFileIOResp: "fileio.resp",
	KindErrorNotify: "error.notify", KindDeviceFailed: "device.failed",
	KindNack:       "nack",
	KindStateQuery: "state.query", KindStateResp: "state.resp",
	KindCreditUpdate: "credit.update",
	KindFabricReq:    "fabric.req", KindFabricResp: "fabric.resp",
	KindReplicate: "replicate", KindReplicateAck: "replicate.ack",
	KindRingUpdate: "ring.update",
	KindSpecGossip: "spec.gossip", KindCondReport: "cond.report",
	KindDrain: "drain", KindRingConfig: "ring.config",
	KindTenantGrant: "tenant.grant", KindDenialReport: "denial.report",
	KindLeaseRenew: "lease.renew", KindLeaseGrant: "lease.grant",
	KindLeaseRevoke: "lease.revoke",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint16(k))
}

// Message is any bus message body.
type Message interface {
	Kind() Kind
	encode(w *writer)
	decode(r *reader)
}

// Envelope is a routed message.
//
// Seq is a link-layer sequence tag stamped by the sending port (0 means
// untagged). Receivers use it to suppress duplicates the fabric may
// inject (see DedupWindow); retransmitted requests carry fresh tags and
// rely on application-level idempotency instead.
//
// Inc is the sender's incarnation (boot count), also stamped by the
// port. A device revived after a crash bumps its incarnation, letting
// the bus fence any of the previous life's messages still in flight —
// their payloads may describe state that died with the old incarnation.
// 0 means the sender has never crashed.
type Envelope struct {
	Src DeviceID
	Dst DeviceID
	Seq uint32
	Inc uint32
	Msg Message
}

// Encode serializes the envelope: header (src, dst, kind, payload length,
// sequence tag, incarnation) followed by the payload.
func (e Envelope) Encode() []byte {
	var pw writer
	e.Msg.encode(&pw)
	var w writer
	w.u16(uint16(e.Src))
	w.u16(uint16(e.Dst))
	w.u16(uint16(e.Msg.Kind()))
	w.u32(uint32(len(pw.buf)))
	w.u32(e.Seq)
	w.u32(e.Inc)
	w.buf = append(w.buf, pw.buf...)
	return w.buf
}

// Decode parses an envelope produced by Encode.
func Decode(b []byte) (Envelope, error) {
	r := reader{buf: b}
	src := DeviceID(r.u16())
	dst := DeviceID(r.u16())
	kind := Kind(r.u16())
	n := r.u32()
	seq := r.u32()
	inc := r.u32()
	if r.err != nil {
		return Envelope{}, fmt.Errorf("msg: short header: %w", r.err)
	}
	if int(n) != len(r.buf)-r.off {
		return Envelope{}, fmt.Errorf("msg: payload length %d does not match remaining %d bytes", n, len(r.buf)-r.off)
	}
	m := newMessage(kind)
	if m == nil {
		return Envelope{}, fmt.Errorf("msg: unknown kind %d", kind)
	}
	m.decode(&r)
	if r.err != nil {
		return Envelope{}, fmt.Errorf("msg: decoding %v: %w", kind, r.err)
	}
	if r.off != len(r.buf) {
		return Envelope{}, fmt.Errorf("msg: %d trailing bytes after %v", len(r.buf)-r.off, kind)
	}
	return Envelope{Src: src, Dst: dst, Seq: seq, Inc: inc, Msg: m}, nil
}

// EncodedSize returns the wire size a message is charged for in
// transfer-time accounting. The link-layer sequence tag and incarnation
// stamp are excluded — like an Ethernet preamble they are fabric
// framing, not payload — so bus timing is independent of whether ports
// stamp tags.
func EncodedSize(m Message) int {
	var w writer
	m.encode(&w)
	return len(w.buf) + 10 // header minus the link-layer seq + inc tags
}
