package msg

// Regenerates the FuzzDecode seed corpus under testdata/fuzz/FuzzDecode.
// The corpus stores raw wire bytes, so any envelope-header change (such
// as the incarnation stamp) invalidates the per-kind seeds; run
//
//	NOCPU_REGEN_CORPUS=1 go test -run TestRegenerateFuzzCorpus ./internal/msg
//
// after a wire-format change and commit the result. The format-agnostic
// adversarial seeds (empty input, short header, unknown kind) are
// regenerated too so the whole directory stays reproducible from this
// one function.

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func corpusEntry(b []byte) string {
	return "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
}

func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("NOCPU_REGEN_CORPUS") == "" {
		t.Skip("set NOCPU_REGEN_CORPUS=1 to rewrite testdata/fuzz/FuzzDecode")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, b []byte) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(corpusEntry(b)), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// One valid encoding per message kind, from the round-trip fixtures.
	for i, m := range allMessages() {
		env := Envelope{Src: 1, Dst: 2, Seq: 9, Inc: 1, Msg: m}
		write(fmt.Sprintf("seed-%02d-%s", i, m.Kind()), env.Encode())
	}

	// Adversarial seeds: structurally interesting inputs the mutator
	// should start from.
	write("seed-nack-of-nack", Envelope{Src: 1, Dst: 2, Seq: 3,
		Msg: &Nack{Of: KindNack, Seq: 2, Dst: 3, Code: NackDeadDst, Reason: "nacked nack"}}.Encode())

	// A Nack whose reason-string length claims more bytes than exist
	// (payload-length field adjusted to match, so the string reader is
	// what fails).
	{
		var pw writer
		pw.u16(uint16(KindOpenReq))
		pw.u32(7)
		pw.u16(4)
		pw.u8(uint8(NackDeadDst))
		pw.u16(200) // reason claims 200 bytes...
		pw.buf = append(pw.buf, []byte("shrt")...)
		var w writer
		w.u16(1)
		w.u16(2)
		w.u16(uint16(KindNack))
		w.u32(uint32(len(pw.buf)))
		w.u32(0)
		w.u32(0)
		w.buf = append(w.buf, pw.buf...)
		write("seed-nack-truncated", w.buf)
	}

	write("seed-heartbeat-maxseq", Envelope{Src: 1, Dst: BusID, Seq: 0xFFFFFFFF, Inc: 0xFFFFFFFF,
		Msg: &Heartbeat{Seq: ^uint64(0)}}.Encode())

	{
		long := make([]byte, 300)
		for i := range long {
			long[i] = 'r'
		}
		write("seed-reset-longreason", Envelope{Src: BusID, Dst: 4, Seq: 1,
			Msg: &Reset{Reason: string(long)}}.Encode())
	}

	write("seed-resetdone-trailing", append(Envelope{Src: 4, Dst: BusID, Seq: 1, Inc: 2,
		Msg: &ResetDone{}}.Encode(), 0xAA))

	// New-form adversarial seeds (incarnation field, state reconciliation).
	// A Hello whose trailing incarnation field is truncated mid-u32: the
	// payload length admits 2 extra bytes, the optional-field reader wants 4.
	{
		var pw writer
		pw.u8(uint8(RoleNIC))
		pw.str("nic0")
		pw.u16(0)
		pw.buf = append(pw.buf, 0x02, 0x00) // half an incarnation
		var w writer
		w.u16(1)
		w.u16(uint16(BusID))
		w.u16(uint16(KindHello))
		w.u32(uint32(len(pw.buf)))
		w.u32(1)
		w.u32(1)
		w.buf = append(w.buf, pw.buf...)
		write("seed-hello-inc-truncated", w.buf)
	}

	// A StateResp claiming 0xFFF0 regions in a 6-byte payload: the
	// region-count bomb guard must refuse without allocating.
	{
		var pw writer
		pw.u32(1)
		pw.u16(0xFFF0)
		var w writer
		w.u16(uint16(BusID))
		w.u16(3)
		w.u16(uint16(KindStateResp))
		w.u32(uint32(len(pw.buf)))
		w.u32(0)
		w.u32(0)
		w.buf = append(w.buf, pw.buf...)
		write("seed-stateresp-bomb", w.buf)
	}

	// Flow-control adversarial seeds (credit-update and shed-NACK kinds).
	// An overload shed propagated as a typed NACK.
	write("seed-nack-overload", Envelope{Src: BusID, Dst: 4, Seq: 5,
		Msg: &Nack{Of: KindOpenReq, Seq: 12, Dst: 6, Code: NackOverload, Reason: "ingress bound"}}.Encode())

	// A CreditUpdate truncated mid-field: payload length admits 6 bytes,
	// the two-u32 body wants 8.
	{
		var pw writer
		pw.u32(32)
		pw.buf = append(pw.buf, 0x10, 0x00) // half a credit count
		var w writer
		w.u16(uint16(BusID))
		w.u16(4)
		w.u16(uint16(KindCreditUpdate))
		w.u32(uint32(len(pw.buf)))
		w.u32(0)
		w.u32(0)
		w.buf = append(w.buf, pw.buf...)
		write("seed-credit-truncated", w.buf)
	}

	// A CreditUpdate whose credit count overflows any sane window: the
	// port must saturate at the window, not wrap its balance.
	write("seed-credit-overflow", Envelope{Src: BusID, Dst: 4, Seq: 6,
		Msg: &CreditUpdate{Window: 0xFFFFFFFF, Credits: 0xFFFFFFFF}}.Encode())

	// Fabric adversarial seeds (routed/replicated KVS wire kinds).
	// A routed request whose payload is a well-formed kvs put for a key
	// the addressed machine does not own: decode must succeed (ownership
	// is the router's judgment, not the codec's) and the responder answers
	// FabricWrongOwner. Seeding it gives the mutator the full two-layer
	// framing to chew on.
	write("seed-fabric-wrongshard", Envelope{Src: 3, Dst: 7, Seq: 21, Inc: 1,
		Msg: &FabricReq{Origin: 3, ReqID: 404, Payload: []byte{
			2,    // kvs OpPut
			9, 0, // keyLen 9
			'k', 'e', 'y', '-', '0', '0', '0', '4', '2',
			2, 0, 0, 0, // valLen 2
			0xAB, 0xCD,
		}}}.Encode())

	// A Replicate whose key-string length claims more bytes than the
	// payload holds (payload-length header adjusted to match, so the
	// string reader is what must refuse).
	{
		var pw writer
		pw.u32(1) // epoch
		pw.u64(9) // seq
		pw.bool(false)
		pw.bool(false)
		pw.u16(200) // key claims 200 bytes...
		pw.buf = append(pw.buf, []byte("key")...)
		var w writer
		w.u16(1)
		w.u16(2)
		w.u16(uint16(KindReplicate))
		w.u32(uint32(len(pw.buf)))
		w.u32(0)
		w.u32(0)
		w.buf = append(w.buf, pw.buf...)
		write("seed-replicate-truncated", w.buf)
	}

	// A ReplicateAck truncated mid-epoch: seq and OK flag present, the
	// trailing u32 cut to 2 bytes.
	{
		var pw writer
		pw.u64(77)
		pw.bool(true)
		pw.buf = append(pw.buf, 0x02, 0x00) // half an epoch
		var w writer
		w.u16(2)
		w.u16(1)
		w.u16(uint16(KindReplicateAck))
		w.u32(uint32(len(pw.buf)))
		w.u32(0)
		w.u32(0)
		w.buf = append(w.buf, pw.buf...)
		write("seed-replicateack-truncated", w.buf)
	}

	// A RingUpdate claiming 0xFFF0 dead machines in a 6-byte payload:
	// the dead-list bomb guard must refuse without allocating.
	{
		var pw writer
		pw.u32(4)      // epoch
		pw.u16(0xFFF0) // dead-count bomb
		var w writer
		w.u16(1)
		w.u16(uint16(Broadcast))
		w.u16(uint16(KindRingUpdate))
		w.u32(uint32(len(pw.buf)))
		w.u32(0)
		w.u32(0)
		w.buf = append(w.buf, pw.buf...)
		write("seed-ringupdate-bomb", w.buf)
	}

	// A FabricResp whose inner payload-length field claims more bytes
	// than remain after the dead list.
	{
		var pw writer
		pw.u64(404)
		pw.u8(FabricServed)
		pw.u16(1)
		pw.u16(5)
		pw.u32(64) // payload claims 64 bytes...
		pw.buf = append(pw.buf, 0x00, 0x01)
		var w writer
		w.u16(7)
		w.u16(3)
		w.u16(uint16(KindFabricResp))
		w.u32(uint32(len(pw.buf)))
		w.u32(0)
		w.u32(0)
		w.buf = append(w.buf, pw.buf...)
		write("seed-fabricresp-truncated", w.buf)
	}

	// Fleet-reconciliation adversarial seeds (spec gossip, condition
	// report, drain, staged ring config).
	// A SpecGossip truncated mid-ConfigVersion: SpecVer and Size present,
	// the u32 cut to 2 bytes.
	{
		var pw writer
		pw.u64(4)                           // SpecVer
		pw.u16(8)                           // Size
		pw.buf = append(pw.buf, 0x02, 0x00) // half a config version
		var w writer
		w.u16(1)
		w.u16(uint16(Broadcast))
		w.u16(uint16(KindSpecGossip))
		w.u32(uint32(len(pw.buf)))
		w.u32(0)
		w.u32(0)
		w.buf = append(w.buf, pw.buf...)
		write("seed-specgossip-truncated", w.buf)
	}

	// A CondReport cut after the three condition flags: the four trailing
	// u32 fields are entirely missing.
	{
		var pw writer
		pw.u64(11) // Seq
		pw.bool(true)
		pw.bool(false)
		pw.bool(true)
		var w writer
		w.u16(3)
		w.u16(1)
		w.u16(uint16(KindCondReport))
		w.u32(uint32(len(pw.buf)))
		w.u32(0)
		w.u32(0)
		w.buf = append(w.buf, pw.buf...)
		write("seed-condreport-truncated", w.buf)
	}

	// A Drain order with an unknown mode: must decode cleanly (mode
	// policy is the receiver's judgment, not the codec's) and be ignored
	// by the router.
	write("seed-drain-unknownmode", Envelope{Src: 1, Dst: 5, Seq: 2, Inc: 1,
		Msg: &Drain{Mode: 0xEE, ConfigVersion: 9}}.Encode())

	// A RingConfig claiming 0xFFF0 members in a 7-byte payload: the
	// member-list bomb guard must refuse without allocating.
	{
		var pw writer
		pw.u32(3)          // Ver
		pw.u8(RingPrepare) // Phase
		pw.u16(0xFFF0)     // member-count bomb
		var w writer
		w.u16(1)
		w.u16(uint16(Broadcast))
		w.u16(uint16(KindRingConfig))
		w.u32(uint32(len(pw.buf)))
		w.u32(0)
		w.u32(0)
		w.buf = append(w.buf, pw.buf...)
		write("seed-ringconfig-bomb", w.buf)
	}

	// A RingConfig commit for an empty membership: decode must succeed
	// (an empty ring is the coordinator's error, surfaced at the router,
	// never the codec's).
	write("seed-ringconfig-empty", Envelope{Src: 1, Dst: Broadcast, Seq: 3,
		Msg: &RingConfig{Ver: 9, Phase: RingCommit}}.Encode())

	// A Drain order truncated mid-ConfigVersion: Mode present, the u32
	// cut to 2 bytes.
	{
		var pw writer
		pw.u8(DrainCordon)
		pw.buf = append(pw.buf, 0x09, 0x00) // half a config version
		var w writer
		w.u16(1)
		w.u16(5)
		w.u16(uint16(KindDrain))
		w.u32(uint32(len(pw.buf)))
		w.u32(0)
		w.u32(0)
		w.buf = append(w.buf, pw.buf...)
		write("seed-drain-truncated", w.buf)
	}

	// A FabricReq whose inner payload-length field claims far more bytes
	// than the frame carries: the bytes reader must refuse, not allocate.
	{
		var pw writer
		pw.u16(3)          // Origin
		pw.u64(31)         // ReqID
		pw.u8(0)           // Hops
		pw.u32(0xFFFFFFF0) // payload claims ~4GiB...
		pw.buf = append(pw.buf, 0xAB)
		var w writer
		w.u16(3)
		w.u16(7)
		w.u16(uint16(KindFabricReq))
		w.u32(uint32(len(pw.buf)))
		w.u32(0)
		w.u32(0)
		w.buf = append(w.buf, pw.buf...)
		write("seed-fabricreq-overflow", w.buf)
	}

	// A RingConfig prepare whose member list is cut mid-element: the
	// count promises two u16 members, only one and a half arrive.
	{
		var pw writer
		pw.u32(4)                     // Ver
		pw.u8(RingPrepare)            // Phase
		pw.u16(2)                     // two members promised...
		pw.u16(5)                     // one delivered
		pw.buf = append(pw.buf, 0x06) // half of the second
		var w writer
		w.u16(1)
		w.u16(uint16(Broadcast))
		w.u16(uint16(KindRingConfig))
		w.u32(uint32(len(pw.buf)))
		w.u32(0)
		w.u32(0)
		w.buf = append(w.buf, pw.buf...)
		write("seed-ringconfig-truncated", w.buf)
	}

	// A SpecGossip at the numeric extremes: max spec version, max fleet
	// size, max config version. Decodes cleanly; overflow handling is the
	// reconciler's problem and the mutator should probe around it.
	write("seed-specgossip-extremes", Envelope{Src: 2, Dst: Broadcast, Seq: 4, Inc: 1,
		Msg: &SpecGossip{SpecVer: ^uint64(0), Size: 0xFFFF, ConfigVersion: 0xFFFFFFFF}}.Encode())

	// Multi-tenancy adversarial seeds (tenant grant, denial report).
	// A TenantGrant truncated mid-RxBound: the fixed body promises six
	// fields, the last u32 is cut to 2 bytes.
	{
		var pw writer
		pw.u16(2)                           // Tenant
		pw.u16(7)                           // Device
		pw.u32(0x100)                       // App
		pw.u32(16)                          // CreditWindow
		pw.u32(8)                           // KVSInflight
		pw.buf = append(pw.buf, 0x04, 0x00) // half an rx bound
		var w writer
		w.u16(1)
		w.u16(uint16(BusID))
		w.u16(uint16(KindTenantGrant))
		w.u32(uint32(len(pw.buf)))
		w.u32(0)
		w.u32(0)
		w.buf = append(w.buf, pw.buf...)
		write("seed-tenantgrant-truncated", w.buf)
	}

	// A DenialReport whose detail-string length claims more bytes than
	// the payload holds (payload-length header adjusted to match, so the
	// string reader is what must refuse).
	{
		var pw writer
		pw.u16(2)                    // Tenant
		pw.u16(1)                    // Victim
		pw.u8(3)                     // Class
		pw.u16(uint16(KindGrantReq)) // Of
		pw.u16(300)                  // detail claims 300 bytes...
		pw.buf = append(pw.buf, []byte("denied")...)
		var w writer
		w.u16(uint16(BusID))
		w.u16(4)
		w.u16(uint16(KindDenialReport))
		w.u32(uint32(len(pw.buf)))
		w.u32(0)
		w.u32(0)
		w.buf = append(w.buf, pw.buf...)
		write("seed-denialreport-overflow", w.buf)
	}

	// Epoch-lease adversarial seeds (renew, grant, revoke).
	// A LeaseRenew truncated mid-Until: Seq present, the second u64 cut
	// to 4 bytes.
	{
		var pw writer
		pw.u64(12)                                      // Seq
		pw.buf = append(pw.buf, 0x40, 0x4B, 0x4C, 0x00) // half an expiry
		var w writer
		w.u16(5)
		w.u16(1)
		w.u16(uint16(KindLeaseRenew))
		w.u32(uint32(len(pw.buf)))
		w.u32(0)
		w.u32(0)
		w.buf = append(w.buf, pw.buf...)
		write("seed-leaserenew-truncated", w.buf)
	}

	// A LeaseGrant at the numeric extremes: max round, max expiry. The
	// codec accepts it; clamping an absurd lease is the router's
	// judgment, and the mutator should probe around the boundary.
	write("seed-leasegrant-extremes", Envelope{Src: 2, Dst: 5, Seq: 7, Inc: 1,
		Msg: &LeaseGrant{Seq: ^uint64(0), Until: ^uint64(0)}}.Encode())

	// A LeaseRevoke claiming 0xFFF0 dead machines in a 10-byte payload:
	// the dead-list bomb guard must refuse without allocating.
	{
		var pw writer
		pw.u64(12)     // Seq
		pw.u16(0xFFF0) // dead-count bomb
		var w writer
		w.u16(5)
		w.u16(1)
		w.u16(uint16(KindLeaseRevoke))
		w.u32(uint32(len(pw.buf)))
		w.u32(0)
		w.u32(0)
		w.buf = append(w.buf, pw.buf...)
		write("seed-leaserevoke-bomb", w.buf)
	}

	// Format-agnostic adversarial seeds.
	write("seed-empty", []byte{})
	write("seed-shorthdr", []byte{1, 0, 2, 0})
	{
		env := Envelope{Src: 1, Dst: 2, Seq: 1, Msg: &Heartbeat{Seq: 1}}.Encode()
		env[4], env[5] = 0xEE, 0xEE
		write("seed-badkind", env)
	}
	{
		// AllocResp frame-count bomb: claimed 0xFFFFFFF0 frames, no data.
		var pw writer
		pw.u32(1)
		pw.u8(1)
		pw.u16(0)
		pw.u64(0)
		pw.u32(0xFFFFFFF0)
		var w writer
		w.u16(1)
		w.u16(2)
		w.u16(uint16(KindAllocResp))
		w.u32(uint32(len(pw.buf)))
		w.u32(0)
		w.u32(0)
		w.buf = append(w.buf, pw.buf...)
		write("seed-bomb", w.buf)
	}
}
