package msg

// Regenerates the FuzzDecode seed corpus under testdata/fuzz/FuzzDecode.
// The corpus stores raw wire bytes, so any envelope-header change (such
// as the incarnation stamp) invalidates the per-kind seeds; run
//
//	NOCPU_REGEN_CORPUS=1 go test -run TestRegenerateFuzzCorpus ./internal/msg
//
// after a wire-format change and commit the result. The format-agnostic
// adversarial seeds (empty input, short header, unknown kind) are
// regenerated too so the whole directory stays reproducible from this
// one function.

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func corpusEntry(b []byte) string {
	return "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
}

func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("NOCPU_REGEN_CORPUS") == "" {
		t.Skip("set NOCPU_REGEN_CORPUS=1 to rewrite testdata/fuzz/FuzzDecode")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, b []byte) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(corpusEntry(b)), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// One valid encoding per message kind, from the round-trip fixtures.
	for i, m := range allMessages() {
		env := Envelope{Src: 1, Dst: 2, Seq: 9, Inc: 1, Msg: m}
		write(fmt.Sprintf("seed-%02d-%s", i, m.Kind()), env.Encode())
	}

	// Adversarial seeds: structurally interesting inputs the mutator
	// should start from.
	write("seed-nack-of-nack", Envelope{Src: 1, Dst: 2, Seq: 3,
		Msg: &Nack{Of: KindNack, Seq: 2, Dst: 3, Code: NackDeadDst, Reason: "nacked nack"}}.Encode())

	// A Nack whose reason-string length claims more bytes than exist
	// (payload-length field adjusted to match, so the string reader is
	// what fails).
	{
		var pw writer
		pw.u16(uint16(KindOpenReq))
		pw.u32(7)
		pw.u16(4)
		pw.u8(uint8(NackDeadDst))
		pw.u16(200) // reason claims 200 bytes...
		pw.buf = append(pw.buf, []byte("shrt")...)
		var w writer
		w.u16(1)
		w.u16(2)
		w.u16(uint16(KindNack))
		w.u32(uint32(len(pw.buf)))
		w.u32(0)
		w.u32(0)
		w.buf = append(w.buf, pw.buf...)
		write("seed-nack-truncated", w.buf)
	}

	write("seed-heartbeat-maxseq", Envelope{Src: 1, Dst: BusID, Seq: 0xFFFFFFFF, Inc: 0xFFFFFFFF,
		Msg: &Heartbeat{Seq: ^uint64(0)}}.Encode())

	{
		long := make([]byte, 300)
		for i := range long {
			long[i] = 'r'
		}
		write("seed-reset-longreason", Envelope{Src: BusID, Dst: 4, Seq: 1,
			Msg: &Reset{Reason: string(long)}}.Encode())
	}

	write("seed-resetdone-trailing", append(Envelope{Src: 4, Dst: BusID, Seq: 1, Inc: 2,
		Msg: &ResetDone{}}.Encode(), 0xAA))

	// New-form adversarial seeds (incarnation field, state reconciliation).
	// A Hello whose trailing incarnation field is truncated mid-u32: the
	// payload length admits 2 extra bytes, the optional-field reader wants 4.
	{
		var pw writer
		pw.u8(uint8(RoleNIC))
		pw.str("nic0")
		pw.u16(0)
		pw.buf = append(pw.buf, 0x02, 0x00) // half an incarnation
		var w writer
		w.u16(1)
		w.u16(uint16(BusID))
		w.u16(uint16(KindHello))
		w.u32(uint32(len(pw.buf)))
		w.u32(1)
		w.u32(1)
		w.buf = append(w.buf, pw.buf...)
		write("seed-hello-inc-truncated", w.buf)
	}

	// A StateResp claiming 0xFFF0 regions in a 6-byte payload: the
	// region-count bomb guard must refuse without allocating.
	{
		var pw writer
		pw.u32(1)
		pw.u16(0xFFF0)
		var w writer
		w.u16(uint16(BusID))
		w.u16(3)
		w.u16(uint16(KindStateResp))
		w.u32(uint32(len(pw.buf)))
		w.u32(0)
		w.u32(0)
		w.buf = append(w.buf, pw.buf...)
		write("seed-stateresp-bomb", w.buf)
	}

	// Flow-control adversarial seeds (credit-update and shed-NACK kinds).
	// An overload shed propagated as a typed NACK.
	write("seed-nack-overload", Envelope{Src: BusID, Dst: 4, Seq: 5,
		Msg: &Nack{Of: KindOpenReq, Seq: 12, Dst: 6, Code: NackOverload, Reason: "ingress bound"}}.Encode())

	// A CreditUpdate truncated mid-field: payload length admits 6 bytes,
	// the two-u32 body wants 8.
	{
		var pw writer
		pw.u32(32)
		pw.buf = append(pw.buf, 0x10, 0x00) // half a credit count
		var w writer
		w.u16(uint16(BusID))
		w.u16(4)
		w.u16(uint16(KindCreditUpdate))
		w.u32(uint32(len(pw.buf)))
		w.u32(0)
		w.u32(0)
		w.buf = append(w.buf, pw.buf...)
		write("seed-credit-truncated", w.buf)
	}

	// A CreditUpdate whose credit count overflows any sane window: the
	// port must saturate at the window, not wrap its balance.
	write("seed-credit-overflow", Envelope{Src: BusID, Dst: 4, Seq: 6,
		Msg: &CreditUpdate{Window: 0xFFFFFFFF, Credits: 0xFFFFFFFF}}.Encode())

	// Format-agnostic adversarial seeds.
	write("seed-empty", []byte{})
	write("seed-shorthdr", []byte{1, 0, 2, 0})
	{
		env := Envelope{Src: 1, Dst: 2, Seq: 1, Msg: &Heartbeat{Seq: 1}}.Encode()
		env[4], env[5] = 0xEE, 0xEE
		write("seed-badkind", env)
	}
	{
		// AllocResp frame-count bomb: claimed 0xFFFFFFF0 frames, no data.
		var pw writer
		pw.u32(1)
		pw.u8(1)
		pw.u16(0)
		pw.u64(0)
		pw.u32(0xFFFFFFF0)
		var w writer
		w.u16(1)
		w.u16(2)
		w.u16(uint16(KindAllocResp))
		w.u32(uint32(len(pw.buf)))
		w.u32(0)
		w.u32(0)
		w.buf = append(w.buf, pw.buf...)
		write("seed-bomb", w.buf)
	}
}
