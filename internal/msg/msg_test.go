package msg

import (
	"reflect"
	"testing"
	"testing/quick"
)

// allMessages returns one populated instance of every message type; the
// round-trip test below fails if a new kind is added without extending
// this list (see TestEveryKindCovered).
func allMessages() []Message {
	return []Message{
		&Hello{Role: RoleStorage, Name: "ssd0", Services: []string{"file:kv.dat", "loader"}, Incarnation: 3},
		&HelloAck{},
		&Heartbeat{Seq: 42},
		&Reset{Reason: "watchdog"},
		&ResetDone{},
		&DiscoverReq{Query: "file:kv.dat", Nonce: 7},
		&DiscoverResp{Query: "file:kv.dat", Nonce: 7, Service: "fs0/kv.dat"},
		&OpenReq{Service: "fs0/kv.dat", App: 3, Token: 0xdeadbeef},
		&OpenResp{Service: "fs0/kv.dat", App: 3, OK: true, ConnID: 9, SharedBytes: 1 << 20},
		&ConnectReq{Service: "fs0/kv.dat", ConnID: 9, App: 3, RingVA: 0x10000, RingEntries: 128,
			DataVA: 0x20000, DataBytes: 1 << 20, ReqDoorbell: 0x100, RespDoorbell: 0x101},
		&ConnectResp{ConnID: 9, OK: false, Reason: "bad ring"},
		&CloseReq{Service: "fs0/kv.dat", ConnID: 9, App: 3},
		&CloseResp{ConnID: 9, OK: true},
		&AllocReq{App: 3, VA: 0x10000, Bytes: 1 << 20, Perm: 3, Huge: true},
		&AllocResp{App: 3, OK: true, VA: 0x10000, Frames: []uint64{5, 6, 7}, Perm: 3, Huge: true},
		&FreeReq{App: 3, VA: 0x10000, Bytes: 1 << 20},
		&FreeResp{App: 3, OK: true, VA: 0x10000, Bytes: 1 << 20},
		&GrantReq{App: 3, VA: 0x10000, Bytes: 4096, Target: 2, Perm: 1},
		&GrantResp{App: 3, OK: false, Reason: "unauthorized", VA: 0x10000, Target: 2},
		&AuthReq{App: 3, VA: 0x10000, Bytes: 4096, Target: 2, Perm: 1, Nonce: 88},
		&AuthResp{App: 3, OK: true, VA: 0x10000, Frames: []uint64{12}, Perm: 1, Nonce: 88, Huge: true},
		&RevokeReq{App: 3, VA: 0x10000, Bytes: 4096, Target: 2},
		&RevokeResp{App: 3, OK: true},
		&LoadReq{Image: "kvs.bin", Token: 1, Data: []byte{1, 2, 3}},
		&LoadResp{Image: "kvs.bin", OK: true},
		&FileIOReq{App: 3, Handle: 2, Seq: 9, Op: 1, Off: 4096, Len: 100, Data: []byte{5}},
		&FileIOResp{App: 3, Handle: 2, Seq: 9, Status: 0, Size: 123, Data: []byte{6, 7}},
		&ErrorNotify{App: 3, Resource: "fs0/kv.dat", Code: 5, Detail: "flash die failed"},
		&DeviceFailed{Device: 4},
		&Nack{Of: KindOpenReq, Seq: 77, Dst: 4, Code: NackDeadDst, Reason: "dev4 is failed"},
		&StateQuery{Nonce: 19},
		&StateResp{Nonce: 19, Regions: []OwnedRegion{
			{App: 3, VA: 0x10000, Pages: 4, Grantees: []DeviceID{2, 5}},
			{App: 3, VA: 0x40000, Pages: 512, Huge: true},
		}},
		&CreditUpdate{Window: 32, Credits: 16},
		&FabricReq{Origin: 3, ReqID: 901, Hops: 1, Payload: []byte{2, 1, 0, 'k'}},
		&FabricResp{ReqID: 901, Code: FabricServed, Dead: []DeviceID{5}, Payload: []byte{0, 0, 0, 0, 0}},
		&Replicate{Epoch: 2, Seq: 77, Del: false, Sync: true, Key: "key-00001", Value: []byte{9, 9}},
		&ReplicateAck{Seq: 77, OK: true, Epoch: 2, Dead: []DeviceID{5, 6}},
		&RingUpdate{Epoch: 3, Dead: []DeviceID{2, 5, 6}},
		&SpecGossip{SpecVer: 4, Size: 8, ConfigVersion: 2, MaxUnavailable: 1},
		&CondReport{Seq: 11, Ready: true, Cordoned: false, Upgrading: true,
			ConfigVersion: 2, RingVer: 3, PendingVer: 4, TransferVer: 4, Keys: 140},
		&Drain{Mode: DrainUpgrade, ConfigVersion: 2},
		&RingConfig{Ver: 3, Phase: RingPrepare, Members: []DeviceID{1, 2, 3, 9}},
		&TenantGrant{Tenant: 2, Device: 7, App: 0x100, CreditWindow: 16, KVSInflight: 8, RxBound: 4},
		&DenialReport{Tenant: 2, Victim: 1, Class: 3, Of: uint16(KindGrantReq), Detail: "cross-tenant grant refused"},
		&LeaseRenew{Seq: 12, Until: 5_000_000},
		&LeaseGrant{Seq: 12, Until: 5_000_000},
		&LeaseRevoke{Seq: 12, Dead: []DeviceID{3, 7}},
	}
}

func TestRoundTripEveryType(t *testing.T) {
	for _, m := range allMessages() {
		env := Envelope{Src: 1, Dst: 2, Seq: 31, Msg: m}
		b := env.Encode()
		got, err := Decode(b)
		if err != nil {
			t.Errorf("%v: decode: %v", m.Kind(), err)
			continue
		}
		if got.Src != 1 || got.Dst != 2 || got.Seq != 31 {
			t.Errorf("%v: routing lost: %+v", m.Kind(), got)
		}
		if !reflect.DeepEqual(got.Msg, m) {
			t.Errorf("%v: round trip mismatch:\n got %+v\nwant %+v", m.Kind(), got.Msg, m)
		}
	}
}

func TestEveryKindCovered(t *testing.T) {
	covered := map[Kind]bool{}
	for _, m := range allMessages() {
		covered[m.Kind()] = true
	}
	for k := KindInvalid + 1; k < kindMax; k++ {
		if !covered[k] {
			t.Errorf("kind %v has no round-trip coverage", k)
		}
		if newMessage(k) == nil {
			t.Errorf("kind %v missing from newMessage registry", k)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	env := Envelope{Src: 1, Dst: 2, Msg: &Heartbeat{Seq: 1}}
	b := env.Encode()

	// Truncated at every boundary must error, never panic.
	for i := 0; i < len(b); i++ {
		if _, err := Decode(b[:i]); err == nil {
			t.Errorf("truncation at %d accepted", i)
		}
	}
	// Trailing garbage rejected.
	if _, err := Decode(append(append([]byte{}, b...), 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Unknown kind rejected.
	bad := append([]byte{}, b...)
	bad[4] = 0xEE
	bad[5] = 0xEE
	if _, err := Decode(bad); err == nil {
		t.Error("unknown kind accepted")
	}
}

// Property: no byte string makes Decode panic.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: AllocResp frame lists of arbitrary contents round trip.
func TestAllocRespFramesProperty(t *testing.T) {
	f := func(frames []uint64, va uint64, ok bool) bool {
		m := &AllocResp{App: 1, OK: ok, VA: va, Frames: frames}
		got, err := Decode(Envelope{Src: 1, Dst: 2, Msg: m}.Encode())
		if err != nil {
			return false
		}
		gm := got.Msg.(*AllocResp)
		if len(frames) == 0 {
			return len(gm.Frames) == 0
		}
		return reflect.DeepEqual(gm.Frames, frames)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: arbitrary strings in DiscoverReq round trip.
func TestStringFieldProperty(t *testing.T) {
	f := func(q string, nonce uint32) bool {
		if len(q) > 65535 {
			q = q[:65535]
		}
		m := &DiscoverReq{Query: q, Nonce: nonce}
		got, err := Decode(Envelope{Src: 9, Dst: Broadcast, Msg: m}.Encode())
		if err != nil {
			return false
		}
		return got.Msg.(*DiscoverReq).Query == q
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEncodedSize(t *testing.T) {
	m := &Heartbeat{Seq: 1}
	env := Envelope{Src: 1, Dst: 2, Msg: m}
	// EncodedSize excludes the link-layer seq tag and incarnation stamp
	// (4 bytes each) from accounting.
	if EncodedSize(m) != len(env.Encode())-8 {
		t.Errorf("EncodedSize = %d, wire = %d", EncodedSize(m), len(env.Encode()))
	}
	// The incarnation stamp itself must not change accounted size either.
	stamped := Envelope{Src: 1, Dst: 2, Seq: 9, Inc: 4, Msg: m}
	if EncodedSize(m) != len(stamped.Encode())-8 {
		t.Error("incarnation stamp leaked into EncodedSize accounting")
	}
}

// TestHelloIncarnationBackwardCompat checks that the incarnation field
// is a trailing optional: a pre-incarnation encoding (no trailing u32)
// still decodes, and a first-boot Hello encodes without the field.
func TestHelloIncarnationBackwardCompat(t *testing.T) {
	old := &Hello{Role: RoleNIC, Name: "nic0", Services: []string{"net"}}
	var pw writer
	pw.u8(uint8(old.Role))
	pw.str(old.Name)
	pw.u16(1)
	pw.str("net")
	var w writer
	w.u16(1)
	w.u16(uint16(BusID))
	w.u16(uint16(KindHello))
	w.u32(uint32(len(pw.buf)))
	w.u32(7) // seq
	w.u32(0) // inc
	w.buf = append(w.buf, pw.buf...)
	env, err := Decode(w.buf)
	if err != nil {
		t.Fatalf("legacy Hello rejected: %v", err)
	}
	if got := env.Msg.(*Hello); got.Incarnation != 0 || got.Name != "nic0" {
		t.Errorf("legacy Hello decoded wrong: %+v", got)
	}
	// Zero incarnation encodes to the legacy wire form exactly.
	firstBoot := Envelope{Src: 1, Dst: BusID, Seq: 7, Msg: old}
	if got := firstBoot.Encode(); string(got) != string(w.buf) {
		t.Errorf("first-boot Hello not byte-identical to legacy form:\n got %x\nwant %x", got, w.buf)
	}
	// Nonzero incarnation round-trips.
	rej := &Hello{Role: RoleNIC, Name: "nic0", Services: []string{"net"}, Incarnation: 2}
	env, err = Decode(Envelope{Src: 1, Dst: BusID, Seq: 8, Msg: rej}.Encode())
	if err != nil {
		t.Fatalf("rejoin Hello rejected: %v", err)
	}
	if got := env.Msg.(*Hello).Incarnation; got != 2 {
		t.Errorf("Incarnation = %d, want 2", got)
	}
}

// TestStateRespBomb mirrors TestU64ListBomb for the region list: a
// claimed huge region count with a tiny payload must error cleanly.
func TestStateRespBomb(t *testing.T) {
	var pw writer
	pw.u32(1)      // Nonce
	pw.u16(0xFFF0) // claimed region count
	var w writer
	w.u16(1)
	w.u16(2)
	w.u16(uint16(KindStateResp))
	w.u32(uint32(len(pw.buf)))
	w.u32(0)
	w.u32(0)
	w.buf = append(w.buf, pw.buf...)
	if _, err := Decode(w.buf); err == nil {
		t.Error("region-count bomb accepted")
	}
}

func TestDedupWindow(t *testing.T) {
	var d DedupWindow
	if d.Duplicate(1, 0) || d.Duplicate(1, 0) {
		t.Error("untagged envelopes must never be suppressed")
	}
	if d.Duplicate(1, 5) {
		t.Error("first sighting of seq 5 flagged")
	}
	if !d.Duplicate(1, 5) {
		t.Error("replay of seq 5 not flagged")
	}
	if d.Duplicate(2, 5) {
		t.Error("windows must be per-peer")
	}
	// Out-of-order arrival inside the window is not a duplicate...
	if d.Duplicate(1, 3) {
		t.Error("older-but-unseen seq 3 flagged")
	}
	// ...but its replay is.
	if !d.Duplicate(1, 3) {
		t.Error("replay of seq 3 not flagged")
	}
	// Far ahead: window slides.
	if d.Duplicate(1, 500) {
		t.Error("seq 500 flagged")
	}
	// Fallen off the 64-entry window: stale, treated as duplicate.
	if !d.Duplicate(1, 5) {
		t.Error("stale seq below window accepted")
	}
	d.Forget(1)
	if d.Duplicate(1, 5) {
		t.Error("Forget did not clear the window")
	}
}

func TestU64ListBomb(t *testing.T) {
	// A claimed huge frame count with a tiny payload must error cleanly,
	// not allocate gigabytes.
	var w writer
	w.u32(1) // App
	w.u8(1)  // OK
	w.u16(0) // Reason
	w.u64(0) // VA
	w.u32(0xFFFFFFF0)
	payload := w.buf
	var hdr writer
	hdr.u16(1)
	hdr.u16(2)
	hdr.u16(uint16(KindAllocResp))
	hdr.u32(uint32(len(payload)))
	hdr.u32(0) // seq
	hdr.u32(0) // inc
	hdr.buf = append(hdr.buf, payload...)
	if _, err := Decode(hdr.buf); err == nil {
		t.Error("length bomb accepted")
	}
}

func TestStringers(t *testing.T) {
	if Broadcast.String() != "broadcast" || BusID.String() != "bus" || DeviceID(3).String() != "dev3" {
		t.Error("DeviceID.String wrong")
	}
	if KindAllocResp.String() != "alloc.resp" {
		t.Error("Kind.String wrong")
	}
	if Kind(999).String() != "kind(999)" {
		t.Error("unknown Kind.String wrong")
	}
	if RoleMemoryController.String() != "memctrl" || Role(99).String() != "role(99)" {
		t.Error("Role.String wrong")
	}
}
