package msg_test

import (
	"sort"
	"testing"

	"nocpu/internal/msg"
	"nocpu/internal/sim"
)

type arrival struct {
	src msg.DeviceID
	seq uint32
}

// TestDedupWindowProperty drives the dedup window with randomized (but
// seeded, hence reproducible) schedules of sends, fabric replays, and
// bounded reordering, and checks the filter's contract: within the
// 64-tag window every tag is delivered exactly once no matter how often
// it is replayed or how the deliveries interleave, untagged envelopes
// (tag 0) always pass, and per-peer windows are independent.
func TestDedupWindowProperty(t *testing.T) {
	// reorderSpan bounds how far an arrival may drift from its in-order
	// position. Two tags can end up at most 2*reorderSpan-1 positions
	// out of order, and a tag value spans at least one position, so the
	// window never has to look back further than 2*reorderSpan < 64.
	const (
		trials      = 200
		peerCount   = 3
		sendsPer    = 150
		reorderSpan = 24
	)
	for trial := 0; trial < trials; trial++ {
		rng := sim.NewRand(uint64(trial)*2654435761 + 1)
		var w msg.DedupWindow

		// Build per-peer schedules: each tag 1..sendsPer appears 1-3
		// times (the original send plus fabric replays), plus a few
		// untagged envelopes, then each schedule is shuffled within a
		// bounded distance so no tag arrives more than reorderSpan
		// places from its in-order position.
		queues := make([][]uint32, peerCount)
		untagged := make(map[msg.DeviceID]int)
		for p := 0; p < peerCount; p++ {
			src := msg.DeviceID(p + 1)
			type keyed struct {
				tag uint32
				key int
			}
			var ks []keyed
			for s := 1; s <= sendsPer; s++ {
				copies := 1 + rng.Intn(3)
				for c := 0; c < copies; c++ {
					ks = append(ks, keyed{uint32(s), len(ks) + rng.Intn(reorderSpan)})
				}
				if rng.Intn(8) == 0 {
					ks = append(ks, keyed{0, len(ks) + rng.Intn(reorderSpan)})
					untagged[src]++
				}
			}
			// Bounded disorder: jitter each arrival's sort key by less
			// than reorderSpan, then stable-sort. Replay copies of a tag
			// drift apart, which is exactly the replay-under-reordering
			// case the window must absorb.
			sort.SliceStable(ks, func(i, j int) bool { return ks[i].key < ks[j].key })
			for _, k := range ks {
				queues[p] = append(queues[p], k.tag)
			}
		}
		// Interleave the peers' schedules by randomly merging the queues
		// front-first: per-peer order is preserved, per-peer state must
		// be independent of the interleaving.
		delivered := make(map[arrival]int)
		remaining := 0
		for _, q := range queues {
			remaining += len(q)
		}
		for remaining > 0 {
			p := rng.Intn(peerCount)
			if len(queues[p]) == 0 {
				continue
			}
			a := arrival{msg.DeviceID(p + 1), queues[p][0]}
			queues[p] = queues[p][1:]
			remaining--
			if !w.Duplicate(a.src, a.seq) {
				delivered[a]++
			}
		}
		for p := 0; p < peerCount; p++ {
			src := msg.DeviceID(p + 1)
			for s := 1; s <= sendsPer; s++ {
				if got := delivered[arrival{src, uint32(s)}]; got != 1 {
					t.Fatalf("trial %d: peer %d tag %d delivered %d times, want exactly 1", trial, src, s, got)
				}
			}
			if got := delivered[arrival{src, 0}]; got != untagged[src] {
				t.Fatalf("trial %d: peer %d untagged delivered %d times, want all %d", trial, src, got, untagged[src])
			}
		}
	}
}

// TestDedupWindowStaleTag pins the documented fail-safe: a tag that has
// fallen more than 64 behind the peer's highest counts as a duplicate
// (the sender's retry recovers a wrongly suppressed request).
func TestDedupWindowStaleTag(t *testing.T) {
	var w msg.DedupWindow
	if w.Duplicate(1, 100) {
		t.Fatal("first tag suppressed")
	}
	if w.Duplicate(1, 100-63) {
		t.Fatal("tag at the trailing edge of the window suppressed")
	}
	if !w.Duplicate(1, 100-64) {
		t.Fatal("tag beyond the 64-deep window not treated as stale duplicate")
	}
}

// TestDedupWindowForget pins the reset path: after Forget the peer's
// restarted counter reuses old tags and they must deliver again.
func TestDedupWindowForget(t *testing.T) {
	var w msg.DedupWindow
	for seq := uint32(1); seq <= 10; seq++ {
		if w.Duplicate(1, seq) {
			t.Fatalf("fresh tag %d suppressed", seq)
		}
	}
	if !w.Duplicate(1, 5) {
		t.Fatal("replayed tag 5 not suppressed before Forget")
	}
	w.Forget(1)
	if w.Duplicate(1, 5) {
		t.Fatal("tag 5 suppressed after Forget: restarted peer's tags must deliver")
	}
}
