package smartssd

import (
	"bytes"
	"testing"
	"testing/quick"

	"nocpu/internal/sim"
)

// The filesystem against a reference model: random sequences of writes,
// reads, truncates and appends on a small set of files must match a plain
// in-memory byte-slice implementation, including across a remount.

type refFile struct {
	data []byte
}

func (r *refFile) writeAt(off uint64, p []byte) {
	end := off + uint64(len(p))
	if uint64(len(r.data)) < end {
		grown := make([]byte, end)
		copy(grown, r.data)
		r.data = grown
	}
	copy(r.data[off:], p)
}

func (r *refFile) readAt(off uint64, n int) []byte {
	if off >= uint64(len(r.data)) || n <= 0 {
		return nil
	}
	end := off + uint64(n)
	if end > uint64(len(r.data)) {
		end = uint64(len(r.data))
	}
	out := make([]byte, end-off)
	copy(out, r.data[off:end])
	return out
}

// fsOp is one scripted operation.
type fsOp struct {
	Kind uint8  // 0 write, 1 read, 2 append, 3 truncate
	File uint8  // file index (mod 3)
	Off  uint16 // offset seed
	Len  uint8  // length seed
	Fill byte
}

func TestFSMatchesReferenceModel(t *testing.T) {
	run := func(ops []fsOp) bool {
		eng := sim.NewEngine()
		geo := FlashGeometry{Channels: 2, DiesPerChan: 1, BlocksPerDie: 64, PagesPerBlock: 16, PageSize: 4096}
		ftl := newFTL(eng, newFlash(eng, geo, DefaultTiming), 0.125)
		fs := newFS(ftl, FSConfig{MaxFiles: 8})
		ok := true
		fs.Format(func(err error) { ok = err == nil })
		eng.Run()
		if !ok {
			return false
		}

		names := []string{"a", "b", "c"}
		files := make([]*File, len(names))
		refs := make([]*refFile, len(names))
		for i, n := range names {
			var cerr error
			fs.Create(n, func(f *File, err error) { files[i], cerr = f, err })
			eng.Run()
			if cerr != nil {
				return false
			}
			refs[i] = &refFile{}
		}

		for _, op := range ops {
			i := int(op.File) % len(files)
			f, ref := files[i], refs[i]
			off := uint64(op.Off) % 20000
			n := int(op.Len)%700 + 1
			switch op.Kind % 4 {
			case 0: // write
				payload := bytes.Repeat([]byte{op.Fill}, n)
				var werr error
				f.WriteAt(off, payload, func(err error) { werr = err })
				eng.Run()
				if werr != nil {
					t.Logf("write: %v", werr)
					return false
				}
				ref.writeAt(off, payload)
			case 1: // read
				var got []byte
				var rerr error
				f.ReadAt(off, n, func(b []byte, err error) { got, rerr = b, err })
				eng.Run()
				if rerr != nil {
					t.Logf("read: %v", rerr)
					return false
				}
				want := ref.readAt(off, n)
				if !bytes.Equal(got, want) {
					t.Logf("read mismatch file %d off %d n %d: got %d bytes want %d", i, off, n, len(got), len(want))
					return false
				}
			case 2: // append
				payload := bytes.Repeat([]byte{op.Fill ^ 0x5A}, n)
				var werr error
				f.Append(payload, func(err error) { werr = err })
				eng.Run()
				if werr != nil {
					return false
				}
				ref.writeAt(uint64(len(ref.data)), payload)
			case 3: // truncate
				var terr error
				f.Truncate(func(err error) { terr = err })
				eng.Run()
				if terr != nil {
					return false
				}
				ref.data = nil
			}
			if f.Size() != uint64(len(ref.data)) {
				t.Logf("size mismatch file %d: fs %d ref %d", i, f.Size(), len(ref.data))
				return false
			}
		}

		// Remount on the same flash and re-verify all contents.
		fs2 := newFS(ftl, FSConfig{MaxFiles: 8})
		var merr error
		fs2.Mount(func(err error) { merr = err })
		eng.Run()
		if merr != nil {
			t.Logf("mount: %v", merr)
			return false
		}
		for i, n := range names {
			f2, found := fs2.Lookup(n)
			if !found {
				t.Logf("file %s lost across mount", n)
				return false
			}
			if f2.Size() != uint64(len(refs[i].data)) {
				t.Logf("size lost across mount: %d vs %d", f2.Size(), len(refs[i].data))
				return false
			}
			if len(refs[i].data) == 0 {
				continue
			}
			// Spot check: whole contents in chunks.
			for off := 0; off < len(refs[i].data); off += 4096 {
				n := 4096
				if off+n > len(refs[i].data) {
					n = len(refs[i].data) - off
				}
				var got []byte
				f2.ReadAt(uint64(off), n, func(b []byte, err error) { got = b })
				eng.Run()
				if !bytes.Equal(got, refs[i].data[off:off+n]) {
					t.Logf("contents lost across mount at %d", off)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, MaxCountScale: 0}
	if err := quick.Check(run, cfg); err != nil {
		t.Error(err)
	}
}

// Deterministic heavy scenario: interleaved concurrent writes across
// files with GC pressure, verified against the model.
func TestFSConcurrentMixedWorkload(t *testing.T) {
	eng := sim.NewEngine()
	geo := FlashGeometry{Channels: 2, DiesPerChan: 1, BlocksPerDie: 24, PagesPerBlock: 16, PageSize: 4096}
	ftl := newFTL(eng, newFlash(eng, geo, DefaultTiming), 0.2)
	fs := newFS(ftl, FSConfig{MaxFiles: 8})
	fs.Format(func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	eng.Run()

	var f1, f2 *File
	fs.Create("x", func(f *File, err error) { f1 = f })
	fs.Create("y", func(f *File, err error) { f2 = f })
	eng.Run()

	r1, r2 := &refFile{}, &refFile{}
	rng := sim.NewRand(77)
	pending := 0
	// 300 concurrent writes interleaved across two files, random offsets
	// within 64 KiB.
	for i := 0; i < 300; i++ {
		off := uint64(rng.Intn(64 << 10))
		n := rng.Intn(900) + 1
		fill := byte(rng.Intn(256))
		payload := bytes.Repeat([]byte{fill}, n)
		pending++
		cb := func(err error) {
			if err != nil {
				t.Errorf("write: %v", err)
			}
			pending--
		}
		if i%2 == 0 {
			f1.WriteAt(off, payload, cb)
			r1.writeAt(off, payload)
		} else {
			f2.WriteAt(off, payload, cb)
			r2.writeAt(off, payload)
		}
		// Model semantics: concurrent writes to overlapping ranges have
		// no defined winner, so keep ranges disjoint-ish by running the
		// engine every few ops.
		if i%4 == 3 {
			eng.Run()
		}
	}
	eng.Run()
	if pending != 0 {
		t.Fatalf("%d writes unfinished", pending)
	}
	check := func(f *File, ref *refFile, name string) {
		if f.Size() != uint64(len(ref.data)) {
			t.Fatalf("%s size %d vs ref %d", name, f.Size(), len(ref.data))
		}
		for off := 0; off < len(ref.data); off += 4096 {
			n := 4096
			if off+n > len(ref.data) {
				n = len(ref.data) - off
			}
			var got []byte
			f.ReadAt(uint64(off), n, func(b []byte, err error) {
				if err != nil {
					t.Fatalf("%s read: %v", name, err)
				}
				got = b
			})
			eng.Run()
			if !bytes.Equal(got, ref.data[off:off+n]) {
				t.Fatalf("%s diverged from model at offset %d", name, off)
			}
		}
	}
	check(f1, r1, "x")
	check(f2, r2, "y")
	if ftl.Stats().GCRuns == 0 {
		t.Log("note: GC did not trigger in this run")
	}
}
