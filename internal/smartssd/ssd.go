package smartssd

import (
	"fmt"
	"sort"
	"strings"

	"nocpu/internal/bus"
	"nocpu/internal/device"
	"nocpu/internal/interconnect"
	"nocpu/internal/iommu"
	"nocpu/internal/msg"
	"nocpu/internal/sim"
	"nocpu/internal/trace"
	"nocpu/internal/virtio"
)

// Config assembles an SSD.
type Config struct {
	Device   device.Config
	Geometry FlashGeometry
	Timing   FlashTiming
	// OPRatio is the FTL over-provisioning fraction.
	OPRatio float64
	FS      FSConfig
	// CellSize is the virtqueue buffer cell the file service uses.
	CellSize int
	// Tokens maps file names to required open tokens (§3 step 3 and the
	// §4 access-control discussion). Files absent from the map are open
	// access.
	Tokens map[string]uint64
	// LoaderToken authenticates LoadReq image uploads (§2.1, §4).
	LoaderToken uint64
	// CreateOnOpen makes the file service create missing files on open.
	CreateOnOpen bool
	// NotifyBatch sets used-ring notification batching on the file
	// service's endpoints (E9 ablation; 0/1 = notify per completion).
	NotifyBatch int
}

// conn is one open file-service connection (one service instance; §2.1
// requires per-instance contexts and isolation between them).
type conn struct {
	id      uint32
	app     msg.AppID
	client  msg.DeviceID
	service string
	file    *File
	ep      *virtio.Endpoint
	// estab is the ConnectReq that built ep; an identical retransmission
	// (lost ConnectResp) is answered OK again instead of being rejected as
	// "already connected".
	estab msg.ConnectReq
}

// SSD is the smart SSD device.
type SSD struct {
	dev   *device.Device
	cfg   Config
	flash *flash
	ftl   *ftl
	fs    *FS

	ready    bool
	booted   bool // formatted once
	conns    map[uint32]*conn
	nextConn uint32
	// closed remembers torn-down connections (id → closer) so a retried
	// CloseReq whose first response was lost gets OK, not "no such
	// connection".
	closed map[uint32]msg.DeviceID

	// ServedOps counts file-protocol requests completed.
	ServedOps uint64
}

// New builds the SSD and attaches it to bus and fabric.
func New(eng *sim.Engine, b *bus.Bus, fab *interconnect.Fabric, tr *trace.Tracer, cfg Config) (*SSD, error) {
	if cfg.Geometry.Channels == 0 {
		cfg.Geometry = DefaultGeometry
	}
	if cfg.Timing.Read == 0 {
		cfg.Timing = DefaultTiming
	}
	if cfg.OPRatio == 0 {
		cfg.OPRatio = 0.125
	}
	if cfg.CellSize == 0 {
		cfg.CellSize = 4096 + RespHeaderBytes + ReqHeaderBytes
	}
	cfg.Device.Role = msg.RoleStorage
	d, err := device.New(eng, b, fab, tr, cfg.Device)
	if err != nil {
		return nil, err
	}
	s := &SSD{
		dev:    d,
		cfg:    cfg,
		conns:  make(map[uint32]*conn),
		closed: make(map[uint32]msg.DeviceID),
	}
	s.flash = newFlash(eng, cfg.Geometry, cfg.Timing)
	s.ftl = newFTL(eng, s.flash, cfg.OPRatio)
	s.fs = newFS(s.ftl, cfg.FS)

	d.AddService(&fileService{ssd: s})
	d.Handle(msg.KindLoadReq, s.onLoad)
	d.OnAlive = s.onAlive
	d.OnReset = s.onReset
	d.OnPeerFailed = s.onPeerFailed
	return s, nil
}

// Device exposes the chassis.
func (s *SSD) Device() *device.Device { return s.dev }

// FS exposes the filesystem for test setup and the core assembler
// (pre-creating the KVS data file).
func (s *SSD) FS() *FS { return s.fs }

// FTLStats exposes translation-layer counters.
func (s *SSD) FTLStats() FTLStats { return s.ftl.Stats() }

// Wear exposes the NAND erase-count distribution.
func (s *SSD) Wear() WearStats { return s.ftl.Wear() }

// Ready reports whether the volume is mounted and serving.
func (s *SSD) Ready() bool { return s.ready }

// Start powers the SSD on.
func (s *SSD) Start() { s.dev.Start() }

// Kill simulates a hard failure (fault-injection): the device stops
// responding on bus and data plane, and the volume is unavailable until
// a reset remounts it.
func (s *SSD) Kill() {
	s.dev.Kill()
	s.ready = false
	s.dropConns()
}

// BreakFlash makes every subsequent flash operation fail (§4's "resource
// suffers a fatal error" scenario).
func (s *SSD) BreakFlash() { s.flash.broken = true }

// RepairFlash undoes BreakFlash.
func (s *SSD) RepairFlash() { s.flash.broken = false }

func (s *SSD) dropConns() {
	for _, id := range s.sortedConnIDs() {
		if c := s.conns[id]; c.ep != nil {
			s.dev.Fabric().UnregisterDoorbell(c.ep.ReqBell)
		}
		delete(s.conns, id)
	}
}

// sortedConnIDs iterates connections in id order for determinism.
func (s *SSD) sortedConnIDs() []uint32 {
	ids := make([]uint32, 0, len(s.conns))
	for id := range s.conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// onAlive runs at first boot (format+mount) and after every recovery
// (mount only).
func (s *SSD) onAlive() {
	if s.ready {
		return
	}
	finish := func(err error) {
		if err != nil {
			s.dev.Tracer().Record(s.dev.Engine().Now(), s.dev.Name(), "", "fs-error", err.Error())
			return
		}
		s.ready = true
		s.dev.Tracer().Record(s.dev.Engine().Now(), s.dev.Name(), "", "fs-ready", "")
	}
	if !s.booted {
		s.booted = true
		s.fs.Format(func(err error) {
			if err != nil {
				finish(err)
				return
			}
			s.fs.Mount(finish)
		})
		return
	}
	s.fs.Mount(finish)
}

// onReset drops volatile state; flash contents survive, and onAlive will
// remount.
func (s *SSD) onReset() {
	s.ready = false
	s.dropConns()
}

// onPeerFailed drops connections whose client died (DeviceFailed
// broadcast): their requests will never be reaped, and a revived client
// opens fresh connections rather than resuming these.
func (s *SSD) onPeerFailed(peer msg.DeviceID) {
	for _, id := range s.sortedConnIDs() {
		c := s.conns[id]
		if c.client != peer {
			continue
		}
		if c.ep != nil {
			s.dev.Fabric().UnregisterDoorbell(c.ep.ReqBell)
		}
		delete(s.conns, id)
	}
}

// onLoad services the loader: authenticated image upload into the
// filesystem (§2.1: "devices that store their applications internally
// must expose a loader service").
func (s *SSD) onLoad(env msg.Envelope) {
	m := env.Msg.(*msg.LoadReq)
	deny := func(reason string) {
		s.dev.Send(env.Src, &msg.LoadResp{Image: m.Image, OK: false, Reason: reason})
	}
	if !s.ready {
		deny("volume not ready")
		return
	}
	if s.cfg.LoaderToken != 0 && m.Token != s.cfg.LoaderToken {
		deny("authentication failed")
		return
	}
	write := func(f *File) {
		f.Truncate(func(err error) {
			if err != nil {
				deny(err.Error())
				return
			}
			f.WriteAt(0, m.Data, func(err error) {
				if err != nil {
					deny(err.Error())
					return
				}
				s.dev.Send(env.Src, &msg.LoadResp{Image: m.Image, OK: true})
			})
		})
	}
	if f, ok := s.fs.Lookup(m.Image); ok {
		write(f)
		return
	}
	s.fs.Create(m.Image, func(f *File, err error) {
		if err != nil {
			deny(err.Error())
			return
		}
		write(f)
	})
}

// fileService exposes every file on the volume as "file:<name>".
type fileService struct {
	ssd *SSD
}

func (fs *fileService) Name() string { return "file" }

// Match answers discovery queries and session names. Two name forms:
// "file:<name>" matches files present on the volume (or any name when
// CreateOnOpen is set); "file+create:<name>" matches any storage volume
// and creates the file on open if missing.
func (fs *fileService) Match(query string) bool {
	if !fs.ssd.ready {
		return false
	}
	if _, ok := strings.CutPrefix(query, "file+create:"); ok {
		return true
	}
	name, ok := strings.CutPrefix(query, "file:")
	if !ok {
		return false
	}
	if fs.ssd.cfg.CreateOnOpen {
		return true
	}
	_, exists := fs.ssd.fs.Lookup(name)
	return exists
}

func (fs *fileService) Open(src msg.DeviceID, req *msg.OpenReq) *msg.OpenResp {
	s := fs.ssd
	deny := func(reason string) *msg.OpenResp {
		return &msg.OpenResp{Service: req.Service, App: req.App, OK: false, Reason: reason}
	}
	createRequested := false
	name, ok := strings.CutPrefix(req.Service, "file:")
	if !ok {
		name, ok = strings.CutPrefix(req.Service, "file+create:")
		createRequested = ok
	}
	if !ok {
		return deny("malformed service name")
	}
	if !s.ready {
		return deny("volume not ready")
	}
	if want, guarded := s.cfg.Tokens[name]; guarded && want != req.Token {
		return deny("authentication failed")
	}
	// Idempotent replay: the opener retrying because an OpenResp was lost
	// gets its existing, not-yet-connected instance back rather than a
	// second one it would leak.
	for _, id := range s.sortedConnIDs() {
		if c := s.conns[id]; c.client == src && c.app == req.App && c.service == req.Service && c.ep == nil {
			shared := virtio.SharedBytes(128, s.cfg.CellSize)
			return &msg.OpenResp{Service: req.Service, App: req.App, OK: true, ConnID: c.id, SharedBytes: shared}
		}
	}
	f, exists := s.fs.Lookup(name)
	if !exists {
		if !s.cfg.CreateOnOpen && !createRequested {
			return deny("no such file")
		}
		// Create synchronously in metadata; persistence trails behind.
		done := false
		var cerr error
		s.fs.Create(name, func(nf *File, err error) { f, cerr, done = nf, err, true })
		_ = done
		if cerr != nil {
			return deny(cerr.Error())
		}
		if f == nil {
			// Creation persists asynchronously; look the inode up now.
			f, _ = s.fs.Lookup(name)
			if f == nil {
				return deny("create failed")
			}
		}
	}
	s.nextConn++
	id := s.nextConn
	s.conns[id] = &conn{id: id, app: req.App, client: src, service: req.Service, file: f}
	// Quote the shared memory for a default-geometry queue; the requester
	// may choose a smaller ring in ConnectReq.
	shared := virtio.SharedBytes(128, s.cfg.CellSize)
	return &msg.OpenResp{Service: req.Service, App: req.App, OK: true, ConnID: id, SharedBytes: shared}
}

func (fs *fileService) Connect(src msg.DeviceID, req *msg.ConnectReq) *msg.ConnectResp {
	s := fs.ssd
	deny := func(reason string) *msg.ConnectResp {
		return &msg.ConnectResp{ConnID: req.ConnID, OK: false, Reason: reason}
	}
	c, ok := s.conns[req.ConnID]
	if !ok {
		return deny("no such connection")
	}
	// Isolation: only the opener may connect, and only for its own app.
	if c.client != src || c.app != req.App {
		return deny("connection belongs to another client")
	}
	if c.ep != nil {
		if *req == c.estab {
			// Retransmitted ConnectReq (lost response): same verdict.
			return &msg.ConnectResp{ConnID: req.ConnID, OK: true, Reason: fmt.Sprintf("reqbell=%d", c.ep.ReqBell)}
		}
		return deny("already connected")
	}
	if req.RingEntries == 0 || req.DataBytes == 0 {
		return deny("malformed queue geometry")
	}
	cell := int(req.DataBytes) / int(req.RingEntries)
	lay := virtio.Layout{
		Base:     iommu.VirtAddr(req.RingVA),
		Entries:  req.RingEntries,
		DataVA:   iommu.VirtAddr(req.DataVA),
		CellSize: cell,
	}
	ep, err := virtio.NewEndpoint(s.dev.DMA(), iommu.PASID(req.App), lay,
		interconnect.DoorbellAddr(req.RespDoorbell), s.handlerFor(c))
	if err != nil {
		return deny(err.Error())
	}
	if s.cfg.NotifyBatch > 1 {
		ep.NotifyBatch = s.cfg.NotifyBatch
	}
	ep.OnError = func(err error) {
		// Transport failure (e.g. revoked grant): notify the consumer per
		// §4 and drop the connection.
		s.dev.Send(c.client, &msg.ErrorNotify{App: c.app, Resource: "file:" + c.file.Name(), Code: 1, Detail: err.Error()})
		delete(s.conns, c.id)
	}
	c.ep = ep
	c.estab = *req
	// Tell the requester which doorbell to kick.
	return &msg.ConnectResp{ConnID: req.ConnID, OK: true, Reason: fmt.Sprintf("reqbell=%d", ep.ReqBell)}
}

func (fs *fileService) Close(src msg.DeviceID, req *msg.CloseReq) *msg.CloseResp {
	s := fs.ssd
	c, ok := s.conns[req.ConnID]
	if !ok || c.client != src {
		if closer, was := s.closed[req.ConnID]; was && closer == src {
			// Retransmitted CloseReq (lost response): already done.
			return &msg.CloseResp{ConnID: req.ConnID, OK: true}
		}
		return &msg.CloseResp{ConnID: req.ConnID, OK: false}
	}
	if c.ep != nil {
		s.dev.Fabric().UnregisterDoorbell(c.ep.ReqBell)
	}
	delete(s.conns, req.ConnID)
	s.closed[req.ConnID] = src
	return &msg.CloseResp{ConnID: req.ConnID, OK: true}
}

// handlerFor builds the virtio request handler bound to one connection.
func (s *SSD) handlerFor(c *conn) virtio.Handler {
	return func(reqBytes []byte, done func([]byte)) {
		req, err := DecodeFileReq(reqBytes)
		if err != nil {
			done(EncodeFileResp(FileResp{Status: StatusBadRequest}))
			return
		}
		finish := func(r FileResp) {
			s.ServedOps++
			done(EncodeFileResp(r))
		}
		switch req.Op {
		case OpRead:
			c.file.ReadAt(req.Off, int(req.Len), func(data []byte, err error) {
				if err != nil {
					finish(FileResp{Status: StatusIOError})
					return
				}
				finish(FileResp{Status: StatusOK, Size: c.file.Size(), Data: data})
			})
		case OpWrite:
			c.file.WriteAt(req.Off, req.Data, func(err error) {
				if err != nil {
					finish(FileResp{Status: StatusIOError})
					return
				}
				finish(FileResp{Status: StatusOK, Size: c.file.Size()})
			})
		case OpAppend:
			c.file.Append(req.Data, func(err error) {
				if err != nil {
					finish(FileResp{Status: StatusIOError})
					return
				}
				finish(FileResp{Status: StatusOK, Size: c.file.Size()})
			})
		case OpStat:
			finish(FileResp{Status: StatusOK, Size: c.file.Size()})
		case OpTruncate:
			c.file.Truncate(func(err error) {
				if err != nil {
					finish(FileResp{Status: StatusIOError})
					return
				}
				finish(FileResp{Status: StatusOK})
			})
		case OpRename:
			newName := string(req.Data)
			c.file.Rename(newName, func(err error) {
				if err != nil {
					finish(FileResp{Status: StatusIOError})
					return
				}
				finish(FileResp{Status: StatusOK})
			})
		default:
			finish(FileResp{Status: StatusBadRequest})
		}
	}
}
