package smartssd

import (
	"encoding/binary"
	"fmt"
)

// The filesystem: a flat directory of extent files persisted through the
// FTL. Logical page 0 is the superblock, pages [1, 1+inodePages) hold the
// inode table, and the rest is data, tracked by an in-memory bitmap
// rebuilt at mount from the extents. All metadata mutations are persisted
// write-through (the inode page is rewritten), so a remount recovers the
// full directory — the E5 recovery experiment depends on this.

const (
	fsMagic      = 0x4e4f4653 // "NOFS"
	fsVersion    = 1
	inodeSize    = 256
	maxName      = 64
	maxExtents   = 12
	inodesPerPag = 4096 / inodeSize
)

// extent is a contiguous run of data pages.
type extent struct {
	start uint32 // logical page number
	count uint32
}

// inode is one file's metadata.
type inode struct {
	used    bool
	name    string
	size    uint64
	extents []extent
}

func (ino *inode) pages() int {
	n := 0
	for _, e := range ino.extents {
		n += int(e.count)
	}
	return n
}

// encodeInode serializes into exactly inodeSize bytes.
func encodeInode(ino *inode) []byte {
	b := make([]byte, inodeSize)
	if !ino.used {
		return b
	}
	b[0] = 1
	b[1] = byte(len(ino.name))
	copy(b[2:2+maxName], ino.name)
	binary.LittleEndian.PutUint64(b[66:], ino.size)
	binary.LittleEndian.PutUint16(b[74:], uint16(len(ino.extents)))
	off := 76
	for _, e := range ino.extents {
		binary.LittleEndian.PutUint32(b[off:], e.start)
		binary.LittleEndian.PutUint32(b[off+4:], e.count)
		off += 8
	}
	return b
}

func decodeInode(b []byte) inode {
	if b[0] == 0 {
		return inode{}
	}
	n := int(b[1])
	if n > maxName {
		n = maxName
	}
	ino := inode{
		used: true,
		name: string(b[2 : 2+n]),
		size: binary.LittleEndian.Uint64(b[66:]),
	}
	cnt := int(binary.LittleEndian.Uint16(b[74:]))
	if cnt > maxExtents {
		cnt = maxExtents
	}
	off := 76
	for i := 0; i < cnt; i++ {
		ino.extents = append(ino.extents, extent{
			start: binary.LittleEndian.Uint32(b[off:]),
			count: binary.LittleEndian.Uint32(b[off+4:]),
		})
		off += 8
	}
	return ino
}

// FS is the mounted filesystem.
type FS struct {
	ftl        *ftl
	inodePages int
	dataStart  int
	inodes     []inode
	bitmap     []bool // data-page allocation, indexed from dataStart
	pageSize   int
	// pageLocks serializes writers per data page: concurrent partial-page
	// writes are read-modify-write and would otherwise lose updates. The
	// map holds queued waiters for locked pages.
	pageLocks map[int][]func()
}

// FSConfig sizes the filesystem.
type FSConfig struct {
	// MaxFiles bounds the directory (rounded up to a full inode page).
	MaxFiles int
}

// DefaultFSConfig allows 64 files.
var DefaultFSConfig = FSConfig{MaxFiles: 64}

// newFS wraps a formatted-or-blank FTL; call Format or Mount before use.
func newFS(t *ftl, cfg FSConfig) *FS {
	if cfg.MaxFiles <= 0 {
		cfg.MaxFiles = DefaultFSConfig.MaxFiles
	}
	inodePages := (cfg.MaxFiles + inodesPerPag - 1) / inodesPerPag
	fs := &FS{
		ftl:        t,
		inodePages: inodePages,
		dataStart:  1 + inodePages,
		inodes:     make([]inode, inodePages*inodesPerPag),
		pageSize:   t.geo.PageSize,
	}
	fs.bitmap = make([]bool, t.Capacity()-fs.dataStart)
	fs.pageLocks = make(map[int][]func())
	return fs
}

// lockPage runs fn with exclusive write access to the logical page; fn
// must call release exactly once when its I/O completes.
func (fs *FS) lockPage(lpn int, fn func(release func())) {
	release := func() {
		waiters := fs.pageLocks[lpn]
		if len(waiters) == 0 {
			delete(fs.pageLocks, lpn)
			return
		}
		next := waiters[0]
		fs.pageLocks[lpn] = waiters[1:]
		next()
	}
	if _, locked := fs.pageLocks[lpn]; locked {
		fs.pageLocks[lpn] = append(fs.pageLocks[lpn], func() { fn(release) })
		return
	}
	fs.pageLocks[lpn] = nil // locked, no waiters yet
	fn(release)
}

// Format writes a fresh superblock and empty inode table.
func (fs *FS) Format(cb func(error)) {
	sb := make([]byte, fs.pageSize)
	binary.LittleEndian.PutUint32(sb[0:], fsMagic)
	binary.LittleEndian.PutUint32(sb[4:], fsVersion)
	binary.LittleEndian.PutUint32(sb[8:], uint32(fs.inodePages))
	binary.LittleEndian.PutUint32(sb[12:], uint32(fs.ftl.Capacity()))
	fs.ftl.Write(0, sb, func(err error) {
		if err != nil {
			cb(err)
			return
		}
		fs.persistInodeRange(0, fs.inodePages, cb)
	})
}

// persistInodeRange rewrites inode pages [from, to).
func (fs *FS) persistInodeRange(from, to int, cb func(error)) {
	if from >= to {
		cb(nil)
		return
	}
	buf := make([]byte, fs.pageSize)
	for i := 0; i < inodesPerPag; i++ {
		copy(buf[i*inodeSize:], encodeInode(&fs.inodes[from*inodesPerPag+i]))
	}
	fs.ftl.Write(1+from, buf, func(err error) {
		if err != nil {
			cb(err)
			return
		}
		fs.persistInodeRange(from+1, to, cb)
	})
}

// persistInodeOf rewrites the single inode page containing index idx.
func (fs *FS) persistInodeOf(idx int, cb func(error)) {
	page := idx / inodesPerPag
	fs.persistInodeRange(page, page+1, cb)
}

// Mount reads the superblock and inode table, rebuilding in-memory state.
func (fs *FS) Mount(cb func(error)) {
	fs.ftl.Read(0, func(sb []byte, err error) {
		if err != nil {
			cb(err)
			return
		}
		if binary.LittleEndian.Uint32(sb[0:]) != fsMagic {
			cb(fmt.Errorf("smartssd: bad superblock magic"))
			return
		}
		if got := int(binary.LittleEndian.Uint32(sb[8:])); got != fs.inodePages {
			cb(fmt.Errorf("smartssd: inode table size mismatch (disk %d, config %d)", got, fs.inodePages))
			return
		}
		fs.mountInodePage(0, cb)
	})
}

func (fs *FS) mountInodePage(page int, cb func(error)) {
	if page >= fs.inodePages {
		// Rebuild the bitmap from extents.
		clear(fs.bitmap)
		for i := range fs.inodes {
			for _, e := range fs.inodes[i].extents {
				for p := e.start; p < e.start+e.count; p++ {
					fs.bitmap[int(p)-fs.dataStart] = true
				}
			}
		}
		cb(nil)
		return
	}
	fs.ftl.Read(1+page, func(b []byte, err error) {
		if err != nil {
			cb(err)
			return
		}
		for i := 0; i < inodesPerPag; i++ {
			fs.inodes[page*inodesPerPag+i] = decodeInode(b[i*inodeSize : (i+1)*inodeSize])
		}
		fs.mountInodePage(page+1, cb)
	})
}

// File is an open handle (index into the inode table).
type File struct {
	fs  *FS
	idx int
}

// Lookup finds a file by name.
func (fs *FS) Lookup(name string) (*File, bool) {
	for i := range fs.inodes {
		if fs.inodes[i].used && fs.inodes[i].name == name {
			return &File{fs: fs, idx: i}, true
		}
	}
	return nil, false
}

// List returns all file names (directory order).
func (fs *FS) List() []string {
	var out []string
	for i := range fs.inodes {
		if fs.inodes[i].used {
			out = append(out, fs.inodes[i].name)
		}
	}
	return out
}

// Create makes an empty file and persists the directory entry.
func (fs *FS) Create(name string, cb func(*File, error)) {
	if name == "" || len(name) > maxName {
		cb(nil, fmt.Errorf("smartssd: bad file name %q", name))
		return
	}
	if _, exists := fs.Lookup(name); exists {
		cb(nil, fmt.Errorf("smartssd: file %q exists", name))
		return
	}
	idx := -1
	for i := range fs.inodes {
		if !fs.inodes[i].used {
			idx = i
			break
		}
	}
	if idx < 0 {
		cb(nil, fmt.Errorf("smartssd: directory full"))
		return
	}
	fs.inodes[idx] = inode{used: true, name: name}
	fs.persistInodeOf(idx, func(err error) {
		if err != nil {
			fs.inodes[idx] = inode{}
			cb(nil, err)
			return
		}
		cb(&File{fs: fs, idx: idx}, nil)
	})
}

// Delete removes a file, trimming its pages.
func (fs *FS) Delete(name string, cb func(error)) {
	f, ok := fs.Lookup(name)
	if !ok {
		cb(fmt.Errorf("smartssd: no such file %q", name))
		return
	}
	ino := &fs.inodes[f.idx]
	for _, e := range ino.extents {
		for p := e.start; p < e.start+e.count; p++ {
			fs.ftl.Trim(int(p))
			fs.bitmap[int(p)-fs.dataStart] = false
		}
	}
	*ino = inode{}
	fs.persistInodeOf(f.idx, cb)
}

// Rename gives the file a new name, deleting any existing file of that
// name first (rename-over, the usual atomic-replace idiom). Both inode
// pages are persisted.
func (f *File) Rename(newName string, cb func(error)) {
	fs := f.fs
	if newName == "" || len(newName) > maxName {
		cb(fmt.Errorf("smartssd: bad file name %q", newName))
		return
	}
	if fs.inodes[f.idx].name == newName {
		cb(nil)
		return
	}
	finish := func() {
		fs.inodes[f.idx].name = newName
		fs.persistInodeOf(f.idx, cb)
	}
	if old, exists := fs.Lookup(newName); exists {
		fs.Delete(newName, func(err error) {
			if err != nil {
				cb(err)
				return
			}
			_ = old
			finish()
		})
		return
	}
	finish()
}

// Name returns the file's name.
func (f *File) Name() string { return f.fs.inodes[f.idx].name }

// Size returns the file's logical size in bytes.
func (f *File) Size() uint64 { return f.fs.inodes[f.idx].size }

// lpnOf maps a file-relative page index to a logical page number.
func (f *File) lpnOf(pageIdx int) (int, bool) {
	for _, e := range f.fs.inodes[f.idx].extents {
		if pageIdx < int(e.count) {
			return int(e.start) + pageIdx, true
		}
		pageIdx -= int(e.count)
	}
	return 0, false
}

// allocRun finds the first free run of up to want pages (first fit) and
// marks it allocated. Returns a zero-count extent when nothing is free.
func (fs *FS) allocRun(want int) extent {
	run := 0
	for i := 0; i <= len(fs.bitmap); i++ {
		if i < len(fs.bitmap) && !fs.bitmap[i] {
			run++
			if run == want {
				start := i - run + 1
				for j := start; j <= i; j++ {
					fs.bitmap[j] = true
				}
				return extent{start: uint32(fs.dataStart + start), count: uint32(run)}
			}
			continue
		}
		if run > 0 {
			start := i - run
			for j := start; j < i; j++ {
				fs.bitmap[j] = true
			}
			return extent{start: uint32(fs.dataStart + start), count: uint32(run)}
		}
		run = 0
	}
	return extent{}
}

// grow extends the file to hold newPages pages.
func (f *File) grow(newPages int) error {
	ino := &f.fs.inodes[f.idx]
	need := newPages - ino.pages()
	for need > 0 {
		if len(ino.extents) == maxExtents {
			return fmt.Errorf("smartssd: file %q too fragmented", ino.name)
		}
		e := f.fs.allocRun(need)
		if e.count == 0 {
			return fmt.Errorf("smartssd: volume full growing %q", ino.name)
		}
		// Merge with the previous extent when contiguous.
		if n := len(ino.extents); n > 0 && ino.extents[n-1].start+ino.extents[n-1].count == e.start {
			ino.extents[n-1].count += e.count
		} else {
			ino.extents = append(ino.extents, e)
		}
		need -= int(e.count)
	}
	return nil
}

// WriteAt writes data at the byte offset, growing the file as needed.
// Partial pages are read-modified-written. cb runs after both the data
// and the metadata update are durable.
func (f *File) WriteAt(off uint64, data []byte, cb func(error)) {
	if len(data) == 0 {
		cb(nil)
		return
	}
	fs := f.fs
	ps := uint64(fs.pageSize)
	end := off + uint64(len(data))
	if err := f.grow(int((end + ps - 1) / ps)); err != nil {
		cb(err)
		return
	}
	ino := &fs.inodes[f.idx]
	grewSize := false
	if end > ino.size {
		ino.size = end
		grewSize = true
	}

	type chunk struct {
		lpn     int
		pageOff int
		data    []byte
	}
	var chunks []chunk
	for cur := off; cur < end; {
		pageIdx := int(cur / ps)
		pageOff := int(cur % ps)
		n := int(ps) - pageOff
		if rem := int(end - cur); n > rem {
			n = rem
		}
		lpn, ok := f.lpnOf(pageIdx)
		if !ok {
			cb(fmt.Errorf("smartssd: extent walk failed at page %d", pageIdx))
			return
		}
		chunks = append(chunks, chunk{lpn: lpn, pageOff: pageOff, data: data[cur-off : cur-off+uint64(n)]})
		cur += uint64(n)
	}

	remaining := len(chunks)
	var firstErr error
	finishOne := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		remaining--
		if remaining > 0 {
			return
		}
		if firstErr != nil {
			cb(firstErr)
			return
		}
		// Persist metadata if the size changed; extents changed => size
		// changed too (append-only growth).
		if grewSize {
			fs.persistInodeOf(f.idx, cb)
		} else {
			cb(nil)
		}
	}
	for _, c := range chunks {
		c := c
		// Page-exclusive: concurrent writers to the same page would lose
		// updates through the read-modify-write window.
		fs.lockPage(c.lpn, func(release func()) {
			if c.pageOff == 0 && len(c.data) == fs.pageSize {
				fs.ftl.Write(c.lpn, c.data, func(err error) {
					release()
					finishOne(err)
				})
				return
			}
			// Read-modify-write for partial pages.
			fs.ftl.Read(c.lpn, func(page []byte, err error) {
				if err != nil {
					release()
					finishOne(err)
					return
				}
				copy(page[c.pageOff:], c.data)
				fs.ftl.Write(c.lpn, page, func(err error) {
					release()
					finishOne(err)
				})
			})
		})
	}
}

// Append writes at the current end of file.
func (f *File) Append(data []byte, cb func(error)) {
	f.WriteAt(f.Size(), data, cb)
}

// ReadAt reads n bytes at the offset. Reads past EOF are clipped; a read
// entirely beyond EOF returns an empty slice.
func (f *File) ReadAt(off uint64, n int, cb func([]byte, error)) {
	fs := f.fs
	size := f.Size()
	if off >= size || n <= 0 {
		cb(nil, nil)
		return
	}
	if off+uint64(n) > size {
		n = int(size - off)
	}
	ps := uint64(fs.pageSize)
	out := make([]byte, n)
	type chunk struct {
		lpn     int
		pageOff int
		dst     []byte
	}
	var chunks []chunk
	end := off + uint64(n)
	for cur := off; cur < end; {
		pageIdx := int(cur / ps)
		pageOff := int(cur % ps)
		cn := int(ps) - pageOff
		if rem := int(end - cur); cn > rem {
			cn = rem
		}
		lpn, ok := f.lpnOf(pageIdx)
		if !ok {
			cb(nil, fmt.Errorf("smartssd: extent walk failed at page %d", pageIdx))
			return
		}
		chunks = append(chunks, chunk{lpn: lpn, pageOff: pageOff, dst: out[cur-off : cur-off+uint64(cn)]})
		cur += uint64(cn)
	}
	remaining := len(chunks)
	var firstErr error
	for _, c := range chunks {
		c := c
		fs.ftl.Read(c.lpn, func(page []byte, err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if err == nil {
				copy(c.dst, page[c.pageOff:])
			}
			remaining--
			if remaining == 0 {
				if firstErr != nil {
					cb(nil, firstErr)
					return
				}
				cb(out, nil)
			}
		})
	}
}

// Truncate sets the file size to zero, releasing its pages.
func (f *File) Truncate(cb func(error)) {
	fs := f.fs
	ino := &fs.inodes[f.idx]
	for _, e := range ino.extents {
		for p := e.start; p < e.start+e.count; p++ {
			fs.ftl.Trim(int(p))
			fs.bitmap[int(p)-fs.dataStart] = false
		}
	}
	ino.extents = nil
	ino.size = 0
	fs.persistInodeOf(f.idx, cb)
}
