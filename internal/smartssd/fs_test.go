package smartssd

import (
	"bytes"
	"testing"

	"nocpu/internal/sim"
)

// fsWorld builds a formatted filesystem on a fresh FTL.
func fsWorld(t *testing.T) (*sim.Engine, *FS) {
	t.Helper()
	eng := sim.NewEngine()
	geo := FlashGeometry{Channels: 2, DiesPerChan: 1, BlocksPerDie: 32, PagesPerBlock: 16, PageSize: 4096}
	f := newFTL(eng, newFlash(eng, geo, DefaultTiming), 0.125)
	fs := newFS(f, FSConfig{MaxFiles: 32})
	var ferr error
	fs.Format(func(err error) { ferr = err })
	eng.Run()
	if ferr != nil {
		t.Fatal(ferr)
	}
	return eng, fs
}

func mustCreate(t *testing.T, eng *sim.Engine, fs *FS, name string) *File {
	t.Helper()
	var f *File
	var cerr error
	fs.Create(name, func(nf *File, err error) { f, cerr = nf, err })
	eng.Run()
	if cerr != nil {
		t.Fatal(cerr)
	}
	return f
}

func TestCreateLookupList(t *testing.T) {
	eng, fs := fsWorld(t)
	mustCreate(t, eng, fs, "kv.dat")
	mustCreate(t, eng, fs, "kv.log")
	if _, ok := fs.Lookup("kv.dat"); !ok {
		t.Error("lookup failed")
	}
	if _, ok := fs.Lookup("nope"); ok {
		t.Error("phantom file")
	}
	l := fs.List()
	if len(l) != 2 || l[0] != "kv.dat" || l[1] != "kv.log" {
		t.Errorf("list = %v", l)
	}
	// Duplicate create rejected.
	var derr error
	fs.Create("kv.dat", func(_ *File, err error) { derr = err })
	eng.Run()
	if derr == nil {
		t.Error("duplicate create accepted")
	}
	// Bad names rejected.
	fs.Create("", func(_ *File, err error) { derr = err })
	eng.Run()
	if derr == nil {
		t.Error("empty name accepted")
	}
}

func TestWriteReadSmall(t *testing.T) {
	eng, fs := fsWorld(t)
	f := mustCreate(t, eng, fs, "a")
	payload := []byte("hello filesystem")
	f.WriteAt(0, payload, func(err error) {
		if err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if f.Size() != uint64(len(payload)) {
		t.Fatalf("size = %d", f.Size())
	}
	var got []byte
	f.ReadAt(0, len(payload), func(b []byte, err error) { got = b })
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
}

func TestWriteReadLargeCrossPage(t *testing.T) {
	eng, fs := fsWorld(t)
	f := mustCreate(t, eng, fs, "big")
	payload := make([]byte, 3*4096+777)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	f.WriteAt(0, payload, func(err error) {
		if err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	var got []byte
	f.ReadAt(0, len(payload), func(b []byte, err error) { got = b })
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("multi-page round trip corrupt")
	}
}

func TestSparseWriteAtOffset(t *testing.T) {
	eng, fs := fsWorld(t)
	f := mustCreate(t, eng, fs, "sparse")
	f.WriteAt(10000, []byte("tail"), func(err error) {
		if err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if f.Size() != 10004 {
		t.Fatalf("size = %d", f.Size())
	}
	var got []byte
	f.ReadAt(9998, 6, func(b []byte, err error) { got = b })
	eng.Run()
	if !bytes.Equal(got, []byte{0, 0, 't', 'a', 'i', 'l'}) {
		t.Errorf("got %v", got)
	}
}

func TestPartialPageRMW(t *testing.T) {
	eng, fs := fsWorld(t)
	f := mustCreate(t, eng, fs, "rmw")
	f.WriteAt(0, bytes.Repeat([]byte{0xAA}, 4096), func(error) {})
	eng.Run()
	f.WriteAt(100, []byte{1, 2, 3}, func(err error) {
		if err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	var got []byte
	f.ReadAt(98, 7, func(b []byte, err error) { got = b })
	eng.Run()
	want := []byte{0xAA, 0xAA, 1, 2, 3, 0xAA, 0xAA}
	if !bytes.Equal(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestAppendGrows(t *testing.T) {
	eng, fs := fsWorld(t)
	f := mustCreate(t, eng, fs, "log")
	for i := 0; i < 10; i++ {
		rec := bytes.Repeat([]byte{byte(i)}, 1000)
		f.Append(rec, func(err error) {
			if err != nil {
				t.Error(err)
			}
		})
		eng.Run()
	}
	if f.Size() != 10000 {
		t.Fatalf("size = %d", f.Size())
	}
	var got []byte
	f.ReadAt(5000, 1000, func(b []byte, err error) { got = b })
	eng.Run()
	if got[0] != 5 || got[999] != 5 {
		t.Error("append record 5 corrupt")
	}
}

func TestReadPastEOF(t *testing.T) {
	eng, fs := fsWorld(t)
	f := mustCreate(t, eng, fs, "short")
	f.WriteAt(0, []byte("abc"), func(error) {})
	eng.Run()
	var got []byte
	called := false
	f.ReadAt(2, 100, func(b []byte, err error) { got = b; called = true })
	eng.Run()
	if !called || !bytes.Equal(got, []byte("c")) {
		t.Errorf("clipped read = %q", got)
	}
	f.ReadAt(50, 10, func(b []byte, err error) {
		if b != nil || err != nil {
			t.Error("read beyond EOF should be empty, nil error")
		}
	})
	eng.Run()
}

func TestDeleteFreesPages(t *testing.T) {
	eng, fs := fsWorld(t)
	f := mustCreate(t, eng, fs, "victim")
	f.WriteAt(0, make([]byte, 8*4096), func(error) {})
	eng.Run()
	used := 0
	for _, b := range fs.bitmap {
		if b {
			used++
		}
	}
	if used != 8 {
		t.Fatalf("used pages = %d", used)
	}
	fs.Delete("victim", func(err error) {
		if err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	used = 0
	for _, b := range fs.bitmap {
		if b {
			used++
		}
	}
	if used != 0 {
		t.Errorf("pages leaked after delete: %d", used)
	}
	if _, ok := fs.Lookup("victim"); ok {
		t.Error("file survives delete")
	}
}

func TestTruncate(t *testing.T) {
	eng, fs := fsWorld(t)
	f := mustCreate(t, eng, fs, "t")
	f.WriteAt(0, make([]byte, 2*4096), func(error) {})
	eng.Run()
	f.Truncate(func(err error) {
		if err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if f.Size() != 0 {
		t.Error("size nonzero after truncate")
	}
	f.WriteAt(0, []byte("new"), func(error) {})
	eng.Run()
	var got []byte
	f.ReadAt(0, 3, func(b []byte, err error) { got = b })
	eng.Run()
	if !bytes.Equal(got, []byte("new")) {
		t.Error("write after truncate broken")
	}
}

func TestConcurrentWritesSamePageNoLostUpdate(t *testing.T) {
	// Eight concurrent partial-page writes at adjacent offsets within one
	// page: without per-page serialization, read-modify-write windows
	// overlap and updates vanish.
	eng, fs := fsWorld(t)
	f := mustCreate(t, eng, fs, "hot")
	const n = 8
	const recLen = 300
	done := 0
	for i := 0; i < n; i++ {
		rec := bytes.Repeat([]byte{byte(i + 1)}, recLen)
		f.WriteAt(uint64(i*recLen), rec, func(err error) {
			if err != nil {
				t.Errorf("write %v", err)
			}
			done++
		})
	}
	eng.Run()
	if done != n {
		t.Fatalf("done = %d", done)
	}
	var got []byte
	f.ReadAt(0, n*recLen, func(b []byte, err error) { got = b })
	eng.Run()
	for i := 0; i < n; i++ {
		for j := 0; j < recLen; j++ {
			if got[i*recLen+j] != byte(i+1) {
				t.Fatalf("lost update: record %d byte %d = %d", i, j, got[i*recLen+j])
			}
		}
	}
}

func TestMountRecoversEverything(t *testing.T) {
	eng, fs := fsWorld(t)
	f := mustCreate(t, eng, fs, "persist.dat")
	payload := bytes.Repeat([]byte{0x5A}, 9000)
	f.WriteAt(0, payload, func(err error) {
		if err != nil {
			t.Error(err)
		}
	})
	mustCreate(t, eng, fs, "other")
	eng.Run()

	// Build a new FS view over the same FTL (same flash) — a remount
	// after reset.
	fs2 := newFS(fs.ftl, FSConfig{MaxFiles: 32})
	var merr error
	fs2.Mount(func(err error) { merr = err })
	eng.Run()
	if merr != nil {
		t.Fatal(merr)
	}
	if len(fs2.List()) != 2 {
		t.Fatalf("recovered files = %v", fs2.List())
	}
	rf, ok := fs2.Lookup("persist.dat")
	if !ok {
		t.Fatal("file lost across mount")
	}
	if rf.Size() != 9000 {
		t.Fatalf("recovered size = %d", rf.Size())
	}
	var got []byte
	rf.ReadAt(0, 9000, func(b []byte, err error) { got = b })
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Error("data corrupt after remount")
	}
	// Writes continue to work without clobbering existing allocations.
	rf2 := mustCreate(t, eng, fs2, "post-mount")
	rf2.WriteAt(0, []byte("x"), func(err error) {
		if err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	var again []byte
	rf.ReadAt(0, 10, func(b []byte, err error) { again = b })
	eng.Run()
	if !bytes.Equal(again, payload[:10]) {
		t.Error("new allocation clobbered recovered file")
	}
}

func TestMountRejectsBlankDevice(t *testing.T) {
	eng := sim.NewEngine()
	geo := testGeo()
	f := newFTL(eng, newFlash(eng, geo, DefaultTiming), 0.25)
	fs := newFS(f, FSConfig{MaxFiles: 16})
	var merr error
	fs.Mount(func(err error) { merr = err })
	eng.Run()
	if merr == nil {
		t.Error("mounted an unformatted device")
	}
}

func TestDirectoryFull(t *testing.T) {
	eng, fs := fsWorld(t)
	// MaxFiles 32 -> 2 inode pages -> 32 slots.
	for i := 0; i < 32; i++ {
		mustCreate(t, eng, fs, string(rune('a'+i%26))+string(rune('0'+i/26)))
	}
	var cerr error
	fs.Create("overflow", func(_ *File, err error) { cerr = err })
	eng.Run()
	if cerr == nil {
		t.Error("33rd file accepted in a 32-slot directory")
	}
}

func TestInodeCodecRoundTrip(t *testing.T) {
	ino := inode{used: true, name: "some-file.dat", size: 123456789,
		extents: []extent{{start: 10, count: 5}, {start: 99, count: 1}}}
	got := decodeInode(encodeInode(&ino))
	if got.name != ino.name || got.size != ino.size || len(got.extents) != 2 ||
		got.extents[0] != ino.extents[0] || got.extents[1] != ino.extents[1] {
		t.Errorf("round trip: %+v", got)
	}
	empty := decodeInode(encodeInode(&inode{}))
	if empty.used {
		t.Error("empty inode decodes used")
	}
}
