// Package smartssd implements the smart SSD of §3: a storage device that
// exposes its files as bus services and serves file I/O to peer devices
// over VIRTIO queues, with no CPU anywhere in the path.
//
// The stack, bottom-up:
//
//   - flash: a NAND model with channels/dies, read/program/erase
//     latencies and per-channel serialization.
//   - FTL: a page-mapped flash translation layer with greedy garbage
//     collection and wear accounting.
//   - FS: a flat extent filesystem persisted through the FTL (superblock
//   - inode table), with full remount recovery.
//   - SSD: the self-managing device: a file service per volume
//     (discovery by "file:<name>" queries), a loader service (§2.1), and
//     the virtio endpoints serving connections.
package smartssd

import (
	"fmt"

	"nocpu/internal/sim"
)

// FlashGeometry describes the NAND array.
type FlashGeometry struct {
	Channels      int
	DiesPerChan   int
	BlocksPerDie  int
	PagesPerBlock int
	PageSize      int
}

// DefaultGeometry is a small, fast-to-simulate array: 4 ch x 2 dies x 64
// blocks x 64 pages x 4 KiB = 128 MiB raw.
var DefaultGeometry = FlashGeometry{
	Channels:      4,
	DiesPerChan:   2,
	BlocksPerDie:  64,
	PagesPerBlock: 64,
	PageSize:      4096,
}

// TotalBlocks returns the number of physical blocks.
func (g FlashGeometry) TotalBlocks() int {
	return g.Channels * g.DiesPerChan * g.BlocksPerDie
}

// TotalPages returns the number of physical pages.
func (g FlashGeometry) TotalPages() int { return g.TotalBlocks() * g.PagesPerBlock }

// FlashTiming holds NAND operation latencies (SLC-ish defaults).
type FlashTiming struct {
	Read    sim.Duration
	Program sim.Duration
	Erase   sim.Duration
}

// DefaultTiming is a fast-NAND calibration.
var DefaultTiming = FlashTiming{
	Read:    25 * sim.Microsecond,
	Program: 200 * sim.Microsecond,
	Erase:   1500 * sim.Microsecond,
}

// PPA is a physical page address: sequential page number across the
// array.
type PPA uint32

// blockOf returns the physical block index containing the page.
func (g FlashGeometry) blockOf(p PPA) int { return int(p) / g.PagesPerBlock }

// channelOf returns the channel that owns the page's block. Blocks are
// striped across channels so sequential block numbers alternate channels.
func (g FlashGeometry) channelOf(block int) int { return block % g.Channels }

// flash is the NAND array. Each channel is a FIFO server: operations on
// the same channel serialize, operations on different channels overlap.
type flash struct {
	geo      FlashGeometry
	tim      FlashTiming
	eng      *sim.Engine
	channels []*sim.Server
	pages    [][]byte // nil = erased
	erases   []uint64 // per-block erase count (wear)
	// broken simulates a failed die/controller: every op errors.
	broken bool

	reads, programs, eraseOps uint64
}

func newFlash(eng *sim.Engine, geo FlashGeometry, tim FlashTiming) *flash {
	f := &flash{
		geo:    geo,
		tim:    tim,
		eng:    eng,
		pages:  make([][]byte, geo.TotalPages()),
		erases: make([]uint64, geo.TotalBlocks()),
	}
	for i := 0; i < geo.Channels; i++ {
		f.channels = append(f.channels, sim.NewServer(eng))
	}
	return f
}

func (f *flash) chanFor(p PPA) *sim.Server {
	return f.channels[f.geo.channelOf(f.geo.blockOf(p))]
}

var errFlashBroken = fmt.Errorf("smartssd: flash failure")

// read returns the page contents (zeros for an erased page).
func (f *flash) read(p PPA, cb func([]byte, error)) {
	if int(p) >= len(f.pages) {
		cb(nil, fmt.Errorf("smartssd: read of ppa %d beyond array", p))
		return
	}
	f.reads++
	f.chanFor(p).Submit(f.tim.Read, func() {
		if f.broken {
			cb(nil, errFlashBroken)
			return
		}
		out := make([]byte, f.geo.PageSize)
		if f.pages[p] != nil {
			copy(out, f.pages[p])
		}
		cb(out, nil)
	})
}

// program writes an erased page. Programming a programmed page is an FTL
// bug and returns an error.
func (f *flash) program(p PPA, data []byte, cb func(error)) {
	if int(p) >= len(f.pages) {
		cb(fmt.Errorf("smartssd: program of ppa %d beyond array", p))
		return
	}
	if len(data) > f.geo.PageSize {
		cb(fmt.Errorf("smartssd: program of %d bytes into %d-byte page", len(data), f.geo.PageSize))
		return
	}
	buf := make([]byte, f.geo.PageSize)
	copy(buf, data)
	f.programs++
	f.chanFor(p).Submit(f.tim.Program, func() {
		if f.broken {
			cb(errFlashBroken)
			return
		}
		if f.pages[p] != nil {
			cb(fmt.Errorf("smartssd: program of non-erased ppa %d", p))
			return
		}
		f.pages[p] = buf
		cb(nil)
	})
}

// erase clears a whole block.
func (f *flash) erase(block int, cb func(error)) {
	if block < 0 || block >= f.geo.TotalBlocks() {
		cb(fmt.Errorf("smartssd: erase of block %d beyond array", block))
		return
	}
	f.eraseOps++
	f.channels[f.geo.channelOf(block)].Submit(f.tim.Erase, func() {
		if f.broken {
			cb(errFlashBroken)
			return
		}
		base := block * f.geo.PagesPerBlock
		for i := 0; i < f.geo.PagesPerBlock; i++ {
			f.pages[base+i] = nil
		}
		f.erases[block]++
		cb(nil)
	})
}
