package smartssd

import (
	"bytes"
	"testing"

	"nocpu/internal/sim"
)

func testGeo() FlashGeometry {
	return FlashGeometry{Channels: 2, DiesPerChan: 1, BlocksPerDie: 8, PagesPerBlock: 8, PageSize: 4096}
}

func TestFlashReadProgramErase(t *testing.T) {
	eng := sim.NewEngine()
	f := newFlash(eng, testGeo(), DefaultTiming)
	data := []byte("flash payload")
	var got []byte
	f.program(3, data, func(err error) {
		if err != nil {
			t.Error(err)
		}
		f.read(3, func(b []byte, err error) { got = b })
	})
	eng.Run()
	if !bytes.Equal(got[:len(data)], data) {
		t.Fatalf("read back %q", got[:len(data)])
	}
	// Program-on-programmed must fail.
	var perr error
	f.program(3, data, func(err error) { perr = err })
	eng.Run()
	if perr == nil {
		t.Error("double program accepted")
	}
	// Erase block 0 (pages 0-7) clears page 3.
	f.erase(0, func(err error) {
		if err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	f.read(3, func(b []byte, err error) { got = b })
	eng.Run()
	if got[0] != 0 {
		t.Error("erase did not clear page")
	}
	if f.erases[0] != 1 {
		t.Error("wear not counted")
	}
}

func TestFlashTiming(t *testing.T) {
	eng := sim.NewEngine()
	f := newFlash(eng, testGeo(), DefaultTiming)
	var doneAt sim.Time
	f.read(0, func([]byte, error) { doneAt = eng.Now() })
	eng.Run()
	if doneAt != sim.Time(DefaultTiming.Read) {
		t.Errorf("read completed at %v, want %v", doneAt, DefaultTiming.Read)
	}
	// Two reads on the same channel serialize; different channels overlap.
	// Geometry: block = ppa/8; channel = block%2. PPA 0 and 8 are on
	// different channels; 0 and 16 share channel 0.
	eng2 := sim.NewEngine()
	f2 := newFlash(eng2, testGeo(), DefaultTiming)
	var t1, t2, t3 sim.Time
	f2.read(0, func([]byte, error) { t1 = eng2.Now() })
	f2.read(16, func([]byte, error) { t2 = eng2.Now() })
	f2.read(8, func([]byte, error) { t3 = eng2.Now() })
	eng2.Run()
	if t1 != sim.Time(DefaultTiming.Read) || t3 != t1 {
		t.Errorf("parallel channels: t1=%v t3=%v", t1, t3)
	}
	if t2 != sim.Time(2*DefaultTiming.Read) {
		t.Errorf("same channel serialized: t2=%v", t2)
	}
}

func TestFlashBoundsAndBroken(t *testing.T) {
	eng := sim.NewEngine()
	f := newFlash(eng, testGeo(), DefaultTiming)
	var errs int
	f.read(PPA(f.geo.TotalPages()), func(_ []byte, err error) {
		if err != nil {
			errs++
		}
	})
	f.program(PPA(f.geo.TotalPages()), nil, func(err error) {
		if err != nil {
			errs++
		}
	})
	f.erase(-1, func(err error) {
		if err != nil {
			errs++
		}
	})
	f.broken = true
	f.read(0, func(_ []byte, err error) {
		if err != nil {
			errs++
		}
	})
	eng.Run()
	if errs != 4 {
		t.Errorf("errs = %d, want 4", errs)
	}
}

func TestFTLReadUnwrittenIsZeros(t *testing.T) {
	eng := sim.NewEngine()
	ftl := newFTL(eng, newFlash(eng, testGeo(), DefaultTiming), 0.25)
	var got []byte
	ftl.Read(5, func(b []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		got = b
	})
	eng.Run()
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten page not zeroed")
		}
	}
}

func TestFTLWriteReadOverwrite(t *testing.T) {
	eng := sim.NewEngine()
	ftl := newFTL(eng, newFlash(eng, testGeo(), DefaultTiming), 0.25)
	v1 := bytes.Repeat([]byte{1}, 4096)
	v2 := bytes.Repeat([]byte{2}, 4096)
	var got []byte
	ftl.Write(7, v1, func(err error) {
		if err != nil {
			t.Error(err)
		}
		ftl.Write(7, v2, func(err error) {
			if err != nil {
				t.Error(err)
			}
			ftl.Read(7, func(b []byte, err error) { got = b })
		})
	})
	eng.Run()
	if !bytes.Equal(got, v2) {
		t.Fatal("overwrite not visible")
	}
	if ftl.Stats().HostWrites != 2 {
		t.Errorf("host writes = %d", ftl.Stats().HostWrites)
	}
}

func TestFTLBounds(t *testing.T) {
	eng := sim.NewEngine()
	ftl := newFTL(eng, newFlash(eng, testGeo(), DefaultTiming), 0.25)
	var errs int
	ftl.Read(ftl.Capacity(), func(_ []byte, err error) {
		if err != nil {
			errs++
		}
	})
	ftl.Write(-1, nil, func(err error) {
		if err != nil {
			errs++
		}
	})
	eng.Run()
	if errs != 2 {
		t.Errorf("errs = %d", errs)
	}
}

func TestFTLGarbageCollection(t *testing.T) {
	// Small array: 2ch x 1die x 8blk x 8pg = 128 pages, 25% OP -> 96
	// logical. Rewriting one hot page many times forces GC.
	eng := sim.NewEngine()
	ftl := newFTL(eng, newFlash(eng, testGeo(), DefaultTiming), 0.25)
	payload := bytes.Repeat([]byte{7}, 4096)
	writes := 0
	var write func()
	write = func() {
		if writes >= 400 {
			return
		}
		writes++
		ftl.Write(writes%8, payload, func(err error) {
			if err != nil {
				t.Errorf("write %d: %v", writes, err)
				return
			}
			write()
		})
	}
	write()
	eng.Run()
	st := ftl.Stats()
	if st.GCRuns == 0 {
		t.Error("GC never ran despite 400 writes into 128 pages")
	}
	if st.Erases == 0 {
		t.Error("no erases recorded")
	}
	// The hot pages must still read back correctly after GC churn.
	var got []byte
	ftl.Read(1, func(b []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		got = b
	})
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Error("data corrupted by GC")
	}
	if wa := st.WriteAmplification(); wa < 1.0 {
		t.Errorf("write amplification %f < 1", wa)
	}
}

func TestFTLGCPreservesColdData(t *testing.T) {
	eng := sim.NewEngine()
	ftl := newFTL(eng, newFlash(eng, testGeo(), DefaultTiming), 0.25)
	cold := bytes.Repeat([]byte{0xCD}, 4096)
	hot := bytes.Repeat([]byte{0x11}, 4096)
	// Write cold data once, then hammer another page to force relocations.
	ftl.Write(50, cold, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		var loop func(i int)
		loop = func(i int) {
			if i >= 300 {
				return
			}
			ftl.Write(3, hot, func(err error) {
				if err != nil {
					t.Errorf("hot write: %v", err)
					return
				}
				loop(i + 1)
			})
		}
		loop(0)
	})
	eng.Run()
	var got []byte
	ftl.Read(50, func(b []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		got = b
	})
	eng.Run()
	if !bytes.Equal(got, cold) {
		t.Error("cold data lost during GC")
	}
}

func TestFTLWearAccounting(t *testing.T) {
	eng := sim.NewEngine()
	ftl := newFTL(eng, newFlash(eng, testGeo(), DefaultTiming), 0.25)
	if w := ftl.Wear(); w.Total != 0 || w.MinErases != 0 {
		t.Fatalf("fresh wear = %+v", w)
	}
	payload := bytes.Repeat([]byte{3}, 4096)
	var loop func(i int)
	loop = func(i int) {
		if i >= 500 {
			return
		}
		ftl.Write(i%16, payload, func(err error) {
			if err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			loop(i + 1)
		})
	}
	loop(0)
	eng.Run()
	w := ftl.Wear()
	if w.Total == 0 {
		t.Fatal("no erases after 500 writes into 128 pages")
	}
	if w.MaxErases < w.MinErases {
		t.Fatalf("inconsistent wear: %+v", w)
	}
	if w.Total != ftl.Stats().Erases {
		t.Fatalf("wear total %d != stats erases %d", w.Total, ftl.Stats().Erases)
	}
}

func TestFTLTrim(t *testing.T) {
	eng := sim.NewEngine()
	ftl := newFTL(eng, newFlash(eng, testGeo(), DefaultTiming), 0.25)
	ftl.Write(2, bytes.Repeat([]byte{9}, 4096), func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		ftl.Trim(2)
		ftl.Read(2, func(b []byte, err error) {
			if err != nil {
				t.Error(err)
			}
			if b[0] != 0 {
				t.Error("trimmed page still has data")
			}
		})
	})
	eng.Run()
}
