package smartssd

import (
	"fmt"
	"sort"

	"nocpu/internal/sim"
)

// invalidPPA / invalidLPN are sentinel mappings.
const (
	invalidPPA = PPA(0xFFFFFFFF)
	invalidLPN = uint32(0xFFFFFFFF)
)

type blockState uint8

const (
	blockFree blockState = iota
	blockOpen
	blockFull
)

// FTLStats counts translation-layer activity.
type FTLStats struct {
	HostWrites   uint64
	HostReads    uint64
	GCRuns       uint64
	GCPagesMoved uint64
	Erases       uint64
}

// WriteAmplification returns (host+GC writes)/host writes.
func (s FTLStats) WriteAmplification() float64 {
	if s.HostWrites == 0 {
		return 1
	}
	return float64(s.HostWrites+s.GCPagesMoved) / float64(s.HostWrites)
}

// ftl is a page-mapped flash translation layer with greedy GC.
type ftl struct {
	f   *flash
	eng *sim.Engine
	geo FlashGeometry

	l2p        []PPA    // logical page -> physical page
	p2l        []uint32 // physical page -> logical page (for GC)
	validCount []int    // valid pages per block
	state      []blockState
	freeBlocks []int // sorted ascending for determinism
	nextInBlk  []int // next free page offset for open blocks
	active     []int // per-channel open block (-1 none)
	rrChan     int   // round-robin channel pointer

	logicalPages int
	gcThreshold  int
	gcRunning    bool

	stats FTLStats
}

// newFTL builds the layer over a flash array. opRatio is the
// over-provisioning fraction (e.g. 0.125 keeps 12.5% of pages invisible
// to the host, which GC relies on).
func newFTL(eng *sim.Engine, f *flash, opRatio float64) *ftl {
	if opRatio < 0.05 {
		opRatio = 0.05
	}
	total := f.geo.TotalPages()
	t := &ftl{
		f:            f,
		eng:          eng,
		geo:          f.geo,
		l2p:          make([]PPA, total),
		p2l:          make([]uint32, total),
		validCount:   make([]int, f.geo.TotalBlocks()),
		state:        make([]blockState, f.geo.TotalBlocks()),
		nextInBlk:    make([]int, f.geo.TotalBlocks()),
		active:       make([]int, f.geo.Channels),
		logicalPages: int(float64(total) * (1 - opRatio)),
		gcThreshold:  2 * f.geo.Channels,
	}
	for i := range t.l2p {
		t.l2p[i] = invalidPPA
	}
	for i := range t.p2l {
		t.p2l[i] = invalidLPN
	}
	for b := 0; b < f.geo.TotalBlocks(); b++ {
		t.freeBlocks = append(t.freeBlocks, b)
	}
	for c := range t.active {
		t.active[c] = -1
	}
	return t
}

// Capacity returns the number of host-visible logical pages.
func (t *ftl) Capacity() int { return t.logicalPages }

// WearStats summarizes per-block erase counts.
type WearStats struct {
	MinErases uint64
	MaxErases uint64
	Total     uint64
}

// Wear returns the erase-count distribution across blocks.
func (t *ftl) Wear() WearStats {
	var w WearStats
	w.MinErases = ^uint64(0)
	for _, e := range t.f.erases {
		if e < w.MinErases {
			w.MinErases = e
		}
		if e > w.MaxErases {
			w.MaxErases = e
		}
		w.Total += e
	}
	if w.MinErases == ^uint64(0) {
		w.MinErases = 0
	}
	return w
}

// Stats returns a copy of the counters.
func (t *ftl) Stats() FTLStats {
	s := t.stats
	s.Erases = 0
	for _, e := range t.f.erases {
		s.Erases += e
	}
	return s
}

// takeFreeBlock pops the lowest-numbered free block, preferring one on
// the given channel.
func (t *ftl) takeFreeBlock(channel int) (int, bool) {
	for i, b := range t.freeBlocks {
		if t.geo.channelOf(b) == channel {
			t.freeBlocks = append(t.freeBlocks[:i], t.freeBlocks[i+1:]...)
			return b, true
		}
	}
	if len(t.freeBlocks) > 0 {
		b := t.freeBlocks[0]
		t.freeBlocks = t.freeBlocks[1:]
		return b, true
	}
	return 0, false
}

// allocPage reserves the next physical page for a write.
func (t *ftl) allocPage() (PPA, error) {
	// Round-robin across channels for parallelism.
	for tries := 0; tries < t.geo.Channels; tries++ {
		c := t.rrChan
		t.rrChan = (t.rrChan + 1) % t.geo.Channels
		b := t.active[c]
		if b < 0 {
			nb, ok := t.takeFreeBlock(c)
			if !ok {
				continue
			}
			t.active[c] = nb
			t.state[nb] = blockOpen
			t.nextInBlk[nb] = 0
			b = nb
		}
		ppa := PPA(b*t.geo.PagesPerBlock + t.nextInBlk[b])
		t.nextInBlk[b]++
		if t.nextInBlk[b] == t.geo.PagesPerBlock {
			t.state[b] = blockFull
			t.active[c] = -1
		}
		return ppa, nil
	}
	return 0, fmt.Errorf("smartssd: ftl out of space (gc cannot keep up)")
}

// invalidate drops the mapping for a physical page.
func (t *ftl) invalidate(ppa PPA) {
	if ppa == invalidPPA {
		return
	}
	if t.p2l[ppa] != invalidLPN {
		t.p2l[ppa] = invalidLPN
		t.validCount[t.geo.blockOf(ppa)]--
	}
}

// Read fetches a logical page. An unwritten page reads as zeros without
// touching flash.
func (t *ftl) Read(lpn int, cb func([]byte, error)) {
	if lpn < 0 || lpn >= t.logicalPages {
		cb(nil, fmt.Errorf("smartssd: read of lpn %d beyond capacity %d", lpn, t.logicalPages))
		return
	}
	t.stats.HostReads++
	ppa := t.l2p[lpn]
	if ppa == invalidPPA {
		cb(make([]byte, t.geo.PageSize), nil)
		return
	}
	t.f.read(ppa, cb)
}

// Write stores a logical page (always out-of-place).
func (t *ftl) Write(lpn int, data []byte, cb func(error)) {
	if lpn < 0 || lpn >= t.logicalPages {
		cb(fmt.Errorf("smartssd: write of lpn %d beyond capacity %d", lpn, t.logicalPages))
		return
	}
	t.stats.HostWrites++
	ppa, err := t.allocPage()
	if err != nil {
		cb(err)
		return
	}
	// Reserve the mapping target now; commit on program completion.
	t.f.program(ppa, data, func(err error) {
		if err != nil {
			cb(err)
			return
		}
		t.invalidate(t.l2p[lpn])
		t.l2p[lpn] = ppa
		t.p2l[ppa] = uint32(lpn)
		t.validCount[t.geo.blockOf(ppa)]++
		cb(nil)
		t.maybeGC()
	})
}

// Trim invalidates a logical page (file deletion).
func (t *ftl) Trim(lpn int) {
	if lpn < 0 || lpn >= t.logicalPages {
		return
	}
	if ppa := t.l2p[lpn]; ppa != invalidPPA {
		t.invalidate(ppa)
		t.l2p[lpn] = invalidPPA
	}
}

// maybeGC starts a collection cycle when free blocks run low.
func (t *ftl) maybeGC() {
	if t.gcRunning || len(t.freeBlocks) >= t.gcThreshold {
		return
	}
	victim := t.pickVictim()
	if victim < 0 {
		return
	}
	t.gcRunning = true
	t.stats.GCRuns++
	t.relocateBlock(victim, 0, func() {
		t.f.erase(victim, func(err error) {
			t.gcRunning = false
			if err != nil {
				return // broken flash: GC abandons quietly, writes will fail
			}
			t.state[victim] = blockFree
			t.nextInBlk[victim] = 0
			t.freeBlocks = append(t.freeBlocks, victim)
			sort.Ints(t.freeBlocks)
			t.maybeGC()
		})
	})
}

// pickVictim chooses the full block with the fewest valid pages.
func (t *ftl) pickVictim() int {
	best, bestValid := -1, 1<<30
	for b := 0; b < t.geo.TotalBlocks(); b++ {
		if t.state[b] != blockFull {
			continue
		}
		if t.validCount[b] < bestValid {
			best, bestValid = b, t.validCount[b]
		}
	}
	return best
}

// relocateBlock moves every valid page of the block elsewhere, then calls
// done.
func (t *ftl) relocateBlock(block, pageIdx int, done func()) {
	if pageIdx >= t.geo.PagesPerBlock {
		done()
		return
	}
	ppa := PPA(block*t.geo.PagesPerBlock + pageIdx)
	lpn := t.p2l[ppa]
	if lpn == invalidLPN {
		t.relocateBlock(block, pageIdx+1, done)
		return
	}
	t.f.read(ppa, func(data []byte, err error) {
		if err != nil {
			done()
			return
		}
		dst, aerr := t.allocPage()
		if aerr != nil {
			done()
			return
		}
		t.f.program(dst, data, func(err error) {
			if err != nil {
				done()
				return
			}
			// The host may have rewritten the LPN while we copied; only
			// commit if our source is still current.
			if t.l2p[lpn] == ppa {
				t.invalidate(ppa)
				t.l2p[lpn] = dst
				t.p2l[dst] = lpn
				t.validCount[t.geo.blockOf(dst)]++
				t.stats.GCPagesMoved++
			} else {
				// Stale copy: the destination page holds garbage now.
				t.p2l[dst] = invalidLPN
			}
			t.relocateBlock(block, pageIdx+1, done)
		})
	})
}
