package smartssd

import (
	"encoding/binary"
	"fmt"
)

// The file-access protocol carried in virtqueue request/response cells.
// The smart NIC's KVS runtime speaks this to the SSD's file service; no
// bus traffic is involved once the queue is connected — this is pure data
// plane.

// FileOp is the request opcode.
type FileOp uint8

// File operations.
const (
	OpRead FileOp = iota + 1
	OpWrite
	OpAppend
	OpStat
	OpTruncate
	// OpRename renames the connection's file to the name in Data,
	// replacing any existing file of that name (atomic replace for
	// compaction).
	OpRename
)

func (o FileOp) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpAppend:
		return "append"
	case OpStat:
		return "stat"
	case OpTruncate:
		return "truncate"
	case OpRename:
		return "rename"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Status is the response code.
type Status uint8

// Response statuses.
const (
	StatusOK Status = iota
	StatusBadRequest
	StatusIOError
	// StatusBusy: the serving side refused the request under load (the
	// centralized kernel's mediated-I/O backlog bound). Retryable.
	StatusBusy
)

// FileReq is a decoded request.
type FileReq struct {
	Op   FileOp
	Off  uint64
	Len  uint32 // read length
	Data []byte // write/append payload
}

// FileResp is a decoded response.
type FileResp struct {
	Status Status
	Size   uint64 // stat/append: resulting file size
	Data   []byte // read payload
}

// EncodeFileReq serializes a request: op u8 | off u64 | len u32 | data.
func EncodeFileReq(r FileReq) []byte {
	b := make([]byte, 13+len(r.Data))
	b[0] = byte(r.Op)
	binary.LittleEndian.PutUint64(b[1:], r.Off)
	binary.LittleEndian.PutUint32(b[9:], r.Len)
	copy(b[13:], r.Data)
	return b
}

// DecodeFileReq parses a request.
func DecodeFileReq(b []byte) (FileReq, error) {
	if len(b) < 13 {
		return FileReq{}, fmt.Errorf("smartssd: short file request (%d bytes)", len(b))
	}
	r := FileReq{
		Op:  FileOp(b[0]),
		Off: binary.LittleEndian.Uint64(b[1:]),
		Len: binary.LittleEndian.Uint32(b[9:]),
	}
	if len(b) > 13 {
		r.Data = append([]byte(nil), b[13:]...)
	}
	return r, nil
}

// EncodeFileResp serializes a response: status u8 | size u64 | data.
func EncodeFileResp(r FileResp) []byte {
	b := make([]byte, 9+len(r.Data))
	b[0] = byte(r.Status)
	binary.LittleEndian.PutUint64(b[1:], r.Size)
	copy(b[9:], r.Data)
	return b
}

// DecodeFileResp parses a response.
func DecodeFileResp(b []byte) (FileResp, error) {
	if len(b) < 9 {
		return FileResp{}, fmt.Errorf("smartssd: short file response (%d bytes)", len(b))
	}
	r := FileResp{
		Status: Status(b[0]),
		Size:   binary.LittleEndian.Uint64(b[1:]),
	}
	if len(b) > 9 {
		r.Data = append([]byte(nil), b[9:]...)
	}
	return r, nil
}

// RespHeaderBytes is the fixed response overhead; a read of N bytes needs
// a cell of at least N+RespHeaderBytes.
const RespHeaderBytes = 9

// ReqHeaderBytes is the fixed request overhead.
const ReqHeaderBytes = 13
