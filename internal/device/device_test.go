package device

import (
	"testing"

	"nocpu/internal/bus"
	"nocpu/internal/interconnect"
	"nocpu/internal/msg"
	"nocpu/internal/physmem"
	"nocpu/internal/sim"
	"nocpu/internal/trace"
)

type world struct {
	eng *sim.Engine
	fab *interconnect.Fabric
	bus *bus.Bus
	tr  *trace.Tracer
}

func newWorld(t *testing.T, busCfg bus.Config) *world {
	t.Helper()
	eng := sim.NewEngine()
	mem := physmem.MustNew(1024 * physmem.PageSize)
	return &world{
		eng: eng,
		fab: interconnect.NewFabric(eng, mem, interconnect.DefaultCosts),
		bus: bus.New(eng, busCfg, nil),
		tr:  trace.New(0),
	}
}

func (w *world) newDev(t *testing.T, id msg.DeviceID, name string) *Device {
	t.Helper()
	d, err := New(w.eng, w.bus, w.fab, w.tr, Config{
		ID: id, Name: name, Role: msg.RoleAccelerator,
		SelfTest: 10 * sim.Microsecond, ResetDelay: 50 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// echoService is a minimal service for session tests.
type echoService struct {
	name      string
	opens     int
	connects  int
	closes    int
	refuseAll bool
}

func (s *echoService) Name() string            { return s.name }
func (s *echoService) Match(query string) bool { return query == "echo" || query == s.name }
func (s *echoService) Open(src msg.DeviceID, req *msg.OpenReq) *msg.OpenResp {
	s.opens++
	if s.refuseAll {
		return &msg.OpenResp{Service: s.name, App: req.App, OK: false, Reason: "refused"}
	}
	return &msg.OpenResp{Service: s.name, App: req.App, OK: true, ConnID: uint32(s.opens), SharedBytes: 4096}
}
func (s *echoService) Connect(src msg.DeviceID, req *msg.ConnectReq) *msg.ConnectResp {
	s.connects++
	return &msg.ConnectResp{ConnID: req.ConnID, OK: true}
}
func (s *echoService) Close(src msg.DeviceID, req *msg.CloseReq) *msg.CloseResp {
	s.closes++
	return &msg.CloseResp{ConnID: req.ConnID, OK: true}
}

func TestLifecycleBoot(t *testing.T) {
	w := newWorld(t, bus.DefaultConfig)
	d := w.newDev(t, 1, "dev")
	aliveAt := sim.Time(-1)
	d.OnAlive = func() { aliveAt = w.eng.Now() }
	if d.State() != StateOff {
		t.Fatal("not off before start")
	}
	d.Start()
	if d.State() != StateInit {
		t.Fatal("not init after start")
	}
	w.eng.Run()
	if d.State() != StateAlive {
		t.Fatal("not alive after run")
	}
	if aliveAt != sim.Time(10*sim.Microsecond) {
		t.Errorf("alive at %v, want 10us (self-test)", aliveAt)
	}
	if !w.bus.Alive(1) {
		t.Error("bus does not see device alive")
	}
}

func TestDoubleStartPanics(t *testing.T) {
	w := newWorld(t, bus.DefaultConfig)
	d := w.newDev(t, 1, "dev")
	d.Start()
	defer func() {
		if recover() == nil {
			t.Error("double Start did not panic")
		}
	}()
	d.Start()
}

func TestDiscoveryAnswering(t *testing.T) {
	w := newWorld(t, bus.DefaultConfig)
	provider := w.newDev(t, 1, "ssd")
	provider.AddService(&echoService{name: "fs/kv.dat"})
	client := w.newDev(t, 2, "nic")
	var resp *msg.DiscoverResp
	client.Handle(msg.KindDiscoverResp, func(env msg.Envelope) {
		resp = env.Msg.(*msg.DiscoverResp)
	})
	provider.Start()
	client.Start()
	w.eng.Run()
	client.Send(msg.Broadcast, &msg.DiscoverReq{Query: "fs/kv.dat", Nonce: 77})
	w.eng.Run()
	if resp == nil || resp.Service != "fs/kv.dat" || resp.Nonce != 77 {
		t.Fatalf("discovery response = %+v", resp)
	}
	// Query nobody matches: silence.
	resp = nil
	client.Send(msg.Broadcast, &msg.DiscoverReq{Query: "no-such", Nonce: 78})
	w.eng.Run()
	if resp != nil {
		t.Error("got response for unmatched query")
	}
}

func TestSessionRouting(t *testing.T) {
	w := newWorld(t, bus.DefaultConfig)
	provider := w.newDev(t, 1, "ssd")
	svc := &echoService{name: "svc"}
	provider.AddService(svc)
	client := w.newDev(t, 2, "nic")
	var opened *msg.OpenResp
	var connected *msg.ConnectResp
	var closed *msg.CloseResp
	client.Handle(msg.KindOpenResp, func(e msg.Envelope) { opened = e.Msg.(*msg.OpenResp) })
	client.Handle(msg.KindConnectResp, func(e msg.Envelope) { connected = e.Msg.(*msg.ConnectResp) })
	client.Handle(msg.KindCloseResp, func(e msg.Envelope) { closed = e.Msg.(*msg.CloseResp) })
	provider.Start()
	client.Start()
	w.eng.Run()

	client.Send(1, &msg.OpenReq{Service: "svc", App: 3, Token: 1})
	w.eng.Run()
	if opened == nil || !opened.OK || opened.SharedBytes != 4096 {
		t.Fatalf("open = %+v", opened)
	}
	client.Send(1, &msg.ConnectReq{Service: "svc", ConnID: opened.ConnID, App: 3})
	w.eng.Run()
	if connected == nil || !connected.OK {
		t.Fatalf("connect = %+v", connected)
	}
	client.Send(1, &msg.CloseReq{Service: "svc", ConnID: opened.ConnID, App: 3})
	w.eng.Run()
	if closed == nil || !closed.OK {
		t.Fatalf("close = %+v", closed)
	}
	if svc.opens != 1 || svc.connects != 1 || svc.closes != 1 {
		t.Errorf("service counters: %+v", svc)
	}

	// Unknown service name must produce a negative reply, not silence.
	opened = nil
	client.Send(1, &msg.OpenReq{Service: "ghost", App: 3})
	w.eng.Run()
	if opened == nil || opened.OK {
		t.Errorf("open of ghost service = %+v", opened)
	}
}

func TestDuplicateServicePanics(t *testing.T) {
	w := newWorld(t, bus.DefaultConfig)
	d := w.newDev(t, 1, "dev")
	d.AddService(&echoService{name: "s"})
	defer func() {
		if recover() == nil {
			t.Error("duplicate service did not panic")
		}
	}()
	d.AddService(&echoService{name: "s"})
}

func TestChassisManagedKindsRejected(t *testing.T) {
	w := newWorld(t, bus.DefaultConfig)
	d := w.newDev(t, 1, "dev")
	defer func() {
		if recover() == nil {
			t.Error("Handle(KindOpenReq) did not panic")
		}
	}()
	d.Handle(msg.KindOpenReq, func(msg.Envelope) {})
}

func TestHeartbeatsFlow(t *testing.T) {
	busCfg := bus.DefaultConfig
	busCfg.WatchdogTimeout = 200 * sim.Microsecond
	w := newWorld(t, busCfg)
	d, err := New(w.eng, w.bus, w.fab, w.tr, Config{
		ID: 1, Name: "dev", Role: msg.RoleAccelerator,
		SelfTest: 1 * sim.Microsecond, HeartbeatEvery: 50 * sim.Microsecond,
		ResetDelay: 10 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	w.eng.RunUntil(sim.Time(2 * sim.Millisecond))
	if !w.bus.Alive(1) {
		t.Error("heartbeating device marked dead by watchdog")
	}
}

func TestKillThenWatchdogThenRecovery(t *testing.T) {
	busCfg := bus.DefaultConfig
	busCfg.WatchdogTimeout = 200 * sim.Microsecond
	w := newWorld(t, busCfg)
	mk := func(id msg.DeviceID, name string) *Device {
		d, err := New(w.eng, w.bus, w.fab, w.tr, Config{
			ID: id, Name: name, Role: msg.RoleAccelerator,
			SelfTest: 1 * sim.Microsecond, HeartbeatEvery: 50 * sim.Microsecond,
			ResetDelay: 30 * sim.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	victim := mk(1, "victim")
	observer := mk(2, "observer")
	var failedPeer msg.DeviceID
	observer.OnPeerFailed = func(id msg.DeviceID) { failedPeer = id }
	resets := 0
	victim.OnReset = func() { resets++ }
	victim.Start()
	observer.Start()
	w.eng.RunUntil(sim.Time(100 * sim.Microsecond))

	victim.Kill()
	w.eng.RunUntil(sim.Time(1 * sim.Millisecond))

	if failedPeer != 1 {
		t.Errorf("observer saw failure of %v, want dev1", failedPeer)
	}
	if resets != 1 {
		t.Errorf("victim reset %d times, want 1", resets)
	}
	if victim.State() != StateAlive {
		t.Errorf("victim state %v after recovery window", victim.State())
	}
	if !w.bus.Alive(1) {
		t.Error("bus does not see recovered device")
	}
}

func TestUnrecoverableDeviceStaysDead(t *testing.T) {
	busCfg := bus.DefaultConfig
	busCfg.WatchdogTimeout = 100 * sim.Microsecond
	w := newWorld(t, busCfg)
	d, err := New(w.eng, w.bus, w.fab, w.tr, Config{
		ID: 1, Name: "dev", Role: msg.RoleAccelerator,
		SelfTest: 1 * sim.Microsecond, HeartbeatEvery: 20 * sim.Microsecond,
		ResetDelay: 0, // cannot recover
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	w.eng.RunUntil(sim.Time(50 * sim.Microsecond))
	d.Kill()
	w.eng.RunUntil(sim.Time(1 * sim.Millisecond))
	if d.State() != StateFailed {
		t.Errorf("unrecoverable device state = %v", d.State())
	}
	if w.bus.Alive(1) {
		t.Error("bus believes dead device alive")
	}
}

func TestFailedDeviceIgnoresSessionTraffic(t *testing.T) {
	w := newWorld(t, bus.DefaultConfig)
	provider := w.newDev(t, 1, "ssd")
	svc := &echoService{name: "svc"}
	provider.AddService(svc)
	client := w.newDev(t, 2, "nic")
	provider.Start()
	client.Start()
	w.eng.Run()
	provider.Kill()
	client.Send(1, &msg.OpenReq{Service: "svc", App: 1})
	w.eng.Run()
	if svc.opens != 0 {
		t.Error("dead provider processed an open")
	}
}

func TestNewValidation(t *testing.T) {
	w := newWorld(t, bus.DefaultConfig)
	if _, err := New(w.eng, w.bus, w.fab, w.tr, Config{ID: 1, Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New(w.eng, w.bus, w.fab, w.tr, Config{ID: msg.BusID, Name: "x"}); err == nil {
		t.Error("reserved id accepted")
	}
}
