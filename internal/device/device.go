// Package device is the self-managing-device framework of §2.1.
//
// A device in the CPU-less machine "must manage its own internal state
// ... expose the services it provides, and provide a separate context for
// each instance of a service". This package supplies the machinery common
// to every device — lifecycle (self-test → Hello → heartbeats → failure →
// reset), broadcast-discovery answering, service-session routing
// (Open/Connect/Close), and access to the data plane — so concrete
// devices (smart SSD, smart NIC, memory controller) only implement their
// service logic.
package device

import (
	"fmt"

	"nocpu/internal/bus"
	"nocpu/internal/interconnect"
	"nocpu/internal/iommu"
	"nocpu/internal/msg"
	"nocpu/internal/sim"
	"nocpu/internal/trace"
)

// State is the device lifecycle state.
type State uint8

// Lifecycle states.
const (
	StateOff State = iota
	StateInit
	StateAlive
	StateFailed
)

func (s State) String() string {
	switch s {
	case StateOff:
		return "off"
	case StateInit:
		return "init"
	case StateAlive:
		return "alive"
	case StateFailed:
		return "failed"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Config describes a device's identity and lifecycle timing.
type Config struct {
	ID   msg.DeviceID
	Name string
	Role msg.Role
	// SelfTest is the power-on self-test duration before Hello (§2.2).
	SelfTest sim.Duration
	// HeartbeatEvery is the watchdog keep-alive period; 0 disables.
	HeartbeatEvery sim.Duration
	// ResetDelay is how long the device needs to come back after a bus
	// Reset. 0 means the device cannot recover (stays failed).
	ResetDelay sim.Duration
	// IOMMU sets the device's translation-cache geometry.
	IOMMU iommu.Config
}

// Service is one resource a device exposes on the bus (§2.1: "exposing
// each one as a service"). Implementations own per-connection contexts
// and must isolate them from one another.
type Service interface {
	// Name is the concrete service name carried in OpenReq.
	Name() string
	// Match reports whether this service answers a discovery query.
	Match(query string) bool
	// Open creates a connection context (or refuses).
	Open(src msg.DeviceID, req *msg.OpenReq) *msg.OpenResp
	// Connect binds the requester's shared-memory queue layout to the
	// connection.
	Connect(src msg.DeviceID, req *msg.ConnectReq) *msg.ConnectResp
	// Close tears a connection down.
	Close(src msg.DeviceID, req *msg.CloseReq) *msg.CloseResp
}

// Device is the common chassis concrete devices embed.
type Device struct {
	cfg Config
	eng *sim.Engine
	tr  *trace.Tracer

	busPort *bus.Port
	fabric  *interconnect.Fabric
	fabPort *interconnect.Port
	mmu     *iommu.IOMMU

	state      State
	hbSeq      uint64
	hbTimer    *sim.Timer
	helloTimer *sim.Timer
	helloTries int
	services   map[string]Service
	svcOrder   []string // deterministic discovery-answer order

	// handlers routes non-session messages (alloc responses, errors, ...)
	// registered by the concrete device.
	handlers map[msg.Kind]func(env msg.Envelope)

	// OnReset is called when the device comes back from a bus Reset; the
	// concrete device rebuilds its volatile state there.
	OnReset func()
	// OnPeerFailed is called on DeviceFailed broadcasts.
	OnPeerFailed func(id msg.DeviceID)
	// OnAlive is called when the device reaches StateAlive (initial boot
	// and after each recovery).
	OnAlive func()
}

// New attaches a fresh device chassis to the bus and fabric. The device
// owns its IOMMU, but only the bus can program it — the device keeps no
// reference that allows mapping (self-mapping is the §2.2 security
// anti-goal); it holds the IOMMU only to pass to its DMA port and for
// fault statistics.
func New(eng *sim.Engine, b *bus.Bus, fab *interconnect.Fabric, tr *trace.Tracer, cfg Config) (*Device, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("device: empty name")
	}
	d := &Device{
		cfg:      cfg,
		eng:      eng,
		tr:       tr,
		fabric:   fab,
		mmu:      iommu.New(cfg.Name, fab.Memory(), cfg.IOMMU),
		services: make(map[string]Service),
		handlers: make(map[msg.Kind]func(msg.Envelope)),
	}
	d.fabPort = fab.NewPort(cfg.Name, d.mmu)
	port, err := b.Attach(cfg.ID, cfg.Name, cfg.Role, d.mmu, d.receive)
	if err != nil {
		return nil, err
	}
	d.busPort = port
	return d, nil
}

// Accessors.
func (d *Device) ID() msg.DeviceID             { return d.cfg.ID }
func (d *Device) Name() string                 { return d.cfg.Name }
func (d *Device) State() State                 { return d.state }
func (d *Device) Incarnation() uint32          { return d.busPort.Incarnation() }
func (d *Device) Engine() *sim.Engine          { return d.eng }
func (d *Device) Fabric() *interconnect.Fabric { return d.fabric }
func (d *Device) DMA() *interconnect.Port      { return d.fabPort }
func (d *Device) IOMMU() *iommu.IOMMU          { return d.mmu }
func (d *Device) Tracer() *trace.Tracer        { return d.tr }

// AddService registers a service before Start.
func (d *Device) AddService(s Service) {
	if _, dup := d.services[s.Name()]; dup {
		panic(fmt.Sprintf("device %s: duplicate service %q", d.cfg.Name, s.Name()))
	}
	d.services[s.Name()] = s
	d.svcOrder = append(d.svcOrder, s.Name())
}

// Handle routes a message kind to fn. Session kinds (discover/open/
// connect/close requests) are managed by the chassis and cannot be
// overridden.
func (d *Device) Handle(k msg.Kind, fn func(env msg.Envelope)) {
	//lint:allow kindswitch this is a denylist guard over the chassis-managed kinds, not a dispatch; every other kind is intentionally registrable here
	switch k {
	case msg.KindDiscoverReq, msg.KindOpenReq, msg.KindConnectReq, msg.KindCloseReq, msg.KindReset, msg.KindDeviceFailed:
		panic(fmt.Sprintf("device %s: kind %v is chassis-managed", d.cfg.Name, k))
	}
	d.handlers[k] = fn
}

// Send transmits a message on the system bus and returns the link-layer
// sequence number the port stamped on it (for retry correlation).
func (d *Device) Send(dst msg.DeviceID, m msg.Message) uint32 {
	return d.busPort.Send(dst, m)
}

// Start powers the device on: self-test, then Hello, then heartbeats.
func (d *Device) Start() {
	if d.state != StateOff {
		panic(fmt.Sprintf("device %s: Start in state %v", d.cfg.Name, d.state))
	}
	d.state = StateInit
	d.tr.Record(d.eng.Now(), d.cfg.Name, "", "self-test", "")
	d.eng.After(d.cfg.SelfTest, d.becomeAlive)
}

func (d *Device) becomeAlive() {
	d.state = StateAlive
	d.helloTries = 0
	d.sendHello()
	d.scheduleHeartbeat()
	if d.OnAlive != nil {
		d.OnAlive()
	}
}

// Hello retransmission (§4: enrollment must survive a lossy bus). The
// retry timer is stopped by the HelloAck; in a fault-free run it never
// fires, and a stopped timer leaves the event schedule bit-identical.
const (
	helloRetryBase = 2 * sim.Millisecond
	helloRetryMax  = 5
)

func (d *Device) sendHello() {
	d.Send(msg.BusID, &msg.Hello{Role: d.cfg.Role, Name: d.cfg.Name, Services: append([]string(nil), d.svcOrder...), Incarnation: d.busPort.Incarnation()})
	if d.helloTries >= helloRetryMax {
		// Budget exhausted: give up rather than retry forever (an
		// unbounded timer would keep the simulation from draining). The
		// device stays up; the bus simply never learned of it.
		d.tr.Record(d.eng.Now(), d.cfg.Name, "", "hello-abandoned", fmt.Sprintf("after %d attempts", d.helloTries+1))
		return
	}
	delay := helloRetryBase << uint(d.helloTries)
	d.helloTries++
	d.helloTimer = d.eng.After(delay, func() {
		if d.state != StateAlive {
			return
		}
		d.tr.Record(d.eng.Now(), d.cfg.Name, "", "hello-retry", fmt.Sprintf("attempt %d", d.helloTries+1))
		d.sendHello()
	})
}

func (d *Device) scheduleHeartbeat() {
	if d.cfg.HeartbeatEvery <= 0 {
		return
	}
	d.hbTimer = d.eng.After(d.cfg.HeartbeatEvery, func() {
		if d.state != StateAlive {
			return
		}
		d.hbSeq++
		d.Send(msg.BusID, &msg.Heartbeat{Seq: d.hbSeq})
		d.scheduleHeartbeat()
	})
}

// Kill simulates a hard device failure: the device stops responding and
// stops heartbeating. The bus watchdog will eventually notice (§4).
func (d *Device) Kill() {
	d.state = StateFailed
	if d.hbTimer != nil {
		d.hbTimer.Stop()
	}
	if d.helloTimer != nil {
		d.helloTimer.Stop()
	}
	d.tr.Record(d.eng.Now(), d.cfg.Name, "", "killed", "")
}

// lookupService resolves a session's service: exact name first, then the
// first registered service whose Match accepts it (services like the
// SSD's file service answer a whole family of names, "file:<path>").
func (d *Device) lookupService(name string) Service {
	if s, ok := d.services[name]; ok {
		return s
	}
	for _, n := range d.svcOrder {
		if d.services[n].Match(name) {
			return d.services[n]
		}
	}
	return nil
}

// receive is the bus delivery entry point.
func (d *Device) receive(env msg.Envelope) {
	if d.state == StateFailed {
		// A dead device processes nothing except a Reset, and only if the
		// hardware can still recover.
		if _, isReset := env.Msg.(*msg.Reset); isReset && d.cfg.ResetDelay > 0 {
			d.tr.Record(d.eng.Now(), d.cfg.Name, "", "resetting", "")
			d.state = StateInit
			d.eng.After(d.cfg.ResetDelay, func() {
				// The revived device is a new incarnation: everything it
				// sends from here on is stamped so the bus can fence the
				// old life's in-flight messages. Pure port state — the
				// restart itself adds no bus traffic.
				d.busPort.NewIncarnation()
				if d.OnReset != nil {
					d.OnReset()
				}
				d.mmu.FlushTLB()
				d.state = StateAlive
				d.Send(msg.BusID, &msg.ResetDone{})
				d.scheduleHeartbeat()
				if d.OnAlive != nil {
					d.OnAlive()
				}
			})
		}
		return
	}
	if d.state != StateAlive {
		return
	}
	switch m := env.Msg.(type) {
	case *msg.DiscoverReq:
		for _, name := range d.svcOrder {
			if d.services[name].Match(m.Query) {
				// Answer with the query itself as the session name: a
				// family service ("file") serves many concrete names
				// ("file:kv.dat"), and lookupService resolves either.
				d.Send(env.Src, &msg.DiscoverResp{Query: m.Query, Nonce: m.Nonce, Service: m.Query})
				break
			}
		}
	case *msg.OpenReq:
		s := d.lookupService(m.Service)
		if s == nil {
			d.Send(env.Src, &msg.OpenResp{Service: m.Service, App: m.App, OK: false, Reason: "no such service"})
			return
		}
		d.Send(env.Src, s.Open(env.Src, m))
	case *msg.ConnectReq:
		s := d.lookupService(m.Service)
		if s == nil {
			d.Send(env.Src, &msg.ConnectResp{ConnID: m.ConnID, OK: false, Reason: "no such service"})
			return
		}
		d.Send(env.Src, s.Connect(env.Src, m))
	case *msg.CloseReq:
		s := d.lookupService(m.Service)
		if s == nil {
			d.Send(env.Src, &msg.CloseResp{ConnID: m.ConnID, OK: false})
			return
		}
		d.Send(env.Src, s.Close(env.Src, m))
	case *msg.DeviceFailed:
		if d.OnPeerFailed != nil {
			d.OnPeerFailed(m.Device)
		}
	case *msg.Reset:
		// Reset of an alive device: treat as failure plus recovery.
		d.Kill()
		d.receive(env)
	case *msg.HelloAck:
		if d.helloTimer != nil {
			d.helloTimer.Stop()
			d.helloTimer = nil
		}
	case *msg.CreditUpdate:
		// Flow-control replenishment is port plumbing, not device logic:
		// hand it straight to the bus port, which drains stalled sends.
		d.busPort.AddCredits(m.Credits, m.ForInc)
	default:
		if h, ok := d.handlers[env.Msg.Kind()]; ok {
			h(env)
		}
	}
}
