// Package physmem simulates the machine's physical memory: a flat
// byte-addressable store plus a buddy allocator handing out 4 KiB frames.
//
// Every byte that moves through the emulated machine — virtqueue rings,
// file data staged by the smart SSD, IOMMU page tables — lives in a Memory
// and is reached by physical address, exactly as it would be on the real
// interconnect. There is no back door: devices read and write physical
// memory only through the DMA engine, which translates via their IOMMU.
package physmem

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the frame size. The IOMMU uses the same granule.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Addr is a physical byte address.
type Addr uint64

// Frame is a physical frame number (Addr >> PageShift).
type Frame uint64

// Addr returns the base physical address of the frame.
func (f Frame) Addr() Addr { return Addr(f) << PageShift }

// FrameOf returns the frame containing the address.
func FrameOf(a Addr) Frame { return Frame(a >> PageShift) }

// Memory is the flat physical memory plus its frame allocator.
type Memory struct {
	data  []byte
	buddy *buddy
	// owner tracks which allocation (by tag) owns each allocated frame;
	// used by tests and the memory controller to audit leaks.
	allocBytes uint64
}

// New creates a memory of the given size, which must be a positive
// multiple of PageSize.
func New(size uint64) (*Memory, error) {
	if size == 0 || size%PageSize != 0 {
		return nil, fmt.Errorf("physmem: size %d is not a positive multiple of %d", size, PageSize)
	}
	return &Memory{
		data:  make([]byte, size),
		buddy: newBuddy(size / PageSize),
	}, nil
}

// MustNew is New for static configuration; it panics on a bad size.
func MustNew(size uint64) *Memory {
	m, err := New(size)
	if err != nil {
		panic(err)
	}
	return m
}

// Size returns the total memory size in bytes.
func (m *Memory) Size() uint64 { return uint64(len(m.data)) }

// Frames returns the total number of frames.
func (m *Memory) Frames() uint64 { return uint64(len(m.data)) / PageSize }

// AllocatedBytes returns the bytes currently handed out by the allocator.
func (m *Memory) AllocatedBytes() uint64 { return m.allocBytes }

func (m *Memory) check(addr Addr, n int) error {
	if n < 0 || uint64(addr) > uint64(len(m.data)) || uint64(addr)+uint64(n) > uint64(len(m.data)) {
		return fmt.Errorf("physmem: access [%#x, %#x) outside memory of %d bytes", addr, uint64(addr)+uint64(n), len(m.data))
	}
	return nil
}

// Read copies n bytes at addr into a fresh slice.
func (m *Memory) Read(addr Addr, n int) ([]byte, error) {
	if err := m.check(addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, m.data[addr:])
	return out, nil
}

// ReadInto copies len(dst) bytes at addr into dst.
func (m *Memory) ReadInto(addr Addr, dst []byte) error {
	if err := m.check(addr, len(dst)); err != nil {
		return err
	}
	copy(dst, m.data[addr:])
	return nil
}

// Write copies src into memory at addr.
func (m *Memory) Write(addr Addr, src []byte) error {
	if err := m.check(addr, len(src)); err != nil {
		return err
	}
	copy(m.data[addr:], src)
	return nil
}

// ReadU64 reads a little-endian uint64 at addr (used for PTEs and ring
// indices; the emulated machine is little-endian throughout).
func (m *Memory) ReadU64(addr Addr) (uint64, error) {
	if err := m.check(addr, 8); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(m.data[addr:]), nil
}

// WriteU64 writes a little-endian uint64 at addr.
func (m *Memory) WriteU64(addr Addr, v uint64) error {
	if err := m.check(addr, 8); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(m.data[addr:], v)
	return nil
}

// ReadU32 reads a little-endian uint32 at addr.
func (m *Memory) ReadU32(addr Addr) (uint32, error) {
	if err := m.check(addr, 4); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(m.data[addr:]), nil
}

// WriteU32 writes a little-endian uint32 at addr.
func (m *Memory) WriteU32(addr Addr, v uint32) error {
	if err := m.check(addr, 4); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(m.data[addr:], v)
	return nil
}

// ReadU16 reads a little-endian uint16 at addr.
func (m *Memory) ReadU16(addr Addr) (uint16, error) {
	if err := m.check(addr, 2); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(m.data[addr:]), nil
}

// WriteU16 writes a little-endian uint16 at addr.
func (m *Memory) WriteU16(addr Addr, v uint16) error {
	if err := m.check(addr, 2); err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(m.data[addr:], v)
	return nil
}

// Zero clears n bytes at addr.
func (m *Memory) Zero(addr Addr, n int) error {
	if err := m.check(addr, n); err != nil {
		return err
	}
	clear(m.data[addr : uint64(addr)+uint64(n)])
	return nil
}

// AllocFrames allocates n contiguous frames (rounded up to a power of two
// internally by the buddy allocator, but exactly n are accounted and the
// remainder returned to the free lists). It returns the first frame.
func (m *Memory) AllocFrames(n int) (Frame, error) {
	if n <= 0 {
		return 0, fmt.Errorf("physmem: alloc of %d frames", n)
	}
	f, err := m.buddy.alloc(uint64(n))
	if err != nil {
		return 0, err
	}
	m.allocBytes += uint64(n) * PageSize
	// Fresh allocations are zeroed, as a memory controller would scrub
	// frames between owners to prevent data leakage.
	_ = m.Zero(f.Addr(), n*PageSize)
	return f, nil
}

// FreeFrames releases n frames starting at f. The (f, n) pair must match a
// previous allocation exactly.
func (m *Memory) FreeFrames(f Frame, n int) error {
	if err := m.buddy.release(f, uint64(n)); err != nil {
		return err
	}
	m.allocBytes -= uint64(n) * PageSize
	return nil
}

// FreeFramesCount reports how many frames remain allocatable.
func (m *Memory) FreeFramesCount() uint64 { return m.buddy.freeFrames }
