package physmem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := New(PageSize + 1); err == nil {
		t.Error("non-multiple size accepted")
	}
	m, err := New(16 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 16*PageSize || m.Frames() != 16 {
		t.Errorf("size=%d frames=%d", m.Size(), m.Frames())
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := MustNew(4 * PageSize)
	src := []byte("the last cpu")
	if err := m.Write(100, src); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(100, len(src))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Errorf("got %q want %q", got, src)
	}
}

func TestOutOfBoundsRejected(t *testing.T) {
	m := MustNew(PageSize)
	if err := m.Write(PageSize-4, []byte("12345")); err == nil {
		t.Error("write across end accepted")
	}
	if _, err := m.Read(PageSize, 1); err == nil {
		t.Error("read at end accepted")
	}
	if _, err := m.ReadU64(PageSize - 7); err == nil {
		t.Error("u64 read across end accepted")
	}
	if err := m.ReadInto(2, make([]byte, PageSize)); err == nil {
		t.Error("ReadInto across end accepted")
	}
}

func TestScalarAccessors(t *testing.T) {
	m := MustNew(PageSize)
	if err := m.WriteU64(8, 0xdeadbeefcafef00d); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadU64(8)
	if err != nil || v != 0xdeadbeefcafef00d {
		t.Fatalf("u64 = %#x, err=%v", v, err)
	}
	if err := m.WriteU32(16, 0x12345678); err != nil {
		t.Fatal(err)
	}
	v32, _ := m.ReadU32(16)
	if v32 != 0x12345678 {
		t.Fatalf("u32 = %#x", v32)
	}
	if err := m.WriteU16(20, 0xbeef); err != nil {
		t.Fatal(err)
	}
	v16, _ := m.ReadU16(20)
	if v16 != 0xbeef {
		t.Fatalf("u16 = %#x", v16)
	}
	// Little-endian layout check.
	b, _ := m.Read(8, 2)
	if b[0] != 0x0d {
		t.Errorf("not little-endian: first byte %#x", b[0])
	}
}

func TestAllocZeroesMemory(t *testing.T) {
	m := MustNew(8 * PageSize)
	f, err := m.AllocFrames(1)
	if err != nil {
		t.Fatal(err)
	}
	_ = m.Write(f.Addr(), []byte{1, 2, 3})
	if err := m.FreeFrames(f, 1); err != nil {
		t.Fatal(err)
	}
	f2, err := m.AllocFrames(1)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := m.Read(f2.Addr(), 3)
	if !bytes.Equal(got, []byte{0, 0, 0}) {
		t.Errorf("reallocated frame not scrubbed: %v", got)
	}
}

func TestAllocExhaustion(t *testing.T) {
	m := MustNew(4 * PageSize)
	if _, err := m.AllocFrames(5); err == nil {
		t.Error("over-allocation accepted")
	}
	var frames []Frame
	for i := 0; i < 4; i++ {
		f, err := m.AllocFrames(1)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		frames = append(frames, f)
	}
	if _, err := m.AllocFrames(1); err == nil {
		t.Error("allocation from empty pool accepted")
	}
	for _, f := range frames {
		if err := m.FreeFrames(f, 1); err != nil {
			t.Fatal(err)
		}
	}
	if m.FreeFramesCount() != 4 {
		t.Errorf("free count = %d, want 4", m.FreeFramesCount())
	}
}

func TestAllocNonPowerOfTwoExact(t *testing.T) {
	// A 7-frame allocation in an 8-frame memory must leave 1 frame usable
	// (exact accounting, not power-of-two rounding).
	m := MustNew(8 * PageSize)
	f, err := m.AllocFrames(7)
	if err != nil {
		t.Fatal(err)
	}
	if m.FreeFramesCount() != 1 {
		t.Fatalf("free frames = %d, want 1", m.FreeFramesCount())
	}
	if _, err := m.AllocFrames(1); err != nil {
		t.Errorf("could not allocate the remaining frame: %v", err)
	}
	if err := m.FreeFrames(f, 7); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFreeRejected(t *testing.T) {
	m := MustNew(4 * PageSize)
	f, _ := m.AllocFrames(2)
	if err := m.FreeFrames(f, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.FreeFrames(f, 2); err == nil {
		t.Error("double free accepted")
	}
	f2, _ := m.AllocFrames(2)
	if err := m.FreeFrames(f2, 1); err == nil {
		t.Error("partial free accepted")
	}
}

func TestCoalescingRestoresLargeBlocks(t *testing.T) {
	m := MustNew(16 * PageSize)
	var frames []Frame
	for i := 0; i < 16; i++ {
		f, err := m.AllocFrames(1)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	for _, f := range frames {
		if err := m.FreeFrames(f, 1); err != nil {
			t.Fatal(err)
		}
	}
	// After coalescing, a 16-frame allocation must succeed again.
	if _, err := m.AllocFrames(16); err != nil {
		t.Errorf("coalescing failed: %v", err)
	}
}

func TestAllocDistinctNonOverlapping(t *testing.T) {
	m := MustNew(64 * PageSize)
	type span struct{ start, n uint64 }
	var spans []span
	for i := 0; i < 10; i++ {
		n := i%3 + 1
		f, err := m.AllocFrames(n)
		if err != nil {
			t.Fatal(err)
		}
		spans = append(spans, span{uint64(f), uint64(n)})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.start < b.start+b.n && b.start < a.start+a.n {
				t.Fatalf("allocations overlap: %+v %+v", a, b)
			}
		}
	}
}

// Property: any interleaving of allocs and frees never loses frames; after
// freeing everything the full memory is allocatable again.
func TestAllocFreeConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		m := MustNew(32 * PageSize)
		type alloc struct {
			f Frame
			n int
		}
		var live []alloc
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				n := int(op%4) + 1
				fr, err := m.AllocFrames(n)
				if err != nil {
					continue // exhausted is fine
				}
				live = append(live, alloc{fr, n})
			} else {
				i := int(op) % len(live)
				a := live[i]
				if err := m.FreeFrames(a.f, a.n); err != nil {
					return false
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			var liveSum uint64
			for _, a := range live {
				liveSum += uint64(a.n)
			}
			if m.FreeFramesCount()+liveSum != 32 {
				return false
			}
		}
		for _, a := range live {
			if err := m.FreeFrames(a.f, a.n); err != nil {
				return false
			}
		}
		_, err := m.AllocFrames(32)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAllocatedBytesAccounting(t *testing.T) {
	m := MustNew(8 * PageSize)
	f, _ := m.AllocFrames(3)
	if m.AllocatedBytes() != 3*PageSize {
		t.Errorf("AllocatedBytes = %d", m.AllocatedBytes())
	}
	_ = m.FreeFrames(f, 3)
	if m.AllocatedBytes() != 0 {
		t.Errorf("AllocatedBytes after free = %d", m.AllocatedBytes())
	}
}

func TestFrameAddrConversion(t *testing.T) {
	if Frame(3).Addr() != 3*PageSize {
		t.Error("Frame.Addr wrong")
	}
	if FrameOf(Addr(3*PageSize+17)) != 3 {
		t.Error("FrameOf wrong")
	}
}
