package physmem

import (
	"fmt"
	"math/bits"
)

// buddy is a classic binary-buddy frame allocator. Allocation requests are
// rounded up to a power-of-two order; the excess frames of the rounded
// block are immediately split back onto the free lists so only the exact
// request is consumed (a common refinement, cf. Linux's alloc_pages_exact).
type buddy struct {
	orders     int
	free       [][]Frame        // free[o] = free blocks of size 1<<o frames
	allocated  map[Frame]uint64 // start frame -> exact frame count
	freeFrames uint64
	total      uint64
}

const maxOrder = 24 // 2^24 frames * 4KiB = 64 GiB max region

func newBuddy(frames uint64) *buddy {
	b := &buddy{
		orders:     maxOrder + 1,
		free:       make([][]Frame, maxOrder+1),
		allocated:  make(map[Frame]uint64),
		freeFrames: frames,
		total:      frames,
	}
	// Seed the free lists by greedily carving the region into maximal
	// power-of-two aligned blocks.
	var start uint64
	remaining := frames
	for remaining > 0 {
		o := bits.TrailingZeros64(start)
		if start == 0 {
			o = maxOrder
		}
		for (uint64(1) << o) > remaining {
			o--
		}
		if o > maxOrder {
			o = maxOrder
		}
		b.free[o] = append(b.free[o], Frame(start))
		start += 1 << o
		remaining -= 1 << o
	}
	return b
}

func orderFor(n uint64) int {
	o := bits.Len64(n - 1)
	if n == 1 {
		o = 0
	}
	return o
}

// alloc reserves exactly n frames and returns the first.
func (b *buddy) alloc(n uint64) (Frame, error) {
	if n == 0 {
		return 0, fmt.Errorf("physmem: zero-frame allocation")
	}
	if n > b.total {
		return 0, fmt.Errorf("physmem: allocation of %d frames exceeds memory of %d frames", n, b.total)
	}
	want := orderFor(n)
	// Find the smallest order with a free block.
	o := want
	for o <= maxOrder && len(b.free[o]) == 0 {
		o++
	}
	if o > maxOrder {
		return 0, fmt.Errorf("physmem: out of memory allocating %d frames (%d free, fragmented)", n, b.freeFrames)
	}
	// Pop the last block (LIFO keeps the address space compact and the
	// allocator deterministic).
	blk := b.free[o][len(b.free[o])-1]
	b.free[o] = b.free[o][:len(b.free[o])-1]
	// Split down to the wanted order.
	for o > want {
		o--
		b.free[o] = append(b.free[o], blk+Frame(uint64(1)<<o))
	}
	// Return the tail beyond the exact request to the free lists.
	excessStart := uint64(blk) + n
	excess := (uint64(1) << want) - n
	b.releaseRange(excessStart, excess)
	b.allocated[blk] = n
	b.freeFrames -= n
	return blk, nil
}

// releaseRange puts [start, start+count) back on the free lists as maximal
// aligned power-of-two blocks, merging buddies where possible.
func (b *buddy) releaseRange(start, count uint64) {
	for count > 0 {
		o := bits.TrailingZeros64(start)
		if start == 0 {
			o = maxOrder
		}
		for o > 0 && (uint64(1)<<o) > count {
			o--
		}
		if o > maxOrder {
			o = maxOrder
		}
		b.insertAndMerge(Frame(start), o)
		start += 1 << o
		count -= 1 << o
	}
}

// insertAndMerge adds a block at order o, coalescing with its buddy
// repeatedly while the buddy is free.
func (b *buddy) insertAndMerge(blk Frame, o int) {
	for o < maxOrder {
		buddyBlk := blk ^ Frame(uint64(1)<<o)
		merged := false
		lst := b.free[o]
		for i, fb := range lst {
			if fb == buddyBlk {
				// Remove buddy, merge upward.
				lst[i] = lst[len(lst)-1]
				b.free[o] = lst[:len(lst)-1]
				if buddyBlk < blk {
					blk = buddyBlk
				}
				o++
				merged = true
				break
			}
		}
		if !merged {
			break
		}
	}
	b.free[o] = append(b.free[o], blk)
}

// free releases an allocation made by alloc. The start frame and count
// must match exactly; anything else is a double free or corruption and is
// reported as an error.
func (b *buddy) release(f Frame, n uint64) error {
	got, ok := b.allocated[f]
	if !ok {
		return fmt.Errorf("physmem: free of unallocated frame %d", f)
	}
	if got != n {
		return fmt.Errorf("physmem: free of %d frames at %d, but allocation was %d frames", n, f, got)
	}
	delete(b.allocated, f)
	b.releaseRange(uint64(f), n)
	b.freeFrames += n
	return nil
}
