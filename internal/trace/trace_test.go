package trace

import (
	"strings"
	"testing"
)

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(0, "a", "b", "kind", "")
	if tr.Len() != 0 || tr.Events() != nil || tr.Kinds() != nil || tr.String() != "" {
		t.Error("nil tracer misbehaved")
	}
	if tr.Filter("x") != nil {
		t.Error("nil tracer Filter non-nil")
	}
}

func TestRecordAndKinds(t *testing.T) {
	tr := New(0)
	tr.Record(10, "nic", "bus", "discover.req", "file=kv.dat")
	tr.Record(20, "bus", "ssd", "discover.fwd", "")
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
	kinds := tr.Kinds()
	if kinds[0] != "discover.req" || kinds[1] != "discover.fwd" {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestFilterByPrefix(t *testing.T) {
	tr := New(0)
	tr.Record(1, "a", "b", "mem.alloc", "")
	tr.Record(2, "a", "b", "mem.free", "")
	tr.Record(3, "a", "b", "svc.open", "")
	got := tr.Filter("mem.")
	if len(got) != 2 {
		t.Errorf("filter returned %d events", len(got))
	}
}

func TestLimit(t *testing.T) {
	tr := New(2)
	for i := 0; i < 5; i++ {
		tr.Record(0, "s", "d", "k", "")
	}
	if tr.Len() != 2 {
		t.Errorf("limit not enforced: %d", tr.Len())
	}
}

func TestStringRendering(t *testing.T) {
	tr := New(0)
	tr.Record(1500, "nic", "bus", "svc.open", "token=x")
	s := tr.String()
	if !strings.Contains(s, "nic") || !strings.Contains(s, "->") || !strings.Contains(s, "svc.open") {
		t.Errorf("render = %q", s)
	}
	// Event with no destination renders without an arrow.
	tr2 := New(0)
	tr2.Record(1, "dev", "", "self-test", "")
	if strings.Contains(tr2.String(), "->") {
		t.Errorf("dst-less event rendered arrow: %q", tr2.String())
	}
}
