// Package trace captures the message-level history of a simulation run.
//
// The Figure-2 reproduction (experiment E1) asserts on the exact sequence
// of control-plane messages during KVS application initialization, so the
// tracer records (time, source, destination, kind, detail) tuples and can
// render them as the paper's sequence diagram.
package trace

import (
	"fmt"
	"strings"

	"nocpu/internal/sim"
)

// Event is one recorded occurrence.
type Event struct {
	At     sim.Time
	Src    string
	Dst    string
	Kind   string
	Detail string
}

// String renders the event as one sequence-diagram line.
func (e Event) String() string {
	arrow := "->"
	if e.Dst == "" {
		arrow = "  "
	}
	return fmt.Sprintf("%12v  %-12s %s %-12s %-22s %s", e.At, e.Src, arrow, e.Dst, e.Kind, e.Detail)
}

// Tracer accumulates events. A nil *Tracer is valid and records nothing,
// so hot paths can call t.Record unconditionally.
type Tracer struct {
	events []Event
	limit  int
}

// New returns a tracer that keeps at most limit events (0 = unlimited).
func New(limit int) *Tracer { return &Tracer{limit: limit} }

// Record appends an event.
func (t *Tracer) Record(at sim.Time, src, dst, kind, detail string) {
	if t == nil {
		return
	}
	if t.limit > 0 && len(t.events) >= t.limit {
		return
	}
	t.events = append(t.events, Event{At: at, Src: src, Dst: dst, Kind: kind, Detail: detail})
}

// Events returns the recorded events in order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Kinds returns just the Kind strings, in order — handy for asserting
// message sequences in tests.
func (t *Tracer) Kinds() []string {
	if t == nil {
		return nil
	}
	out := make([]string, len(t.events))
	for i, e := range t.events {
		out[i] = e.Kind
	}
	return out
}

// Filter returns the events whose Kind has the given prefix.
func (t *Tracer) Filter(kindPrefix string) []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for _, e := range t.events {
		if strings.HasPrefix(e.Kind, kindPrefix) {
			out = append(out, e)
		}
	}
	return out
}

// String renders the whole trace.
func (t *Tracer) String() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for _, e := range t.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}
