package fabric

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nocpu/internal/kvs"
)

// goldenScenario is the fixed-seed 4-machine run the determinism test
// pins: boot, a scripted write workload, a whole-machine kill mid-way,
// more writes across the failover, then a full read-back. The cluster
// trace records every wire frame plus lifecycle and view events, so
// its hash witnesses the complete distributed event schedule.
func goldenScenario(t *testing.T) *Cluster {
	t.Helper()
	cl := mustBoot(t, Config{N: 4, Seed: 0x601D, Trace: true})
	key := func(i int) string { return keyFor(1000 + i) }
	for i := 0; i < 16; i++ {
		do(t, cl, cl.MachineIDs()[i%4], kvs.Request{Op: kvs.OpPut, Key: key(i), Value: val64(uint64(i))})
	}
	cl.Kill(2)
	for i := 16; i < 32; i++ {
		// Failover happens under load; some ops may answer Unavailable
		// while views converge — the trace, not the statuses, is pinned.
		ing := cl.LiveIDs()[i%3]
		do(t, cl, ing, kvs.Request{Op: kvs.OpPut, Key: key(i), Value: val64(uint64(i))})
	}
	for i := 0; i < 32; i++ {
		do(t, cl, cl.LiveIDs()[(i+1)%3], kvs.Request{Op: kvs.OpGet, Key: key(i)})
	}
	return cl
}

const goldenTraceFile = "testdata/golden_trace.hash"

// TestGoldenTraceDeterminism runs the scenario twice in-process and
// asserts byte-identical traces, then pins the hash against testdata —
// which also catches cross-run and race-vs-norace divergence, since
// `make fabric` repeats this test under -race against the same file.
// Regenerate with NOCPU_REGEN_GOLDEN=1 after an intentional change to
// the fabric's event schedule.
func TestGoldenTraceDeterminism(t *testing.T) {
	a := goldenScenario(t)
	b := goldenScenario(t)

	al, alost := a.TraceLog()
	bl, blost := b.TraceLog()
	if alost != 0 || blost != 0 {
		t.Fatalf("trace overflowed (%d/%d lines lost); raise TraceLimit", alost, blost)
	}
	if len(al) == 0 {
		t.Fatal("scenario produced an empty trace")
	}
	if len(al) != len(bl) {
		t.Fatalf("trace lengths differ across identical runs: %d vs %d", len(al), len(bl))
	}
	for i := range al {
		if al[i] != bl[i] {
			t.Fatalf("traces diverge at line %d:\n  run A: %s\n  run B: %s", i, al[i], bl[i])
		}
	}

	hash := a.TraceHash()
	if os.Getenv("NOCPU_REGEN_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenTraceFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTraceFile, []byte(hash+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s = %s", goldenTraceFile, hash)
		return
	}
	want, err := os.ReadFile(goldenTraceFile)
	if err != nil {
		t.Fatalf("missing golden hash (run with NOCPU_REGEN_GOLDEN=1 to create): %v", err)
	}
	if got := hash; got != strings.TrimSpace(string(want)) {
		t.Errorf("golden trace hash changed:\n  got  %s\n  want %s\n"+
			"The fabric's event schedule is no longer byte-identical to the pinned run. "+
			"If the change is intentional, regenerate with NOCPU_REGEN_GOLDEN=1.",
			got, strings.TrimSpace(string(want)))
	}
}
