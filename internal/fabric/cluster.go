package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"nocpu/internal/core"
	"nocpu/internal/kvs"
	"nocpu/internal/msg"
	"nocpu/internal/sim"
	"nocpu/internal/tenant"
)

// Flavor selects the fabric's control architecture.
type Flavor uint8

// Fabric flavors.
const (
	// FlavorDecentralized: every machine routes for itself and membership
	// is reactive detection plus gossip — the paper's position, scaled to
	// a rack.
	FlavorDecentralized Flavor = iota
	// FlavorHead: machine 1 carries a centralos kernel, relays every
	// cross-machine request, and is the membership authority (heartbeats
	// in, RingUpdates out) — the head-node baseline the scaling table
	// contrasts against. The head is a single point of failure by
	// construction.
	FlavorHead
)

func (f Flavor) String() string {
	if f == FlavorHead {
		return "head-node"
	}
	return "decentralized"
}

// DefaultMachineMemory sizes each machine's physical memory. Fabric
// memory is really allocated per machine (physmem), so rack-scale runs
// use a small arena instead of the single-machine 128 MiB default.
const DefaultMachineMemory = 8 << 20

// Config assembles a Cluster.
type Config struct {
	N      int
	Flavor Flavor
	Seed   uint64

	// Spares boots this many extra machines (IDs N+1..N+Spares) that
	// start OUTSIDE the consistent-hash ring: full systems, stores and
	// routers, but owning no shard. The fleet reconciler promotes them
	// into the ring to replace dead members or to rotate members through
	// upgrades. 0 (the default) reproduces the fixed-membership fabric
	// exactly.
	Spares int

	// UpgradeDelay models flashing a config/firmware version onto an
	// out-of-ring machine (default DefaultUpgradeDelay). Reconciler-only.
	UpgradeDelay sim.Duration

	// Vnodes/Replicas parameterize the ring (defaults 64 and 2).
	Vnodes   int
	Replicas int

	// MachineMemory sizes each machine (default DefaultMachineMemory).
	MachineMemory uint64

	// CacheEntries enables each shard store's NIC-local value cache
	// (E11-style; 0 = off). Write-through puts — including replicated
	// applies — keep it coherent, so rack-scale get workloads can be
	// NIC/network-bound instead of flash-bound.
	CacheEntries int

	// Net is the datacenter network model (defaults inside).
	Net NetConfig

	// Replication/routing/membership tuning; zero values take the
	// Default* constants.
	RepRetry       sim.Duration
	OpTimeout      sim.Duration
	HeartbeatEvery sim.Duration
	FailTimeout    sim.Duration
	WriteBound     int

	// Leases enables epoch-lease fencing: a machine serves as primary
	// (and may act as the reconcile actor) only while holding a
	// virtual-clock lease countersigned by a majority of the ring
	// membership, refuses clients with StatusFenced otherwise, and
	// failure detection becomes directional (transport suspicion +
	// inbound silence) instead of trusting a one-way send failure.
	// Default off: the zero config keeps every earlier experiment
	// byte-identical. LeaseDuration must stay below FailTimeout (the
	// defaults are 2ms and 4ms) — that inequality is what makes a
	// promoted primary's takeover fence outlive the deposed one's lease.
	Leases          bool
	LeaseDuration   sim.Duration
	LeaseRenewEvery sim.Duration

	// Trace records a bounded deterministic event log for the golden
	// determinism test.
	Trace      bool
	TraceLimit int

	// Tenancy, when set, is the rack-wide tenant registry shared by
	// every machine (one registry, one engine — still deterministic).
	// Each machine's devices install per-tenant isolation-domain checks
	// and its stores enforce key ownership; nil keeps the legacy
	// untenanted fabric byte-identical.
	Tenancy *tenant.Registry
}

// Machine is one member of the rack: a complete emulated system plus
// its shard store and fabric router.
type Machine struct {
	ID     msg.DeviceID
	Sys    *core.System
	Store  *kvs.Store
	Router *Router

	alive bool
}

// Cluster is N machines on one engine joined by the modeled network.
type Cluster struct {
	Cfg      Config
	Eng      *sim.Engine
	Ring     *Ring
	Machines []*Machine

	net *Network

	trace     []string
	traceLost int
}

// New builds (but does not boot) a cluster on a fresh engine.
func New(cfg Config) (*Cluster, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("fabric: cluster needs at least one machine, got %d", cfg.N)
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = DefaultReplicas
	}
	if cfg.MachineMemory == 0 {
		cfg.MachineMemory = DefaultMachineMemory
	}
	if cfg.RepRetry == 0 {
		cfg.RepRetry = DefaultRepRetry
	}
	if cfg.OpTimeout == 0 {
		cfg.OpTimeout = DefaultOpTimeout
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if cfg.FailTimeout == 0 {
		cfg.FailTimeout = DefaultFailTimeout
	}
	if cfg.WriteBound == 0 {
		cfg.WriteBound = DefaultWriteBound
	}
	if cfg.UpgradeDelay == 0 {
		cfg.UpgradeDelay = DefaultUpgradeDelay
	}
	if cfg.LeaseDuration == 0 {
		cfg.LeaseDuration = DefaultLeaseDuration
	}
	if cfg.LeaseRenewEvery == 0 {
		cfg.LeaseRenewEvery = DefaultLeaseRenewEvery
	}
	if cfg.TraceLimit == 0 {
		cfg.TraceLimit = 1 << 16
	}

	c := &Cluster{Cfg: cfg, Eng: sim.NewEngine()}
	// Machines 1..N are the initial ring; N+1..N+Spares boot out of it.
	ids := make([]msg.DeviceID, cfg.N+cfg.Spares)
	for i := range ids {
		ids[i] = msg.DeviceID(i + 1)
	}
	c.Ring = NewRing(ids[:cfg.N], cfg.Vnodes)
	c.net = newNetwork(c.Eng, cfg.Net)
	c.net.alive = c.aliveID
	c.net.deliver = c.deliverFrame
	c.net.unreachable = c.notifyUnreachable
	c.net.trace = c.tracef

	head := msg.DeviceID(0)
	if cfg.Flavor == FlavorHead {
		head = 1
	}
	for _, id := range ids {
		flavor := core.Decentralized
		if id == head {
			flavor = core.Centralized
		}
		sys, err := core.New(core.Options{
			Flavor:      flavor,
			Seed:        cfg.Seed ^ (uint64(id) << 8) ^ 0xFAB0,
			MemoryBytes: cfg.MachineMemory,
			NoTrace:     true,
			Engine:      c.Eng,
			Tenancy:     cfg.Tenancy,
		})
		if err != nil {
			return nil, fmt.Errorf("fabric: machine %d: %w", id, err)
		}
		m := &Machine{ID: id, Sys: sys}
		c.Machines = append(c.Machines, m)
	}
	return c, nil
}

// MustNew is New for static configurations.
func MustNew(cfg Config) *Cluster {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Network exposes the fabric for stats.
func (c *Cluster) Network() *Network { return c.net }

// Boot brings every machine up in ID order on the shared clock: system
// boot, shard file, KVS store, router. Sequential boot is deliberate —
// it is deterministic and it staggers the machines' periodic timers.
func (c *Cluster) Boot() error {
	for _, m := range c.Machines {
		if err := m.Sys.Boot(); err != nil {
			return fmt.Errorf("fabric: machine %d boot: %w", m.ID, err)
		}
		if err := m.Sys.CreateFile("shard.dat", nil); err != nil {
			return fmt.Errorf("fabric: machine %d shard file: %w", m.ID, err)
		}
		if m.Sys.CPU != nil {
			m.Sys.CPU.RegisterFile("shard.dat", core.FirstSSD)
		}
		m.Store = m.Sys.NewKVS(core.KVSOptions{
			App: StoreApp, File: "shard.dat", QueueEntries: 128,
			CacheEntries: c.Cfg.CacheEntries,
		})
		if err := m.Sys.WaitReady(m.Store); err != nil {
			return fmt.Errorf("fabric: machine %d store: %w", m.ID, err)
		}
		head := msg.DeviceID(0)
		if c.Cfg.Flavor == FlavorHead {
			head = 1
		}
		m.Router = newRouter(c, routerConfig{
			id:           m.ID,
			head:         head,
			replicas:     c.Cfg.Replicas,
			vnodes:       c.Cfg.Vnodes,
			repRetry:     c.Cfg.RepRetry,
			opTimeout:    c.Cfg.OpTimeout,
			hbEvery:      c.Cfg.HeartbeatEvery,
			failAfter:    c.Cfg.FailTimeout,
			upgradeDelay: c.Cfg.UpgradeDelay,
			writeBound:   c.Cfg.WriteBound,
			leases:       c.Cfg.Leases,
			leaseDur:     c.Cfg.LeaseDuration,
			leaseRenew:   c.Cfg.LeaseRenewEvery,
		}, c.Ring, m.Store, c.Eng)
		m.Sys.NIC().AddApp(m.Router)
		m.alive = true
		c.tracef("m%d up (%s)", m.ID, m.Sys.Opts.Flavor)
	}
	return nil
}

// MachineIDs lists every machine address in ID order, dead or alive.
func (c *Cluster) MachineIDs() []msg.DeviceID {
	out := make([]msg.DeviceID, len(c.Machines))
	for i, m := range c.Machines {
		out[i] = m.ID
	}
	return out
}

// LiveIDs lists the machines the cluster has not killed, in ID order.
func (c *Cluster) LiveIDs() []msg.DeviceID {
	var out []msg.DeviceID
	for _, m := range c.Machines {
		if m.alive {
			out = append(out, m.ID)
		}
	}
	return out
}

// ServingIDs lists the machines a load balancer would steer clients at:
// alive, in their own current ring, and not cordoned. With no spares
// and no reconciler this is exactly LiveIDs.
func (c *Cluster) ServingIDs() []msg.DeviceID {
	var out []msg.DeviceID
	for _, m := range c.Machines {
		if m.alive && m.Router.InRing() && !m.Router.Cordoned() {
			out = append(out, m.ID)
		}
	}
	return out
}

// Machine returns the member with the given address.
func (c *Cluster) Machine(id msg.DeviceID) *Machine {
	if int(id) < 1 || int(id) > len(c.Machines) {
		return nil
	}
	return c.Machines[id-1]
}

// Alive reports whether a machine is still up.
func (c *Cluster) Alive(id msg.DeviceID) bool { return c.aliveID(id) }

func (c *Cluster) aliveID(id msg.DeviceID) bool {
	m := c.Machine(id)
	return m != nil && m.alive
}

// Kill crash-stops a whole machine: its devices die mid-flight, its
// router freezes, and nothing of it ever comes back (machines are
// cattle; the fabric's recovery story is failover, not repair).
func (c *Cluster) Kill(id msg.DeviceID) {
	m := c.Machine(id)
	if m == nil || !m.alive {
		return
	}
	m.alive = false
	m.Router.halt()
	m.Sys.NIC().Device().Kill()
	m.Sys.SSD().Kill()
	if m.Sys.Memctrl != nil {
		m.Sys.Memctrl.Device().Kill()
	}
	if m.Sys.CPU != nil {
		m.Sys.CPU.Kill()
	}
	c.tracef("m%d killed", id)
}

// Ingress returns the client edge of one machine's NIC: a network
// target delivering to the fabric router.
func (c *Cluster) Ingress(id msg.DeviceID) func([]byte, func([]byte)) {
	m := c.Machine(id)
	return func(payload []byte, reply func([]byte)) {
		m.Sys.NIC().Deliver(RouterApp, payload, reply)
	}
}

// TenantIngress is Ingress with an edge-authenticated tenant stamp:
// the NIC, not the payload, asserts which tenant each request belongs
// to, and the router re-stamps the decoded request before routing so
// the claim survives inter-machine hops.
func (c *Cluster) TenantIngress(id msg.DeviceID, tn uint16) func([]byte, func([]byte)) {
	m := c.Machine(id)
	return func(payload []byte, reply func([]byte)) {
		m.Sys.NIC().DeliverFrom(tn, RouterApp, payload, reply)
	}
}

// deliverFrame hands an arriving fabric frame to the destination's
// router through its NIC rx pipeline — peer traffic queues behind (and
// contends with) client traffic, which is what makes a head node a
// measurable bottleneck.
func (c *Cluster) deliverFrame(dst msg.DeviceID, frame []byte) {
	c.Machine(dst).Sys.NIC().Deliver(RouterApp, frame, func([]byte) {})
}

func (c *Cluster) notifyUnreachable(src, dst msg.DeviceID) {
	if m := c.Machine(src); m != nil && m.alive {
		m.Router.noteUnreachable(dst)
	}
}

// tracef appends one bounded, deterministic trace line ("<time> m3 ...").
func (c *Cluster) tracef(format string, args ...any) {
	if !c.Cfg.Trace {
		return
	}
	if len(c.trace) >= c.Cfg.TraceLimit {
		c.traceLost++
		return
	}
	c.trace = append(c.trace, fmt.Sprintf("%v ", c.Eng.Now())+fmt.Sprintf(format, args...))
}

// TraceLog returns the recorded trace (and how many lines overflowed).
func (c *Cluster) TraceLog() ([]string, int) {
	return append([]string(nil), c.trace...), c.traceLost
}

// TraceHash digests the trace; the golden determinism test pins it.
func (c *Cluster) TraceHash() string {
	h := sha256.New()
	for _, line := range c.trace {
		h.Write([]byte(line))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// RouterStatsSum aggregates every machine's router counters.
func (c *Cluster) RouterStatsSum() RouterStats {
	var sum RouterStats
	for _, m := range c.Machines {
		s := m.Router.Stats()
		sum.Local += s.Local
		sum.Remote += s.Remote
		sum.HeadRelayed += s.HeadRelayed
		sum.WrongOwner += s.WrongOwner
		sum.Applies += s.Applies
		sum.RepFenced += s.RepFenced
		sum.Resyncs += s.Resyncs
		sum.SoloAcks += s.SoloAcks
		sum.Shed += s.Shed
		sum.ViewChanges += s.ViewChanges
		sum.Timeouts += s.Timeouts
		sum.Reroutes += s.Reroutes
		sum.RingStaged += s.RingStaged
		sum.RingCommits += s.RingCommits
		sum.RingAborts += s.RingAborts
		sum.Xfers += s.Xfers
		sum.Strays += s.Strays
		sum.Cordons += s.Cordons
		sum.Upgrades += s.Upgrades
		sum.LeaseRenews += s.LeaseRenews
		sum.LeaseGrants += s.LeaseGrants
		sum.LeaseRevokes += s.LeaseRevokes
		sum.LeaseFenced += s.LeaseFenced
		sum.LeaseLapses += s.LeaseLapses
		sum.Suspicions += s.Suspicions
		sum.SilenceDeaths += s.SilenceDeaths
	}
	return sum
}

// MaxEpoch returns the highest view epoch any live machine reached.
func (c *Cluster) MaxEpoch() uint32 {
	var max uint32
	for _, m := range c.Machines {
		if m.alive && m.Router.Epoch() > max {
			max = m.Router.Epoch()
		}
	}
	return max
}
