package fabric

import (
	"encoding/binary"
	"fmt"
	"testing"

	"nocpu/internal/kvs"
	"nocpu/internal/msg"
	"nocpu/internal/sim"
)

// mustBoot builds and boots a cluster or fails the test.
func mustBoot(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	cl := MustNew(cfg)
	if err := cl.Boot(); err != nil {
		t.Fatalf("boot: %v", err)
	}
	return cl
}

// do issues one client op at the given ingress and runs the engine
// until the reply arrives (or the deadline passes).
func do(t *testing.T, cl *Cluster, ingress msg.DeviceID, req kvs.Request) kvs.Response {
	t.Helper()
	var out kvs.Response
	got := false
	cl.Ingress(ingress)(kvs.EncodeRequest(req), func(b []byte) {
		resp, err := kvs.DecodeResponse(b)
		if err != nil {
			t.Fatalf("bad response: %v", err)
		}
		out, got = resp, true
	})
	deadline := cl.Eng.Now().Add(sim.Second)
	for !got && cl.Eng.Now() < deadline {
		cl.Eng.RunFor(100 * sim.Microsecond)
	}
	if !got {
		t.Fatalf("op %v %q never answered", req.Op, req.Key)
	}
	return out
}

func val64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func TestClusterBootAndBasicOps(t *testing.T) {
	cl := mustBoot(t, Config{N: 4, Seed: 1})
	// Writes and reads land regardless of which machine the client hits.
	for i := uint64(0); i < 32; i++ {
		key := keyFor(int(i))
		ing := cl.MachineIDs()[int(i)%4]
		if resp := do(t, cl, ing, kvs.Request{Op: kvs.OpPut, Key: key, Value: val64(i)}); resp.Status != kvs.StatusOK {
			t.Fatalf("put %s: status %d", key, resp.Status)
		}
	}
	for i := uint64(0); i < 32; i++ {
		key := keyFor(int(i))
		ing := cl.MachineIDs()[int(3-i%4)]
		resp := do(t, cl, ing, kvs.Request{Op: kvs.OpGet, Key: key})
		if resp.Status != kvs.StatusOK {
			t.Fatalf("get %s: status %d", key, resp.Status)
		}
		if got := binary.LittleEndian.Uint64(resp.Value); got != i {
			t.Fatalf("get %s: value %d, want %d", key, got, i)
		}
	}
	st := cl.RouterStatsSum()
	if st.Local == 0 || st.Remote == 0 {
		t.Errorf("expected a mix of local and remote serves, got local=%d remote=%d", st.Local, st.Remote)
	}
	if st.ViewChanges != 0 {
		t.Errorf("no machine died, but %d view changes", st.ViewChanges)
	}
}

func TestReplicationPlacesValueOnBackup(t *testing.T) {
	cl := mustBoot(t, Config{N: 4, Seed: 2})
	key := "replica-check"
	own := cl.Ring.Owners(key, nil, 2)
	if len(own) != 2 {
		t.Fatalf("owners = %v", own)
	}
	if resp := do(t, cl, own[0], kvs.Request{Op: kvs.OpPut, Key: key, Value: val64(7)}); resp.Status != kvs.StatusOK {
		t.Fatalf("put: %d", resp.Status)
	}
	// Both owners' shard stores hold the key; nobody else does.
	for _, m := range cl.Machines {
		has := m.Store.Keys() > 0
		wantHas := m.ID == own[0] || m.ID == own[1]
		if has != wantHas {
			t.Errorf("machine %d: keys=%d, want present=%v (owners %v)", m.ID, m.Store.Keys(), wantHas, own)
		}
	}
}

func TestHeadFlavorRelaysRemoteOps(t *testing.T) {
	cl := mustBoot(t, Config{N: 4, Seed: 3, Flavor: FlavorHead})
	// Find a key owned by neither the head (1) nor the ingress (3).
	key := ""
	for i := 0; i < 1000; i++ {
		k := keyFor(i)
		own := cl.Ring.Owners(k, nil, 2)
		if own[0] != 1 && own[0] != 3 {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no suitable key found")
	}
	if resp := do(t, cl, 3, kvs.Request{Op: kvs.OpPut, Key: key, Value: val64(9)}); resp.Status != kvs.StatusOK {
		t.Fatalf("put: %d", resp.Status)
	}
	if resp := do(t, cl, 3, kvs.Request{Op: kvs.OpGet, Key: key}); resp.Status != kvs.StatusOK {
		t.Fatalf("get: %d", resp.Status)
	}
	if relayed := cl.Machine(1).Router.Stats().HeadRelayed; relayed == 0 {
		t.Error("head relayed nothing; remote ops bypassed the head")
	}
}

func TestSingleMachineSoloAcks(t *testing.T) {
	cl := mustBoot(t, Config{N: 1, Seed: 4})
	if resp := do(t, cl, 1, kvs.Request{Op: kvs.OpPut, Key: "k", Value: val64(1)}); resp.Status != kvs.StatusOK {
		t.Fatalf("put: %d", resp.Status)
	}
	if st := cl.RouterStatsSum(); st.SoloAcks == 0 {
		t.Error("N=1 write did not solo-ack")
	}
}

func keyFor(i int) string { return fmt.Sprintf("fkey-%05d", i) }
