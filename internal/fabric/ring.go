// Package fabric scales the CPU-less machine to a rack: N complete
// machines — each with its own bus, devices and (optionally) a
// centralos kernel — co-scheduled on ONE deterministic sim event loop
// and joined by a modeled datacenter network. On top of the fabric runs
// a sharded, replicated KVS: consistent-hash key partitioning, client-
// side routing at the smart NICs, cross-machine request forwarding, and
// primary/backup replication with fenced failover, so a whole-machine
// kill loses no acknowledged write.
//
// The recovery invariants, audited by the fabric Ledger (E17):
//
//	R1 — no acked write lost: a read after failover never returns a
//	     value older than the newest acknowledged write for that key.
//	R2 — no duplicate apply: replica state never regresses; duplicate
//	     or post-failover straggler Replicates are fenced by a per-key
//	     (epoch, seq) watermark.
//	R3 — all keys routable after recovery: once failover settles, every
//	     key the workload ever touched gets a definitive answer from
//	     some live machine.
//
// Determinism: everything — machine boots, link flights, heartbeats,
// failovers — runs on the shared engine's (time, insertion-seq) order,
// and all randomness is drawn from seeded sim.Rand streams. A fixed
// seed reproduces a run byte-for-byte (golden-trace tested).
package fabric

import (
	"sort"

	"nocpu/internal/msg"
)

// DefaultVnodes is the number of ring points per machine. 64 points
// keep the shard-size spread under ~1.3x of fair share at N=64 while
// costing only N*64 sorted entries.
const DefaultVnodes = 64

// point is one vnode on the hash circle.
type point struct {
	hash    uint64
	machine msg.DeviceID
}

// Ring is the deterministic consistent-hash ring. It is immutable
// after construction; membership changes are expressed at lookup time
// by the caller's dead set, so every machine computes ownership from
// (shared ring, local view) without any coordination.
type Ring struct {
	machines []msg.DeviceID
	points   []point
}

// hashKey is FNV-1a 64 with a murmur3-style finalizer. Raw FNV leaves
// the high bits of short inputs badly mixed, and ring position is the
// FULL 64-bit value — without the final avalanche, vnode points and
// key hashes cluster and the shard balance collapses. A local
// implementation keeps the ring free of stdlib hash dependencies and
// pins the placement function forever — golden traces and the
// minimal-movement property both depend on it.
func hashKey(s string) uint64 {
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// vnodeHash names machine m's v-th ring point. The byte mixing keeps
// vnode names of adjacent machines uncorrelated.
func vnodeHash(m msg.DeviceID, v int) uint64 {
	return hashKey(string([]byte{
		byte(m), byte(uint16(m) >> 8), '#',
		byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24),
	}))
}

// NewRing builds the ring over the given machines with vnodes points
// each (DefaultVnodes if vnodes <= 0).
func NewRing(machines []msg.DeviceID, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	ms := append([]msg.DeviceID(nil), machines...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	r := &Ring{machines: ms}
	for _, m := range ms {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: vnodeHash(m, v), machine: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (vanishingly rare) break by machine ID so the order is total.
		return r.points[i].machine < r.points[j].machine
	})
	return r
}

// Machines returns the ring membership in ID order.
func (r *Ring) Machines() []msg.DeviceID {
	return append([]msg.DeviceID(nil), r.machines...)
}

// Owners returns the first `replicas` distinct live machines clockwise
// from the key's hash: Owners(...)[0] is the primary, [1] the backup.
// dead may be nil. Fewer than `replicas` live machines returns all of
// them; none returns nil. This is the classic consistent-hashing
// property the ring tests pin: a machine's death promotes exactly its
// old successors, and a join steals only the arc it lands on.
func (r *Ring) Owners(key string, dead map[msg.DeviceID]bool, replicas int) []msg.DeviceID {
	if len(r.points) == 0 || replicas <= 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]msg.DeviceID, 0, replicas)
	seen := make(map[msg.DeviceID]bool, replicas)
	for i := 0; i < len(r.points) && len(out) < replicas; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.machine] || dead[p.machine] {
			continue
		}
		seen[p.machine] = true
		out = append(out, p.machine)
	}
	return out
}

// Primary returns the key's first live owner (0 when none are left).
func (r *Ring) Primary(key string, dead map[msg.DeviceID]bool) msg.DeviceID {
	o := r.Owners(key, dead, 1)
	if len(o) == 0 {
		return 0
	}
	return o[0]
}
