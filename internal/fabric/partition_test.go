package fabric

// Split-brain safety under asymmetric partitions and gray failures
// (epoch leases, directional suspicion, takeover fences). Every test
// here runs with Config.Leases set; the E1–E20 golden tables pin the
// leases-off path byte-identical.

import (
	"testing"

	"nocpu/internal/faultinject"
	"nocpu/internal/kvs"
	"nocpu/internal/msg"
	"nocpu/internal/sim"
)

func holdsDead(r *Router, id msg.DeviceID) bool {
	for _, d := range r.DeadIDs() {
		if d == id {
			return true
		}
	}
	return false
}

func holdsSuspect(r *Router, id msg.DeviceID) bool {
	for _, s := range r.Suspects() {
		if s == id {
			return true
		}
	}
	return false
}

// A transport-level send failure proves only that the forward path is
// broken. With leases enabled it must record directional suspicion, not
// an immediate death — the declaration comes from the inbound-silence
// detector (at halved patience for suspects). This is the regression
// test for noteUnreachable treating transport failure as symmetric.
func TestTransportFailureIsSuspicionNotDeath(t *testing.T) {
	cl := mustBoot(t, Config{N: 4, Seed: 11, Leases: true})
	cl.Eng.RunFor(5100 * sim.Microsecond)
	cl.Kill(4)

	// The next renewal tick (500µs grid) hits the dead machine and
	// surfaces transport unreachability at every sender.
	cl.Eng.RunFor(600 * sim.Microsecond)
	r1 := cl.Machine(1).Router
	if !holdsSuspect(r1, 4) {
		t.Fatalf("m1 did not suspect the unreachable machine: suspects=%v", r1.Suspects())
	}
	if holdsDead(r1, 4) {
		t.Fatal("m1 declared death from a one-way transport failure alone")
	}

	// Inbound silence confirms within the suspect's halved patience.
	cl.Eng.RunFor(5 * sim.Millisecond)
	if !holdsDead(r1, 4) {
		t.Fatalf("silence never confirmed the suspected death: dead=%v", r1.DeadIDs())
	}
	if cl.Machine(1).Router.Stats().Suspicions == 0 {
		t.Fatal("no suspicion recorded")
	}
}

// One-way reachability: the A→B direction is cut while B→A flows. B
// (which stopped hearing A) must declare A dead; A (which still hears
// B) must not reciprocate on transport evidence — and the cut-off
// machine must end up fenced with a typed refusal, not serving a
// divergent shard.
func TestOneWayCutIsJudgedDirectionally(t *testing.T) {
	plane := faultinject.New(77)
	cut := sim.Time(5 * sim.Millisecond)
	plane.PartitionOneWay(1, 2, cut, 0) // m1's frames to m2 vanish, forever

	cl := mustBoot(t, Config{N: 4, Seed: 12, Leases: true, Net: NetConfig{Plane: plane}})
	r1, r2 := cl.Machine(1).Router, cl.Machine(2).Router

	// By 11ms (absolute virtual time; boot staggers machines, so the
	// window is fixed, not relative) m2's silence sweep has declared m1
	// dead; m1 heard from m2 far more recently and must not have
	// reciprocated. Later m1 WILL declare the others — once the majority
	// excommunicates it they stop talking to it, and exile is
	// indistinguishable from death — but that is inbound silence doing
	// its job, not transport asymmetry.
	cl.Eng.RunUntil(sim.Time(11 * sim.Millisecond))
	if !holdsDead(r2, 1) {
		t.Fatalf("m2 never declared the machine it stopped hearing: dead=%v", r2.DeadIDs())
	}
	if holdsDead(r1, 2) {
		t.Fatal("m1 declared m2 dead while still hearing it — suspicion is not directional")
	}

	// m2's broadcast turns the majority against m1: its grants dry up,
	// its lease lapses, and every client op it would serve as primary is
	// refused with the typed StatusFenced.
	cl.Eng.RunUntil(sim.Time(25 * sim.Millisecond))
	if r1.LeaseValid() {
		t.Fatal("cut-off machine still holds a lease without a quorum")
	}
	for _, id := range []msg.DeviceID{2, 3, 4} {
		if !cl.Machine(id).Router.LeaseValid() {
			t.Fatalf("majority machine %d lost its lease", id)
		}
	}
	resp := do(t, cl, 1, kvs.Request{Op: kvs.OpPut, Key: "split-probe", Value: val64(1)})
	if resp.Status != kvs.StatusFenced {
		t.Fatalf("fenced primary answered status %d, want StatusFenced", resp.Status)
	}
}

// A group partition: the minority side loses its lease within the lease
// duration and refuses clients; the majority side keeps serving,
// including (after the takeover fence) keys the minority used to own.
func TestMinorityPartitionFencedMajorityServes(t *testing.T) {
	minority := []msg.DeviceID{4, 5}
	majority := []msg.DeviceID{1, 2, 3}
	plane := faultinject.New(78)
	// The cut starts at 10ms — after the last machine's staggered boot
	// (7.5ms) and after the seed put below.
	plane.Partition(majority, minority, sim.Time(10*sim.Millisecond), sim.Time(60*sim.Millisecond))

	cl := mustBoot(t, Config{N: 5, Seed: 13, Leases: true, Net: NetConfig{Plane: plane}})

	// Seed a key whose primary sits in the minority, pre-partition.
	key := ""
	for i := 0; i < 1000; i++ {
		own := cl.Ring.Owners(keyFor(i), nil, 2)
		if own[0] == 4 || own[0] == 5 {
			key = keyFor(i)
			break
		}
	}
	if key == "" {
		t.Fatal("no minority-owned key found")
	}
	if resp := do(t, cl, 1, kvs.Request{Op: kvs.OpPut, Key: key, Value: val64(42)}); resp.Status != kvs.StatusOK {
		t.Fatalf("seed put: %d", resp.Status)
	}

	cl.Eng.RunUntil(sim.Time(20 * sim.Millisecond))
	for _, id := range minority {
		if cl.Machine(id).Router.LeaseValid() {
			t.Fatalf("minority machine %d kept a lease with 2 of 5 grants", id)
		}
	}
	for _, id := range majority {
		if !cl.Machine(id).Router.LeaseValid() {
			t.Fatalf("majority machine %d lost its lease", id)
		}
	}

	// The minority ingress refuses with the typed denial.
	if resp := do(t, cl, 4, kvs.Request{Op: kvs.OpGet, Key: key}); resp.Status != kvs.StatusFenced {
		t.Fatalf("minority ingress answered %d, want StatusFenced", resp.Status)
	}
	// The majority — past the takeover fence (silence declaration at
	// ~14ms + lease + fail timeout ≈ 20ms) — serves the same key with
	// the pre-partition value intact (R1 across the failover).
	cl.Eng.RunUntil(sim.Time(30 * sim.Millisecond))
	resp := do(t, cl, 1, kvs.Request{Op: kvs.OpGet, Key: key})
	if resp.Status != kvs.StatusOK {
		t.Fatalf("majority ingress answered %d, want OK", resp.Status)
	}
	if len(resp.Value) != 8 || resp.Value[0] != 42 {
		t.Fatalf("failover lost the acked write: value=%v", resp.Value)
	}
}

// Fail-slow is not fail-stop: a machine running 20x slow keeps its
// lease, stays in everyone's membership view, and keeps serving — no
// false deaths, no view churn.
func TestFailSlowMachineKeepsLease(t *testing.T) {
	plane := faultinject.New(79)
	plane.SlowMachine(3, 20, sim.Time(2*sim.Millisecond), sim.Time(30*sim.Millisecond))

	cl := mustBoot(t, Config{N: 4, Seed: 14, Leases: true, Net: NetConfig{Plane: plane}})
	cl.Eng.RunFor(30 * sim.Millisecond)

	if st := cl.RouterStatsSum(); st.ViewChanges != 0 {
		t.Fatalf("fail-slow machine triggered %d view changes", st.ViewChanges)
	}
	for _, m := range cl.Machines {
		if !m.Router.LeaseValid() {
			t.Fatalf("machine %d lost its lease to slowness", m.ID)
		}
	}
	// The slow machine still serves clients.
	if resp := do(t, cl, 3, kvs.Request{Op: kvs.OpPut, Key: "slow-but-alive", Value: val64(9)}); resp.Status != kvs.StatusOK {
		t.Fatalf("slow machine refused a client: %d", resp.Status)
	}
}

// The takeover fence: immediately after a promotion the new primary
// refuses the promoted keys (typed) until every lease the deposed
// primary could hold has lapsed, then serves them.
func TestTakeoverFenceWindow(t *testing.T) {
	cl := mustBoot(t, Config{N: 4, Seed: 15, Leases: true})

	key := ""
	for i := 0; i < 1000; i++ {
		own := cl.Ring.Owners(keyFor(i), nil, 2)
		if own[0] == 4 {
			key = keyFor(i)
			break
		}
	}
	if key == "" {
		t.Fatal("no key primaried at m4")
	}
	if resp := do(t, cl, 1, kvs.Request{Op: kvs.OpPut, Key: key, Value: val64(5)}); resp.Status != kvs.StatusOK {
		t.Fatalf("seed put: %d", resp.Status)
	}

	cl.Kill(4)
	// Run until some machine has declared m4 dead and promoted the key.
	deadline := cl.Eng.Now().Add(20 * sim.Millisecond)
	newPrimary := msg.DeviceID(0)
	for cl.Eng.Now() < deadline && newPrimary == 0 {
		cl.Eng.RunFor(500 * sim.Microsecond)
		for _, m := range cl.Machines {
			if m.ID != 4 && m.Router.PrimaryFor(key) && holdsDead(m.Router, 4) {
				newPrimary = m.ID
			}
		}
	}
	if newPrimary == 0 {
		t.Fatal("no machine promoted the dead primary's key")
	}
	if !cl.Machine(newPrimary).Router.KeyFenced(key) {
		t.Fatalf("m%d promoted %q without a takeover fence", newPrimary, key)
	}
	// Past leaseDur+failAfter the fence lifts and the key serves again,
	// value intact.
	cl.Eng.RunFor(DefaultLeaseDuration + DefaultFailTimeout + sim.Millisecond)
	if cl.Machine(newPrimary).Router.KeyFenced(key) {
		t.Fatal("takeover fence never lifted")
	}
	resp := do(t, cl, newPrimary, kvs.Request{Op: kvs.OpGet, Key: key})
	if resp.Status != kvs.StatusOK || len(resp.Value) != 8 || resp.Value[0] != 5 {
		t.Fatalf("promoted key unreadable after the fence: status=%d value=%v", resp.Status, resp.Value)
	}
}
