package fabric

import (
	"fmt"
	"testing"

	"nocpu/internal/msg"
	"nocpu/internal/sim"
)

func ringMachines(n int) []msg.DeviceID {
	out := make([]msg.DeviceID, n)
	for i := range out {
		out[i] = msg.DeviceID(i + 1)
	}
	return out
}

// TestRingFullCoverage: every key resolves to a full replica set of
// distinct live machines, for every cluster size and under deaths.
func TestRingFullCoverage(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8, 16, 64} {
		r := NewRing(ringMachines(n), 0)
		for i := 0; i < 500; i++ {
			key := fmt.Sprintf("cov-%05d", i)
			own := r.Owners(key, nil, 2)
			want := 2
			if n < 2 {
				want = n
			}
			if len(own) != want {
				t.Fatalf("n=%d key %s: owners %v, want %d", n, key, own, want)
			}
			if len(own) == 2 && own[0] == own[1] {
				t.Fatalf("n=%d key %s: replica set not distinct: %v", n, key, own)
			}
		}
	}
}

// TestRingDeadExcluded: dead machines never own anything; killing a
// machine only moves the keys it owned.
func TestRingDeadExcluded(t *testing.T) {
	r := NewRing(ringMachines(8), 0)
	dead := map[msg.DeviceID]bool{3: true, 5: true}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("dead-%05d", i)
		for _, o := range r.Owners(key, dead, 2) {
			if dead[o] {
				t.Fatalf("key %s owned by dead machine %d", key, o)
			}
		}
	}
}

// TestRingImbalanceUnderZipf bounds shard imbalance for Zipf-sampled
// workloads at θ ∈ {0, 0.9, 1.2}. Under heavy skew one key dominates,
// so the principled bound is: the busiest machine's load share may not
// exceed the hottest key's share by more than c/N (placement slack) —
// a machine can be unlucky enough to own the hot key, but consistent
// hashing must not additionally pile unrelated load onto it.
func TestRingImbalanceUnderZipf(t *testing.T) {
	const (
		nKeys   = 4096
		samples = 200000
		slack   = 2.5
	)
	for _, n := range []int{4, 16, 64} {
		r := NewRing(ringMachines(n), 0)
		for _, theta := range []float64{0, 0.9, 1.2} {
			rng := sim.NewRand(uint64(n)<<8 | uint64(theta*10))
			z := sim.NewZipf(rng, nKeys, theta)
			perMachine := make(map[msg.DeviceID]int, n)
			perKey := make([]int, nKeys)
			for s := 0; s < samples; s++ {
				k := z.Next()
				perKey[k]++
				perMachine[r.Primary(fmt.Sprintf("zipf-%05d", k), nil)]++
			}
			maxMachine, maxKey := 0, 0
			for _, c := range perMachine {
				if c > maxMachine {
					maxMachine = c
				}
			}
			for _, c := range perKey {
				if c > maxKey {
					maxKey = c
				}
			}
			machineShare := float64(maxMachine) / samples
			hotKeyShare := float64(maxKey) / samples
			bound := hotKeyShare + slack/float64(n)
			if machineShare > bound {
				t.Errorf("n=%d θ=%.1f: busiest machine %.3f > hot key %.3f + %.1f/N (%.3f)",
					n, theta, machineShare, hotKeyShare, slack, bound)
			}
		}
	}
}

// TestRingMinimalMovementOnLeave: a machine's death moves only the keys
// it owned — every key whose old primary survives keeps that primary.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	const nKeys = 2000
	r := NewRing(ringMachines(16), 0)
	victim := msg.DeviceID(7)
	dead := map[msg.DeviceID]bool{victim: true}
	moved := 0
	for i := 0; i < nKeys; i++ {
		key := fmt.Sprintf("move-%05d", i)
		before := r.Primary(key, nil)
		after := r.Primary(key, dead)
		if before != victim && after != before {
			t.Fatalf("key %s: primary moved %d -> %d though %d survives", key, before, after, before)
		}
		if before == victim {
			moved++
			if after == victim {
				t.Fatalf("key %s: still owned by dead machine", key)
			}
		}
	}
	// The victim owned roughly 1/16th of the keyspace; its death must
	// not have cascaded.
	if lo, hi := nKeys/16/3, nKeys*3/16; moved < lo || moved > hi {
		t.Errorf("victim owned %d/%d keys, far from the fair 1/16 share", moved, nKeys)
	}
}

// TestRingMinimalMovementOnJoin: adding a machine steals keys only for
// itself — no key moves between two pre-existing machines.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	const nKeys = 2000
	small := NewRing(ringMachines(8), 0)
	big := NewRing(ringMachines(9), 0) // machine 9 joined
	stolen := 0
	for i := 0; i < nKeys; i++ {
		key := fmt.Sprintf("join-%05d", i)
		before := small.Primary(key, nil)
		after := big.Primary(key, nil)
		if after != before {
			if after != 9 {
				t.Fatalf("key %s: moved %d -> %d, but only the joiner may steal", key, before, after)
			}
			stolen++
		}
	}
	if lo, hi := nKeys/9/3, nKeys*3/9; stolen < lo || stolen > hi {
		t.Errorf("joiner stole %d/%d keys, far from the fair 1/9 share", stolen, nKeys)
	}
}

// TestRingDeterministic: same membership, same ring, same answers.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(ringMachines(32), 0)
	b := NewRing([]msg.DeviceID{32, 31, 30, 29, 28, 27, 26, 25, 24, 23, 22, 21, 20, 19, 18, 17,
		16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1}, 0) // same set, reversed input order
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("det-%05d", i)
		ao, bo := a.Owners(key, nil, 2), b.Owners(key, nil, 2)
		if !ownersEqual(ao, bo) {
			t.Fatalf("key %s: owners differ across construction orders: %v vs %v", key, ao, bo)
		}
	}
}
