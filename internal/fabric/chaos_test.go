package fabric

import (
	"encoding/binary"
	"fmt"
	"testing"

	"nocpu/internal/kvs"
	"nocpu/internal/msg"
	"nocpu/internal/sim"
)

// Fabric chaos regression tests (E15-style): a per-op-timeout write
// workload hammers the cluster while whole machines are killed at
// scripted instants, then a read-back sweep feeds the fabric Ledger,
// which judges R1 (no acked write lost), R2 (no duplicate apply) and
// R3 (every touched key routable after recovery).
//
// Timeout soundness: a worker reuses a key only after the previous
// write to it resolved (ack, error, or client timeout). The client
// timeout (25ms) exceeds the worst in-system lifetime of a write —
// ingress forwarding gives up after OpTimeout (10ms), and an already-
// forwarded request is applied within microseconds of arrival or
// dropped forever (dead machine / dead-set fencing) — so per-key apply
// order equals issue order and the ledger's value ordering is sound.
const (
	fcWorkers    = 4
	fcKeysPer    = 4
	fcWarmup     = 2 * sim.Millisecond
	fcWindow     = 30 * sim.Millisecond
	fcTail       = 10 * sim.Millisecond
	fcOpTimeout  = 25 * sim.Millisecond
	fcErrBackoff = 200 * sim.Microsecond
	fcSettle     = 20 * sim.Millisecond
	// fcRecoveryBound caps the window from a machine kill to the next
	// acknowledged op: unreachable detection is one RTT and failover is a
	// view change plus one re-route, so even the head-node flavor's
	// heartbeat path (FailTimeout 4ms + sweep) fits with slack.
	fcRecoveryBound = 25 * sim.Millisecond
)

// fcDriver drives one chaos campaign against a booted cluster.
type fcDriver struct {
	t   *testing.T
	cl  *Cluster
	led *Ledger

	keys   []string // worker w owns keys[w*fcKeysPer : (w+1)*fcKeysPer]
	stopAt sim.Time

	nextVal uint64
	rr      int // round-robin ingress cursor
	puts    uint64
	tmouts  uint64
	errs    uint64
	done    int

	pending   []sim.Time
	recovered []sim.Duration
}

func newFCDriver(t *testing.T, cl *Cluster, keys []string) *fcDriver {
	if len(keys) != fcWorkers*fcKeysPer {
		t.Fatalf("driver wants %d keys, got %d", fcWorkers*fcKeysPer, len(keys))
	}
	return &fcDriver{t: t, cl: cl, led: NewLedger(), keys: keys}
}

// ingress picks the next live machine round-robin (deterministic:
// LiveIDs is sorted and the cursor advances one per op).
func (d *fcDriver) ingress() msg.DeviceID {
	live := d.cl.LiveIDs()
	if len(live) == 0 {
		d.t.Fatal("no live machines left")
	}
	d.rr++
	return live[d.rr%len(live)]
}

// kill schedules a whole-machine crash and opens a recovery window.
func (d *fcDriver) kill(at sim.Time, id msg.DeviceID) {
	d.cl.Eng.At(at, func() {
		d.cl.Kill(id)
		//lint:allow boundedqueue a handful of scripted kills per test, drained on every ack
		d.pending = append(d.pending, at)
	})
}

// noteProgress closes every open recovery window: service is restored.
func (d *fcDriver) noteProgress() {
	if len(d.pending) == 0 {
		return
	}
	now := d.cl.Eng.Now()
	for _, at := range d.pending {
		d.recovered = append(d.recovered, now.Sub(at))
	}
	d.pending = d.pending[:0]
}

// worker runs a closed loop over its own key partition.
func (d *fcDriver) worker(w int) {
	eng := d.cl.Eng
	keyIdx := 0
	var issue func()
	issue = func() {
		if eng.Now() >= d.stopAt {
			d.done++
			return
		}
		key := d.keys[w*fcKeysPer+keyIdx]
		keyIdx = (keyIdx + 1) % fcKeysPer
		d.nextVal++
		val := d.nextVal
		d.led.NoteAttempt(key, val)
		d.puts++
		resolved := false
		var tm *sim.Timer
		req := kvs.EncodeRequest(kvs.Request{Op: kvs.OpPut, Key: key, Value: val64(val)})
		d.cl.Ingress(d.ingress())(req, func(b []byte) {
			resp, err := kvs.DecodeResponse(b)
			ok := err == nil && resp.Status == kvs.StatusOK
			if ok {
				// Ack counts even past the client timeout: the fabric told
				// the client the write succeeded, so R1 must cover it.
				d.led.NoteAck(key, val)
				d.noteProgress()
			}
			if resolved {
				return
			}
			resolved = true
			if tm != nil {
				tm.Stop()
			}
			if !ok {
				d.errs++
				eng.After(fcErrBackoff, issue)
				return
			}
			issue()
		})
		tm = eng.After(fcOpTimeout, func() {
			if resolved {
				return
			}
			resolved = true
			d.tmouts++
			issue()
		})
	}
	issue()
}

// run executes the campaign: workload, scripted kills, settle, sweep.
func (d *fcDriver) run() Report {
	eng := d.cl.Eng
	d.stopAt = eng.Now().Add(fcWarmup + fcWindow + fcTail)
	for w := 0; w < fcWorkers; w++ {
		d.worker(w)
	}
	deadline := eng.Now().Add(30 * sim.Second)
	for d.done != fcWorkers && eng.Now() < deadline {
		eng.RunFor(sim.Millisecond)
	}
	if d.done != fcWorkers {
		d.t.Fatal("workload did not drain (an op neither acked nor timed out)")
	}
	eng.RunFor(fcSettle) // let resyncs and view gossip finish
	d.readback()

	rep := d.led.Report()
	rep.Recoveries = d.recovered
	return rep
}

// readback sweeps every touched key through a live ingress, retrying
// transient unavailability; a key with no definitive answer after the
// retry budget is unroutable (R3 violation).
func (d *fcDriver) readback() {
	eng := d.cl.Eng
	for _, key := range d.led.Keys() {
		settled := false
		for attempt := 0; attempt < 40 && !settled; attempt++ {
			var resp kvs.Response
			got := false
			req := kvs.EncodeRequest(kvs.Request{Op: kvs.OpGet, Key: key})
			d.cl.Ingress(d.ingress())(req, func(b []byte) {
				if r, err := kvs.DecodeResponse(b); err == nil {
					resp, got = r, true
				}
			})
			lim := eng.Now().Add(20 * sim.Millisecond)
			for !got && eng.Now() < lim {
				eng.RunFor(100 * sim.Microsecond)
			}
			if got && resp.Status == kvs.StatusOK && len(resp.Value) == 8 {
				d.led.NoteRead(key, binary.LittleEndian.Uint64(resp.Value), true)
				settled = true
			} else if got && resp.Status == kvs.StatusNotFound {
				d.led.NoteRead(key, 0, false)
				settled = true
			} else {
				eng.RunFor(500 * sim.Microsecond) // mid-failover; ask again
			}
		}
		if !settled {
			d.led.NoteUnroutable(key)
		}
	}
}

// keysOwnedBy collects n keys whose owner at the given replica slot is
// the victim, so a campaign can aim every write at a specific role.
func keysOwnedBy(t *testing.T, cl *Cluster, victim msg.DeviceID, slot, n int) []string {
	var out []string
	for i := 0; len(out) < n && i < 100000; i++ {
		k := fmt.Sprintf("fc-%d-%05d", slot, i)
		own := cl.Ring.Owners(k, nil, 2)
		if len(own) > slot && own[slot] == victim {
			out = append(out, k)
		}
	}
	if len(out) < n {
		t.Fatalf("found only %d/%d keys with owner[%d]=%d", len(out), n, slot, victim)
	}
	return out
}

// mixedKeys collects keys without regard to placement.
func mixedKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("fc-mix-%05d", i)
	}
	return out
}

func assertClean(t *testing.T, cl *Cluster, rep Report, kills int) {
	t.Helper()
	if rep.G1Lost != 0 {
		t.Errorf("R1 violated: %d acked writes lost: %v", rep.G1Lost, rep.Violations)
	}
	if rep.G2Dups != 0 {
		t.Errorf("R2 violated: %d duplicate/corrupt applies: %v", rep.G2Dups, rep.Violations)
	}
	if len(rep.Unroutable) != 0 {
		t.Errorf("R3 violated: unroutable keys after recovery: %v", rep.Unroutable)
	}
	if !rep.CleanFabric(fcRecoveryBound) {
		t.Errorf("recovery exceeded %v: windows %v", fcRecoveryBound, rep.Recoveries)
	}
	if len(rep.Recoveries) < kills {
		t.Errorf("only %d/%d kills saw service restored", len(rep.Recoveries), kills)
	}
	if rep.Acks == 0 {
		t.Error("campaign acked nothing; the workload never ran")
	}
	st := cl.RouterStatsSum()
	if kills > 0 && st.ViewChanges == 0 {
		t.Error("machines died but no router changed view")
	}
}

// TestChaosKillPrimaryMidWrite kills the machine that is PRIMARY for
// every workload key, mid-window: all in-flight writes lose their
// serving replica and the backup must take over without losing an ack.
func TestChaosKillPrimaryMidWrite(t *testing.T) {
	cl := mustBoot(t, Config{N: 4, Seed: 0xC1})
	victim := msg.DeviceID(2)
	d := newFCDriver(t, cl, keysOwnedBy(t, cl, victim, 0, fcWorkers*fcKeysPer))
	d.kill(cl.Eng.Now().Add(fcWarmup+fcWindow/2), victim)
	rep := d.run()
	assertClean(t, cl, rep, 1)
	if st := cl.RouterStatsSum(); st.Resyncs == 0 {
		t.Error("primary died but no surviving machine resynced its shard")
	}
}

// TestChaosKillBackupMidReplication kills the machine that is BACKUP
// for every workload key: every in-flight replication loses its target
// and the primary must re-replicate to the next live owner before
// acking (solo-ack is allowed only when the ring has no second owner).
func TestChaosKillBackupMidReplication(t *testing.T) {
	cl := mustBoot(t, Config{N: 4, Seed: 0xC2})
	victim := msg.DeviceID(3)
	d := newFCDriver(t, cl, keysOwnedBy(t, cl, victim, 1, fcWorkers*fcKeysPer))
	d.kill(cl.Eng.Now().Add(fcWarmup+fcWindow/2), victim)
	rep := d.run()
	assertClean(t, cl, rep, 1)
}

// TestChaosSequentialDoubleFailure kills two machines 10ms apart —
// enough for the first failover's resync to finish, so the second kill
// never erases the last copy (simultaneous kills of a replica pair
// legitimately lose data at R=2 and are out of scope by design).
func TestChaosSequentialDoubleFailure(t *testing.T) {
	cl := mustBoot(t, Config{N: 4, Seed: 0xC3})
	d := newFCDriver(t, cl, mixedKeys(fcWorkers*fcKeysPer))
	first := cl.Eng.Now().Add(fcWarmup + 5*sim.Millisecond)
	d.kill(first, 2)
	d.kill(first.Add(10*sim.Millisecond), 3)
	rep := d.run()
	assertClean(t, cl, rep, 2)
	if got := cl.MaxEpoch(); got != 2 {
		t.Errorf("max epoch %d after two deaths, want 2", got)
	}
}

// keysAvoidingPair collects n keys for which the two victims are NOT
// the complete owner set: at replication factor 2, killing both owners
// of a key in the same instant legitimately loses it, so a concurrent
// double-failure campaign aims only at keys with a surviving copy.
func keysAvoidingPair(t *testing.T, cl *Cluster, a, b msg.DeviceID, n int) []string {
	var out []string
	for i := 0; len(out) < n && i < 100000; i++ {
		k := fmt.Sprintf("fc-pair-%05d", i)
		own := cl.Ring.Owners(k, nil, 2)
		if len(own) == 2 && ((own[0] == a && own[1] == b) || (own[0] == b && own[1] == a)) {
			continue
		}
		if len(own) == 1 && (own[0] == a || own[0] == b) {
			continue
		}
		out = append(out, k)
	}
	if len(out) < n {
		t.Fatalf("found only %d/%d keys avoiding the pair {%d,%d}", len(out), n, a, b)
	}
	return out
}

// TestChaosConcurrentDoubleFailure kills two machines at the SAME
// virtual instant — zero time between deaths, unlike the sequential
// campaign's 10ms gap — mid-window. Every workload key keeps one
// surviving owner (see keysAvoidingPair), so the fabric must absorb
// both failovers concurrently without losing an ack or a route: the
// E19 reconciler's concurrent-failure tolerance leans on exactly this
// mechanism-level property.
func TestChaosConcurrentDoubleFailure(t *testing.T) {
	for _, tc := range []struct {
		flavor  Flavor
		seed    uint64
		victims [2]msg.DeviceID
	}{
		{FlavorDecentralized, 0xC5, [2]msg.DeviceID{2, 5}},
		{FlavorHead, 0xC6, [2]msg.DeviceID{3, 5}}, // head (1) never killed: SPOF by design
	} {
		tc := tc
		t.Run(tc.flavor.String(), func(t *testing.T) {
			t.Parallel()
			cl := mustBoot(t, Config{N: 6, Seed: tc.seed, Flavor: tc.flavor})
			keys := keysAvoidingPair(t, cl, tc.victims[0], tc.victims[1], fcWorkers*fcKeysPer)
			d := newFCDriver(t, cl, keys)
			at := cl.Eng.Now().Add(fcWarmup + fcWindow/2)
			d.kill(at, tc.victims[0])
			d.kill(at, tc.victims[1])
			rep := d.run()
			assertClean(t, cl, rep, 2)
			if got := cl.MaxEpoch(); got != 2 {
				t.Errorf("max epoch %d after two same-frame deaths, want 2", got)
			}
		})
	}
}

// TestChaosHeadFlavorKillWorker kills a non-head machine under the
// head-node flavor: the head notices via relay failures or heartbeat
// staleness and republishes the ring; workers must not self-detect.
func TestChaosHeadFlavorKillWorker(t *testing.T) {
	cl := mustBoot(t, Config{N: 4, Seed: 0xC4, Flavor: FlavorHead})
	d := newFCDriver(t, cl, mixedKeys(fcWorkers*fcKeysPer))
	d.kill(cl.Eng.Now().Add(fcWarmup+fcWindow/2), 3)
	rep := d.run()
	assertClean(t, cl, rep, 1)
}
